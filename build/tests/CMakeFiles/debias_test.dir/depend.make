# Empty dependencies file for debias_test.
# This may be replaced when dependencies are built.
