file(REMOVE_RECURSE
  "CMakeFiles/debias_test.dir/debias_test.cc.o"
  "CMakeFiles/debias_test.dir/debias_test.cc.o.d"
  "debias_test"
  "debias_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debias_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
