file(REMOVE_RECURSE
  "CMakeFiles/tape_internals_test.dir/tape_internals_test.cc.o"
  "CMakeFiles/tape_internals_test.dir/tape_internals_test.cc.o.d"
  "tape_internals_test"
  "tape_internals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tape_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
