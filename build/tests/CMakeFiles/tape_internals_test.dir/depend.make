# Empty dependencies file for tape_internals_test.
# This may be replaced when dependencies are built.
