file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_denoising.dir/ecommerce_denoising.cpp.o"
  "CMakeFiles/ecommerce_denoising.dir/ecommerce_denoising.cpp.o.d"
  "ecommerce_denoising"
  "ecommerce_denoising.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_denoising.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
