# Empty compiler generated dependencies file for ecommerce_denoising.
# This may be replaced when dependencies are built.
