# Empty dependencies file for graphaug_cli.
# This may be replaced when dependencies are built.
