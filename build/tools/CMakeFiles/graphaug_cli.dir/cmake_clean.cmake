file(REMOVE_RECURSE
  "CMakeFiles/graphaug_cli.dir/graphaug_cli.cc.o"
  "CMakeFiles/graphaug_cli.dir/graphaug_cli.cc.o.d"
  "graphaug"
  "graphaug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphaug_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
