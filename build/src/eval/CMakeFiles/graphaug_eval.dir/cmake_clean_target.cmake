file(REMOVE_RECURSE
  "libgraphaug_eval.a"
)
