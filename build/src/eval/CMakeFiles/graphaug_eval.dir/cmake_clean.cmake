file(REMOVE_RECURSE
  "CMakeFiles/graphaug_eval.dir/embedding_stats.cc.o"
  "CMakeFiles/graphaug_eval.dir/embedding_stats.cc.o.d"
  "CMakeFiles/graphaug_eval.dir/evaluator.cc.o"
  "CMakeFiles/graphaug_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/graphaug_eval.dir/metrics.cc.o"
  "CMakeFiles/graphaug_eval.dir/metrics.cc.o.d"
  "CMakeFiles/graphaug_eval.dir/significance.cc.o"
  "CMakeFiles/graphaug_eval.dir/significance.cc.o.d"
  "libgraphaug_eval.a"
  "libgraphaug_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphaug_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
