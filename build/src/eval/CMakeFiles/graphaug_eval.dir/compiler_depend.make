# Empty compiler generated dependencies file for graphaug_eval.
# This may be replaced when dependencies are built.
