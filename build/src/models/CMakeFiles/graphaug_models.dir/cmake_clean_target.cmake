file(REMOVE_RECURSE
  "libgraphaug_models.a"
)
