file(REMOVE_RECURSE
  "CMakeFiles/graphaug_models.dir/autorec.cc.o"
  "CMakeFiles/graphaug_models.dir/autorec.cc.o.d"
  "CMakeFiles/graphaug_models.dir/contrastive_ssl.cc.o"
  "CMakeFiles/graphaug_models.dir/contrastive_ssl.cc.o.d"
  "CMakeFiles/graphaug_models.dir/disentangled.cc.o"
  "CMakeFiles/graphaug_models.dir/disentangled.cc.o.d"
  "CMakeFiles/graphaug_models.dir/generative_ssl.cc.o"
  "CMakeFiles/graphaug_models.dir/generative_ssl.cc.o.d"
  "CMakeFiles/graphaug_models.dir/gnn_models.cc.o"
  "CMakeFiles/graphaug_models.dir/gnn_models.cc.o.d"
  "CMakeFiles/graphaug_models.dir/mf_models.cc.o"
  "CMakeFiles/graphaug_models.dir/mf_models.cc.o.d"
  "CMakeFiles/graphaug_models.dir/registry.cc.o"
  "CMakeFiles/graphaug_models.dir/registry.cc.o.d"
  "libgraphaug_models.a"
  "libgraphaug_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphaug_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
