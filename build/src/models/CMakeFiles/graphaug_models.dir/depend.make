# Empty dependencies file for graphaug_models.
# This may be replaced when dependencies are built.
