# Empty compiler generated dependencies file for graphaug_modelbase.
# This may be replaced when dependencies are built.
