file(REMOVE_RECURSE
  "CMakeFiles/graphaug_modelbase.dir/debias.cc.o"
  "CMakeFiles/graphaug_modelbase.dir/debias.cc.o.d"
  "CMakeFiles/graphaug_modelbase.dir/kmeans.cc.o"
  "CMakeFiles/graphaug_modelbase.dir/kmeans.cc.o.d"
  "CMakeFiles/graphaug_modelbase.dir/propagation.cc.o"
  "CMakeFiles/graphaug_modelbase.dir/propagation.cc.o.d"
  "CMakeFiles/graphaug_modelbase.dir/recommender.cc.o"
  "CMakeFiles/graphaug_modelbase.dir/recommender.cc.o.d"
  "CMakeFiles/graphaug_modelbase.dir/trainer.cc.o"
  "CMakeFiles/graphaug_modelbase.dir/trainer.cc.o.d"
  "libgraphaug_modelbase.a"
  "libgraphaug_modelbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphaug_modelbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
