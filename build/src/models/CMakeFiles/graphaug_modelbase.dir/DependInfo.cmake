
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/debias.cc" "src/models/CMakeFiles/graphaug_modelbase.dir/debias.cc.o" "gcc" "src/models/CMakeFiles/graphaug_modelbase.dir/debias.cc.o.d"
  "/root/repo/src/models/kmeans.cc" "src/models/CMakeFiles/graphaug_modelbase.dir/kmeans.cc.o" "gcc" "src/models/CMakeFiles/graphaug_modelbase.dir/kmeans.cc.o.d"
  "/root/repo/src/models/propagation.cc" "src/models/CMakeFiles/graphaug_modelbase.dir/propagation.cc.o" "gcc" "src/models/CMakeFiles/graphaug_modelbase.dir/propagation.cc.o.d"
  "/root/repo/src/models/recommender.cc" "src/models/CMakeFiles/graphaug_modelbase.dir/recommender.cc.o" "gcc" "src/models/CMakeFiles/graphaug_modelbase.dir/recommender.cc.o.d"
  "/root/repo/src/models/trainer.cc" "src/models/CMakeFiles/graphaug_modelbase.dir/trainer.cc.o" "gcc" "src/models/CMakeFiles/graphaug_modelbase.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/graphaug_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/graphaug_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/graphaug_data.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/graphaug_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/graphaug_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/graphaug_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/graphaug_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
