file(REMOVE_RECURSE
  "libgraphaug_modelbase.a"
)
