file(REMOVE_RECURSE
  "libgraphaug_core.a"
)
