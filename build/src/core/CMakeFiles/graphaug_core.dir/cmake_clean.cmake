file(REMOVE_RECURSE
  "CMakeFiles/graphaug_core.dir/edge_scorer.cc.o"
  "CMakeFiles/graphaug_core.dir/edge_scorer.cc.o.d"
  "CMakeFiles/graphaug_core.dir/gib.cc.o"
  "CMakeFiles/graphaug_core.dir/gib.cc.o.d"
  "CMakeFiles/graphaug_core.dir/graphaug.cc.o"
  "CMakeFiles/graphaug_core.dir/graphaug.cc.o.d"
  "CMakeFiles/graphaug_core.dir/mixhop_encoder.cc.o"
  "CMakeFiles/graphaug_core.dir/mixhop_encoder.cc.o.d"
  "CMakeFiles/graphaug_core.dir/reparam_sampler.cc.o"
  "CMakeFiles/graphaug_core.dir/reparam_sampler.cc.o.d"
  "libgraphaug_core.a"
  "libgraphaug_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphaug_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
