# Empty dependencies file for graphaug_core.
# This may be replaced when dependencies are built.
