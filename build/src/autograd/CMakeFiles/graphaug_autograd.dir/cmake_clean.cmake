file(REMOVE_RECURSE
  "CMakeFiles/graphaug_autograd.dir/grad_check.cc.o"
  "CMakeFiles/graphaug_autograd.dir/grad_check.cc.o.d"
  "CMakeFiles/graphaug_autograd.dir/ops.cc.o"
  "CMakeFiles/graphaug_autograd.dir/ops.cc.o.d"
  "CMakeFiles/graphaug_autograd.dir/optim.cc.o"
  "CMakeFiles/graphaug_autograd.dir/optim.cc.o.d"
  "CMakeFiles/graphaug_autograd.dir/param.cc.o"
  "CMakeFiles/graphaug_autograd.dir/param.cc.o.d"
  "CMakeFiles/graphaug_autograd.dir/serialize.cc.o"
  "CMakeFiles/graphaug_autograd.dir/serialize.cc.o.d"
  "CMakeFiles/graphaug_autograd.dir/tape.cc.o"
  "CMakeFiles/graphaug_autograd.dir/tape.cc.o.d"
  "libgraphaug_autograd.a"
  "libgraphaug_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphaug_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
