file(REMOVE_RECURSE
  "libgraphaug_autograd.a"
)
