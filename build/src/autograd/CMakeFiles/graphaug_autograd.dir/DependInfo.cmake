
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/grad_check.cc" "src/autograd/CMakeFiles/graphaug_autograd.dir/grad_check.cc.o" "gcc" "src/autograd/CMakeFiles/graphaug_autograd.dir/grad_check.cc.o.d"
  "/root/repo/src/autograd/ops.cc" "src/autograd/CMakeFiles/graphaug_autograd.dir/ops.cc.o" "gcc" "src/autograd/CMakeFiles/graphaug_autograd.dir/ops.cc.o.d"
  "/root/repo/src/autograd/optim.cc" "src/autograd/CMakeFiles/graphaug_autograd.dir/optim.cc.o" "gcc" "src/autograd/CMakeFiles/graphaug_autograd.dir/optim.cc.o.d"
  "/root/repo/src/autograd/param.cc" "src/autograd/CMakeFiles/graphaug_autograd.dir/param.cc.o" "gcc" "src/autograd/CMakeFiles/graphaug_autograd.dir/param.cc.o.d"
  "/root/repo/src/autograd/serialize.cc" "src/autograd/CMakeFiles/graphaug_autograd.dir/serialize.cc.o" "gcc" "src/autograd/CMakeFiles/graphaug_autograd.dir/serialize.cc.o.d"
  "/root/repo/src/autograd/tape.cc" "src/autograd/CMakeFiles/graphaug_autograd.dir/tape.cc.o" "gcc" "src/autograd/CMakeFiles/graphaug_autograd.dir/tape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/graphaug_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/graphaug_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/graphaug_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
