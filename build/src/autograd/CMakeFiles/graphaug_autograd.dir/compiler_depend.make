# Empty compiler generated dependencies file for graphaug_autograd.
# This may be replaced when dependencies are built.
