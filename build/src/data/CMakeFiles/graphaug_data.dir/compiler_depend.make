# Empty compiler generated dependencies file for graphaug_data.
# This may be replaced when dependencies are built.
