file(REMOVE_RECURSE
  "libgraphaug_data.a"
)
