file(REMOVE_RECURSE
  "CMakeFiles/graphaug_data.dir/dataset.cc.o"
  "CMakeFiles/graphaug_data.dir/dataset.cc.o.d"
  "CMakeFiles/graphaug_data.dir/io.cc.o"
  "CMakeFiles/graphaug_data.dir/io.cc.o.d"
  "CMakeFiles/graphaug_data.dir/sampler.cc.o"
  "CMakeFiles/graphaug_data.dir/sampler.cc.o.d"
  "CMakeFiles/graphaug_data.dir/stats.cc.o"
  "CMakeFiles/graphaug_data.dir/stats.cc.o.d"
  "CMakeFiles/graphaug_data.dir/synthetic.cc.o"
  "CMakeFiles/graphaug_data.dir/synthetic.cc.o.d"
  "libgraphaug_data.a"
  "libgraphaug_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphaug_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
