file(REMOVE_RECURSE
  "libgraphaug_graph.a"
)
