# Empty dependencies file for graphaug_graph.
# This may be replaced when dependencies are built.
