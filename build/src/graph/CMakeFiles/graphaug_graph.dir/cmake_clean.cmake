file(REMOVE_RECURSE
  "CMakeFiles/graphaug_graph.dir/bipartite_graph.cc.o"
  "CMakeFiles/graphaug_graph.dir/bipartite_graph.cc.o.d"
  "CMakeFiles/graphaug_graph.dir/corruption.cc.o"
  "CMakeFiles/graphaug_graph.dir/corruption.cc.o.d"
  "CMakeFiles/graphaug_graph.dir/csr.cc.o"
  "CMakeFiles/graphaug_graph.dir/csr.cc.o.d"
  "libgraphaug_graph.a"
  "libgraphaug_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphaug_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
