file(REMOVE_RECURSE
  "libgraphaug_tensor.a"
)
