# Empty dependencies file for graphaug_tensor.
# This may be replaced when dependencies are built.
