file(REMOVE_RECURSE
  "CMakeFiles/graphaug_tensor.dir/init.cc.o"
  "CMakeFiles/graphaug_tensor.dir/init.cc.o.d"
  "CMakeFiles/graphaug_tensor.dir/matrix.cc.o"
  "CMakeFiles/graphaug_tensor.dir/matrix.cc.o.d"
  "CMakeFiles/graphaug_tensor.dir/ops.cc.o"
  "CMakeFiles/graphaug_tensor.dir/ops.cc.o.d"
  "libgraphaug_tensor.a"
  "libgraphaug_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphaug_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
