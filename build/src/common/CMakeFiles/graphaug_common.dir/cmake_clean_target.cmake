file(REMOVE_RECURSE
  "libgraphaug_common.a"
)
