# Empty compiler generated dependencies file for graphaug_common.
# This may be replaced when dependencies are built.
