file(REMOVE_RECURSE
  "CMakeFiles/graphaug_common.dir/flags.cc.o"
  "CMakeFiles/graphaug_common.dir/flags.cc.o.d"
  "CMakeFiles/graphaug_common.dir/logging.cc.o"
  "CMakeFiles/graphaug_common.dir/logging.cc.o.d"
  "CMakeFiles/graphaug_common.dir/string_util.cc.o"
  "CMakeFiles/graphaug_common.dir/string_util.cc.o.d"
  "CMakeFiles/graphaug_common.dir/table.cc.o"
  "CMakeFiles/graphaug_common.dir/table.cc.o.d"
  "CMakeFiles/graphaug_common.dir/thread_pool.cc.o"
  "CMakeFiles/graphaug_common.dir/thread_pool.cc.o.d"
  "libgraphaug_common.a"
  "libgraphaug_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphaug_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
