file(REMOVE_RECURSE
  "libgraphaug_nn.a"
)
