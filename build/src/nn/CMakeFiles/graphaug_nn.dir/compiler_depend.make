# Empty compiler generated dependencies file for graphaug_nn.
# This may be replaced when dependencies are built.
