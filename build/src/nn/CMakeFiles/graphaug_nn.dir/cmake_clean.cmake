file(REMOVE_RECURSE
  "CMakeFiles/graphaug_nn.dir/layers.cc.o"
  "CMakeFiles/graphaug_nn.dir/layers.cc.o.d"
  "libgraphaug_nn.a"
  "libgraphaug_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphaug_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
