# Empty dependencies file for bench_fig3_noise.
# This may be replaced when dependencies are built.
