file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_noise.dir/bench_fig3_noise.cc.o"
  "CMakeFiles/bench_fig3_noise.dir/bench_fig3_noise.cc.o.d"
  "bench_fig3_noise"
  "bench_fig3_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
