# Empty dependencies file for bench_table7_mad.
# This may be replaced when dependencies are built.
