file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_mad.dir/bench_table7_mad.cc.o"
  "CMakeFiles/bench_table7_mad.dir/bench_table7_mad.cc.o.d"
  "bench_table7_mad"
  "bench_table7_mad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_mad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
