file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_overall.dir/bench_table2_overall.cc.o"
  "CMakeFiles/bench_table2_overall.dir/bench_table2_overall.cc.o.d"
  "bench_table2_overall"
  "bench_table2_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
