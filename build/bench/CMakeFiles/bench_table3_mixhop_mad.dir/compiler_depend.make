# Empty compiler generated dependencies file for bench_table3_mixhop_mad.
# This may be replaced when dependencies are built.
