file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_mixhop_mad.dir/bench_table3_mixhop_mad.cc.o"
  "CMakeFiles/bench_table3_mixhop_mad.dir/bench_table3_mixhop_mad.cc.o.d"
  "bench_table3_mixhop_mad"
  "bench_table3_mixhop_mad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_mixhop_mad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
