# Empty dependencies file for bench_fig2_ablation.
# This may be replaced when dependencies are built.
