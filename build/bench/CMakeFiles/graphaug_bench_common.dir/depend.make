# Empty dependencies file for graphaug_bench_common.
# This may be replaced when dependencies are built.
