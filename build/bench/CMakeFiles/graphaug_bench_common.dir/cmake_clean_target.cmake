file(REMOVE_RECURSE
  "libgraphaug_bench_common.a"
)
