file(REMOVE_RECURSE
  "CMakeFiles/graphaug_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/graphaug_bench_common.dir/bench_common.cc.o.d"
  "libgraphaug_bench_common.a"
  "libgraphaug_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphaug_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
