
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_datasets.cc" "bench/CMakeFiles/bench_table1_datasets.dir/bench_table1_datasets.cc.o" "gcc" "bench/CMakeFiles/bench_table1_datasets.dir/bench_table1_datasets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/graphaug_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/graphaug_models.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/graphaug_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/graphaug_modelbase.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/graphaug_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/graphaug_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/graphaug_data.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/graphaug_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/graphaug_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/graphaug_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/graphaug_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
