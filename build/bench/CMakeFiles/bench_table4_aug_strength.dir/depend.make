# Empty dependencies file for bench_table4_aug_strength.
# This may be replaced when dependencies are built.
