file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_aug_strength.dir/bench_table4_aug_strength.cc.o"
  "CMakeFiles/bench_table4_aug_strength.dir/bench_table4_aug_strength.cc.o.d"
  "bench_table4_aug_strength"
  "bench_table4_aug_strength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_aug_strength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
