// Cross-module integration tests: the full experimental pipeline at small
// scale — generate data, train GraphAug and a contrastive baseline,
// evaluate with the paper protocol, and check the qualitative claims the
// benchmarks rely on (GraphAug is competitive, noise hurts less, group
// eval works, determinism end-to-end).

#include <gtest/gtest.h>

#include "core/graphaug.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "graph/corruption.h"
#include "models/registry.h"
#include "models/trainer.h"

namespace graphaug {
namespace {

SyntheticData MediumData(uint64_t seed = 0) {
  SyntheticConfig cfg = PresetConfig("tiny");
  cfg.num_users = 250;
  cfg.num_items = 180;
  cfg.mean_user_degree = 12;
  cfg.noise_fraction = 0.10;
  if (seed != 0) cfg.seed = seed;
  return GenerateSynthetic(cfg);
}

ModelConfig FastConfig() {
  ModelConfig cfg;
  cfg.dim = 16;
  cfg.num_layers = 2;
  cfg.learning_rate = 0.01f;
  cfg.batch_size = 512;
  cfg.batches_per_epoch = 5;
  cfg.contrast_batch = 64;
  cfg.seed = 23;
  return cfg;
}

TEST(IntegrationTest, GraphAugCompetitiveWithLightGcn) {
  SyntheticData data = MediumData();
  Evaluator eval(&data.dataset, {20, 40});
  TrainOptions opts;
  opts.epochs = 20;
  opts.eval_every = 5;

  auto lightgcn = CreateModel("LightGCN", &data.dataset, FastConfig());
  TrainResult base = TrainAndEvaluate(lightgcn.get(), eval, opts);

  GraphAugConfig gcfg;
  static_cast<ModelConfig&>(gcfg) = FastConfig();
  GraphAug graphaug(&data.dataset, gcfg);
  TrainResult ours = TrainAndEvaluate(&graphaug, eval, opts);

  EXPECT_GT(base.best_recall20, 0.0);
  EXPECT_GT(ours.best_recall20, 0.0);
  // GraphAug must at least be in LightGCN's league at smoke scale (the
  // full comparison is the Table II bench).
  EXPECT_GT(ours.best_recall20, base.best_recall20 * 0.7);
}

TEST(IntegrationTest, EndToEndDeterminism) {
  // Same seeds end-to-end => identical metrics.
  auto run = [] {
    SyntheticData data = MediumData();
    Evaluator eval(&data.dataset, {20, 40});
    auto model = CreateModel("SGL", &data.dataset, FastConfig());
    TrainOptions opts;
    opts.epochs = 4;
    opts.eval_every = 2;
    return TrainAndEvaluate(model.get(), eval, opts).best_recall20;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(IntegrationTest, NoiseInjectionDegradesButNotCatastrophically) {
  // Fig. 3 mechanics: corrupting the training graph lowers metrics.
  SyntheticData data = MediumData();
  Evaluator eval(&data.dataset, {20, 40});
  TrainOptions opts;
  opts.epochs = 15;
  opts.eval_every = 5;

  auto clean_model = CreateModel("LightGCN", &data.dataset, FastConfig());
  const double clean = TrainAndEvaluate(clean_model.get(), eval, opts)
                           .best_recall20;

  Rng rng(7);
  Dataset noisy_dataset = data.dataset;
  BipartiteGraph noisy_graph =
      AddRandomEdges(data.dataset.TrainGraph(), 0.25, rng);
  noisy_dataset.train_edges = noisy_graph.edges();
  noisy_dataset.noise_flags.clear();
  auto noisy_model = CreateModel("LightGCN", &noisy_dataset, FastConfig());
  const double noisy = TrainAndEvaluate(noisy_model.get(), eval, opts)
                           .best_recall20;
  EXPECT_GT(clean, 0.0);
  EXPECT_LT(noisy, clean * 1.05);  // noise should not help
  EXPECT_GT(noisy, 0.0);           // but training still works
}

TEST(IntegrationTest, DegreeGroupEvaluationCoversUsers) {
  SyntheticData data = MediumData();
  Evaluator eval(&data.dataset, {40});
  auto groups = GroupUsersByDegree(data.dataset, {0, 5, 10, 20, 50, 100000});
  auto model = CreateModel("LightGCN", &data.dataset, FastConfig());
  for (int e = 0; e < 5; ++e) model->TrainEpoch();
  model->Finalize();
  auto scorer = [&](const std::vector<int32_t>& users) {
    return model->ScoreUsers(users);
  };
  int covered = 0;
  for (const auto& group : groups) {
    if (group.empty()) continue;
    TopKMetrics m = eval.EvaluateUsers(scorer, group);
    covered += m.num_users;
  }
  EXPECT_EQ(covered, static_cast<int>(eval.evaluable_users().size()));
}

TEST(IntegrationTest, StatsMatchGraph) {
  SyntheticData data = MediumData();
  DatasetStats stats = ComputeStats(data.dataset);
  BipartiteGraph g = data.dataset.TrainGraph();
  EXPECT_EQ(stats.num_train, g.num_edges());
  EXPECT_NEAR(stats.density, g.Density(), 1e-12);
}

}  // namespace
}  // namespace graphaug
