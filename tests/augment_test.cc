// Tests for the GraphAugmenter subsystem (src/augment/):
//   - golden parity: GraphAug+gib and SGL+edgedrop through the interface
//     produce bitwise-identical parameters to inline frozen replicas of
//     the pre-interface training loops (same ops, same RNG draw order),
//   - bitwise determinism of every registered augmentor at 1/2/7 threads,
//   - finite-difference gradient check of the AdvCL inner objective,
//   - randomized truncated SVD accuracy against a dense Jacobi reference,
//   - registry coverage of all five strategy names.

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "augment/advcl_augmenter.h"
#include "augment/edge_scorer.h"
#include "augment/gib.h"
#include "augment/registry.h"
#include "augment/reparam_sampler.h"
#include "augment/svd.h"
#include "autograd/grad_check.h"
#include "autograd/optim.h"
#include "common/parallel.h"
#include "core/graphaug.h"
#include "core/mixhop_encoder.h"
#include "data/sampler.h"
#include "data/synthetic.h"
#include "graph/corruption.h"
#include "models/propagation.h"
#include "models/registry.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

GraphAugConfig SmallConfig() {
  GraphAugConfig cfg;
  cfg.dim = 16;
  cfg.batch_size = 128;
  cfg.batches_per_epoch = 2;
  cfg.contrast_batch = 32;
  cfg.seed = 77;
  return cfg;
}

std::vector<float> AllParamValues(ParamStore* store) {
  std::vector<float> out;
  for (const Parameter* p : store->params()) {
    out.insert(out.end(), p->value.data(), p->value.data() + p->value.size());
  }
  return out;
}

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

std::vector<int32_t> OffsetItems(const std::vector<int32_t>& items,
                                 int32_t offset) {
  std::vector<int32_t> out(items.size());
  for (size_t i = 0; i < items.size(); ++i) out[i] = items[i] + offset;
  return out;
}

// ------------------------------------------------------- golden parity

/// Frozen replica of the pre-interface GraphAug training loop (default
/// config: gib augmentor, CL on, structure-KL off). Every parameter
/// creation, tape op, and RNG draw happens in the exact order of the old
/// monolithic BuildLoss, so any reordering introduced by the
/// GraphAugmenter refactor shows up as a bitwise mismatch.
class FrozenGraphAugGib {
 public:
  FrozenGraphAugGib(const Dataset* dataset, const GraphAugConfig& cfg)
      : cfg_(cfg),
        graph_(dataset->TrainGraph()),
        sampler_(&graph_),
        rng_(cfg.seed),
        optimizer_(cfg.learning_rate, 0.9f, 0.999f, 1e-8f,
                   cfg.weight_decay) {
    adj_ = graph_.BuildNormalizedAdjacency(cfg.self_loop_weight);
    cache_ = std::make_unique<AdjacencyPowerCache>(&adj_.matrix);
    embeddings_ = store_.CreateNormal("embeddings", graph_.num_nodes(),
                                      cfg.dim, &rng_);
    mixhop_ = std::make_unique<MixhopEncoder>(
        &store_, "mixhop", cfg.dim, cfg.num_layers, cfg.hops,
        cfg.leaky_slope, &rng_, cfg.mixhop_mode, cfg.mixhop_activation);
    scorer_ = std::make_unique<EdgeScorer>(&store_, "augmentor", cfg.dim,
                                           &rng_, cfg.augmentor.gib.scorer_noise);
  }

  void TrainEpoch() {
    for (int b = 0; b < cfg_.batches_per_epoch; ++b) {
      TripletBatch batch = sampler_.Sample(cfg_.batch_size, &rng_);
      if (batch.size() == 0) continue;
      Tape tape;
      Var loss = BuildLoss(&tape, batch);
      tape.Backward(loss);
      optimizer_.Step(&store_);
    }
  }

  ParamStore* params() { return &store_; }

 private:
  Var BuildLoss(Tape* tape, const TripletBatch& batch) {
    const int32_t off = graph_.num_users();
    const GibAugmentorConfig& gib = cfg_.augmentor.gib;
    Var base = ag::Leaf(tape, embeddings_);
    Var h_bar = mixhop_->Encode(tape, cache_.get(), base);
    Var u = ag::GatherRows(h_bar, batch.users);
    Var p = ag::GatherRows(h_bar, OffsetItems(batch.pos_items, off));
    Var n = ag::GatherRows(h_bar, OffsetItems(batch.neg_items, off));
    Var loss = ag::BprLoss(ag::RowDot(u, p), ag::RowDot(u, n));

    Var probs = scorer_->Score(tape, h_bar, graph_.edges(), off, &rng_);
    Var w_prime = SampleEdgeWeights(tape, probs, gib.concrete_temperature,
                                    gib.edge_threshold, &rng_);
    Var w_dprime = SampleEdgeWeights(tape, probs, gib.concrete_temperature,
                                     gib.edge_threshold, &rng_);
    Var z_prime = mixhop_->EncodeWeighted(tape, &adj_, w_prime, base);
    Var z_dprime = mixhop_->EncodeWeighted(tape, &adj_, w_dprime, base);

    Var pred = ag::Scale(
        ag::Add(GibPredictionTerm(tape, z_prime, batch, off),
                GibPredictionTerm(tape, z_dprime, batch, off)),
        0.5f * gib.gib_pred_weight);
    Var kl = GibCompressionTerm(tape, h_bar, z_prime, z_dprime);
    loss = ag::Add(loss, ag::Add(pred, ag::Scale(kl, gib.beta1 * gib.gib_beta)));

    std::vector<int32_t> users =
        sampler_.SampleUsers(cfg_.contrast_batch, &rng_);
    std::vector<int32_t> items =
        OffsetItems(sampler_.SampleItems(cfg_.contrast_batch, &rng_), off);
    Var cl_user = ag::InfoNceLoss(ag::GatherRows(z_prime, users),
                                  ag::GatherRows(z_dprime, users),
                                  cfg_.temperature);
    Var cl_item = ag::InfoNceLoss(ag::GatherRows(z_prime, items),
                                  ag::GatherRows(z_dprime, items),
                                  cfg_.temperature);
    Var cl = ag::Add(cl_user, cl_item);
    return ag::Add(loss, ag::Scale(cl, cfg_.beta2 * cfg_.ssl_weight));
  }

  GraphAugConfig cfg_;
  BipartiteGraph graph_;
  TripletSampler sampler_;
  Rng rng_;
  Adam optimizer_;
  NormalizedAdjacency adj_;
  std::unique_ptr<AdjacencyPowerCache> cache_;
  ParamStore store_;
  Parameter* embeddings_ = nullptr;
  std::unique_ptr<MixhopEncoder> mixhop_;
  std::unique_ptr<EdgeScorer> scorer_;
};

TEST(GoldenParity, GibThroughInterfaceMatchesFrozenReplica) {
  const SyntheticData& data = GeneratePreset("tiny");
  GraphAugConfig cfg = SmallConfig();

  GraphAug model(&data.dataset, cfg);
  FrozenGraphAugGib frozen(&data.dataset, cfg);
  for (int e = 0; e < 2; ++e) {
    model.TrainEpoch();
    frozen.TrainEpoch();
  }
  EXPECT_TRUE(BitwiseEqual(AllParamValues(model.params()),
                           AllParamValues(frozen.params())))
      << "gib augmentor through GraphAugmenter is not bitwise-identical "
         "to the pre-interface training loop";
}

/// Frozen replica of the pre-interface SGL loop (edge-dropout views
/// resampled each epoch, LightGCN propagation, InfoNCE on a mixed
/// user+item node batch).
class FrozenSgl {
 public:
  FrozenSgl(const Dataset* dataset, const ModelConfig& cfg)
      : cfg_(cfg),
        graph_(dataset->TrainGraph()),
        sampler_(&graph_),
        rng_(cfg.seed),
        optimizer_(cfg.learning_rate, 0.9f, 0.999f, 1e-8f,
                   cfg.weight_decay) {
    adj_ = graph_.BuildNormalizedAdjacency(0.f);
    embeddings_ = store_.CreateNormal("embeddings", graph_.num_nodes(),
                                      cfg.dim, &rng_);
  }

  void TrainEpoch() {
    const double drop = cfg_.dropout > 0 ? 0.2 : 0.1;
    view_a_ = DropEdges(graph_, drop, rng_);
    view_b_ = DropEdges(graph_, drop, rng_);
    adj_a_ = view_a_.BuildNormalizedAdjacency(0.f);
    adj_b_ = view_b_.BuildNormalizedAdjacency(0.f);
    for (int b = 0; b < cfg_.batches_per_epoch; ++b) {
      TripletBatch batch = sampler_.Sample(cfg_.batch_size, &rng_);
      if (batch.size() == 0) continue;
      Tape tape;
      Var loss = BuildLoss(&tape, batch);
      tape.Backward(loss);
      optimizer_.Step(&store_);
    }
  }

  ParamStore* params() { return &store_; }

 private:
  Var BuildLoss(Tape* tape, const TripletBatch& batch) {
    const int32_t off = graph_.num_users();
    Var e = ag::Leaf(tape, embeddings_);
    Var h = LightGcnPropagate(tape, &adj_.matrix, e, cfg_.num_layers);
    Var u = ag::GatherRows(h, batch.users);
    Var p = ag::GatherRows(h, OffsetItems(batch.pos_items, off));
    Var n = ag::GatherRows(h, OffsetItems(batch.neg_items, off));
    Var loss = ag::BprLoss(ag::RowDot(u, p), ag::RowDot(u, n));

    Var ha = LightGcnPropagate(tape, &adj_a_.matrix, e, cfg_.num_layers);
    Var hb = LightGcnPropagate(tape, &adj_b_.matrix, e, cfg_.num_layers);
    std::vector<int32_t> nodes =
        sampler_.SampleUsers(cfg_.contrast_batch, &rng_);
    std::vector<int32_t> items =
        sampler_.SampleItems(cfg_.contrast_batch, &rng_);
    for (int32_t v : items) nodes.push_back(v + off);
    Var ssl = ag::InfoNceLoss(ag::GatherRows(ha, nodes),
                              ag::GatherRows(hb, nodes), cfg_.temperature);
    return ag::Add(loss, ag::Scale(ssl, cfg_.ssl_weight));
  }

  ModelConfig cfg_;
  BipartiteGraph graph_;
  TripletSampler sampler_;
  Rng rng_;
  Adam optimizer_;
  NormalizedAdjacency adj_;
  ParamStore store_;
  Parameter* embeddings_ = nullptr;
  BipartiteGraph view_a_, view_b_;
  NormalizedAdjacency adj_a_, adj_b_;
};

TEST(GoldenParity, EdgeDropThroughInterfaceMatchesFrozenSgl) {
  const SyntheticData& data = GeneratePreset("tiny");
  ModelConfig cfg = SmallConfig();

  auto model = CreateModel("SGL", &data.dataset, cfg);
  FrozenSgl frozen(&data.dataset, cfg);
  for (int e = 0; e < 2; ++e) {
    model->TrainEpoch();
    frozen.TrainEpoch();
  }
  EXPECT_TRUE(BitwiseEqual(AllParamValues(model->params()),
                           AllParamValues(frozen.params())))
      << "edgedrop augmentor through GraphAugmenter is not "
         "bitwise-identical to the pre-interface SGL loop";
}

// ------------------------------------------------ thread determinism

TEST(AugmentorDeterminism, AllStrategiesBitwiseAtAnyThreadCount) {
  const SyntheticData& data = GeneratePreset("tiny");
  for (const std::string& name : AllAugmenterNames()) {
    auto train = [&](int threads) {
      SetNumThreads(threads);
      GraphAugConfig cfg = SmallConfig();
      cfg.augmentor.name = name;
      GraphAug model(&data.dataset, cfg);
      for (int e = 0; e < 2; ++e) model.TrainEpoch();
      return AllParamValues(model.params());
    };
    const std::vector<float> serial = train(1);
    EXPECT_FALSE(serial.empty());
    for (int threads : {2, 7}) {
      EXPECT_TRUE(BitwiseEqual(serial, train(threads)))
          << "augmentor '" << name << "' diverges at " << threads
          << " threads";
    }
  }
  SetNumThreads(1);
}

// --------------------------------------------------- advcl gradcheck

TEST(AdvClAugmenter, InnerLossGradientMatchesFiniteDifferences) {
  Rng rng(13);
  BipartiteGraph g(4, 3,
                   {{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 2}, {3, 0}, {3, 2}});
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(0.f);
  Matrix base(g.num_nodes(), 8);
  Matrix reference(g.num_nodes(), 8);
  InitNormal(&base, &rng, 0.f, 0.5f);
  InitNormal(&reference, &rng, 0.f, 0.5f);
  const std::vector<int32_t> nodes = {0, 2, 4, 6};

  ParamStore store;
  Parameter* delta = store.Create("delta", g.num_edges(), 1);
  InitNormal(&delta->value, &rng, 0.f, 0.05f);

  GradCheckResult r = CheckGradient(
      delta,
      [&](Tape* tape) {
        return AdvClInnerLoss(tape, delta, &adj, base, reference, nodes,
                              /*num_layers=*/2, /*temperature=*/0.5f);
      },
      /*fd_eps=*/1e-3f, /*tol=*/5e-2f);
  EXPECT_TRUE(r.ok) << "max_abs_error=" << r.max_abs_error
                    << " max_rel_error=" << r.max_rel_error;
}

// --------------------------------------------------------- svd accuracy

TEST(RandomizedSvd, RecoversExactLowRankFactorization) {
  Rng rng(5);
  const int rows = 12, cols = 9, rank = 3;
  Matrix g1(rows, rank), g2(cols, rank);
  InitNormal(&g1, &rng, 0.f, 1.f);
  InitNormal(&g2, &rng, 0.f, 1.f);
  Matrix dense;
  Gemm(g1, false, g2, true, 1.f, 0.f, &dense);

  std::vector<CooEntry> entries;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      entries.push_back({r, c, dense.at(r, c)});
    }
  }
  CsrMatrix a = CsrMatrix::FromCoo(rows, cols, std::move(entries));

  Rng svd_rng(42);
  SvdResult svd = RandomizedSvd(a, rank, /*power_iters=*/3,
                                /*oversample=*/4, &svd_rng);
  ASSERT_EQ(svd.u.cols(), rank);
  ASSERT_EQ(static_cast<int>(svd.s.size()), rank);
  ASSERT_EQ(svd.v.cols(), rank);

  // Singular values: positive and descending.
  for (int k = 0; k < rank; ++k) {
    EXPECT_GT(svd.s[k], 0.f);
    if (k > 0) EXPECT_LE(svd.s[k], svd.s[k - 1] * (1.f + 1e-5f));
  }

  // Orthonormal factors.
  Matrix utu, vtv;
  Gemm(svd.u, true, svd.u, false, 1.f, 0.f, &utu);
  Gemm(svd.v, true, svd.v, false, 1.f, 0.f, &vtv);
  for (int i = 0; i < rank; ++i) {
    for (int j = 0; j < rank; ++j) {
      const float want = i == j ? 1.f : 0.f;
      EXPECT_NEAR(utu.at(i, j), want, 1e-3f);
      EXPECT_NEAR(vtv.at(i, j), want, 1e-3f);
    }
  }

  // The matrix is exactly rank 3, so U diag(s) Vᵀ reconstructs it.
  Matrix us = svd.u;
  for (int r = 0; r < rows; ++r) {
    for (int k = 0; k < rank; ++k) us.at(r, k) *= svd.s[k];
  }
  Matrix recon;
  Gemm(us, false, svd.v, true, 1.f, 0.f, &recon);
  float max_err = 0.f;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      max_err = std::max(max_err, std::fabs(recon.at(r, c) - dense.at(r, c)));
    }
  }
  EXPECT_LT(max_err, 1e-3f * MaxAbs(dense));

  // Dense reference: singular values are the square roots of the
  // eigenvalues of AᵀA, computed by the exposed Jacobi path.
  Matrix gram;
  Gemm(dense, true, dense, false, 1.f, 0.f, &gram);
  std::vector<float> eigenvalues;
  Matrix eigenvectors;
  JacobiEigh(gram, &eigenvalues, &eigenvectors);
  ASSERT_GE(eigenvalues.size(), static_cast<size_t>(rank));
  for (int k = 0; k < rank; ++k) {
    const float ref = std::sqrt(std::max(0.f, eigenvalues[k]));
    EXPECT_NEAR(svd.s[k], ref, 1e-3f * ref + 1e-4f);
  }
}

TEST(RandomizedSvd, PowerCacheOverloadMatchesCsrOverload) {
  const SyntheticData& data = GeneratePreset("tiny");
  BipartiteGraph g = data.dataset.TrainGraph();
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(0.f);
  AdjacencyPowerCache cache(&adj.matrix);

  Rng rng_a(9), rng_b(9);
  SvdResult via_csr = RandomizedSvd(adj.matrix, 4, 2, 3, &rng_a);
  SvdResult via_cache = RandomizedSvd(cache, 4, 2, 3, &rng_b);
  ASSERT_EQ(via_csr.s.size(), via_cache.s.size());
  for (size_t k = 0; k < via_csr.s.size(); ++k) {
    EXPECT_EQ(via_csr.s[k], via_cache.s[k]);
  }
  EXPECT_TRUE(AllClose(via_csr.u, via_cache.u, 0.f, 0.f));
  EXPECT_TRUE(AllClose(via_csr.v, via_cache.v, 0.f, 0.f));
}

// ------------------------------------------------------------- registry

TEST(AugmenterRegistry, CoversAllFiveStrategies) {
  const std::vector<std::string> names = AllAugmenterNames();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "gib");
  EXPECT_EQ(names[1], "edgedrop");
  EXPECT_EQ(names[2], "advcl");
  EXPECT_EQ(names[3], "autocf");
  EXPECT_EQ(names[4], "lightgcl");
  for (const std::string& name : names) {
    std::unique_ptr<GraphAugmenter> aug = CreateAugmenter(name);
    ASSERT_NE(aug, nullptr);
    EXPECT_EQ(aug->name(), name);
    // Only the learnable GIB strategy exposes per-edge retention scores
    // (the denoise workflow gates on this).
    EXPECT_EQ(aug->has_edge_scores(), name == "gib");
  }
}

TEST(AugmenterRegistryDeathTest, RejectsUnknownName) {
  EXPECT_DEATH(CreateAugmenter("definitely-not-an-augmentor"),
               "unknown augmentor");
}

}  // namespace
}  // namespace graphaug
