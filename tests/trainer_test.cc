// Trainer-loop tests: history recording, best-checkpoint selection,
// early stopping, and learning-rate decay plumbing.

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/registry.h"
#include "models/trainer.h"

namespace graphaug {
namespace {

ModelConfig TinyConfig() {
  ModelConfig cfg;
  cfg.dim = 16;
  cfg.num_layers = 2;
  cfg.learning_rate = 0.01f;
  cfg.batch_size = 256;
  cfg.batches_per_epoch = 4;
  cfg.contrast_batch = 32;
  cfg.seed = 17;
  return cfg;
}

TEST(TrainerTest, RecordsHistoryAtEvalEpochs) {
  SyntheticData data = GeneratePreset("tiny");
  auto model = CreateModel("LightGCN", &data.dataset, TinyConfig());
  Evaluator eval(&data.dataset, {20, 40});
  TrainOptions opts;
  opts.epochs = 6;
  opts.eval_every = 2;
  TrainResult result = TrainAndEvaluate(model.get(), eval, opts);
  ASSERT_EQ(result.history.size(), 3u);
  EXPECT_EQ(result.history[0].epoch, 2);
  EXPECT_EQ(result.history[2].epoch, 6);
  EXPECT_GT(result.train_seconds, 0.0);
  // Timestamps are monotonically increasing.
  for (size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GE(result.history[i].elapsed_seconds,
              result.history[i - 1].elapsed_seconds);
  }
}

TEST(TrainerTest, BestEpochTracksBestRecall) {
  SyntheticData data = GeneratePreset("tiny");
  auto model = CreateModel("BiasMF", &data.dataset, TinyConfig());
  Evaluator eval(&data.dataset, {20, 40});
  TrainOptions opts;
  opts.epochs = 8;
  opts.eval_every = 2;
  TrainResult result = TrainAndEvaluate(model.get(), eval, opts);
  double best = 0;
  for (const EpochRecord& r : result.history) {
    best = std::max(best, r.recall20);
  }
  EXPECT_DOUBLE_EQ(result.best_recall20, best);
  EXPECT_DOUBLE_EQ(result.final_metrics.RecallAt(20), best);
}

TEST(TrainerTest, EarlyStoppingHalts) {
  SyntheticData data = GeneratePreset("tiny");
  ModelConfig cfg = TinyConfig();
  cfg.learning_rate = 0.f;  // frozen model: recall never improves
  auto model = CreateModel("LightGCN", &data.dataset, cfg);
  Evaluator eval(&data.dataset, {20, 40});
  TrainOptions opts;
  opts.epochs = 40;
  opts.eval_every = 1;
  opts.patience = 3;
  TrainResult result = TrainAndEvaluate(model.get(), eval, opts);
  // First eval sets the best; after `patience` flat evals we stop.
  EXPECT_LE(result.history.size(), 6u);
}

TEST(TrainerTest, FinalEpochAlwaysEvaluated) {
  SyntheticData data = GeneratePreset("tiny");
  auto model = CreateModel("LightGCN", &data.dataset, TinyConfig());
  Evaluator eval(&data.dataset, {20, 40});
  TrainOptions opts;
  opts.epochs = 5;
  opts.eval_every = 3;  // 3 and 5 (final)
  TrainResult result = TrainAndEvaluate(model.get(), eval, opts);
  ASSERT_EQ(result.history.size(), 2u);
  EXPECT_EQ(result.history.back().epoch, 5);
}

}  // namespace
}  // namespace graphaug
