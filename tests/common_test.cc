// Tests for the common runtime: RNG determinism and statistical sanity,
// table rendering, string utilities, thread pool, check macros.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace graphaug {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
  Rng c(43);
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, UniformBoundsAndMoments) {
  Rng rng(1);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(2);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x = rng.UniformInt(7);
    EXPECT_LT(x, 7u);
  }
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.UniformInt(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LT(x, 5);
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, LogisticIsSymmetric) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.Logistic();
  EXPECT_NEAR(sum / 20000, 0.0, 0.08);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(6);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

TEST(TableTest, RendersAlignedAndTsv) {
  Table t({"Model", "Recall@20"});
  t.AddRow({"LightGCN", "0.1799"});
  t.AddRow("GraphAug", {0.2025});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("LightGCN"), std::string::npos);
  EXPECT_NE(s.find("0.2025"), std::string::npos);
  const std::string tsv = t.ToTsv();
  EXPECT_NE(tsv.find("GraphAug\t0.2025"), std::string::npos);
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(TableTest, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "");
}

TEST(StringUtilTest, SplitStripJoin) {
  EXPECT_EQ(SplitString("a b\tc", " \t"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("  a  ", " ").size(), 1u);
  EXPECT_EQ(StripString("  hi \n"), "hi");
  EXPECT_TRUE(StartsWith("graphaug", "graph"));
  EXPECT_FALSE(StartsWith("gr", "graph"));
  EXPECT_EQ(JoinStrings({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(AsciiToLower("AbC"), "abc");
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(57);
  pool.ParallelFor(57, [&hits](int64_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x += std::sqrt(static_cast<double>(i));
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1e3 - 1e-6);
}

TEST(CheckTest, PassingCheckDoesNothing) {
  GA_CHECK(true) << "never evaluated";
  GA_CHECK_EQ(1, 1);
  GA_CHECK_LT(1, 2);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(GA_CHECK(false) << "boom", "boom");
  EXPECT_DEATH(GA_CHECK_EQ(1, 2), "1 vs 2");
}

}  // namespace
}  // namespace graphaug
