// Tests for the runtime-dispatched SIMD kernel layer (DESIGN.md §9):
// scalar-vs-AVX2 bitwise parity for GEMM and the sparse row kernels,
// per-table thread-count determinism, vector-exp accuracy, and the
// probe / force-scalar override machinery.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/cpu_features.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "graph/csr.h"
#include "tensor/init.h"
#include "tensor/kernel_dispatch.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

/// RAII guard: forces the requested dispatch mode for one scope, then
/// returns the process to the env/probe default.
class ScopedDispatch {
 public:
  explicit ScopedDispatch(bool force_scalar) {
    ForceScalarKernels(force_scalar);
  }
  ~ScopedDispatch() { ForceScalarKernels(false); }
};

/// RAII guard for the shared thread pool.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { SetNumThreads(n); }
  ~ScopedThreads() { SetNumThreads(1); }
};

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  InitNormal(&m, &rng, 0.f, 1.f);
  return m;
}

// ---------------------------------------------------------------- probe

TEST(CpuFeaturesTest, ForceScalarOverridesProbe) {
  ForceScalarKernels(true);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  EXPECT_STREQ(simd::ActiveKernels().name, "scalar");
  ForceScalarKernels(false);
  // Cleared: back to the probe result (whatever this machine supports).
  EXPECT_EQ(ActiveSimdLevel(), DetectSimdLevel());
}

TEST(CpuFeaturesTest, LevelNamesAreStable) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(CpuFeaturesTest, ActiveTableMatchesLevel) {
  const simd::KernelTable& kt = simd::ActiveKernels();
  EXPECT_STREQ(kt.name, SimdLevelName(ActiveSimdLevel()));
}

TEST(CpuFeaturesTest, Avx2TableExistsOnX86Builds) {
#if defined(__x86_64__) || defined(__i386__)
  EXPECT_NE(simd::Avx2KernelsOrNull(), nullptr);
#else
  EXPECT_EQ(simd::Avx2KernelsOrNull(), nullptr);
#endif
}

// ------------------------------------------------- GEMM bitwise parity

// Exhaustive odd-shape sweep: every (M, N, K) hits a different mix of
// full 6x16 tiles, masked edge tiles, and degenerate panels. Scalar and
// SIMD dispatch must agree bit for bit on all four transpose variants.
TEST(SimdParityTest, GemmOddShapeSweepAllVariants) {
  const int64_t sizes[] = {1, 2, 3, 5, 7, 15, 16, 17, 33};
  uint64_t seed = 1;
  for (int64_t m : sizes) {
    for (int64_t n : sizes) {
      for (int64_t k : sizes) {
        const Matrix a_nn = RandomMatrix(m, k, seed++);
        const Matrix a_t = RandomMatrix(k, m, seed++);
        const Matrix b_nn = RandomMatrix(k, n, seed++);
        const Matrix b_t = RandomMatrix(n, k, seed++);
        for (int variant = 0; variant < 4; ++variant) {
          const bool ta = (variant & 1) != 0;
          const bool tb = (variant & 2) != 0;
          const Matrix& a = ta ? a_t : a_nn;
          const Matrix& b = tb ? b_t : b_nn;
          Matrix scalar_out, simd_out;
          {
            ScopedDispatch force(true);
            Gemm(a, ta, b, tb, 1.25f, 0.f, &scalar_out);
          }
          {
            ScopedDispatch force(false);
            Gemm(a, ta, b, tb, 1.25f, 0.f, &simd_out);
          }
          EXPECT_TRUE(BitwiseEqual(scalar_out, simd_out))
              << "m=" << m << " n=" << n << " k=" << k << " ta=" << ta
              << " tb=" << tb;
        }
      }
    }
  }
}

TEST(SimdParityTest, GemmBetaAccumulationParity) {
  const Matrix a = RandomMatrix(17, 33, 7);
  const Matrix b = RandomMatrix(33, 15, 8);
  const Matrix c0 = RandomMatrix(17, 15, 9);
  Matrix scalar_out = c0, simd_out = c0;
  {
    ScopedDispatch force(true);
    Gemm(a, false, b, false, 0.5f, 2.f, &scalar_out);
  }
  {
    ScopedDispatch force(false);
    Gemm(a, false, b, false, 0.5f, 2.f, &simd_out);
  }
  EXPECT_TRUE(BitwiseEqual(scalar_out, simd_out));
}

// -------------------------------------------- sparse kernel parity

CsrMatrix SparseWithEdgeCases(int64_t rows, int64_t cols, uint64_t seed) {
  // Mix of empty rows (r % 5 == 0), single-nnz rows (r % 5 == 1), and
  // dense-ish rows, exercising every segment-length path in the kernel.
  std::vector<CooEntry> entries;
  Rng rng(seed);
  for (int64_t r = 0; r < rows; ++r) {
    if (r % 5 == 0) continue;  // empty row
    const int64_t count = (r % 5 == 1) ? 1 : 2 + (r % 7);
    for (int64_t j = 0; j < count; ++j) {
      entries.push_back({static_cast<int32_t>(r),
                         static_cast<int32_t>((r * 13 + j * 7) % cols),
                         static_cast<float>(rng.Gaussian()) + 0.5f});
    }
  }
  return CsrMatrix::FromCoo(rows, cols, std::move(entries));
}

TEST(SimdParityTest, SpmmParityWithEmptyAndSingleNnzRows) {
  const CsrMatrix m = SparseWithEdgeCases(53, 41, 11);
  // Odd dense widths cover the 32-wide, 8-wide, and masked-tail column
  // blocks of the vectorized row kernel.
  for (int64_t d : {1, 3, 8, 17, 32, 37, 64}) {
    const Matrix h = RandomMatrix(41, d, 100 + static_cast<uint64_t>(d));
    Matrix scalar_out, simd_out;
    {
      ScopedDispatch force(true);
      m.Spmm(h, &scalar_out);
    }
    {
      ScopedDispatch force(false);
      m.Spmm(h, &simd_out);
    }
    EXPECT_TRUE(BitwiseEqual(scalar_out, simd_out)) << "d=" << d;
  }
}

TEST(SimdParityTest, SpmmTParityAcrossVariants) {
  const CsrMatrix m = SparseWithEdgeCases(53, 41, 13);
  const Matrix h = RandomMatrix(53, 19, 42);
  Matrix reference;
  {
    ScopedDispatch force(true);
    m.SpmmT(h, &reference, false, SpmmTVariant::kGather);
  }
  for (bool force_scalar : {true, false}) {
    for (SpmmTVariant v : {SpmmTVariant::kAuto, SpmmTVariant::kPermuted,
                           SpmmTVariant::kTiled, SpmmTVariant::kGather}) {
      ScopedDispatch force(force_scalar);
      Matrix out;
      m.SpmmT(h, &out, false, v);
      EXPECT_TRUE(BitwiseEqual(reference, out))
          << "force_scalar=" << force_scalar
          << " variant=" << static_cast<int>(v);
    }
  }
}

// --------------------------------------- thread-count determinism

// Every dispatch mode must produce identical bits at 1, 2, and 7 threads:
// the static chunk decomposition plus disjoint-output (or pinned-order
// reduction) kernels make thread count invisible in the result.
TEST(SimdDeterminismTest, ThreadCountInvarianceBothModes) {
  const Matrix a = RandomMatrix(65, 40, 21);
  const Matrix b = RandomMatrix(40, 33, 22);
  const CsrMatrix sp = SparseWithEdgeCases(65, 40, 23);
  const Matrix h = RandomMatrix(40, 33, 24);
  for (bool force_scalar : {true, false}) {
    ScopedDispatch force(force_scalar);
    Matrix gemm_ref, spmm_ref, spmmt_ref;
    double sum_ref = 0, sq_ref = 0;
    float maxabs_ref = 0;
    for (int threads : {1, 2, 7}) {
      ScopedThreads pool(threads);
      Matrix gemm_out, spmm_out, spmmt_out;
      Gemm(a, false, b, false, 1.f, 0.f, &gemm_out);
      sp.Spmm(b, &spmm_out);
      sp.SpmmT(RandomMatrix(65, 12, 25), &spmmt_out);
      const double sum_out = SumAll(a);
      const double sq_out = SquaredNorm(a);
      const float maxabs_out = MaxAbs(a);
      if (threads == 1) {
        gemm_ref = gemm_out;
        spmm_ref = spmm_out;
        spmmt_ref = spmmt_out;
        sum_ref = sum_out;
        sq_ref = sq_out;
        maxabs_ref = maxabs_out;
      } else {
        EXPECT_TRUE(BitwiseEqual(gemm_ref, gemm_out))
            << "gemm threads=" << threads << " scalar=" << force_scalar;
        EXPECT_TRUE(BitwiseEqual(spmm_ref, spmm_out))
            << "spmm threads=" << threads << " scalar=" << force_scalar;
        EXPECT_TRUE(BitwiseEqual(spmmt_ref, spmmt_out))
            << "spmm_t threads=" << threads << " scalar=" << force_scalar;
        EXPECT_EQ(sum_ref, sum_out) << "threads=" << threads;
        EXPECT_EQ(sq_ref, sq_out) << "threads=" << threads;
        EXPECT_EQ(maxabs_ref, maxabs_out) << "threads=" << threads;
      }
    }
  }
}

// ----------------------------------------------- table-level kernels

TEST(KernelTableTest, ElementwiseParity) {
  const int64_t n = 1003;  // odd length: 8-wide blocks plus scalar tail
  const Matrix a = RandomMatrix(1, n, 31);
  const Matrix b = RandomMatrix(1, n, 32);
  const simd::KernelTable& sc = simd::ScalarKernels();
  const simd::KernelTable* vec = simd::Avx2KernelsOrNull();
  if (vec == nullptr) GTEST_SKIP() << "no SIMD table in this build";
  std::vector<float> out_s(n), out_v(n);
  sc.add(a.data(), b.data(), out_s.data(), n);
  vec->add(a.data(), b.data(), out_v.data(), n);
  EXPECT_EQ(0, std::memcmp(out_s.data(), out_v.data(), n * sizeof(float)));
  sc.sub(a.data(), b.data(), out_s.data(), n);
  vec->sub(a.data(), b.data(), out_v.data(), n);
  EXPECT_EQ(0, std::memcmp(out_s.data(), out_v.data(), n * sizeof(float)));
  sc.mul(a.data(), b.data(), out_s.data(), n);
  vec->mul(a.data(), b.data(), out_v.data(), n);
  EXPECT_EQ(0, std::memcmp(out_s.data(), out_v.data(), n * sizeof(float)));
  sc.scale(a.data(), 1.5f, out_s.data(), n);
  vec->scale(a.data(), 1.5f, out_v.data(), n);
  EXPECT_EQ(0, std::memcmp(out_s.data(), out_v.data(), n * sizeof(float)));
  std::vector<float> acc_s(a.data(), a.data() + n), acc_v = acc_s;
  sc.axpy(0.75f, b.data(), acc_s.data(), n);
  vec->axpy(0.75f, b.data(), acc_v.data(), n);
  EXPECT_EQ(0, std::memcmp(acc_s.data(), acc_v.data(), n * sizeof(float)));
}

TEST(KernelTableTest, ReductionsAgreeWithinTolerance) {
  // Reductions pin order per table, not across tables: SIMD lane-split
  // sums legitimately differ from serial sums by rounding only.
  const int64_t n = 777;
  const Matrix a = RandomMatrix(1, n, 33);
  const Matrix b = RandomMatrix(1, n, 34);
  const simd::KernelTable& sc = simd::ScalarKernels();
  const simd::KernelTable* vec = simd::Avx2KernelsOrNull();
  if (vec == nullptr) GTEST_SKIP() << "no SIMD table in this build";
  EXPECT_NEAR(sc.sum(a.data(), n), vec->sum(a.data(), n), 1e-4);
  EXPECT_NEAR(sc.sqnorm(a.data(), n), vec->sqnorm(a.data(), n), 1e-4);
  EXPECT_NEAR(sc.dot(a.data(), b.data(), n), vec->dot(a.data(), b.data(), n),
              1e-4);
  // max / maxabs select an element: exactly equal regardless of lanes.
  EXPECT_EQ(sc.maxabs(a.data(), n), vec->maxabs(a.data(), n));
  EXPECT_EQ(sc.rowmax(a.data(), n), vec->rowmax(a.data(), n));
  for (int64_t small = 1; small <= 9; ++small) {
    EXPECT_EQ(sc.rowmax(a.data(), small), vec->rowmax(a.data(), small))
        << "n=" << small;
    EXPECT_EQ(sc.maxabs(a.data(), small), vec->maxabs(a.data(), small))
        << "n=" << small;
  }
}

TEST(KernelTableTest, VectorExpMatchesStdExp) {
  const simd::KernelTable* vec = simd::Avx2KernelsOrNull();
  if (vec == nullptr) GTEST_SKIP() << "no SIMD table in this build";
  // Sweep the range LogSumExpRows actually feeds: shifted logits in
  // roughly [-30, 0], plus the clamp edges.
  std::vector<float> xs;
  for (float x = -30.f; x <= 10.f; x += 0.37f) xs.push_back(x);
  xs.push_back(-100.f);  // below clamp: exp underflows to ~0
  xs.push_back(0.f);
  const int64_t n = static_cast<int64_t>(xs.size());
  std::vector<float> out(xs.size());
  vec->exp_scale(xs.data(), 0.f, 1.f, out.data(), n);
  for (size_t i = 0; i < xs.size(); ++i) {
    const double ref = std::exp(static_cast<double>(xs[i]));
    EXPECT_NEAR(out[i], ref, 2e-6 * ref + 1e-30) << "x=" << xs[i];
  }
  const double s = vec->exp_sum(xs.data(), n, 0.f);
  double s_ref = 0;
  for (float x : xs) s_ref += std::exp(static_cast<double>(x));
  EXPECT_NEAR(s, s_ref, 1e-4 * s_ref);
}

TEST(KernelTableTest, SpmmSegmentHandlesEmptyAndSingle) {
  const simd::KernelTable& sc = simd::ScalarKernels();
  const simd::KernelTable* vec = simd::Avx2KernelsOrNull();
  const Matrix dense = RandomMatrix(5, 37, 55);
  const float vals[] = {2.f, -1.f, 0.5f};
  const int32_t idx[] = {3, 0, 4};
  for (int64_t count : {0, 1, 3}) {
    std::vector<float> out_s(37, 1.f), out_v(37, 1.f);
    sc.spmm_segment(vals, idx, count, dense.data(), 37, out_s.data());
    if (vec != nullptr) {
      vec->spmm_segment(vals, idx, count, dense.data(), 37, out_v.data());
      EXPECT_EQ(0,
                std::memcmp(out_s.data(), out_v.data(), 37 * sizeof(float)))
          << "count=" << count;
    }
    if (count == 0) {
      for (float v : out_s) EXPECT_EQ(v, 1.f);  // untouched accumulator
    }
  }
}

}  // namespace
}  // namespace graphaug
