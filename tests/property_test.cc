// Randomized property tests (parameterized over seeds): mathematical
// invariants that must hold for *any* input — loss non-negativity and
// monotonicity, normalization invariants, split disjointness, sampler
// validity, metric bounds, adjacency mass conservation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "autograd/ops.h"
#include "data/dataset.h"
#include "data/sampler.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/kmeans.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng MakeRng() const { return Rng(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u));

TEST_P(SeededProperty, InfoNceIsNonNegative) {
  // log-sum-exp over a row upper-bounds any element of that row,
  // including the positive logit, so the InfoNCE loss cannot go below 0.
  Rng rng = MakeRng();
  Tape tape;
  Matrix a(12, 6), b(12, 6);
  InitNormal(&a, &rng, 0.f, 2.f);
  InitNormal(&b, &rng, 0.f, 2.f);
  Var loss = ag::InfoNceLoss(ag::Constant(&tape, a), ag::Constant(&tape, b),
                             0.4f);
  EXPECT_GE(loss.value().scalar(), -1e-5);
}

TEST_P(SeededProperty, BprMonotoneInScoreGap) {
  // Increasing every positive score must not increase the BPR loss.
  Rng rng = MakeRng();
  Matrix pos(16, 1), neg(16, 1);
  InitNormal(&pos, &rng);
  InitNormal(&neg, &rng);
  Tape tape;
  Var l1 = ag::BprLoss(ag::Constant(&tape, pos), ag::Constant(&tape, neg));
  Matrix pos_up = pos;
  for (int64_t i = 0; i < pos_up.size(); ++i) pos_up[i] += 1.f;
  Var l2 =
      ag::BprLoss(ag::Constant(&tape, pos_up), ag::Constant(&tape, neg));
  EXPECT_LT(l2.value().scalar(), l1.value().scalar());
  EXPECT_GT(l1.value().scalar(), 0.0);
}

TEST_P(SeededProperty, GaussianKlNonNegative) {
  Rng rng = MakeRng();
  Matrix mu(8, 4), raw(8, 4);
  InitNormal(&mu, &rng, 0.f, 2.f);
  InitNormal(&raw, &rng, 0.f, 2.f);
  Tape tape;
  Var kl = ag::GaussianKl(ag::Constant(&tape, mu), ag::Constant(&tape, raw));
  EXPECT_GE(kl.value().scalar(), -1e-6);
}

TEST_P(SeededProperty, RowL2NormalizeYieldsUnitRows) {
  Rng rng = MakeRng();
  Matrix x(20, 9);
  InitNormal(&x, &rng, 0.f, 3.f);
  Tape tape;
  Var y = ag::RowL2Normalize(ag::Constant(&tape, x));
  Matrix norms = RowNorm(y.value());
  for (int64_t r = 0; r < norms.size(); ++r) {
    EXPECT_NEAR(norms[r], 1.f, 1e-4);
  }
}

TEST_P(SeededProperty, SoftmaxOfLogSumExpSumsToOne) {
  // exp(x - lse(x)) must be a distribution row-wise.
  Rng rng = MakeRng();
  Matrix x(10, 7);
  InitNormal(&x, &rng, 0.f, 4.f);
  Tape tape;
  Var lse = ag::LogSumExpRows(ag::Constant(&tape, x));
  for (int64_t r = 0; r < x.rows(); ++r) {
    double s = 0;
    for (int64_t c = 0; c < x.cols(); ++c) {
      s += std::exp(x.at(r, c) - lse.value()[r]);
    }
    EXPECT_NEAR(s, 1.0, 1e-4);
  }
}

TEST_P(SeededProperty, SplitIsDisjointAndComplete) {
  Rng rng = MakeRng();
  std::vector<Edge> edges;
  for (int32_t u = 0; u < 40; ++u) {
    const int deg = 1 + static_cast<int>(rng.UniformInt(12));
    for (int d = 0; d < deg; ++d) {
      edges.push_back({u, static_cast<int32_t>(rng.UniformInt(30))});
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  std::vector<Edge> train, test;
  SplitLeaveOut(edges, 0.3, &rng, &train, &test);
  EXPECT_EQ(train.size() + test.size(), edges.size());
  std::set<std::pair<int, int>> train_set;
  for (const Edge& e : train) train_set.insert({e.user, e.item});
  for (const Edge& e : test) {
    EXPECT_EQ(train_set.count({e.user, e.item}), 0u);
  }
}

TEST_P(SeededProperty, SyntheticTrainTestDisjoint) {
  SyntheticConfig cfg = PresetConfig("tiny");
  cfg.seed = GetParam();
  SyntheticData data = GenerateSynthetic(cfg);
  std::set<std::pair<int, int>> train;
  for (const Edge& e : data.dataset.train_edges) {
    EXPECT_TRUE(train.insert({e.user, e.item}).second)
        << "duplicate train edge";
  }
  for (const Edge& e : data.dataset.test_edges) {
    EXPECT_EQ(train.count({e.user, e.item}), 0u) << "test leaked into train";
  }
}

TEST_P(SeededProperty, TripletSamplerInvariants) {
  SyntheticConfig cfg = PresetConfig("tiny");
  cfg.seed = GetParam();
  SyntheticData data = GenerateSynthetic(cfg);
  BipartiteGraph g = data.dataset.TrainGraph();
  TripletSampler sampler(&g);
  Rng rng = MakeRng();
  TripletBatch batch = sampler.Sample(300, &rng);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(g.HasEdge(batch.users[i], batch.pos_items[i]));
    EXPECT_FALSE(g.HasEdge(batch.users[i], batch.neg_items[i]));
    EXPECT_NE(batch.pos_items[i], batch.neg_items[i]);
  }
}

TEST_P(SeededProperty, MetricsBoundedAndMonotoneInK) {
  SyntheticConfig cfg = PresetConfig("tiny");
  cfg.seed = GetParam();
  SyntheticData data = GenerateSynthetic(cfg);
  Evaluator eval(&data.dataset, {5, 20, 40});
  Rng rng = MakeRng();
  auto scorer = [&](const std::vector<int32_t>& users) {
    Matrix m(static_cast<int64_t>(users.size()), data.dataset.num_items);
    InitNormal(&m, &rng);
    return m;
  };
  TopKMetrics m = eval.Evaluate(scorer);
  for (double v : m.recall) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  for (double v : m.ndcg) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Recall and hit rate can only grow with deeper cutoffs.
  EXPECT_LE(m.RecallAt(5), m.RecallAt(20) + 1e-12);
  EXPECT_LE(m.RecallAt(20), m.RecallAt(40) + 1e-12);
  EXPECT_LE(m.HitRateAt(5), m.HitRateAt(40) + 1e-12);
}

TEST_P(SeededProperty, NormalizedAdjacencyMassConservation) {
  // For any per-edge weight vector w, the weighted value array must equal
  // base * w on interaction entries and base on self-loops.
  SyntheticConfig cfg = PresetConfig("tiny");
  cfg.seed = GetParam();
  SyntheticData data = GenerateSynthetic(cfg);
  BipartiteGraph g = data.dataset.TrainGraph();
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  Rng rng = MakeRng();
  std::vector<float> w(g.num_edges());
  for (float& x : w) x = rng.UniformFloat();
  std::vector<float> values = adj.WeightedValues(w);
  for (size_t k = 0; k < values.size(); ++k) {
    const int64_t e = adj.nnz_to_edge[k];
    const float expected =
        e < 0 ? adj.base_values[k]
              : adj.base_values[k] * w[static_cast<size_t>(e)];
    EXPECT_FLOAT_EQ(values[k], expected);
  }
}

TEST_P(SeededProperty, KMeansAssignsToNearestCentroid) {
  Rng rng = MakeRng();
  Matrix pts(60, 5);
  InitNormal(&pts, &rng, 0.f, 1.f);
  KMeansResult res = RunKMeans(pts, 5, 10, &rng);
  for (int64_t i = 0; i < pts.rows(); ++i) {
    double own = 0, best = 1e300;
    for (int c = 0; c < 5; ++c) {
      double d = 0;
      for (int64_t j = 0; j < 5; ++j) {
        const double diff = pts.at(i, j) - res.centroids.at(c, j);
        d += diff * diff;
      }
      if (c == res.assignment[i]) own = d;
      best = std::min(best, d);
    }
    EXPECT_NEAR(own, best, 1e-6) << "row " << i;
  }
}

TEST_P(SeededProperty, DropoutPreservesMeanInExpectation) {
  Rng rng = MakeRng();
  Matrix x(64, 64, 1.f);
  Tape tape;
  Var y = ag::Dropout(ag::Constant(&tape, x), 0.3f, &rng);
  EXPECT_NEAR(MeanAll(y.value()), 1.0, 0.06);
}

}  // namespace
}  // namespace graphaug
