// Tests for the GraphAug core: mixhop encoder shape/gradients and its
// relation to vanilla propagation, edge-scorer output semantics,
// reparameterized sampling properties (threshold, stochasticity,
// differentiability), the GIB loss bounds, and end-to-end GraphAug
// behaviour including ablation switches and denoising of known-noisy
// edges.

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/grad_check.h"
#include "augment/edge_scorer.h"
#include "augment/gib.h"
#include "core/graphaug.h"
#include "core/mixhop_encoder.h"
#include "augment/reparam_sampler.h"
#include "data/synthetic.h"
#include "eval/embedding_stats.h"
#include "eval/evaluator.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

BipartiteGraph SmallGraph() {
  return BipartiteGraph(4, 3, {{0, 0}, {0, 1}, {1, 0}, {2, 2}, {3, 1}});
}

GraphAugConfig TinyGraphAugConfig() {
  GraphAugConfig cfg;
  cfg.dim = 16;
  cfg.num_layers = 2;
  cfg.learning_rate = 0.01f;
  cfg.batch_size = 256;
  cfg.batches_per_epoch = 4;
  cfg.contrast_batch = 48;
  cfg.seed = 5;
  return cfg;
}

TEST(MixhopEncoderTest, OutputShapeAndFiniteness) {
  Rng rng(1);
  ParamStore store;
  BipartiteGraph g = SmallGraph();
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  MixhopEncoder enc(&store, "mix", 8, 2, {0, 1, 2}, 0.5f, &rng);
  Parameter* base = store.CreateNormal("emb", g.num_nodes(), 8, &rng);
  Tape tape;
  Var out = enc.Encode(&tape, &adj.matrix, ag::Leaf(&tape, base));
  EXPECT_EQ(out.rows(), g.num_nodes());
  EXPECT_EQ(out.cols(), 8);
  for (int64_t i = 0; i < out.value().size(); ++i) {
    ASSERT_TRUE(std::isfinite(out.value()[i]));
  }
}

TEST(MixhopEncoderTest, GradientThroughEncoder) {
  Rng rng(2);
  ParamStore store;
  BipartiteGraph g = SmallGraph();
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  MixhopEncoder enc(&store, "mix", 6, 1, {0, 1, 2}, 0.5f, &rng);
  Parameter* base = store.CreateNormal("emb", g.num_nodes(), 6, &rng);
  GradCheckResult res = CheckGradient(base, [&](Tape* t) {
    return ag::MeanAll(
        ag::Square(enc.Encode(t, &adj.matrix, ag::Leaf(t, base))));
  });
  EXPECT_TRUE(res.ok) << res.max_abs_error;
}

TEST(MixhopEncoderTest, WeightedMatchesUnweightedWithUnitWeights) {
  Rng rng(3);
  ParamStore store;
  BipartiteGraph g = SmallGraph();
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  MixhopEncoder enc(&store, "mix", 8, 2, {0, 1, 2}, 0.5f, &rng);
  Parameter* base = store.CreateNormal("emb", g.num_nodes(), 8, &rng);
  Tape tape;
  Var b = ag::Leaf(&tape, base);
  Var plain = enc.Encode(&tape, &adj.matrix, b);
  Var ones = ag::Constant(
      &tape, Matrix(static_cast<int64_t>(g.num_edges()), 1, 1.f));
  Var weighted = enc.EncodeWeighted(&tape, &adj, ones, b);
  EXPECT_TRUE(AllClose(plain.value(), weighted.value()));
}

TEST(MixhopEncoderTest, ZeroWeightsIsolateNodes) {
  // With all interaction weights zero only self-loops remain, so the
  // 1-hop propagation of a one-hot signal cannot reach other nodes.
  Rng rng(4);
  ParamStore store;
  BipartiteGraph g = SmallGraph();
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  Tape tape;
  Matrix onehot(g.num_nodes(), 1);
  onehot.at(0, 0) = 1.f;
  Var zeros = ag::Constant(
      &tape, Matrix(static_cast<int64_t>(g.num_edges()), 1, 0.f));
  Var out = ag::EdgeWeightedSpmm(&adj, zeros, ag::Constant(&tape, onehot));
  for (int64_t r = 1; r < out.rows(); ++r) {
    EXPECT_FLOAT_EQ(out.value()[r], 0.f);
  }
  EXPECT_GT(out.value()[0], 0.f);  // self-loop survives
}

TEST(MixhopEncoderTest, MatrixTransformModeGradient) {
  Rng rng(21);
  ParamStore store;
  BipartiteGraph g = SmallGraph();
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  MixhopEncoder enc(&store, "mix", 6, 1, {0, 1, 2}, 0.5f, &rng,
                    MixhopMode::kMatrixTransform);
  Parameter* base = store.CreateNormal("emb", g.num_nodes(), 6, &rng);
  GradCheckResult res = CheckGradient(base, [&](Tape* t) {
    return ag::MeanAll(
        ag::Square(enc.Encode(t, &adj.matrix, ag::Leaf(t, base))));
  });
  EXPECT_TRUE(res.ok) << res.max_abs_error;
}

TEST(MixhopEncoderTest, VectorGateInitMatchesUniformHopMixture) {
  // At initialization the vector-gated encoder with activation disabled
  // computes, for one layer, out = (base + (A⁰b + A¹b + A²b)/3) / 2 — a
  // closed form we can verify directly.
  Rng rng(22);
  ParamStore store;
  BipartiteGraph g = SmallGraph();
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  MixhopEncoder enc(&store, "mix", 5, 1, {0, 1, 2}, 0.5f, &rng,
                    MixhopMode::kVectorGate, /*activation=*/false);
  Parameter* base = store.CreateNormal("emb", g.num_nodes(), 5, &rng);
  Tape tape;
  Var out = enc.Encode(&tape, &adj.matrix, ag::Leaf(&tape, base));

  const Matrix& b = base->value;
  Matrix a1, a2;
  adj.matrix.Spmm(b, &a1);
  adj.matrix.Spmm(a1, &a2);
  Matrix mixture = Scale(Add(Add(b, a1), a2), 1.f / 3.f);
  Matrix expected = Scale(Add(b, mixture), 0.5f);
  EXPECT_TRUE(AllClose(out.value(), expected));
}

TEST(GibLossTest, BernoulliStructureKlProperties) {
  // Zero exactly at p == prior; positive away from it; differentiable.
  Rng rng(23);
  ParamStore store;
  Parameter* logits = store.CreateNormal("logits", 12, 1, &rng, 0.8f);
  {
    Tape tape;
    Var p = ag::Constant(&tape, Matrix(20, 1, 0.7f));
    Var kl = BernoulliStructureKl(&tape, p, 0.7f);
    EXPECT_NEAR(kl.value().scalar(), 0.0, 1e-5);
  }
  {
    Tape tape;
    Var p = ag::Constant(&tape, Matrix(20, 1, 0.95f));
    Var kl = BernoulliStructureKl(&tape, p, 0.7f);
    EXPECT_GT(kl.value().scalar(), 0.05);
  }
  GradCheckResult res = CheckGradient(logits, [&](Tape* t) {
    Var p = ag::Sigmoid(ag::Leaf(t, logits));
    return BernoulliStructureKl(t, p, 0.6f);
  });
  EXPECT_TRUE(res.ok) << res.max_abs_error;
}

TEST(EdgeScorerTest, ProbabilitiesInUnitInterval) {
  Rng rng(5);
  ParamStore store;
  BipartiteGraph g = SmallGraph();
  EdgeScorer scorer(&store, "aug", 8, &rng);
  Matrix emb(g.num_nodes(), 8);
  InitNormal(&emb, &rng, 0.f, 1.f);
  Tape tape;
  Var p = scorer.Score(&tape, ag::Constant(&tape, emb), g.edges(),
                       g.num_users(), &rng);
  EXPECT_EQ(p.rows(), g.num_edges());
  EXPECT_EQ(p.cols(), 1);
  for (int64_t i = 0; i < p.value().size(); ++i) {
    EXPECT_GT(p.value()[i], 0.f);
    EXPECT_LT(p.value()[i], 1.f);
  }
}

TEST(EdgeScorerTest, DeterministicWithoutNoise) {
  Rng rng(6);
  ParamStore store;
  BipartiteGraph g = SmallGraph();
  EdgeScorer scorer(&store, "aug", 8, &rng);
  Matrix emb(g.num_nodes(), 8);
  InitNormal(&emb, &rng, 0.f, 1.f);
  Tape t1, t2;
  Var p1 = scorer.Score(&t1, ag::Constant(&t1, emb), g.edges(),
                        g.num_users(), nullptr);
  Var p2 = scorer.Score(&t2, ag::Constant(&t2, emb), g.edges(),
                        g.num_users(), nullptr);
  EXPECT_TRUE(AllClose(p1.value(), p2.value(), 0.f, 0.f));
}

TEST(EdgeScorerTest, GradientFlowsToMlpAndMasks) {
  Rng rng(7);
  ParamStore store;
  BipartiteGraph g = SmallGraph();
  EdgeScorer scorer(&store, "aug", 6, &rng, /*noise_stddev=*/0.f);
  Matrix emb(g.num_nodes(), 6);
  InitNormal(&emb, &rng, 0.f, 1.f);
  for (Parameter* p : store.params()) {
    GradCheckResult res = CheckGradient(p, [&](Tape* t) {
      return ag::MeanAll(scorer.Score(t, ag::Constant(t, emb), g.edges(),
                                      g.num_users(), nullptr));
    });
    EXPECT_TRUE(res.ok) << p->name << " err=" << res.max_abs_error;
  }
}

TEST(ReparamSamplerTest, ThresholdZeroKeepsAllSoftWeights) {
  Rng rng(8);
  Tape tape;
  Matrix probs(20, 1, 0.9f);
  Var p = ag::Constant(&tape, probs);
  Var w = SampleEdgeWeights(&tape, p, 0.5f, 0.f, &rng);
  for (int64_t i = 0; i < w.value().size(); ++i) {
    EXPECT_GT(w.value()[i], 0.f);
    EXPECT_LT(w.value()[i], 1.f);
  }
}

TEST(ReparamSamplerTest, HighThresholdDropsEdges) {
  Rng rng(9);
  Tape tape;
  Matrix probs(200, 1, 0.5f);
  Var p = ag::Constant(&tape, probs);
  Var w = SampleEdgeWeights(&tape, p, 0.2f, 0.8f, &rng);
  int64_t zero = 0, kept = 0;
  for (int64_t i = 0; i < w.value().size(); ++i) {
    if (w.value()[i] == 0.f) {
      ++zero;
    } else {
      EXPECT_GT(w.value()[i], 0.8f);
      ++kept;
    }
  }
  EXPECT_GT(zero, 0);
  EXPECT_GT(kept, 0);
}

TEST(ReparamSamplerTest, HighProbabilityEdgesSurviveMoreOften) {
  Rng rng(10);
  Matrix probs(400, 1);
  for (int64_t i = 0; i < 200; ++i) probs[i] = 0.95f;
  for (int64_t i = 200; i < 400; ++i) probs[i] = 0.05f;
  Tape tape;
  Var p = ag::Constant(&tape, probs);
  Var w = SampleEdgeWeights(&tape, p, 0.3f, 0.5f, &rng);
  int high_kept = 0, low_kept = 0;
  for (int64_t i = 0; i < 200; ++i) high_kept += w.value()[i] > 0.f;
  for (int64_t i = 200; i < 400; ++i) low_kept += w.value()[i] > 0.f;
  EXPECT_GT(high_kept, 150);
  EXPECT_LT(low_kept, 50);
}

TEST(ReparamSamplerTest, TwoCallsGiveDifferentViews) {
  Rng rng(11);
  Tape tape;
  Matrix probs(100, 1, 0.6f);
  Var p = ag::Constant(&tape, probs);
  Var w1 = SampleEdgeWeights(&tape, p, 0.3f, 0.f, &rng);
  Var w2 = SampleEdgeWeights(&tape, p, 0.3f, 0.f, &rng);
  EXPECT_FALSE(AllClose(w1.value(), w2.value(), 1e-3f, 1e-3f));
}

TEST(ReparamSamplerTest, GradientFlowsThroughSampling) {
  Rng init_rng(12);
  ParamStore store;
  Parameter* logits = store.CreateNormal("logits", 10, 1, &init_rng, 0.5f);
  // Fixed noise for the finite-difference comparison: seed per call.
  GradCheckResult res = CheckGradient(logits, [&](Tape* t) {
    Rng rng(42);  // same noise each call => deterministic loss surface
    Var p = ag::Sigmoid(ag::Leaf(t, logits));
    Var w = SampleEdgeWeights(t, p, 0.5f, 0.f, &rng);
    return ag::MeanAll(ag::Square(w));
  });
  EXPECT_TRUE(res.ok) << res.max_abs_error;
}

TEST(GibLossTest, FiniteAndDecomposes) {
  Rng rng(13);
  ParamStore store;
  BipartiteGraph g = SmallGraph();
  Parameter* z = store.CreateNormal("z", g.num_nodes(), 8, &rng);
  Parameter* zp = store.CreateNormal("zp", g.num_nodes(), 8, &rng);
  Parameter* zpp = store.CreateNormal("zpp", g.num_nodes(), 8, &rng);
  TripletBatch batch;
  batch.users = {0, 1, 2};
  batch.pos_items = {0, 0, 2};
  batch.neg_items = {2, 1, 0};
  Tape tape;
  GibConfig cfg;
  cfg.beta = 2.f;
  Var loss = GibLoss(&tape, ag::Leaf(&tape, z), ag::Leaf(&tape, zp),
                     ag::Leaf(&tape, zpp), batch, g.num_users(), cfg);
  EXPECT_TRUE(std::isfinite(loss.value().scalar()));
  // beta = 0 removes the KL term, so the loss must shrink (KL >= 0).
  Tape tape2;
  cfg.beta = 0.f;
  Var pred_only = GibLoss(&tape2, ag::Leaf(&tape2, z), ag::Leaf(&tape2, zp),
                          ag::Leaf(&tape2, zpp), batch, g.num_users(), cfg);
  EXPECT_LE(pred_only.value().scalar(), loss.value().scalar() + 1e-6);
}

TEST(GibLossTest, GradientWrtViewEmbeddings) {
  Rng rng(14);
  ParamStore store;
  BipartiteGraph g = SmallGraph();
  Parameter* z = store.CreateNormal("z", g.num_nodes(), 8, &rng);
  Parameter* zp = store.CreateNormal("zp", g.num_nodes(), 8, &rng);
  TripletBatch batch;
  batch.users = {0, 1};
  batch.pos_items = {0, 0};
  batch.neg_items = {2, 2};
  GibConfig cfg;
  GradCheckResult res = CheckGradient(zp, [&](Tape* t) {
    return GibLoss(t, ag::Leaf(t, z), ag::Leaf(t, zp), ag::Leaf(t, zp),
                   batch, g.num_users(), cfg);
  });
  EXPECT_TRUE(res.ok) << res.max_abs_error;
}

// ------------------------------------------------------- GraphAug end-to-end

TEST(GraphAugTest, TrainsWithAllComponents) {
  SyntheticData data = GeneratePreset("tiny");
  GraphAug model(&data.dataset, TinyGraphAugConfig());
  double loss = 0;
  for (int e = 0; e < 3; ++e) {
    loss = model.TrainEpoch();
    ASSERT_TRUE(std::isfinite(loss));
  }
  model.Finalize();
  EXPECT_EQ(model.user_embeddings().rows(), data.dataset.num_users);
}

class GraphAugAblationTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(GraphAugAblationTest, EveryVariantTrains) {
  const auto [mixhop, gib, cl] = GetParam();
  SyntheticData data = GeneratePreset("tiny");
  GraphAugConfig cfg = TinyGraphAugConfig();
  cfg.use_mixhop = mixhop;
  cfg.use_gib = gib;
  cfg.use_cl = cl;
  GraphAug model(&data.dataset, cfg);
  for (int e = 0; e < 2; ++e) {
    ASSERT_TRUE(std::isfinite(model.TrainEpoch()));
  }
  model.Finalize();
  Matrix scores = model.ScoreUsers({0, 1});
  for (int64_t i = 0; i < scores.size(); ++i) {
    ASSERT_TRUE(std::isfinite(scores[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(AblationGrid, GraphAugAblationTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

TEST(GraphAugTest, EdgeProbabilitiesMatchEdgeCount) {
  SyntheticData data = GeneratePreset("tiny");
  GraphAug model(&data.dataset, TinyGraphAugConfig());
  model.TrainEpoch();
  std::vector<float> probs = model.EdgeProbabilities();
  BipartiteGraph g = data.dataset.TrainGraph();
  EXPECT_EQ(probs.size(), static_cast<size_t>(g.num_edges()));
  for (float p : probs) {
    EXPECT_GT(p, 0.f);
    EXPECT_LT(p, 1.f);
  }
}

TEST(GraphAugTest, LearnsToDownweightInjectedNoise) {
  // Train GraphAug on a dataset with known noise edges and check the mean
  // learned retention probability is lower for noise edges than for
  // preference-aligned edges — the paper's Fig. 6 denoising claim.
  SyntheticConfig scfg = PresetConfig("tiny");
  scfg.num_users = 150;
  scfg.num_items = 100;
  scfg.mean_user_degree = 10;
  scfg.noise_fraction = 0.25;
  SyntheticData data = GenerateSynthetic(scfg);
  GraphAugConfig cfg = TinyGraphAugConfig();
  cfg.batches_per_epoch = 6;
  GraphAug model(&data.dataset, cfg);
  for (int e = 0; e < 15; ++e) model.TrainEpoch();

  std::vector<float> probs = model.EdgeProbabilities();
  // Graph dedups/sorts edges the same way the dataset builder did, so
  // noise_flags align with graph edge order.
  const auto& flags = data.dataset.noise_flags;
  ASSERT_EQ(probs.size(), flags.size());
  double clean_sum = 0, noise_sum = 0;
  int64_t clean_n = 0, noise_n = 0;
  for (size_t i = 0; i < probs.size(); ++i) {
    if (flags[i]) {
      noise_sum += probs[i];
      ++noise_n;
    } else {
      clean_sum += probs[i];
      ++clean_n;
    }
  }
  ASSERT_GT(noise_n, 0);
  ASSERT_GT(clean_n, 0);
  EXPECT_GT(clean_sum / clean_n, noise_sum / noise_n)
      << "clean mean " << clean_sum / clean_n << " vs noise mean "
      << noise_sum / noise_n;
}

TEST(GraphAugTest, MixhopRaisesMadOverVanilla) {
  // Table III's claim: the mixhop encoder mitigates over-smoothing, i.e.
  // produces a higher MAD than the standard GCN encoder. Over-smoothing
  // only emerges as training converges, so this test trains to
  // convergence on a medium-sized graph.
  SyntheticConfig scfg = PresetConfig("tiny");
  scfg.num_users = 250;
  scfg.num_items = 180;
  scfg.mean_user_degree = 12;
  SyntheticData data = GenerateSynthetic(scfg);
  GraphAugConfig with = TinyGraphAugConfig();
  GraphAugConfig without = TinyGraphAugConfig();
  without.use_mixhop = false;
  GraphAug m1(&data.dataset, with);
  GraphAug m2(&data.dataset, without);
  for (int e = 0; e < 40; ++e) {
    m1.TrainEpoch();
    m2.TrainEpoch();
  }
  m1.Finalize();
  m2.Finalize();
  Rng rng(3);
  const double mad_with = ComputeMad(m1.AllEmbeddings(), 4000, &rng);
  const double mad_without = ComputeMad(m2.AllEmbeddings(), 4000, &rng);
  EXPECT_GT(mad_with, mad_without * 0.9)
      << "mixhop MAD " << mad_with << " vanilla MAD " << mad_without;
}

}  // namespace
}  // namespace graphaug
