// Tests for the popularity-debiasing (unbiased-SSL future-work)
// extension: propensity model properties, IPS weight normalization,
// weighted-loss semantics, and GraphAug integration.

#include <gtest/gtest.h>

#include <cmath>

#include "core/graphaug.h"
#include "data/synthetic.h"
#include "models/debias.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

BipartiteGraph SkewGraph() {
  // Item 0 is very popular (5 users); items 1..4 have one user each.
  return BipartiteGraph(
      5, 5, {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0},
             {0, 1}, {1, 2}, {2, 3}, {3, 4}});
}

TEST(DebiasTest, PropensitiesMonotoneInPopularity) {
  BipartiteGraph g = SkewGraph();
  Matrix rho = ItemPropensities(g, /*gamma=*/1.0);
  ASSERT_EQ(rho.rows(), 5);
  EXPECT_FLOAT_EQ(rho[0], 1.f);  // most popular -> propensity 1
  for (int v = 1; v < 5; ++v) {
    EXPECT_LT(rho[v], rho[0]);
    EXPECT_GE(rho[v], 0.05f);  // clipped
  }
}

TEST(DebiasTest, GammaZeroIsUniform) {
  BipartiteGraph g = SkewGraph();
  Matrix rho = ItemPropensities(g, 0.0);
  for (int64_t v = 0; v < rho.size(); ++v) EXPECT_FLOAT_EQ(rho[v], 1.f);
}

TEST(DebiasTest, HigherGammaDebiasesHarder) {
  BipartiteGraph g = SkewGraph();
  Matrix soft = ItemPropensities(g, 0.5, 1e-4);
  Matrix hard = ItemPropensities(g, 2.0, 1e-4);
  // Tail items get lower propensity (=> higher IPS weight) under larger γ.
  EXPECT_LT(hard[1], soft[1]);
}

TEST(DebiasTest, BatchWeightsSelfNormalize) {
  BipartiteGraph g = SkewGraph();
  Matrix rho = ItemPropensities(g, 1.0);
  std::vector<int32_t> pos = {0, 1, 2, 0};
  Matrix w = BatchIpsWeights(pos, rho);
  EXPECT_NEAR(MeanAll(w), 1.0, 1e-5);
  // Tail item 1 gets more weight than head item 0.
  EXPECT_GT(w[1], w[0]);
}

TEST(DebiasTest, IpsBprUpweightsTailMistakes) {
  BipartiteGraph g = SkewGraph();
  Matrix rho = ItemPropensities(g, 1.0, 1e-3);
  Tape tape;
  // Two identical score gaps, one on a head positive, one on a tail
  // positive: the tail version must produce a larger loss.
  Matrix pos(1, 1, 0.f), neg(1, 1, 1.f);
  Var head = IpsBprLoss(&tape, ag::Constant(&tape, pos),
                        ag::Constant(&tape, neg), {0}, rho);
  Var tail = IpsBprLoss(&tape, ag::Constant(&tape, pos),
                        ag::Constant(&tape, neg), {1}, rho);
  // Self-normalized single-element batches are equal; compare mixed batch.
  Matrix pos2(2, 1, 0.f), neg2(2, 1);
  neg2[0] = 1.f;  // mistake on head item
  neg2[1] = -5.f; // easy win on tail item
  Var mixed_head_mistake =
      IpsBprLoss(&tape, ag::Constant(&tape, pos2), ag::Constant(&tape, neg2),
                 {0, 1}, rho);
  Matrix neg3(2, 1);
  neg3[0] = -5.f;  // easy win on head item
  neg3[1] = 1.f;   // mistake on tail item
  Var mixed_tail_mistake =
      IpsBprLoss(&tape, ag::Constant(&tape, pos2), ag::Constant(&tape, neg3),
                 {0, 1}, rho);
  EXPECT_GT(mixed_tail_mistake.value().scalar(),
            mixed_head_mistake.value().scalar());
  EXPECT_GT(head.value().scalar(), 0.f);
  EXPECT_GT(tail.value().scalar(), 0.f);
}

TEST(DebiasTest, GraphAugTrainsWithIps) {
  SyntheticData data = GeneratePreset("tiny");
  GraphAugConfig cfg;
  cfg.dim = 16;
  cfg.batches_per_epoch = 3;
  cfg.ips_gamma = 1.0f;
  GraphAug model(&data.dataset, cfg);
  for (int e = 0; e < 3; ++e) {
    ASSERT_TRUE(std::isfinite(model.TrainEpoch()));
  }
  model.Finalize();
}

}  // namespace
}  // namespace graphaug
