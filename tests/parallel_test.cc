// Tests for the shared parallel runtime (common/parallel.h) and the
// determinism contract of every parallelized kernel: pool stress, static
// chunking coverage, and exact bitwise equality of serial vs. parallel
// Gemm / Spmm / SpmmT / EdgeWeightedSpmm / evaluator outputs at 1, 2, and
// 7 threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "common/parallel.h"
#include "common/thread_pool.h"
#include "core/mixhop_encoder.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "graph/bipartite_graph.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

/// Every determinism test runs the kernel at these widths; 7 is prime and
/// larger than the chunk count of some kernels, exercising the
/// more-runners-than-chunks clamp.
const int kThreadCounts[] = {1, 2, 7};

/// Restores automatic thread-count resolution when a test exits.
struct ThreadCountGuard {
  ~ThreadCountGuard() { SetNumThreads(0); }
};

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(),
                      sizeof(float) * static_cast<size_t>(a.size())) == 0);
}

/// Random bipartite graph (not the latent-factor generator — this is the
/// kernel substrate, structure does not matter, only the pattern shape).
BipartiteGraph RandomGraph(int32_t users, int32_t items, int64_t edges,
                           uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> es;
  es.reserve(edges);
  for (int64_t i = 0; i < edges; ++i) {
    es.push_back({static_cast<int32_t>(rng.UniformInt(users)),
                  static_cast<int32_t>(rng.UniformInt(items))});
  }
  return BipartiteGraph(users, items, std::move(es));
}

// ------------------------------------------------------------- pool stress

TEST(ThreadPoolStressTest, NestedSubmitWaitAndReuse) {
  ThreadPool pool(4);
  // Wait on an empty pool returns immediately.
  pool.Wait();

  // Tasks that submit more tasks; Wait must cover the whole tree.
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &count] {
      count.fetch_add(1);
      for (int j = 0; j < 4; ++j) {
        pool.Submit([&count] { count.fetch_add(1); });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 8 * 5);

  // The pool stays usable after a drained Wait.
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> more{0};
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&more] { more.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(more.load(), 16);
  }
}

TEST(ThreadPoolStressTest, ParallelForCoversRangeInChunks) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(57);
  pool.ParallelFor(57, [&hits](int64_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolStressTest, ParallelForRangeStaticChunks) {
  ThreadPool pool(4);
  // grain 10 over [3, 47) must yield chunk starts 3, 13, 23, 33, 43
  // regardless of the pool width.
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  pool.ParallelForRange(3, 47, 10, [&](int64_t b, int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.push_back({b, e});
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), 5u);
  EXPECT_EQ(chunks.front().first, 3);
  EXPECT_EQ(chunks.back().second, 47);
  for (size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].second, chunks[i + 1].first);
    EXPECT_EQ(chunks[i].second - chunks[i].first, 10);
  }
}

TEST(ThreadPoolStressTest, NestedParallelForRunsSerially) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.ParallelForRange(0, 8, 1, [&](int64_t, int64_t) {
    EXPECT_TRUE(ThreadPool::InWorker());
    // A nested range must not deadlock; it runs inline on this worker.
    pool.ParallelForRange(0, 4, 1,
                          [&](int64_t, int64_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 4);
}

// --------------------------------------------------------- runtime basics

TEST(ParallelRuntimeTest, ThreadCountResolutionOrder) {
  ThreadCountGuard guard;
  SetNumThreads(5);
  EXPECT_EQ(NumThreads(), 5);
  SetNumThreads(0);  // back to env / hardware resolution
  EXPECT_GE(NumThreads(), 1);
}

TEST(ParallelRuntimeTest, ParallelForCoversEveryIndexOnce) {
  ThreadCountGuard guard;
  for (int t : kThreadCounts) {
    SetNumThreads(t);
    std::vector<std::atomic<int>> hits(1000);
    ParallelFor(0, 1000, 7, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(ParallelRuntimeTest, ParallelReduceIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  std::vector<double> vals(100000);
  Rng rng(3);
  for (double& v : vals) v = rng.Gaussian() * 1e-3;
  std::vector<double> results;
  for (int t : kThreadCounts) {
    SetNumThreads(t);
    results.push_back(ParallelReduce(0, static_cast<int64_t>(vals.size()), 997,
                                     [&](int64_t b, int64_t e) {
                                       double s = 0;
                                       for (int64_t i = b; i < e; ++i) {
                                         s += vals[static_cast<size_t>(i)];
                                       }
                                       return s;
                                     }));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i]);  // bitwise: deterministic merge order
  }
}

// ------------------------------------------------- kernel bitwise equality

TEST(ParallelKernelsTest, GemmBitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(11);
  // Tall enough that every transpose combination spans several chunks.
  Matrix a(193, 67), b(67, 141), at(67, 193), bt(141, 67);
  InitNormal(&a, &rng);
  InitNormal(&b, &rng);
  InitNormal(&at, &rng);
  InitNormal(&bt, &rng);
  struct Case {
    const Matrix *a, *b;
    bool ta, tb;
  };
  const Case cases[] = {
      {&a, &b, false, false},
      {&at, &b, true, false},
      {&a, &bt, false, true},
      {&at, &bt, true, true},
  };
  for (const Case& c : cases) {
    SetNumThreads(1);
    Matrix ref;
    Gemm(*c.a, c.ta, *c.b, c.tb, 1.3f, 0.f, &ref);
    for (int t : kThreadCounts) {
      SetNumThreads(t);
      Matrix out;
      Gemm(*c.a, c.ta, *c.b, c.tb, 1.3f, 0.f, &out);
      EXPECT_TRUE(BitwiseEqual(ref, out))
          << "ta=" << c.ta << " tb=" << c.tb << " threads=" << t;
    }
  }
}

TEST(ParallelKernelsTest, SpmmAndSpmmTBitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  BipartiteGraph g = RandomGraph(257, 181, 4000, 5);
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  Rng rng(6);
  Matrix h(g.num_nodes(), 24);
  InitNormal(&h, &rng);

  SetNumThreads(1);
  Matrix ref_fwd, ref_bwd;
  adj.matrix.Spmm(h, &ref_fwd);
  adj.matrix.SpmmT(h, &ref_bwd);
  for (int t : kThreadCounts) {
    SetNumThreads(t);
    Matrix fwd, bwd;
    adj.matrix.Spmm(h, &fwd);
    adj.matrix.SpmmT(h, &bwd);
    EXPECT_TRUE(BitwiseEqual(ref_fwd, fwd)) << "threads=" << t;
    EXPECT_TRUE(BitwiseEqual(ref_bwd, bwd)) << "threads=" << t;
    // Every explicit variant — legacy gather, permuted stream, and tiled
    // gather — must be bitwise identical to the serial reference too: they
    // accumulate each output row in the same ascending-original-row order.
    for (SpmmTVariant v : {SpmmTVariant::kGather, SpmmTVariant::kPermuted,
                           SpmmTVariant::kTiled}) {
      Matrix out;
      adj.matrix.SpmmT(h, &out, /*accumulate=*/false, v);
      EXPECT_TRUE(BitwiseEqual(ref_bwd, out))
          << "threads=" << t << " variant=" << static_cast<int>(v);
    }
  }

  // Cross-check the cached-transpose gather against the explicit
  // transposed matrix product (same math, independent code path).
  Matrix via_transpose;
  adj.matrix.Transpose().Spmm(h, &via_transpose);
  EXPECT_TRUE(AllClose(ref_bwd, via_transpose, 1e-5f, 1e-6f));

  // WithValues shares the pattern cache; products must use the new values.
  std::vector<float> doubled = adj.matrix.values();
  for (float& v : doubled) v *= 2.f;
  CsrMatrix scaled = adj.matrix.WithValues(doubled);
  Matrix scaled_bwd;
  scaled.SpmmT(h, &scaled_bwd);
  EXPECT_TRUE(AllClose(scaled_bwd, Scale(ref_bwd, 2.f), 1e-5f, 1e-6f));
}

TEST(ParallelKernelsTest, AdjacencyPowerCacheBitwiseEqualsChainedSpmm) {
  // Satellite requirement: A^k x through the cached mirror must be
  // bitwise equal to k successive Spmm calls for k in {1, 2, 3} at every
  // thread count (and likewise for the transposed powers).
  ThreadCountGuard guard;
  BipartiteGraph g = RandomGraph(211, 167, 3500, 19);
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  AdjacencyPowerCache cache(&adj.matrix);
  Rng rng(20);
  Matrix x(g.num_nodes(), 24);
  InitNormal(&x, &rng);

  for (int t : kThreadCounts) {
    SetNumThreads(t);
    for (int k = 1; k <= 3; ++k) {
      Matrix chained = x;
      Matrix chained_t = x;
      for (int i = 0; i < k; ++i) {
        Matrix next, next_t;
        adj.matrix.Spmm(chained, &next);
        adj.matrix.SpmmT(chained_t, &next_t);
        chained = std::move(next);
        chained_t = std::move(next_t);
      }
      Matrix cached, cached_t;
      cache.Apply(k, x, &cached);
      cache.ApplyTransposed(k, x, &cached_t);
      EXPECT_TRUE(BitwiseEqual(chained, cached))
          << "k=" << k << " threads=" << t;
      EXPECT_TRUE(BitwiseEqual(chained_t, cached_t))
          << "k=" << k << " threads=" << t;
    }
    // k = 0 is the identity.
    Matrix id;
    cache.Apply(0, x, &id);
    EXPECT_TRUE(BitwiseEqual(x, id));
  }
}

TEST(ParallelKernelsTest, MixhopPowerCacheEncodeMatchesPlainEncode) {
  // The SpmmPower-based encoder path (GraphAug's EncodeBase) must produce
  // the same forward values and parameter gradients as the plain Spmm
  // path at any thread count — the cache is a performance detail, not a
  // semantic one.
  ThreadCountGuard guard;
  BipartiteGraph g = RandomGraph(101, 73, 1500, 23);
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(0.f);
  AdjacencyPowerCache cache(&adj.matrix);
  Rng rng(24);
  ParamStore store;
  MixhopEncoder enc(&store, "mix", 8, 2, {0, 1, 2}, 0.5f, &rng);
  Parameter* base = store.CreateNormal("emb", g.num_nodes(), 8, &rng);

  auto run = [&](bool use_cache, Matrix* out, Matrix* gbase) {
    base->ZeroGrad();
    Tape tape;
    Var h = use_cache ? enc.Encode(&tape, &cache, ag::Leaf(&tape, base))
                      : enc.Encode(&tape, &adj.matrix, ag::Leaf(&tape, base));
    *out = h.value();
    tape.Backward(ag::MeanAll(ag::Square(h)));
    *gbase = base->grad;
  };

  SetNumThreads(1);
  Matrix ref_out, ref_grad;
  run(/*use_cache=*/false, &ref_out, &ref_grad);
  for (int t : kThreadCounts) {
    SetNumThreads(t);
    Matrix out, grad;
    run(/*use_cache=*/true, &out, &grad);
    EXPECT_TRUE(BitwiseEqual(ref_out, out)) << "threads=" << t;
    EXPECT_TRUE(BitwiseEqual(ref_grad, grad)) << "threads=" << t;
  }
}

TEST(ParallelKernelsTest, EdgeWeightedSpmmBitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  BipartiteGraph g = RandomGraph(97, 83, 1200, 7);
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  Rng rng(8);
  Matrix h(g.num_nodes(), 12), w(g.num_edges(), 1);
  InitNormal(&h, &rng);
  for (int64_t i = 0; i < w.size(); ++i) w[i] = 0.5f + 0.1f * (i % 7);

  auto run = [&](Matrix* out, Matrix* gw, Matrix* gh) {
    ParamStore store;
    Parameter* wp = store.Create("w", w.rows(), 1);
    wp->value = w;
    Parameter* hp = store.Create("h", h.rows(), h.cols());
    hp->value = h;
    wp->ZeroGrad();
    hp->ZeroGrad();
    Tape tape;
    Var y = ag::EdgeWeightedSpmm(&adj, ag::Leaf(&tape, wp),
                                 ag::Leaf(&tape, hp));
    *out = y.value();
    tape.Backward(ag::MeanAll(ag::Square(y)));
    *gw = wp->grad;
    *gh = hp->grad;
  };

  SetNumThreads(1);
  Matrix ref_out, ref_gw, ref_gh;
  run(&ref_out, &ref_gw, &ref_gh);
  for (int t : kThreadCounts) {
    SetNumThreads(t);
    Matrix out, gw, gh;
    run(&out, &gw, &gh);
    EXPECT_TRUE(BitwiseEqual(ref_out, out)) << "threads=" << t;
    EXPECT_TRUE(BitwiseEqual(ref_gw, gw)) << "threads=" << t;
    EXPECT_TRUE(BitwiseEqual(ref_gh, gh)) << "threads=" << t;
  }
}

TEST(ParallelKernelsTest, EdgeWeightedSpmmGradCheckUnderParallelRuntime) {
  // Finite-difference check of the edge-value gradient kernel while the
  // runtime dispatches to 7 threads: proves the two-pass dw accumulation
  // and the transpose-gather dh are race-free, not just reproducible.
  ThreadCountGuard guard;
  SetNumThreads(7);
  BipartiteGraph g(3, 2, {{0, 0}, {0, 1}, {1, 0}, {2, 1}});
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  Rng rng(9);
  ParamStore store;
  Parameter* w = store.CreateNormal("w", g.num_edges(), 1, &rng, 0.3f);
  for (int64_t i = 0; i < w->value.size(); ++i) {
    w->value[i] = 0.5f + std::fabs(w->value[i]);
  }
  Parameter* h = store.CreateNormal("h", g.num_nodes(), 3, &rng, 0.5f);
  for (Parameter* target : {w, h}) {
    GradCheckResult res = CheckGradient(target, [&](Tape* t) {
      return ag::MeanAll(ag::Square(
          ag::EdgeWeightedSpmm(&adj, ag::Leaf(t, w), ag::Leaf(t, h))));
    });
    EXPECT_TRUE(res.ok) << res.max_abs_error;
  }
}

TEST(ParallelKernelsTest, EvaluatorIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  // Enough evaluable users to span several 128-user ranking chunks.
  SyntheticConfig cfg;
  cfg.num_users = 400;
  cfg.num_items = 180;
  cfg.mean_user_degree = 10.0;
  cfg.seed = 12;
  const SyntheticData data = GenerateSynthetic(cfg);
  Evaluator evaluator(&data.dataset, {5, 20});

  Rng rng(13);
  Matrix user_emb(data.dataset.num_users, 16);
  Matrix item_emb(data.dataset.num_items, 16);
  InitNormal(&user_emb, &rng);
  InitNormal(&item_emb, &rng);
  const auto scorer = [&](const std::vector<int32_t>& users) {
    Matrix batch = GatherRows(user_emb, users);
    Matrix scores;
    Gemm(batch, false, item_emb, true, 1.f, 0.f, &scores);
    return scores;
  };

  SetNumThreads(1);
  const TopKMetrics ref = evaluator.Evaluate(scorer);
  ASSERT_GT(ref.num_users, 256);  // spans > 2 chunks
  for (int t : kThreadCounts) {
    SetNumThreads(t);
    const TopKMetrics m = evaluator.Evaluate(scorer);
    EXPECT_EQ(ref.num_users, m.num_users);
    for (size_t ki = 0; ki < ref.ks.size(); ++ki) {
      // Exact double equality: partials merge in user order.
      EXPECT_EQ(ref.recall[ki], m.recall[ki]) << "threads=" << t;
      EXPECT_EQ(ref.ndcg[ki], m.ndcg[ki]) << "threads=" << t;
      EXPECT_EQ(ref.precision[ki], m.precision[ki]) << "threads=" << t;
      EXPECT_EQ(ref.hit_rate[ki], m.hit_rate[ki]) << "threads=" << t;
      EXPECT_EQ(ref.map[ki], m.map[ki]) << "threads=" << t;
      EXPECT_EQ(ref.mrr[ki], m.mrr[ki]) << "threads=" << t;
    }
  }
}

TEST(ParallelKernelsTest, ElementwiseAndReductionsIdentical) {
  ThreadCountGuard guard;
  Rng rng(17);
  Matrix a(700, 90), b(700, 90);
  InitNormal(&a, &rng);
  InitNormal(&b, &rng);

  SetNumThreads(1);
  const Matrix ref_add = Add(a, b);
  const Matrix ref_mul = Mul(a, b);
  const double ref_sum = SumAll(a);
  const double ref_sq = SquaredNorm(a);
  const float ref_max = MaxAbs(a);
  const Matrix ref_rowsum = RowSum(a);
  for (int t : kThreadCounts) {
    SetNumThreads(t);
    EXPECT_TRUE(BitwiseEqual(ref_add, Add(a, b))) << t;
    EXPECT_TRUE(BitwiseEqual(ref_mul, Mul(a, b))) << t;
    EXPECT_EQ(ref_sum, SumAll(a)) << t;
    EXPECT_EQ(ref_sq, SquaredNorm(a)) << t;
    EXPECT_EQ(ref_max, MaxAbs(a)) << t;
    EXPECT_TRUE(BitwiseEqual(ref_rowsum, RowSum(a))) << t;
  }
}

}  // namespace
}  // namespace graphaug
