// Unit tests for the dense tensor substrate: Matrix semantics, all GEMM
// transpose combinations checked against a reference implementation,
// elementwise kernels, reductions, and shape utilities.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/init.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

Matrix RandomMatrix(int64_t r, int64_t c, uint64_t seed) {
  Matrix m(r, c);
  Rng rng(seed);
  InitNormal(&m, &rng, 0.f, 1.f);
  return m;
}

/// Reference O(n^3) matmul used to validate Gemm.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < b.cols(); ++j) {
      double s = 0;
      for (int64_t k = 0; k < a.cols(); ++k) s += a.at(i, k) * b.at(k, j);
      out.at(i, j) = static_cast<float>(s);
    }
  }
  return out;
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(3, 4, 2.5f);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  EXPECT_FLOAT_EQ(m.at(2, 3), 2.5f);
  m.at(1, 2) = -1.f;
  EXPECT_FLOAT_EQ(m.at(1, 2), -1.f);
  m.Zero();
  EXPECT_FLOAT_EQ(MaxAbs(m), 0.f);
}

TEST(MatrixTest, FromDataValidatesSize) {
  Matrix m(2, 2, std::vector<float>{1, 2, 3, 4});
  EXPECT_FLOAT_EQ(m.at(1, 0), 3.f);
  EXPECT_DEATH(Matrix(2, 2, std::vector<float>{1, 2, 3}), "");
}

TEST(MatrixTest, ScalarRequiresSingleElement) {
  Matrix s(1, 1, 5.f);
  EXPECT_FLOAT_EQ(s.scalar(), 5.f);
  Matrix m(2, 1);
  EXPECT_DEATH(m.scalar(), "");
}

class GemmTransposeTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(GemmTransposeTest, MatchesNaive) {
  const auto [ta, tb] = GetParam();
  Matrix a = RandomMatrix(ta ? 7 : 5, ta ? 5 : 7, 1);
  Matrix b = RandomMatrix(tb ? 6 : 7, tb ? 7 : 6, 2);
  Matrix out;
  Gemm(a, ta, b, tb, 1.f, 0.f, &out);
  Matrix ref = NaiveMatMul(ta ? Transpose(a) : a, tb ? Transpose(b) : b);
  EXPECT_TRUE(AllClose(out, ref)) << "ta=" << ta << " tb=" << tb;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, GemmTransposeTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(GemmTest, AlphaBetaAccumulation) {
  Matrix a = RandomMatrix(3, 4, 3);
  Matrix b = RandomMatrix(4, 2, 4);
  Matrix out(3, 2, 1.f);
  Gemm(a, false, b, false, 2.f, 0.5f, &out);
  Matrix ref = Scale(NaiveMatMul(a, b), 2.f);
  for (int64_t i = 0; i < ref.size(); ++i) ref[i] += 0.5f;
  EXPECT_TRUE(AllClose(out, ref));
}

TEST(OpsTest, ElementwiseAndReductions) {
  Matrix a(2, 2, std::vector<float>{1, -2, 3, -4});
  Matrix b(2, 2, std::vector<float>{2, 2, 2, 2});
  EXPECT_TRUE(AllClose(Add(a, b), Matrix(2, 2, {3, 0, 5, -2})));
  EXPECT_TRUE(AllClose(Sub(a, b), Matrix(2, 2, {-1, -4, 1, -6})));
  EXPECT_TRUE(AllClose(Mul(a, b), Matrix(2, 2, {2, -4, 6, -8})));
  EXPECT_DOUBLE_EQ(SumAll(a), -2.0);
  EXPECT_DOUBLE_EQ(MeanAll(a), -0.5);
  EXPECT_FLOAT_EQ(MaxAbs(a), 4.f);
  EXPECT_DOUBLE_EQ(SquaredNorm(a), 1 + 4 + 9 + 16);
}

TEST(OpsTest, RowReductions) {
  Matrix a(2, 3, std::vector<float>{1, 2, 3, 4, 5, 6});
  Matrix rs = RowSum(a);
  EXPECT_FLOAT_EQ(rs[0], 6.f);
  EXPECT_FLOAT_EQ(rs[1], 15.f);
  Matrix rm = RowMean(a);
  EXPECT_FLOAT_EQ(rm[0], 2.f);
  Matrix rn = RowNorm(a);
  EXPECT_NEAR(rn[0], std::sqrt(14.f), 1e-5);
  Matrix rd = RowDot(a, a);
  EXPECT_FLOAT_EQ(rd[1], 16 + 25 + 36);
  Matrix rc = RowCosine(a, a);
  EXPECT_NEAR(rc[0], 1.f, 1e-6);
}

TEST(OpsTest, ShapeUtilities) {
  Matrix a(2, 2, std::vector<float>{1, 2, 3, 4});
  Matrix b(2, 1, std::vector<float>{9, 8});
  Matrix cc = ConcatCols(a, b);
  EXPECT_EQ(cc.cols(), 3);
  EXPECT_FLOAT_EQ(cc.at(1, 2), 8.f);
  Matrix cr = ConcatRows(a, a);
  EXPECT_EQ(cr.rows(), 4);
  Matrix sc = SliceCols(cc, 1, 2);
  EXPECT_FLOAT_EQ(sc.at(0, 1), 9.f);
  Matrix sr = SliceRows(cr, 2, 2);
  EXPECT_TRUE(AllClose(sr, a));
  Matrix t = Transpose(a);
  EXPECT_FLOAT_EQ(t.at(0, 1), 3.f);
}

TEST(OpsTest, GatherAndScatter) {
  Matrix a(3, 2, std::vector<float>{1, 2, 3, 4, 5, 6});
  Matrix g = GatherRows(a, {2, 0, 2});
  EXPECT_FLOAT_EQ(g.at(0, 0), 5.f);
  EXPECT_FLOAT_EQ(g.at(2, 1), 6.f);
  Matrix out(3, 2);
  ScatterAddRows(g, {0, 0, 1}, &out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 6.f);  // 5 + 1
  EXPECT_FLOAT_EQ(out.at(1, 1), 6.f);
}

TEST(InitTest, XavierBoundsAndNormalMoments) {
  Rng rng(77);
  Matrix m(200, 100);
  InitXavier(&m, &rng);
  const float bound = std::sqrt(6.f / (200 + 100));
  EXPECT_LE(MaxAbs(m), bound + 1e-6);
  Matrix n(400, 50);
  InitNormal(&n, &rng, 0.f, 0.1f);
  EXPECT_NEAR(MeanAll(n), 0.0, 0.01);
  EXPECT_NEAR(std::sqrt(SquaredNorm(n) / n.size()), 0.1, 0.01);
}

TEST(OpsTest, AllCloseDetectsDifferences) {
  Matrix a(2, 2, 1.f);
  Matrix b = a;
  EXPECT_TRUE(AllClose(a, b));
  b.at(1, 1) = 1.1f;
  EXPECT_FALSE(AllClose(a, b));
  EXPECT_FALSE(AllClose(a, Matrix(2, 3)));
}

}  // namespace
}  // namespace graphaug
