// Tests for the data pipeline: synthetic generator statistical
// properties, preset density ordering, train/test splitting, TSV
// round-trips, BPR sampling validity, and dataset statistics.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "data/dataset.h"
#include "data/io.h"
#include "data/sampler.h"
#include "data/stats.h"
#include "data/synthetic.h"

namespace graphaug {
namespace {

TEST(SplitTest, LeaveOutKeepsAtLeastOneTrainPerUser) {
  std::vector<Edge> edges;
  for (int32_t u = 0; u < 20; ++u) {
    for (int32_t v = 0; v <= u % 4; ++v) edges.push_back({u, v});
  }
  Rng rng(1);
  std::vector<Edge> train, test;
  SplitLeaveOut(edges, 0.5, &rng, &train, &test);
  EXPECT_EQ(train.size() + test.size(), edges.size());
  std::vector<int> train_count(20, 0);
  for (const Edge& e : train) train_count[e.user]++;
  for (int32_t u = 0; u < 20; ++u) EXPECT_GE(train_count[u], 1);
}

TEST(SplitTest, FractionRoughlyRespected) {
  std::vector<Edge> edges;
  for (int32_t u = 0; u < 50; ++u) {
    for (int32_t v = 0; v < 20; ++v) edges.push_back({u, v});
  }
  Rng rng(2);
  std::vector<Edge> train, test;
  SplitLeaveOut(edges, 0.25, &rng, &train, &test);
  EXPECT_EQ(test.size(), 50u * 5u);  // exactly 25% per user here
}

TEST(SyntheticTest, GeneratesValidDataset) {
  SyntheticData data = GeneratePreset("tiny");
  const Dataset& d = data.dataset;
  EXPECT_EQ(d.num_users, 60);
  EXPECT_EQ(d.num_items, 50);
  EXPECT_GT(d.train_edges.size(), 100u);
  EXPECT_GT(d.test_edges.size(), 20u);
  EXPECT_EQ(d.noise_flags.size(), d.train_edges.size());
  for (const Edge& e : d.train_edges) {
    EXPECT_GE(e.user, 0);
    EXPECT_LT(e.user, d.num_users);
    EXPECT_GE(e.item, 0);
    EXPECT_LT(e.item, d.num_items);
  }
  // Ground truth factors exist for the case study.
  EXPECT_EQ(data.user_factors.rows(), d.num_users);
  EXPECT_EQ(data.item_community.size(), static_cast<size_t>(d.num_items));
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  SyntheticData a = GeneratePreset("tiny");
  SyntheticData b = GeneratePreset("tiny");
  ASSERT_EQ(a.dataset.train_edges.size(), b.dataset.train_edges.size());
  for (size_t i = 0; i < a.dataset.train_edges.size(); ++i) {
    EXPECT_TRUE(a.dataset.train_edges[i] == b.dataset.train_edges[i]);
  }
  SyntheticData c = GeneratePreset("tiny", /*seed=*/999);
  EXPECT_NE(a.dataset.train_edges.size(), 0u);
  // Different seed should produce a different edge set (overwhelmingly).
  bool any_diff = a.dataset.train_edges.size() != c.dataset.train_edges.size();
  if (!any_diff) {
    for (size_t i = 0; i < a.dataset.train_edges.size(); ++i) {
      if (!(a.dataset.train_edges[i] == c.dataset.train_edges[i])) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, NoiseFractionApproximatelyRespected) {
  SyntheticConfig cfg = PresetConfig("tiny");
  cfg.num_users = 300;
  cfg.num_items = 200;
  cfg.mean_user_degree = 10;
  cfg.noise_fraction = 0.2;
  SyntheticData data = GenerateSynthetic(cfg);
  int64_t noisy = 0;
  for (bool f : data.dataset.noise_flags) noisy += f;
  const double frac =
      static_cast<double>(noisy) / data.dataset.noise_flags.size();
  // Train keeps all noise but only ~80% of aligned edges, so the observed
  // fraction is a bit above the generative rate.
  EXPECT_GT(frac, 0.12);
  EXPECT_LT(frac, 0.40);
}

TEST(SyntheticTest, PresetDensityOrderingMatchesPaper) {
  // Table I: Gowalla is the densest; Retail Rocket and Amazon are sparse.
  DatasetStats gowalla =
      ComputeStats(GeneratePreset("gowalla-sim").dataset);
  DatasetStats rr =
      ComputeStats(GeneratePreset("retailrocket-sim").dataset);
  DatasetStats amazon = ComputeStats(GeneratePreset("amazon-sim").dataset);
  EXPECT_GT(gowalla.density, rr.density);
  EXPECT_GT(gowalla.density, amazon.density);
  EXPECT_GT(gowalla.mean_user_degree, rr.mean_user_degree);
}

TEST(SyntheticTest, PowerLawSkewPresent) {
  DatasetStats s = ComputeStats(GeneratePreset("gowalla-sim").dataset);
  // Long-tail item popularity: Gini well above uniform.
  EXPECT_GT(s.gini_item_popularity, 0.3);
  EXPECT_GT(s.max_user_degree, 3 * s.mean_user_degree);
}

TEST(IoTest, TsvRoundTrip) {
  SyntheticData data = GeneratePreset("tiny");
  const std::string path = "/tmp/graphaug_io_test.tsv";
  ASSERT_TRUE(SaveDatasetTsv(data.dataset, path));
  Dataset loaded;
  ASSERT_TRUE(LoadDatasetTsv(path, &loaded));
  EXPECT_EQ(loaded.name, data.dataset.name);
  EXPECT_EQ(loaded.num_users, data.dataset.num_users);
  EXPECT_EQ(loaded.num_items, data.dataset.num_items);
  ASSERT_EQ(loaded.train_edges.size(), data.dataset.train_edges.size());
  ASSERT_EQ(loaded.test_edges.size(), data.dataset.test_edges.size());
  for (size_t i = 0; i < loaded.train_edges.size(); ++i) {
    EXPECT_TRUE(loaded.train_edges[i] == data.dataset.train_edges[i]);
    EXPECT_EQ(loaded.noise_flags[i], data.dataset.noise_flags[i]);
  }
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileReturnsFalse) {
  Dataset d;
  EXPECT_FALSE(LoadDatasetTsv("/nonexistent/nope.tsv", &d));
}

TEST(SamplerTest, TripletsAreValid) {
  SyntheticData data = GeneratePreset("tiny");
  BipartiteGraph g = data.dataset.TrainGraph();
  TripletSampler sampler(&g);
  Rng rng(3);
  TripletBatch batch = sampler.Sample(500, &rng);
  EXPECT_GT(batch.size(), 450u);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(g.HasEdge(batch.users[i], batch.pos_items[i]));
    EXPECT_FALSE(g.HasEdge(batch.users[i], batch.neg_items[i]));
  }
}

TEST(SamplerTest, DistinctNodeBatches) {
  SyntheticData data = GeneratePreset("tiny");
  BipartiteGraph g = data.dataset.TrainGraph();
  TripletSampler sampler(&g);
  Rng rng(4);
  std::vector<int32_t> users = sampler.SampleUsers(30, &rng);
  EXPECT_EQ(std::set<int32_t>(users.begin(), users.end()).size(), 30u);
  // Requesting more than the universe returns everyone.
  std::vector<int32_t> all = sampler.SampleUsers(10000, &rng);
  EXPECT_EQ(all.size(), static_cast<size_t>(g.num_users()));
}

TEST(StatsTest, GroupUsersByDegree) {
  Dataset d;
  d.num_users = 5;
  d.num_items = 60;
  // Degrees: 2, 12, 25, 37, 49.
  for (int32_t u = 0; u < 5; ++u) {
    const int deg[] = {2, 12, 25, 37, 49};
    for (int32_t v = 0; v < deg[u]; ++v) d.train_edges.push_back({u, v});
  }
  auto groups = GroupUsersByDegree(d, {0, 10, 20, 30, 40, 50});
  ASSERT_EQ(groups.size(), 5u);
  for (size_t g = 0; g < 5; ++g) {
    ASSERT_EQ(groups[g].size(), 1u);
    EXPECT_EQ(groups[g][0], static_cast<int32_t>(g));
  }
  auto labels = GroupLabels({0, 10, 20});
  EXPECT_EQ(labels[0], "0-10");
  EXPECT_EQ(labels[1], "10-20");
}

TEST(StatsTest, ComputeStatsBasics) {
  Dataset d;
  d.num_users = 2;
  d.num_items = 4;
  d.train_edges = {{0, 0}, {0, 1}, {1, 0}};
  d.test_edges = {{0, 2}};
  DatasetStats s = ComputeStats(d);
  EXPECT_EQ(s.num_train, 3);
  EXPECT_EQ(s.num_test, 1);
  EXPECT_DOUBLE_EQ(s.density, 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(s.mean_user_degree, 1.5);
  EXPECT_DOUBLE_EQ(s.max_user_degree, 2.0);
}

}  // namespace
}  // namespace graphaug
