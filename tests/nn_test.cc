// Tests for the NN building blocks: Linear/MLP shapes, gradients through
// layers, and activation dispatch.

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "nn/layers.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  ParamStore store;
  Linear lin(&store, "lin", 4, 3, &rng);
  Tape tape;
  Matrix x(5, 4);
  InitNormal(&x, &rng);
  Var y = lin.Forward(&tape, ag::Constant(&tape, x));
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 3);
  // Bias contributes: shift bias and outputs must shift.
  lin.bias()->value.Fill(1.f);
  Tape tape2;
  Var y2 = lin.Forward(&tape2, ag::Constant(&tape2, x));
  Matrix diff = Sub(y2.value(), y.value());
  for (int64_t i = 0; i < diff.size(); ++i) EXPECT_NEAR(diff[i], 1.f, 1e-5);
}

TEST(LinearTest, GradientThroughWeightAndBias) {
  Rng rng(2);
  ParamStore store;
  Linear lin(&store, "lin", 3, 2, &rng);
  Matrix x(4, 3);
  InitNormal(&x, &rng);
  for (Parameter* p : {lin.weight(), lin.bias()}) {
    GradCheckResult res = CheckGradient(p, [&](Tape* t) {
      return ag::MeanAll(
          ag::Square(lin.Forward(t, ag::Constant(t, x))));
    });
    EXPECT_TRUE(res.ok) << res.max_abs_error;
  }
}

TEST(MlpTest, DepthAndGradient) {
  Rng rng(3);
  ParamStore store;
  Mlp mlp(&store, "mlp", {6, 4, 2, 1}, &rng, Activation::kLeakyRelu);
  EXPECT_EQ(mlp.layers().size(), 3u);
  Matrix x(7, 6);
  InitNormal(&x, &rng);
  Tape tape;
  Var y = mlp.Forward(&tape, ag::Constant(&tape, x));
  EXPECT_EQ(y.rows(), 7);
  EXPECT_EQ(y.cols(), 1);
  GradCheckResult res =
      CheckGradient(mlp.layers()[0].weight(), [&](Tape* t) {
        return ag::MeanAll(mlp.Forward(t, ag::Constant(t, x)));
      });
  EXPECT_TRUE(res.ok) << res.max_abs_error;
}

TEST(MlpTest, ActivateLastApplies) {
  Rng rng(4);
  ParamStore store;
  Mlp mlp(&store, "mlp", {3, 2}, &rng, Activation::kSigmoid,
          /*activate_last=*/true);
  Matrix x(5, 3);
  InitNormal(&x, &rng, 0.f, 2.f);
  Tape tape;
  Var y = mlp.Forward(&tape, ag::Constant(&tape, x));
  for (int64_t i = 0; i < y.value().size(); ++i) {
    EXPECT_GT(y.value()[i], 0.f);
    EXPECT_LT(y.value()[i], 1.f);
  }
}

TEST(ActivationTest, DispatchMatchesOps) {
  Rng rng(5);
  Matrix x(3, 3);
  InitNormal(&x, &rng, 0.f, 2.f);
  Tape tape;
  Var v = ag::Constant(&tape, x);
  EXPECT_TRUE(AllClose(Activate(v, Activation::kNone).value(), x));
  Matrix relu = Activate(v, Activation::kRelu).value();
  for (int64_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(relu[i], x[i] > 0 ? x[i] : 0.f);
  }
  Matrix lrelu = Activate(v, Activation::kLeakyRelu, 0.5f).value();
  for (int64_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(lrelu[i], x[i] > 0 ? x[i] : 0.5f * x[i]);
  }
}

TEST(ParamStoreTest, AccountingAndZeroGrad) {
  Rng rng(6);
  ParamStore store;
  Parameter* a = store.CreateNormal("a", 2, 3, &rng);
  Parameter* b = store.CreateXavier("b", 4, 4, &rng);
  EXPECT_EQ(store.NumScalars(), 2 * 3 + 4 * 4);
  EXPECT_GT(store.SquaredParamNorm(), 0.0);
  a->grad.Fill(1.f);
  store.ZeroGrad();
  EXPECT_FLOAT_EQ(MaxAbs(a->grad), 0.f);
  EXPECT_FLOAT_EQ(MaxAbs(b->grad), 0.f);
  b->trainable = false;
  const double norm_a = SquaredNorm(a->value);
  EXPECT_DOUBLE_EQ(store.SquaredParamNorm(), norm_a);
}

}  // namespace
}  // namespace graphaug
