// Tests for the top-K retrieval layer (DESIGN.md §10): heap-vs-dense
// exact equality including tie handling, pruned-index exactness at
// bound_slack = 1 on random and norm-skewed embeddings, the recall floor
// under relaxed slack, Save/Load round-trips, bitwise thread-count
// determinism, scalar-vs-AVX2 score_panels parity, and Evaluator metric
// parity between the dense oracle and the retrieval-backed path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "retrieval/mips_index.h"
#include "retrieval/topk.h"
#include "tensor/init.h"
#include "tensor/kernel_dispatch.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

using retrieval::MipsIndex;
using retrieval::MipsIndexConfig;
using retrieval::Retriever;
using retrieval::TopKHeap;
using retrieval::TopKList;
using retrieval::TopKScorer;

/// RAII guard for the shared thread pool (same idiom as simd_test).
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { SetNumThreads(n); }
  ~ScopedThreads() { SetNumThreads(1); }
};

Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  InitNormal(&m, &rng, 0.f, 1.f);
  return m;
}

/// Dense oracle: scores every item through the same dispatched GEMM the
/// retrieval engines use and ranks (score desc, id asc) — the shared
/// ranking contract. Returns the full sorted list cut to k.
std::vector<TopKList> DenseTopK(const Matrix& queries, const Matrix& items,
                                int k,
                                const std::vector<std::vector<int32_t>>& ex) {
  Matrix scores;
  Gemm(queries, false, items, true, 1.f, 0.f, &scores);
  std::vector<TopKList> out(static_cast<size_t>(queries.rows()));
  for (int64_t q = 0; q < queries.rows(); ++q) {
    const float* row = scores.row(q);
    std::vector<int32_t> order;
    order.reserve(static_cast<size_t>(items.rows()));
    const auto& exq = ex.empty() ? Retriever::NoExclusions() : ex[q];
    for (int32_t j = 0; j < items.rows(); ++j) {
      if (!std::binary_search(exq.begin(), exq.end(), j)) order.push_back(j);
    }
    std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
      return TopKHeap::Better(row[a], a, row[b], b);
    });
    if (static_cast<int>(order.size()) > k) order.resize(static_cast<size_t>(k));
    for (int32_t j : order) {
      out[static_cast<size_t>(q)].items.push_back(j);
      out[static_cast<size_t>(q)].scores.push_back(row[j]);
    }
  }
  return out;
}

std::vector<TopKList> RunRetriever(const Retriever& r, const Matrix& queries, int k,
                          const std::vector<std::vector<int32_t>>& ex) {
  static const std::vector<int32_t> kNone;
  std::vector<TopKList> out;
  r.RetrieveBatch(
      queries, k,
      [&](int64_t q) -> const std::vector<int32_t>& {
        return ex.empty() ? kNone : ex[static_cast<size_t>(q)];
      },
      &out);
  return out;
}

/// Exact equality: same items in the same order, bitwise-equal scores.
void ExpectListsEqual(const std::vector<TopKList>& got,
                      const std::vector<TopKList>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t q = 0; q < got.size(); ++q) {
    ASSERT_EQ(got[q].items.size(), want[q].items.size()) << "query " << q;
    for (size_t i = 0; i < got[q].items.size(); ++i) {
      EXPECT_EQ(got[q].items[i], want[q].items[i])
          << "query " << q << " rank " << i;
      EXPECT_EQ(std::memcmp(&got[q].scores[i], &want[q].scores[i],
                            sizeof(float)),
                0)
          << "query " << q << " rank " << i << ": " << got[q].scores[i]
          << " vs " << want[q].scores[i];
    }
  }
}

double RecallVs(const std::vector<TopKList>& got,
                const std::vector<TopKList>& truth) {
  int64_t hit = 0, total = 0;
  for (size_t q = 0; q < truth.size(); ++q) {
    for (int32_t id : truth[q].items) {
      ++total;
      hit += std::count(got[q].items.begin(), got[q].items.end(), id);
    }
  }
  return total ? static_cast<double>(hit) / static_cast<double>(total) : 1.0;
}

/// Scales item rows by a Zipf-like factor so norms span ~two orders of
/// magnitude — the skew regime trained recommender embeddings live in,
/// and the one the norm-descending cutoff must stay exact under.
void SkewNorms(Matrix* items, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> rank(static_cast<size_t>(items->rows()));
  for (size_t i = 0; i < rank.size(); ++i) rank[i] = static_cast<int32_t>(i);
  for (size_t i = rank.size(); i > 1; --i) {
    std::swap(rank[i - 1], rank[rng.NextU64() % i]);
  }
  for (int64_t j = 0; j < items->rows(); ++j) {
    const float s = std::pow(1.f + static_cast<float>(rank[j]), -0.7f) * 10.f;
    float* row = items->row(j);
    for (int64_t c = 0; c < items->cols(); ++c) row[c] *= s;
  }
}

// ------------------------------------------------------------- TopKHeap

TEST(TopKHeapTest, KeepsBestKWithIdTieBreak) {
  TopKHeap heap(3);
  // Two candidates tie at 2.f: the lower id must survive and rank first
  // among equals.
  heap.Offer(1.f, 9);
  heap.Offer(2.f, 7);
  heap.Offer(0.5f, 1);
  heap.Offer(2.f, 3);
  heap.Offer(1.5f, 2);
  TopKList list = heap.TakeSortedDescending();
  ASSERT_EQ(list.items.size(), 3u);
  EXPECT_EQ(list.items[0], 3);  // 2.f, lower id
  EXPECT_EQ(list.items[1], 7);  // 2.f, higher id
  EXPECT_EQ(list.items[2], 2);  // 1.5f
  EXPECT_EQ(list.scores[0], 2.f);
  EXPECT_EQ(list.scores[2], 1.5f);
}

TEST(TopKHeapTest, ShortStreamReturnsAll) {
  TopKHeap heap(10);
  heap.Offer(1.f, 0);
  heap.Offer(3.f, 1);
  TopKList list = heap.TakeSortedDescending();
  ASSERT_EQ(list.items.size(), 2u);
  EXPECT_EQ(list.items[0], 1);
  EXPECT_EQ(list.items[1], 0);
}

// ------------------------------------------- heap scorer vs dense oracle

TEST(TopKScorerTest, MatchesDenseOracleExactly) {
  const Matrix items = RandomMatrix(777, 24, 11);  // non-multiple of tiles
  const Matrix queries = RandomMatrix(65, 24, 12);
  TopKScorer scorer(items);
  ExpectListsEqual(RunRetriever(scorer, queries, 20, {}),
                   DenseTopK(queries, items, 20, {}));
}

TEST(TopKScorerTest, TiesFromDuplicatedRowsMatchDense) {
  Matrix items = RandomMatrix(120, 16, 21);
  // Force exact score ties: several items share identical embeddings, so
  // only the ascending-id tie-break orders them.
  for (int64_t j = 40; j < 80; ++j) {
    std::memcpy(items.row(j), items.row(j % 8),
                static_cast<size_t>(items.cols()) * sizeof(float));
  }
  const Matrix queries = RandomMatrix(30, 16, 22);
  TopKScorer scorer(items);
  ExpectListsEqual(RunRetriever(scorer, queries, 25, {}),
                   DenseTopK(queries, items, 25, {}));
}

TEST(TopKScorerTest, ExclusionsAreNeverReturned) {
  const Matrix items = RandomMatrix(90, 12, 31);
  const Matrix queries = RandomMatrix(17, 12, 32);
  std::vector<std::vector<int32_t>> ex(17);
  Rng rng(33);
  for (auto& e : ex) {
    for (int32_t j = 0; j < 90; ++j) {
      if (rng.NextU64() % 3 == 0) e.push_back(j);
    }
  }
  TopKScorer scorer(items);
  const auto got = RunRetriever(scorer, queries, 10, ex);
  for (size_t q = 0; q < got.size(); ++q) {
    for (int32_t id : got[q].items) {
      EXPECT_FALSE(std::binary_search(ex[q].begin(), ex[q].end(), id));
    }
  }
  ExpectListsEqual(got, DenseTopK(queries, items, 10, ex));
}

TEST(TopKScorerTest, KLargerThanCatalogReturnsEverything) {
  const Matrix items = RandomMatrix(15, 8, 41);
  const Matrix queries = RandomMatrix(4, 8, 42);
  TopKScorer scorer(items);
  const auto got = RunRetriever(scorer, queries, 50, {});
  for (const auto& list : got) EXPECT_EQ(list.items.size(), 15u);
  ExpectListsEqual(got, DenseTopK(queries, items, 50, {}));
}

// ------------------------------------------------- pruned MIPS exactness

TEST(MipsIndexTest, ExactAtSlackOneOnRandomEmbeddings) {
  const Matrix items = RandomMatrix(600, 24, 51);
  const Matrix queries = RandomMatrix(80, 24, 52);
  const MipsIndex index = MipsIndex::Build(items);
  EXPECT_EQ(index.num_items(), 600);
  ExpectListsEqual(RunRetriever(index, queries, 20, {}),
                   DenseTopK(queries, items, 20, {}));
}

TEST(MipsIndexTest, ExactAtSlackOneOnSkewedNorms) {
  Matrix items = RandomMatrix(800, 32, 61);
  SkewNorms(&items, 62);
  const Matrix queries = RandomMatrix(60, 32, 63);
  MipsIndexConfig cfg;
  cfg.num_clusters = 16;
  const MipsIndex index = MipsIndex::Build(items, cfg);
  std::vector<std::vector<int32_t>> ex(60);
  Rng rng(64);
  for (auto& e : ex) {
    for (int32_t j = 0; j < 800; ++j) {
      if (rng.NextU64() % 10 == 0) e.push_back(j);
    }
  }
  ExpectListsEqual(RunRetriever(index, queries, 20, ex),
                   DenseTopK(queries, items, 20, ex));
}

TEST(MipsIndexTest, ExactWithDuplicateRowTies) {
  Matrix items = RandomMatrix(256, 16, 71);
  for (int64_t j = 100; j < 140; ++j) {
    std::memcpy(items.row(j), items.row(j % 5),
                static_cast<size_t>(items.cols()) * sizeof(float));
  }
  const Matrix queries = RandomMatrix(25, 16, 72);
  const MipsIndex index = MipsIndex::Build(items);
  ExpectListsEqual(RunRetriever(index, queries, 30, {}),
                   DenseTopK(queries, items, 30, {}));
}

TEST(MipsIndexTest, SingleClusterDegeneratesToNormPruning) {
  Matrix items = RandomMatrix(300, 16, 81);
  SkewNorms(&items, 82);
  const Matrix queries = RandomMatrix(20, 16, 83);
  MipsIndexConfig cfg;
  cfg.num_clusters = 1;
  const MipsIndex index = MipsIndex::Build(items, cfg);
  EXPECT_EQ(index.num_clusters(), 1);
  ExpectListsEqual(RunRetriever(index, queries, 15, {}),
                   DenseTopK(queries, items, 15, {}));
}

TEST(MipsIndexTest, RelaxedSlackKeepsHighRecall) {
  Matrix items = RandomMatrix(1000, 32, 91);
  SkewNorms(&items, 92);
  const Matrix queries = RandomMatrix(100, 32, 93);
  MipsIndexConfig cfg;
  cfg.bound_slack = 0.9f;
  const MipsIndex index = MipsIndex::Build(items, cfg);
  const auto truth = DenseTopK(queries, items, 20, {});
  const double recall = RecallVs(RunRetriever(index, queries, 20, {}), truth);
  // The CI gate floor; slack 0.9 typically stays well above it.
  EXPECT_GE(recall, 0.99);
}

TEST(MipsIndexTest, TinyAndEdgeCatalogs) {
  // Fewer items than k, fewer items than clusters, single item.
  for (int64_t n : {1, 3, 9}) {
    const Matrix items = RandomMatrix(n, 8, 100 + static_cast<uint64_t>(n));
    const Matrix queries = RandomMatrix(5, 8, 110 + static_cast<uint64_t>(n));
    const MipsIndex index = MipsIndex::Build(items);
    ExpectListsEqual(RunRetriever(index, queries, 4, {}),
                     DenseTopK(queries, items, 4, {}));
  }
}

// -------------------------------------------------- serialization

TEST(MipsIndexTest, SaveLoadRoundTripIsBitwiseIdentical) {
  Matrix items = RandomMatrix(400, 24, 121);
  SkewNorms(&items, 122);
  MipsIndexConfig cfg;
  cfg.num_clusters = 10;
  cfg.kmeans_iterations = 7;
  cfg.kmeans_restarts = 3;
  cfg.seed = 0xabcd;
  cfg.bound_slack = 0.97f;
  const MipsIndex built = MipsIndex::Build(items, cfg);

  const std::string path = "/tmp/graphaug_mips_test.bin";
  ASSERT_TRUE(built.Save(path));
  MipsIndex loaded;
  ASSERT_TRUE(MipsIndex::Load(path, &loaded));
  std::remove(path.c_str());

  EXPECT_EQ(loaded.config().num_clusters, cfg.num_clusters);
  EXPECT_EQ(loaded.config().kmeans_iterations, cfg.kmeans_iterations);
  EXPECT_EQ(loaded.config().kmeans_restarts, cfg.kmeans_restarts);
  EXPECT_EQ(loaded.config().seed, cfg.seed);
  EXPECT_EQ(loaded.config().bound_slack, cfg.bound_slack);
  EXPECT_EQ(loaded.num_items(), built.num_items());
  EXPECT_EQ(loaded.num_clusters(), built.num_clusters());
  EXPECT_EQ(loaded.ids(), built.ids());

  const Matrix queries = RandomMatrix(40, 24, 123);
  ExpectListsEqual(RunRetriever(loaded, queries, 20, {}),
                   RunRetriever(built, queries, 20, {}));
}

TEST(MipsIndexTest, LoadRejectsGarbageAndLeavesIndexUntouched) {
  const std::string path = "/tmp/graphaug_mips_bad.bin";
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "NOTANIDX-garbage-bytes";
  fwrite(junk, 1, sizeof(junk), f);
  fclose(f);

  const Matrix items = RandomMatrix(50, 8, 131);
  MipsIndex index = MipsIndex::Build(items);
  const int64_t before = index.num_items();
  EXPECT_FALSE(MipsIndex::Load(path, &index));
  EXPECT_EQ(index.num_items(), before);  // untouched on failure
  std::remove(path.c_str());
  EXPECT_FALSE(MipsIndex::Load("/tmp/graphaug_mips_missing.bin", &index));
}

// ------------------------------------------- thread-count determinism

TEST(RetrievalDeterminismTest, BitwiseIdenticalAcrossThreadCounts) {
  Matrix items = RandomMatrix(700, 24, 141);
  SkewNorms(&items, 142);
  const Matrix queries = RandomMatrix(150, 24, 143);
  std::vector<std::vector<int32_t>> ex(150);
  Rng rng(144);
  for (auto& e : ex) {
    for (int32_t j = 0; j < 700; ++j) {
      if (rng.NextU64() % 8 == 0) e.push_back(j);
    }
  }
  const TopKScorer scorer(items);
  const MipsIndex index = MipsIndex::Build(items);

  std::vector<TopKList> heap1, pruned1;
  {
    ScopedThreads guard(1);
    heap1 = RunRetriever(scorer, queries, 20, ex);
    pruned1 = RunRetriever(index, queries, 20, ex);
  }
  for (int threads : {2, 7}) {
    ScopedThreads guard(threads);
    ExpectListsEqual(RunRetriever(scorer, queries, 20, ex), heap1);
    ExpectListsEqual(RunRetriever(index, queries, 20, ex), pruned1);
  }
}

// --------------------------------------- score_panels kernel parity

TEST(ScorePanelsTest, ScalarMatchesReferenceLoopBitwise) {
  const int64_t d = 24, n = 5;
  const Matrix panels = RandomMatrix(1, n * 8 * d, 151);
  const Matrix q = RandomMatrix(1, d, 152);
  float out[5 * 8];
  simd::ScalarKernels().score_panels(q.row(0), panels.row(0), d, n, out);
  for (int64_t p = 0; p < n; ++p) {
    for (int t = 0; t < 8; ++t) {
      // One item's ascending-j separate multiply-then-add chain.
      float acc = 0.f;
      for (int64_t j = 0; j < d; ++j) {
        acc += q.row(0)[j] * panels.row(0)[p * 8 * d + j * 8 + t];
      }
      EXPECT_EQ(std::memcmp(&acc, &out[p * 8 + t], sizeof(float)), 0)
          << "panel " << p << " lane " << t;
    }
  }
}

TEST(ScorePanelsTest, Avx2MatchesScalarBitwise) {
  const simd::KernelTable* vec = simd::Avx2KernelsOrNull();
  if (vec == nullptr) GTEST_SKIP() << "no AVX2 table in this build";
  const simd::KernelTable& sc = simd::ScalarKernels();
  for (int64_t n : {1, 2, 3, 8, 9}) {
    for (int64_t d : {1, 7, 24, 33}) {
      const Matrix panels =
          RandomMatrix(1, n * 8 * d, 160 + static_cast<uint64_t>(n * 100 + d));
      const Matrix q = RandomMatrix(1, d, 161);
      std::vector<float> a(static_cast<size_t>(n * 8)),
          b(static_cast<size_t>(n * 8));
      sc.score_panels(q.row(0), panels.row(0), d, n, a.data());
      vec->score_panels(q.row(0), panels.row(0), d, n, b.data());
      EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
          << "n=" << n << " d=" << d;
    }
  }
}

// ------------------------------------------- Evaluator metric parity

TEST(EvaluatorRetrievalTest, RetrievalPathMatchesDenseMetrics) {
  SyntheticConfig cfg;
  cfg.num_users = 300;
  cfg.num_items = 200;
  cfg.mean_user_degree = 12.0;
  cfg.latent_dim = 16;
  cfg.num_communities = 6;
  cfg.seed = 7;
  SyntheticData data = GenerateSynthetic(cfg);
  const Matrix& ue = data.user_factors;
  const Matrix& ie = data.item_factors;

  Evaluator eval(&data.dataset, {10, 20});
  auto dense_scorer = [&](const std::vector<int32_t>& users) {
    Matrix scores;
    Gemm(GatherRows(ue, users), false, ie, true, 1.f, 0.f, &scores);
    return scores;
  };
  const TopKMetrics dense = eval.Evaluate(dense_scorer);

  const TopKScorer scorer(ie);
  const MipsIndex index = MipsIndex::Build(ie);
  for (const Retriever* r :
       {static_cast<const Retriever*>(&scorer),
        static_cast<const Retriever*>(&index)}) {
    const TopKMetrics got = eval.EvaluateRetrieval(*r, ue);
    ASSERT_EQ(got.num_users, dense.num_users) << r->name();
    for (size_t i = 0; i < dense.ks.size(); ++i) {
      EXPECT_DOUBLE_EQ(got.recall[i], dense.recall[i]) << r->name();
      EXPECT_DOUBLE_EQ(got.ndcg[i], dense.ndcg[i]) << r->name();
      EXPECT_DOUBLE_EQ(got.precision[i], dense.precision[i]) << r->name();
      EXPECT_DOUBLE_EQ(got.map[i], dense.map[i]) << r->name();
      EXPECT_DOUBLE_EQ(got.mrr[i], dense.mrr[i]) << r->name();
    }
  }
}

}  // namespace
}  // namespace graphaug
