// Model-level tests: every baseline must construct, run training epochs
// with finite losses, finalize embeddings of the right shape, and beat a
// random scorer on held-out data after a short training run (smoke-level
// learning signal). Parameterized over the full registry.

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/kmeans.h"
#include "models/registry.h"
#include "tensor/init.h"

namespace graphaug {
namespace {

ModelConfig TinyConfig() {
  ModelConfig cfg;
  cfg.dim = 16;
  cfg.num_layers = 2;
  cfg.learning_rate = 0.01f;
  cfg.batch_size = 256;
  cfg.batches_per_epoch = 4;
  cfg.contrast_batch = 48;
  cfg.seed = 11;
  return cfg;
}

class ModelSmokeTest : public ::testing::TestWithParam<std::string> {
 protected:
  static const Dataset& TinyDataset() {
    static const SyntheticData* data =
        new SyntheticData(GeneratePreset("tiny"));
    return data->dataset;
  }
};

TEST_P(ModelSmokeTest, TrainsAndScores) {
  const Dataset& dataset = TinyDataset();
  auto model = CreateModel(GetParam(), &dataset, TinyConfig());
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name(), GetParam());

  double first_loss = 0, last_loss = 0;
  for (int epoch = 0; epoch < 5; ++epoch) {
    const double loss = model->TrainEpoch();
    ASSERT_TRUE(std::isfinite(loss)) << "epoch " << epoch;
    if (epoch == 0) first_loss = loss;
    last_loss = loss;
  }
  // Loss should not explode.
  EXPECT_LT(last_loss, first_loss * 3 + 10);

  model->Finalize();
  EXPECT_EQ(model->user_embeddings().rows(), dataset.num_users);
  EXPECT_EQ(model->item_embeddings().rows(), dataset.num_items);

  Matrix scores = model->ScoreUsers({0, 1, 2});
  EXPECT_EQ(scores.rows(), 3);
  EXPECT_EQ(scores.cols(), dataset.num_items);
  for (int64_t i = 0; i < scores.size(); ++i) {
    ASSERT_TRUE(std::isfinite(scores[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelSmokeTest,
                         ::testing::ValuesIn(AllModelNames()),
                         [](const auto& info) { return info.param; });

TEST(ModelLearningTest, LightGcnBeatsRandomScorer) {
  SyntheticData data = GeneratePreset("tiny");
  ModelConfig cfg = TinyConfig();
  cfg.batches_per_epoch = 6;
  auto model = CreateModel("LightGCN", &data.dataset, cfg);
  for (int epoch = 0; epoch < 25; ++epoch) model->TrainEpoch();
  model->Finalize();

  Evaluator eval(&data.dataset, {10});
  TopKMetrics trained = eval.Evaluate([&](const std::vector<int32_t>& users) {
    return model->ScoreUsers(users);
  });
  Rng rng(99);
  TopKMetrics random = eval.Evaluate([&](const std::vector<int32_t>& users) {
    Matrix m(static_cast<int64_t>(users.size()), data.dataset.num_items);
    InitNormal(&m, &rng);
    return m;
  });
  // Note: with 50 items and K=10, random recall is already ~0.2-0.35 on
  // this tiny dataset, so require a 1.5x margin rather than an absolute.
  EXPECT_GT(trained.RecallAt(10), 1.5 * random.RecallAt(10))
      << "trained=" << trained.RecallAt(10)
      << " random=" << random.RecallAt(10);
}

TEST(RegistryTest, UnknownModelAborts) {
  SyntheticData data = GeneratePreset("tiny");
  ModelConfig cfg = TinyConfig();
  EXPECT_DEATH(CreateModel("NotAModel", &data.dataset, cfg),
               "unknown model");
}

TEST(RegistryTest, AllNamesCreatable) {
  EXPECT_EQ(AllModelNames().size(), 18u);
}

TEST(KMeansTest, SeparatesWellSeparatedClusters) {
  Rng rng(7);
  Matrix pts(90, 4);
  for (int64_t r = 0; r < 90; ++r) {
    const int c = static_cast<int>(r / 30);
    for (int64_t j = 0; j < 4; ++j) {
      pts.at(r, j) = 10.f * c + static_cast<float>(rng.Gaussian(0, 0.3));
    }
  }
  KMeansResult res = RunKMeans(pts, 3, 20, &rng);
  // All points in the same ground-truth block share an assignment.
  for (int block = 0; block < 3; ++block) {
    const int32_t rep = res.assignment[block * 30];
    for (int i = 0; i < 30; ++i) {
      EXPECT_EQ(res.assignment[block * 30 + i], rep);
    }
  }
  // Blocks map to distinct clusters.
  EXPECT_NE(res.assignment[0], res.assignment[30]);
  EXPECT_NE(res.assignment[30], res.assignment[60]);
}

TEST(KMeansTest, CentroidsHaveRightShape) {
  Rng rng(8);
  Matrix pts(20, 3);
  InitNormal(&pts, &rng);
  KMeansResult res = RunKMeans(pts, 4, 5, &rng);
  EXPECT_EQ(res.centroids.rows(), 4);
  EXPECT_EQ(res.centroids.cols(), 3);
  EXPECT_EQ(res.assignment.size(), 20u);
  for (int32_t a : res.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
  }
}

}  // namespace
}  // namespace graphaug
