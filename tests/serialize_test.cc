// Tests for binary parameter checkpointing: round-trips, name matching,
// shape-mismatch rejection, and integration with a trained model.

#include <gtest/gtest.h>

#include <cstdio>

#include "autograd/serialize.h"
#include "core/graphaug.h"
#include "data/synthetic.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

TEST(SerializeTest, RoundTripPreservesValues) {
  Rng rng(1);
  ParamStore store;
  Parameter* a = store.CreateNormal("layer.weight", 7, 5, &rng);
  Parameter* b = store.CreateNormal("emb", 13, 4, &rng);
  const Matrix a_orig = a->value;
  const Matrix b_orig = b->value;

  const std::string path = "/tmp/graphaug_ckpt_test.bin";
  ASSERT_TRUE(SaveCheckpoint(store, path));
  a->value.Zero();
  b->value.Fill(9.f);
  ASSERT_TRUE(LoadCheckpoint(&store, path));
  EXPECT_TRUE(AllClose(a->value, a_orig, 0.f, 0.f));
  EXPECT_TRUE(AllClose(b->value, b_orig, 0.f, 0.f));
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingEntriesLeftUntouchedExtraIgnored) {
  Rng rng(2);
  const std::string path = "/tmp/graphaug_ckpt_test2.bin";
  {
    ParamStore store;
    store.CreateNormal("shared", 3, 3, &rng);
    store.CreateNormal("only_in_file", 2, 2, &rng);
    ASSERT_TRUE(SaveCheckpoint(store, path));
  }
  ParamStore store2;
  Parameter* shared = store2.Create("shared", 3, 3);
  Parameter* fresh = store2.Create("only_in_store", 4, 1);
  fresh->value.Fill(5.f);
  ASSERT_TRUE(LoadCheckpoint(&store2, path));
  EXPECT_GT(MaxAbs(shared->value), 0.f);       // loaded
  EXPECT_FLOAT_EQ(fresh->value[0], 5.f);       // untouched
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchFails) {
  Rng rng(3);
  const std::string path = "/tmp/graphaug_ckpt_test3.bin";
  {
    ParamStore store;
    store.CreateNormal("w", 3, 3, &rng);
    ASSERT_TRUE(SaveCheckpoint(store, path));
  }
  ParamStore store2;
  store2.Create("w", 2, 3);
  EXPECT_FALSE(LoadCheckpoint(&store2, path));
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileAndBadMagic) {
  ParamStore store;
  EXPECT_FALSE(LoadCheckpoint(&store, "/nonexistent/ckpt.bin"));
  const std::string path = "/tmp/graphaug_ckpt_bad.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a checkpoint", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadCheckpoint(&store, path));
  std::remove(path.c_str());
}

TEST(SerializeTest, TrainedModelRestoresIdenticalScores) {
  // Train a model briefly, checkpoint, perturb, restore, and verify the
  // ranking scores are bit-identical again.
  SyntheticData data = GeneratePreset("tiny");
  GraphAugConfig cfg;
  cfg.dim = 16;
  cfg.batches_per_epoch = 3;
  cfg.seed = 4;
  GraphAug model(&data.dataset, cfg);
  for (int e = 0; e < 3; ++e) model.TrainEpoch();
  model.Finalize();
  Matrix before = model.ScoreUsers({0, 1, 2});

  const std::string path = "/tmp/graphaug_ckpt_model.bin";
  ASSERT_TRUE(SaveCheckpoint(*model.params(), path));
  for (Parameter* p : model.params()->params()) p->value.Fill(0.123f);
  ASSERT_TRUE(LoadCheckpoint(model.params(), path));
  model.Finalize();
  Matrix after = model.ScoreUsers({0, 1, 2});
  EXPECT_TRUE(AllClose(before, after, 0.f, 0.f));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace graphaug
