// Tests for the sparse graph substrate: CSR construction/products,
// bipartite graph invariants, Laplacian normalization (spectral bound,
// symmetry, edge mapping), and corruption operators.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/bipartite_graph.h"
#include "graph/corruption.h"
#include "graph/csr.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

TEST(CsrTest, FromCooSortsAndMergesDuplicates) {
  CsrMatrix m = CsrMatrix::FromCoo(
      3, 3, {{2, 1, 1.f}, {0, 0, 2.f}, {2, 1, 3.f}, {1, 2, -1.f}});
  EXPECT_EQ(m.nnz(), 3);
  Matrix d = m.ToDense();
  EXPECT_FLOAT_EQ(d.at(2, 1), 4.f);  // merged 1 + 3
  EXPECT_FLOAT_EQ(d.at(0, 0), 2.f);
  EXPECT_FLOAT_EQ(d.at(1, 2), -1.f);
}

TEST(CsrTest, OutOfBoundsEntriesAbort) {
  EXPECT_DEATH(CsrMatrix::FromCoo(2, 2, {{2, 0, 1.f}}), "out of bounds");
}

TEST(CsrTest, IdentitySpmmIsNoop) {
  CsrMatrix id = CsrMatrix::Identity(4);
  Matrix x(4, 3);
  for (int64_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  Matrix out;
  id.Spmm(x, &out);
  EXPECT_TRUE(AllClose(out, x));
}

TEST(CsrTest, SpmmTMatchesTransposedSpmm) {
  CsrMatrix m = CsrMatrix::FromCoo(
      3, 4, {{0, 1, 2.f}, {1, 0, -1.f}, {1, 3, 0.5f}, {2, 2, 1.5f}});
  Matrix x(3, 2, std::vector<float>{1, 2, 3, 4, 5, 6});
  Matrix a, b;
  m.SpmmT(x, &a);
  m.Transpose().Spmm(x, &b);
  EXPECT_TRUE(AllClose(a, b));
}

TEST(CsrTest, WithValuesSwapsValuesOnly) {
  CsrMatrix m = CsrMatrix::FromCoo(2, 2, {{0, 0, 1.f}, {1, 1, 1.f}});
  CsrMatrix m2 = m.WithValues({3.f, 4.f});
  EXPECT_FLOAT_EQ(m2.ToDense().at(1, 1), 4.f);
  EXPECT_DEATH(m.WithValues({1.f}), "");
}

TEST(CsrTest, SpmmTVariantsMatchReference) {
  CsrMatrix m = CsrMatrix::FromCoo(
      5, 4,
      {{0, 1, 2.f}, {1, 0, -1.f}, {1, 3, 0.5f}, {2, 2, 1.5f},
       {3, 1, 4.f}, {4, 0, -2.5f}, {4, 3, 3.f}});
  Matrix x(5, 3);
  for (int64_t i = 0; i < x.size(); ++i) x[i] = 0.25f * static_cast<float>(i);
  Matrix ref;
  m.Transpose().Spmm(x, &ref);
  for (SpmmTVariant v : {SpmmTVariant::kAuto, SpmmTVariant::kPermuted,
                         SpmmTVariant::kTiled, SpmmTVariant::kGather}) {
    Matrix out;
    m.SpmmT(x, &out, /*accumulate=*/false, v);
    EXPECT_TRUE(AllClose(ref, out)) << "variant=" << static_cast<int>(v);
  }
}

TEST(CsrTest, MutatingValuesInvalidatesMirrorValues) {
  // Satellite fix: building the mirror, then mutating values in place,
  // must not leave SpmmT reading a stale permuted-values cache.
  CsrMatrix m = CsrMatrix::FromCoo(
      3, 3, {{0, 1, 1.f}, {1, 0, 2.f}, {1, 2, 3.f}, {2, 1, 4.f}});
  Matrix x(3, 2, std::vector<float>{1, 2, 3, 4, 5, 6});
  Matrix before;
  m.SpmmT(x, &before);  // builds and caches mirror pattern + values

  (*m.mutable_values())[1] = 20.f;  // the (1,0) entry
  Matrix after, fresh_ref;
  m.SpmmT(x, &after);
  m.Transpose().Spmm(x, &fresh_ref);  // independent reference, new values
  EXPECT_TRUE(AllClose(after, fresh_ref));
  EXPECT_FALSE(AllClose(after, before));
}

TEST(CsrTest, WithValuesCopyMutationDoesNotCorruptSharedCaches) {
  // The mirror *pattern* is shared across WithValues copies; the permuted
  // values cache must not be. Mutating a copy in place must neither read
  // stale state in the copy nor poison the original.
  CsrMatrix m = CsrMatrix::FromCoo(
      4, 3, {{0, 0, 1.f}, {1, 2, 2.f}, {2, 1, 3.f}, {3, 0, 4.f}});
  Matrix x(4, 2);
  for (int64_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i + 1);
  Matrix orig;
  m.SpmmT(x, &orig);  // warm the shared caches on the original

  CsrMatrix c = m.WithValues({10.f, 20.f, 30.f, 40.f});
  Matrix copy_before;
  c.SpmmT(x, &copy_before);  // warms the copy's own values cache
  (*c.mutable_values())[2] = -30.f;
  Matrix copy_after, copy_ref;
  c.SpmmT(x, &copy_after);
  c.Transpose().Spmm(x, &copy_ref);
  EXPECT_TRUE(AllClose(copy_after, copy_ref));
  EXPECT_FALSE(AllClose(copy_after, copy_before));

  // The original still sees its own values.
  Matrix orig_again;
  m.SpmmT(x, &orig_again);
  EXPECT_TRUE(AllClose(orig, orig_again));
}

TEST(BipartiteGraphTest, DedupsAndIndexes) {
  BipartiteGraph g(3, 2, {{0, 0}, {0, 0}, {0, 1}, {2, 1}});
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.UserDegree(0), 2);
  EXPECT_EQ(g.ItemDegree(1), 2);
  EXPECT_EQ(g.UsersOf(1).size(), 2u);
  EXPECT_DOUBLE_EQ(g.Density(), 3.0 / 6.0);
}

TEST(BipartiteGraphTest, NormalizedAdjacencyIsSymmetric) {
  BipartiteGraph g(3, 3, {{0, 0}, {0, 1}, {1, 1}, {2, 2}});
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  Matrix d = adj.matrix.ToDense();
  for (int64_t i = 0; i < d.rows(); ++i) {
    for (int64_t j = 0; j < d.cols(); ++j) {
      EXPECT_NEAR(d.at(i, j), d.at(j, i), 1e-6);
    }
  }
}

TEST(BipartiteGraphTest, NormalizationCoefficients) {
  // Single edge between u0 and v0 plus self-loops: deg(u0)=deg(v0)=2.
  BipartiteGraph g(1, 1, {{0, 0}});
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  Matrix d = adj.matrix.ToDense();
  EXPECT_NEAR(d.at(0, 1), 1.0 / 2.0, 1e-6);   // 1/sqrt(2)/sqrt(2)
  EXPECT_NEAR(d.at(0, 0), 1.0 / 2.0, 1e-6);   // self loop
}

TEST(BipartiteGraphTest, NnzToEdgeMappingIsConsistent) {
  BipartiteGraph g(3, 2, {{0, 0}, {1, 0}, {1, 1}, {2, 1}});
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  // Each interaction appears exactly twice; self-loops map to -1.
  std::vector<int> counts(g.num_edges(), 0);
  int self_loops = 0;
  for (int64_t e : adj.nnz_to_edge) {
    if (e < 0) {
      ++self_loops;
    } else {
      counts[static_cast<size_t>(e)]++;
    }
  }
  EXPECT_EQ(self_loops, g.num_nodes());
  for (int c : counts) EXPECT_EQ(c, 2);
  // WeightedValues with w=1 reproduces base values.
  std::vector<float> w(g.num_edges(), 1.f);
  EXPECT_EQ(adj.WeightedValues(w), adj.base_values);
  // Zeroing one edge zeroes exactly its two nnz slots.
  w[0] = 0.f;
  auto vals = adj.WeightedValues(w);
  int zeroed = 0;
  for (size_t k = 0; k < vals.size(); ++k) {
    if (vals[k] == 0.f && adj.base_values[k] != 0.f) ++zeroed;
  }
  EXPECT_EQ(zeroed, 2);
}

TEST(BipartiteGraphTest, SpectralRadiusAtMostOne) {
  // Power iteration on Ã (with self loops) must not blow up: ‖Ã^k x‖ stays
  // bounded because the symmetric normalized adjacency has eigenvalues in
  // [-1, 1].
  BipartiteGraph g(10, 8, []{
    std::vector<Edge> edges;
    for (int32_t u = 0; u < 10; ++u) {
      for (int32_t v = 0; v < 8; v += (u % 3) + 1) edges.push_back({u, v});
    }
    return edges;
  }());
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  Matrix x(g.num_nodes(), 1, 1.f);
  Matrix y;
  double prev = std::sqrt(SquaredNorm(x));
  for (int it = 0; it < 30; ++it) {
    adj.matrix.Spmm(x, &y);
    const double norm = std::sqrt(SquaredNorm(y));
    EXPECT_LE(norm, prev * 1.0001);
    x = y;
    prev = norm;
  }
}

TEST(BipartiteGraphTest, FilterAndExtend) {
  BipartiteGraph g(3, 3, {{0, 0}, {1, 1}, {2, 2}});
  BipartiteGraph g2 = g.WithExtraEdges({{0, 1}, {1, 1}});
  EXPECT_EQ(g2.num_edges(), 4);  // {1,1} deduped
  BipartiteGraph g3 = g.FilterEdges({true, false, true});
  EXPECT_EQ(g3.num_edges(), 2);
  EXPECT_FALSE(g3.HasEdge(1, 1));
}

TEST(CorruptionTest, AddRandomEdgesAddsOnlyNewEdges) {
  BipartiteGraph g(20, 20, {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}});
  Rng rng(5);
  BipartiteGraph noisy = AddRandomEdges(g, 1.0, rng);
  EXPECT_EQ(noisy.num_edges(), 10);
  for (const Edge& e : g.edges()) EXPECT_TRUE(noisy.HasEdge(e.user, e.item));
}

TEST(CorruptionTest, DropEdgesApproximatesRate) {
  std::vector<Edge> edges;
  for (int32_t u = 0; u < 50; ++u) {
    for (int32_t v = 0; v < 40; v += 2) edges.push_back({u, v});
  }
  BipartiteGraph g(50, 40, edges);
  Rng rng(9);
  BipartiteGraph dropped = DropEdges(g, 0.3, rng);
  const double kept =
      static_cast<double>(dropped.num_edges()) / g.num_edges();
  EXPECT_NEAR(kept, 0.7, 0.05);
}

TEST(CorruptionTest, RandomWalkSubgraphKeepsSubset) {
  std::vector<Edge> edges;
  for (int32_t u = 0; u < 30; ++u) {
    for (int32_t v = u % 5; v < 20; v += 5) edges.push_back({u, v});
  }
  BipartiteGraph g(30, 20, edges);
  Rng rng(13);
  BipartiteGraph sub = RandomWalkSubgraph(g, 10, 5, rng);
  EXPECT_GT(sub.num_edges(), 0);
  EXPECT_LE(sub.num_edges(), g.num_edges());
  for (const Edge& e : sub.edges()) EXPECT_TRUE(g.HasEdge(e.user, e.item));
}

}  // namespace
}  // namespace graphaug
