// White-box tests of the autograd tape machinery: gradient-need
// propagation and pruning, constant handling, leaf accumulation across
// multiple uses, tape reuse, and shape policing.

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "data/dataset.h"
#include "eval/evaluator.h"
#include "graph/csr.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

TEST(TapeInternalsTest, ConstantsDoNotNeedGrad) {
  Tape tape;
  Var c = tape.Constant(Matrix(2, 2, 1.f));
  EXPECT_FALSE(tape.NeedsGrad(c.id()));
  // An op over constants only also needs no gradient.
  Var d = ag::Add(c, c);
  EXPECT_FALSE(tape.NeedsGrad(d.id()));
}

TEST(TapeInternalsTest, NeedsGradPropagatesThroughOps) {
  Rng rng(1);
  ParamStore store;
  Parameter* p = store.CreateNormal("p", 2, 3, &rng);
  Tape tape;
  Var leaf = tape.Leaf(p);
  Var c = tape.Constant(Matrix(2, 3, 1.f));
  EXPECT_TRUE(tape.NeedsGrad(leaf.id()));
  Var mixed = ag::Mul(leaf, c);
  EXPECT_TRUE(tape.NeedsGrad(mixed.id()));
  // Frozen parameter: no gradient tracking.
  p->trainable = false;
  Tape tape2;
  Var frozen = tape2.Leaf(p);
  EXPECT_FALSE(tape2.NeedsGrad(frozen.id()));
  p->trainable = true;
}

TEST(TapeInternalsTest, FrozenParameterReceivesNoGradient) {
  Rng rng(2);
  ParamStore store;
  Parameter* a = store.CreateNormal("a", 2, 2, &rng);
  Parameter* b = store.CreateNormal("b", 2, 2, &rng);
  b->trainable = false;
  store.ZeroGrad();
  Tape tape;
  Var loss = ag::MeanAll(ag::Mul(tape.Leaf(a), tape.Leaf(b)));
  tape.Backward(loss);
  EXPECT_GT(MaxAbs(a->grad), 0.f);
  EXPECT_FLOAT_EQ(MaxAbs(b->grad), 0.f);
}

TEST(TapeInternalsTest, SameParameterUsedTwiceAccumulates) {
  // loss = mean(p) + mean(p) => dL/dp = 2/n everywhere.
  ParamStore store;
  Parameter* p = store.Create("p", 2, 2);
  p->value.Fill(3.f);
  store.ZeroGrad();
  Tape tape;
  Var l1 = ag::MeanAll(tape.Leaf(p));
  Var l2 = ag::MeanAll(tape.Leaf(p));
  tape.Backward(ag::Add(l1, l2));
  for (int64_t i = 0; i < p->grad.size(); ++i) {
    EXPECT_NEAR(p->grad[i], 2.f / 4.f, 1e-6);
  }
}

TEST(TapeInternalsTest, GradAccumulatesAcrossBackwardCalls) {
  // Two independent tapes, no ZeroGrad in between: gradients add.
  ParamStore store;
  Parameter* p = store.Create("p", 1, 2);
  p->value.Fill(1.f);
  store.ZeroGrad();
  for (int i = 0; i < 3; ++i) {
    Tape tape;
    Var loss = ag::SumAll(tape.Leaf(p));
    tape.Backward(loss);
  }
  EXPECT_FLOAT_EQ(p->grad[0], 3.f);
}

TEST(TapeInternalsTest, ResetClearsNodes) {
  Tape tape;
  tape.Constant(Matrix(1, 1, 1.f));
  tape.Constant(Matrix(1, 1, 2.f));
  EXPECT_EQ(tape.size(), 2);
  tape.Reset();
  EXPECT_EQ(tape.size(), 0);
}

TEST(TapeInternalsTest, ValuesVisibleImmediately) {
  Tape tape;
  Var a = tape.Constant(Matrix(1, 2, std::vector<float>{3.f, 4.f}));
  Var s = ag::Scale(a, 2.f);
  EXPECT_FLOAT_EQ(s.value()[0], 6.f);
  EXPECT_FLOAT_EQ(s.value()[1], 8.f);
  EXPECT_EQ(s.rows(), 1);
  EXPECT_EQ(s.cols(), 2);
}

TEST(TapeInternalsTest, ShapeMismatchInAccumulateAborts) {
  ParamStore store;
  Parameter* p = store.Create("p", 2, 2);
  Tape tape;
  Var leaf = tape.Leaf(p);
  EXPECT_DEATH(tape.AccumulateGrad(leaf.id(), Matrix(3, 3)), "shape");
}

TEST(TapeInternalsTest, DeepChainGradientIsExact) {
  // f(p) = mean(((p * 2 + 1)^2)) — closed-form gradient check through a
  // 4-op chain: d/dp = 2 * (2p + 1) * 2 / n.
  ParamStore store;
  Parameter* p = store.Create("p", 1, 4);
  for (int64_t i = 0; i < 4; ++i) p->value[i] = static_cast<float>(i);
  store.ZeroGrad();
  Tape tape;
  Var x = ag::AddScalar(ag::Scale(tape.Leaf(p), 2.f), 1.f);
  tape.Backward(ag::MeanAll(ag::Square(x)));
  for (int64_t i = 0; i < 4; ++i) {
    const float expected = 2.f * (2.f * p->value[i] + 1.f) * 2.f / 4.f;
    EXPECT_NEAR(p->grad[i], expected, 1e-5);
  }
}

TEST(CsrEdgeCaseTest, EmptyRowsAndMatrix) {
  // Matrix with empty rows must propagate zeros, not garbage.
  CsrMatrix m = CsrMatrix::FromCoo(4, 3, {{1, 0, 2.f}});
  Matrix x(3, 2, 1.f);
  Matrix out;
  m.Spmm(x, &out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 2.f);
  EXPECT_FLOAT_EQ(out.at(3, 1), 0.f);
  // Fully empty matrix.
  CsrMatrix empty = CsrMatrix::FromCoo(2, 2, {});
  EXPECT_EQ(empty.nnz(), 0);
  Matrix out2;
  empty.Spmm(Matrix(2, 2, 1.f), &out2);
  EXPECT_FLOAT_EQ(MaxAbs(out2), 0.f);
}

TEST(CsrEdgeCaseTest, RowDegreesMatchPattern) {
  CsrMatrix m = CsrMatrix::FromCoo(3, 3,
                                   {{0, 0, 1.f}, {0, 2, 1.f}, {2, 1, 1.f}});
  auto deg = m.RowDegrees();
  EXPECT_EQ(deg[0], 2);
  EXPECT_EQ(deg[1], 0);
  EXPECT_EQ(deg[2], 1);
}

TEST(EvaluatorDeterminismTest, TiedScoresBreakByItemId) {
  // All-equal scores: the ranking must be deterministic (ascending id),
  // so repeated evaluations agree bit-for-bit.
  Dataset d;
  d.num_users = 1;
  d.num_items = 6;
  d.train_edges = {{0, 0}};
  d.test_edges = {{0, 1}};
  Evaluator eval(&d, {1});
  auto flat = [&](const std::vector<int32_t>& users) {
    return Matrix(static_cast<int64_t>(users.size()), d.num_items, 5.f);
  };
  TopKMetrics m1 = eval.Evaluate(flat);
  TopKMetrics m2 = eval.Evaluate(flat);
  // Item 0 is masked (train), so item 1 ranks first among the ties.
  EXPECT_DOUBLE_EQ(m1.RecallAt(1), 1.0);
  EXPECT_DOUBLE_EQ(m1.RecallAt(1), m2.RecallAt(1));
}

}  // namespace
}  // namespace graphaug
