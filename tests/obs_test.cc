// Tests for the observability layer (src/obs): metric primitives and
// registry, trace spans and Chrome-trace export, the autograd profiler,
// training-health telemetry, the JSON lint helper, log-level parsing —
// and the load-bearing guarantee that enabling instrumentation does not
// change training results bitwise.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "core/graphaug.h"
#include "data/synthetic.h"
#include "obs/obs.h"

namespace graphaug {
namespace {

/// Every test runs with a clean slate and leaves instrumentation off, so
/// suites sharing the process never observe each other's state.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(false);
    obs::SetTraceEnabled(false);
    obs::ResetAll();
  }
  void TearDown() override {
    obs::SetEnabled(false);
    obs::SetTraceEnabled(false);
    obs::ResetAll();
  }
};

// ------------------------------------------------------------- metrics

TEST_F(ObsTest, HistogramQuantilesInterpolateWithinBuckets) {
  obs::Histogram* h = obs::MetricsRegistry::Get().GetHistogram(
      "test.quant", {10.0, 20.0, 40.0});
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 0.0);  // empty: no estimate
  // 10 observations in bucket 0 (edges 0..10): the median rank (5 of 10)
  // interpolates to the bucket midpoint.
  for (int i = 0; i < 10; ++i) h->Observe(5.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 10.0);
  // Add 10 in bucket 1 (10..20): p50 lands on the shared edge, p75 at
  // the midpoint of bucket 1, p95 at rank 19 of 20 -> 10 + 10 * 9/10.
  for (int i = 0; i < 10; ++i) h->Observe(15.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.95), 19.0);
  // Overflow observations clamp to the largest bound.
  for (int i = 0; i < 100; ++i) h->Observe(1000.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.99), 40.0);
  // Out-of-range q is clamped, not UB.
  EXPECT_DOUBLE_EQ(h->Quantile(-1.0), h->Quantile(0.0));
  EXPECT_DOUBLE_EQ(h->Quantile(2.0), h->Quantile(1.0));
}

TEST_F(ObsTest, HistogramQuantileEdgeCases) {
  obs::Histogram* h = obs::MetricsRegistry::Get().GetHistogram(
      "test.quant_edge", {10.0, 20.0, 40.0});
  // Empty histogram: every quantile is 0 (no estimate), even the extremes.
  EXPECT_DOUBLE_EQ(h->Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 0.0);
  // A single observation interpolates within its bucket by rank.
  h->Observe(5.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.0), 0.0);   // bucket lower edge
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 5.0);   // bucket midpoint
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 10.0);  // bucket upper edge
  // Observations beyond the last bound clamp to it even when the
  // overflow bucket holds every sample.
  h->Reset();
  for (int i = 0; i < 3; ++i) h->Observe(1e9);
  EXPECT_DOUBLE_EQ(h->Quantile(0.01), 40.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.99), 40.0);
  // A first bucket with a negative bound anchors at that bound, not 0.
  obs::Histogram* neg = obs::MetricsRegistry::Get().GetHistogram(
      "test.quant_neg", {-5.0, 5.0});
  neg->Observe(-10.0);
  EXPECT_DOUBLE_EQ(neg->Quantile(0.5), -5.0);
}

TEST_F(ObsTest, HistogramBucketEdges) {
  obs::Histogram* h = obs::MetricsRegistry::Get().GetHistogram(
      "test.hist", {1.0, 2.0, 4.0});
  // Bucket i counts bounds[i-1] < v <= bounds[i]; values above the last
  // bound land in the overflow bucket.
  h->Observe(0.5);   // bucket 0
  h->Observe(1.0);   // bucket 0 (inclusive upper edge)
  h->Observe(1.5);   // bucket 1
  h->Observe(2.0);   // bucket 1
  h->Observe(4.0);   // bucket 2
  h->Observe(4.1);   // overflow
  h->Observe(100.);  // overflow
  EXPECT_EQ(h->BucketCount(0), 2);
  EXPECT_EQ(h->BucketCount(1), 2);
  EXPECT_EQ(h->BucketCount(2), 1);
  EXPECT_EQ(h->BucketCount(3), 2);
  EXPECT_EQ(h->TotalCount(), 7);
  EXPECT_NEAR(h->Sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.1 + 100.0, 1e-9);

  h->Reset();
  EXPECT_EQ(h->TotalCount(), 0);
  EXPECT_EQ(h->BucketCount(3), 0);
}

TEST_F(ObsTest, RegistryReturnsStableObjects) {
  obs::Counter* c1 = obs::MetricsRegistry::Get().GetCounter("test.c");
  obs::Counter* c2 = obs::MetricsRegistry::Get().GetCounter("test.c");
  EXPECT_EQ(c1, c2);
  // Histogram bounds are fixed at first registration.
  obs::Histogram* h1 =
      obs::MetricsRegistry::Get().GetHistogram("test.h", {1.0, 2.0});
  obs::Histogram* h2 =
      obs::MetricsRegistry::Get().GetHistogram("test.h", {9.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->bounds().size(), 2u);
}

TEST_F(ObsTest, CounterAtomicUnderThreadPool) {
  const int prev_threads = NumThreads();
  SetNumThreads(4);
  obs::Counter* c = obs::MetricsRegistry::Get().GetCounter("test.atomic");
  obs::Histogram* h = obs::MetricsRegistry::Get().GetHistogram(
      "test.atomic_hist", {0.5});
  constexpr int64_t kN = 200000;
  ParallelFor(0, kN, 1000, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      c->Inc();
      h->Observe(static_cast<double>(i % 2));
    }
  });
  EXPECT_EQ(c->value(), kN);
  EXPECT_EQ(h->TotalCount(), kN);
  EXPECT_EQ(h->BucketCount(0) + h->BucketCount(1), kN);
  SetNumThreads(prev_threads);
}

// ---------------------------------------------------------------- trace

TEST_F(ObsTest, TraceSpansRecordAndExportWellFormedJson) {
#if !GRAPHAUG_OBS_ENABLED
  GTEST_SKIP() << "built with GRAPHAUG_NO_OBS";
#endif
  obs::SetEnabled(true);
  obs::SetTraceEnabled(true);
  {
    GA_TRACE_SPAN("outer_span");
    GA_TRACE_SPAN("inner_span");
  }
  obs::RecordTraceEvent("direct_span", obs::TraceClockNs(), 42);

  const std::vector<obs::TraceEvent> events = obs::SnapshotTraceEvents();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(obs::TraceEventTotal(), 3);
  EXPECT_EQ(obs::TraceDroppedTotal(), 0);

  const std::string json = obs::ChromeTraceJson();
  std::string err;
  EXPECT_TRUE(obs::JsonLint(json, &err)) << err;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("outer_span"), std::string::npos);
  EXPECT_NE(json.find("inner_span"), std::string::npos);
  EXPECT_NE(json.find("direct_span"), std::string::npos);
  // Chrome trace format: complete events with microsecond timestamps.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(ObsTest, TraceDisabledRecordsNothing) {
  obs::SetEnabled(true);  // master switch alone does not record spans
  {
    GA_TRACE_SPAN("should_not_appear");
  }
  EXPECT_EQ(obs::TraceEventTotal(), 0);
  const std::string json = obs::ChromeTraceJson();
  std::string err;
  EXPECT_TRUE(obs::JsonLint(json, &err)) << err;
  EXPECT_EQ(json.find("should_not_appear"), std::string::npos);
}

TEST_F(ObsTest, TraceOverflowCountsDroppedEvents) {
#if !GRAPHAUG_OBS_ENABLED
  GTEST_SKIP() << "built with GRAPHAUG_NO_OBS";
#endif
  obs::SetEnabled(true);
  obs::SetTraceEnabled(true);
  // One past-capacity burst on a single thread: every overwritten event
  // must show up in the dropped totals, the trace.dropped_events counter
  // (what the CLI's truncation warning reads), and the exported JSON.
  constexpr int64_t kCapacity = int64_t{1} << 16;  // per-thread ring size
  constexpr int64_t kOverflow = 5;
  for (int64_t i = 0; i < kCapacity + kOverflow; ++i) {
    obs::RecordTraceEvent("flood", /*ts_ns=*/i, /*dur_ns=*/1);
  }
  EXPECT_EQ(obs::TraceEventTotal(), kCapacity + kOverflow);
  EXPECT_EQ(obs::TraceDroppedTotal(), kOverflow);
  const auto counters = obs::MetricsRegistry::Get().CounterSnapshot();
  ASSERT_TRUE(counters.count("trace.dropped_events"));
  EXPECT_EQ(counters.at("trace.dropped_events"), kOverflow);
  const std::string json = obs::ChromeTraceJson();
  EXPECT_NE(json.find("\"dropped_events\": 5"), std::string::npos);
}

// ---------------------------------------------------- autograd profiler

TEST_F(ObsTest, ProfilerAccumulatesForwardAndBackward) {
#if !GRAPHAUG_OBS_ENABLED
  GTEST_SKIP() << "built with GRAPHAUG_NO_OBS";
#endif
  obs::SetEnabled(true);
  Rng rng(3);
  ParamStore store;
  Parameter* a = store.CreateNormal("a", 6, 5, &rng);
  Parameter* b = store.CreateNormal("b", 5, 4, &rng);
  for (int i = 0; i < 2; ++i) {
    Tape tape;
    Var y = ag::MeanAll(ag::MatMul(ag::Leaf(&tape, a), ag::Leaf(&tape, b)));
    tape.Backward(y);
  }
  const std::map<std::string, obs::OpStats> snap =
      obs::AutogradProfiler::Get().Snapshot();
  ASSERT_TRUE(snap.count("MatMul"));
  const obs::OpStats& mm = snap.at("MatMul");
  EXPECT_EQ(mm.fwd_calls, 2);
  EXPECT_EQ(mm.bwd_calls, 2);
  EXPECT_GE(mm.fwd_ns, 0);
  // Analytic estimate: 2*m*k*n flops per forward call.
  EXPECT_DOUBLE_EQ(mm.flops, 2.0 * (2.0 * 6 * 5 * 4));
  ASSERT_TRUE(snap.count("MeanAll"));
  EXPECT_EQ(snap.at("MeanAll").bwd_calls, 2);

  std::string err;
  EXPECT_TRUE(obs::JsonLint(obs::AutogradProfiler::Get().ToJson(), &err))
      << err;
}

TEST_F(ObsTest, ProfilerIdleWhenDisabled) {
  Rng rng(3);
  ParamStore store;
  Parameter* a = store.CreateNormal("a", 3, 3, &rng);
  Tape tape;
  tape.Backward(ag::MeanAll(ag::Square(ag::Leaf(&tape, a))));
  EXPECT_TRUE(obs::AutogradProfiler::Get().Snapshot().empty());
}

// ------------------------------------------------------------- health

TEST_F(ObsTest, HealthTrackerFoldsBatchesIntoEpochs) {
  obs::HealthTracker& ht = obs::HealthTracker::Get();
  ht.RecordLossComponent("bpr", 1.0);
  ht.RecordLossComponent("bpr", 3.0);
  ht.RecordBatchGrad(4.0, 0);   // norm 2
  ht.RecordBatchGrad(16.0, 2);  // norm 4, two bad entries
  const obs::EpochHealth h = ht.EndEpoch(1, 7.5, 2.0);
  EXPECT_EQ(h.epoch, 1);
  EXPECT_DOUBLE_EQ(h.loss, 2.0);
  EXPECT_DOUBLE_EQ(h.grad_norm, 3.0);  // mean of 2 and 4
  EXPECT_DOUBLE_EQ(h.param_norm, 7.5);
  EXPECT_EQ(h.nonfinite_grads, 2);
  EXPECT_DOUBLE_EQ(h.loss_components.at("bpr"), 2.0);

  // Batch accumulators reset between epochs; history persists.
  const obs::EpochHealth h2 = ht.EndEpoch(2, 7.5, 1.0);
  EXPECT_EQ(h2.nonfinite_grads, 0);
  EXPECT_TRUE(h2.loss_components.empty());
  EXPECT_EQ(ht.History().size(), 2u);
  EXPECT_EQ(ht.TotalNonFinite(), 2);

  std::string err;
  EXPECT_TRUE(obs::JsonLint(ht.ToJson(), &err)) << err;
}

TEST_F(ObsTest, NonFiniteCountScansCorrectly) {
  std::vector<float> v = {1.f, 0.f, -2.f};
  EXPECT_EQ(obs::NonFiniteCount(v.data(), 3), 0);
  v.push_back(std::numeric_limits<float>::quiet_NaN());
  v.push_back(std::numeric_limits<float>::infinity());
  v.push_back(-std::numeric_limits<float>::infinity());
  EXPECT_EQ(obs::NonFiniteCount(v.data(), 6), 3);
  EXPECT_EQ(obs::NonFiniteCount(v.data(), 0), 0);
}

// ------------------------------------------------------ memory accounting

TEST_F(ObsTest, LiveBytesReturnToBaselineWhenTensorsDie) {
#if !GRAPHAUG_OBS_ENABLED
  GTEST_SKIP() << "built with GRAPHAUG_NO_OBS";
#endif
  const int64_t baseline_live = obs::LiveBytes();
  const int64_t baseline_allocs = obs::AllocCount();
  obs::ResetPeakBytes();
  {
    Matrix a(128, 64), b(64, 32);
    EXPECT_GE(obs::LiveBytes(),
              baseline_live +
                  static_cast<int64_t>(sizeof(float)) * (128 * 64 + 64 * 32));
    EXPECT_GE(obs::PeakBytes(), obs::LiveBytes());
  }
  // Scope closed: every buffer died, live is back to the baseline but the
  // high-water mark and monotonic counters remember the excursion.
  EXPECT_EQ(obs::LiveBytes(), baseline_live);
  EXPECT_GE(obs::PeakBytes(),
            baseline_live +
                static_cast<int64_t>(sizeof(float)) * (128 * 64 + 64 * 32));
  EXPECT_GE(obs::AllocCount(), baseline_allocs + 2);
  EXPECT_GE(obs::FreeCount(), 2);
}

TEST_F(ObsTest, PeakBytesTracksAllocationsAcrossPoolThreads) {
#if !GRAPHAUG_OBS_ENABLED
  GTEST_SKIP() << "built with GRAPHAUG_NO_OBS";
#endif
  const int prev_threads = NumThreads();
  SetNumThreads(4);
  const int64_t baseline_live = obs::LiveBytes();
  obs::ResetPeakBytes();
  constexpr int64_t kTasks = 64;
  constexpr int64_t kRows = 256, kCols = 16;
  ParallelFor(0, kTasks, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      Matrix m(kRows, kCols, 1.0f);
      // Touch the buffer so the allocation cannot be elided.
      ASSERT_EQ(m.data()[0], 1.0f);
    }
  });
  // Worker-thread allocations went through the same global accounting: at
  // least one matrix was live at some point past the baseline, and all of
  // them died by the barrier.
  EXPECT_GE(obs::PeakBytes(),
            baseline_live +
                static_cast<int64_t>(sizeof(float)) * kRows * kCols);
  EXPECT_EQ(obs::LiveBytes(), baseline_live);
  SetNumThreads(prev_threads);
}

TEST_F(ObsTest, AllocationsAttributeToEnclosingOpTag) {
#if !GRAPHAUG_OBS_ENABLED
  GTEST_SKIP() << "built with GRAPHAUG_NO_OBS";
#endif
  obs::SetEnabled(true);
  {
    obs::ScopedOp op("TestAllocOp");
    Matrix m(32, 32);
    ASSERT_NE(m.data(), nullptr);
  }
  const auto tags = obs::MemoryTagSnapshot();
  ASSERT_TRUE(tags.count("TestAllocOp"));
  EXPECT_GE(tags.at("TestAllocOp").bytes,
            static_cast<int64_t>(sizeof(float)) * 32 * 32);
  EXPECT_GE(tags.at("TestAllocOp").count, 1);

  std::string err;
  EXPECT_TRUE(obs::JsonLint(obs::MemoryJson(), &err)) << err;
}

// --------------------------------------------------------- perf counters

TEST_F(ObsTest, PerfCountersDegradeGracefully) {
  // Contract under any kernel/container configuration: Begin() either
  // succeeds (then End() yields plausible counts and the subsystem
  // reports available) or fails (then counts stay invalid and every
  // later Begin() fails cheaply). Both branches are correct.
  obs::PerfCounterGroup group;
  if (group.Begin()) {
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i) * 1.5;
    const obs::PerfCounts counts = group.End();
    ASSERT_TRUE(counts.valid);
    EXPECT_TRUE(obs::PerfCountersAvailable());
    EXPECT_GT(counts.instructions, 0);
    EXPECT_GT(counts.cycles, 0);
    EXPECT_GT(counts.Ipc(), 0.0);
    EXPECT_GE(counts.CacheMissRate(), 0.0);
    EXPECT_LE(counts.CacheMissRate(), 1.0);
  } else {
    EXPECT_FALSE(obs::PerfCountersAvailable());
    EXPECT_FALSE(group.End().valid);
    obs::PerfCounterGroup again;
    EXPECT_FALSE(again.Begin());
  }
  std::string err;
  EXPECT_TRUE(obs::JsonLint(obs::PerfJson(), &err)) << err;
}

// ------------------------------------------------------ sampling profiler

/// Burns roughly `seconds` of CPU in a frame the symbolizer must be able
/// to name. noinline keeps it a real stack frame in Release builds; the
/// volatile accumulator keeps the loop from being folded away.
__attribute__((noinline)) double ObsTestProfilerSpin(double seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(static_cast<int64_t>(seconds * 1e6));
  volatile double sink = 1.0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 4000; ++i) sink = sink * 1.0000001 + 1e-9;
  }
  return sink;
}

TEST_F(ObsTest, SamplingProfilerCapturesNamedFramesAndSpanTags) {
#if !GRAPHAUG_OBS_ENABLED
  GTEST_SKIP() << "built with GRAPHAUG_NO_OBS";
#endif
  obs::SetEnabled(true);
  if (!obs::StartProfiler(/*hz=*/4000)) {
    EXPECT_TRUE(obs::ProfilerProbeFailed());
    GTEST_SKIP() << "per-thread CPU timers unavailable in this environment";
  }
  EXPECT_TRUE(obs::ProfilerRunning());
  double sink = 0.0;
  {
    GA_TRACE_SPAN("obs_test_span");
    sink = ObsTestProfilerSpin(0.4);
  }
  obs::StopProfiler();
  EXPECT_NE(sink, 0.0);
  EXPECT_FALSE(obs::ProfilerRunning());
  // The kernel tick caps CPU-time timer delivery well below the requested
  // rate, so only presence is asserted, not the count.
  ASSERT_GT(obs::ProfileSampleCount(), 0)
      << "no SIGPROF ticks during 400ms of CPU spin";
  const std::string folded = obs::ProfileFoldedText();
  EXPECT_NE(folded.find("ObsTestProfilerSpin"), std::string::npos) << folded;
  EXPECT_NE(folded.find("span:obs_test_span"), std::string::npos) << folded;
  const obs::ProfileSummary sum = obs::SummarizeProfile();
  EXPECT_EQ(sum.samples, obs::ProfileSampleCount());
  EXPECT_GE(sum.threads, 1);
  // The spin dominates the profile and its frames resolve via the ELF
  // symtab, so attribution cannot collapse to "[unknown]".
  EXPECT_GE(sum.attributed_frac, 0.5);
  std::string err;
  EXPECT_TRUE(obs::JsonLint(obs::ProfileJson(), &err)) << err;
  EXPECT_TRUE(obs::WriteProfileFolded(::testing::TempDir() +
                                      "/obs_test_profile.folded"));
}

TEST_F(ObsTest, SamplingProfilerSamplesPoolWorkersWithInheritedTags) {
#if !GRAPHAUG_OBS_ENABLED
  GTEST_SKIP() << "built with GRAPHAUG_NO_OBS";
#endif
  obs::SetEnabled(true);
  const int prev_threads = NumThreads();
  SetNumThreads(3);
  // Warm the pool so the worker threads exist (and self-enroll) before
  // the session starts.
  ParallelFor(0, 4, 1, [](int64_t, int64_t) {});
  if (!obs::StartProfiler(/*hz=*/4000)) {
    SetNumThreads(prev_threads);
    GTEST_SKIP() << "per-thread CPU timers unavailable in this environment";
  }
  {
    // The dispatching thread's span is captured at ParallelFor and
    // re-published on every worker chunk, so samples landing in worker
    // threads carry the same tag as the caller's.
    GA_TRACE_SPAN("pool_span");
    ParallelFor(0, 4, 1, [](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) ObsTestProfilerSpin(0.1);
    });
  }
  obs::StopProfiler();
  SetNumThreads(prev_threads);
  ASSERT_GT(obs::ProfileSampleCount(), 0)
      << "no SIGPROF ticks during 400ms of pooled CPU spin";
  const std::string folded = obs::ProfileFoldedText();
  EXPECT_NE(folded.find("span:pool_span"), std::string::npos) << folded;
}

// ----------------------------------------------------------- run reports

TEST_F(ObsTest, RunReportWriterEmitsValidJsonl) {
  const std::string path =
      ::testing::TempDir() + "/obs_test_report.jsonl";
  obs::RunReportWriter writer;
  ASSERT_TRUE(writer.Open(path));
  obs::ReportEpoch e;
  e.epoch = 1;
  e.loss = 0.75;
  e.loss_components["bpr"] = 0.5;
  e.loss_components["gib_kl"] = 0.25;
  e.grad_norm = 1.5;
  e.evaluated = true;
  e.recall20 = 0.12;
  e.live_bytes = 1024;
  ASSERT_TRUE(writer.WriteEpoch(e));
  obs::ReportFooter f;
  f.env["git_sha"] = "abc123";
  f.config["model"] = "GraphAug";
  f.metrics["recall@20"] = 0.12;
  f.counters["train.batches"] = 6;
  f.best_epoch = 1;
  ASSERT_TRUE(writer.WriteFooter(f));
  ASSERT_TRUE(writer.Close());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  std::string err;
  for (const std::string& l : lines) {
    EXPECT_TRUE(obs::JsonLint(l, &err)) << l << ": " << err;
  }
  EXPECT_NE(lines[0].find("\"type\":\"epoch\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"gib_kl\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"recall20\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"footer\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"git_sha\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"train.batches\""), std::string::npos);
  std::remove(path.c_str());

  // Unevaluated epochs omit the eval fields entirely (absent, not zero).
  obs::ReportEpoch skip;
  skip.epoch = 2;
  EXPECT_EQ(obs::ReportEpochJson(skip).find("recall20"), std::string::npos);

  // An unwritable path fails Open without crashing.
  obs::RunReportWriter bad;
  EXPECT_FALSE(bad.Open("/no/such/dir/report.jsonl"));
  EXPECT_FALSE(bad.is_open());
}

// -------------------------------------------------------- JSON helpers

TEST_F(ObsTest, JsonLintAcceptsValidDocuments) {
  std::string err;
  for (const char* doc :
       {"{}", "[]", "null", "true", "-1.5e-3",
        R"({"a": [1, 2.5, "x\n\"y\""], "b": {"c": null}})",
        R"(["é", 1e10, -0.25])"}) {
    EXPECT_TRUE(obs::JsonLint(doc, &err)) << doc << ": " << err;
  }
}

TEST_F(ObsTest, JsonLintRejectsMalformedDocuments) {
  std::string err;
  for (const char* doc : {"{", "[1,]", "{\"a\":}", "tru", "1 2",
                          "{\"a\" 1}", "\"unterminated", ""}) {
    EXPECT_FALSE(obs::JsonLint(doc, &err)) << doc;
    EXPECT_FALSE(err.empty());
  }
}

TEST_F(ObsTest, CombinedMetricsJsonIsWellFormed) {
  obs::SetEnabled(true);
  obs::MetricsRegistry::Get().GetCounter("test.count")->Inc(3);
  obs::MetricsRegistry::Get().GetGauge("test.gauge")->Set(1.25);
  obs::MetricsRegistry::Get()
      .GetHistogram("test.hist", {1.0, 10.0})
      ->Observe(5.0);
  obs::HealthTracker::Get().RecordBatchGrad(1.0, 0);
  obs::HealthTracker::Get().EndEpoch(0, 1.0, 0.5);

  const std::string json = obs::MetricsJson();
  std::string err;
  EXPECT_TRUE(obs::JsonLint(json, &err)) << err;
  for (const char* key :
       {"\"metrics\"", "\"autograd_ops\"", "\"epochs\"", "\"parallel\"",
        "\"memory\"", "\"perf\"", "\"test.count\"", "\"test.gauge\"",
        "\"test.hist\"", "\"p50\"", "\"p95\"", "\"p99\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  const auto counters = obs::MetricsRegistry::Get().CounterSnapshot();
  ASSERT_TRUE(counters.count("test.count"));
  EXPECT_EQ(counters.at("test.count"), 3);
  // Non-finite doubles must serialize as null, not as bare NaN tokens.
  obs::MetricsRegistry::Get().GetGauge("test.badval")->Set(
      std::numeric_limits<double>::quiet_NaN());
  const std::string json2 = obs::MetricsJson();
  EXPECT_TRUE(obs::JsonLint(json2, &err)) << err;
  EXPECT_EQ(json2.find("nan"), std::string::npos);
  EXPECT_NE(json2.find("\"test.badval\": null"), std::string::npos);
}

// ------------------------------------------------------------ logging

TEST_F(ObsTest, ParseLogLevelNames) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("WARN", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  level = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kError);  // untouched on failure
}

// ------------------------------------- instrumentation is bit-transparent

GraphAugConfig ObsTinyConfig() {
  GraphAugConfig cfg;
  cfg.dim = 16;
  cfg.num_layers = 2;
  cfg.learning_rate = 0.01f;
  cfg.batch_size = 256;
  cfg.batches_per_epoch = 3;
  cfg.contrast_batch = 48;
  cfg.seed = 5;
  return cfg;
}

std::vector<Matrix> TrainTinyGraphAug(bool instrumented) {
  obs::SetEnabled(instrumented);
  obs::SetTraceEnabled(instrumented);
  // The instrumented run also carries the full passive tooling — memory
  // accounting is always on, the RSS sampler polls in the background,
  // and the sampling profiler interrupts the training threads with
  // SIGPROF — so the bitwise comparison below covers it all. StartProfiler
  // may fail where per-thread CPU timers are denied; the run is then
  // simply unprofiled, which the comparison covers too.
  if (instrumented) obs::RssSampler::Get().Start(/*period_ms=*/5);
  if (instrumented) obs::StartProfiler();
  SyntheticData data = GeneratePreset("tiny");
  GraphAug model(&data.dataset, ObsTinyConfig());
  for (int e = 0; e < 2; ++e) model.TrainEpoch();
  std::vector<Matrix> values;
  for (const Parameter* p : model.params()->params()) {
    values.push_back(p->value);
  }
  if (instrumented) obs::StopProfiler();
  if (instrumented) obs::RssSampler::Get().Stop();
  obs::SetEnabled(false);
  obs::SetTraceEnabled(false);
  return values;
}

TEST_F(ObsTest, InstrumentationDoesNotChangeTrainingBitwise) {
  const std::vector<Matrix> plain = TrainTinyGraphAug(false);
  const std::vector<Matrix> instrumented = TrainTinyGraphAug(true);
  ASSERT_EQ(plain.size(), instrumented.size());
  ASSERT_FALSE(plain.empty());
  for (size_t i = 0; i < plain.size(); ++i) {
    ASSERT_TRUE(plain[i].SameShape(instrumented[i])) << "param " << i;
    EXPECT_EQ(std::memcmp(plain[i].data(), instrumented[i].data(),
                          sizeof(float) *
                              static_cast<size_t>(plain[i].size())),
              0)
        << "param " << i << " diverged under instrumentation";
  }
#if GRAPHAUG_OBS_ENABLED
  // The instrumented run actually recorded things (this was not a
  // vacuous comparison). Epoch folding is the Trainer's job, so here the
  // evidence is the profiler and trace buffers, not the epoch history.
  EXPECT_FALSE(obs::AutogradProfiler::Get().Snapshot().empty());
  EXPECT_GT(obs::TraceEventTotal(), 0);
  // ... and so did the passive layers added alongside them.
  EXPECT_GT(obs::AllocCount(), 0);
  EXPECT_GE(obs::RssSampler::Get().SampleCount(), 1);
#endif
}

}  // namespace
}  // namespace graphaug
