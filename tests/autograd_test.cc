// Gradient-correctness tests for every autograd op: each analytic
// gradient is verified against central finite differences via
// CheckGradient. A parameterized suite sweeps the unary ops; structured
// ops (matmul, spmm, gather, reductions, composite losses) get dedicated
// cases.

#include <gtest/gtest.h>

#include <functional>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "autograd/optim.h"
#include "data/synthetic.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

class OpFixture : public ::testing::Test {
 protected:
  OpFixture() : rng_(7) {}

  Parameter* MakeParam(int64_t rows, int64_t cols, float stddev = 0.5f) {
    return store_.CreateNormal("p" + std::to_string(counter_++), rows, cols,
                               &rng_, stddev);
  }

  ParamStore store_;
  Rng rng_;
  int counter_ = 0;
};

// ---------------------------------------------------------------- unary ops

struct UnaryCase {
  const char* name;
  std::function<Var(Var)> apply;
  float init_stddev = 0.5f;
};

class UnaryGradTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradTest, MatchesFiniteDifferences) {
  const UnaryCase& uc = GetParam();
  Rng rng(13);
  ParamStore store;
  Parameter* p = store.CreateNormal("x", 4, 5, &rng, uc.init_stddev);
  GradCheckResult res = CheckGradient(p, [&](Tape* t) {
    return ag::MeanAll(uc.apply(ag::Leaf(t, p)));
  });
  EXPECT_TRUE(res.ok) << uc.name << " max_abs=" << res.max_abs_error
                      << " max_rel=" << res.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryGradTest,
    ::testing::Values(
        UnaryCase{"sigmoid", [](Var x) { return ag::Sigmoid(x); }},
        UnaryCase{"tanh", [](Var x) { return ag::Tanh(x); }},
        UnaryCase{"relu", [](Var x) { return ag::Relu(x); }, 1.0f},
        UnaryCase{"leaky_relu",
                  [](Var x) { return ag::LeakyRelu(x, 0.5f); }, 1.0f},
        UnaryCase{"exp", [](Var x) { return ag::Exp(x); }},
        UnaryCase{"softplus", [](Var x) { return ag::Softplus(x); }},
        UnaryCase{"square", [](Var x) { return ag::Square(x); }},
        UnaryCase{"scale", [](Var x) { return ag::Scale(x, -2.5f); }},
        UnaryCase{"add_scalar", [](Var x) { return ag::AddScalar(x, 3.f); }},
        UnaryCase{"neg", [](Var x) { return ag::Neg(x); }},
        UnaryCase{"row_l2_normalize",
                  [](Var x) { return ag::RowL2Normalize(x); }},
        UnaryCase{"log_sum_exp",
                  [](Var x) { return ag::LogSumExpRows(x); }},
        UnaryCase{"row_sum", [](Var x) { return ag::RowSum(x); }},
        UnaryCase{"slice_cols",
                  [](Var x) { return ag::SliceCols(x, 1, 3); }}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) {
      return std::string(info.param.name);
    });

TEST_F(OpFixture, LogGradient) {
  // Log requires positive inputs.
  Parameter* p = MakeParam(3, 4);
  for (int64_t i = 0; i < p->value.size(); ++i) {
    p->value[i] = 0.5f + std::fabs(p->value[i]);
  }
  GradCheckResult res = CheckGradient(p, [&](Tape* t) {
    return ag::MeanAll(ag::Log(ag::Leaf(t, p)));
  });
  EXPECT_TRUE(res.ok) << res.max_abs_error;
}

// --------------------------------------------------------------- binary ops

TEST_F(OpFixture, AddSubMulGradients) {
  Parameter* a = MakeParam(3, 4);
  Parameter* b = MakeParam(3, 4);
  for (auto* target : {a, b}) {
    GradCheckResult res = CheckGradient(target, [&](Tape* t) {
      Var va = ag::Leaf(t, a);
      Var vb = ag::Leaf(t, b);
      return ag::MeanAll(ag::Mul(ag::Add(va, vb), ag::Sub(va, vb)));
    });
    EXPECT_TRUE(res.ok) << res.max_abs_error;
  }
}

TEST_F(OpFixture, MatMulAllTransposeCombos) {
  Parameter* a = MakeParam(3, 4);
  Parameter* b = MakeParam(4, 5);
  Parameter* at = MakeParam(4, 3);
  Parameter* bt = MakeParam(5, 4);
  struct Case {
    Parameter *pa, *pb;
    bool ta, tb;
  };
  for (const Case& c : {Case{a, b, false, false}, Case{at, b, true, false},
                        Case{a, bt, false, true}, Case{at, bt, true, true}}) {
    for (Parameter* target : {c.pa, c.pb}) {
      GradCheckResult res = CheckGradient(target, [&](Tape* t) {
        return ag::MeanAll(
            ag::MatMul(ag::Leaf(t, c.pa), ag::Leaf(t, c.pb), c.ta, c.tb));
      });
      EXPECT_TRUE(res.ok) << "ta=" << c.ta << " tb=" << c.tb
                          << " err=" << res.max_abs_error;
    }
  }
}

TEST_F(OpFixture, ConcatColsGradient) {
  Parameter* a = MakeParam(3, 2);
  Parameter* b = MakeParam(3, 3);
  for (Parameter* target : {a, b}) {
    GradCheckResult res = CheckGradient(target, [&](Tape* t) {
      return ag::MeanAll(
          ag::Square(ag::ConcatCols(ag::Leaf(t, a), ag::Leaf(t, b))));
    });
    EXPECT_TRUE(res.ok);
  }
}

TEST_F(OpFixture, GatherRowsGradientWithDuplicates) {
  Parameter* a = MakeParam(5, 3);
  std::vector<int32_t> idx = {0, 2, 2, 4, 0};
  GradCheckResult res = CheckGradient(a, [&](Tape* t) {
    return ag::MeanAll(ag::Square(ag::GatherRows(ag::Leaf(t, a), idx)));
  });
  EXPECT_TRUE(res.ok);
}

TEST_F(OpFixture, BroadcastGradients) {
  Parameter* a = MakeParam(4, 3);
  Parameter* row = MakeParam(1, 3);
  Parameter* col = MakeParam(4, 1);
  for (Parameter* target : {a, row}) {
    GradCheckResult res = CheckGradient(target, [&](Tape* t) {
      return ag::MeanAll(ag::Square(
          ag::AddRowBroadcast(ag::Leaf(t, a), ag::Leaf(t, row))));
    });
    EXPECT_TRUE(res.ok) << "AddRowBroadcast";
    res = CheckGradient(target, [&](Tape* t) {
      return ag::MeanAll(ag::Square(
          ag::MulRowBroadcast(ag::Leaf(t, a), ag::Leaf(t, row))));
    });
    EXPECT_TRUE(res.ok) << "MulRowBroadcast";
  }
  for (Parameter* target : {a, col}) {
    GradCheckResult res = CheckGradient(target, [&](Tape* t) {
      return ag::MeanAll(ag::Square(
          ag::MulColBroadcast(ag::Leaf(t, a), ag::Leaf(t, col))));
    });
    EXPECT_TRUE(res.ok) << "MulColBroadcast";
  }
}

TEST_F(OpFixture, RowDotGradient) {
  Parameter* a = MakeParam(4, 3);
  Parameter* b = MakeParam(4, 3);
  for (Parameter* target : {a, b}) {
    GradCheckResult res = CheckGradient(target, [&](Tape* t) {
      return ag::MeanAll(ag::RowDot(ag::Leaf(t, a), ag::Leaf(t, b)));
    });
    EXPECT_TRUE(res.ok);
  }
}

// ------------------------------------------------------------- sparse ops

TEST_F(OpFixture, SpmmGradient) {
  CsrMatrix csr = CsrMatrix::FromCoo(
      3, 4, {{0, 1, 2.f}, {1, 0, -1.f}, {1, 3, 0.5f}, {2, 2, 1.5f}});
  Parameter* h = MakeParam(4, 3);
  GradCheckResult res = CheckGradient(h, [&](Tape* t) {
    return ag::MeanAll(ag::Square(ag::Spmm(&csr, ag::Leaf(t, h))));
  });
  EXPECT_TRUE(res.ok);
}

TEST_F(OpFixture, SpmmMatchesDense) {
  CsrMatrix csr = CsrMatrix::FromCoo(
      3, 4, {{0, 1, 2.f}, {1, 0, -1.f}, {1, 3, 0.5f}, {2, 2, 1.5f}});
  Matrix dense(4, 2);
  Rng rng(3);
  InitNormal(&dense, &rng);
  Matrix expected = MatMul(csr.ToDense(), dense);
  Matrix got;
  csr.Spmm(dense, &got);
  EXPECT_TRUE(AllClose(got, expected));
}

TEST_F(OpFixture, EdgeWeightedSpmmGradientBothInputs) {
  // Small bipartite graph: 3 users, 2 items.
  BipartiteGraph g(3, 2, {{0, 0}, {0, 1}, {1, 0}, {2, 1}});
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  Parameter* w = MakeParam(static_cast<int64_t>(g.num_edges()), 1, 0.3f);
  for (int64_t i = 0; i < w->value.size(); ++i) {
    w->value[i] = 0.5f + std::fabs(w->value[i]);
  }
  Parameter* h = MakeParam(g.num_nodes(), 3);
  for (Parameter* target : {w, h}) {
    GradCheckResult res = CheckGradient(target, [&](Tape* t) {
      return ag::MeanAll(ag::Square(
          ag::EdgeWeightedSpmm(&adj, ag::Leaf(t, w), ag::Leaf(t, h))));
    });
    EXPECT_TRUE(res.ok) << res.max_abs_error;
  }
}

TEST_F(OpFixture, EdgeWeightedSpmmWithUnitWeightsMatchesSpmm) {
  BipartiteGraph g(4, 3, {{0, 0}, {1, 1}, {2, 2}, {3, 0}, {0, 2}});
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  Matrix h(g.num_nodes(), 4);
  Rng rng(11);
  InitNormal(&h, &rng);
  Tape tape;
  Var hv = ag::Constant(&tape, h);
  Var w = ag::Constant(&tape,
                       Matrix(static_cast<int64_t>(g.num_edges()), 1, 1.f));
  Var weighted = ag::EdgeWeightedSpmm(&adj, w, hv);
  Var plain = ag::Spmm(&adj.matrix, hv);
  EXPECT_TRUE(AllClose(weighted.value(), plain.value()));
}

// ----------------------------------------------------------- composite ops

TEST_F(OpFixture, BprLossGradient) {
  Parameter* pos = MakeParam(6, 1);
  Parameter* neg = MakeParam(6, 1);
  for (Parameter* target : {pos, neg}) {
    GradCheckResult res = CheckGradient(target, [&](Tape* t) {
      return ag::BprLoss(ag::Leaf(t, pos), ag::Leaf(t, neg));
    });
    EXPECT_TRUE(res.ok);
  }
}

TEST_F(OpFixture, InfoNceGradientAndValue) {
  Parameter* a = MakeParam(5, 4);
  Parameter* b = MakeParam(5, 4);
  for (Parameter* target : {a, b}) {
    GradCheckResult res = CheckGradient(target, [&](Tape* t) {
      return ag::InfoNceLoss(ag::Leaf(t, a), ag::Leaf(t, b), 0.5f);
    });
    EXPECT_TRUE(res.ok) << res.max_abs_error;
  }
  // Identical, well-separated views should give lower loss than random
  // pairings: check InfoNCE decreases when b == a.
  Tape t1;
  Var la = ag::Leaf(&t1, a);
  double same = ag::InfoNceLoss(la, ag::Leaf(&t1, a), 0.5f).value().scalar();
  double diff = ag::InfoNceLoss(la, ag::Leaf(&t1, b), 0.5f).value().scalar();
  EXPECT_LT(same, diff);
}

TEST_F(OpFixture, GaussianKlGradientAndZeroAtStandardNormal) {
  Parameter* mu = MakeParam(4, 3);
  Parameter* raw = MakeParam(4, 3);
  for (Parameter* target : {mu, raw}) {
    GradCheckResult res = CheckGradient(target, [&](Tape* t) {
      return ag::GaussianKl(ag::Leaf(t, mu), ag::Leaf(t, raw));
    });
    EXPECT_TRUE(res.ok);
  }
  // KL is minimized (≈0) at mu=0, sigma=1 (softplus(raw)=1 => raw≈0.5413).
  mu->value.Zero();
  raw->value.Fill(0.54132485f);
  Tape t;
  double kl = ag::GaussianKl(ag::Leaf(&t, mu), ag::Leaf(&t, raw))
                  .value()
                  .scalar();
  EXPECT_NEAR(kl, 0.0, 1e-4);
}

TEST_F(OpFixture, DropoutScalesAndMasks) {
  Parameter* a = MakeParam(50, 40, 1.f);
  a->value.Fill(1.f);
  Tape tape;
  Rng rng(5);
  Var d = ag::Dropout(ag::Leaf(&tape, a), 0.5f, &rng);
  int zeros = 0;
  for (int64_t i = 0; i < d.value().size(); ++i) {
    const float v = d.value()[i];
    EXPECT_TRUE(v == 0.f || std::fabs(v - 2.f) < 1e-6);
    zeros += v == 0.f;
  }
  const double frac = static_cast<double>(zeros) / d.value().size();
  EXPECT_NEAR(frac, 0.5, 0.05);
  // Mean is preserved in expectation (inverted dropout).
  EXPECT_NEAR(MeanAll(d.value()), 1.0, 0.1);
}

// ------------------------------------------------------------- optimizers

TEST_F(OpFixture, SgdStepReducesQuadratic) {
  // loss = mean(p^2) => gradient p * 2/16; decay per step is
  // (1 - lr/8), so lr=1 over 50 steps shrinks the norm by ~1e-3.
  Parameter* p = MakeParam(4, 4, 1.f);
  Sgd sgd(1.0f);
  double prev = SquaredNorm(p->value);
  for (int i = 0; i < 50; ++i) {
    Tape tape;
    Var loss = ag::MeanAll(ag::Square(ag::Leaf(&tape, p)));
    tape.Backward(loss);
    sgd.Step(&store_);
  }
  EXPECT_LT(SquaredNorm(p->value), prev * 0.2);
}

TEST_F(OpFixture, AdamConvergesToTarget) {
  Parameter* p = MakeParam(3, 3, 1.f);
  Matrix target(3, 3);
  Rng rng(21);
  InitNormal(&target, &rng, 0.f, 1.f);
  Adam adam(0.05f);
  for (int i = 0; i < 300; ++i) {
    Tape tape;
    Var diff = ag::Sub(ag::Leaf(&tape, p), ag::Constant(&tape, target));
    Var loss = ag::MeanAll(ag::Square(diff));
    tape.Backward(loss);
    adam.Step(&store_);
  }
  EXPECT_TRUE(AllClose(p->value, target, 1e-2f, 1e-2f));
}

TEST_F(OpFixture, BackwardAccumulatesIntoSharedLeaf) {
  // One parameter feeding two branches: gradient must be the sum.
  Parameter* p = MakeParam(2, 2, 1.f);
  GradCheckResult res = CheckGradient(p, [&](Tape* t) {
    Var x = ag::Leaf(t, p);
    return ag::Add(ag::MeanAll(ag::Square(x)),
                   ag::MeanAll(ag::Sigmoid(x)));
  });
  EXPECT_TRUE(res.ok);
}

TEST_F(OpFixture, BackwardRequiresScalarRoot) {
  Parameter* p = MakeParam(2, 3);
  Tape tape;
  Var x = ag::Leaf(&tape, p);
  EXPECT_DEATH(tape.Backward(x), "scalar");
}

}  // namespace
}  // namespace graphaug
