// Failure-injection and degenerate-input tests: tiny or pathological
// datasets, cold-start users, fully-dropped views, extreme configs —
// the library must either work or fail loudly via CHECK, never silently
// corrupt.

#include <gtest/gtest.h>

#include <cmath>

#include "core/graphaug.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "graph/corruption.h"
#include "models/registry.h"
#include "models/trainer.h"

namespace graphaug {
namespace {

Dataset MinimalDataset() {
  Dataset d;
  d.name = "minimal";
  d.num_users = 3;
  d.num_items = 4;
  d.train_edges = {{0, 0}, {0, 1}, {1, 1}, {2, 2}};
  d.test_edges = {{0, 2}, {1, 3}};
  return d;
}

TEST(RobustnessTest, MinimalDatasetTrainsEveryModel) {
  Dataset d = MinimalDataset();
  ModelConfig cfg;
  cfg.dim = 8;
  cfg.batch_size = 16;
  cfg.batches_per_epoch = 2;
  cfg.contrast_batch = 3;
  for (const std::string& name : AllModelNames()) {
    auto model = CreateModel(name, &d, cfg);
    const double loss = model->TrainEpoch();
    EXPECT_TRUE(std::isfinite(loss)) << name;
    model->Finalize();
    Matrix scores = model->ScoreUsers({0, 1, 2});
    for (int64_t i = 0; i < scores.size(); ++i) {
      ASSERT_TRUE(std::isfinite(scores[i])) << name;
    }
  }
}

TEST(RobustnessTest, ColdStartUserStillScored) {
  // User 2 has one training edge and no test edge; user 0 carries the
  // data. Every user must receive finite scores.
  Dataset d = MinimalDataset();
  GraphAugConfig cfg;
  cfg.dim = 8;
  cfg.batches_per_epoch = 2;
  cfg.contrast_batch = 3;
  GraphAug model(&d, cfg);
  model.TrainEpoch();
  model.Finalize();
  Matrix scores = model.ScoreUsers({2});
  for (int64_t i = 0; i < scores.size(); ++i) {
    EXPECT_TRUE(std::isfinite(scores[i]));
  }
}

TEST(RobustnessTest, ExtremeEdgeThresholdDropsEverything) {
  // xi = 0.99 drops essentially all sampled edges; training must still
  // proceed on the (self-loop only) views without NaNs.
  SyntheticData data = GeneratePreset("tiny");
  GraphAugConfig cfg;
  cfg.dim = 8;
  cfg.batches_per_epoch = 2;
  cfg.augmentor.gib.edge_threshold = 0.99f;
  GraphAug model(&data.dataset, cfg);
  for (int e = 0; e < 3; ++e) {
    EXPECT_TRUE(std::isfinite(model.TrainEpoch()));
  }
}

TEST(RobustnessTest, OddEmbeddingDimWorksWithGib) {
  // GIB splits d into halves; odd d must still work (floor split).
  SyntheticData data = GeneratePreset("tiny");
  GraphAugConfig cfg;
  cfg.dim = 9;
  cfg.batches_per_epoch = 2;
  GraphAug model(&data.dataset, cfg);
  EXPECT_TRUE(std::isfinite(model.TrainEpoch()));
}

TEST(RobustnessTest, FullDropoutCorruptionRejected) {
  SyntheticData data = GeneratePreset("tiny");
  BipartiteGraph g = data.dataset.TrainGraph();
  Rng rng(1);
  EXPECT_DEATH(DropEdges(g, 1.0, rng), "");
  EXPECT_DEATH(DropEdges(g, -0.1, rng), "");
}

TEST(RobustnessTest, EvaluatorWithNoTestUsers) {
  Dataset d = MinimalDataset();
  d.test_edges.clear();
  Evaluator eval(&d, {5});
  EXPECT_TRUE(eval.evaluable_users().empty());
  auto scorer = [&](const std::vector<int32_t>& users) {
    return Matrix(static_cast<int64_t>(users.size()), d.num_items);
  };
  TopKMetrics m = eval.Evaluate(scorer);
  EXPECT_EQ(m.num_users, 0);
}

TEST(RobustnessTest, TrainerOnZeroEpochs) {
  SyntheticData data = GeneratePreset("tiny");
  ModelConfig cfg;
  cfg.dim = 8;
  cfg.batches_per_epoch = 1;
  auto model = CreateModel("BiasMF", &data.dataset, cfg);
  Evaluator eval(&data.dataset, {20, 40});
  TrainOptions opts;
  opts.epochs = 0;
  TrainResult r = TrainAndEvaluate(model.get(), eval, opts);
  EXPECT_TRUE(r.history.empty());
  EXPECT_EQ(r.best_epoch, 0);
}

TEST(RobustnessTest, HugeContrastBatchClampsToUniverse) {
  SyntheticData data = GeneratePreset("tiny");
  ModelConfig cfg;
  cfg.dim = 8;
  cfg.batches_per_epoch = 1;
  cfg.contrast_batch = 1 << 20;  // far more nodes than exist
  auto model = CreateModel("SGL", &data.dataset, cfg);
  EXPECT_TRUE(std::isfinite(model->TrainEpoch()));
}

TEST(RobustnessTest, NoiseInjectionOnDenseGraphTerminates) {
  // A nearly-complete bipartite graph leaves few free slots; the injector
  // must cap attempts instead of spinning forever.
  std::vector<Edge> edges;
  for (int32_t u = 0; u < 10; ++u) {
    for (int32_t v = 0; v < 10; ++v) {
      if ((u + v) % 17 != 0) edges.push_back({u, v});
    }
  }
  BipartiteGraph g(10, 10, edges);
  Rng rng(3);
  BipartiteGraph noisy = AddRandomEdges(g, 2.0, rng);
  EXPECT_LE(noisy.num_edges(), 100);
  EXPECT_GE(noisy.num_edges(), g.num_edges());
}

TEST(RobustnessTest, GraphAugSingleLayerSingleHop) {
  SyntheticData data = GeneratePreset("tiny");
  GraphAugConfig cfg;
  cfg.dim = 8;
  cfg.num_layers = 1;
  cfg.hops = {0, 1};
  cfg.batches_per_epoch = 2;
  GraphAug model(&data.dataset, cfg);
  EXPECT_TRUE(std::isfinite(model.TrainEpoch()));
  model.Finalize();
}

}  // namespace
}  // namespace graphaug
