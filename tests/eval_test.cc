// Tests for the evaluation stack: hand-computed Recall/NDCG cases, the
// full-ranking evaluator with a known-perfect scorer, train-item masking,
// MAD / uniformity diagnostics, and the Welch t-test.

#include <gtest/gtest.h>

#include <cmath>

#include "data/stats.h"
#include "data/synthetic.h"
#include "eval/embedding_stats.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "eval/significance.h"
#include "tensor/init.h"

namespace graphaug {
namespace {

TEST(MetricsTest, HandComputedCase) {
  // Ranked: [5, 2, 9, 1]; relevant: {2, 1, 7}.
  std::vector<int> ks = {2, 4};
  std::vector<double> recall(2, 0), ndcg(2, 0), prec(2, 0), hit(2, 0);
  AccumulateUserMetrics({5, 2, 9, 1}, {1, 2, 7}, ks, &recall, &ndcg, &prec,
                        &hit);
  EXPECT_NEAR(recall[0], 1.0 / 3.0, 1e-9);  // only item 2 in top-2
  EXPECT_NEAR(recall[1], 2.0 / 3.0, 1e-9);  // items 2 and 1 in top-4
  EXPECT_NEAR(prec[0], 0.5, 1e-9);
  EXPECT_NEAR(hit[0], 1.0, 1e-9);
  // DCG@4 = 1/log2(3) + 1/log2(5); IDCG@4 = 1/log2(2)+1/log2(3)+1/log2(4).
  const double dcg = 1 / std::log2(3.0) + 1 / std::log2(5.0);
  const double idcg = 1.0 + 1 / std::log2(3.0) + 0.5;
  EXPECT_NEAR(ndcg[1], dcg / idcg, 1e-9);
}

TEST(MetricsTest, PerfectRankingGivesOnes) {
  std::vector<int> ks = {3};
  std::vector<double> recall(1, 0), ndcg(1, 0), prec(1, 0), hit(1, 0),
      map(1, 0), mrr(1, 0);
  AccumulateUserMetrics({4, 7, 9}, {4, 7, 9}, ks, &recall, &ndcg, &prec,
                        &hit, &map, &mrr);
  EXPECT_DOUBLE_EQ(recall[0], 1.0);
  EXPECT_DOUBLE_EQ(ndcg[0], 1.0);
  EXPECT_DOUBLE_EQ(prec[0], 1.0);
  EXPECT_DOUBLE_EQ(map[0], 1.0);
  EXPECT_DOUBLE_EQ(mrr[0], 1.0);
}

TEST(MetricsTest, MapAndMrrHandComputed) {
  // Ranked [9, 2, 5, 1], relevant {2, 1}:
  // hits at ranks 2 and 4 => AP@4 = (1/2)(1/2 + 2/4) = 0.5; RR = 1/2.
  std::vector<int> ks = {4};
  std::vector<double> recall(1, 0), ndcg(1, 0), prec(1, 0), hit(1, 0),
      map(1, 0), mrr(1, 0);
  AccumulateUserMetrics({9, 2, 5, 1}, {1, 2}, ks, &recall, &ndcg, &prec,
                        &hit, &map, &mrr);
  EXPECT_NEAR(map[0], 0.5, 1e-12);
  EXPECT_NEAR(mrr[0], 0.5, 1e-12);
  // No relevant items in the ranking => both zero.
  std::fill(map.begin(), map.end(), 0.0);
  std::fill(mrr.begin(), mrr.end(), 0.0);
  std::vector<double> r2(1, 0), n2(1, 0), p2(1, 0), h2(1, 0);
  AccumulateUserMetrics({9, 5, 3, 8}, {1, 2}, ks, &r2, &n2, &p2, &h2, &map,
                        &mrr);
  EXPECT_DOUBLE_EQ(map[0], 0.0);
  EXPECT_DOUBLE_EQ(mrr[0], 0.0);
}

TEST(MetricsTest, UnknownCutoffAborts) {
  TopKMetrics m;
  m.ks = {20};
  m.recall = {0.5};
  EXPECT_DEATH(m.RecallAt(40), "");
}

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() {
    dataset_.name = "eval-test";
    dataset_.num_users = 4;
    dataset_.num_items = 10;
    dataset_.train_edges = {{0, 0}, {0, 1}, {1, 2}, {2, 3}, {3, 4}};
    dataset_.test_edges = {{0, 5}, {1, 6}, {2, 7}};  // user 3 has no test
  }
  Dataset dataset_;
};

TEST_F(EvaluatorTest, PerfectOracleScoresOne) {
  Evaluator eval(&dataset_, {2, 5});
  EXPECT_EQ(eval.evaluable_users().size(), 3u);
  // Oracle puts each user's test item on top.
  auto scorer = [&](const std::vector<int32_t>& users) {
    Matrix scores(static_cast<int64_t>(users.size()), dataset_.num_items);
    auto test_items = dataset_.TestItemsByUser();
    for (size_t i = 0; i < users.size(); ++i) {
      for (int32_t v : test_items[users[i]]) {
        scores.at(static_cast<int64_t>(i), v) = 10.f;
      }
    }
    return scores;
  };
  TopKMetrics m = eval.Evaluate(scorer);
  EXPECT_EQ(m.num_users, 3);
  EXPECT_DOUBLE_EQ(m.RecallAt(2), 1.0);
  EXPECT_DOUBLE_EQ(m.NdcgAt(2), 1.0);
}

TEST_F(EvaluatorTest, TrainItemsAreMasked) {
  Evaluator eval(&dataset_, {1});
  // Adversarial scorer that puts train items on top: masking must kick in
  // and the next-best item decides the metric.
  auto scorer = [&](const std::vector<int32_t>& users) {
    Matrix scores(static_cast<int64_t>(users.size()), dataset_.num_items);
    for (size_t i = 0; i < users.size(); ++i) {
      // Train items get huge scores; the test item gets medium.
      for (const Edge& e : dataset_.train_edges) {
        if (e.user == users[i]) {
          scores.at(static_cast<int64_t>(i), e.item) = 100.f;
        }
      }
      for (const Edge& e : dataset_.test_edges) {
        if (e.user == users[i]) {
          scores.at(static_cast<int64_t>(i), e.item) = 1.f;
        }
      }
    }
    return scores;
  };
  TopKMetrics m = eval.Evaluate(scorer);
  // With train items masked, the test item ranks first for everyone.
  EXPECT_DOUBLE_EQ(m.RecallAt(1), 1.0);
}

TEST_F(EvaluatorTest, EvaluateUsersSubset) {
  Evaluator eval(&dataset_, {5});
  auto zero_scorer = [&](const std::vector<int32_t>& users) {
    return Matrix(static_cast<int64_t>(users.size()), dataset_.num_items);
  };
  TopKMetrics m = eval.EvaluateUsers(zero_scorer, {0, 3});  // 3 has no test
  EXPECT_EQ(m.num_users, 1);
}

TEST_F(EvaluatorTest, ItemGroupRestrictsRelevance) {
  Evaluator eval(&dataset_, {2});
  // Oracle scorer: every user's test item on top.
  auto scorer = [&](const std::vector<int32_t>& users) {
    Matrix scores(static_cast<int64_t>(users.size()), dataset_.num_items);
    auto test_items = dataset_.TestItemsByUser();
    for (size_t i = 0; i < users.size(); ++i) {
      for (int32_t v : test_items[users[i]]) {
        scores.at(static_cast<int64_t>(i), v) = 10.f;
      }
    }
    return scores;
  };
  // Test edges are {0,5},{1,6},{2,7}. Group {5,6}: users 0,1 evaluable.
  TopKMetrics m = eval.EvaluateItemGroup(scorer, {5, 6});
  EXPECT_EQ(m.num_users, 2);
  EXPECT_DOUBLE_EQ(m.RecallAt(2), 1.0);
  // Group containing no test item: nobody evaluable.
  TopKMetrics empty = eval.EvaluateItemGroup(scorer, {9});
  EXPECT_EQ(empty.num_users, 0);
}

TEST(StatsGroupingTest, GroupItemsByDegree) {
  Dataset d;
  d.num_users = 30;
  d.num_items = 3;
  // Item degrees: 1, 5, 12.
  d.train_edges.push_back({0, 0});
  for (int32_t u = 0; u < 5; ++u) d.train_edges.push_back({u, 1});
  for (int32_t u = 0; u < 12; ++u) d.train_edges.push_back({u, 2});
  auto groups = GroupItemsByDegree(d, {0, 4, 10, 100});
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], std::vector<int32_t>{0});
  EXPECT_EQ(groups[1], std::vector<int32_t>{1});
  EXPECT_EQ(groups[2], std::vector<int32_t>{2});
}

TEST(EmbeddingStatsTest, MadDetectsCollapse) {
  Rng rng(1);
  Matrix spread(100, 16);
  InitNormal(&spread, &rng, 0.f, 1.f);
  Matrix collapsed(100, 16);
  // All rows nearly identical.
  for (int64_t r = 0; r < collapsed.rows(); ++r) {
    for (int64_t c = 0; c < collapsed.cols(); ++c) {
      collapsed.at(r, c) =
          1.f + 0.01f * static_cast<float>(rng.Gaussian());
    }
  }
  Rng mrng(2);
  const double mad_spread = ComputeMad(spread, 4000, &mrng);
  const double mad_collapsed = ComputeMad(collapsed, 4000, &mrng);
  EXPECT_GT(mad_spread, 0.5);
  EXPECT_LT(mad_collapsed, 0.05);
}

TEST(EmbeddingStatsTest, UniformityOrdersDistributions) {
  Rng rng(3);
  Matrix uniform(200, 8);
  InitNormal(&uniform, &rng, 0.f, 1.f);  // ~uniform on sphere when normalized
  Matrix clumped(200, 8);
  for (int64_t r = 0; r < clumped.rows(); ++r) {
    clumped.at(r, 0) = 5.f + static_cast<float>(rng.Gaussian(0, 0.1));
    for (int64_t c = 1; c < 8; ++c) {
      clumped.at(r, c) = static_cast<float>(rng.Gaussian(0, 0.1));
    }
  }
  Rng urng(4);
  EXPECT_LT(ComputeUniformity(uniform, 4000, &urng),
            ComputeUniformity(clumped, 4000, &urng));
}

TEST(EmbeddingStatsTest, AlignmentOfIdenticalViewsIsOne) {
  Rng rng(5);
  Matrix a(50, 8);
  InitNormal(&a, &rng, 0.f, 1.f);
  EXPECT_NEAR(ComputeAlignment(a, a), 1.0, 1e-6);
}

TEST(EmbeddingStatsTest, PcaProjectionPreservesDominantDirection) {
  // Points lie along a line in 8-D; the first PCA coordinate must carry
  // nearly all the variance.
  Rng rng(6);
  Matrix pts(300, 8);
  for (int64_t r = 0; r < pts.rows(); ++r) {
    const float t = static_cast<float>(rng.Gaussian(0, 3));
    for (int64_t c = 0; c < 8; ++c) {
      pts.at(r, c) = t * (c == 2 ? 1.f : 0.1f) +
                     static_cast<float>(rng.Gaussian(0, 0.05));
    }
  }
  Matrix proj = PcaProject2d(pts, &rng);
  ASSERT_EQ(proj.cols(), 2);
  double var1 = 0, var2 = 0;
  for (int64_t r = 0; r < proj.rows(); ++r) {
    var1 += proj.at(r, 0) * proj.at(r, 0);
    var2 += proj.at(r, 1) * proj.at(r, 1);
  }
  EXPECT_GT(var1, 10 * var2);
}

TEST(SignificanceTest, TTestSeparatesDistinctMeans) {
  std::vector<double> a = {0.20, 0.21, 0.20, 0.22, 0.21};
  std::vector<double> b = {0.18, 0.17, 0.18, 0.19, 0.18};
  TTestResult r = WelchTTest(a, b);
  EXPECT_GT(r.t_statistic, 3.0);
  EXPECT_LT(r.p_value, 0.01);
}

TEST(SignificanceTest, TTestIdenticalSamplesNotSignificant) {
  std::vector<double> a = {0.2, 0.21, 0.19, 0.2};
  TTestResult r = WelchTTest(a, a);
  EXPECT_NEAR(r.t_statistic, 0.0, 1e-9);
  EXPECT_GT(r.p_value, 0.9);
}

TEST(SignificanceTest, IncompleteBetaSanity) {
  EXPECT_NEAR(IncompleteBeta(1, 1, 0.3), 0.3, 1e-9);  // uniform CDF
  EXPECT_NEAR(IncompleteBeta(2, 2, 0.5), 0.5, 1e-9);  // symmetric
  EXPECT_DOUBLE_EQ(IncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(IncompleteBeta(2, 3, 1.0), 1.0);
}

}  // namespace
}  // namespace graphaug
