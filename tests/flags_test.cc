// Tests for the command-line flag parser used by the CLI tool.

#include <gtest/gtest.h>

#include "common/flags.h"

namespace graphaug {
namespace {

FlagParser Parse(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return FlagParser(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsForm) {
  FlagParser f = Parse({"--dim=64", "--dataset=gowalla-sim", "train"});
  EXPECT_EQ(f.GetInt("dim", 32), 64);
  EXPECT_EQ(f.GetString("dataset", ""), "gowalla-sim");
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "train");
}

TEST(FlagsTest, SpaceFormIsSwitchPlusPositional) {
  // `--dataset gowalla-sim` parses as the switch --dataset=true plus a
  // positional: the space form is deliberately unsupported.
  FlagParser f = Parse({"--dataset", "gowalla-sim"});
  EXPECT_TRUE(f.GetBool("dataset", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "gowalla-sim");
}

TEST(FlagsTest, Defaults) {
  FlagParser f = Parse({});
  EXPECT_EQ(f.GetInt("epochs", 24), 24);
  EXPECT_DOUBLE_EQ(f.GetDouble("lr", 0.005), 0.005);
  EXPECT_EQ(f.GetString("model", "GraphAug"), "GraphAug");
  EXPECT_FALSE(f.GetBool("verbose", false));
  EXPECT_FALSE(f.Has("anything"));
}

TEST(FlagsTest, BareSwitchIsTrue) {
  FlagParser f = Parse({"--verbose", "--fast", "run"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_TRUE(f.GetBool("fast", false));
  EXPECT_EQ(f.positional()[0], "run");
}

TEST(FlagsTest, BooleanSpellings) {
  EXPECT_TRUE(Parse({"--x=yes"}).GetBool("x", false));
  EXPECT_TRUE(Parse({"--x=1"}).GetBool("x", false));
  EXPECT_FALSE(Parse({"--x=no"}).GetBool("x", true));
  EXPECT_FALSE(Parse({"--x=false"}).GetBool("x", true));
}

TEST(FlagsTest, DoubleAndNegativeInt) {
  FlagParser f = Parse({"--lr=1e-3", "--offset=-5"});
  EXPECT_DOUBLE_EQ(f.GetDouble("lr", 0), 1e-3);
  EXPECT_EQ(f.GetInt("offset", 0), -5);
}

TEST(FlagsTest, MalformedNumberAborts) {
  FlagParser f = Parse({"--dim=abc"});
  EXPECT_DEATH(f.GetInt("dim", 0), "expects an integer");
  FlagParser g = Parse({"--lr=xyz"});
  EXPECT_DEATH(g.GetDouble("lr", 0), "expects a number");
}

TEST(FlagsTest, UnusedFlagsDetected) {
  FlagParser f = Parse({"--dim=4", "--typo-flag=7"});
  (void)f.GetInt("dim", 0);
  auto unused = f.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo-flag");
}

}  // namespace
}  // namespace graphaug
