#!/usr/bin/env bash
# Observability smoke test: trains GraphAug for two epochs on the tiny
# synthetic preset with metrics + trace + run-report + sampling-profiler
# export enabled, then checks that the artifacts exist, lint as JSON /
# JSONL (via the json_check tool, which uses the same obs::JsonLint the
# unit tests exercise), contain the sections the instrumentation layer
# promises, that the run report self-diffs cleanly through
# report_compare, and that the folded profile digests through
# profile_report. Registered as a ctest (run_obs_smoke) from
# tools/CMakeLists.txt.
#
# Usage: run_obs_smoke.sh GRAPHAUG_BIN JSON_CHECK_BIN REPORT_COMPARE_BIN \
#        PROFILE_REPORT_BIN
set -euo pipefail

USAGE="usage: run_obs_smoke.sh GRAPHAUG_BIN JSON_CHECK_BIN REPORT_COMPARE_BIN PROFILE_REPORT_BIN"
CLI=${1:?$USAGE}
CHECK=${2:?$USAGE}
RCOMPARE=${3:?$USAGE}
PREPORT=${4:?$USAGE}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

METRICS="$WORK/metrics.json"
TRACE="$WORK/trace.json"
REPORT="$WORK/report.jsonl"
PROFILE="$WORK/profile"

"$CLI" train --preset=tiny --model=GraphAug --epochs=2 --eval-every=2 \
  --metrics-out="$METRICS" --trace-out="$TRACE" --report-out="$REPORT" \
  --profile-out="$PROFILE" --profile-hz=4000 \
  --obs-report --log-level=warn

[ -s "$METRICS" ] || { echo "FAIL: $METRICS missing or empty" >&2; exit 1; }
[ -s "$TRACE" ]   || { echo "FAIL: $TRACE missing or empty" >&2; exit 1; }
[ -s "$REPORT" ]  || { echo "FAIL: $REPORT missing or empty" >&2; exit 1; }
[ -f "$PROFILE.folded" ] || {
  echo "FAIL: $PROFILE.folded missing" >&2; exit 1; }
[ -s "$PROFILE.json" ] || {
  echo "FAIL: $PROFILE.json missing or empty" >&2; exit 1; }

"$CHECK" "$METRICS" "$TRACE" "$PROFILE.json"
"$CHECK" --jsonl "$REPORT"

# The profile JSON must always be valid and self-describing. Stack checks
# are gated on samples actually landing: a 2-epoch tiny train on a slow /
# heavily ticked kernel can finish with zero SIGPROF deliveries, which is
# a documented property of CPU-time timers, not a failure.
grep -q '"available"' "$PROFILE.json" || {
  echo "FAIL: profile JSON lacks availability marker" >&2; exit 1; }
if [ -s "$PROFILE.folded" ]; then
  grep -q '^span:' "$PROFILE.folded" || {
    echo "FAIL: folded stacks lack span attribution roots" >&2; exit 1; }
  "$PREPORT" "$PROFILE.folded" --top=10 >/dev/null
  "$PREPORT" --baseline="$PROFILE.folded" --current="$PROFILE.folded" \
    --top=5 >/dev/null
fi
"$PREPORT" --selftest >/dev/null

for key in '"metrics"' '"autograd_ops"' '"epochs"' '"parallel"' \
           '"memory"' '"perf"' '"live_bytes"' '"p95"'; do
  grep -q "$key" "$METRICS" || {
    echo "FAIL: $key not found in metrics JSON" >&2; exit 1; }
done
for key in '"traceEvents"' '"spmm"' '"backward"'; do
  grep -q "$key" "$TRACE" || {
    echo "FAIL: $key not found in trace JSON" >&2; exit 1; }
done
grep -q '"type":"epoch"' "$REPORT" || {
  echo "FAIL: no epoch record in run report" >&2; exit 1; }
grep -q '"type":"footer"' "$REPORT" || {
  echo "FAIL: no footer record in run report" >&2; exit 1; }
grep -q '"git_sha"' "$REPORT" || {
  echo "FAIL: footer lacks env provenance" >&2; exit 1; }

# A report must diff cleanly against itself, even with a strict gate.
"$RCOMPARE" --baseline="$REPORT" --current="$REPORT" --max-metric-drop=0.01 \
  >/dev/null

# An unwritable output path must fail fast with a warning, before training.
if "$CLI" train --preset=tiny --model=GraphAug --epochs=1 \
     --report-out="$WORK/no/such/dir/report.jsonl" --log-level=warn \
     2>"$WORK/err.txt"; then
  echo "FAIL: unwritable --report-out must exit non-zero" >&2; exit 1
fi
grep -q "not writable" "$WORK/err.txt" || {
  echo "FAIL: unwritable path must print a warning" >&2; exit 1; }

echo "obs smoke ok: metrics=$(wc -c <"$METRICS")B trace=$(wc -c <"$TRACE")B" \
     "report=$(wc -c <"$REPORT")B"
