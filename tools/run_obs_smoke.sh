#!/usr/bin/env bash
# Observability smoke test: trains GraphAug for two epochs on the tiny
# synthetic preset with metrics + trace export enabled, then checks that
# both artifacts exist, lint as JSON (via the json_check tool, which uses
# the same obs::JsonLint the unit tests exercise), and contain the
# sections the instrumentation layer promises. Registered as a ctest
# (run_obs_smoke) from tools/CMakeLists.txt.
#
# Usage: run_obs_smoke.sh GRAPHAUG_BIN JSON_CHECK_BIN
set -euo pipefail

CLI=${1:?usage: run_obs_smoke.sh GRAPHAUG_BIN JSON_CHECK_BIN}
CHECK=${2:?usage: run_obs_smoke.sh GRAPHAUG_BIN JSON_CHECK_BIN}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

METRICS="$WORK/metrics.json"
TRACE="$WORK/trace.json"

"$CLI" train --preset=tiny --model=GraphAug --epochs=2 --eval-every=2 \
  --metrics-out="$METRICS" --trace-out="$TRACE" --obs-report \
  --log-level=warn

[ -s "$METRICS" ] || { echo "FAIL: $METRICS missing or empty" >&2; exit 1; }
[ -s "$TRACE" ]   || { echo "FAIL: $TRACE missing or empty" >&2; exit 1; }

"$CHECK" "$METRICS" "$TRACE"

for key in '"metrics"' '"autograd_ops"' '"epochs"' '"parallel"'; do
  grep -q "$key" "$METRICS" || {
    echo "FAIL: $key not found in metrics JSON" >&2; exit 1; }
done
for key in '"traceEvents"' '"spmm"' '"backward"'; do
  grep -q "$key" "$TRACE" || {
    echo "FAIL: $key not found in trace JSON" >&2; exit 1; }
done

echo "obs smoke ok: metrics=$(wc -c <"$METRICS")B trace=$(wc -c <"$TRACE")B"
