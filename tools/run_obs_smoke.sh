#!/usr/bin/env bash
# Observability smoke test: trains GraphAug for two epochs on the tiny
# synthetic preset with metrics + trace + run-report export enabled, then
# checks that the artifacts exist, lint as JSON / JSONL (via the
# json_check tool, which uses the same obs::JsonLint the unit tests
# exercise), contain the sections the instrumentation layer promises, and
# that the run report self-diffs cleanly through report_compare.
# Registered as a ctest (run_obs_smoke) from tools/CMakeLists.txt.
#
# Usage: run_obs_smoke.sh GRAPHAUG_BIN JSON_CHECK_BIN REPORT_COMPARE_BIN
set -euo pipefail

USAGE="usage: run_obs_smoke.sh GRAPHAUG_BIN JSON_CHECK_BIN REPORT_COMPARE_BIN"
CLI=${1:?$USAGE}
CHECK=${2:?$USAGE}
RCOMPARE=${3:?$USAGE}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

METRICS="$WORK/metrics.json"
TRACE="$WORK/trace.json"
REPORT="$WORK/report.jsonl"

"$CLI" train --preset=tiny --model=GraphAug --epochs=2 --eval-every=2 \
  --metrics-out="$METRICS" --trace-out="$TRACE" --report-out="$REPORT" \
  --obs-report --log-level=warn

[ -s "$METRICS" ] || { echo "FAIL: $METRICS missing or empty" >&2; exit 1; }
[ -s "$TRACE" ]   || { echo "FAIL: $TRACE missing or empty" >&2; exit 1; }
[ -s "$REPORT" ]  || { echo "FAIL: $REPORT missing or empty" >&2; exit 1; }

"$CHECK" "$METRICS" "$TRACE"
"$CHECK" --jsonl "$REPORT"

for key in '"metrics"' '"autograd_ops"' '"epochs"' '"parallel"' \
           '"memory"' '"perf"' '"live_bytes"' '"p95"'; do
  grep -q "$key" "$METRICS" || {
    echo "FAIL: $key not found in metrics JSON" >&2; exit 1; }
done
for key in '"traceEvents"' '"spmm"' '"backward"'; do
  grep -q "$key" "$TRACE" || {
    echo "FAIL: $key not found in trace JSON" >&2; exit 1; }
done
grep -q '"type":"epoch"' "$REPORT" || {
  echo "FAIL: no epoch record in run report" >&2; exit 1; }
grep -q '"type":"footer"' "$REPORT" || {
  echo "FAIL: no footer record in run report" >&2; exit 1; }
grep -q '"git_sha"' "$REPORT" || {
  echo "FAIL: footer lacks env provenance" >&2; exit 1; }

# A report must diff cleanly against itself, even with a strict gate.
"$RCOMPARE" --baseline="$REPORT" --current="$REPORT" --max-metric-drop=0.01 \
  >/dev/null

# An unwritable output path must fail fast with a warning, before training.
if "$CLI" train --preset=tiny --model=GraphAug --epochs=1 \
     --report-out="$WORK/no/such/dir/report.jsonl" --log-level=warn \
     2>"$WORK/err.txt"; then
  echo "FAIL: unwritable --report-out must exit non-zero" >&2; exit 1
fi
grep -q "not writable" "$WORK/err.txt" || {
  echo "FAIL: unwritable path must print a warning" >&2; exit 1; }

echo "obs smoke ok: metrics=$(wc -c <"$METRICS")B trace=$(wc -c <"$TRACE")B" \
     "report=$(wc -c <"$REPORT")B"
