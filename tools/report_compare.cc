// Diffs two JSONL run reports written via --report-out: prints a
// per-epoch table (loss delta, recall delta, time and peak-memory
// ratios), flags config/env keys that differ, and compares the footers'
// final metrics. With --max-metric-drop=F the tool fails (exit 1) when
// any final metric in the current run is more than F (relative) below
// the baseline — the run-level analogue of the bench_compare gate.
//
// Usage:
//   report_compare --baseline=a.jsonl --current=b.jsonl
//                  [--max-metric-drop=0.05]
//   report_compare --selftest
//
// Exit codes: 0 ok, 1 metric regression, 2 usage / parse error.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"

namespace graphaug {
namespace {

using json::JsonValue;
using json::ParseJson;

/// One parsed run: epoch records keyed by epoch number, plus the footer.
struct Run {
  std::map<int, JsonValue> epochs;
  JsonValue footer;
  bool has_footer = false;
};

bool ParseRun(const std::string& text, Run* out, std::string* error) {
  size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    ++line_no;
    pos = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    JsonValue v;
    if (!ParseJson(line, &v, error)) {
      *error = "line " + std::to_string(line_no) + ": " + *error;
      return false;
    }
    const std::string type = v.StringOr("type", "");
    if (type == "epoch") {
      out->epochs[static_cast<int>(v.NumberOr("epoch", 0))] = std::move(v);
    } else if (type == "footer") {
      out->footer = std::move(v);
      out->has_footer = true;
    } else {
      *error = "line " + std::to_string(line_no) +
               ": record has no \"type\": \"epoch\"|\"footer\"";
      return false;
    }
  }
  if (out->epochs.empty()) {
    *error = "no epoch records";
    return false;
  }
  return true;
}

bool LoadRun(const std::string& path, Run* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "report_compare: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string error;
  if (!ParseRun(ss.str(), out, &error)) {
    std::fprintf(stderr, "report_compare: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

/// Prints differing keys of one string-valued footer section ("config" /
/// "env"); identical sections print nothing.
void DiffStringSection(const Run& base, const Run& cur, const char* section) {
  if (!base.has_footer || !cur.has_footer) return;
  const JsonValue* a = base.footer.Find(section);
  const JsonValue* b = cur.footer.Find(section);
  if (a == nullptr || b == nullptr) return;
  for (const auto& [key, av] : a->fields) {
    const std::string bv = b->StringOr(key, "(absent)");
    if (av.str != bv) {
      std::printf("DIFF  %s.%s: baseline=%s current=%s\n", section,
                  key.c_str(), av.str.c_str(), bv.c_str());
    }
  }
  for (const auto& [key, bv] : b->fields) {
    if (a->Find(key) == nullptr) {
      std::printf("DIFF  %s.%s: baseline=(absent) current=%s\n", section,
                  key.c_str(), bv.str.c_str());
    }
  }
}

double Ratio(double cur, double base) { return base != 0 ? cur / base : 0; }

/// Returns the number of final-metric regressions beyond `max_drop`
/// (0 disables the gate; diffs are still printed).
int Compare(const Run& base, const Run& cur, double max_drop) {
  DiffStringSection(base, cur, "config");
  DiffStringSection(base, cur, "env");

  // Diff only the epochs both runs share, then note the leftover tails in
  // one line each. Runs legitimately differ in length (early stopping,
  // different --epochs) and a per-row "(not in ...)" line per missing
  // epoch drowned the real deltas in noise.
  std::printf("epoch  d_loss     d_recall20  time_ratio  peakmem_ratio\n");
  std::vector<int> base_only, cur_only;
  for (const auto& [epoch, a] : base.epochs) {
    const auto it = cur.epochs.find(epoch);
    if (it == cur.epochs.end()) {
      base_only.push_back(epoch);
      continue;
    }
    const JsonValue& b = it->second;
    const double d_loss = b.NumberOr("loss", 0) - a.NumberOr("loss", 0);
    char recall[32] = "-";
    if (a.Find("recall20") != nullptr && b.Find("recall20") != nullptr) {
      std::snprintf(recall, sizeof(recall), "%+.4f",
                    b.NumberOr("recall20", 0) - a.NumberOr("recall20", 0));
    }
    std::printf("%5d  %+.4g  %10s  %10.2f  %13.2f\n", epoch, d_loss, recall,
                Ratio(b.NumberOr("epoch_seconds", 0),
                      a.NumberOr("epoch_seconds", 0)),
                Ratio(b.NumberOr("peak_bytes", 0),
                      a.NumberOr("peak_bytes", 0)));
  }
  for (const auto& [epoch, b] : cur.epochs) {
    if (base.epochs.find(epoch) == base.epochs.end()) {
      cur_only.push_back(epoch);
    }
  }
  if (!base_only.empty()) {
    std::printf("note: %zu epoch(s) only in baseline run (%d..%d)\n",
                base_only.size(), base_only.front(), base_only.back());
  }
  if (!cur_only.empty()) {
    std::printf("note: %zu epoch(s) only in current run (%d..%d)\n",
                cur_only.size(), cur_only.front(), cur_only.back());
  }

  int failures = 0;
  if (base.has_footer && cur.has_footer) {
    const JsonValue* am = base.footer.Find("metrics");
    const JsonValue* bm = cur.footer.Find("metrics");
    if (am != nullptr && bm != nullptr) {
      for (const auto& [name, av] : am->fields) {
        const JsonValue* bv = bm->Find(name);
        if (bv == nullptr) continue;
        const double drop =
            av.number != 0 ? (av.number - bv->number) / av.number : 0;
        const bool bad = max_drop > 0 && drop > max_drop;
        std::printf("%s  %-12s baseline=%.4f current=%.4f (%+.1f%%)\n",
                    bad ? "FAIL" : "OK  ", name.c_str(), av.number,
                    bv->number, -100.0 * drop);
        if (bad) ++failures;
      }
    }
    std::printf("train_seconds ratio %.2f, peak_bytes ratio %.2f, "
                "rss_peak ratio %.2f\n",
                Ratio(cur.footer.NumberOr("train_seconds", 0),
                      base.footer.NumberOr("train_seconds", 0)),
                Ratio(cur.footer.NumberOr("peak_bytes", 0),
                      base.footer.NumberOr("peak_bytes", 0)),
                Ratio(cur.footer.NumberOr("rss_peak_bytes", 0),
                      base.footer.NumberOr("rss_peak_bytes", 0)));
  } else {
    std::printf("footer missing in %s run — metric gate skipped\n",
                base.has_footer ? "current" : "baseline");
  }
  return failures;
}

// --------------------------------------------------------------- selftest

int SelfTest() {
  const std::string base_text =
      "{\"type\":\"epoch\",\"epoch\":1,\"loss\":0.9,\"epoch_seconds\":1.0,"
      "\"peak_bytes\":1000}\n"
      "{\"type\":\"epoch\",\"epoch\":2,\"loss\":0.5,\"recall20\":0.10,"
      "\"epoch_seconds\":1.0,\"peak_bytes\":1000}\n"
      "{\"type\":\"epoch\",\"epoch\":4,\"loss\":0.45,\"epoch_seconds\":1.0,"
      "\"peak_bytes\":1000}\n"
      "{\"type\":\"footer\",\"config\":{\"model\":\"GraphAug\",\"dim\":\"32\"},"
      "\"env\":{\"git_sha\":\"aaa\"},"
      "\"metrics\":{\"recall@20\":0.10,\"ndcg@20\":0.05},"
      "\"train_seconds\":2.0,\"peak_bytes\":1000,\"rss_peak_bytes\":5000}\n";
  // Same shape, recall@20 drops 0.10 -> 0.08 (-20%): fails a 10% gate,
  // passes a 30% one; config dim differs. Epoch 4 exists only in the
  // baseline and epoch 3 only in the current run, so both tail-note
  // branches of the epoch diff run (the gate ignores them).
  const std::string cur_text =
      "{\"type\":\"epoch\",\"epoch\":1,\"loss\":0.8,\"epoch_seconds\":2.0,"
      "\"peak_bytes\":2000}\n"
      "{\"type\":\"epoch\",\"epoch\":2,\"loss\":0.4,\"recall20\":0.08,"
      "\"epoch_seconds\":2.0,\"peak_bytes\":2000}\n"
      "{\"type\":\"epoch\",\"epoch\":3,\"loss\":0.3,\"epoch_seconds\":2.0,"
      "\"peak_bytes\":2000}\n"
      "{\"type\":\"footer\",\"config\":{\"model\":\"GraphAug\",\"dim\":\"64\"},"
      "\"env\":{\"git_sha\":\"bbb\"},"
      "\"metrics\":{\"recall@20\":0.08,\"ndcg@20\":0.05},"
      "\"train_seconds\":6.0,\"peak_bytes\":2000,\"rss_peak_bytes\":5000}\n";
  Run base, cur;
  std::string error;
  if (!ParseRun(base_text, &base, &error) ||
      !ParseRun(cur_text, &cur, &error)) {
    std::fprintf(stderr, "selftest: parse failed: %s\n", error.c_str());
    return 1;
  }
  if (base.epochs.size() != 3 || cur.epochs.size() != 3 ||
      !base.has_footer || !cur.has_footer) {
    std::fprintf(stderr, "selftest: wrong record counts\n");
    return 1;
  }
  if (Compare(base, cur, 0.10) != 1) {
    std::fprintf(stderr, "selftest: 20%% recall drop must fail a 10%% gate\n");
    return 1;
  }
  if (Compare(base, cur, 0.30) != 0) {
    std::fprintf(stderr, "selftest: 20%% recall drop must pass a 30%% gate\n");
    return 1;
  }
  if (Compare(base, cur, 0) != 0) {
    std::fprintf(stderr, "selftest: gate must be off by default\n");
    return 1;
  }
  // A truncated/invalid line must be a parse error, not a silent skip.
  Run bad;
  if (ParseRun("{\"type\":\"epoch\",\"epoch\":1", &bad, &error)) {
    std::fprintf(stderr, "selftest: truncated record must fail\n");
    return 1;
  }
  std::printf("report_compare selftest: ok\n");
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.GetBool("selftest", false)) return SelfTest();
  const std::string baseline_path = flags.GetString("baseline", "");
  const std::string current_path = flags.GetString("current", "");
  const double max_drop = flags.GetDouble("max-metric-drop", 0.0);
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr,
                 "usage: report_compare --baseline=FILE --current=FILE "
                 "[--max-metric-drop=0.05] | --selftest\n");
    return 2;
  }
  Run baseline, current;
  if (!LoadRun(baseline_path, &baseline) || !LoadRun(current_path, &current)) {
    return 2;
  }
  const int failures = Compare(baseline, current, max_drop);
  if (failures > 0) {
    std::printf("report_compare: %d metric(s) dropped beyond %.0f%%\n",
                failures, 100.0 * max_drop);
    return 1;
  }
  std::printf("report_compare: runs comparable\n");
  return 0;
}

}  // namespace
}  // namespace graphaug

int main(int argc, char** argv) { return graphaug::Main(argc, argv); }
