// Benchmark regression gate: compares a freshly generated
// BENCH_kernels.json against a committed baseline and fails when any
// kernel's multi-thread speedup dropped by more than --max-drop (default
// 10%), when absolute throughput falls below --min-gflops-ratio times
// the baseline GFLOP/s (off by default), or when the fresh run reports a
// determinism violation.
//
// Speedup comparison is by (kernel name, thread count) on the
// speedup_vs_1 ratio — a machine-relative quantity, so a baseline
// generated on one box is a meaningful reference for reruns on the same
// box (CI regenerates both sides in one job). The gflops floor compares
// absolute numbers and therefore needs a tolerant ratio when the
// baseline machine differs from the CI runner. Kernels or thread counts
// present on one side only are reported but never fail the gate, so the
// baseline can grow; points without a gflops column skip the floor.
//
// Usage:
//   bench_compare --baseline=BENCH_kernels.json --current=fresh.json
//                 [--max-drop=0.10] [--min-gflops-ratio=0.5]
//   bench_compare --selftest        # exercises the parser and the gate
//
// Exit codes: 0 ok, 1 regression (or determinism violation), 2 usage /
// parse error.

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"

namespace graphaug {
namespace {

using json::JsonValue;
using json::ParseJson;

// --------------------------------------------------------------- the gate

/// speedup_vs_1, absolute throughput, and determinism per (kernel,
/// threads). gflops < 0 means the run predates the throughput column.
struct RunPoint {
  double speedup = 0;
  double gflops = -1;
  bool bitwise = true;
};
using RunTable = std::map<std::pair<std::string, int>, RunPoint>;

bool ExtractRuns(const JsonValue& root, RunTable* out, std::string* error) {
  const JsonValue* kernels = root.Find("kernels");
  if (kernels == nullptr || kernels->type != JsonValue::Type::kArray) {
    *error = "missing \"kernels\" array";
    return false;
  }
  for (const JsonValue& k : kernels->items) {
    const JsonValue* name = k.Find("name");
    const JsonValue* runs = k.Find("runs");
    if (name == nullptr || name->type != JsonValue::Type::kString ||
        runs == nullptr || runs->type != JsonValue::Type::kArray) {
      *error = "kernel entry missing \"name\" or \"runs\"";
      return false;
    }
    for (const JsonValue& r : runs->items) {
      const JsonValue* threads = r.Find("threads");
      const JsonValue* speedup = r.Find("speedup_vs_1");
      const JsonValue* gflops = r.Find("gflops");
      const JsonValue* bitwise = r.Find("bitwise_equal_to_serial");
      if (threads == nullptr || speedup == nullptr) {
        *error = "run entry missing \"threads\" or \"speedup_vs_1\"";
        return false;
      }
      RunPoint p;
      p.speedup = speedup->number;
      if (gflops != nullptr) p.gflops = gflops->number;
      p.bitwise = bitwise == nullptr || bitwise->boolean;
      (*out)[{name->str, static_cast<int>(threads->number)}] = p;
    }
  }
  return true;
}

/// Returns the number of failures (regressions + determinism violations);
/// prints one line per comparison point. Two independent criteria:
///  * --max-drop on speedup_vs_1 (threads > 1): machine-relative scaling.
///  * --min-gflops-ratio on absolute throughput (all thread counts,
///    including serial): current must reach at least ratio * baseline
///    GFLOP/s. Skipped when either side lacks the gflops column, so old
///    baselines stay comparable. <= 0 disables.
int Compare(const RunTable& baseline, const RunTable& current,
            double max_drop, double min_gflops_ratio = 0) {
  int failures = 0;
  for (const auto& [key, base] : baseline) {
    const auto& [name, threads] = key;
    const auto it = current.find(key);
    if (it == current.end()) {
      std::printf("SKIP  %-28s t=%d  (not in current run)\n", name.c_str(),
                  threads);
      continue;
    }
    const RunPoint& cur = it->second;
    if (!cur.bitwise) {
      std::printf("FAIL  %-28s t=%d  determinism violation\n", name.c_str(),
                  threads);
      ++failures;
      continue;
    }
    if (min_gflops_ratio > 0 && base.gflops > 0 && cur.gflops > 0) {
      const bool bad = cur.gflops < min_gflops_ratio * base.gflops;
      std::printf(
          "%s  %-28s t=%d  baseline=%.3g GF/s current=%.3g GF/s "
          "(floor %.0f%%)\n",
          bad ? "FAIL" : "OK  ", name.c_str(), threads, base.gflops,
          cur.gflops, 100.0 * min_gflops_ratio);
      if (bad) ++failures;
    }
    if (threads <= 1) continue;  // the serial point defines the ratio
    const double drop = (base.speedup - cur.speedup) / base.speedup;
    const bool bad = drop > max_drop;
    std::printf("%s  %-28s t=%d  baseline=%.3fx current=%.3fx drop=%+.1f%%\n",
                bad ? "FAIL" : "OK  ", name.c_str(), threads, base.speedup,
                cur.speedup, 100.0 * drop);
    if (bad) ++failures;
  }
  for (const auto& [key, cur] : current) {
    if (baseline.find(key) == baseline.end()) {
      std::printf("NEW   %-28s t=%d  current=%.3fx (no baseline)\n",
                  key.first.c_str(), key.second, cur.speedup);
    }
  }
  return failures;
}

bool LoadRuns(const std::string& path, RunTable* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  JsonValue root;
  std::string error;
  if (!ParseJson(text, &root, &error)) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  if (!ExtractRuns(root, out, &error)) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

// --------------------------------------------------------------- selftest

int SelfTest() {
  const std::string base_json = R"({
    "generated_by": "bench_micro_kernels", "fast_mode": false,
    "kernels": [
      {"name": "spmm", "shape": "x", "work": 1e6, "runs": [
        {"threads": 1, "seconds": 1.0, "speedup_vs_1": 1.0,
         "bitwise_equal_to_serial": true},
        {"threads": 2, "seconds": 0.5, "speedup_vs_1": 2.0,
         "bitwise_equal_to_serial": true}]},
      {"name": "gone", "shape": "x", "work": 1.0, "runs": [
        {"threads": 2, "seconds": 1.0, "speedup_vs_1": 1.5,
         "bitwise_equal_to_serial": true}]}
    ]})";
  // spmm t=2 drops 2.0 -> 1.75 (-12.5%): must fail at 10%, pass at 20%.
  // "fresh" is new (never fails); "gone" is missing (never fails).
  const std::string cur_json = R"({
    "kernels": [
      {"name": "spmm", "shape": "x", "work": 1e6, "runs": [
        {"threads": 1, "seconds": 1.0, "speedup_vs_1": 1.0,
         "bitwise_equal_to_serial": true},
        {"threads": 2, "seconds": 0.57, "speedup_vs_1": 1.75,
         "bitwise_equal_to_serial": true}]},
      {"name": "fresh", "shape": "x", "work": 1.0, "runs": [
        {"threads": 2, "seconds": 1.0, "speedup_vs_1": 0.4,
         "bitwise_equal_to_serial": true}]}
    ]})";
  const std::string racy_json = R"({
    "kernels": [
      {"name": "spmm", "shape": "x", "work": 1e6, "runs": [
        {"threads": 2, "seconds": 0.5, "speedup_vs_1": 2.0,
         "bitwise_equal_to_serial": false}]}
    ]})";

  auto parse = [](const std::string& text, RunTable* out) {
    JsonValue root;
    std::string error;
    if (!ParseJson(text, &root, &error)) return false;
    return ExtractRuns(root, out, &error);
  };
  RunTable base, cur, racy;
  if (!parse(base_json, &base) || !parse(cur_json, &cur) ||
      !parse(racy_json, &racy)) {
    std::fprintf(stderr, "selftest: parse failed\n");
    return 1;
  }
  if (base.size() != 3 || cur.size() != 3) {
    std::fprintf(stderr, "selftest: wrong table size\n");
    return 1;
  }
  if (Compare(base, cur, 0.10) != 1) {
    std::fprintf(stderr, "selftest: 12.5%% drop must fail a 10%% gate\n");
    return 1;
  }
  if (Compare(base, cur, 0.20) != 0) {
    std::fprintf(stderr, "selftest: 12.5%% drop must pass a 20%% gate\n");
    return 1;
  }
  if (Compare(base, racy, 0.10) != 1) {
    std::fprintf(stderr, "selftest: determinism violation must fail\n");
    return 1;
  }

  // Throughput floor: baseline 10 GF/s serial / 18 GF/s at t=2 against a
  // current run at 6 / 17. At ratio 0.5 the floor is 5 / 9: both pass.
  // At 0.8 the floor is 8 / 14.4: the serial point (6 < 8) fails while
  // t=2 passes — exactly one failure. A kernel without the gflops column
  // ("old") must be skipped by the floor at any ratio.
  const std::string gf_base_json = R"({
    "kernels": [
      {"name": "gemm", "shape": "x", "work": 1e9, "runs": [
        {"threads": 1, "seconds": 0.1, "speedup_vs_1": 1.0, "gflops": 10.0,
         "bitwise_equal_to_serial": true},
        {"threads": 2, "seconds": 0.055, "speedup_vs_1": 1.8, "gflops": 18.0,
         "bitwise_equal_to_serial": true}]},
      {"name": "old", "shape": "x", "work": 1.0, "runs": [
        {"threads": 1, "seconds": 1.0, "speedup_vs_1": 1.0,
         "bitwise_equal_to_serial": true}]}
    ]})";
  const std::string gf_cur_json = R"({
    "kernels": [
      {"name": "gemm", "shape": "x", "work": 1e9, "runs": [
        {"threads": 1, "seconds": 0.167, "speedup_vs_1": 1.0, "gflops": 6.0,
         "bitwise_equal_to_serial": true},
        {"threads": 2, "seconds": 0.059, "speedup_vs_1": 1.7, "gflops": 17.0,
         "bitwise_equal_to_serial": true}]},
      {"name": "old", "shape": "x", "work": 1.0, "runs": [
        {"threads": 1, "seconds": 1.0, "speedup_vs_1": 1.0,
         "bitwise_equal_to_serial": true}]}
    ]})";
  RunTable gf_base, gf_cur;
  if (!parse(gf_base_json, &gf_base) || !parse(gf_cur_json, &gf_cur)) {
    std::fprintf(stderr, "selftest: gflops parse failed\n");
    return 1;
  }
  if (gf_base.at({"gemm", 1}).gflops != 10.0 ||
      gf_base.at({"old", 1}).gflops >= 0) {
    std::fprintf(stderr, "selftest: gflops column misparsed\n");
    return 1;
  }
  if (Compare(gf_base, gf_cur, 0.10, 0.5) != 0) {
    std::fprintf(stderr, "selftest: 60%% of baseline must pass a 0.5 floor\n");
    return 1;
  }
  if (Compare(gf_base, gf_cur, 0.10, 0.8) != 1) {
    std::fprintf(stderr, "selftest: 60%% of baseline must fail a 0.8 floor\n");
    return 1;
  }
  if (Compare(gf_base, gf_cur, 0.10) != 0) {
    std::fprintf(stderr, "selftest: floor must be off by default\n");
    return 1;
  }
  std::printf("bench_compare selftest: ok\n");
  return 0;
}

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.GetBool("selftest", false)) return SelfTest();
  const std::string baseline_path = flags.GetString("baseline", "");
  const std::string current_path = flags.GetString("current", "");
  const double max_drop = flags.GetDouble("max-drop", 0.10);
  const double min_gflops_ratio = flags.GetDouble("min-gflops-ratio", 0.0);
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_compare --baseline=FILE --current=FILE "
                 "[--max-drop=0.10] [--min-gflops-ratio=0.5] | --selftest\n");
    return 2;
  }
  RunTable baseline, current;
  if (!LoadRuns(baseline_path, &baseline) ||
      !LoadRuns(current_path, &current)) {
    return 2;
  }
  const int failures = Compare(baseline, current, max_drop, min_gflops_ratio);
  if (failures > 0) {
    std::printf("bench_compare: %d regression(s) beyond %.0f%%\n", failures,
                100.0 * max_drop);
    return 1;
  }
  std::printf("bench_compare: all kernels within %.0f%% of baseline\n",
              100.0 * max_drop);
  return 0;
}

}  // namespace
}  // namespace graphaug

int main(int argc, char** argv) { return graphaug::Run(argc, argv); }
