// Benchmark regression gate: compares a freshly generated bench JSON
// (BENCH_kernels.json, BENCH_topk.json, ...) against a committed baseline
// and fails when any kernel's multi-thread speedup dropped by more than
// --max-drop (default 10%), when absolute throughput falls below
// --min-gflops-ratio times the baseline GFLOP/s (off by default), when a
// quality floor is violated, or when the fresh run reports a determinism
// violation.
//
// Speedup comparison is by (kernel name, thread count) on the
// speedup_vs_1 ratio — a machine-relative quantity, so a baseline
// generated on one box is a meaningful reference for reruns on the same
// box (CI regenerates both sides in one job). The gflops floor compares
// absolute numbers and therefore needs a tolerant ratio when the
// baseline machine differs from the CI runner. Kernels or thread counts
// present on one side only are reported but never fail the gate, so the
// baseline can grow; points without a gflops column skip the floor.
//
// Quality floors (for retrieval benches, see bench_topk):
//   * --min-recall=R: every current point carrying a "recall" column must
//     reach at least R. Baseline-independent — an absolute floor.
//   * --min-dense-speedup=S [--dense-speedup-name=SUBSTR]: every current
//     point carrying a "speedup_vs_dense" column (name containing SUBSTR
//     when given) must reach at least S. Like speedup_vs_1 this is a
//     ratio of two same-machine timings, so an absolute floor transfers
//     across machines.
//   * exact_match: a point whose baseline says exact_match=true must not
//     report exact_match=false — exactness never regresses silently.
//
// Usage:
//   bench_compare --baseline=BENCH_kernels.json --current=fresh.json
//                 [--max-drop=0.10] [--min-gflops-ratio=0.5]
//                 [--min-recall=0.99] [--min-dense-speedup=10]
//                 [--dense-speedup-name=topk_pruned]
//   bench_compare --selftest        # exercises the parser and the gate
//
// Exit codes: 0 ok, 1 regression (or determinism violation), 2 usage /
// parse error.

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"

namespace graphaug {
namespace {

using json::JsonValue;
using json::ParseJson;

// --------------------------------------------------------------- the gate

/// One (kernel, threads) measurement. gflops < 0, recall < 0,
/// dense_speedup < 0, exact_match < 0 all mean "column absent".
struct RunPoint {
  double speedup = 0;
  double gflops = -1;
  double recall = -1;
  double dense_speedup = -1;
  int exact_match = -1;
  bool bitwise = true;
};
using RunTable = std::map<std::pair<std::string, int>, RunPoint>;

/// Floors applied to the current run (absolute, baseline-independent
/// except the exact_match regression check). <= 0 disables a floor.
struct GateConfig {
  double max_drop = 0.10;
  double min_gflops_ratio = 0;
  double min_recall = 0;
  double min_dense_speedup = 0;
  std::string dense_speedup_name;  ///< substring filter; empty = all
};

bool ExtractRuns(const JsonValue& root, RunTable* out, std::string* error) {
  const JsonValue* kernels = root.Find("kernels");
  if (kernels == nullptr || kernels->type != JsonValue::Type::kArray) {
    *error = "missing \"kernels\" array";
    return false;
  }
  for (const JsonValue& k : kernels->items) {
    const JsonValue* name = k.Find("name");
    const JsonValue* runs = k.Find("runs");
    if (name == nullptr || name->type != JsonValue::Type::kString ||
        runs == nullptr || runs->type != JsonValue::Type::kArray) {
      *error = "kernel entry missing \"name\" or \"runs\"";
      return false;
    }
    for (const JsonValue& r : runs->items) {
      const JsonValue* threads = r.Find("threads");
      const JsonValue* speedup = r.Find("speedup_vs_1");
      const JsonValue* gflops = r.Find("gflops");
      const JsonValue* recall = r.Find("recall");
      const JsonValue* dense = r.Find("speedup_vs_dense");
      const JsonValue* exact = r.Find("exact_match");
      const JsonValue* bitwise = r.Find("bitwise_equal_to_serial");
      if (threads == nullptr || speedup == nullptr) {
        *error = "run entry missing \"threads\" or \"speedup_vs_1\"";
        return false;
      }
      RunPoint p;
      p.speedup = speedup->number;
      if (gflops != nullptr) p.gflops = gflops->number;
      if (recall != nullptr) p.recall = recall->number;
      if (dense != nullptr) p.dense_speedup = dense->number;
      if (exact != nullptr) p.exact_match = exact->boolean ? 1 : 0;
      p.bitwise = bitwise == nullptr || bitwise->boolean;
      (*out)[{name->str, static_cast<int>(threads->number)}] = p;
    }
  }
  return true;
}

/// Returns the number of failures (regressions + determinism violations +
/// floor violations); prints one line per comparison point.
int Compare(const RunTable& baseline, const RunTable& current,
            const GateConfig& gate) {
  int failures = 0;
  for (const auto& [key, base] : baseline) {
    const auto& [name, threads] = key;
    const auto it = current.find(key);
    if (it == current.end()) {
      std::printf("SKIP  %-28s t=%d  (not in current run)\n", name.c_str(),
                  threads);
      continue;
    }
    const RunPoint& cur = it->second;
    if (!cur.bitwise) {
      std::printf("FAIL  %-28s t=%d  determinism violation\n", name.c_str(),
                  threads);
      ++failures;
      continue;
    }
    if (base.exact_match == 1 && cur.exact_match == 0) {
      std::printf("FAIL  %-28s t=%d  exact_match regressed to false\n",
                  name.c_str(), threads);
      ++failures;
    }
    if (gate.min_gflops_ratio > 0 && base.gflops > 0 && cur.gflops > 0) {
      const bool bad = cur.gflops < gate.min_gflops_ratio * base.gflops;
      std::printf(
          "%s  %-28s t=%d  baseline=%.3g GF/s current=%.3g GF/s "
          "(floor %.0f%%)\n",
          bad ? "FAIL" : "OK  ", name.c_str(), threads, base.gflops,
          cur.gflops, 100.0 * gate.min_gflops_ratio);
      if (bad) ++failures;
    }
    if (threads <= 1) continue;  // the serial point defines the ratio
    const double drop = (base.speedup - cur.speedup) / base.speedup;
    const bool bad = drop > gate.max_drop;
    std::printf("%s  %-28s t=%d  baseline=%.3fx current=%.3fx drop=%+.1f%%\n",
                bad ? "FAIL" : "OK  ", name.c_str(), threads, base.speedup,
                cur.speedup, 100.0 * drop);
    if (bad) ++failures;
  }
  // Absolute floors apply to every current point — including points with
  // no baseline counterpart, so a freshly added kernel can't dodge them.
  for (const auto& [key, cur] : current) {
    const auto& [name, threads] = key;
    if (baseline.find(key) == baseline.end()) {
      std::printf("NEW   %-28s t=%d  current=%.3fx (no baseline)\n",
                  name.c_str(), threads, cur.speedup);
    }
    if (gate.min_recall > 0 && cur.recall >= 0) {
      const bool bad = cur.recall < gate.min_recall;
      std::printf("%s  %-28s t=%d  recall=%.4f (floor %.4f)\n",
                  bad ? "FAIL" : "OK  ", name.c_str(), threads, cur.recall,
                  gate.min_recall);
      if (bad) ++failures;
    }
    if (gate.min_dense_speedup > 0 && cur.dense_speedup >= 0 &&
        (gate.dense_speedup_name.empty() ||
         name.find(gate.dense_speedup_name) != std::string::npos)) {
      const bool bad = cur.dense_speedup < gate.min_dense_speedup;
      std::printf("%s  %-28s t=%d  vs_dense=%.2fx (floor %.2fx)\n",
                  bad ? "FAIL" : "OK  ", name.c_str(), threads,
                  cur.dense_speedup, gate.min_dense_speedup);
      if (bad) ++failures;
    }
  }
  return failures;
}

bool LoadRuns(const std::string& path, RunTable* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  JsonValue root;
  std::string error;
  if (!ParseJson(text, &root, &error)) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  if (!ExtractRuns(root, out, &error)) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

// --------------------------------------------------------------- selftest

int SelfTest() {
  const std::string base_json = R"({
    "generated_by": "bench_micro_kernels", "fast_mode": false,
    "kernels": [
      {"name": "spmm", "shape": "x", "work": 1e6, "runs": [
        {"threads": 1, "seconds": 1.0, "speedup_vs_1": 1.0,
         "bitwise_equal_to_serial": true},
        {"threads": 2, "seconds": 0.5, "speedup_vs_1": 2.0,
         "bitwise_equal_to_serial": true}]},
      {"name": "gone", "shape": "x", "work": 1.0, "runs": [
        {"threads": 2, "seconds": 1.0, "speedup_vs_1": 1.5,
         "bitwise_equal_to_serial": true}]}
    ]})";
  // spmm t=2 drops 2.0 -> 1.75 (-12.5%): must fail at 10%, pass at 20%.
  // "fresh" is new (never fails); "gone" is missing (never fails).
  const std::string cur_json = R"({
    "kernels": [
      {"name": "spmm", "shape": "x", "work": 1e6, "runs": [
        {"threads": 1, "seconds": 1.0, "speedup_vs_1": 1.0,
         "bitwise_equal_to_serial": true},
        {"threads": 2, "seconds": 0.57, "speedup_vs_1": 1.75,
         "bitwise_equal_to_serial": true}]},
      {"name": "fresh", "shape": "x", "work": 1.0, "runs": [
        {"threads": 2, "seconds": 1.0, "speedup_vs_1": 0.4,
         "bitwise_equal_to_serial": true}]}
    ]})";
  const std::string racy_json = R"({
    "kernels": [
      {"name": "spmm", "shape": "x", "work": 1e6, "runs": [
        {"threads": 2, "seconds": 0.5, "speedup_vs_1": 2.0,
         "bitwise_equal_to_serial": false}]}
    ]})";

  auto parse = [](const std::string& text, RunTable* out) {
    JsonValue root;
    std::string error;
    if (!ParseJson(text, &root, &error)) return false;
    return ExtractRuns(root, out, &error);
  };
  RunTable base, cur, racy;
  if (!parse(base_json, &base) || !parse(cur_json, &cur) ||
      !parse(racy_json, &racy)) {
    std::fprintf(stderr, "selftest: parse failed\n");
    return 1;
  }
  if (base.size() != 3 || cur.size() != 3) {
    std::fprintf(stderr, "selftest: wrong table size\n");
    return 1;
  }
  GateConfig g;
  g.max_drop = 0.10;
  if (Compare(base, cur, g) != 1) {
    std::fprintf(stderr, "selftest: 12.5%% drop must fail a 10%% gate\n");
    return 1;
  }
  g.max_drop = 0.20;
  if (Compare(base, cur, g) != 0) {
    std::fprintf(stderr, "selftest: 12.5%% drop must pass a 20%% gate\n");
    return 1;
  }
  g.max_drop = 0.10;
  if (Compare(base, racy, g) != 1) {
    std::fprintf(stderr, "selftest: determinism violation must fail\n");
    return 1;
  }

  // Throughput floor: baseline 10 GF/s serial / 18 GF/s at t=2 against a
  // current run at 6 / 17. At ratio 0.5 the floor is 5 / 9: both pass.
  // At 0.8 the floor is 8 / 14.4: the serial point (6 < 8) fails while
  // t=2 passes — exactly one failure. A kernel without the gflops column
  // ("old") must be skipped by the floor at any ratio.
  const std::string gf_base_json = R"({
    "kernels": [
      {"name": "gemm", "shape": "x", "work": 1e9, "runs": [
        {"threads": 1, "seconds": 0.1, "speedup_vs_1": 1.0, "gflops": 10.0,
         "bitwise_equal_to_serial": true},
        {"threads": 2, "seconds": 0.055, "speedup_vs_1": 1.8, "gflops": 18.0,
         "bitwise_equal_to_serial": true}]},
      {"name": "old", "shape": "x", "work": 1.0, "runs": [
        {"threads": 1, "seconds": 1.0, "speedup_vs_1": 1.0,
         "bitwise_equal_to_serial": true}]}
    ]})";
  const std::string gf_cur_json = R"({
    "kernels": [
      {"name": "gemm", "shape": "x", "work": 1e9, "runs": [
        {"threads": 1, "seconds": 0.167, "speedup_vs_1": 1.0, "gflops": 6.0,
         "bitwise_equal_to_serial": true},
        {"threads": 2, "seconds": 0.059, "speedup_vs_1": 1.7, "gflops": 17.0,
         "bitwise_equal_to_serial": true}]},
      {"name": "old", "shape": "x", "work": 1.0, "runs": [
        {"threads": 1, "seconds": 1.0, "speedup_vs_1": 1.0,
         "bitwise_equal_to_serial": true}]}
    ]})";
  RunTable gf_base, gf_cur;
  if (!parse(gf_base_json, &gf_base) || !parse(gf_cur_json, &gf_cur)) {
    std::fprintf(stderr, "selftest: gflops parse failed\n");
    return 1;
  }
  if (gf_base.at({"gemm", 1}).gflops != 10.0 ||
      gf_base.at({"old", 1}).gflops >= 0) {
    std::fprintf(stderr, "selftest: gflops column misparsed\n");
    return 1;
  }
  GateConfig gf;
  gf.max_drop = 0.10;
  gf.min_gflops_ratio = 0.5;
  if (Compare(gf_base, gf_cur, gf) != 0) {
    std::fprintf(stderr, "selftest: 60%% of baseline must pass a 0.5 floor\n");
    return 1;
  }
  gf.min_gflops_ratio = 0.8;
  if (Compare(gf_base, gf_cur, gf) != 1) {
    std::fprintf(stderr, "selftest: 60%% of baseline must fail a 0.8 floor\n");
    return 1;
  }
  gf.min_gflops_ratio = 0;
  if (Compare(gf_base, gf_cur, gf) != 0) {
    std::fprintf(stderr, "selftest: floor must be off by default\n");
    return 1;
  }

  // Retrieval columns: a topk baseline (exact pruned engine, 12x vs
  // dense) against a current run whose pruned recall slipped to 0.985,
  // exactness flipped to false, and dense speedup fell to 8x. The heap
  // row stays exact with recall 1. Expected failures:
  //   * --min-recall=0.99: pruned recall 0.985 fails (heap passes).
  //   * exact_match true -> false: pruned fails regardless of floors.
  //   * --min-dense-speedup=10 scoped to "pruned": 8x fails; unscoped it
  //     also catches the heap row (1.2x), adding one more failure.
  const std::string tk_base_json = R"({
    "kernels": [
      {"name": "topk_heap/3000x1500", "shape": "x", "runs": [
        {"threads": 1, "seconds": 0.03, "speedup_vs_1": 1.0,
         "speedup_vs_dense": 1.1, "recall": 1.0, "exact_match": true,
         "bitwise_equal_to_serial": true}]},
      {"name": "topk_pruned/3000x1500", "shape": "x", "runs": [
        {"threads": 1, "seconds": 0.003, "speedup_vs_1": 1.0,
         "speedup_vs_dense": 12.0, "recall": 1.0, "exact_match": true,
         "bitwise_equal_to_serial": true}]}
    ]})";
  const std::string tk_cur_json = R"({
    "kernels": [
      {"name": "topk_heap/3000x1500", "shape": "x", "runs": [
        {"threads": 1, "seconds": 0.03, "speedup_vs_1": 1.0,
         "speedup_vs_dense": 1.2, "recall": 1.0, "exact_match": true,
         "bitwise_equal_to_serial": true}]},
      {"name": "topk_pruned/3000x1500", "shape": "x", "runs": [
        {"threads": 1, "seconds": 0.004, "speedup_vs_1": 1.0,
         "speedup_vs_dense": 8.0, "recall": 0.985, "exact_match": false,
         "bitwise_equal_to_serial": true}]}
    ]})";
  RunTable tk_base, tk_cur;
  if (!parse(tk_base_json, &tk_base) || !parse(tk_cur_json, &tk_cur)) {
    std::fprintf(stderr, "selftest: topk parse failed\n");
    return 1;
  }
  if (tk_base.at({"topk_pruned/3000x1500", 1}).recall != 1.0 ||
      tk_base.at({"topk_pruned/3000x1500", 1}).dense_speedup != 12.0 ||
      tk_base.at({"topk_pruned/3000x1500", 1}).exact_match != 1 ||
      tk_cur.at({"topk_pruned/3000x1500", 1}).exact_match != 0) {
    std::fprintf(stderr, "selftest: retrieval columns misparsed\n");
    return 1;
  }
  GateConfig tk;
  tk.max_drop = 0.10;
  if (Compare(tk_base, tk_cur, tk) != 1) {
    std::fprintf(stderr, "selftest: exact_match regression must fail\n");
    return 1;
  }
  tk.min_recall = 0.99;
  if (Compare(tk_base, tk_cur, tk) != 2) {
    std::fprintf(stderr, "selftest: recall 0.985 must fail a 0.99 floor\n");
    return 1;
  }
  tk.min_recall = 0.98;
  if (Compare(tk_base, tk_cur, tk) != 1) {
    std::fprintf(stderr, "selftest: recall 0.985 must pass a 0.98 floor\n");
    return 1;
  }
  tk.min_recall = 0;
  tk.min_dense_speedup = 10.0;
  tk.dense_speedup_name = "topk_pruned";
  if (Compare(tk_base, tk_cur, tk) != 2) {
    std::fprintf(stderr, "selftest: 8x must fail a scoped 10x floor\n");
    return 1;
  }
  tk.dense_speedup_name.clear();
  if (Compare(tk_base, tk_cur, tk) != 3) {
    std::fprintf(stderr, "selftest: unscoped floor must catch the heap row\n");
    return 1;
  }
  // The baseline itself must clear its own gate.
  GateConfig clean;
  clean.min_recall = 0.99;
  clean.min_dense_speedup = 10.0;
  clean.dense_speedup_name = "topk_pruned";
  if (Compare(tk_base, tk_base, clean) != 0) {
    std::fprintf(stderr, "selftest: baseline must pass its own floors\n");
    return 1;
  }
  std::printf("bench_compare selftest: ok\n");
  return 0;
}

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.GetBool("selftest", false)) return SelfTest();
  const std::string baseline_path = flags.GetString("baseline", "");
  const std::string current_path = flags.GetString("current", "");
  GateConfig gate;
  gate.max_drop = flags.GetDouble("max-drop", 0.10);
  gate.min_gflops_ratio = flags.GetDouble("min-gflops-ratio", 0.0);
  gate.min_recall = flags.GetDouble("min-recall", 0.0);
  gate.min_dense_speedup = flags.GetDouble("min-dense-speedup", 0.0);
  gate.dense_speedup_name = flags.GetString("dense-speedup-name", "");
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(
        stderr,
        "usage: bench_compare --baseline=FILE --current=FILE "
        "[--max-drop=0.10] [--min-gflops-ratio=0.5] [--min-recall=0.99] "
        "[--min-dense-speedup=10] [--dense-speedup-name=SUBSTR] | "
        "--selftest\n");
    return 2;
  }
  RunTable baseline, current;
  if (!LoadRuns(baseline_path, &baseline) ||
      !LoadRuns(current_path, &current)) {
    return 2;
  }
  const int failures = Compare(baseline, current, gate);
  if (failures > 0) {
    std::printf("bench_compare: %d gate failure(s)\n", failures);
    return 1;
  }
  std::printf("bench_compare: all kernels within gate limits\n");
  return 0;
}

}  // namespace
}  // namespace graphaug

int main(int argc, char** argv) { return graphaug::Run(argc, argv); }
