// Validates that each argument file parses as one JSON value, using the
// same minimal linter the obs layer tests itself with (obs::JsonLint).
// With --jsonl, each non-empty line of the file must instead be one valid
// JSON value (the run-report format). Exit 0 when every file is valid; 1
// on the first syntax error or unreadable file. Used by
// tools/run_obs_smoke.sh to check the --metrics-out / --trace-out /
// --report-out artifacts without any external parser.

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/metrics.h"

namespace {

bool ReadFile(const char* path, std::string* out) {
  FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return true;
}

bool CheckJsonl(const char* path, const std::string& text) {
  size_t pos = 0;
  int line_no = 0;
  int records = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    ++line_no;
    pos = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string error;
    if (!graphaug::obs::JsonLint(line, &error)) {
      std::fprintf(stderr, "%s:%d: %s\n", path, line_no, error.c_str());
      return false;
    }
    ++records;
  }
  if (records == 0) {
    std::fprintf(stderr, "%s: no JSONL records\n", path);
    return false;
  }
  std::fprintf(stderr, "%s: ok (%d records)\n", path, records);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool jsonl = false;
  int first_file = 1;
  if (argc > 1 && std::strcmp(argv[1], "--jsonl") == 0) {
    jsonl = true;
    first_file = 2;
  }
  if (first_file >= argc) {
    std::fprintf(stderr, "usage: json_check [--jsonl] FILE...\n");
    return 2;
  }
  for (int i = first_file; i < argc; ++i) {
    std::string text;
    if (!ReadFile(argv[i], &text)) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      return 1;
    }
    if (jsonl) {
      if (!CheckJsonl(argv[i], text)) return 1;
      continue;
    }
    std::string error;
    if (!graphaug::obs::JsonLint(text, &error)) {
      std::fprintf(stderr, "%s: %s\n", argv[i], error.c_str());
      return 1;
    }
    std::fprintf(stderr, "%s: ok (%zu bytes)\n", argv[i], text.size());
  }
  return 0;
}
