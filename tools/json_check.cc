// Validates that each argument file parses as one JSON value, using the
// same minimal linter the obs layer tests itself with (obs::JsonLint).
// Exit 0 when every file is valid; 1 on the first syntax error or
// unreadable file. Used by tools/run_obs_smoke.sh to check the
// --metrics-out / --trace-out artifacts without any external parser.

#include <cstdio>
#include <string>

#include "obs/metrics.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: json_check FILE...\n");
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    FILE* f = std::fopen(argv[i], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      return 1;
    }
    std::string text;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, n);
    }
    std::fclose(f);
    std::string error;
    if (!graphaug::obs::JsonLint(text, &error)) {
      std::fprintf(stderr, "%s: %s\n", argv[i], error.c_str());
      return 1;
    }
    std::fprintf(stderr, "%s: ok (%zu bytes)\n", argv[i], text.size());
  }
  return 0;
}
