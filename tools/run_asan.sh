#!/usr/bin/env bash
# Builds the Address+UBSanitizer preset and runs the memory-sensitive
# tests (the parallel runtime, the CSR mirror / tiled-cursor indexing
# tests, and the retrieval engines — the panel scan walks zero-padded
# packed buffers whose indexing must never stray) under ASan+UBSan.
# Any error aborts the run.
#
# Usage: tools/run_asan.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan \
  --target parallel_test graph_test retrieval_test -j "$(nproc)"

ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=0}" \
  ctest --test-dir build-asan --output-on-failure \
        -R '^(parallel_test|graph_test|retrieval_test)$' "$@"

echo "asan: parallel_test + graph_test + retrieval_test clean"
