// graphaug — command-line interface to the library.
//
// Subcommands:
//   generate   create a synthetic dataset TSV from a preset
//   stats      summarize a dataset
//   train      train any model, optionally saving a checkpoint
//   recommend  top-K recommendations from a trained checkpoint
//   denoise    rank training interactions by learned retention probability
//
// Examples:
//   graphaug generate --preset=gowalla-sim --out=/tmp/gowalla.tsv
//   graphaug train --dataset=/tmp/gowalla.tsv --model=GraphAug \
//       --epochs=24 --checkpoint=/tmp/model.bin
//   graphaug recommend --dataset=/tmp/gowalla.tsv --checkpoint=/tmp/model.bin \
//       --user=42 --topk=10
//   graphaug denoise --preset=amazon-sim --epochs=24 --budget=0.1

#include <algorithm>
#include <cstdio>
#include <limits>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "autograd/serialize.h"
#include "common/env.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/table.h"
#include "core/graphaug.h"
#include "data/io.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/registry.h"
#include "models/trainer.h"
#include "obs/obs.h"
#include "retrieval/mips_index.h"
#include "retrieval/topk.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: graphaug <generate|stats|train|recommend|denoise> [flags]\n"
      "  generate  --preset=NAME --out=FILE [--seed=N]\n"
      "  stats     --dataset=FILE | --preset=NAME\n"
      "  train     --dataset=FILE|--preset=NAME --model=NAME [--epochs=N]\n"
      "            [--dim=N] [--layers=N] [--lr=F] [--checkpoint=FILE]\n"
      "            [--augmentor=NAME]  (GraphAug only)\n"
      "  recommend --dataset=FILE|--preset=NAME --checkpoint=FILE\n"
      "            [--model=NAME] [--user=N] [--topk=N] [--out=FILE]\n"
      "            [--index=exact|heap|pruned]  (default heap)\n"
      "              exact  dense oracle: score every item, rank the row\n"
      "              heap   partial-heap top-K over GEMM tiles (identical\n"
      "                     results, no full score row)\n"
      "              pruned k-means + norm-bound pruned MIPS index\n"
      "            [--index-in=FILE] [--index-out=FILE]  load / save the\n"
      "              pruned index instead of / after building it\n"
      "  denoise   --dataset=FILE|--preset=NAME [--epochs=N] [--budget=F]\n"
      "            [--augmentor=NAME]\n"
      "  --augmentor=NAME selects the GraphAug view-generation strategy:\n"
      "            gib|edgedrop|advcl|autocf|lightgcl (default gib)\n"
      "common flags:\n"
      "  --threads=N      worker threads for the parallel runtime (0 = auto;\n"
      "                   overrides GRAPHAUG_NUM_THREADS). Output is\n"
      "                   identical at any thread count.\n"
      "  --log-level=L    minimum log severity: debug|info|warn|error\n"
      "                   (default info; overrides GRAPHAUG_LOG_LEVEL)\n"
      "  --metrics-out=F  write combined metrics JSON (per-op autograd\n"
      "                   profile, per-epoch training health, parallel\n"
      "                   runtime stats) on exit\n"
      "  --trace-out=F    record scoped trace spans and write Chrome\n"
      "                   trace-event JSON (chrome://tracing / Perfetto)\n"
      "  --obs-report     print the instrumentation report to stdout\n"
      "                   (enables profiling like --metrics-out)\n"
      "  --report-out=F   (train) append one JSONL record per epoch (loss\n"
      "                   breakdown, grad/param norms, timing, memory) plus\n"
      "                   a footer (env, config, final metrics); diff two\n"
      "                   runs with tools/report_compare\n"
      "  --profile-out=B  run the sampling CPU profiler and write B.folded\n"
      "                   (collapsed stacks, flamegraph.pl-ready) and\n"
      "                   B.json (top-N self/total table, span shares) on\n"
      "                   exit; inspect with tools/profile_report. For\n"
      "                   train the profiled scope is the training loop,\n"
      "                   otherwise the whole subcommand\n"
      "  --profile-hz=N   sampling rate per thread in Hz of CPU time\n"
      "                   (default 997; kernel tick caps the effective\n"
      "                   rate). Only meaningful with --profile-out\n");
  return 2;
}

/// Resolves --dataset (TSV path) or --preset into a Dataset.
bool ResolveDataset(const FlagParser& flags, Dataset* out) {
  if (flags.Has("dataset")) {
    return LoadDatasetTsv(flags.GetString("dataset", ""), out);
  }
  const std::string preset = flags.GetString("preset", "gowalla-sim");
  *out = GeneratePreset(preset,
                        static_cast<uint64_t>(flags.GetInt("seed", 0)))
             .dataset;
  return true;
}

/// Reads --augmentor and validates it against the augmentor registry.
/// Returns false (after printing the valid names) on an unknown name.
bool ResolveAugmentor(const FlagParser& flags, std::string* name) {
  *name = flags.GetString("augmentor", "gib");
  const std::vector<std::string> known = AllAugmenterNames();
  if (std::find(known.begin(), known.end(), *name) != known.end()) {
    return true;
  }
  std::string valid;
  for (const std::string& n : known) {
    if (!valid.empty()) valid += "|";
    valid += n;
  }
  std::fprintf(stderr, "unknown --augmentor '%s' (expected %s)\n",
               name->c_str(), valid.c_str());
  return false;
}

ModelConfig ConfigFromFlags(const FlagParser& flags) {
  ModelConfig cfg;
  cfg.dim = static_cast<int>(flags.GetInt("dim", 32));
  cfg.num_layers = static_cast<int>(flags.GetInt("layers", 2));
  cfg.learning_rate = static_cast<float>(flags.GetDouble("lr", 5e-3));
  cfg.batch_size = static_cast<int>(flags.GetInt("batch", 2048));
  cfg.batches_per_epoch =
      static_cast<int>(flags.GetInt("batches-per-epoch", 6));
  cfg.temperature =
      static_cast<float>(flags.GetDouble("temperature", 0.9));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("model-seed", 123));
  return cfg;
}

int CmdGenerate(const FlagParser& flags) {
  const std::string preset = flags.GetString("preset", "gowalla-sim");
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  SyntheticData data = GeneratePreset(
      preset, static_cast<uint64_t>(flags.GetInt("seed", 0)));
  if (!SaveDatasetTsv(data.dataset, out)) {
    std::fprintf(stderr, "generate: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu train, %zu test interactions)\n", out.c_str(),
              data.dataset.train_edges.size(),
              data.dataset.test_edges.size());
  return 0;
}

int CmdStats(const FlagParser& flags) {
  Dataset dataset;
  if (!ResolveDataset(flags, &dataset)) {
    std::fprintf(stderr, "stats: cannot load dataset\n");
    return 1;
  }
  DatasetStats s = ComputeStats(dataset);
  Table t({"Field", "Value"});
  t.AddRow({"name", dataset.name});
  t.AddRow({"users", std::to_string(s.num_users)});
  t.AddRow({"items", std::to_string(s.num_items)});
  t.AddRow({"train interactions", std::to_string(s.num_train)});
  t.AddRow({"test interactions", std::to_string(s.num_test)});
  char density[32];
  std::snprintf(density, sizeof(density), "%.3e", s.density);
  t.AddRow({"density", density});
  t.AddRow({"mean user degree", FormatDouble(s.mean_user_degree, 2)});
  t.AddRow({"max user degree", FormatDouble(s.max_user_degree, 0)});
  t.AddRow({"item-popularity Gini", FormatDouble(s.gini_item_popularity, 3)});
  std::printf("%s", t.ToString().c_str());
  return 0;
}

int CmdTrain(const FlagParser& flags) {
  Dataset dataset;
  if (!ResolveDataset(flags, &dataset)) {
    std::fprintf(stderr, "train: cannot load dataset\n");
    return 1;
  }
  const std::string model_name = flags.GetString("model", "GraphAug");
  std::string augmentor;
  if (!ResolveAugmentor(flags, &augmentor)) return 2;
  std::unique_ptr<Recommender> model;
  if (model_name == "GraphAug") {
    // Constructed directly (not via CreateModel) so the augmentor choice
    // survives: ModelConfig has no augmentor field to carry it through.
    GraphAugConfig gcfg;
    static_cast<ModelConfig&>(gcfg) = ConfigFromFlags(flags);
    gcfg.augmentor.name = augmentor;
    model = std::make_unique<GraphAug>(&dataset, gcfg);
  } else {
    if (flags.Has("augmentor")) {
      std::fprintf(stderr,
                   "train: --augmentor applies only to --model=GraphAug\n");
      return 2;
    }
    model = CreateModel(model_name, &dataset, ConfigFromFlags(flags));
  }
  Evaluator evaluator(&dataset, {20, 40});
  TrainOptions options;
  options.epochs = static_cast<int>(flags.GetInt("epochs", 24));
  options.eval_every = static_cast<int>(
      flags.GetInt("eval-every", std::max(1, options.epochs / 4)));
  options.patience = static_cast<int>(flags.GetInt("patience", 0));
  options.verbose = flags.GetBool("verbose", true);
  // The trainer scopes the profiling session to the training loop, so
  // dataset generation and model setup do not dilute the span shares.
  if (!flags.GetString("profile-out", "").empty()) {
    options.profile_hz = static_cast<int>(
        flags.GetInt("profile-hz", obs::kDefaultProfileHz));
  }
  obs::RunReportWriter report;
  const std::string report_out = flags.GetString("report-out", "");
  if (!report_out.empty()) {
    if (!report.Open(report_out)) {
      std::fprintf(stderr, "train: cannot write report %s\n",
                   report_out.c_str());
      return 1;
    }
    options.report = &report;
  }
  TrainResult result = TrainAndEvaluate(model.get(), evaluator, options);
  if (report.is_open()) {
    obs::ReportFooter footer;
    const RuntimeEnv env = ProbeRuntimeEnv();
    footer.env["git_sha"] = env.git_sha;
    footer.env["timestamp_utc"] = env.timestamp_utc;
    footer.env["hardware_concurrency"] =
        std::to_string(env.hardware_concurrency);
    footer.env["threads"] = std::to_string(NumThreads());
    footer.config["model"] = model_name;
    footer.config["dataset"] = dataset.name;
    footer.config["epochs"] = std::to_string(options.epochs);
    footer.config["dim"] = std::to_string(flags.GetInt("dim", 32));
    footer.config["layers"] = std::to_string(flags.GetInt("layers", 2));
    footer.config["lr"] = FormatDouble(flags.GetDouble("lr", 5e-3), 6);
    if (model_name == "GraphAug") footer.config["augmentor"] = augmentor;
    footer.metrics["recall@20"] = result.final_metrics.RecallAt(20);
    footer.metrics["recall@40"] = result.final_metrics.RecallAt(40);
    footer.metrics["ndcg@20"] = result.final_metrics.NdcgAt(20);
    footer.metrics["ndcg@40"] = result.final_metrics.NdcgAt(40);
    footer.best_epoch = result.best_epoch;
    footer.train_seconds = result.train_seconds;
    footer.peak_bytes = obs::PeakBytes();
    footer.rss_peak_bytes = std::max(
        obs::PeakRssBytes(), obs::RssSampler::Get().SampledPeakBytes());
    footer.counters = obs::MetricsRegistry::Get().CounterSnapshot();
    report.WriteFooter(footer);
    if (!report.Close()) {
      std::fprintf(stderr, "train: cannot write report %s\n",
                   report_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "report written to %s\n", report_out.c_str());
  }
  std::printf("%s on %s: Recall@20=%.4f Recall@40=%.4f NDCG@20=%.4f "
              "NDCG@40=%.4f (best epoch %d, %.1fs)\n",
              model_name.c_str(), dataset.name.c_str(),
              result.final_metrics.RecallAt(20),
              result.final_metrics.RecallAt(40),
              result.final_metrics.NdcgAt(20),
              result.final_metrics.NdcgAt(40), result.best_epoch,
              result.train_seconds);
  const std::string ckpt = flags.GetString("checkpoint", "");
  if (!ckpt.empty()) {
    if (!SaveCheckpoint(*model->params(), ckpt)) {
      std::fprintf(stderr, "train: cannot write checkpoint %s\n",
                   ckpt.c_str());
      return 1;
    }
    std::printf("checkpoint saved to %s\n", ckpt.c_str());
  }
  return 0;
}

int CmdRecommend(const FlagParser& flags) {
  const std::string index_mode = flags.GetString("index", "heap");
  if (index_mode != "exact" && index_mode != "heap" &&
      index_mode != "pruned") {
    std::fprintf(stderr,
                 "recommend: unknown --index '%s' (expected "
                 "exact|heap|pruned)\n",
                 index_mode.c_str());
    return 2;
  }
  const std::string index_in = flags.GetString("index-in", "");
  const std::string index_out = flags.GetString("index-out", "");
  if ((!index_in.empty() || !index_out.empty()) && index_mode != "pruned") {
    std::fprintf(stderr,
                 "recommend: --index-in/--index-out require "
                 "--index=pruned\n");
    return 2;
  }
  // Same fail-fast contract as --report-out: probe every output path
  // before any model work, so a typo'd directory costs milliseconds.
  const std::string out = flags.GetString("out", "");
  for (const std::string& path : {out, index_out}) {
    if (path.empty()) continue;
    FILE* probe = std::fopen(path.c_str(), "a");
    if (probe == nullptr) {
      std::fprintf(stderr, "recommend: output path %s is not writable\n",
                   path.c_str());
      return 1;
    }
    std::fclose(probe);
  }
  Dataset dataset;
  if (!ResolveDataset(flags, &dataset)) {
    std::fprintf(stderr, "recommend: cannot load dataset\n");
    return 1;
  }
  const std::string ckpt = flags.GetString("checkpoint", "");
  if (ckpt.empty()) {
    std::fprintf(stderr, "recommend: --checkpoint is required\n");
    return 2;
  }
  auto model = CreateModel(flags.GetString("model", "GraphAug"), &dataset,
                           ConfigFromFlags(flags));
  if (!LoadCheckpoint(model->params(), ckpt)) {
    std::fprintf(stderr, "recommend: cannot load %s\n", ckpt.c_str());
    return 1;
  }
  model->Finalize();
  const int32_t user = static_cast<int32_t>(flags.GetInt("user", 0));
  const int topk = static_cast<int>(flags.GetInt("topk", 10));
  if (user < 0 || user >= dataset.num_users) {
    std::fprintf(stderr, "recommend: user %d out of range\n", user);
    return 2;
  }
  if (index_mode != "exact" && !model->factored_scoring()) {
    std::fprintf(stderr,
                 "recommend: model '%s' has non-factored scoring; the "
                 "retrieval engines serve dot-product models only "
                 "(use --index=exact)\n",
                 model->name().c_str());
    return 2;
  }
  BipartiteGraph g = dataset.TrainGraph();
  std::vector<int32_t> seen = g.ItemsOf(user);
  std::sort(seen.begin(), seen.end());

  retrieval::TopKList list;
  if (index_mode == "exact") {
    // Dense oracle: score everything, mask seen items, rank the row with
    // the library-wide tie-break (score desc, item id asc).
    Matrix scores = model->ScoreUsers({user});
    for (int32_t v : seen) {
      scores[v] = -std::numeric_limits<float>::infinity();
    }
    std::vector<int32_t> order(dataset.num_items);
    std::iota(order.begin(), order.end(), 0);
    const int depth = std::min<int>(topk, dataset.num_items);
    std::partial_sort(order.begin(), order.begin() + depth, order.end(),
                      [&scores](int32_t a, int32_t b) {
                        return scores[a] != scores[b] ? scores[a] > scores[b]
                                                      : a < b;
                      });
    for (int r = 0; r < depth; ++r) {
      list.items.push_back(order[r]);
      list.scores.push_back(scores[order[r]]);
    }
  } else {
    const Matrix query = SliceRows(model->user_embeddings(), user, 1);
    if (index_mode == "heap") {
      retrieval::TopKScorer scorer(model->item_embeddings());
      list = scorer.Retrieve(query, topk, seen);
    } else {
      retrieval::MipsIndex index;
      if (!index_in.empty()) {
        if (!retrieval::MipsIndex::Load(index_in, &index)) {
          std::fprintf(stderr, "recommend: cannot load index %s\n",
                       index_in.c_str());
          return 1;
        }
        if (index.num_items() != dataset.num_items ||
            index.dim() != model->item_embeddings().cols()) {
          std::fprintf(stderr,
                       "recommend: index %s does not match the checkpoint "
                       "(%lld items x %lld dims vs %d x %lld)\n",
                       index_in.c_str(),
                       static_cast<long long>(index.num_items()),
                       static_cast<long long>(index.dim()),
                       dataset.num_items,
                       static_cast<long long>(
                           model->item_embeddings().cols()));
          return 1;
        }
      } else {
        index = retrieval::MipsIndex::Build(model->item_embeddings());
      }
      if (!index_out.empty()) {
        if (!index.Save(index_out)) {
          std::fprintf(stderr, "recommend: cannot write index %s\n",
                       index_out.c_str());
          return 1;
        }
        std::fprintf(stderr, "index saved to %s\n", index_out.c_str());
      }
      list = index.Retrieve(query, topk, seen);
    }
  }

  Table t({"rank", "item", "score"});
  for (size_t r = 0; r < list.items.size(); ++r) {
    t.AddRow({std::to_string(r + 1), std::to_string(list.items[r]),
              FormatDouble(list.scores[r], 3)});
  }
  const std::string header = "top-" + std::to_string(topk) +
                             " recommendations for user " +
                             std::to_string(user) + " (--index=" +
                             index_mode + "):\n";
  std::printf("%s%s", header.c_str(), t.ToString().c_str());
  if (!out.empty()) {
    FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "recommend: cannot write %s\n", out.c_str());
      return 1;
    }
    std::fprintf(f, "%s%s", header.c_str(), t.ToString().c_str());
    std::fclose(f);
    std::fprintf(stderr, "recommendations written to %s\n", out.c_str());
  }
  return 0;
}

int CmdDenoise(const FlagParser& flags) {
  Dataset dataset;
  if (!ResolveDataset(flags, &dataset)) {
    std::fprintf(stderr, "denoise: cannot load dataset\n");
    return 1;
  }
  std::string augmentor;
  if (!ResolveAugmentor(flags, &augmentor)) return 2;
  GraphAugConfig cfg;
  static_cast<ModelConfig&>(cfg) = ConfigFromFlags(flags);
  cfg.augmentor.name = augmentor;
  GraphAug model(&dataset, cfg);
  if (!model.augmenter().has_edge_scores()) {
    std::fprintf(stderr,
                 "denoise: augmentor '%s' learns no edge retention scores "
                 "(use --augmentor=gib)\n",
                 augmentor.c_str());
    return 2;
  }
  const int epochs = static_cast<int>(flags.GetInt("epochs", 24));
  for (int e = 0; e < epochs; ++e) {
    model.TrainEpoch();
    model.DecayLearningRate();
  }
  std::vector<float> probs = model.EdgeProbabilities();
  BipartiteGraph g = dataset.TrainGraph();
  const auto& edges = g.edges();
  std::vector<size_t> order(probs.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return probs[a] < probs[b]; });
  const double budget = flags.GetDouble("budget", 0.05);
  const size_t k = std::max<size_t>(
      1, static_cast<size_t>(budget * static_cast<double>(probs.size())));
  std::printf("%zu interactions flagged as most suspicious "
              "(lowest retention p):\n",
              k);
  Table t({"user", "item", "retention p"});
  for (size_t i = 0; i < k && i < order.size(); ++i) {
    const Edge& e = edges[order[i]];
    t.AddRow({std::to_string(e.user), std::to_string(e.item),
              FormatDouble(probs[order[i]])});
  }
  std::printf("%s", t.ToString().c_str());
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  // --threads=N caps the shared parallel runtime for every subcommand
  // (0 = auto: GRAPHAUG_NUM_THREADS env var, then hardware concurrency).
  // Results are identical at any setting; only wall-clock changes.
  if (flags.Has("threads")) {
    SetNumThreads(static_cast<int>(flags.GetInt("threads", 0)));
  }
  if (flags.Has("log-level")) {
    const std::string name = flags.GetString("log-level", "info");
    LogLevel level;
    if (!ParseLogLevel(name, &level)) {
      std::fprintf(stderr, "unknown --log-level '%s' "
                   "(expected debug|info|warn|error)\n", name.c_str());
      return 2;
    }
    SetLogLevel(level);
  }
  // Observability: any of the output flags turns the master switch on;
  // tracing additionally records scoped spans into the ring buffers.
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string trace_out = flags.GetString("trace-out", "");
  const std::string report_out = flags.GetString("report-out", "");
  const std::string profile_out = flags.GetString("profile-out", "");
  const int profile_hz = static_cast<int>(
      flags.GetInt("profile-hz", obs::kDefaultProfileHz));
  const std::string profile_folded =
      profile_out.empty() ? "" : profile_out + ".folded";
  const std::string profile_json =
      profile_out.empty() ? "" : profile_out + ".json";
  const bool obs_report = flags.GetBool("obs-report", false);
  const bool obs_on =
      !metrics_out.empty() || !trace_out.empty() || !report_out.empty() ||
      !profile_out.empty() || obs_report;
  if (obs_on) obs::SetEnabled(true);
  if (!trace_out.empty()) obs::SetTraceEnabled(true);
  // Fail loudly before any work if an output path is unwritable: probing
  // with "a" creates the file without clobbering an existing one, so a
  // typo'd directory is caught in milliseconds, not after training.
  for (const std::string& path :
       {metrics_out, trace_out, report_out, profile_folded, profile_json}) {
    if (path.empty()) continue;
    FILE* probe = std::fopen(path.c_str(), "a");
    if (probe == nullptr) {
      std::fprintf(stderr, "warning: output path %s is not writable\n",
                   path.c_str());
      return 1;
    }
    std::fclose(probe);
  }
  // Poll RSS in the background while instrumented so transient spikes
  // between epoch boundaries still show up in reports.
  if (obs_on) obs::RssSampler::Get().Start();
  const std::string& cmd = flags.positional()[0];
  // train scopes its own profiling session to the training loop (see
  // TrainOptions::profile_hz); every other subcommand is profiled whole.
  if (!profile_out.empty() && cmd != "train") {
    if (!obs::StartProfiler(profile_hz)) {
      std::fprintf(stderr,
                   "warning: sampling profiler unavailable (per-thread "
                   "timers/signals denied); %s will be empty\n",
                   profile_folded.c_str());
    }
  }
  int rc;
  if (cmd == "generate") {
    rc = CmdGenerate(flags);
  } else if (cmd == "stats") {
    rc = CmdStats(flags);
  } else if (cmd == "train") {
    rc = CmdTrain(flags);
  } else if (cmd == "recommend") {
    rc = CmdRecommend(flags);
  } else if (cmd == "denoise") {
    rc = CmdDenoise(flags);
  } else {
    return Usage();
  }
  obs::RssSampler::Get().Stop();
  obs::StopProfiler();
  if (!trace_out.empty()) {
    if (obs::WriteChromeTrace(trace_out)) {
      std::fprintf(stderr, "trace written to %s (%lld events)\n",
                   trace_out.c_str(),
                   static_cast<long long>(obs::TraceEventTotal()));
      // A full ring overwrites oldest-first, so the exported trace is
      // silently missing its beginning — say so instead of letting a
      // truncated timeline masquerade as a complete one.
      const int64_t dropped = obs::TraceDroppedTotal();
      if (dropped > 0) {
        std::fprintf(stderr,
                     "warning: trace is truncated — %lld oldest events were "
                     "dropped due to ring-buffer overflow (see the "
                     "trace.dropped_events counter); earliest spans are "
                     "missing from %s\n",
                     static_cast<long long>(dropped), trace_out.c_str());
      }
    } else {
      std::fprintf(stderr, "cannot write trace %s\n", trace_out.c_str());
      rc = rc == 0 ? 1 : rc;
    }
  }
  if (!profile_out.empty()) {
    if (obs::WriteProfileFolded(profile_folded) &&
        obs::WriteProfileJson(profile_json)) {
      const obs::ProfileSummary prof = obs::SummarizeProfile();
      std::fprintf(stderr,
                   "profile written to %s / %s (%lld samples, %lld lost, "
                   "%.1f%% attributed)\n",
                   profile_folded.c_str(), profile_json.c_str(),
                   static_cast<long long>(prof.samples),
                   static_cast<long long>(prof.lost),
                   100.0 * prof.attributed_frac);
    } else {
      std::fprintf(stderr, "cannot write profile %s\n", profile_out.c_str());
      rc = rc == 0 ? 1 : rc;
    }
  }
  if (!metrics_out.empty()) {
    if (obs::WriteMetricsJson(metrics_out)) {
      std::fprintf(stderr, "metrics written to %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write metrics %s\n", metrics_out.c_str());
      rc = rc == 0 ? 1 : rc;
    }
  }
  if (obs_report) std::printf("%s", obs::AsciiReport().c_str());
  for (const std::string& f : flags.UnusedFlags()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", f.c_str());
  }
  return rc;
}

}  // namespace
}  // namespace graphaug

int main(int argc, char** argv) { return graphaug::Main(argc, argv); }
