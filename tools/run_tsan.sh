#!/usr/bin/env bash
# Builds the ThreadSanitizer preset and runs the concurrency-sensitive
# tests (the parallel runtime stress tests, the CSR/transpose-cache
# tests, and the retrieval engines — RetrieveBatch fans out over the
# shared pool and bumps shared obs counters) under TSan. Any data race
# aborts the run (halt_on_error=1).
#
# Usage: tools/run_tsan.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan \
  --target parallel_test graph_test retrieval_test -j "$(nproc)"

TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir build-tsan --output-on-failure \
        -R '^(parallel_test|graph_test|retrieval_test)$' "$@"

echo "tsan: parallel_test + graph_test + retrieval_test clean"
