// Folds, diffs, and pretty-prints sampling profiles written by
// --profile-out (obs/profiler.h) in Brendan-Gregg collapsed-stack
// format: one `frame;frame;...;leaf COUNT` line per unique stack, root
// first, with the synthetic first frame `span:<tag>` carrying the
// trace-span / autograd-op attribution.
//
// Usage:
//   profile_report FILE.folded [MORE.folded...] [--top=N]
//       merge the inputs and print the top-N frames by self samples
//       (plus per-span shares); --merge-out=F also writes the merged
//       profile back out in folded format.
//   profile_report --baseline=a.folded --current=b.folded [--top=N]
//       diff two profiles by per-frame self-share, largest shifts first.
//   profile_report --selftest
//
// "self" counts samples whose leaf is the frame; "total" counts samples
// whose stack contains the frame (once per stack — recursion is not
// double-counted). Works on any folded file, including flamegraph.pl
// inputs produced elsewhere.
//
// Exit codes: 0 ok, 2 usage / parse error.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table.h"

namespace graphaug {
namespace {

/// A merged profile: folded stack line (without the count) -> samples.
struct Profile {
  std::map<std::string, int64_t> stacks;
  int64_t samples = 0;
};

std::vector<std::string> SplitFrames(const std::string& stack) {
  std::vector<std::string> frames;
  size_t pos = 0;
  while (pos <= stack.size()) {
    const size_t semi = stack.find(';', pos);
    const size_t end = semi == std::string::npos ? stack.size() : semi;
    frames.push_back(stack.substr(pos, end - pos));
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  return frames;
}

/// Parses folded text into `out` (accumulating — callable once per input
/// file to merge). Blank lines are skipped; anything else malformed
/// (missing count, empty stack) is an error with a line number.
bool ParseFolded(const std::string& text, Profile* out, std::string* error) {
  size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(pos, end - pos);
    ++line_no;
    pos = end + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    const size_t space = line.find_last_of(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      *error = "line " + std::to_string(line_no) +
               ": expected 'stack;frames... COUNT'";
      return false;
    }
    const std::string count_str = line.substr(space + 1);
    if (count_str.find_first_not_of("0123456789") != std::string::npos) {
      *error = "line " + std::to_string(line_no) + ": count '" + count_str +
               "' is not a non-negative integer";
      return false;
    }
    const int64_t count = std::strtoll(count_str.c_str(), nullptr, 10);
    const std::string stack = line.substr(0, space);
    out->stacks[stack] += count;
    out->samples += count;
  }
  if (out->stacks.empty()) {
    *error = "no stacks";
    return false;
  }
  return true;
}

bool LoadFolded(const std::string& path, Profile* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "profile_report: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string error;
  if (!ParseFolded(ss.str(), out, &error)) {
    std::fprintf(stderr, "profile_report: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

std::string RenderFolded(const Profile& p) {
  std::string out;
  for (const auto& [stack, count] : p.stacks) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

struct FrameStat {
  int64_t self = 0;
  int64_t total = 0;
};

/// Per-frame self/total over every stack. The synthetic span root frames
/// ("span:...") are collected into `spans` (prefix stripped) instead of
/// the frame table.
std::map<std::string, FrameStat> FrameStats(
    const Profile& p, std::map<std::string, int64_t>* spans) {
  std::map<std::string, FrameStat> stats;
  for (const auto& [stack, count] : p.stacks) {
    std::vector<std::string> frames = SplitFrames(stack);
    if (!frames.empty() && frames.front().rfind("span:", 0) == 0) {
      if (spans != nullptr) (*spans)[frames.front().substr(5)] += count;
      frames.erase(frames.begin());
    }
    if (frames.empty()) continue;
    stats[frames.back()].self += count;
    std::sort(frames.begin(), frames.end());
    frames.erase(std::unique(frames.begin(), frames.end()), frames.end());
    for (const std::string& f : frames) stats[f].total += count;
  }
  return stats;
}

std::string Truncate(const std::string& s, size_t max) {
  if (s.size() <= max) return s;
  return s.substr(0, max - 3) + "...";
}

int PrintReport(const Profile& p, int top_n) {
  std::map<std::string, int64_t> spans;
  const std::map<std::string, FrameStat> stats = FrameStats(p, &spans);
  std::vector<std::pair<std::string, FrameStat>> rows(stats.begin(),
                                                      stats.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.self != b.second.self ? a.second.self > b.second.self
                                          : a.first < b.first;
  });
  const double denom = p.samples > 0 ? static_cast<double>(p.samples) : 1.0;
  std::printf("%lld samples, %zu unique stacks, %zu unique frames\n",
              static_cast<long long>(p.samples), p.stacks.size(),
              stats.size());
  if (!spans.empty()) {
    std::vector<std::pair<std::string, int64_t>> span_rows(spans.begin(),
                                                           spans.end());
    std::sort(span_rows.begin(), span_rows.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second > b.second
                                            : a.first < b.first;
              });
    Table st({"span", "samples", "share%"});
    for (const auto& [name, count] : span_rows) {
      st.AddRow({name, std::to_string(count),
                 FormatDouble(100.0 * static_cast<double>(count) / denom, 1)});
    }
    std::printf("%s", st.ToString().c_str());
  }
  Table t({"self%", "total%", "self", "frame"});
  int printed = 0;
  for (const auto& [name, stat] : rows) {
    if (top_n >= 0 && printed >= top_n) break;
    t.AddRow({FormatDouble(100.0 * static_cast<double>(stat.self) / denom, 1),
              FormatDouble(100.0 * static_cast<double>(stat.total) / denom, 1),
              std::to_string(stat.self), Truncate(name, 76)});
    ++printed;
  }
  std::printf("%s", t.ToString().c_str());
  return 0;
}

int PrintDiff(const Profile& base, const Profile& cur, int top_n) {
  const std::map<std::string, FrameStat> bs = FrameStats(base, nullptr);
  const std::map<std::string, FrameStat> cs = FrameStats(cur, nullptr);
  const double bden =
      base.samples > 0 ? static_cast<double>(base.samples) : 1.0;
  const double cden = cur.samples > 0 ? static_cast<double>(cur.samples) : 1.0;
  struct DiffRow {
    std::string name;
    double base_pct = 0, cur_pct = 0;
  };
  std::vector<DiffRow> rows;
  for (const auto& [name, stat] : bs) {
    DiffRow r{name, 100.0 * static_cast<double>(stat.self) / bden, 0};
    const auto it = cs.find(name);
    if (it != cs.end()) {
      r.cur_pct = 100.0 * static_cast<double>(it->second.self) / cden;
    }
    rows.push_back(std::move(r));
  }
  for (const auto& [name, stat] : cs) {
    if (bs.find(name) == bs.end()) {
      rows.push_back(
          DiffRow{name, 0, 100.0 * static_cast<double>(stat.self) / cden});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const DiffRow& a, const DiffRow& b) {
    const double da = std::fabs(a.cur_pct - a.base_pct);
    const double db = std::fabs(b.cur_pct - b.base_pct);
    return da != db ? da > db : a.name < b.name;
  });
  std::printf("baseline %lld samples, current %lld samples; self-share "
              "shifts (percentage points):\n",
              static_cast<long long>(base.samples),
              static_cast<long long>(cur.samples));
  Table t({"base%", "cur%", "delta", "frame"});
  int printed = 0;
  for (const DiffRow& r : rows) {
    if (top_n >= 0 && printed >= top_n) break;
    char delta[32];
    std::snprintf(delta, sizeof(delta), "%+.1f", r.cur_pct - r.base_pct);
    t.AddRow({FormatDouble(r.base_pct, 1), FormatDouble(r.cur_pct, 1), delta,
              Truncate(r.name, 70)});
    ++printed;
  }
  std::printf("%s", t.ToString().c_str());
  return 0;
}

// --------------------------------------------------------------- selftest

int SelfTest() {
  const std::string folded =
      "span:gemm;main;pack_a;kernel_6x16 70\n"
      "span:gemm;main;kernel_6x16 20\n"
      "span:(none);main;recurse;recurse;leafy 6\n"
      "\n"
      "span:(none);main 4\n";
  Profile p;
  std::string error;
  if (!ParseFolded(folded, &p, &error)) {
    std::fprintf(stderr, "selftest: parse failed: %s\n", error.c_str());
    return 1;
  }
  if (p.samples != 100 || p.stacks.size() != 4) {
    std::fprintf(stderr, "selftest: wrong totals\n");
    return 1;
  }
  std::map<std::string, int64_t> spans;
  const std::map<std::string, FrameStat> stats = FrameStats(p, &spans);
  // self: leaf-frame samples only; total: once per containing stack.
  if (stats.at("kernel_6x16").self != 90 || stats.at("kernel_6x16").total != 90 ||
      stats.at("main").self != 4 || stats.at("main").total != 100 ||
      stats.at("pack_a").self != 0 || stats.at("pack_a").total != 70) {
    std::fprintf(stderr, "selftest: wrong self/total math\n");
    return 1;
  }
  // Recursive frames count once per stack in "total".
  if (stats.at("recurse").total != 6 || stats.at("recurse").self != 0) {
    std::fprintf(stderr, "selftest: recursion double-counted\n");
    return 1;
  }
  if (spans.at("gemm") != 90 || spans.at("(none)") != 10) {
    std::fprintf(stderr, "selftest: wrong span shares\n");
    return 1;
  }
  // Merging the profile into itself doubles every count; render/parse
  // round-trips.
  Profile merged = p;
  if (!ParseFolded(RenderFolded(p), &merged, &error) ||
      merged.samples != 200 ||
      merged.stacks.at("span:gemm;main;pack_a;kernel_6x16") != 140) {
    std::fprintf(stderr, "selftest: merge/round-trip failed\n");
    return 1;
  }
  // Diff path must run on disjoint profiles.
  Profile other;
  if (!ParseFolded("span:gemm;main;kernel_6x16 50\nspan:eval;main;rank 50\n",
                   &other, &error)) {
    std::fprintf(stderr, "selftest: second parse failed\n");
    return 1;
  }
  if (PrintDiff(p, other, 5) != 0 || PrintReport(p, 5) != 0) {
    std::fprintf(stderr, "selftest: print paths failed\n");
    return 1;
  }
  // Malformed lines are errors, not silent skips.
  Profile bad;
  if (ParseFolded("main;leaf notacount\n", &bad, &error) ||
      ParseFolded("justoneword\n", &bad, &error)) {
    std::fprintf(stderr, "selftest: malformed line must fail\n");
    return 1;
  }
  std::printf("profile_report selftest: ok\n");
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.GetBool("selftest", false)) return SelfTest();
  const std::string baseline_path = flags.GetString("baseline", "");
  const std::string current_path = flags.GetString("current", "");
  const int top_n = static_cast<int>(flags.GetInt("top", 25));
  if (!baseline_path.empty() && !current_path.empty()) {
    Profile base, cur;
    if (!LoadFolded(baseline_path, &base) || !LoadFolded(current_path, &cur)) {
      return 2;
    }
    return PrintDiff(base, cur, top_n);
  }
  if (flags.positional().empty() || !baseline_path.empty() ||
      !current_path.empty()) {
    std::fprintf(
        stderr,
        "usage: profile_report FILE.folded [MORE.folded...] [--top=N]\n"
        "                      [--merge-out=FILE]\n"
        "       profile_report --baseline=a.folded --current=b.folded "
        "[--top=N]\n"
        "       profile_report --selftest\n");
    return 2;
  }
  Profile merged;
  for (const std::string& path : flags.positional()) {
    if (!LoadFolded(path, &merged)) return 2;
  }
  const std::string merge_out = flags.GetString("merge-out", "");
  if (!merge_out.empty()) {
    std::ofstream out(merge_out);
    out << RenderFolded(merged);
    if (!out) {
      std::fprintf(stderr, "profile_report: cannot write %s\n",
                   merge_out.c_str());
      return 2;
    }
    std::fprintf(stderr, "merged profile written to %s\n", merge_out.c_str());
  }
  return PrintReport(merged, top_n);
}

}  // namespace
}  // namespace graphaug

int main(int argc, char** argv) { return graphaug::Main(argc, argv); }
