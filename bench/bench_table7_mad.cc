// Reproduces Table VII: MAD values (over-smoothing diagnostic) of
// GraphAug, NCL, and LightGCN alongside their accuracy on the Gowalla
// stand-in.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "eval/embedding_stats.h"
#include "models/registry.h"

int main() {
  using namespace graphaug;
  bench::PrintBanner("Table VII — MAD Comparison",
                     "Embedding-pair mean average distance per model.");
  bench::BenchSettings settings = bench::BenchSettings::Default();
  const SyntheticData& data = bench::GetDataset("gowalla-sim");

  Table t({"Method", "MAD", "Recall@20", "NDCG@20"});
  for (const std::string& name :
       {std::string("GraphAug"), std::string("NCL"),
        std::string("LightGCN")}) {
    auto model = CreateModel(name, &data.dataset, settings.model);
    bench::RunResult r =
        bench::RunRecommender(model.get(), data.dataset, settings);
    model->Finalize();
    Rng rng(7);
    const double mad = ComputeMad(model->AllEmbeddings(), 20000, &rng);
    t.AddRow(name, {mad, r.recall20, r.ndcg20});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf("Paper shape to verify: MAD(GraphAug) > MAD(NCL) >\n"
              "MAD(LightGCN), matching the accuracy ordering.\n");
  return 0;
}
