// Reproduces Table VI: training-cost evaluation — wall-clock training
// time vs accuracy for the four contrastive models (DGCL, HCCF, NCL,
// GraphAug) on the Gowalla stand-in.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"

int main() {
  using namespace graphaug;
  bench::PrintBanner("Table VI — Cost Time Evaluation",
                     "Wall-clock training time vs accuracy (gowalla-sim).");
  bench::BenchSettings settings = bench::BenchSettings::Default();

  Table t({"Model", "Time (s)", "Recall@20", "NDCG@20"});
  for (const std::string& model :
       {std::string("DGCL"), std::string("HCCF"), std::string("NCL"),
        std::string("GraphAug")}) {
    bench::RunResult r = bench::RunModel(model, "gowalla-sim", settings);
    t.AddRow(model, {r.train.train_seconds, r.recall20, r.ndcg20}, 3);
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "Paper shape to verify: GraphAug's cost is comparable to the other\n"
      "CL methods (same complexity class) while its accuracy is best.\n");
  return 0;
}
