// Reproduces Table IV: influence of the graph-sampling reparameterization
// strength — the edge threshold ξ swept over {0.0, 0.2, 0.4, 0.6, 0.8} on
// all three datasets.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"

int main() {
  using namespace graphaug;
  bench::PrintBanner(
      "Table IV — Graph Sampling Reparameterization Strength",
      "GraphAug with augmentation ratio xi in {0.0,0.2,0.4,0.6,0.8}.");
  bench::BenchSettings settings = bench::BenchSettings::Default();

  for (const std::string& ds : bench::BenchDatasets()) {
    const SyntheticData& data = bench::GetDataset(ds);
    std::printf("--- %s ---\n", ds.c_str());
    Table t({"Aug Ratio", "Recall@20", "Recall@40", "NDCG@20", "NDCG@40"});
    for (float xi : {0.0f, 0.2f, 0.4f, 0.6f, 0.8f}) {
      GraphAugConfig cfg = bench::MakeGraphAugConfig(settings, 0, ds);
      cfg.augmentor.gib.edge_threshold = xi;
      // Run the sweep with the structure-KL bound active: it keeps the
      // learned retention probabilities mid-range (the regime the paper's
      // sweep operates in). With the default config the scorer saturates
      // p ≈ 1 and ξ barely changes the sampled views (flat sweep).
      cfg.augmentor.gib.structure_kl_weight = 0.15f;
      GraphAug model(&data.dataset, cfg);
      bench::RunResult r =
          bench::RunRecommender(&model, data.dataset, settings);
      t.AddRow(FormatDouble(xi, 1),
               {r.recall20, r.recall40, r.ndcg20, r.ndcg40});
    }
    std::printf("%s\n", t.ToString().c_str());
  }
  std::printf("Paper shape to verify: best accuracy around xi = 0.2; very\n"
              "large thresholds destroy collaborative signal.\n");
  return 0;
}
