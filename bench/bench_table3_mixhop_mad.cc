// Reproduces Table III: ablation of the mixhop encoder w.r.t. MAD (mean
// average distance — the over-smoothing diagnostic) together with
// Recall@20 / NDCG@20 on the Gowalla stand-in.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "eval/embedding_stats.h"

int main() {
  using namespace graphaug;
  bench::PrintBanner("Table III — Mixhop ablation w.r.t. MAD",
                     "GraphAug with mixhop vs standard-GCN encoder.");
  bench::BenchSettings settings = bench::BenchSettings::Default();
  const SyntheticData& data = bench::GetDataset("gowalla-sim");

  Table t({"Variant", "MAD", "Recall@20", "NDCG@20"});
  for (bool mixhop : {true, false}) {
    GraphAugConfig cfg = bench::MakeGraphAugConfig(settings, 0, "gowalla-sim");
    cfg.use_mixhop = mixhop;
    GraphAug model(&data.dataset, cfg);
    bench::RunResult r =
        bench::RunRecommender(&model, data.dataset, settings);
    model.Finalize();
    Rng rng(7);
    const double mad = ComputeMad(model.AllEmbeddings(), 20000, &rng);
    t.AddRow(mixhop ? "w Mixhop" : "w/o Mixhop",
             {mad, r.recall20, r.ndcg20});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "Caveat: at this scale the standard-GCN variant does not converge\n"
      "(low recall), and the MAD of an unconverged model is meaninglessly\n"
      "high — over-smoothing only appears as training converges. The\n"
      "controlled comparison below trains both encoders to convergence on\n"
      "a smaller graph where the GCN also learns.\n\n");

  // Controlled convergence study: medium graph, 40 epochs, both healthy.
  SyntheticConfig scfg = PresetConfig("tiny");
  scfg.num_users = 250;
  scfg.num_items = 180;
  scfg.mean_user_degree = 12;
  SyntheticData small = GenerateSynthetic(scfg);
  bench::BenchSettings s2 = settings;
  s2.epochs = 40;
  s2.eval_every = 10;
  Table t2({"Variant (converged)", "MAD", "Recall@20"});
  for (bool mixhop : {true, false}) {
    GraphAugConfig cfg = bench::MakeGraphAugConfig(s2, 0, "gowalla-sim");
    cfg.use_mixhop = mixhop;
    GraphAug model(&small.dataset, cfg);
    bench::RunResult r = bench::RunRecommender(&model, small.dataset, s2);
    model.Finalize();
    Rng rng(7);
    const double mad = ComputeMad(model.AllEmbeddings(), 20000, &rng);
    t2.AddRow(mixhop ? "w Mixhop" : "w/o Mixhop", {mad, r.recall20});
  }
  std::printf("%s\n", t2.ToString().c_str());
  std::printf("Paper shape to verify: 'w Mixhop' has higher MAD (less\n"
              "over-smoothing) and better accuracy than 'w/o Mixhop'.\n");
  return 0;
}
