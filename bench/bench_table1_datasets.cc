// Reproduces Table I: experimental data statistics for the three
// (simulated) benchmark datasets — user/item counts, interactions,
// density — plus skew diagnostics that justify the synthetic stand-ins.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "data/stats.h"

int main() {
  using namespace graphaug;
  bench::PrintBanner("Table I — Experimental Data Statistics",
                     "Simulated Gowalla / Retail Rocket / Amazon presets.");

  Table t({"Dataset", "User #", "Item #", "Train #", "Test #", "Density",
           "MeanDeg", "Gini(item)"});
  for (const std::string& name : bench::BenchDatasets()) {
    const Dataset& d = bench::GetDataset(name).dataset;
    DatasetStats s = ComputeStats(d);
    char density[32];
    std::snprintf(density, sizeof(density), "%.2e", s.density);
    t.AddRow({name, std::to_string(s.num_users), std::to_string(s.num_items),
              std::to_string(s.num_train), std::to_string(s.num_test),
              density, FormatDouble(s.mean_user_degree, 1),
              FormatDouble(s.gini_item_popularity, 3)});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf("Paper shape to verify: Gowalla densest; Retail Rocket and\n"
              "Amazon markedly sparser; all long-tailed (high Gini).\n");
  return 0;
}
