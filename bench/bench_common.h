#ifndef GRAPHAUG_BENCH_BENCH_COMMON_H_
#define GRAPHAUG_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/graphaug.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/registry.h"
#include "models/trainer.h"

namespace graphaug::bench {

/// Shared experiment settings. Every table/figure binary reads the same
/// hyperparameters so results are comparable across experiments, matching
/// the paper's protocol (d=32, L=2, τ=0.9, ξ=0.2, lr decay 0.96).
/// Setting the environment variable GRAPHAUG_BENCH_FAST=1 shrinks epochs
/// for smoke-checking the harness.
struct BenchSettings {
  int epochs = 24;
  int eval_every = 6;
  ModelConfig model;

  static BenchSettings Default();
  bool fast = false;
};

/// The three paper datasets (simulated; see DESIGN.md §4).
std::vector<std::string> BenchDatasets();

/// Generates (and caches per-process) a preset dataset.
const SyntheticData& GetDataset(const std::string& name);

/// Result of one train+evaluate run.
struct RunResult {
  TrainResult train;
  double recall20 = 0, recall40 = 0, ndcg20 = 0, ndcg40 = 0;
};

/// Trains `model_name` on `dataset_name` with the shared settings and
/// returns best-checkpoint metrics. `seed` overrides the config seed.
RunResult RunModel(const std::string& model_name,
                   const std::string& dataset_name,
                   const BenchSettings& settings, uint64_t seed = 0);

/// Same, but for an already-constructed model (used for GraphAug variants
/// with custom configs).
RunResult RunRecommender(Recommender* model, const Dataset& dataset,
                         const BenchSettings& settings);

/// GraphAug config matching the shared settings, with the per-dataset
/// tuned hyperparameters used by every experiment binary (the paper also
/// tunes per dataset): the dense Gowalla stand-in benefits from the
/// LeakyReLU in the mixhop layers, while the two sparse datasets train
/// better with linear mixing and a stronger GIB prediction bound.
GraphAugConfig MakeGraphAugConfig(const BenchSettings& settings,
                                  uint64_t seed = 0,
                                  const std::string& dataset_name = "");

/// Prints a standard experiment banner.
void PrintBanner(const std::string& experiment,
                 const std::string& description);

/// Machine/build provenance stamped into every BENCH_*.json so results
/// from different machines or commits are never silently compared.
struct BenchEnv {
  unsigned hardware_concurrency = 1;  ///< std::thread::hardware_concurrency()
  std::string git_sha;        ///< short HEAD sha, "unknown" off a checkout
  std::string timestamp_utc;  ///< ISO-8601 UTC, e.g. "2026-08-05T12:34:56Z"
};

/// Probes the environment once per call (cheap: one fork for git).
BenchEnv GetBenchEnv();

/// Renders the env as `"key": value,` JSON lines (trailing comma on every
/// line) indented by `indent` spaces, for splicing into a JSON header.
std::string BenchEnvJsonFields(const BenchEnv& env, int indent);

}  // namespace graphaug::bench

#endif  // GRAPHAUG_BENCH_BENCH_COMMON_H_
