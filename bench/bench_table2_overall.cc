// Reproduces Table II: overall recommendation performance of all 18
// models on the three datasets (Recall@20/40, NDCG@20/40), plus the
// significance row (Welch t-test between GraphAug and the best baseline
// over repeated seeded runs on each dataset).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "common/table.h"
#include "eval/significance.h"

int main() {
  using namespace graphaug;
  bench::PrintBanner(
      "Table II — Overall Performance Comparison",
      "All baselines + GraphAug; Recall@20/40 and NDCG@20/40.");
  bench::BenchSettings settings = bench::BenchSettings::Default();

  std::vector<std::string> header = {"Model"};
  for (const std::string& ds : bench::BenchDatasets()) {
    header.push_back(ds + " R@20");
    header.push_back(ds + " R@40");
    header.push_back(ds + " N@20");
    header.push_back(ds + " N@40");
  }
  Table t(header);

  std::string best_baseline;
  double best_baseline_r20 = 0;  // on the first dataset (gowalla-sim)
  for (const std::string& model : AllModelNames()) {
    std::vector<std::string> row = {model};
    for (const std::string& ds : bench::BenchDatasets()) {
      bench::RunResult r = bench::RunModel(model, ds, settings);
      row.push_back(FormatDouble(r.recall20));
      row.push_back(FormatDouble(r.recall40));
      row.push_back(FormatDouble(r.ndcg20));
      row.push_back(FormatDouble(r.ndcg40));
      if (ds == "gowalla-sim" && model != "GraphAug" &&
          r.recall20 > best_baseline_r20) {
        best_baseline_r20 = r.recall20;
        best_baseline = model;
      }
      GA_LOG(Info) << model << " / " << ds << " R@20=" << r.recall20;
    }
    t.AddRow(std::move(row));
  }
  std::printf("%s\n", t.ToString().c_str());

  // Significance: repeated seeded runs of GraphAug vs the best baseline on
  // gowalla-sim.
  const int kSeeds = settings.fast ? 2 : 3;
  std::vector<double> ours, theirs;
  for (int s = 0; s < kSeeds; ++s) {
    ours.push_back(bench::RunModel("GraphAug", "gowalla-sim", settings,
                                   1000 + s)
                       .recall20);
    theirs.push_back(bench::RunModel(best_baseline, "gowalla-sim", settings,
                                     1000 + s)
                         .recall20);
  }
  TTestResult tt = WelchTTest(ours, theirs);
  std::printf("Significance (gowalla-sim, Recall@20, %d seeds):\n", kSeeds);
  std::printf("  GraphAug vs %s: t=%.3f, p-val=%.3g\n\n",
              best_baseline.c_str(), tt.t_statistic, tt.p_value);
  std::printf(
      "Paper shape to verify: SSL-enhanced models (SGL/NCL/HCCF/...) beat\n"
      "plain GNN CF; GNN CF beats shallow CF; GraphAug ranks first.\n");
  return 0;
}
