// Top-K retrieval benchmark (BENCH_topk.json): times list SERVING — the
// per-user top-20 recommendation lists with training items excluded —
// through each serving path at several user/item scales, and records the
// quality axes the CI topk-gate enforces:
//
//   * speedup_vs_dense: wall-clock of the retrieval engines over the
//     dense brute-force serve (one GEMM over all items + partial-sort per
//     user), at matched thread counts. A ratio of two same-machine
//     timings, so the committed baseline transfers across machines.
//   * recall: top-20 set overlap against the dense oracle lists.
//   * exact_match: bit-for-bit Evaluator metric equality with the dense
//     path (computed untimed; proves end-to-end parity, not just list
//     parity).
//
// The heap engine must reproduce the dense oracle lists exactly and match
// its metrics bit for bit — any deviation is a correctness bug and fails
// the benchmark outright, not just the gate. The pruned engine at
// bound_slack = 1 is also exact; the gate only requires recall >= 0.99 so
// sub-1 slack configurations remain usable.
//
// Embeddings are synthetic but structured the way trained ones are:
// community-clustered latent factors with item norms scaled by Zipf
// popularity (popular items have larger norms after MF training, which is
// exactly the regime the cone + norm bounds prune).
//
// Flags: --json-out=FILE, --fast (small scale only), --full (adds a
// 12000x6000 scale), --reps=N.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "retrieval/mips_index.h"
#include "retrieval/topk.h"
#include "tensor/kernel_dispatch.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

constexpr int kServeK = 20;

/// Packs every metric double into a Matrix (two floats per double,
/// bit-preserving) so metric parity can be asserted with one memcmp.
Matrix MetricsMatrix(const TopKMetrics& m) {
  std::vector<double> vals;
  for (const std::vector<double>* v :
       {&m.recall, &m.ndcg, &m.precision, &m.hit_rate, &m.map, &m.mrr}) {
    vals.insert(vals.end(), v->begin(), v->end());
  }
  Matrix out(1, static_cast<int64_t>(vals.size()) * 2);
  std::memcpy(out.data(), vals.data(), vals.size() * sizeof(double));
  return out;
}

bool MetricsExactlyEqual(const Matrix& a, const Matrix& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.size())) == 0;
}

bool ListsIdentical(const std::vector<retrieval::TopKList>& a,
                    const std::vector<retrieval::TopKList>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].items != b[i].items) return false;
    if (a[i].scores.size() != b[i].scores.size()) return false;
    if (!a[i].scores.empty() &&
        std::memcmp(a[i].scores.data(), b[i].scores.data(),
                    a[i].scores.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

/// Mean top-k overlap of `lists` against the oracle lists:
/// |retrieved ∩ oracle| / |oracle| averaged over users.
double MeanRecallVsOracle(const std::vector<retrieval::TopKList>& lists,
                          const std::vector<retrieval::TopKList>& oracle) {
  if (oracle.empty()) return 1.0;
  double total = 0;
  for (size_t i = 0; i < oracle.size(); ++i) {
    std::vector<int32_t> want = oracle[i].items;
    std::sort(want.begin(), want.end());
    int hits = 0;
    for (int32_t id : lists[i].items) {
      if (std::binary_search(want.begin(), want.end(), id)) ++hits;
    }
    total += want.empty()
                 ? 1.0
                 : static_cast<double>(hits) / static_cast<double>(want.size());
  }
  return total / static_cast<double>(oracle.size());
}

struct ScaleInputs {
  std::shared_ptr<SyntheticData> data;
  std::shared_ptr<Evaluator> evaluator;
  std::shared_ptr<Matrix> ue, ie;
  std::shared_ptr<Matrix> queries;                ///< evaluable-user rows
  std::vector<std::vector<int32_t>> train_items;  ///< per user, sorted
  std::string shape;
};

ScaleInputs BuildScale(int32_t users, int32_t items) {
  ScaleInputs s;
  SyntheticConfig cfg;
  cfg.num_users = users;
  cfg.num_items = items;
  cfg.mean_user_degree = 16.0;
  cfg.latent_dim = 32;
  cfg.num_communities = 12;
  cfg.factor_noise = 0.08f;
  cfg.seed = 21;
  s.data = std::make_shared<SyntheticData>(GenerateSynthetic(cfg));
  s.evaluator =
      std::make_shared<Evaluator>(&s.data->dataset, std::vector<int>{20, 40});
  s.ue = std::make_shared<Matrix>(s.data->user_factors);
  s.ie = std::make_shared<Matrix>(s.data->item_factors);
  // Popularity-skewed item norms: scale item j by (1 + degree_j)^0.35,
  // mimicking the norm distribution BPR-trained embeddings develop.
  std::vector<int64_t> degree(static_cast<size_t>(items), 0);
  for (const Edge& e : s.data->dataset.train_edges) ++degree[e.item];
  for (int64_t j = 0; j < s.ie->rows(); ++j) {
    const float scale = static_cast<float>(
        std::pow(1.0 + static_cast<double>(degree[static_cast<size_t>(j)]),
                 0.35));
    float* row = s.ie->row(j);
    for (int64_t c = 0; c < s.ie->cols(); ++c) row[c] *= scale;
  }
  s.train_items.assign(static_cast<size_t>(users), {});
  for (const Edge& e : s.data->dataset.train_edges) {
    s.train_items[e.user].push_back(e.item);
  }
  for (auto& v : s.train_items) std::sort(v.begin(), v.end());
  s.queries = std::make_shared<Matrix>(
      GatherRows(*s.ue, s.evaluator->evaluable_users()));
  s.shape = std::to_string(users) + "users_x" + std::to_string(items) +
            "items";
  return s;
}

/// Dense brute-force serving: batched GEMM against every item, mask the
/// training items, partial-sort to depth k. This is the oracle the
/// retrieval engines are compared against — same tie-breaking (score
/// desc, id asc), deterministic at any thread count (each user's row is
/// private to one chunk).
void DenseServe(const ScaleInputs& s, int k,
                std::vector<retrieval::TopKList>* out) {
  const std::vector<int32_t>& eu = s.evaluator->evaluable_users();
  const int64_t q = static_cast<int64_t>(eu.size());
  const int64_t J = s.ie->rows();
  out->assign(static_cast<size_t>(q), retrieval::TopKList{});
  constexpr int64_t kUserBatch = 512;
  for (int64_t b = 0; b < q; b += kUserBatch) {
    const int64_t e = std::min(q, b + kUserBatch);
    const std::vector<int32_t> batch(eu.begin() + b, eu.begin() + e);
    Matrix block = GatherRows(*s.ue, batch);
    Matrix scores;
    Gemm(block, false, *s.ie, true, 1.f, 0.f, &scores);
    ParallelFor(0, e - b, 128, [&](int64_t begin, int64_t end) {
      std::vector<int32_t> order(static_cast<size_t>(J));
      for (int64_t i = begin; i < end; ++i) {
        float* row = scores.row(i);
        for (const int32_t v : s.train_items[static_cast<size_t>(
                 eu[static_cast<size_t>(b + i)])]) {
          row[v] = -std::numeric_limits<float>::infinity();
        }
        std::iota(order.begin(), order.end(), 0);
        const int64_t depth = std::min<int64_t>(k, J);
        std::partial_sort(order.begin(), order.begin() + depth, order.end(),
                          [row](int32_t a, int32_t b2) {
                            return row[a] != row[b2] ? row[a] > row[b2]
                                                     : a < b2;
                          });
        retrieval::TopKList& list = (*out)[static_cast<size_t>(b + i)];
        list.items.assign(order.begin(), order.begin() + depth);
        list.scores.resize(static_cast<size_t>(depth));
        for (int64_t r = 0; r < depth; ++r) {
          list.scores[static_cast<size_t>(r)] =
              row[list.items[static_cast<size_t>(r)]];
        }
      }
    });
  }
}

/// Serving through a Retriever with the same exclusion protocol.
void RetrieverServe(const ScaleInputs& s, const retrieval::Retriever& r,
                    int k, std::vector<retrieval::TopKList>* out) {
  const std::vector<int32_t>& eu = s.evaluator->evaluable_users();
  r.RetrieveBatch(*s.queries, k,
                  [&](int64_t qi) -> const std::vector<int32_t>& {
                    return s.train_items[static_cast<size_t>(
                        eu[static_cast<size_t>(qi)])];
                  },
                  out);
}

struct ModeRow {
  std::string name;
  std::function<void(std::vector<retrieval::TopKList>*)> serve;
  double recall = -1;    ///< <0: omit the column (dense row)
  int exact_match = -1;  ///< -1 omit, 0/1 emit
  double build_seconds = -1;
};

int RunBench(const FlagParser& flags) {
  const std::string json_path = flags.GetString("json-out", "BENCH_topk.json");
  const bool fast = flags.GetBool("fast", false);
  const bool full = flags.GetBool("full", false);
  const int reps = static_cast<int>(flags.GetInt("reps", 3));

  SetNumThreads(0);
  const int hw = NumThreads();
  std::vector<int> counts = {1, 2, 4};
  if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
    counts.push_back(hw);
  }
  std::sort(counts.begin(), counts.end());

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  const bench::BenchEnv env = bench::GetBenchEnv();
  std::fprintf(f, "{\n  \"generated_by\": \"bench_topk\",\n");
  std::fprintf(f, "  \"fast_mode\": %s,\n", fast ? "true" : "false");
  std::fprintf(f, "  \"serve_k\": %d,\n", kServeK);
  std::fprintf(f, "%s", bench::BenchEnvJsonFields(env, 2).c_str());
  std::fprintf(f, "  \"simd_level\": \"%s\",\n",
               SimdLevelName(ActiveSimdLevel()));
  std::fprintf(f, "  \"threads_resolved\": %d,\n  \"kernels\": [\n", hw);

  std::vector<std::pair<int32_t, int32_t>> scales;
  scales.push_back({800, 600});
  if (!fast) scales.push_back({3000, 1500});
  if (!fast && full) scales.push_back({12000, 6000});

  bool first_row = true;
  for (const auto& [users, items] : scales) {
    std::fprintf(stderr, "-- scale %dx%d\n", users, items);
    const ScaleInputs s = BuildScale(users, items);

    auto heap = std::make_shared<retrieval::TopKScorer>(*s.ie);
    retrieval::MipsIndexConfig icfg;
    // ~125 items per cluster keeps the per-cluster scan short; below 12
    // clusters the direction buckets get too coarse to prune.
    icfg.num_clusters = std::max(12, items / 125);
    Stopwatch build_sw;
    auto pruned = std::make_shared<retrieval::MipsIndex>(
        retrieval::MipsIndex::Build(*s.ie, icfg));
    const double pruned_build = build_sw.ElapsedSeconds();

    // Correctness axes, all untimed at one thread: the dense lists are the
    // oracle; heap must reproduce them exactly (and match metrics bit for
    // bit); the pruned engine's list overlap is the gated recall.
    SetNumThreads(1);
    std::vector<retrieval::TopKList> oracle, heap_lists, pruned_lists;
    DenseServe(s, kServeK, &oracle);
    RetrieverServe(s, *heap, kServeK, &heap_lists);
    RetrieverServe(s, *pruned, kServeK, &pruned_lists);
    if (!ListsIdentical(heap_lists, oracle)) {
      std::fclose(f);
      std::fprintf(stderr, "heap lists deviate from the dense oracle\n");
      return 1;
    }
    const double pruned_recall = MeanRecallVsOracle(pruned_lists, oracle);

    const Evaluator::ScoreFn dense_scorer =
        [&s](const std::vector<int32_t>& batch) {
          Matrix q = GatherRows(*s.ue, batch);
          Matrix scores;
          Gemm(q, false, *s.ie, true, 1.f, 0.f, &scores);
          return scores;
        };
    const Matrix dense_ref = MetricsMatrix(s.evaluator->Evaluate(dense_scorer));
    const Matrix heap_ref =
        MetricsMatrix(s.evaluator->EvaluateRetrieval(*heap, *s.ue));
    const Matrix pruned_ref =
        MetricsMatrix(s.evaluator->EvaluateRetrieval(*pruned, *s.ue));
    const bool heap_exact = MetricsExactlyEqual(heap_ref, dense_ref);
    if (!heap_exact) {
      std::fclose(f);
      std::fprintf(stderr, "heap metrics deviate from the dense oracle\n");
      return 1;
    }

    std::vector<ModeRow> rows;
    rows.push_back(
        {"topk_dense", [&](std::vector<retrieval::TopKList>* out) {
           DenseServe(s, kServeK, out);
         }});
    rows.push_back({"topk_heap",
                    [&](std::vector<retrieval::TopKList>* out) {
                      RetrieverServe(s, *heap, kServeK, out);
                    },
                    MeanRecallVsOracle(heap_lists, oracle), 1});
    rows.push_back({"topk_pruned",
                    [&](std::vector<retrieval::TopKList>* out) {
                      RetrieverServe(s, *pruned, kServeK, out);
                    },
                    pruned_recall,
                    MetricsExactlyEqual(pruned_ref, dense_ref) ? 1 : 0,
                    pruned_build});

    std::vector<double> dense_best(counts.size(), 1e300);
    for (size_t mi = 0; mi < rows.size(); ++mi) {
      const ModeRow& row = rows[mi];
      std::fprintf(stderr, "   %s/%s\n", row.name.c_str(), s.shape.c_str());
      // Warmup at every thread count doubles as the determinism check:
      // the served lists must be bitwise identical at any width.
      std::vector<retrieval::TopKList> reference;
      std::vector<bool> bitwise_ok(counts.size(), true);
      for (size_t ti = 0; ti < counts.size(); ++ti) {
        SetNumThreads(counts[ti]);
        std::vector<retrieval::TopKList> lists;
        row.serve(&lists);
        if (ti == 0) {
          reference = std::move(lists);
        } else {
          bitwise_ok[ti] = ListsIdentical(reference, lists);
        }
      }
      // Interleaved timed reps (rep 0 at every width, then rep 1, ...) so
      // machine-wide drift biases every width equally.
      std::vector<double> best(counts.size(), 1e300);
      std::vector<retrieval::TopKList> scratch;
      for (int r = 0; r < reps; ++r) {
        for (size_t ti = 0; ti < counts.size(); ++ti) {
          SetNumThreads(counts[ti]);
          Stopwatch sw;
          row.serve(&scratch);
          const double seconds = sw.ElapsedSeconds();
          best[ti] = std::min(best[ti], seconds);
        }
      }
      if (row.name == "topk_dense") dense_best = best;

      std::fprintf(f, "%s    {\"name\": \"%s/%s\", \"shape\": \"%s\",\n",
                   first_row ? "" : ",\n", row.name.c_str(), s.shape.c_str(),
                   s.shape.c_str());
      first_row = false;
      if (row.build_seconds >= 0) {
        std::fprintf(f, "     \"build_seconds\": %.6g,\n", row.build_seconds);
      }
      std::fprintf(f, "     \"runs\": [\n");
      for (size_t ti = 0; ti < counts.size(); ++ti) {
        std::string extras;
        char buf[128];
        if (row.name != "topk_dense") {
          std::snprintf(buf, sizeof(buf), ", \"speedup_vs_dense\": %.4g",
                        dense_best[ti] / best[ti]);
          extras += buf;
        }
        if (row.recall >= 0) {
          std::snprintf(buf, sizeof(buf), ", \"recall\": %.6g", row.recall);
          extras += buf;
        }
        if (row.exact_match >= 0) {
          std::snprintf(buf, sizeof(buf), ", \"exact_match\": %s",
                        row.exact_match == 1 ? "true" : "false");
          extras += buf;
        }
        std::fprintf(
            f,
            "      {\"threads\": %d, \"seconds\": %.6g, \"speedup_vs_1\": "
            "%.4g%s, \"bitwise_equal_to_serial\": %s}%s\n",
            counts[ti], best[ti], best[0] / best[ti], extras.c_str(),
            bitwise_ok[ti] ? "true" : "false",
            ti + 1 < counts.size() ? "," : "");
        std::fprintf(
            stderr, "    threads=%d  %.4fs  vs_dense=%.2fx  %s\n", counts[ti],
            best[ti],
            row.name == "topk_dense" ? 1.0 : dense_best[ti] / best[ti],
            bitwise_ok[ti] ? "bitwise-ok" : "MISMATCH");
        if (!bitwise_ok[ti]) {
          std::fclose(f);
          std::fprintf(stderr, "determinism violation in %s\n",
                       row.name.c_str());
          return 1;
        }
      }
      std::fprintf(f, "    ]}");
      if (row.recall >= 0) {
        std::fprintf(stderr, "    recall@20=%.4f exact_match=%s\n",
                     row.recall, row.exact_match == 1 ? "true" : "false");
      }
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  SetNumThreads(0);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace graphaug

int main(int argc, char** argv) {
  graphaug::FlagParser flags(argc, argv);
  if (flags.Has("threads")) {
    graphaug::SetNumThreads(static_cast<int>(flags.GetInt("threads", 0)));
  }
  return graphaug::RunBench(flags);
}
