// Reproduces Table V: performance against skewed (sparse) data
// distributions — users bucketed by training-interaction count, with
// Recall@40 / NDCG@40 per group for LightGCN, DGCL, NCL, and GraphAug on
// two datasets.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "data/stats.h"

int main() {
  using namespace graphaug;
  bench::PrintBanner(
      "Table V — Performance Against Skewed Data Distribution",
      "Degree-group evaluation (users bucketed by #train interactions).");
  bench::BenchSettings settings = bench::BenchSettings::Default();
  const std::vector<int> bounds = {0, 10, 20, 30, 40, 1 << 30};
  const std::vector<std::string> labels = {"0-10", "10-20", "20-30", "30-40",
                                           "40+"};
  const std::vector<std::string> models = {"LightGCN", "DGCL", "NCL",
                                           "GraphAug"};

  for (const std::string& ds : {std::string("retailrocket-sim"),
                                std::string("gowalla-sim")}) {
    const SyntheticData& data = bench::GetDataset(ds);
    auto user_groups = GroupUsersByDegree(data.dataset, bounds);
    auto item_groups = GroupItemsByDegree(data.dataset, bounds);
    Evaluator evaluator(&data.dataset, {20, 40});
    std::printf("--- %s ---\n", ds.c_str());
    auto make_header = [&] {
      std::vector<std::string> h = {"Method", "Metric"};
      for (const auto& l : labels) h.push_back(l);
      return h;
    };
    Table user_table(make_header());
    Table item_table(make_header());

    for (const std::string& model_name : models) {
      std::unique_ptr<Recommender> model;
      if (model_name == "GraphAug") {
        model = std::make_unique<GraphAug>(
            &data.dataset, bench::MakeGraphAugConfig(settings, 0, ds));
      } else {
        model = CreateModel(model_name, &data.dataset, settings.model);
      }
      TrainOptions opts;
      opts.epochs = settings.epochs;
      opts.eval_every = settings.eval_every;
      TrainAndEvaluate(model.get(), evaluator, opts);
      model->Finalize();
      auto scorer = [&](const std::vector<int32_t>& users) {
        return model->ScoreUsers(users);
      };
      // User-side groups.
      std::vector<std::string> recall_row = {model_name, "Recall@40"};
      std::vector<std::string> ndcg_row = {model_name, "NDCG@40"};
      for (const auto& group : user_groups) {
        TopKMetrics m = evaluator.EvaluateUsers(scorer, group);
        const bool ok = !group.empty() && m.num_users > 0;
        recall_row.push_back(ok ? FormatDouble(m.RecallAt(40)) : "-");
        ndcg_row.push_back(ok ? FormatDouble(m.NdcgAt(40)) : "-");
      }
      user_table.AddRow(std::move(recall_row));
      user_table.AddRow(std::move(ndcg_row));
      // Item-side groups (relevance restricted to the popularity bucket).
      std::vector<std::string> irecall_row = {model_name, "Recall@40"};
      std::vector<std::string> indcg_row = {model_name, "NDCG@40"};
      for (const auto& group : item_groups) {
        if (group.empty()) {
          irecall_row.push_back("-");
          indcg_row.push_back("-");
          continue;
        }
        TopKMetrics m = evaluator.EvaluateItemGroup(scorer, group);
        const bool ok = m.num_users > 0;
        irecall_row.push_back(ok ? FormatDouble(m.RecallAt(40)) : "-");
        indcg_row.push_back(ok ? FormatDouble(m.NdcgAt(40)) : "-");
      }
      item_table.AddRow(std::move(irecall_row));
      item_table.AddRow(std::move(indcg_row));
    }
    std::printf("User-side degree groups:\n%s\n",
                user_table.ToString().c_str());
    std::printf("Item-side popularity groups:\n%s\n",
                item_table.ToString().c_str());
  }
  std::printf("Paper shape to verify: GraphAug wins in every group, with\n"
              "the largest margins for low-degree (sparse) users.\n");
  return 0;
}
