// Reproduces Figure 4: convergence behaviour on the Gowalla stand-in —
// per-epoch Recall@20 / NDCG@20 traces for the four contrastive models
// (DGCL, HCCF, NCL, GraphAug).

#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "common/table.h"

int main() {
  using namespace graphaug;
  bench::PrintBanner("Figure 4 — Model Convergence (gowalla-sim)",
                     "Recall@20 per evaluation epoch for CL-based models.");
  bench::BenchSettings settings = bench::BenchSettings::Default();
  settings.eval_every = 2;  // dense traces for the curve

  const std::vector<std::string> models = {"DGCL", "HCCF", "NCL",
                                           "GraphAug"};
  std::map<std::string, TrainResult> results;
  std::vector<int> epochs;
  for (const std::string& m : models) {
    bench::RunResult r = bench::RunModel(m, "gowalla-sim", settings);
    results[m] = r.train;
    if (epochs.empty()) {
      for (const EpochRecord& rec : r.train.history) {
        epochs.push_back(rec.epoch);
      }
    }
  }

  std::vector<std::string> header = {"Epoch"};
  for (const auto& m : models) header.push_back(m + " R@20");
  Table t(header);
  for (size_t i = 0; i < epochs.size(); ++i) {
    std::vector<std::string> row = {std::to_string(epochs[i])};
    for (const auto& m : models) {
      const auto& hist = results[m].history;
      row.push_back(i < hist.size() ? FormatDouble(hist[i].recall20) : "-");
    }
    t.AddRow(std::move(row));
  }
  std::printf("%s\n", t.ToString().c_str());
  for (const auto& m : models) {
    std::printf("%-9s best R@20 %.4f at epoch %d (%.1fs)\n", m.c_str(),
                results[m].best_recall20, results[m].best_epoch,
                results[m].train_seconds);
  }
  std::printf("\nPaper shape to verify: GraphAug converges fastest to the\n"
              "highest recall; DGCL is the slowest to converge.\n");
  return 0;
}
