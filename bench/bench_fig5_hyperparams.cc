// Reproduces Figure 5: hyperparameter sensitivity of GraphAug on the
// Gowalla stand-in — GIB strength β₁, InfoNCE temperature τ, and
// embedding dimensionality d.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"

int main() {
  using namespace graphaug;
  bench::PrintBanner("Figure 5 — Hyperparameter Study (gowalla-sim)",
                     "Sweeps of beta1 (GIB), tau (InfoNCE), and dim d.");
  bench::BenchSettings settings = bench::BenchSettings::Default();
  const SyntheticData& data = bench::GetDataset("gowalla-sim");

  auto run = [&](GraphAugConfig cfg) {
    GraphAug model(&data.dataset, cfg);
    return bench::RunRecommender(&model, data.dataset, settings);
  };

  {
    // The paper sweeps beta1 in [1e-6, 1e-3]; two larger points are added
    // to expose where the KL compression bound starts to bite (with the
    // prediction bound carrying label signal at O(1), the compression
    // term is insensitive in the paper's range — see EXPERIMENTS.md).
    Table t({"beta1 (GIB)", "Recall@20", "NDCG@20"});
    for (float b1 : {1e-6f, 1e-5f, 1e-4f, 1e-3f, 1e-1f, 1.f}) {
      GraphAugConfig cfg = bench::MakeGraphAugConfig(settings, 0, "gowalla-sim");
      cfg.augmentor.gib.beta1 = b1;
      bench::RunResult r = run(cfg);
      char label[32];
      std::snprintf(label, sizeof(label), "%.0e", b1);
      t.AddRow(label, {r.recall20, r.ndcg20});
    }
    std::printf("%s\n", t.ToString().c_str());
  }
  {
    Table t({"tau", "Recall@20", "NDCG@20"});
    for (float tau : {0.1f, 0.3f, 0.5f, 0.7f, 0.9f}) {
      GraphAugConfig cfg = bench::MakeGraphAugConfig(settings, 0, "gowalla-sim");
      cfg.temperature = tau;
      bench::RunResult r = run(cfg);
      t.AddRow(FormatDouble(tau, 1), {r.recall20, r.ndcg20});
    }
    std::printf("%s\n", t.ToString().c_str());
  }
  {
    Table t({"dim d", "Recall@20", "NDCG@20"});
    for (int d : {8, 16, 32, 64}) {
      GraphAugConfig cfg = bench::MakeGraphAugConfig(settings, 0, "gowalla-sim");
      cfg.dim = d;
      bench::RunResult r = run(cfg);
      t.AddRow(std::to_string(d), {r.recall20, r.ndcg20});
    }
    std::printf("%s\n", t.ToString().c_str());
  }
  std::printf("Paper shape to verify: β₁ best around 1e-5; performance\n"
              "grows with d and saturates by d=64.\n");
  return 0;
}
