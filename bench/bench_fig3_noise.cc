// Reproduces Figure 3: robustness against interaction noise — random
// fake user-item edges are injected into the training graph at ratios
// {0.05, 0.10, 0.15, 0.20, 0.25} and the *relative* performance
// degradation of GraphAug, NCL, and LightGCN is compared.

#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "common/table.h"
#include "graph/corruption.h"

int main() {
  using namespace graphaug;
  bench::PrintBanner(
      "Figure 3 — Robustness Against Interaction Noise",
      "Relative Recall@20 / NDCG@20 degradation vs injected-noise ratio.");
  bench::BenchSettings settings = bench::BenchSettings::Default();
  const SyntheticData& data = bench::GetDataset("gowalla-sim");
  const std::vector<std::string> models = {"GraphAug", "NCL", "LightGCN"};
  const std::vector<double> ratios = {0.05, 0.10, 0.15, 0.20, 0.25};

  // Baseline (clean) performance per model.
  std::map<std::string, bench::RunResult> clean;
  for (const std::string& m : models) {
    clean[m] = bench::RunModel(m, "gowalla-sim", settings);
  }

  Table t({"Model", "Noise", "R@20", "R@20 drop%", "N@20", "N@20 drop%"});
  for (double ratio : ratios) {
    // Corrupt the training graph (test set untouched).
    Rng rng(static_cast<uint64_t>(1000 * ratio) + 7);
    Dataset noisy = data.dataset;
    BipartiteGraph g = AddRandomEdges(data.dataset.TrainGraph(), ratio, rng);
    noisy.train_edges = g.edges();
    noisy.noise_flags.clear();
    for (const std::string& m : models) {
      ModelConfig cfg = settings.model;
      auto model = CreateModel(m, &noisy, cfg);
      bench::RunResult r = bench::RunRecommender(model.get(), noisy, settings);
      const double rdrop =
          100.0 * (clean[m].recall20 - r.recall20) / clean[m].recall20;
      const double ndrop =
          100.0 * (clean[m].ndcg20 - r.ndcg20) / clean[m].ndcg20;
      t.AddRow({m, FormatDouble(ratio, 2), FormatDouble(r.recall20),
                FormatDouble(rdrop, 1), FormatDouble(r.ndcg20),
                FormatDouble(ndrop, 1)});
    }
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf("Paper shape to verify: GraphAug's relative drop is smaller\n"
              "than NCL's and LightGCN's at every noise ratio.\n");
  return 0;
}
