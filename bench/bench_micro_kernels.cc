// google-benchmark micro-benchmarks for the compute kernels underlying
// every experiment: dense GEMM, SpMM (plain and edge-weighted), the
// mixhop encoder forward pass, BPR triplet sampling, and full-ranking
// evaluation throughput. These back the complexity discussion in
// §III-D.2 of the paper (mixhop cost ≈ vanilla GNN cost).

#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "core/mixhop_encoder.h"
#include "data/sampler.h"
#include "data/synthetic.h"
#include "models/propagation.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

const SyntheticData& BenchData() {
  static const SyntheticData* data =
      new SyntheticData(GeneratePreset("gowalla-sim"));
  return *data;
}

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Matrix a(n, n), b(n, n), out;
  InitNormal(&a, &rng);
  InitNormal(&b, &rng);
  for (auto _ : state) {
    Gemm(a, false, b, false, 1.f, 0.f, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Spmm(benchmark::State& state) {
  const int64_t d = state.range(0);
  BipartiteGraph g = BenchData().dataset.TrainGraph();
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  Rng rng(2);
  Matrix h(g.num_nodes(), d), out;
  InitNormal(&h, &rng);
  for (auto _ : state) {
    adj.matrix.Spmm(h, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * adj.matrix.nnz() * d);
}
BENCHMARK(BM_Spmm)->Arg(16)->Arg(32)->Arg(64);

void BM_EdgeWeightedSpmm(benchmark::State& state) {
  const int64_t d = state.range(0);
  BipartiteGraph g = BenchData().dataset.TrainGraph();
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  Rng rng(3);
  Matrix h(g.num_nodes(), d);
  InitNormal(&h, &rng);
  Matrix w(g.num_edges(), 1, 0.8f);
  for (auto _ : state) {
    Tape tape;
    Var out = ag::EdgeWeightedSpmm(&adj, ag::Constant(&tape, w),
                                   ag::Constant(&tape, h));
    benchmark::DoNotOptimize(out.value().data());
  }
  state.SetItemsProcessed(state.iterations() * adj.matrix.nnz() * d);
}
BENCHMARK(BM_EdgeWeightedSpmm)->Arg(16)->Arg(32);

void BM_MixhopForward(benchmark::State& state) {
  // §III-D.2: mixhop forward cost vs the vanilla propagation below.
  const int64_t d = 32;
  BipartiteGraph g = BenchData().dataset.TrainGraph();
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  Rng rng(4);
  ParamStore store;
  MixhopEncoder enc(&store, "mix", d, 2, {0, 1, 2}, 0.5f, &rng);
  Parameter* base = store.CreateNormal("emb", g.num_nodes(), d, &rng);
  for (auto _ : state) {
    Tape tape;
    Var out = enc.Encode(&tape, &adj.matrix, ag::Leaf(&tape, base));
    benchmark::DoNotOptimize(out.value().data());
  }
}
BENCHMARK(BM_MixhopForward);

void BM_LightGcnForward(benchmark::State& state) {
  const int64_t d = 32;
  BipartiteGraph g = BenchData().dataset.TrainGraph();
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(0.f);
  Rng rng(5);
  ParamStore store;
  Parameter* base = store.CreateNormal("emb", g.num_nodes(), d, &rng);
  for (auto _ : state) {
    Tape tape;
    Var out =
        LightGcnPropagate(&tape, &adj.matrix, ag::Leaf(&tape, base), 2);
    benchmark::DoNotOptimize(out.value().data());
  }
}
BENCHMARK(BM_LightGcnForward);

void BM_TripletSampling(benchmark::State& state) {
  BipartiteGraph g = BenchData().dataset.TrainGraph();
  TripletSampler sampler(&g);
  Rng rng(6);
  for (auto _ : state) {
    TripletBatch b = sampler.Sample(2048, &rng);
    benchmark::DoNotOptimize(b.users.data());
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_TripletSampling);

void BM_NormalizedAdjacencyBuild(benchmark::State& state) {
  BipartiteGraph g = BenchData().dataset.TrainGraph();
  for (auto _ : state) {
    NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
    benchmark::DoNotOptimize(adj.matrix.nnz());
  }
}
BENCHMARK(BM_NormalizedAdjacencyBuild);

}  // namespace
}  // namespace graphaug

BENCHMARK_MAIN();
