// Micro-benchmarks for the compute kernels underlying every experiment:
// dense GEMM, SpMM (plain and edge-weighted), the mixhop encoder forward
// pass, BPR triplet sampling, and full-ranking evaluation throughput.
// These back the complexity discussion in §III-D.2 of the paper (mixhop
// cost ≈ vanilla GNN cost).
//
// Two modes:
//   bench_micro_kernels                 # kernel scaling baseline: times
//       serial vs. parallel variants of each hot kernel at 1/2/4/N
//       threads, verifies bitwise determinism across thread counts, and
//       writes machine-readable BENCH_kernels.json for later PRs to
//       regress against. Flags: --json-out=FILE, --fast, --reps=N.
//   bench_micro_kernels --gbench ...    # the google-benchmark suite
//       (accepts the usual --benchmark_* flags).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "bench/bench_common.h"
#include "common/cpu_features.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "core/mixhop_encoder.h"
#include "data/sampler.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/propagation.h"
#include "obs/memory.h"
#include "obs/perf_counters.h"
#include "obs/profiler.h"
#include "tensor/init.h"
#include "tensor/kernel_dispatch.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

const SyntheticData& BenchData() {
  static const SyntheticData* data =
      new SyntheticData(GeneratePreset("gowalla-sim"));
  return *data;
}

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Matrix a(n, n), b(n, n), out;
  InitNormal(&a, &rng);
  InitNormal(&b, &rng);
  for (auto _ : state) {
    Gemm(a, false, b, false, 1.f, 0.f, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Spmm(benchmark::State& state) {
  const int64_t d = state.range(0);
  BipartiteGraph g = BenchData().dataset.TrainGraph();
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  Rng rng(2);
  Matrix h(g.num_nodes(), d), out;
  InitNormal(&h, &rng);
  for (auto _ : state) {
    adj.matrix.Spmm(h, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * adj.matrix.nnz() * d);
}
BENCHMARK(BM_Spmm)->Arg(16)->Arg(32)->Arg(64);

void BM_EdgeWeightedSpmm(benchmark::State& state) {
  const int64_t d = state.range(0);
  BipartiteGraph g = BenchData().dataset.TrainGraph();
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  Rng rng(3);
  Matrix h(g.num_nodes(), d);
  InitNormal(&h, &rng);
  Matrix w(g.num_edges(), 1, 0.8f);
  for (auto _ : state) {
    Tape tape;
    Var out = ag::EdgeWeightedSpmm(&adj, ag::Constant(&tape, w),
                                   ag::Constant(&tape, h));
    benchmark::DoNotOptimize(out.value().data());
  }
  state.SetItemsProcessed(state.iterations() * adj.matrix.nnz() * d);
}
BENCHMARK(BM_EdgeWeightedSpmm)->Arg(16)->Arg(32);

void BM_MixhopForward(benchmark::State& state) {
  // §III-D.2: mixhop forward cost vs the vanilla propagation below.
  const int64_t d = 32;
  BipartiteGraph g = BenchData().dataset.TrainGraph();
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
  Rng rng(4);
  ParamStore store;
  MixhopEncoder enc(&store, "mix", d, 2, {0, 1, 2}, 0.5f, &rng);
  Parameter* base = store.CreateNormal("emb", g.num_nodes(), d, &rng);
  for (auto _ : state) {
    Tape tape;
    Var out = enc.Encode(&tape, &adj.matrix, ag::Leaf(&tape, base));
    benchmark::DoNotOptimize(out.value().data());
  }
}
BENCHMARK(BM_MixhopForward);

void BM_LightGcnForward(benchmark::State& state) {
  const int64_t d = 32;
  BipartiteGraph g = BenchData().dataset.TrainGraph();
  NormalizedAdjacency adj = g.BuildNormalizedAdjacency(0.f);
  Rng rng(5);
  ParamStore store;
  Parameter* base = store.CreateNormal("emb", g.num_nodes(), d, &rng);
  for (auto _ : state) {
    Tape tape;
    Var out =
        LightGcnPropagate(&tape, &adj.matrix, ag::Leaf(&tape, base), 2);
    benchmark::DoNotOptimize(out.value().data());
  }
}
BENCHMARK(BM_LightGcnForward);

void BM_TripletSampling(benchmark::State& state) {
  BipartiteGraph g = BenchData().dataset.TrainGraph();
  TripletSampler sampler(&g);
  Rng rng(6);
  for (auto _ : state) {
    TripletBatch b = sampler.Sample(2048, &rng);
    benchmark::DoNotOptimize(b.users.data());
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_TripletSampling);

void BM_NormalizedAdjacencyBuild(benchmark::State& state) {
  BipartiteGraph g = BenchData().dataset.TrainGraph();
  for (auto _ : state) {
    NormalizedAdjacency adj = g.BuildNormalizedAdjacency(1.f);
    benchmark::DoNotOptimize(adj.matrix.nnz());
  }
}
BENCHMARK(BM_NormalizedAdjacencyBuild);

// ------------------------------------------------------------------------
// Kernel scaling baseline (BENCH_kernels.json)

/// One timed kernel: Run() executes the operation once and returns a
/// checksum of the output so determinism across thread counts can be
/// asserted (bitwise on the accumulated bytes of the result).
struct KernelCase {
  std::string name;
  std::string shape;
  double work = 0;  ///< approximate flops (or scored entries) per run
  std::function<Matrix()> run;
  /// When non-empty, a "notes" field is emitted after the runs array:
  /// the implied Amdahl serial fraction computed from the measured
  /// timings, followed by this attribution text (plain ASCII, no quotes).
  std::string attribution;
  /// Approximate bytes streamed per run (reads + writes). When > 0 each
  /// run additionally records "gbps" — the honest throughput axis for the
  /// bandwidth-bound sparse kernels, where GFLOP/s undersells saturation.
  double bytes = 0;
  /// Pins this case to the scalar dispatch table, giving every SIMD
  /// kernel a same-binary scalar reference row in the JSON.
  bool force_scalar = false;
};

/// Yelp-scale synthetic adjacency (the paper's largest benchmark: ~42.7K
/// users, ~26.8K items, ~182K interactions) built from a uniform random
/// pattern — kernel cost depends only on the pattern shape.
BipartiteGraph YelpScaleGraph() {
  constexpr int32_t kUsers = 42712, kItems = 26822;
  constexpr int64_t kEdges = 182357;
  Rng rng(99);
  std::vector<Edge> edges;
  edges.reserve(kEdges);
  for (int64_t i = 0; i < kEdges; ++i) {
    edges.push_back({static_cast<int32_t>(rng.UniformInt(uint64_t{kUsers})),
                     static_cast<int32_t>(rng.UniformInt(uint64_t{kItems}))});
  }
  return BipartiteGraph(kUsers, kItems, std::move(edges));
}

std::vector<KernelCase> BuildKernelCases(bool fast) {
  std::vector<KernelCase> cases;

  // Dense GEMM at GIB-augmenter scale: (2048 x 128) * (128 x 2048).
  {
    const int64_t m = fast ? 512 : 2048, k = 128, n = fast ? 512 : 2048;
    auto a = std::make_shared<Matrix>(m, k);
    auto b = std::make_shared<Matrix>(k, n);
    Rng rng(1);
    InitNormal(a.get(), &rng);
    InitNormal(b.get(), &rng);
    cases.push_back(
        {"gemm_nn", std::to_string(m) + "x" + std::to_string(k) + "x" +
                        std::to_string(n),
         2.0 * static_cast<double>(m) * k * n,
         [a, b] {
           Matrix out;
           Gemm(*a, false, *b, false, 1.f, 0.f, &out);
           return out;
         },
         ""});
    KernelCase scalar_twin = cases.back();
    scalar_twin.name = "gemm_nn_scalar";
    scalar_twin.force_scalar = true;
    cases.push_back(std::move(scalar_twin));
  }

  // SpMM / SpmmT over the Yelp-scale normalized adjacency, d = 64.
  {
    auto g = std::make_shared<BipartiteGraph>(
        fast ? BipartiteGraph(4000, 2500, [] {
          Rng rng(98);
          std::vector<Edge> es;
          for (int i = 0; i < 20000; ++i) {
            es.push_back({static_cast<int32_t>(rng.UniformInt(uint64_t{4000})),
                          static_cast<int32_t>(rng.UniformInt(uint64_t{2500}))});
          }
          return es;
        }())
             : YelpScaleGraph());
    auto adj = std::make_shared<NormalizedAdjacency>(
        g->BuildNormalizedAdjacency(1.f));
    const int64_t d = 64;
    auto h = std::make_shared<Matrix>(g->num_nodes(), d);
    Rng rng(2);
    InitNormal(h.get(), &rng);
    const std::string shape = std::to_string(adj->matrix.nnz()) + "nnz_x" +
                              std::to_string(d);
    const double work = 2.0 * static_cast<double>(adj->matrix.nnz()) * d;
    // Streamed-byte model shared by every sparse case: per nonzero one
    // value + one index (8B) plus a d-wide dense-row gather, and a
    // read-modify-write of every output row.
    const double sparse_bytes =
        static_cast<double>(adj->matrix.nnz()) * (8.0 + 4.0 * d) +
        8.0 * static_cast<double>(adj->matrix.rows()) * d;
    cases.push_back({"spmm", shape, work,
                     [adj, h] {
                       Matrix out;
                       adj->matrix.Spmm(*h, &out);
                       return out;
                     },
                     "", sparse_bytes});
    {
      KernelCase scalar_twin = cases.back();
      scalar_twin.name = "spmm_scalar";
      scalar_twin.force_scalar = true;
      cases.push_back(std::move(scalar_twin));
    }
    // SpmmT scaling matrix: the auto heuristic plus each variant pinned,
    // so the JSON records serial/permuted/tiled x thread-count timings
    // and regressions in any one path are attributable. The legacy
    // double-indirect gather stays as the baseline the mirror replaced.
    cases.push_back({"spmm_t", shape, work,
                     [adj, h] {
                       Matrix out;
                       adj->matrix.SpmmT(*h, &out);
                       return out;
                     },
                     "", sparse_bytes});
    {
      KernelCase scalar_twin = cases.back();
      scalar_twin.name = "spmm_t_scalar";
      scalar_twin.force_scalar = true;
      cases.push_back(std::move(scalar_twin));
    }
    cases.push_back({"spmm_t_gather", shape, work,
                     [adj, h] {
                       Matrix out;
                       adj->matrix.SpmmT(*h, &out, /*accumulate=*/false,
                                         SpmmTVariant::kGather);
                       return out;
                     },
                     "", sparse_bytes});
    cases.push_back({"spmm_t_permuted", shape, work,
                     [adj, h] {
                       Matrix out;
                       adj->matrix.SpmmT(*h, &out, /*accumulate=*/false,
                                         SpmmTVariant::kPermuted);
                       return out;
                     },
                     "", sparse_bytes});
    cases.push_back({"spmm_t_tiled", shape, work,
                     [adj, h] {
                       Matrix out;
                       adj->matrix.SpmmT(*h, &out, /*accumulate=*/false,
                                         SpmmTVariant::kTiled);
                       return out;
                     },
                     "", sparse_bytes});

    // Adjacency power A^3 x through the warm-mirror cache — the mixhop
    // encoder's per-layer propagation pattern.
    auto power = std::make_shared<AdjacencyPowerCache>(&adj->matrix);
    cases.push_back({"spmm_power3", shape, 3.0 * work,
                     [adj, power, h] {
                       Matrix out;
                       power->Apply(3, *h, &out);
                       return out;
                     },
                     "", 3.0 * sparse_bytes});

    // Edge-weighted SpMM forward + backward (the GraphAug training step's
    // differentiable propagation), d = 32.
    const int64_t dw = 32;
    auto hw = std::make_shared<Matrix>(g->num_nodes(), dw);
    InitNormal(hw.get(), &rng);
    auto store = std::make_shared<ParamStore>();
    Parameter* wp = store->Create("w", g->num_edges(), 1);
    wp->value.Fill(0.8f);
    Parameter* hp = store->Create("h", g->num_nodes(), dw);
    hp->value = *hw;
    cases.push_back(
        {"edge_weighted_spmm_fwd_bwd",
         std::to_string(adj->matrix.nnz()) + "nnz_x" + std::to_string(dw),
         6.0 * static_cast<double>(adj->matrix.nnz()) * dw,
         [adj, store, wp, hp] {
           wp->ZeroGrad();
           hp->ZeroGrad();
           Tape tape;
           Var y = ag::EdgeWeightedSpmm(adj.get(), ag::Leaf(&tape, wp),
                                        ag::Leaf(&tape, hp));
           tape.Backward(ag::MeanAll(ag::Square(y)));
           Matrix out(1, 2);
           out[0] = static_cast<float>(SumAll(wp->grad));
           out[1] = static_cast<float>(SumAll(hp->grad));
           return out;
         },
         ""});
  }

  // Large elementwise op (8M elements).
  {
    const int64_t n = fast ? 1 << 20 : 1 << 23;
    auto a = std::make_shared<Matrix>(n, 1);
    auto b = std::make_shared<Matrix>(n, 1);
    Rng rng(3);
    InitNormal(a.get(), &rng);
    InitNormal(b.get(), &rng);
    cases.push_back({"elementwise_add", std::to_string(n),
                     static_cast<double>(n),
                     [a, b] { return Add(*a, *b); }, "",
                     12.0 * static_cast<double>(n)});
  }

  // Full-ranking evaluation: score + mask + top-K + metrics over every
  // evaluable user of a mid-sized synthetic dataset.
  {
    SyntheticConfig cfg;
    cfg.num_users = fast ? 800 : 3000;
    cfg.num_items = fast ? 600 : 1500;
    cfg.mean_user_degree = 16.0;
    cfg.seed = 21;
    auto data = std::make_shared<SyntheticData>(GenerateSynthetic(cfg));
    auto evaluator = std::make_shared<Evaluator>(&data->dataset,
                                                 std::vector<int>{20, 40});
    const int64_t d = 32;
    auto ue = std::make_shared<Matrix>(data->dataset.num_users, d);
    auto ie = std::make_shared<Matrix>(data->dataset.num_items, d);
    Rng rng(4);
    InitNormal(ue.get(), &rng);
    InitNormal(ie.get(), &rng);
    const double work = 2.0 * static_cast<double>(data->dataset.num_users) *
                        data->dataset.num_items * d;
    cases.push_back(
        {"eval_full_ranking",
         std::to_string(data->dataset.num_users) + "users_x" +
             std::to_string(data->dataset.num_items) + "items",
         work, [data, evaluator, ue, ie] {  // data keeps the Dataset alive
           const TopKMetrics m = evaluator->Evaluate(
               [&](const std::vector<int32_t>& users) {
                 Matrix batch = GatherRows(*ue, users);
                 Matrix scores;
                 Gemm(batch, false, *ie, true, 1.f, 0.f, &scores);
                 return scores;
               });
           Matrix out(1, 2);
           out[0] = static_cast<float>(m.recall[0]);
           out[1] = static_cast<float>(m.ndcg[1]);
           return out;
         },
         ""});
  }
  return cases;
}

int RunKernelBaseline(const FlagParser& flags) {
  const std::string json_path =
      flags.GetString("json-out", "BENCH_kernels.json");
  const bool fast = flags.GetBool("fast", false);
  const int reps = static_cast<int>(flags.GetInt("reps", 3));
  // --profile-out=B samples every kernel case (all threads) into
  // B.folded / B.json — the flamegraph answers "which loop inside gemm_nn
  // ate the time", which the per-case wall numbers cannot.
  const std::string profile_out = flags.GetString("profile-out", "");
  if (!profile_out.empty() &&
      !obs::StartProfiler(static_cast<int>(
          flags.GetInt("profile-hz", obs::kDefaultProfileHz)))) {
    std::fprintf(stderr,
                 "warning: sampling profiler unavailable; %s.folded will be "
                 "empty\n",
                 profile_out.c_str());
  }

  // Thread counts: 1, 2, 4, and hardware concurrency when it adds a new
  // point. (On narrow machines the higher counts still run — the runtime
  // oversubscribes — so the determinism check always covers them.)
  SetNumThreads(0);
  const int hw = NumThreads();
  std::vector<int> counts = {1, 2, 4};
  if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
    counts.push_back(hw);
  }
  std::sort(counts.begin(), counts.end());

  // Open the output before the (expensive) input construction so an
  // unwritable path fails immediately.
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::vector<KernelCase> cases = BuildKernelCases(fast);
  const bench::BenchEnv env = bench::GetBenchEnv();
  // Probe perf_event_open once up front so the header can record whether
  // the IPC / cache-miss columns below are populated or skipped (CI
  // containers commonly deny perf).
  obs::PerfCounterGroup perf;
  if (perf.Begin()) perf.End();
  std::fprintf(f, "{\n  \"generated_by\": \"bench_micro_kernels\",\n");
  std::fprintf(f, "  \"fast_mode\": %s,\n", fast ? "true" : "false");
  std::fprintf(f, "  \"perf_counters\": \"%s\",\n",
               obs::PerfCountersAvailable() ? "available" : "unavailable");
  // hardware_concurrency is the machine's real core count; threads_resolved
  // is the pool width the sweep actually used (GRAPHAUG_NUM_THREADS can
  // narrow it, which used to masquerade as the hardware value here).
  std::fprintf(f, "%s", bench::BenchEnvJsonFields(env, 2).c_str());
  std::fprintf(f, "  \"simd_level\": \"%s\",\n",
               SimdLevelName(ActiveSimdLevel()));
  std::fprintf(f, "  \"threads_resolved\": %d,\n  \"kernels\": [\n", hw);

  for (size_t ci = 0; ci < cases.size(); ++ci) {
    const KernelCase& kc = cases[ci];
    // Pin the dispatch mode for the whole case (warmup + timed reps), then
    // fall back to the probe default for the next one.
    ForceScalarKernels(kc.force_scalar);
    const char* simd_name = simd::ActiveKernels().name;
    std::fprintf(stderr, "[%zu/%zu] %s (%s, %s)\n", ci + 1, cases.size(),
                 kc.name.c_str(), kc.shape.c_str(), simd_name);
    Matrix reference;
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"shape\": \"%s\", \"work\": %.6g, "
                 "\"simd\": \"%s\",\n"
                 "     \"runs\": [\n",
                 kc.name.c_str(), kc.shape.c_str(), kc.work, simd_name);
    // Warmup pass per thread count: populates lazy caches and records the
    // outputs for the determinism check. Timed reps are then interleaved
    // across thread counts (rep 0 at every width, then rep 1, ...) so
    // slow machine-wide drift — frequency scaling, page-cache state —
    // biases every width equally instead of penalizing whichever count
    // happens to run last.
    obs::ResetPeakBytes();  // per-case tensor high-water mark
    std::vector<bool> bitwise_ok(counts.size(), true);
    for (size_t ti = 0; ti < counts.size(); ++ti) {
      SetNumThreads(counts[ti]);
      Matrix out = kc.run();
      if (ti == 0) {
        reference = out;
      } else {
        bitwise_ok[ti] =
            reference.SameShape(out) &&
            std::memcmp(reference.data(), out.data(),
                        sizeof(float) * static_cast<size_t>(out.size())) == 0;
      }
    }
    // Counter group around the serial reps only: group reads cover the
    // calling thread, so IPC / miss rates are meaningful exactly at
    // threads=1 (pool workers would go uncounted at higher widths).
    std::vector<double> best_seconds(counts.size(), 1e300);
    obs::PerfCounts best_counts;
    for (int r = 0; r < reps; ++r) {
      for (size_t ti = 0; ti < counts.size(); ++ti) {
        SetNumThreads(counts[ti]);
        const bool counting = counts[ti] == 1 && perf.Begin();
        Stopwatch sw;
        Matrix out = kc.run();
        const double seconds = sw.ElapsedSeconds();
        obs::PerfCounts pc;
        if (counting) pc = perf.End();
        if (seconds < best_seconds[ti]) {
          best_seconds[ti] = seconds;
          if (counts[ti] == 1) best_counts = pc;
        }
      }
    }
    const double serial_seconds = best_seconds[0];
    for (size_t ti = 0; ti < counts.size(); ++ti) {
      const double gflops = kc.work / best_seconds[ti] / 1e9;
      std::string gbps;
      if (kc.bytes > 0) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), ", \"gbps\": %.4g",
                      kc.bytes / best_seconds[ti] / 1e9);
        gbps = buf;
      }
      std::string perf_cols;
      if (counts[ti] == 1 && best_counts.valid) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      ", \"ipc\": %.3f, \"cache_miss_rate\": %.4f",
                      best_counts.Ipc(), best_counts.CacheMissRate());
        perf_cols = buf;
      }
      std::fprintf(
          f,
          "      {\"threads\": %d, \"seconds\": %.6g, \"speedup_vs_1\": "
          "%.4g, \"gflops\": %.4g%s%s, \"bitwise_equal_to_serial\": %s}%s\n",
          counts[ti], best_seconds[ti], serial_seconds / best_seconds[ti],
          gflops, gbps.c_str(), perf_cols.c_str(),
          bitwise_ok[ti] ? "true" : "false",
          ti + 1 < counts.size() ? "," : "");
      std::fprintf(stderr,
                   "    threads=%d  %.4fs  speedup=%.2fx  %.2f GFLOP/s  %s\n",
                   counts[ti], best_seconds[ti],
                   serial_seconds / best_seconds[ti], gflops,
                   bitwise_ok[ti] ? "bitwise-ok" : "MISMATCH");
      if (!bitwise_ok[ti]) {
        std::fclose(f);
        std::fprintf(stderr, "determinism violation in %s\n", kc.name.c_str());
        return 1;
      }
    }
    std::fprintf(f, "    ]");
    // Tensor high-water mark across the case's warmup + reps (0 under
    // GRAPHAUG_NO_OBS, where the accounting hooks compile away).
    std::fprintf(f, ",\n     \"peak_mem_mb\": %.2f",
                 static_cast<double>(obs::PeakBytes()) / (1024.0 * 1024.0));
    if (!kc.attribution.empty()) {
      // Implied Amdahl serial fraction from the measured timings:
      //   s(p) = (T_p/T_1 - 1/p) / (1 - 1/p)
      // solved from T_p = T_1 * (s + (1 - s)/p) at each thread count.
      std::string fractions;
      for (size_t ti = 1; ti < counts.size(); ++ti) {
        const double p = counts[ti];
        const double s =
            (best_seconds[ti] / serial_seconds - 1.0 / p) / (1.0 - 1.0 / p);
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%ss(%d)=%.2f",
                      ti > 1 ? ", " : "", counts[ti], s);
        fractions += buf;
      }
      std::fprintf(f,
                   ",\n     \"notes\": \"implied Amdahl serial fraction "
                   "s(p) = (T_p/T_1 - 1/p) / (1 - 1/p): %s. %s\"",
                   fractions.c_str(), kc.attribution.c_str());
    }
    std::fprintf(f, "}%s\n", ci + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  ForceScalarKernels(false);
  SetNumThreads(0);
  if (!profile_out.empty()) {
    obs::StopProfiler();
    const std::string folded = profile_out + ".folded";
    const std::string json = profile_out + ".json";
    if (obs::WriteProfileFolded(folded) && obs::WriteProfileJson(json)) {
      const obs::ProfileSummary prof = obs::SummarizeProfile();
      std::fprintf(stderr,
                   "profile written to %s / %s (%lld samples, %.1f%% "
                   "attributed)\n",
                   folded.c_str(), json.c_str(),
                   static_cast<long long>(prof.samples),
                   100.0 * prof.attributed_frac);
    } else {
      std::fprintf(stderr, "cannot write profile %s\n", profile_out.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace graphaug

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);  // strips --benchmark_* flags
  graphaug::FlagParser flags(argc, argv);
  if (flags.Has("threads")) {
    graphaug::SetNumThreads(static_cast<int>(flags.GetInt("threads", 0)));
  }
  if (flags.GetBool("gbench", false)) {
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    return 0;
  }
  return graphaug::RunKernelBaseline(flags);
}
