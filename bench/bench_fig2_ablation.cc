// Reproduces Figure 2: component-wise ablation of GraphAug — the full
// model vs "w/o Mixhop" (standard GCN encoder), "w/o GIB" (no information
// bottleneck regularization), and "w/o CL" (no contrastive term; GIB
// regularizes BPR directly) across all three datasets.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"

int main() {
  using namespace graphaug;
  bench::PrintBanner("Figure 2 — Ablation of GraphAug sub-modules",
                     "Full model vs w/o Mixhop / w/o GIB / w/o CL.");
  bench::BenchSettings settings = bench::BenchSettings::Default();

  struct Variant {
    const char* name;
    bool mixhop, gib, cl;
  };
  const Variant variants[] = {
      {"GraphAug", true, true, true},
      {"w/o Mixhop", false, true, true},
      {"w/o GIB", true, false, true},
      {"w/o CL", true, true, false},
  };

  for (const std::string& ds : bench::BenchDatasets()) {
    const SyntheticData& data = bench::GetDataset(ds);
    std::printf("--- %s ---\n", ds.c_str());
    Table t({"Variant", "Recall@20", "NDCG@20"});
    for (const Variant& v : variants) {
      GraphAugConfig cfg = bench::MakeGraphAugConfig(settings, 0, ds);
      cfg.use_mixhop = v.mixhop;
      cfg.use_gib = v.gib;
      cfg.use_cl = v.cl;
      GraphAug model(&data.dataset, cfg);
      bench::RunResult r =
          bench::RunRecommender(&model, data.dataset, settings);
      t.AddRow(v.name, {r.recall20, r.ndcg20});
    }
    std::printf("%s\n", t.ToString().c_str());
  }
  std::printf("Paper shape to verify: every ablated variant underperforms\n"
              "the full GraphAug on every dataset.\n");
  return 0;
}
