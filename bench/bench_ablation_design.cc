// Design-choice ablations beyond the paper's Fig. 2: quantifies the
// implementation decisions DESIGN.md calls out —
//   (a) mixhop parameterization: vector-gate vs full matrix transforms,
//   (b) per-layer activation on/off,
//   (c) hop set M ({0,1} vs {0,1,2} vs {0,1,2,3}),
//   (d) adjacency self-loop weight,
//   (e) structure-level Bernoulli-KL compression on/off,
// plus a cross-augmentor shoot-out: the same GraphAug backbone trained
// with each registered view-generation strategy (gib / edgedrop / advcl /
// autocf / lightgcl), reporting ranking quality, wall-clock, and the
// per-strategy augment/aux-loss time attributed by the obs counters.
//
// Flags:
//   --determinism-json=FILE  skip the tables; instead train every
//       augmentor at 1/2/7 threads on the tiny preset and write a
//       bench_compare-compatible JSON ("kernels": aug_<name>) whose
//       bitwise_equal_to_serial records whether the final parameters
//       match the single-thread run bit for bit. tools/bench_compare
//       fails on any violation regardless of --max-drop, which makes
//       this file the CI determinism gate for the augmentor family.
//   --epochs=N               override epochs for the determinism harness
//                            (default 3).
// Run on the Gowalla stand-in with the shared settings.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/table.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace graphaug {
namespace {

/// Snapshot of the obs counters that attribute augmentor wall-clock.
int64_t AugmentNsTotal(const std::string& augmentor) {
  auto& reg = obs::MetricsRegistry::Get();
  return reg.GetCounter("augment." + augmentor + ".augment_ns")->value() +
         reg.GetCounter("augment." + augmentor + ".aux_loss_ns")->value();
}

// ------------------------------------------------- determinism harness

struct DetRun {
  double seconds = 0;
  std::vector<float> params;  ///< all trainable values, concatenated
};

DetRun TrainForDeterminism(const std::string& augmentor, int threads,
                           int epochs) {
  SetNumThreads(threads);
  const SyntheticData& data = bench::GetDataset("tiny");
  bench::BenchSettings settings = bench::BenchSettings::Default();
  GraphAugConfig cfg = bench::MakeGraphAugConfig(settings, 0, "");
  cfg.augmentor.name = augmentor;
  GraphAug model(&data.dataset, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  for (int e = 0; e < epochs; ++e) {
    model.TrainEpoch();
    model.DecayLearningRate();
  }
  DetRun out;
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  for (const Parameter* p : model.params()->params()) {
    out.params.insert(out.params.end(), p->value.data(),
                      p->value.data() + p->value.size());
  }
  return out;
}

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

int WriteDeterminismJson(const std::string& path, int epochs) {
  const std::vector<int> thread_counts = {1, 2, 7};
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\n  \"generated_by\": \"bench_ablation_design\",\n";
  out << bench::BenchEnvJsonFields(bench::GetBenchEnv(), 2);
  out << "  \"kernels\": [\n";
  int violations = 0;
  const std::vector<std::string> names = AllAugmenterNames();
  for (size_t i = 0; i < names.size(); ++i) {
    const std::string& name = names[i];
    DetRun serial = TrainForDeterminism(name, 1, epochs);
    out << "    {\"name\": \"aug_" << name << "\", \"shape\": \"tiny_e"
        << epochs << "\", \"work\": " << serial.params.size()
        << ",\n     \"runs\": [\n";
    out << "      {\"threads\": 1, \"seconds\": " << serial.seconds
        << ", \"speedup_vs_1\": 1, \"bitwise_equal_to_serial\": true}";
    for (size_t t = 1; t < thread_counts.size(); ++t) {
      DetRun run = TrainForDeterminism(name, thread_counts[t], epochs);
      const bool bitwise = BitwiseEqual(serial.params, run.params);
      if (!bitwise) {
        ++violations;
        std::fprintf(stderr, "DETERMINISM VIOLATION: aug_%s at %d threads\n",
                     name.c_str(), thread_counts[t]);
      }
      out << ",\n      {\"threads\": " << thread_counts[t]
          << ", \"seconds\": " << run.seconds << ", \"speedup_vs_1\": "
          << (run.seconds > 0 ? serial.seconds / run.seconds : 0)
          << ", \"bitwise_equal_to_serial\": "
          << (bitwise ? "true" : "false") << "}";
    }
    out << "\n    ]}" << (i + 1 < names.size() ? "," : "") << "\n";
    std::printf("aug_%-10s %s\n", name.c_str(),
                violations == 0 ? "deterministic at 1/2/7 threads"
                                : "checked (see violations above)");
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%d violation(s))\n", path.c_str(), violations);
  return violations == 0 ? 0 : 1;
}

// ------------------------------------------------------------- tables

int RunTables() {
  bench::PrintBanner("Design ablations — GraphAug implementation choices",
                     "Encoder parameterization, hop set, self-loops, "
                     "structure KL, augmentor family (gowalla-sim).");
  bench::BenchSettings settings = bench::BenchSettings::Default();
  const SyntheticData& data = bench::GetDataset("gowalla-sim");

  auto run = [&](GraphAugConfig cfg) {
    GraphAug model(&data.dataset, cfg);
    return bench::RunRecommender(&model, data.dataset, settings);
  };
  auto base = [&] {
    return bench::MakeGraphAugConfig(settings, 0, "gowalla-sim");
  };

  Table t({"Variant", "Recall@20", "NDCG@20"});
  {
    bench::RunResult r = run(base());
    t.AddRow("default (vector gate, act, M={0,1,2})",
             {r.recall20, r.ndcg20});
  }
  {
    GraphAugConfig cfg = base();
    cfg.mixhop_mode = MixhopMode::kMatrixTransform;
    bench::RunResult r = run(cfg);
    t.AddRow("matrix transforms (Eq. 12 literal)", {r.recall20, r.ndcg20});
  }
  {
    GraphAugConfig cfg = base();
    cfg.mixhop_activation = false;
    bench::RunResult r = run(cfg);
    t.AddRow("no per-layer activation", {r.recall20, r.ndcg20});
  }
  for (std::vector<int> hops :
       {std::vector<int>{0, 1}, std::vector<int>{0, 1, 2, 3}}) {
    GraphAugConfig cfg = base();
    cfg.hops = hops;
    bench::RunResult r = run(cfg);
    std::string label = "hops {";
    for (size_t i = 0; i < hops.size(); ++i) {
      label += (i ? "," : "") + std::to_string(hops[i]);
    }
    label += "}";
    t.AddRow(label, {r.recall20, r.ndcg20});
  }
  {
    GraphAugConfig cfg = base();
    cfg.self_loop_weight = 1.f;
    bench::RunResult r = run(cfg);
    t.AddRow("self-loops in adjacency", {r.recall20, r.ndcg20});
  }
  {
    GraphAugConfig cfg = base();
    cfg.augmentor.gib.structure_kl_weight = 0.3f;
    bench::RunResult r = run(cfg);
    t.AddRow("structure Bernoulli-KL (w=0.3)", {r.recall20, r.ndcg20});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf("Expected: the default is at or near the top; matrix\n"
              "transforms underfit at this scale; hop sets beyond {0,1,2}\n"
              "give diminishing returns.\n\n");

  // Cross-augmentor shoot-out: same backbone + objective, the view
  // strategy is the only variable. Timing columns come from the obs
  // counters GraphAug::BuildLoss maintains around Augment/AuxLoss, so
  // they measure strategy overhead, not the shared encoder.
  obs::SetEnabled(true);
  Table shootout({"Augmentor", "Recall@20", "NDCG@20", "train s",
                  "augment ms"});
  for (const std::string& name : AllAugmenterNames()) {
    GraphAugConfig cfg = base();
    cfg.augmentor.name = name;
    const int64_t ns0 = AugmentNsTotal(name);
    bench::RunResult r = run(cfg);
    const double augment_ms =
        static_cast<double>(AugmentNsTotal(name) - ns0) / 1e6;
    shootout.AddRow({name, FormatDouble(r.recall20), FormatDouble(r.ndcg20),
                     FormatDouble(r.train.train_seconds, 1),
                     FormatDouble(augment_ms, 1)});
  }
  std::printf("%s\n", shootout.ToString().c_str());
  std::printf("Shoot-out notes: gib carries the paper's denoising bound;\n"
              "edgedrop is the SGL baseline; advcl pays an inner ascent\n"
              "per batch; autocf adds masked reconstruction; lightgcl\n"
              "front-loads a randomized SVD at init. augment ms is 0 in\n"
              "GRAPHAUG_NO_OBS builds (counters compiled out).\n");
  return 0;
}

}  // namespace
}  // namespace graphaug

int main(int argc, char** argv) {
  using namespace graphaug;
  FlagParser flags(argc, argv);
  const std::string det_json = flags.GetString("determinism-json", "");
  if (!det_json.empty()) {
    return WriteDeterminismJson(
        det_json, static_cast<int>(flags.GetInt("epochs", 3)));
  }
  return RunTables();
}
