// Design-choice ablations beyond the paper's Fig. 2: quantifies the
// implementation decisions DESIGN.md calls out —
//   (a) mixhop parameterization: vector-gate vs full matrix transforms,
//   (b) per-layer activation on/off,
//   (c) hop set M ({0,1} vs {0,1,2} vs {0,1,2,3}),
//   (d) adjacency self-loop weight,
//   (e) structure-level Bernoulli-KL compression on/off.
// Run on the Gowalla stand-in with the shared settings.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"

int main() {
  using namespace graphaug;
  bench::PrintBanner("Design ablations — GraphAug implementation choices",
                     "Encoder parameterization, hop set, self-loops, "
                     "structure KL (gowalla-sim).");
  bench::BenchSettings settings = bench::BenchSettings::Default();
  const SyntheticData& data = bench::GetDataset("gowalla-sim");

  auto run = [&](GraphAugConfig cfg) {
    GraphAug model(&data.dataset, cfg);
    return bench::RunRecommender(&model, data.dataset, settings);
  };
  auto base = [&] {
    return bench::MakeGraphAugConfig(settings, 0, "gowalla-sim");
  };

  Table t({"Variant", "Recall@20", "NDCG@20"});
  {
    bench::RunResult r = run(base());
    t.AddRow("default (vector gate, act, M={0,1,2})",
             {r.recall20, r.ndcg20});
  }
  {
    GraphAugConfig cfg = base();
    cfg.mixhop_mode = MixhopMode::kMatrixTransform;
    bench::RunResult r = run(cfg);
    t.AddRow("matrix transforms (Eq. 12 literal)", {r.recall20, r.ndcg20});
  }
  {
    GraphAugConfig cfg = base();
    cfg.mixhop_activation = false;
    bench::RunResult r = run(cfg);
    t.AddRow("no per-layer activation", {r.recall20, r.ndcg20});
  }
  for (std::vector<int> hops :
       {std::vector<int>{0, 1}, std::vector<int>{0, 1, 2, 3}}) {
    GraphAugConfig cfg = base();
    cfg.hops = hops;
    bench::RunResult r = run(cfg);
    std::string label = "hops {";
    for (size_t i = 0; i < hops.size(); ++i) {
      label += (i ? "," : "") + std::to_string(hops[i]);
    }
    label += "}";
    t.AddRow(label, {r.recall20, r.ndcg20});
  }
  {
    GraphAugConfig cfg = base();
    cfg.self_loop_weight = 1.f;
    bench::RunResult r = run(cfg);
    t.AddRow("self-loops in adjacency", {r.recall20, r.ndcg20});
  }
  {
    GraphAugConfig cfg = base();
    cfg.structure_kl_weight = 0.3f;
    bench::RunResult r = run(cfg);
    t.AddRow("structure Bernoulli-KL (w=0.3)", {r.recall20, r.ndcg20});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf("Expected: the default is at or near the top; matrix\n"
              "transforms underfit at this scale; hop sets beyond {0,1,2}\n"
              "give diminishing returns.\n");
  return 0;
}
