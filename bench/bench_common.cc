#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/env.h"

namespace graphaug::bench {

BenchSettings BenchSettings::Default() {
  BenchSettings s;
  s.model.dim = 32;
  s.model.num_layers = 2;
  s.model.learning_rate = 5e-3f;
  s.model.lr_decay = 0.96f;
  s.model.weight_decay = 1e-6f;
  s.model.batch_size = 2048;
  s.model.batches_per_epoch = 6;
  s.model.temperature = 0.9f;
  s.model.ssl_weight = 0.1f;
  s.model.contrast_batch = 256;
  s.model.seed = 123;
  const char* fast = std::getenv("GRAPHAUG_BENCH_FAST");
  if (fast != nullptr && fast[0] == '1') {
    s.fast = true;
    s.epochs = 6;
    s.eval_every = 3;
    s.model.batches_per_epoch = 3;
  }
  return s;
}

std::vector<std::string> BenchDatasets() {
  return {"gowalla-sim", "retailrocket-sim", "amazon-sim"};
}

const SyntheticData& GetDataset(const std::string& name) {
  static std::map<std::string, SyntheticData>* cache =
      new std::map<std::string, SyntheticData>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    it = cache->emplace(name, GeneratePreset(name)).first;
  }
  return it->second;
}

RunResult RunRecommender(Recommender* model, const Dataset& dataset,
                         const BenchSettings& settings) {
  Evaluator evaluator(&dataset, {20, 40});
  TrainOptions opts;
  opts.epochs = settings.epochs;
  opts.eval_every = settings.eval_every;
  RunResult r;
  r.train = TrainAndEvaluate(model, evaluator, opts);
  const TopKMetrics& m = r.train.final_metrics;
  if (!m.ks.empty()) {
    r.recall20 = m.RecallAt(20);
    r.recall40 = m.RecallAt(40);
    r.ndcg20 = m.NdcgAt(20);
    r.ndcg40 = m.NdcgAt(40);
  }
  return r;
}

RunResult RunModel(const std::string& model_name,
                   const std::string& dataset_name,
                   const BenchSettings& settings, uint64_t seed) {
  const SyntheticData& data = GetDataset(dataset_name);
  if (model_name == "GraphAug") {
    // Route through the per-dataset tuned configuration.
    GraphAug model(&data.dataset,
                   MakeGraphAugConfig(settings, seed, dataset_name));
    return RunRecommender(&model, data.dataset, settings);
  }
  ModelConfig cfg = settings.model;
  if (seed != 0) cfg.seed = seed;
  auto model = CreateModel(model_name, &data.dataset, cfg);
  return RunRecommender(model.get(), data.dataset, settings);
}

GraphAugConfig MakeGraphAugConfig(const BenchSettings& settings,
                                  uint64_t seed,
                                  const std::string& dataset_name) {
  GraphAugConfig cfg;
  static_cast<ModelConfig&>(cfg) = settings.model;
  if (seed != 0) cfg.seed = seed;
  if (dataset_name == "gowalla-sim") {
    cfg.mixhop_activation = true;
    cfg.augmentor.gib.gib_pred_weight = 0.5f;
  } else if (!dataset_name.empty()) {
    // Sparse presets (retailrocket-sim / amazon-sim).
    cfg.mixhop_activation = false;
    cfg.augmentor.gib.gib_pred_weight = 1.0f;
  }
  return cfg;
}

BenchEnv GetBenchEnv() {
  const RuntimeEnv probed = ProbeRuntimeEnv();
  BenchEnv env;
  env.hardware_concurrency = probed.hardware_concurrency;
  env.git_sha = probed.git_sha;
  env.timestamp_utc = probed.timestamp_utc;
  return env;
}

std::string BenchEnvJsonFields(const BenchEnv& env, int indent) {
  const std::string pad(static_cast<size_t>(indent), ' ');
  std::string out;
  out += pad + "\"hardware_concurrency\": " +
         std::to_string(env.hardware_concurrency) + ",\n";
  out += pad + "\"git_sha\": \"" + env.git_sha + "\",\n";
  out += pad + "\"timestamp_utc\": \"" + env.timestamp_utc + "\",\n";
  return out;
}

void PrintBanner(const std::string& experiment,
                 const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("Datasets are synthetic stand-ins for the paper's benchmarks\n");
  std::printf("(see DESIGN.md §4); compare *shapes*, not absolute values.\n");
  std::printf("==============================================================\n\n");
}

}  // namespace graphaug::bench
