// Reproduces Figure 6 (case study): (i) does GraphAug learn implicit item
// dependencies? — measured as within-community vs cross-community item
// embedding similarity against the generator's hidden categories; and
// (ii) does it identify noisy interactions? — measured by the learned
// user-item similarity scores (the quantity the paper's figure annotates
// on each edge) of generator-injected noise interactions vs
// preference-aligned ones, plus per-user example panels. The augmentor's
// raw retention probabilities are reported as a secondary statistic.
//
// The case-study dataset is the Amazon stand-in with an elevated noise
// rate (25%) so that ground-truth noise is plentiful enough to measure.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "tensor/ops.h"

namespace {

double PairCos(const graphaug::Matrix& a, int64_t i, const graphaug::Matrix& b,
               int64_t j) {
  const float* x = a.row(i);
  const float* y = b.row(j);
  double dot = 0, nx = 0, ny = 0;
  for (int64_t c = 0; c < a.cols(); ++c) {
    dot += static_cast<double>(x[c]) * y[c];
    nx += static_cast<double>(x[c]) * x[c];
    ny += static_cast<double>(y[c]) * y[c];
  }
  return dot / (std::sqrt(nx * ny) + 1e-12);
}

}  // namespace

int main() {
  using namespace graphaug;
  bench::PrintBanner(
      "Figure 6 — Case Study: implicit item dependency & denoising",
      "Uses the synthetic generator's hidden categories / noise flags as "
      "ground truth (amazon-sim at 25% noise).");
  bench::BenchSettings settings = bench::BenchSettings::Default();
  SyntheticConfig scfg = PresetConfig("amazon-sim");
  scfg.noise_fraction = 0.25;
  scfg.name = "amazon-sim-noisy";
  SyntheticData data = GenerateSynthetic(scfg);

  GraphAugConfig cfg = bench::MakeGraphAugConfig(settings, 0, "amazon-sim");
  GraphAug model(&data.dataset, cfg);
  bench::RunResult rr = bench::RunRecommender(&model, data.dataset, settings);
  model.Finalize();
  std::printf("trained GraphAug: Recall@20 = %.4f\n\n", rr.recall20);

  // (i) Implicit item dependencies: cosine similarity of item embedding
  // pairs within the same hidden community vs across communities.
  const Matrix& items = model.item_embeddings();
  Rng rng(11);
  double within = 0, across = 0;
  int64_t nw = 0, na = 0;
  for (int trial = 0; trial < 40000; ++trial) {
    const int64_t a = static_cast<int64_t>(rng.UniformInt(items.rows()));
    const int64_t b = static_cast<int64_t>(rng.UniformInt(items.rows()));
    if (a == b) continue;
    const double cos = PairCos(items, a, items, b);
    if (data.item_community[a] == data.item_community[b]) {
      within += cos;
      ++nw;
    } else {
      across += cos;
      ++na;
    }
  }
  within /= std::max<int64_t>(1, nw);
  across /= std::max<int64_t>(1, na);
  std::printf("Implicit item dependency (hidden categories never shown to "
              "the model):\n");
  std::printf("  mean cos(item_i, item_j) same category     : %.4f\n",
              within);
  std::printf("  mean cos(item_i, item_j) different category: %.4f\n\n",
              across);

  // (ii) Denoising: the learned user-item similarity scores by
  // ground-truth flag — the paper's per-edge annotation.
  const Matrix& users = model.user_embeddings();
  BipartiteGraph g = data.dataset.TrainGraph();
  const auto& edges = g.edges();
  const auto& flags = data.dataset.noise_flags;
  std::vector<float> probs = model.EdgeProbabilities();
  double cos_clean = 0, cos_noise = 0, p_clean = 0, p_noise = 0;
  int64_t nc = 0, nn = 0;
  std::vector<double> edge_cos(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    edge_cos[i] = PairCos(users, edges[i].user, items, edges[i].item);
    if (flags[i]) {
      cos_noise += edge_cos[i];
      p_noise += probs[i];
      ++nn;
    } else {
      cos_clean += edge_cos[i];
      p_clean += probs[i];
      ++nc;
    }
  }
  std::printf("Denoising user-item interaction bias (n_clean=%lld, "
              "n_noise=%lld):\n",
              static_cast<long long>(nc), static_cast<long long>(nn));
  std::printf("  mean learned similarity, clean edges: %.4f\n",
              cos_clean / nc);
  std::printf("  mean learned similarity, noise edges: %.4f\n",
              cos_noise / nn);
  std::printf("  (secondary) mean retention p, clean : %.4f\n",
              p_clean / nc);
  std::printf("  (secondary) mean retention p, noise : %.4f\n\n",
              p_noise / nn);

  // Per-user panels: three users with both edge kinds, annotated with the
  // learned similarity scores (as the paper's figure does).
  Table t({"User", "Item", "GroundTruth", "Similarity", "Retention p"});
  int shown_users = 0;
  for (size_t i = 0; i < edges.size() && shown_users < 3;) {
    const int32_t u = edges[i].user;
    size_t j = i;
    bool has_noise = false, has_clean = false;
    while (j < edges.size() && edges[j].user == u) {
      (flags[j] ? has_noise : has_clean) = true;
      ++j;
    }
    if (has_noise && has_clean && (j - i) <= 10) {
      ++shown_users;
      for (size_t k = i; k < j; ++k) {
        t.AddRow({std::to_string(u), std::to_string(edges[k].item),
                  flags[k] ? "noise" : "clean", FormatDouble(edge_cos[k]),
                  FormatDouble(probs[k])});
      }
    }
    i = j;
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "Paper shape to verify: same-category items cluster in embedding\n"
      "space; noise edges carry lower learned similarity than clean ones\n"
      "for the same user.\n");
  return 0;
}
