// Reproduces Figure 7 (+ Table VII context): embedding-distribution
// comparison of LightGCN, NCL, and GraphAug — uniformity (Wang & Isola)
// and MAD statistics plus a 2-D PCA projection exported as CSV (the UMAP
// substitute; see DESIGN.md §4).

#include <cstdio>
#include <fstream>

#include "bench/bench_common.h"
#include "common/table.h"
#include "eval/embedding_stats.h"
#include "models/registry.h"

int main() {
  using namespace graphaug;
  bench::PrintBanner(
      "Figure 7 — Embedding Distribution Visualization",
      "Uniformity / MAD stats + 2-D PCA projections (CSV export).");
  bench::BenchSettings settings = bench::BenchSettings::Default();
  const SyntheticData& data = bench::GetDataset("gowalla-sim");

  Table t({"Model", "Uniformity (lower=more uniform)", "MAD", "Recall@20"});
  for (const std::string& name :
       {std::string("LightGCN"), std::string("NCL"),
        std::string("GraphAug")}) {
    auto model = CreateModel(name, &data.dataset, settings.model);
    bench::RunResult r =
        bench::RunRecommender(model.get(), data.dataset, settings);
    model->Finalize();
    Rng rng(5);
    const Matrix& users = model->user_embeddings();
    const double uniformity = ComputeUniformity(users, 20000, &rng);
    const double mad = ComputeMad(users, 20000, &rng);
    t.AddRow(name, {uniformity, mad, r.recall20});

    // Export the 2-D projection for plotting.
    Matrix proj = PcaProject2d(users, &rng);
    const std::string path = "/tmp/graphaug_fig7_" + name + ".csv";
    std::ofstream out(path);
    out << "x,y\n";
    for (int64_t i = 0; i < proj.rows(); ++i) {
      out << proj.at(i, 0) << "," << proj.at(i, 1) << "\n";
    }
    std::printf("wrote %s (%lld points)\n", path.c_str(),
                static_cast<long long>(proj.rows()));
  }
  std::printf("\n%s\n", t.ToString().c_str());
  std::printf("Paper shape to verify: GraphAug's user embeddings are the\n"
              "most uniform (lowest uniformity value, highest MAD);\n"
              "LightGCN's are the most clustered (over-smoothed).\n");
  return 0;
}
