// Quickstart: the minimal end-to-end GraphAug workflow.
//
//   1. Build (or load) an implicit-feedback dataset.
//   2. Configure and train the GraphAug recommender.
//   3. Evaluate with the paper's full-ranking protocol.
//   4. Produce top-K recommendations for a user.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/graphaug.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/trainer.h"

int main() {
  using namespace graphaug;

  // 1. A small synthetic dataset (use LoadDatasetTsv for real data).
  SyntheticData data = GeneratePreset("retailrocket-sim");
  std::printf("dataset: %s  users=%d items=%d train=%zu test=%zu\n",
              data.dataset.name.c_str(), data.dataset.num_users,
              data.dataset.num_items, data.dataset.train_edges.size(),
              data.dataset.test_edges.size());

  // 2. Configure GraphAug. The defaults mirror the paper (d=32, L=2,
  // hops {0,1,2}, tau=0.9, xi=0.2); only the schedule is set here.
  GraphAugConfig config;
  config.dim = 32;
  config.num_layers = 2;
  config.learning_rate = 5e-3f;
  config.batches_per_epoch = 6;
  config.seed = 42;
  GraphAug model(&data.dataset, config);

  // 3. Train with periodic evaluation; the trainer keeps the best
  // checkpoint's metrics.
  Evaluator evaluator(&data.dataset, {20, 40});
  TrainOptions options;
  options.epochs = 20;
  options.eval_every = 5;
  options.verbose = true;
  TrainResult result = TrainAndEvaluate(&model, evaluator, options);
  std::printf("\nbest Recall@20 = %.4f (epoch %d), NDCG@20 = %.4f\n",
              result.best_recall20, result.best_epoch,
              result.final_metrics.NdcgAt(20));

  // 4. Top-5 recommendations for user 0 (training items are already part
  // of the score matrix; a production system would mask them).
  model.Finalize();
  Matrix scores = model.ScoreUsers({0});
  std::printf("\ntop-5 items for user 0:\n");
  for (int rank = 0; rank < 5; ++rank) {
    int best = 0;
    for (int v = 1; v < data.dataset.num_items; ++v) {
      if (scores[v] > scores[best]) best = v;
    }
    std::printf("  #%d item %d (score %.3f)\n", rank + 1, best,
                scores[best]);
    scores[best] = -1e30f;
  }
  return 0;
}
