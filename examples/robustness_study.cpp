// Scenario: auditing a recommender before deployment. Production
// interaction logs degrade over time (bots, scraping artifacts,
// campaign-driven click bursts), so the team wants to know how gracefully
// each candidate model's quality decays as the training graph picks up
// fake interactions — the experiment behind the paper's Fig. 3, driven
// here entirely through the public API.
//
// Usage: ./build/examples/robustness_study [preset] [epochs]

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "graph/corruption.h"
#include "models/registry.h"
#include "models/trainer.h"

int main(int argc, char** argv) {
  using namespace graphaug;
  const std::string preset = argc > 1 ? argv[1] : "retailrocket-sim";
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 16;
  const std::vector<std::string> candidates = {"LightGCN", "SGL",
                                               "GraphAug"};
  const std::vector<double> corruption = {0.0, 0.1, 0.2};

  SyntheticData data = GeneratePreset(preset);
  Evaluator evaluator(&data.dataset, {20, 40});
  ModelConfig config;
  config.dim = 32;
  config.batches_per_epoch = 6;
  TrainOptions options;
  options.epochs = epochs;
  options.eval_every = std::max(1, epochs / 4);

  std::printf("robustness audit on %s (%d epochs per run)\n\n",
              preset.c_str(), epochs);
  Table report({"Model", "Noise", "Recall@20", "Kept vs clean"});
  for (const std::string& name : candidates) {
    double clean_recall = 0;
    for (double ratio : corruption) {
      // Corrupt only the training graph; the held-out test set stays
      // clean so the metric measures true preference recovery.
      Dataset corrupted = data.dataset;
      if (ratio > 0) {
        Rng rng(static_cast<uint64_t>(1000 * ratio) + 11);
        corrupted.train_edges =
            AddRandomEdges(data.dataset.TrainGraph(), ratio, rng).edges();
        corrupted.noise_flags.clear();
      }
      auto model = CreateModel(name, &corrupted, config);
      TrainResult r = TrainAndEvaluate(model.get(), evaluator, options);
      const double recall = r.final_metrics.RecallAt(20);
      if (ratio == 0) clean_recall = recall;
      report.AddRow({name, FormatDouble(ratio, 1), FormatDouble(recall),
                     clean_recall > 0
                         ? FormatDouble(100 * recall / clean_recall, 1) + "%"
                         : "-"});
      std::printf("finished %s @ noise %.1f\n", name.c_str(), ratio);
    }
  }
  std::printf("\n%s\n", report.ToString().c_str());
  std::printf("Reading: a robust model keeps 'Kept vs clean' close to "
              "100%% as noise grows.\n");
  return 0;
}
