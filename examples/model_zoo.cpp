// Scenario: model selection for a new recommendation workload. This
// example runs any subset of the library's 18 recommenders on a chosen
// dataset preset and prints a leaderboard — the typical "which model
// family fits my data" experiment.
//
// Usage:
//   ./build/examples/model_zoo [dataset] [epochs] [model ...]
//   ./build/examples/model_zoo retailrocket-sim 20 LightGCN SGL GraphAug

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/registry.h"
#include "models/trainer.h"

int main(int argc, char** argv) {
  using namespace graphaug;
  const std::string dataset_name = argc > 1 ? argv[1] : "retailrocket-sim";
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 16;
  std::vector<std::string> models;
  for (int i = 3; i < argc; ++i) models.push_back(argv[i]);
  if (models.empty()) {
    models = {"BiasMF", "LightGCN", "SGL", "NCL", "GraphAug"};
  }

  SyntheticData data = GeneratePreset(dataset_name);
  DatasetStats stats = ComputeStats(data.dataset);
  std::printf("dataset %s: %d users, %d items, %lld interactions "
              "(density %.2e)\n\n",
              dataset_name.c_str(), stats.num_users, stats.num_items,
              static_cast<long long>(stats.num_train), stats.density);

  ModelConfig config;
  config.dim = 32;
  config.batches_per_epoch = 6;
  Evaluator evaluator(&data.dataset, {20, 40});
  TrainOptions options;
  options.epochs = epochs;
  options.eval_every = std::max(1, epochs / 4);

  Table board({"Model", "Recall@20", "Recall@40", "NDCG@20", "NDCG@40",
               "Train s", "Params"});
  for (const std::string& name : models) {
    auto model = CreateModel(name, &data.dataset, config);
    TrainResult r = TrainAndEvaluate(model.get(), evaluator, options);
    board.AddRow({name, FormatDouble(r.final_metrics.RecallAt(20)),
                  FormatDouble(r.final_metrics.RecallAt(40)),
                  FormatDouble(r.final_metrics.NdcgAt(20)),
                  FormatDouble(r.final_metrics.NdcgAt(40)),
                  FormatDouble(r.train_seconds, 1),
                  std::to_string(model->params()->NumScalars())});
    std::printf("finished %s\n", name.c_str());
  }
  std::printf("\n%s", board.ToString().c_str());
  return 0;
}
