// Scenario: bringing your own interaction log. This example shows the
// full custom-data path of the library:
//
//   1. interactions arrive as raw (user, item) pairs (here: written to a
//      TSV first, the interchange format of data/io.h);
//   2. the file is loaded, split, and summarized;
//   3. GraphAug is trained and per-user recommendations plus the learned
//      item embeddings are exported for downstream use.
//
// Usage: ./build/examples/custom_dataset [path/to/interactions.tsv]
// Without an argument it writes and consumes a demo TSV in /tmp.

#include <cstdio>
#include <fstream>
#include <string>

#include "core/graphaug.h"
#include "data/io.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/trainer.h"

namespace {

/// Produces a demo TSV the way an ETL job would: raw interactions split
/// into train/test rows.
std::string WriteDemoTsv() {
  using namespace graphaug;
  SyntheticConfig cfg;
  cfg.name = "custom-demo";
  cfg.num_users = 300;
  cfg.num_items = 200;
  cfg.mean_user_degree = 10;
  cfg.seed = 99;
  SyntheticData data = GenerateSynthetic(cfg);
  const std::string path = "/tmp/graphaug_custom_demo.tsv";
  GA_CHECK(SaveDatasetTsv(data.dataset, path));
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace graphaug;
  const std::string path = argc > 1 ? argv[1] : WriteDemoTsv();

  // 2. Load + summarize.
  Dataset dataset;
  if (!LoadDatasetTsv(path, &dataset)) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  DatasetStats stats = ComputeStats(dataset);
  std::printf("loaded %s: %d users, %d items, %lld train / %lld test\n",
              path.c_str(), stats.num_users, stats.num_items,
              static_cast<long long>(stats.num_train),
              static_cast<long long>(stats.num_test));

  // 3. Train.
  GraphAugConfig config;
  config.dim = 32;
  config.batches_per_epoch = 6;
  GraphAug model(&dataset, config);
  Evaluator evaluator(&dataset, {20, 40});
  TrainOptions options;
  options.epochs = 16;
  options.eval_every = 4;
  TrainResult result = TrainAndEvaluate(&model, evaluator, options);
  std::printf("Recall@20 = %.4f, NDCG@20 = %.4f\n", result.best_recall20,
              result.final_metrics.NdcgAt(20));

  // 4. Export artifacts: top-10 recommendations for the first 20 users
  // and the item embedding table.
  model.Finalize();
  {
    std::ofstream recs("/tmp/graphaug_recommendations.tsv");
    recs << "user\trank\titem\tscore\n";
    for (int32_t u = 0; u < std::min(20, dataset.num_users); ++u) {
      Matrix scores = model.ScoreUsers({u});
      for (int rank = 0; rank < 10; ++rank) {
        int best = 0;
        for (int v = 1; v < dataset.num_items; ++v) {
          if (scores[v] > scores[best]) best = v;
        }
        recs << u << "\t" << rank + 1 << "\t" << best << "\t" << scores[best]
             << "\n";
        scores[best] = -1e30f;
      }
    }
  }
  {
    std::ofstream emb("/tmp/graphaug_item_embeddings.tsv");
    const Matrix& items = model.item_embeddings();
    for (int64_t v = 0; v < items.rows(); ++v) {
      emb << v;
      for (int64_t c = 0; c < items.cols(); ++c) {
        emb << "\t" << items.at(v, c);
      }
      emb << "\n";
    }
  }
  std::printf("wrote /tmp/graphaug_recommendations.tsv and "
              "/tmp/graphaug_item_embeddings.tsv\n");
  return 0;
}
