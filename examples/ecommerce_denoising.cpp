// Scenario: an e-commerce platform whose click logs are polluted by
// misclicks and bot traffic (the noisy-interaction setting motivating the
// paper). This example shows GraphAug acting as a *data denoiser*:
//
//   - a synthetic store with heavy interaction noise is generated;
//   - GraphAug is trained and its learned edge-retention probabilities
//     are compared against the generator's ground-truth noise labels;
//   - the probabilities are used to flag suspicious interactions, and the
//     flagging quality is reported as precision/recall of noise
//     detection.
//
// Build & run:  ./build/examples/ecommerce_denoising

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/graphaug.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/trainer.h"

int main() {
  using namespace graphaug;

  // A store with 25% preference-inconsistent interactions.
  SyntheticConfig scfg;
  scfg.name = "noisy-store";
  scfg.num_users = 600;
  scfg.num_items = 400;
  scfg.mean_user_degree = 14;
  scfg.noise_fraction = 0.25;
  scfg.seed = 2024;
  SyntheticData data = GenerateSynthetic(scfg);
  int64_t noisy = std::count(data.dataset.noise_flags.begin(),
                             data.dataset.noise_flags.end(), true);
  std::printf("noisy-store: %zu train interactions, %lld (%.0f%%) are "
              "ground-truth noise\n",
              data.dataset.train_edges.size(),
              static_cast<long long>(noisy),
              100.0 * noisy / data.dataset.train_edges.size());

  GraphAugConfig config;
  config.dim = 32;
  config.batches_per_epoch = 6;
  config.seed = 7;
  GraphAug model(&data.dataset, config);
  Evaluator evaluator(&data.dataset, {20, 40});
  TrainOptions options;
  options.epochs = 24;
  options.eval_every = 6;
  TrainResult result = TrainAndEvaluate(&model, evaluator, options);
  std::printf("trained: Recall@20 = %.4f\n\n", result.best_recall20);

  // Learned retention probability per interaction.
  std::vector<float> probs = model.EdgeProbabilities();
  const auto& flags = data.dataset.noise_flags;

  double clean_mean = 0, noise_mean = 0;
  int64_t nc = 0, nn = 0;
  for (size_t i = 0; i < probs.size(); ++i) {
    (flags[i] ? noise_mean : clean_mean) += probs[i];
    (flags[i] ? nn : nc)++;
  }
  clean_mean /= nc;
  noise_mean /= nn;
  std::printf("mean retention p: clean=%.4f  noise=%.4f\n", clean_mean,
              noise_mean);

  // Flag the lowest-probability interactions as suspicious and measure
  // detection quality at several flagging budgets.
  std::vector<size_t> order(probs.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return probs[a] < probs[b]; });
  std::printf("\nflagging the lowest-p interactions as noise:\n");
  std::printf("%-10s %-10s %-10s\n", "budget", "precision", "recall");
  for (double budget : {0.05, 0.10, 0.20, 0.30}) {
    const size_t k = static_cast<size_t>(budget * probs.size());
    int64_t hit = 0;
    for (size_t i = 0; i < k; ++i) hit += flags[order[i]];
    std::printf("%-10.0f%% %-10.3f %-10.3f\n", 100 * budget,
                static_cast<double>(hit) / k,
                static_cast<double>(hit) / nn);
  }
  std::printf("\n(random flagging would have precision ~%.3f at every "
              "budget)\n",
              static_cast<double>(nn) / probs.size());
  return 0;
}
