#ifndef GRAPHAUG_NN_LAYERS_H_
#define GRAPHAUG_NN_LAYERS_H_

#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/param.h"
#include "autograd/tape.h"

namespace graphaug {

/// Fully connected layer y = x W + b built on the autograd engine.
/// Parameters are owned by the ParamStore passed at construction.
class Linear {
 public:
  /// Creates W (in x out, Xavier) and b (1 x out, zeros) in `store`.
  Linear(ParamStore* store, const std::string& name, int64_t in, int64_t out,
         Rng* rng, bool bias = true);

  /// Applies the layer on a (n x in) input.
  Var Forward(Tape* tape, Var x) const;

  Parameter* weight() const { return weight_; }
  Parameter* bias() const { return bias_; }

 private:
  Parameter* weight_ = nullptr;
  Parameter* bias_ = nullptr;
};

/// Activation selector for Mlp hidden layers.
enum class Activation { kNone, kRelu, kLeakyRelu, kSigmoid, kTanh };

/// Applies an activation op.
Var Activate(Var x, Activation act, float leaky_slope = 0.5f);

/// Multi-layer perceptron with configurable hidden sizes and activation.
/// The final layer is linear (no activation) unless `activate_last`.
class Mlp {
 public:
  Mlp(ParamStore* store, const std::string& name,
      const std::vector<int64_t>& dims, Rng* rng,
      Activation act = Activation::kLeakyRelu, bool activate_last = false);

  Var Forward(Tape* tape, Var x) const;

  const std::vector<Linear>& layers() const { return layers_; }

 private:
  std::vector<Linear> layers_;
  Activation act_;
  bool activate_last_;
};

}  // namespace graphaug

#endif  // GRAPHAUG_NN_LAYERS_H_
