#include "nn/layers.h"

namespace graphaug {

Linear::Linear(ParamStore* store, const std::string& name, int64_t in,
               int64_t out, Rng* rng, bool bias) {
  weight_ = store->CreateXavier(name + ".weight", in, out, rng);
  if (bias) bias_ = store->Create(name + ".bias", 1, out);
}

Var Linear::Forward(Tape* tape, Var x) const {
  Var w = ag::Leaf(tape, weight_);
  Var y = ag::MatMul(x, w);
  if (bias_ != nullptr) {
    y = ag::AddRowBroadcast(y, ag::Leaf(tape, bias_));
  }
  return y;
}

Var Activate(Var x, Activation act, float leaky_slope) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return ag::Relu(x);
    case Activation::kLeakyRelu:
      return ag::LeakyRelu(x, leaky_slope);
    case Activation::kSigmoid:
      return ag::Sigmoid(x);
    case Activation::kTanh:
      return ag::Tanh(x);
  }
  return x;
}

Mlp::Mlp(ParamStore* store, const std::string& name,
         const std::vector<int64_t>& dims, Rng* rng, Activation act,
         bool activate_last)
    : act_(act), activate_last_(activate_last) {
  GA_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(store, name + ".fc" + std::to_string(i), dims[i],
                         dims[i + 1], rng);
  }
}

Var Mlp::Forward(Tape* tape, Var x) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(tape, h);
    if (i + 1 < layers_.size() || activate_last_) {
      h = Activate(h, act_);
    }
  }
  return h;
}

}  // namespace graphaug
