#include "autograd/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>

#include "common/logging.h"

namespace graphaug {

namespace io {

void WriteMatrix(std::ostream& out, const Matrix& m) {
  WritePod(out, static_cast<int64_t>(m.rows()));
  WritePod(out, static_cast<int64_t>(m.cols()));
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
}

bool ReadMatrix(std::istream& in, Matrix* m) {
  int64_t rows = 0, cols = 0;
  if (!ReadPod(in, &rows) || !ReadPod(in, &cols)) return false;
  if (rows < 0 || cols < 0) return false;
  *m = Matrix(rows, cols);
  in.read(reinterpret_cast<char*>(m->data()),
          static_cast<std::streamsize>(m->size() * sizeof(float)));
  return in.good() || m->size() == 0;
}

}  // namespace io

namespace {

constexpr char kMagic[8] = {'G', 'A', 'C', 'K', 'P', 'T', '0', '1'};

}  // namespace

bool SaveCheckpoint(const ParamStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic));
  const uint64_t count = store.params().size();
  io::WritePod(out, count);
  for (const Parameter* p : store.params()) {
    const uint32_t name_len = static_cast<uint32_t>(p->name.size());
    io::WritePod(out, name_len);
    out.write(p->name.data(), name_len);
    io::WriteMatrix(out, p->value);
  }
  return out.good();
}

bool LoadCheckpoint(ParamStore* store, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    GA_LOG(Error) << "bad checkpoint magic in " << path;
    return false;
  }
  std::map<std::string, Parameter*> by_name;
  for (Parameter* p : store->params()) by_name[p->name] = p;

  uint64_t count = 0;
  if (!io::ReadPod(in, &count)) return false;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!io::ReadPod(in, &name_len)) return false;
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    int64_t rows = 0, cols = 0;
    if (!io::ReadPod(in, &rows) || !io::ReadPod(in, &cols)) return false;
    const int64_t n = rows * cols;
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      in.seekg(static_cast<std::streamoff>(n * sizeof(float)),
               std::ios::cur);
      continue;
    }
    Parameter* p = it->second;
    if (p->value.rows() != rows || p->value.cols() != cols) {
      GA_LOG(Error) << "shape mismatch for '" << name << "': file " << rows
                    << "x" << cols << " vs store "
                    << p->value.ShapeString();
      return false;
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!in.good()) return false;
  }
  return true;
}

}  // namespace graphaug
