#include "autograd/param.h"

#include "tensor/ops.h"

namespace graphaug {

double ParamStore::SquaredParamNorm() const {
  double s = 0;
  for (const Parameter* p : ptrs_) {
    if (p->trainable) s += SquaredNorm(p->value);
  }
  return s;
}

int64_t ParamStore::NumScalars() const {
  int64_t n = 0;
  for (const Parameter* p : ptrs_) n += p->value.size();
  return n;
}

}  // namespace graphaug
