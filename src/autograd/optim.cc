#include "autograd/optim.h"

#include <cmath>

namespace graphaug {

void Sgd::Step(ParamStore* store) {
  for (Parameter* p : store->params()) {
    if (!p->trainable) continue;
    if (!p->grad.SameShape(p->value)) continue;
    for (int64_t i = 0; i < p->value.size(); ++i) {
      p->value[i] -= lr_ * (p->grad[i] + weight_decay_ * p->value[i]);
    }
    p->ZeroGrad();
  }
}

void Adam::Step(ParamStore* store) {
  ++t_;
  const float bc1 = 1.f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.f - std::pow(beta2_, static_cast<float>(t_));
  for (Parameter* p : store->params()) {
    if (!p->trainable) continue;
    if (!p->grad.SameShape(p->value)) continue;
    if (!p->adam_m.SameShape(p->value)) {
      p->adam_m = Matrix(p->value.rows(), p->value.cols());
      p->adam_v = Matrix(p->value.rows(), p->value.cols());
    }
    for (int64_t i = 0; i < p->value.size(); ++i) {
      const float g = p->grad[i];
      p->adam_m[i] = beta1_ * p->adam_m[i] + (1.f - beta1_) * g;
      p->adam_v[i] = beta2_ * p->adam_v[i] + (1.f - beta2_) * g * g;
      const float mhat = p->adam_m[i] / bc1;
      const float vhat = p->adam_v[i] / bc2;
      p->value[i] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) +
                            weight_decay_ * p->value[i]);
    }
    p->ZeroGrad();
  }
}

}  // namespace graphaug
