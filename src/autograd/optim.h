#ifndef GRAPHAUG_AUTOGRAD_OPTIM_H_
#define GRAPHAUG_AUTOGRAD_OPTIM_H_

#include "autograd/param.h"

namespace graphaug {

/// Interface for first-order optimizers over a ParamStore.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently accumulated in the
  /// store, then zeroes them.
  virtual void Step(ParamStore* store) = 0;

  /// Current base learning rate.
  virtual float learning_rate() const = 0;
  /// Overrides the base learning rate (used by decay schedules).
  virtual void set_learning_rate(float lr) = 0;
};

/// Plain SGD with optional L2 weight decay (decoupled: applied to values).
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float weight_decay = 0.f)
      : lr_(lr), weight_decay_(weight_decay) {}

  void Step(ParamStore* store) override;
  float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }

 private:
  float lr_;
  float weight_decay_;
};

/// Adam (Kingma & Ba) with optional decoupled weight decay (AdamW when
/// weight_decay > 0). Moment buffers live on the parameters.
class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f, float weight_decay = 0.f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
        weight_decay_(weight_decay) {}

  void Step(ParamStore* store) override;
  float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }

  int64_t step_count() const { return t_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
};

/// Multiplicative learning-rate decay applied every epoch:
/// lr_{e+1} = lr_e * rate (the paper trains with decay 0.96).
class ExponentialDecay {
 public:
  ExponentialDecay(Optimizer* opt, float rate) : opt_(opt), rate_(rate) {}

  /// Calls at the end of each epoch.
  void OnEpochEnd() { opt_->set_learning_rate(opt_->learning_rate() * rate_); }

 private:
  Optimizer* opt_;
  float rate_;
};

}  // namespace graphaug

#endif  // GRAPHAUG_AUTOGRAD_OPTIM_H_
