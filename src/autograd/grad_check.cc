#include "autograd/grad_check.h"

#include <cmath>

namespace graphaug {

GradCheckResult CheckGradient(Parameter* param,
                              const std::function<Var(Tape*)>& loss_fn,
                              float fd_eps, float tol) {
  // Analytic gradient.
  param->ZeroGrad();
  {
    Tape tape;
    Var loss = loss_fn(&tape);
    tape.Backward(loss);
  }
  Matrix analytic = param->grad;

  GradCheckResult res;
  res.ok = true;
  for (int64_t i = 0; i < param->value.size(); ++i) {
    const float orig = param->value[i];
    param->value[i] = orig + fd_eps;
    double lp, lm;
    {
      Tape tape;
      lp = loss_fn(&tape).value().scalar();
    }
    param->value[i] = orig - fd_eps;
    {
      Tape tape;
      lm = loss_fn(&tape).value().scalar();
    }
    param->value[i] = orig;
    const float numeric = static_cast<float>((lp - lm) / (2.0 * fd_eps));
    const float abs_err = std::fabs(numeric - analytic[i]);
    const float rel_err =
        abs_err / std::max(1e-4f, std::fabs(numeric) + std::fabs(analytic[i]));
    res.max_abs_error = std::max(res.max_abs_error, abs_err);
    res.max_rel_error = std::max(res.max_rel_error, rel_err);
    if (abs_err > tol && rel_err > tol) res.ok = false;
  }
  param->ZeroGrad();
  return res;
}

}  // namespace graphaug
