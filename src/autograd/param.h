#ifndef GRAPHAUG_AUTOGRAD_PARAM_H_
#define GRAPHAUG_AUTOGRAD_PARAM_H_

#include <deque>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/init.h"
#include "tensor/matrix.h"

namespace graphaug {

/// A persistent trainable tensor. Gradients accumulate into `grad` during
/// Tape::Backward; optimizer state (Adam moments) is allocated lazily.
struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;
  Matrix adam_m;
  Matrix adam_v;
  bool trainable = true;

  /// Zeroes the accumulated gradient.
  void ZeroGrad() {
    if (!grad.SameShape(value)) grad = Matrix(value.rows(), value.cols());
    grad.Zero();
  }
};

/// Owns every parameter of a model. Pointers returned by the Create*
/// methods are stable for the lifetime of the store (deque storage).
class ParamStore {
 public:
  ParamStore() = default;
  ParamStore(const ParamStore&) = delete;
  ParamStore& operator=(const ParamStore&) = delete;

  /// Creates a zero-initialized parameter.
  Parameter* Create(const std::string& name, int64_t rows, int64_t cols) {
    params_.push_back(Parameter{name, Matrix(rows, cols),
                                Matrix(rows, cols), Matrix(), Matrix(), true});
    ptrs_.push_back(&params_.back());
    return &params_.back();
  }

  /// Creates a parameter initialized with N(0, stddev).
  Parameter* CreateNormal(const std::string& name, int64_t rows, int64_t cols,
                          Rng* rng, float stddev = 0.1f) {
    Parameter* p = Create(name, rows, cols);
    InitNormal(&p->value, rng, 0.f, stddev);
    return p;
  }

  /// Creates a parameter with Xavier/Glorot-uniform initialization.
  Parameter* CreateXavier(const std::string& name, int64_t rows, int64_t cols,
                          Rng* rng) {
    Parameter* p = Create(name, rows, cols);
    InitXavier(&p->value, rng);
    return p;
  }

  const std::vector<Parameter*>& params() const { return ptrs_; }

  /// Zeroes every gradient.
  void ZeroGrad() {
    for (Parameter* p : ptrs_) p->ZeroGrad();
  }

  /// Sum of squared Frobenius norms over trainable parameters (used for the
  /// weight-decay term β₃‖Θ‖² of Eq. 16).
  double SquaredParamNorm() const;

  /// Total number of scalar parameters.
  int64_t NumScalars() const;

 private:
  std::deque<Parameter> params_;
  std::vector<Parameter*> ptrs_;
};

}  // namespace graphaug

#endif  // GRAPHAUG_AUTOGRAD_PARAM_H_
