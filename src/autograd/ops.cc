#include "autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "obs/autograd_profiler.h"
#include "tensor/kernel_dispatch.h"
#include "tensor/ops.h"

namespace graphaug::ag {
namespace {

/// Rows per chunk for the sparse kernels below: ~32K multiply-adds per
/// chunk given the average row population, mirroring CsrMatrix::Spmm.
int64_t SpmmRowGrain(int64_t rows, int64_t nnz, int64_t dense_cols) {
  const int64_t per_row =
      std::max<int64_t>(1, nnz / std::max<int64_t>(1, rows)) *
      std::max<int64_t>(1, dense_cols);
  return std::max<int64_t>(1, (int64_t{32} << 10) / per_row);
}

/// Emits a unary elementwise op with derivative expressed in terms of the
/// *input* value x and the *output* value y. `name` must be a string
/// literal; it labels the op for the autograd profiler.
Var UnaryOp(const char* name, Var a, const std::function<float(float)>& fwd,
            const std::function<float(float, float)>& dydx) {
  Tape* t = a.tape();
  const double n = static_cast<double>(a.value().size());
  GA_AG_OP(name, n, 8 * n);
  Matrix y = Map(a.value(), fwd);
  const int aid = a.id();
  const bool ng = t->NeedsGrad(aid);
  return t->Emit(std::move(y), ng, [aid, dydx](Tape* t, const Matrix& up) {
    const Matrix& x = t->ValueOf(aid);
    // Note: we recompute y only when the derivative needs it; callers that
    // need y capture it below instead. Here we pass (x, 0) -> dydx uses x.
    Matrix g(up.rows(), up.cols());
    for (int64_t i = 0; i < up.size(); ++i) g[i] = up[i] * dydx(x[i], 0.f);
    t->AccumulateGrad(aid, g);
  });
}

}  // namespace

Var Leaf(Tape* tape, Parameter* param) { return tape->Leaf(param); }

Var Constant(Tape* tape, Matrix value) {
  return tape->Constant(std::move(value));
}

Var Add(Var a, Var b) {
  Tape* t = a.tape();
  const double n = static_cast<double>(a.value().size());
  GA_AG_OP("Add", n, 12 * n);
  const int aid = a.id(), bid = b.id();
  const bool ng = t->NeedsGrad(aid) || t->NeedsGrad(bid);
  return t->Emit(graphaug::Add(a.value(), b.value()), ng,
                 [aid, bid](Tape* t, const Matrix& up) {
                   t->AccumulateGrad(aid, up);
                   t->AccumulateGrad(bid, up);
                 });
}

Var Sub(Var a, Var b) {
  Tape* t = a.tape();
  const double n = static_cast<double>(a.value().size());
  GA_AG_OP("Sub", n, 12 * n);
  const int aid = a.id(), bid = b.id();
  const bool ng = t->NeedsGrad(aid) || t->NeedsGrad(bid);
  return t->Emit(graphaug::Sub(a.value(), b.value()), ng,
                 [aid, bid](Tape* t, const Matrix& up) {
                   t->AccumulateGrad(aid, up);
                   t->AccumulateGrad(bid, graphaug::Scale(up, -1.f));
                 });
}

Var Mul(Var a, Var b) {
  Tape* t = a.tape();
  const double n = static_cast<double>(a.value().size());
  GA_AG_OP("Mul", n, 12 * n);
  const int aid = a.id(), bid = b.id();
  const bool ng = t->NeedsGrad(aid) || t->NeedsGrad(bid);
  return t->Emit(graphaug::Mul(a.value(), b.value()), ng,
                 [aid, bid](Tape* t, const Matrix& up) {
                   t->AccumulateGrad(aid, graphaug::Mul(up, t->ValueOf(bid)));
                   t->AccumulateGrad(bid, graphaug::Mul(up, t->ValueOf(aid)));
                 });
}

Var Neg(Var a) { return Scale(a, -1.f); }

Var Scale(Var a, float s) {
  Tape* t = a.tape();
  const double n = static_cast<double>(a.value().size());
  GA_AG_OP("Scale", n, 8 * n);
  const int aid = a.id();
  return t->Emit(graphaug::Scale(a.value(), s), t->NeedsGrad(aid),
                 [aid, s](Tape* t, const Matrix& up) {
                   t->AccumulateGrad(aid, graphaug::Scale(up, s));
                 });
}

Var AddScalar(Var a, float s) {
  Tape* t = a.tape();
  const double n = static_cast<double>(a.value().size());
  GA_AG_OP("AddScalar", n, 8 * n);
  const int aid = a.id();
  return t->Emit(Map(a.value(), [s](float x) { return x + s; }),
                 t->NeedsGrad(aid), [aid](Tape* t, const Matrix& up) {
                   t->AccumulateGrad(aid, up);
                 });
}

Var Sigmoid(Var a) {
  auto stable_sigmoid = [](float x) {
    return x >= 0 ? 1.f / (1.f + std::exp(-x))
                  : std::exp(x) / (1.f + std::exp(x));
  };
  return UnaryOp("Sigmoid", a, stable_sigmoid, [stable_sigmoid](float x, float) {
    const float s = stable_sigmoid(x);
    return s * (1.f - s);
  });
}

Var Tanh(Var a) {
  return UnaryOp("Tanh", a, [](float x) { return std::tanh(x); },
                 [](float x, float) {
                   const float th = std::tanh(x);
                   return 1.f - th * th;
                 });
}

Var Relu(Var a) {
  return UnaryOp("Relu", a, [](float x) { return x > 0 ? x : 0.f; },
                 [](float x, float) { return x > 0 ? 1.f : 0.f; });
}

Var LeakyRelu(Var a, float slope) {
  return UnaryOp("LeakyRelu", a, [slope](float x) { return x > 0 ? x : slope * x; },
                 [slope](float x, float) { return x > 0 ? 1.f : slope; });
}

Var Exp(Var a) {
  return UnaryOp("Exp", a, [](float x) { return std::exp(x); },
                 [](float x, float) { return std::exp(x); });
}

Var Log(Var a, float eps) {
  return UnaryOp("Log", a, [eps](float x) { return std::log(x + eps); },
                 [eps](float x, float) { return 1.f / (x + eps); });
}

Var Softplus(Var a) {
  return UnaryOp("Softplus", a,
                 [](float x) {
                   // Stable: softplus(x) = max(x,0) + log1p(exp(-|x|)).
                   return std::max(x, 0.f) + std::log1p(std::exp(-std::fabs(x)));
                 },
                 [](float x, float) {
                   return x >= 0 ? 1.f / (1.f + std::exp(-x))
                                 : std::exp(x) / (1.f + std::exp(x));
                 });
}

Var Square(Var a) {
  return UnaryOp("Square", a, [](float x) { return x * x; },
                 [](float x, float) { return 2.f * x; });
}

Var Dropout(Var a, float p, Rng* rng) {
  if (p <= 0.f) return a;
  GA_CHECK_LT(p, 1.f);
  Tape* t = a.tape();
  const double n = static_cast<double>(a.value().size());
  GA_AG_OP("Dropout", n, 8 * n);
  const int aid = a.id();
  const float scale = 1.f / (1.f - p);
  auto mask = std::make_shared<std::vector<float>>(a.value().size());
  Matrix y(a.rows(), a.cols());
  for (int64_t i = 0; i < y.size(); ++i) {
    const float m = rng->Bernoulli(p) ? 0.f : scale;
    (*mask)[static_cast<size_t>(i)] = m;
    y[i] = a.value()[i] * m;
  }
  return t->Emit(std::move(y), t->NeedsGrad(aid),
                 [aid, mask](Tape* t, const Matrix& up) {
                   Matrix g(up.rows(), up.cols());
                   for (int64_t i = 0; i < up.size(); ++i) {
                     g[i] = up[i] * (*mask)[static_cast<size_t>(i)];
                   }
                   t->AccumulateGrad(aid, g);
                 });
}

Var MatMul(Var a, Var b, bool trans_a, bool trans_b) {
  Tape* t = a.tape();
  const int aid = a.id(), bid = b.id();
  // 2*m*k*n multiply-adds; bytes = the three operand matrices once each.
  const double k = static_cast<double>(trans_a ? a.rows() : a.cols());
  const double m = static_cast<double>(trans_a ? a.cols() : a.rows());
  const double nn = static_cast<double>(trans_b ? b.rows() : b.cols());
  GA_AG_OP("MatMul", 2 * m * k * nn, 4 * (m * k + k * nn + m * nn));
  Matrix y;
  Gemm(a.value(), trans_a, b.value(), trans_b, 1.f, 0.f, &y);
  const bool ng = t->NeedsGrad(aid) || t->NeedsGrad(bid);
  return t->Emit(
      std::move(y), ng, [aid, bid, trans_a, trans_b](Tape* t, const Matrix& up) {
        const Matrix& av = t->ValueOf(aid);
        const Matrix& bv = t->ValueOf(bid);
        if (t->NeedsGrad(aid)) {
          Matrix ga;
          if (!trans_a) {
            // dA = dY * op(B)^T
            Gemm(up, false, bv, !trans_b, 1.f, 0.f, &ga);
          } else {
            // A appears transposed: dA = op(B) * dY^T
            Gemm(bv, trans_b, up, true, 1.f, 0.f, &ga);
          }
          t->AccumulateGrad(aid, ga);
        }
        if (t->NeedsGrad(bid)) {
          Matrix gb;
          if (!trans_b) {
            // dB = op(A)^T * dY
            Gemm(av, !trans_a, up, false, 1.f, 0.f, &gb);
          } else {
            // B appears transposed: dB = dY^T * op(A)
            Gemm(up, true, av, trans_a, 1.f, 0.f, &gb);
          }
          t->AccumulateGrad(bid, gb);
        }
      });
}

Var Spmm(const CsrMatrix* csr, Var dense) {
  Tape* t = dense.tape();
  const int did = dense.id();
  const double d = static_cast<double>(dense.cols());
  const double nnz = static_cast<double>(csr->nnz());
  GA_AG_OP("Spmm", 2 * nnz * d,
           8 * nnz + 4 * d * (csr->rows() + csr->cols()));
  Matrix y;
  csr->Spmm(dense.value(), &y);
  return t->Emit(std::move(y), t->NeedsGrad(did),
                 [csr, did](Tape* t, const Matrix& up) {
                   Matrix g;
                   csr->SpmmT(up, &g);
                   t->AccumulateGrad(did, g);
                 });
}

Var SpmmPower(const AdjacencyPowerCache* cache, int k, Var dense) {
  GA_CHECK_GE(k, 0);
  Tape* t = dense.tape();
  const int did = dense.id();
  const CsrMatrix& m = cache->adjacency();
  const double d = static_cast<double>(dense.cols());
  const double nnz = static_cast<double>(m.nnz());
  GA_AG_OP("SpmmPower", 2 * k * nnz * d,
           k * (8 * nnz + 4 * d * (m.rows() + m.cols())));
  Matrix y;
  cache->Apply(k, dense.value(), &y);
  return t->Emit(std::move(y), t->NeedsGrad(did),
                 [cache, k, did](Tape* t, const Matrix& up) {
                   Matrix g;
                   cache->ApplyTransposed(k, up, &g);
                   t->AccumulateGrad(did, g);
                 });
}

Var EdgeWeightedSpmm(const NormalizedAdjacency* adj, Var edge_w, Var dense) {
  Tape* t = dense.tape();
  const int wid = edge_w.id(), did = dense.id();
  const double fd = static_cast<double>(dense.cols());
  const double fnnz = static_cast<double>(adj->matrix.nnz());
  GA_AG_OP("EdgeWeightedSpmm", 2 * fnnz * fd,
           12 * fnnz + 4 * fd * (adj->matrix.rows() + adj->matrix.cols()));
  const CsrMatrix& m = adj->matrix;
  GA_CHECK_EQ(edge_w.cols(), 1);
  const Matrix& w = edge_w.value();
  const Matrix& h = dense.value();
  GA_CHECK_EQ(h.rows(), m.cols());

  // Forward: out[r] += base[k] * w[edge(k)] * h[col(k)]. Row-parallel;
  // output rows are disjoint so any thread count is bitwise identical.
  auto values = std::make_shared<std::vector<float>>(
      adj->WeightedValues(std::vector<float>(w.data(), w.data() + w.size())));
  Matrix y(m.rows(), h.cols());
  const int64_t d = h.cols();
  const auto& row_ptr = m.row_ptr();
  const auto& col_idx = m.col_idx();
  const simd::KernelTable& fwd_kt = simd::ActiveKernels();
  ParallelFor(0, m.rows(), SpmmRowGrain(m.rows(), m.nnz(), d),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  const int64_t k0 = row_ptr[r];
                  fwd_kt.spmm_segment(values->data() + k0,
                                      col_idx.data() + k0, row_ptr[r + 1] - k0,
                                      h.data(), d, y.row(r));
                }
              });

  const bool ng = t->NeedsGrad(wid) || t->NeedsGrad(did);
  return t->Emit(std::move(y), ng, [adj, wid, did, values](Tape* t,
                                                           const Matrix& up) {
    const CsrMatrix& m = adj->matrix;
    const auto& row_ptr = m.row_ptr();
    const auto& col_idx = m.col_idx();
    const Matrix& h = t->ValueOf(did);
    const int64_t d = h.cols();
    if (t->NeedsGrad(did)) {
      // dH[col(k)] += value[k] * up[row(k)], computed as a race-free
      // gather over the cached CSC mirror: each dH row is owned by exactly
      // one chunk, and entries arrive in ascending original row — the
      // serial scatter's accumulation order — so the result is bitwise
      // identical to the serial formulation at any thread count. The
      // per-step weighted values are permuted into mirror order once so
      // the inner loop streams them contiguously instead of double-
      // indirecting through the source permutation per nonzero.
      const CscMirror& mir = m.Mirror();
      const std::vector<float> pv = mir.PermuteValues(*values);
      Matrix gh(h.rows(), d);
      CscMirrorSpmm(mir, pv.data(), up, &gh);
      t->AccumulateGrad(did, gh);
    }
    if (t->NeedsGrad(wid)) {
      // dw[edge(k)] += base[k] * <up[row(k)], h[col(k)]>. The expensive
      // per-nonzero dot products are row-parallel (disjoint k ranges per
      // row); the cheap gather into dw runs serially in ascending k — the
      // same order as a fully serial pass — because several nonzeros (the
      // two directions of one interaction) can map to the same edge.
      std::vector<float> per_nnz(static_cast<size_t>(m.nnz()), 0.f);
      const simd::KernelTable& bwd_kt = simd::ActiveKernels();
      ParallelFor(0, m.rows(), SpmmRowGrain(m.rows(), m.nnz(), d),
                  [&](int64_t r0, int64_t r1) {
                    for (int64_t r = r0; r < r1; ++r) {
                      const float* urow = up.row(r);
                      for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
                        if (adj->nnz_to_edge[static_cast<size_t>(k)] < 0) {
                          continue;
                        }
                        per_nnz[static_cast<size_t>(k)] =
                            adj->base_values[static_cast<size_t>(k)] *
                            static_cast<float>(
                                bwd_kt.dot(urow, h.row(col_idx[k]), d));
                      }
                    }
                  });
      Matrix gw(t->ValueOf(wid).rows(), 1);
      for (int64_t k = 0; k < m.nnz(); ++k) {
        const int64_t e = adj->nnz_to_edge[static_cast<size_t>(k)];
        if (e >= 0) gw[e] += per_nnz[static_cast<size_t>(k)];
      }
      t->AccumulateGrad(wid, gw);
    }
  });
}

Var GatherRows(Var a, std::vector<int32_t> idx) {
  Tape* t = a.tape();
  const int aid = a.id();
  GA_AG_OP("GatherRows", 0,
           8.0 * static_cast<double>(idx.size()) * a.cols());
  Matrix y = graphaug::GatherRows(a.value(), idx);
  auto idx_ptr = std::make_shared<std::vector<int32_t>>(std::move(idx));
  return t->Emit(std::move(y), t->NeedsGrad(aid),
                 [aid, idx_ptr](Tape* t, const Matrix& up) {
                   const Matrix& av = t->ValueOf(aid);
                   Matrix g(av.rows(), av.cols());
                   ScatterAddRows(up, *idx_ptr, &g);
                   t->AccumulateGrad(aid, g);
                 });
}

Var ConcatCols(Var a, Var b) {
  Tape* t = a.tape();
  GA_AG_OP("ConcatCols", 0,
           8.0 * static_cast<double>(a.value().size() + b.value().size()));
  const int aid = a.id(), bid = b.id();
  const int64_t ac = a.cols();
  const bool ng = t->NeedsGrad(aid) || t->NeedsGrad(bid);
  return t->Emit(graphaug::ConcatCols(a.value(), b.value()), ng,
                 [aid, bid, ac](Tape* t, const Matrix& up) {
                   t->AccumulateGrad(aid, graphaug::SliceCols(up, 0, ac));
                   t->AccumulateGrad(
                       bid, graphaug::SliceCols(up, ac, up.cols() - ac));
                 });
}

Var SliceCols(Var a, int64_t start, int64_t len) {
  Tape* t = a.tape();
  GA_AG_OP("SliceCols", 0, 8.0 * static_cast<double>(a.rows() * len));
  const int aid = a.id();
  return t->Emit(graphaug::SliceCols(a.value(), start, len),
                 t->NeedsGrad(aid),
                 [aid, start, len](Tape* t, const Matrix& up) {
                   const Matrix& av = t->ValueOf(aid);
                   Matrix g(av.rows(), av.cols());
                   for (int64_t r = 0; r < up.rows(); ++r) {
                     std::copy(up.row(r), up.row(r) + len, g.row(r) + start);
                   }
                   t->AccumulateGrad(aid, g);
                 });
}

Var AddRowBroadcast(Var a, Var row) {
  Tape* t = a.tape();
  GA_AG_OP("AddRowBroadcast", static_cast<double>(a.value().size()),
           8.0 * static_cast<double>(a.value().size()));
  GA_CHECK_EQ(row.rows(), 1);
  GA_CHECK_EQ(row.cols(), a.cols());
  const int aid = a.id(), rid = row.id();
  Matrix y = a.value();
  for (int64_t r = 0; r < y.rows(); ++r) {
    for (int64_t c = 0; c < y.cols(); ++c) y.at(r, c) += row.value()[c];
  }
  const bool ng = t->NeedsGrad(aid) || t->NeedsGrad(rid);
  return t->Emit(std::move(y), ng, [aid, rid](Tape* t, const Matrix& up) {
    t->AccumulateGrad(aid, up);
    if (t->NeedsGrad(rid)) {
      Matrix g(1, up.cols());
      for (int64_t r = 0; r < up.rows(); ++r) {
        for (int64_t c = 0; c < up.cols(); ++c) g[c] += up.at(r, c);
      }
      t->AccumulateGrad(rid, g);
    }
  });
}

Var MulRowBroadcast(Var a, Var row) {
  Tape* t = a.tape();
  GA_AG_OP("MulRowBroadcast", static_cast<double>(a.value().size()),
           8.0 * static_cast<double>(a.value().size()));
  GA_CHECK_EQ(row.rows(), 1);
  GA_CHECK_EQ(row.cols(), a.cols());
  const int aid = a.id(), rid = row.id();
  Matrix y = a.value();
  for (int64_t r = 0; r < y.rows(); ++r) {
    for (int64_t c = 0; c < y.cols(); ++c) y.at(r, c) *= row.value()[c];
  }
  const bool ng = t->NeedsGrad(aid) || t->NeedsGrad(rid);
  return t->Emit(std::move(y), ng, [aid, rid](Tape* t, const Matrix& up) {
    const Matrix& av = t->ValueOf(aid);
    const Matrix& rv = t->ValueOf(rid);
    if (t->NeedsGrad(aid)) {
      Matrix g(up.rows(), up.cols());
      for (int64_t r = 0; r < up.rows(); ++r) {
        for (int64_t c = 0; c < up.cols(); ++c) {
          g.at(r, c) = up.at(r, c) * rv[c];
        }
      }
      t->AccumulateGrad(aid, g);
    }
    if (t->NeedsGrad(rid)) {
      Matrix g(1, up.cols());
      for (int64_t r = 0; r < up.rows(); ++r) {
        for (int64_t c = 0; c < up.cols(); ++c) {
          g[c] += up.at(r, c) * av.at(r, c);
        }
      }
      t->AccumulateGrad(rid, g);
    }
  });
}

Var MulColBroadcast(Var a, Var col) {
  Tape* t = a.tape();
  GA_AG_OP("MulColBroadcast", static_cast<double>(a.value().size()),
           8.0 * static_cast<double>(a.value().size()));
  GA_CHECK_EQ(col.cols(), 1);
  GA_CHECK_EQ(col.rows(), a.rows());
  const int aid = a.id(), cid = col.id();
  Matrix y = a.value();
  for (int64_t r = 0; r < y.rows(); ++r) {
    const float s = col.value()[r];
    for (int64_t c = 0; c < y.cols(); ++c) y.at(r, c) *= s;
  }
  const bool ng = t->NeedsGrad(aid) || t->NeedsGrad(cid);
  return t->Emit(std::move(y), ng, [aid, cid](Tape* t, const Matrix& up) {
    const Matrix& av = t->ValueOf(aid);
    const Matrix& cv = t->ValueOf(cid);
    if (t->NeedsGrad(aid)) {
      Matrix g(up.rows(), up.cols());
      for (int64_t r = 0; r < up.rows(); ++r) {
        const float s = cv[r];
        for (int64_t c = 0; c < up.cols(); ++c) g.at(r, c) = up.at(r, c) * s;
      }
      t->AccumulateGrad(aid, g);
    }
    if (t->NeedsGrad(cid)) {
      Matrix g(up.rows(), 1);
      for (int64_t r = 0; r < up.rows(); ++r) {
        double s = 0;
        for (int64_t c = 0; c < up.cols(); ++c) {
          s += static_cast<double>(up.at(r, c)) * av.at(r, c);
        }
        g[r] = static_cast<float>(s);
      }
      t->AccumulateGrad(cid, g);
    }
  });
}

Var MeanAll(Var a) {
  Tape* t = a.tape();
  GA_AG_OP("MeanAll", static_cast<double>(a.value().size()),
           4.0 * static_cast<double>(a.value().size()));
  const int aid = a.id();
  const float inv = a.value().size() > 0
                        ? 1.f / static_cast<float>(a.value().size())
                        : 0.f;
  Matrix y(1, 1, static_cast<float>(graphaug::MeanAll(a.value())));
  return t->Emit(std::move(y), t->NeedsGrad(aid),
                 [aid, inv](Tape* t, const Matrix& up) {
                   const Matrix& av = t->ValueOf(aid);
                   Matrix g(av.rows(), av.cols(), up[0] * inv);
                   t->AccumulateGrad(aid, g);
                 });
}

Var SumAll(Var a) {
  Tape* t = a.tape();
  GA_AG_OP("SumAll", static_cast<double>(a.value().size()),
           4.0 * static_cast<double>(a.value().size()));
  const int aid = a.id();
  Matrix y(1, 1, static_cast<float>(graphaug::SumAll(a.value())));
  return t->Emit(std::move(y), t->NeedsGrad(aid),
                 [aid](Tape* t, const Matrix& up) {
                   const Matrix& av = t->ValueOf(aid);
                   Matrix g(av.rows(), av.cols(), up[0]);
                   t->AccumulateGrad(aid, g);
                 });
}

Var RowSum(Var a) {
  Tape* t = a.tape();
  GA_AG_OP("RowSum", static_cast<double>(a.value().size()),
           4.0 * static_cast<double>(a.value().size()));
  const int aid = a.id();
  return t->Emit(graphaug::RowSum(a.value()), t->NeedsGrad(aid),
                 [aid](Tape* t, const Matrix& up) {
                   const Matrix& av = t->ValueOf(aid);
                   Matrix g(av.rows(), av.cols());
                   for (int64_t r = 0; r < g.rows(); ++r) {
                     const float s = up[r];
                     for (int64_t c = 0; c < g.cols(); ++c) g.at(r, c) = s;
                   }
                   t->AccumulateGrad(aid, g);
                 });
}

Var RowDot(Var a, Var b) {
  Tape* t = a.tape();
  GA_AG_OP("RowDot", 2.0 * static_cast<double>(a.value().size()),
           8.0 * static_cast<double>(a.value().size()));
  const int aid = a.id(), bid = b.id();
  const bool ng = t->NeedsGrad(aid) || t->NeedsGrad(bid);
  return t->Emit(graphaug::RowDot(a.value(), b.value()), ng,
                 [aid, bid](Tape* t, const Matrix& up) {
                   const Matrix& av = t->ValueOf(aid);
                   const Matrix& bv = t->ValueOf(bid);
                   auto scatter = [&](int target, const Matrix& other) {
                     Matrix g(other.rows(), other.cols());
                     for (int64_t r = 0; r < g.rows(); ++r) {
                       const float s = up[r];
                       const float* orow = other.row(r);
                       float* grow = g.row(r);
                       for (int64_t c = 0; c < g.cols(); ++c) {
                         grow[c] = s * orow[c];
                       }
                     }
                     t->AccumulateGrad(target, g);
                   };
                   if (t->NeedsGrad(aid)) scatter(aid, bv);
                   if (t->NeedsGrad(bid)) scatter(bid, av);
                 });
}

Var LogSumExpRows(Var a) {
  Tape* t = a.tape();
  GA_AG_OP("LogSumExpRows", 3.0 * static_cast<double>(a.value().size()),
           4.0 * static_cast<double>(a.value().size()));
  const int aid = a.id();
  const Matrix& x = a.value();
  GA_CHECK_GE(x.cols(), 1) << "LogSumExpRows needs at least one column";
  Matrix y(x.rows(), 1);
  {
    const simd::KernelTable& kt = simd::ActiveKernels();
    for (int64_t r = 0; r < x.rows(); ++r) {
      const float* row = x.row(r);
      const float mx = kt.rowmax(row, x.cols());
      y[r] = mx + static_cast<float>(std::log(kt.exp_sum(row, x.cols(), mx)));
    }
  }
  auto lse = std::make_shared<Matrix>(y);
  return t->Emit(std::move(y), t->NeedsGrad(aid),
                 [aid, lse](Tape* t, const Matrix& up) {
                   const Matrix& x = t->ValueOf(aid);
                   Matrix g(x.rows(), x.cols());
                   const simd::KernelTable& kt = simd::ActiveKernels();
                   for (int64_t r = 0; r < x.rows(); ++r) {
                     kt.exp_scale(x.row(r), (*lse)[r], up[r], g.row(r),
                                  x.cols());
                   }
                   t->AccumulateGrad(aid, g);
                 });
}

Var RowL2Normalize(Var a, float eps) {
  Tape* t = a.tape();
  GA_AG_OP("RowL2Normalize", 3.0 * static_cast<double>(a.value().size()),
           8.0 * static_cast<double>(a.value().size()));
  const int aid = a.id();
  const Matrix& x = a.value();
  Matrix norms = RowNorm(x, eps);
  Matrix y(x.rows(), x.cols());
  for (int64_t r = 0; r < x.rows(); ++r) {
    const float inv = 1.f / norms[r];
    const float* xr = x.row(r);
    float* yr = y.row(r);
    for (int64_t c = 0; c < x.cols(); ++c) yr[c] = xr[c] * inv;
  }
  auto norm_ptr = std::make_shared<Matrix>(std::move(norms));
  auto y_ptr = std::make_shared<Matrix>(y);
  return t->Emit(std::move(y), t->NeedsGrad(aid),
                 [aid, norm_ptr, y_ptr](Tape* t, const Matrix& up) {
                   // dx = (du - y * (y . du)) / ||x||
                   const Matrix& y = *y_ptr;
                   Matrix g(y.rows(), y.cols());
                   for (int64_t r = 0; r < y.rows(); ++r) {
                     const float* yr = y.row(r);
                     const float* ur = up.row(r);
                     float* gr = g.row(r);
                     double dot = 0;
                     for (int64_t c = 0; c < y.cols(); ++c) {
                       dot += static_cast<double>(yr[c]) * ur[c];
                     }
                     const float inv = 1.f / (*norm_ptr)[r];
                     for (int64_t c = 0; c < y.cols(); ++c) {
                       gr[c] = (ur[c] - yr[c] * static_cast<float>(dot)) * inv;
                     }
                   }
                   t->AccumulateGrad(aid, g);
                 });
}

Var BprLoss(Var pos_scores, Var neg_scores) {
  return MeanAll(Softplus(Sub(neg_scores, pos_scores)));
}

Var InfoNceLoss(Var view_a, Var view_b, float temperature) {
  GA_CHECK_GT(temperature, 0.f);
  Var za = RowL2Normalize(view_a);
  Var zb = RowL2Normalize(view_b);
  // Similarity matrix (n x n): za * zb^T / temperature.
  Var sims = Scale(MatMul(za, zb, false, true), 1.f / temperature);
  // Positive logits are the diagonal == row dots.
  Var pos = Scale(RowDot(za, zb), 1.f / temperature);
  Var lse = LogSumExpRows(sims);
  return MeanAll(Sub(lse, pos));
}

Var GaussianKl(Var mu, Var raw_sigma) {
  // sigma = softplus(raw) + 1e-6; KL = 0.5 * mean(mu^2 + sigma^2 - 2 log sigma - 1).
  Var sigma = AddScalar(Softplus(raw_sigma), 1e-6f);
  Var term = Sub(Add(Square(mu), Square(sigma)),
                 AddScalar(Scale(Log(sigma, 0.f), 2.f), 1.f));
  return Scale(MeanAll(term), 0.5f);
}

}  // namespace graphaug::ag
