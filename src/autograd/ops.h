#ifndef GRAPHAUG_AUTOGRAD_OPS_H_
#define GRAPHAUG_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/tape.h"
#include "common/rng.h"
#include "graph/bipartite_graph.h"
#include "graph/csr.h"

namespace graphaug::ag {

/// Differentiable operations. Every function appends one node to the tape
/// of its first Var argument and returns a handle to it. Sparse matrices
/// and index vectors are captured by pointer/copy and must outlive the
/// tape's Backward call.

// ---------------------------------------------------------------- leaves
/// Trainable leaf (gradient accumulates into the parameter).
Var Leaf(Tape* tape, Parameter* param);
/// Non-trainable constant.
Var Constant(Tape* tape, Matrix value);

// ----------------------------------------------------------- elementwise
Var Add(Var a, Var b);
Var Sub(Var a, Var b);
Var Mul(Var a, Var b);  ///< Hadamard product.
Var Neg(Var a);
Var Scale(Var a, float s);
Var AddScalar(Var a, float s);
Var Sigmoid(Var a);
Var Tanh(Var a);
Var Relu(Var a);
Var LeakyRelu(Var a, float slope);
Var Exp(Var a);
/// log(x + eps); eps guards against log(0).
Var Log(Var a, float eps = 1e-10f);
/// log(1 + e^x), numerically stable.
Var Softplus(Var a);
Var Square(Var a);
/// Inverted dropout: scales kept entries by 1/(1-p). Pass-through when
/// p == 0. Mask is drawn once at forward time from `rng`.
Var Dropout(Var a, float p, Rng* rng);

// ------------------------------------------------------- linear algebra
/// Dense product with optional transposes: op(a) * op(b).
Var MatMul(Var a, Var b, bool trans_a = false, bool trans_b = false);
/// Sparse-dense product: csr * dense. The sparse matrix is constant.
Var Spmm(const CsrMatrix* csr, Var dense);
/// y = Ã^k x through an AdjacencyPowerCache (k >= 0) as a single tape
/// node: forward chains k Spmm applications through the cache's scratch
/// buffers, backward applies the transposed power via the prebuilt CSC
/// mirror. With k == 1 this is Spmm with warm sparse state — the mixhop
/// encoder's propagate step.
Var SpmmPower(const AdjacencyPowerCache* cache, int k, Var dense);
/// Sparse-dense product whose nonzero values are differentiable functions
/// of per-interaction weights `edge_w` ((E x 1) column vector):
///   value[k] = adj->base_values[k] * edge_w[adj->nnz_to_edge[k]]
/// (self-loops use weight 1). Gradient flows to both `dense` and `edge_w`.
/// This is the op that makes GraphAug's sampled graphs differentiable.
Var EdgeWeightedSpmm(const NormalizedAdjacency* adj, Var edge_w, Var dense);

// ------------------------------------------------------ shape / indexing
/// out[i] = a[idx[i]] (rows); backward scatter-adds.
Var GatherRows(Var a, std::vector<int32_t> idx);
Var ConcatCols(Var a, Var b);
Var SliceCols(Var a, int64_t start, int64_t len);

// ----------------------------------------------------------- broadcasts
/// Adds a (1 x d) row vector to every row of a (n x d) matrix.
Var AddRowBroadcast(Var a, Var row);
/// Multiplies every row of a (n x d) matrix by a (1 x d) row vector.
Var MulRowBroadcast(Var a, Var row);
/// Multiplies row r of a (n x d) matrix by scalar col[r] of a (n x 1) vector.
Var MulColBroadcast(Var a, Var col);

// ------------------------------------------------------------ reductions
/// Mean over all elements -> (1 x 1).
Var MeanAll(Var a);
/// Sum over all elements -> (1 x 1).
Var SumAll(Var a);
/// Row-wise sum -> (n x 1).
Var RowSum(Var a);
/// Row-wise dot products of two same-shape matrices -> (n x 1).
Var RowDot(Var a, Var b);
/// Row-wise log-sum-exp -> (n x 1), numerically stable.
Var LogSumExpRows(Var a);
/// Row-wise L2 normalization: y_r = x_r / max(||x_r||, eps).
Var RowL2Normalize(Var a, float eps = 1e-12f);

// ------------------------------------------------------- composite losses
/// BPR loss (Eq. 15): mean softplus(neg_score - pos_score) over rows of the
/// two (n x 1) score vectors.
Var BprLoss(Var pos_scores, Var neg_scores);

/// InfoNCE (Eq. 14) between matching rows of two (n x d) views; both are
/// L2-normalized internally; all other rows in the batch act as negatives.
Var InfoNceLoss(Var view_a, Var view_b, float temperature);

/// KL(N(mu, sigma) || N(0, 1)) averaged over rows, with sigma derived from
/// `raw_sigma` through softplus for positivity. Used by the GIB bound
/// (Eq. 9).
Var GaussianKl(Var mu, Var raw_sigma);

}  // namespace graphaug::ag

#endif  // GRAPHAUG_AUTOGRAD_OPS_H_
