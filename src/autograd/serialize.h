#ifndef GRAPHAUG_AUTOGRAD_SERIALIZE_H_
#define GRAPHAUG_AUTOGRAD_SERIALIZE_H_

#include <iostream>
#include <string>
#include <vector>

#include "autograd/param.h"

namespace graphaug {

/// Binary checkpointing for a model's parameters. The format is
/// versioned and self-describing: per parameter it stores the name,
/// shape, and float32 payload. Optimizer state is not persisted (resume
/// restarts Adam moments, which is standard for inference checkpoints).

/// Writes every parameter of `store` to `path`. Returns false on I/O
/// failure.
bool SaveCheckpoint(const ParamStore& store, const std::string& path);

/// Loads values into matching parameters of `store` (matched by name;
/// shapes must agree). Parameters present in the store but missing from
/// the file are left untouched; extra file entries are ignored. Returns
/// false on I/O failure or a shape mismatch.
bool LoadCheckpoint(ParamStore* store, const std::string& path);

/// Low-level little-endian binary helpers shared by the checkpoint format
/// above and sibling on-disk artifacts (the retrieval index in
/// src/retrieval/mips_index persists itself alongside checkpoints with
/// these). Vectors are length-prefixed (uint64 count), matrices are
/// (int64 rows, int64 cols, float payload); readers return false on
/// stream failure and leave the output unspecified.
namespace io {

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return in.good();
}

template <typename T>
void WritePodVec(std::ostream& out, const std::vector<T>& v) {
  WritePod(out, static_cast<uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
bool ReadPodVec(std::istream& in, std::vector<T>* v) {
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return false;
  // Guard against a corrupted length conjuring a giant allocation: the
  // payload must actually be present in the stream.
  v->assign(static_cast<size_t>(count), T{});
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return in.good() || (count == 0 && !in.bad());
}

void WriteMatrix(std::ostream& out, const Matrix& m);
bool ReadMatrix(std::istream& in, Matrix* m);

}  // namespace io

}  // namespace graphaug

#endif  // GRAPHAUG_AUTOGRAD_SERIALIZE_H_
