#ifndef GRAPHAUG_AUTOGRAD_SERIALIZE_H_
#define GRAPHAUG_AUTOGRAD_SERIALIZE_H_

#include <string>

#include "autograd/param.h"

namespace graphaug {

/// Binary checkpointing for a model's parameters. The format is
/// versioned and self-describing: per parameter it stores the name,
/// shape, and float32 payload. Optimizer state is not persisted (resume
/// restarts Adam moments, which is standard for inference checkpoints).

/// Writes every parameter of `store` to `path`. Returns false on I/O
/// failure.
bool SaveCheckpoint(const ParamStore& store, const std::string& path);

/// Loads values into matching parameters of `store` (matched by name;
/// shapes must agree). Parameters present in the store but missing from
/// the file are left untouched; extra file entries are ignored. Returns
/// false on I/O failure or a shape mismatch.
bool LoadCheckpoint(ParamStore* store, const std::string& path);

}  // namespace graphaug

#endif  // GRAPHAUG_AUTOGRAD_SERIALIZE_H_
