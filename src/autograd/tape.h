#ifndef GRAPHAUG_AUTOGRAD_TAPE_H_
#define GRAPHAUG_AUTOGRAD_TAPE_H_

#include <functional>
#include <vector>

#include "autograd/param.h"
#include "tensor/matrix.h"

namespace graphaug {

class Tape;

/// Lightweight handle to a node on a Tape. Copyable; valid until the tape
/// is destroyed or Reset().
class Var {
 public:
  Var() = default;
  Var(Tape* tape, int id) : tape_(tape), id_(id) {}

  bool valid() const { return tape_ != nullptr; }
  Tape* tape() const { return tape_; }
  int id() const { return id_; }

  /// Forward value of this node.
  const Matrix& value() const;
  int64_t rows() const { return value().rows(); }
  int64_t cols() const { return value().cols(); }

 private:
  Tape* tape_ = nullptr;
  int id_ = -1;
};

/// Tape-based reverse-mode automatic differentiation. One tape records one
/// forward pass; ops (see autograd/ops.h) append nodes, Backward() walks
/// the nodes in reverse creation order (a valid topological order since ops
/// only consume earlier nodes). Typical training-step usage:
///
///   Tape tape;
///   Var e  = ag::Leaf(&tape, embedding_param);
///   Var h  = ag::Spmm(&tape, &adj, e);
///   Var l  = ag::MeanAll(&tape, ag::Softplus(&tape, ...));
///   tape.Backward(l);          // accumulates into Parameter::grad
///   optimizer.Step(&store);
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Appends a node holding `value`. `backward` (may be empty for
  /// constants) receives the node's accumulated upstream gradient and must
  /// route it to the inputs via AccumulateGrad / parameter grads.
  /// `needs_grad` marks whether any ancestor is trainable.
  Var Emit(Matrix value, bool needs_grad,
           std::function<void(Tape*, const Matrix&)> backward);

  /// Creates a leaf node reading a parameter's current value; gradients
  /// accumulate into `param->grad`.
  Var Leaf(Parameter* param);

  /// Creates a constant (no gradient) node.
  Var Constant(Matrix value);

  /// Runs reverse-mode accumulation seeding d(root)/d(root) = 1. The root
  /// must be a 1x1 scalar node.
  void Backward(Var root);

  /// Number of nodes currently on the tape.
  int size() const { return static_cast<int>(nodes_.size()); }

  /// Drops all nodes (parameters are untouched).
  void Reset();

  /// Forward value of node `id`.
  const Matrix& ValueOf(int id) const {
    GA_DCHECK(id >= 0 && id < size());
    return nodes_[static_cast<size_t>(id)].value;
  }

  /// True if node `id` participates in gradient computation.
  bool NeedsGrad(int id) const {
    return nodes_[static_cast<size_t>(id)].needs_grad;
  }

  /// Adds `g` into the gradient accumulator of node `id`; allocates the
  /// accumulator on first use. No-op for nodes that don't need gradients.
  void AccumulateGrad(int id, const Matrix& g);

  /// Gradient accumulated at node `id` so far (empty matrix if none).
  const Matrix& GradOf(int id) const {
    return nodes_[static_cast<size_t>(id)].grad;
  }

 private:
  struct Node {
    Matrix value;
    Matrix grad;  // lazily allocated
    std::function<void(Tape*, const Matrix&)> backward;
    /// Op type that emitted this node (string literal published by the
    /// op's obs::ScopedOp), for backward-pass attribution. Nullptr when
    /// emitted outside any op scope.
    const char* op = nullptr;
    bool needs_grad = false;
    bool has_grad = false;
  };

  std::vector<Node> nodes_;
};

inline const Matrix& Var::value() const { return tape_->ValueOf(id_); }

}  // namespace graphaug

#endif  // GRAPHAUG_AUTOGRAD_TAPE_H_
