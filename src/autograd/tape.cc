#include "autograd/tape.h"

#include "obs/autograd_profiler.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace graphaug {

Var Tape::Emit(Matrix value, bool needs_grad,
               std::function<void(Tape*, const Matrix&)> backward) {
  Node node;
  node.value = std::move(value);
  node.backward = std::move(backward);
#if GRAPHAUG_OBS_ENABLED
  node.op = obs::ScopedOp::Current();
#endif
  node.needs_grad = needs_grad;
  nodes_.push_back(std::move(node));
  return Var(this, static_cast<int>(nodes_.size()) - 1);
}

Var Tape::Leaf(Parameter* param) {
  GA_CHECK(param != nullptr);
  return Emit(param->value, param->trainable,
              [param](Tape*, const Matrix& upstream) {
                if (!param->trainable) return;
                if (!param->grad.SameShape(param->value)) param->ZeroGrad();
                AddInPlace(&param->grad, upstream);
              });
}

Var Tape::Constant(Matrix value) {
  return Emit(std::move(value), false, nullptr);
}

void Tape::Backward(Var root) {
  GA_CHECK(root.valid() && root.tape() == this);
  GA_CHECK_EQ(ValueOf(root.id()).size(), 1) << "Backward root must be scalar";
  GA_TRACE_SPAN("backward");
  AccumulateGrad(root.id(), Matrix(1, 1, 1.f));
  // When profiling, time each node's backward closure under the op name
  // captured at Emit time. The guard is hoisted so an unprofiled run pays
  // only one branch per node.
  const bool profile = obs::Enabled();
  for (int id = root.id(); id >= 0; --id) {
    Node& node = nodes_[static_cast<size_t>(id)];
    if (!node.has_grad || !node.needs_grad || !node.backward) continue;
    if (profile && node.op != nullptr) {
      const int64_t t0 = obs::TraceClockNs();
      node.backward(this, node.grad);
      obs::AutogradProfiler::Get().RecordBackward(node.op,
                                                  obs::TraceClockNs() - t0);
    } else {
      node.backward(this, node.grad);
    }
  }
}

void Tape::Reset() { nodes_.clear(); }

void Tape::AccumulateGrad(int id, const Matrix& g) {
  Node& node = nodes_[static_cast<size_t>(id)];
  if (!node.needs_grad) return;
  GA_CHECK(g.SameShape(node.value))
      << "gradient shape " << g.ShapeString() << " vs value "
      << node.value.ShapeString();
  if (!node.has_grad) {
    node.grad = g;
    node.has_grad = true;
  } else {
    AddInPlace(&node.grad, g);
  }
}

}  // namespace graphaug
