#ifndef GRAPHAUG_AUTOGRAD_GRAD_CHECK_H_
#define GRAPHAUG_AUTOGRAD_GRAD_CHECK_H_

#include <functional>

#include "autograd/param.h"
#include "autograd/tape.h"

namespace graphaug {

/// Result of a finite-difference gradient verification.
struct GradCheckResult {
  bool ok = false;
  float max_abs_error = 0.f;
  float max_rel_error = 0.f;
};

/// Verifies the analytic gradient of `loss_fn` with respect to `param` by
/// central finite differences. `loss_fn` must build a fresh scalar loss on
/// the supplied tape each call (reading param->value). Used by the autograd
/// unit tests to validate every op.
GradCheckResult CheckGradient(
    Parameter* param, const std::function<Var(Tape*)>& loss_fn,
    float fd_eps = 1e-3f, float tol = 5e-2f);

}  // namespace graphaug

#endif  // GRAPHAUG_AUTOGRAD_GRAD_CHECK_H_
