#include "core/graphaug.h"

#include "models/debias.h"
#include "obs/health.h"
#include "tensor/ops.h"

namespace graphaug {

GraphAug::GraphAug(const Dataset* dataset, const GraphAugConfig& config)
    : Recommender(dataset, config), gconfig_(config) {
  adj_ = graph_.BuildNormalizedAdjacency(gconfig_.self_loop_weight);
  power_cache_ = std::make_unique<AdjacencyPowerCache>(&adj_.matrix);
  embeddings_ = store_.CreateNormal("embeddings", graph_.num_nodes(),
                                    config.dim, &rng_);
  if (gconfig_.use_mixhop) {
    mixhop_ = std::make_unique<MixhopEncoder>(
        &store_, "mixhop", config.dim, config.num_layers, gconfig_.hops,
        config.leaky_slope, &rng_, gconfig_.mixhop_mode,
        gconfig_.mixhop_activation);
  } else {
    // "w/o Mixhop" ablation: a standard GCN (per-layer transform +
    // nonlinearity, last-layer output), which is exactly the encoder the
    // paper swaps in — and the one that over-smooths (Table III).
    for (int l = 0; l < config.num_layers; ++l) {
      gcn_layers_.emplace_back(&store_, "gcn.l" + std::to_string(l),
                               config.dim, config.dim, &rng_,
                               /*bias=*/false);
    }
  }
  scorer_ = std::make_unique<EdgeScorer>(&store_, "augmentor", config.dim,
                                         &rng_, gconfig_.scorer_noise);
}

Var GraphAug::EncodeBase(Tape* tape, Var base) {
  if (gconfig_.use_mixhop) {
    return mixhop_->Encode(tape, power_cache_.get(), base);
  }
  Var h = base;
  for (const Linear& layer : gcn_layers_) {
    h = ag::LeakyRelu(
        layer.Forward(tape, ag::SpmmPower(power_cache_.get(), 1, h)),
        config_.leaky_slope);
  }
  return h;
}

Var GraphAug::EncodeView(Tape* tape, Var edge_weights, Var base) {
  if (gconfig_.use_mixhop) {
    return mixhop_->EncodeWeighted(tape, &adj_, edge_weights, base);
  }
  Var h = base;
  for (const Linear& layer : gcn_layers_) {
    h = ag::LeakyRelu(
        layer.Forward(tape, ag::EdgeWeightedSpmm(&adj_, edge_weights, h)),
        config_.leaky_slope);
  }
  return h;
}

Var GraphAug::BuildLoss(Tape* tape, const TripletBatch& batch) {
  Var base = ag::Leaf(tape, embeddings_);

  // (Alg. 1, line 3) High-order embeddings of the observed graph.
  Var h_bar = EncodeBase(tape, base);

  // (Eq. 15) Main-task BPR on the observed-graph embeddings; optionally
  // IPS-weighted (unbiased-SSL extension).
  Var u = ag::GatherRows(h_bar, batch.users);
  Var p = ag::GatherRows(h_bar, ToNodeIds(batch.pos_items));
  Var n = ag::GatherRows(h_bar, ToNodeIds(batch.neg_items));
  Var pos_scores = ag::RowDot(u, p);
  Var neg_scores = ag::RowDot(u, n);
  Var loss;
  if (gconfig_.ips_gamma > 0.f) {
    if (propensities_.empty()) {
      propensities_ = ItemPropensities(graph_, gconfig_.ips_gamma);
    }
    loss = IpsBprLoss(tape, pos_scores, neg_scores, batch.pos_items,
                      propensities_);
  } else {
    loss = ag::BprLoss(pos_scores, neg_scores);
  }

  // Loss-component telemetry records each term's *weighted* contribution
  // to the total objective; values are read off the tape, never mutated.
  if (obs::Enabled()) {
    obs::HealthTracker::Get().RecordLossComponent("bpr",
                                                  loss.value().scalar());
  }

  const bool needs_views = gconfig_.use_gib || gconfig_.use_cl;
  if (!needs_views) return loss;

  // (Eq. 4) Learnable augmentor scores every observed interaction.
  Var probs =
      scorer_->Score(tape, h_bar, graph_.edges(), ItemOffset(), &rng_);

  // (Eq. 5 / Alg. 1 line 4) Two reparameterized graph samples.
  Var w_prime = SampleEdgeWeights(tape, probs, gconfig_.concrete_temperature,
                                  gconfig_.edge_threshold, &rng_);
  Var w_dprime = SampleEdgeWeights(tape, probs, gconfig_.concrete_temperature,
                                   gconfig_.edge_threshold, &rng_);

  // (Eq. 11 / Alg. 1 line 5) Encode both augmented views.
  Var z_prime = EncodeView(tape, w_prime, base);
  Var z_dprime = EncodeView(tape, w_dprime, base);

  // (Eq. 9-10 / Alg. 1 lines 6-7) GIB regularization: the prediction
  // bound anchors the augmentor to the labels at O(1) weight; the KL
  // compression bound carries the swept Lagrange weight β₁ (Fig. 5).
  if (gconfig_.use_gib) {
    Var pred = ag::Scale(
        ag::Add(GibPredictionTerm(tape, z_prime, batch, ItemOffset()),
                GibPredictionTerm(tape, z_dprime, batch, ItemOffset())),
        0.5f * gconfig_.gib_pred_weight);
    Var kl = GibCompressionTerm(tape, h_bar, z_prime, z_dprime);
    if (obs::Enabled()) {
      obs::HealthTracker::Get().RecordLossComponent("gib_pred",
                                                    pred.value().scalar());
      obs::HealthTracker::Get().RecordLossComponent(
          "gib_kl",
          kl.value().scalar() * gconfig_.beta1 * gconfig_.gib_beta);
    }
    loss = ag::Add(loss,
                   ag::Add(pred, ag::Scale(kl, gconfig_.beta1 *
                                                   gconfig_.gib_beta)));
    if (gconfig_.structure_kl_weight > 0.f) {
      Var skl = BernoulliStructureKl(tape, probs, gconfig_.structure_prior);
      if (obs::Enabled()) {
        obs::HealthTracker::Get().RecordLossComponent(
            "structure_kl",
            skl.value().scalar() * gconfig_.structure_kl_weight);
      }
      loss = ag::Add(loss, ag::Scale(skl, gconfig_.structure_kl_weight));
    }
  }

  // (Eq. 14 / Alg. 1 line 8) Mixhop graph contrastive augmentation.
  if (gconfig_.use_cl) {
    std::vector<int32_t> users =
        sampler_.SampleUsers(config_.contrast_batch, &rng_);
    std::vector<int32_t> items =
        ToNodeIds(sampler_.SampleItems(config_.contrast_batch, &rng_));
    Var cl_user = ag::InfoNceLoss(ag::GatherRows(z_prime, users),
                                  ag::GatherRows(z_dprime, users),
                                  config_.temperature);
    Var cl_item = ag::InfoNceLoss(ag::GatherRows(z_prime, items),
                                  ag::GatherRows(z_dprime, items),
                                  config_.temperature);
    Var cl = ag::Add(cl_user, cl_item);
    if (obs::Enabled()) {
      obs::HealthTracker::Get().RecordLossComponent(
          "contrastive",
          cl.value().scalar() * gconfig_.beta2 * config_.ssl_weight);
    }
    loss = ag::Add(loss, ag::Scale(cl, gconfig_.beta2 * config_.ssl_weight));
  } else if (gconfig_.use_gib) {
    // "w/o CL" variant: GIB directly regularizes the BPR objective via an
    // extra prediction term on the denoised views.
    Var extra = ag::Scale(
        ag::Add(GibPredictionTerm(tape, z_prime, batch, ItemOffset()),
                GibPredictionTerm(tape, z_dprime, batch, ItemOffset())),
        0.5f * config_.ssl_weight);
    if (obs::Enabled()) {
      obs::HealthTracker::Get().RecordLossComponent("gib_pred_extra",
                                                    extra.value().scalar());
    }
    loss = ag::Add(loss, extra);
  }
  return loss;
}

void GraphAug::ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) {
  // Forecasting phase: predictions use GE(G) on the observed graph.
  Tape tape;
  Var base = ag::Leaf(&tape, embeddings_);
  Var h = EncodeBase(&tape, base);
  *user_emb = SliceRows(h.value(), 0, graph_.num_users());
  *item_emb = SliceRows(h.value(), graph_.num_users(), graph_.num_items());
}

std::vector<float> GraphAug::EdgeProbabilities() {
  Tape tape;
  Var base = ag::Leaf(&tape, embeddings_);
  Var h = EncodeBase(&tape, base);
  Var probs =
      scorer_->Score(&tape, h, graph_.edges(), ItemOffset(), nullptr);
  const Matrix& pv = probs.value();
  return std::vector<float>(pv.data(), pv.data() + pv.size());
}

}  // namespace graphaug
