#include "core/graphaug.h"

#include "augment/gib.h"
#include "augment/registry.h"
#include "models/debias.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

/// Wall-clock attribution of augmentor work, keyed by strategy name.
/// Counters live in the process registry; recording is skipped entirely
/// when the obs layer is off, so the hot path pays one branch.
void RecordAugmentTiming(const std::string& augmentor, const char* stage,
                         int64_t elapsed_ns) {
  obs::MetricsRegistry::Get()
      .GetCounter("augment." + augmentor + "." + stage + "_ns")
      ->Inc(elapsed_ns);
  obs::MetricsRegistry::Get()
      .GetCounter("augment." + augmentor + "." + stage + "_calls")
      ->Inc();
}

}  // namespace

GraphAug::GraphAug(const Dataset* dataset, const GraphAugConfig& config)
    : Recommender(dataset, config), gconfig_(config) {
  adj_ = graph_.BuildNormalizedAdjacency(gconfig_.self_loop_weight);
  power_cache_ = std::make_unique<AdjacencyPowerCache>(&adj_.matrix);
  embeddings_ = store_.CreateNormal("embeddings", graph_.num_nodes(),
                                    config.dim, &rng_);
  if (gconfig_.use_mixhop) {
    mixhop_ = std::make_unique<MixhopEncoder>(
        &store_, "mixhop", config.dim, config.num_layers, gconfig_.hops,
        config.leaky_slope, &rng_, gconfig_.mixhop_mode,
        gconfig_.mixhop_activation);
  } else {
    // "w/o Mixhop" ablation: a standard GCN (per-layer transform +
    // nonlinearity, last-layer output), which is exactly the encoder the
    // paper swaps in — and the one that over-smooths (Table III).
    for (int l = 0; l < config.num_layers; ++l) {
      gcn_layers_.emplace_back(&store_, "gcn.l" + std::to_string(l),
                               config.dim, config.dim, &rng_,
                               /*bias=*/false);
    }
  }
  // The "w/o GIB" switch rides along inside the gib strategy config so
  // the augmentor owns the decision of whether to emit an aux loss.
  AugmentorConfig acfg = gconfig_.augmentor;
  acfg.gib.gib_loss = gconfig_.use_gib;
  augmenter_ = MakeAugmenter(acfg);
  AugmenterInit init;
  init.graph = &graph_;
  init.adj = &adj_;
  init.power_cache = power_cache_.get();
  init.store = &store_;
  init.dim = config.dim;
  init.num_layers = config.num_layers;
  init.rng = &rng_;
  augmenter_->Init(init);
}

void GraphAug::OnEpochBegin() {
  augmenter_->Adapt(epoch_++, &rng_);
}

Var GraphAug::EncodeBase(Tape* tape, Var base) {
  if (gconfig_.use_mixhop) {
    return mixhop_->Encode(tape, power_cache_.get(), base);
  }
  Var h = base;
  for (const Linear& layer : gcn_layers_) {
    h = ag::LeakyRelu(
        layer.Forward(tape, ag::SpmmPower(power_cache_.get(), 1, h)),
        config_.leaky_slope);
  }
  return h;
}

Var GraphAug::EncodeView(Tape* tape, Var edge_weights, Var base) {
  if (gconfig_.use_mixhop) {
    return mixhop_->EncodeWeighted(tape, &adj_, edge_weights, base);
  }
  Var h = base;
  for (const Linear& layer : gcn_layers_) {
    h = ag::LeakyRelu(
        layer.Forward(tape, ag::EdgeWeightedSpmm(&adj_, edge_weights, h)),
        config_.leaky_slope);
  }
  return h;
}

Var GraphAug::EncodeAugmented(Tape* tape, const AugmentedView& view,
                              Var base) {
  if (view.embeddings.valid()) return view.embeddings;
  if (view.adjacency != nullptr) {
    if (gconfig_.use_mixhop) {
      return mixhop_->Encode(tape, &view.adjacency->matrix, base);
    }
    Var h = base;
    for (const Linear& layer : gcn_layers_) {
      h = ag::LeakyRelu(
          layer.Forward(tape, ag::Spmm(&view.adjacency->matrix, h)),
          config_.leaky_slope);
    }
    return h;
  }
  GA_CHECK(view.edge_weights.valid()) << "augmented view has no content";
  return EncodeView(tape, view.edge_weights, base);
}

Var GraphAug::BuildLoss(Tape* tape, const TripletBatch& batch) {
  Var base = ag::Leaf(tape, embeddings_);

  // (Alg. 1, line 3) High-order embeddings of the observed graph.
  Var h_bar = EncodeBase(tape, base);

  // (Eq. 15) Main-task BPR on the observed-graph embeddings; optionally
  // IPS-weighted (unbiased-SSL extension).
  Var u = ag::GatherRows(h_bar, batch.users);
  Var p = ag::GatherRows(h_bar, ToNodeIds(batch.pos_items));
  Var n = ag::GatherRows(h_bar, ToNodeIds(batch.neg_items));
  Var pos_scores = ag::RowDot(u, p);
  Var neg_scores = ag::RowDot(u, n);
  Var loss;
  if (gconfig_.ips_gamma > 0.f) {
    if (propensities_.empty()) {
      propensities_ = ItemPropensities(graph_, gconfig_.ips_gamma);
    }
    loss = IpsBprLoss(tape, pos_scores, neg_scores, batch.pos_items,
                      propensities_);
  } else {
    loss = ag::BprLoss(pos_scores, neg_scores);
  }

  // Loss-component telemetry records each term's *weighted* contribution
  // to the total objective; values are read off the tape, never mutated.
  if (obs::Enabled()) {
    obs::HealthTracker::Get().RecordLossComponent("bpr",
                                                  loss.value().scalar());
  }

  const bool needs_views = gconfig_.use_gib || gconfig_.use_cl;
  if (!needs_views) return loss;

  // (Alg. 1 lines 4-5) The configured strategy produces the two views,
  // which the host encodes according to their shape.
  AugmenterState state;
  state.tape = tape;
  state.base = base;
  state.h_bar = h_bar;
  state.batch = &batch;
  state.rng = &rng_;

  const bool timed = obs::Enabled();
  int64_t t0 = timed ? obs::TraceClockNs() : 0;
  AugmentedViews views = augmenter_->Augment(state);
  if (timed) {
    RecordAugmentTiming(augmenter_->name(), "augment",
                        obs::TraceClockNs() - t0);
  }
  Var z_prime = EncodeAugmented(tape, views.first, base);
  Var z_dprime = EncodeAugmented(tape, views.second, base);

  // (Alg. 1 lines 6-7) Strategy-owned auxiliary objective (the GIB bounds
  // for "gib", masked-edge reconstruction for "autocf", none otherwise).
  t0 = timed ? obs::TraceClockNs() : 0;
  Var aux = augmenter_->AuxLoss(state, z_prime, z_dprime);
  if (timed) {
    RecordAugmentTiming(augmenter_->name(), "aux_loss",
                        obs::TraceClockNs() - t0);
  }
  if (aux.valid()) loss = ag::Add(loss, aux);

  // (Eq. 14 / Alg. 1 line 8) Mixhop graph contrastive augmentation.
  if (gconfig_.use_cl) {
    std::vector<int32_t> users =
        sampler_.SampleUsers(config_.contrast_batch, &rng_);
    std::vector<int32_t> items =
        ToNodeIds(sampler_.SampleItems(config_.contrast_batch, &rng_));
    Var cl_user = ag::InfoNceLoss(ag::GatherRows(z_prime, users),
                                  ag::GatherRows(z_dprime, users),
                                  config_.temperature);
    Var cl_item = ag::InfoNceLoss(ag::GatherRows(z_prime, items),
                                  ag::GatherRows(z_dprime, items),
                                  config_.temperature);
    Var cl = ag::Add(cl_user, cl_item);
    if (obs::Enabled()) {
      obs::HealthTracker::Get().RecordLossComponent(
          "contrastive",
          cl.value().scalar() * gconfig_.beta2 * config_.ssl_weight);
    }
    loss = ag::Add(loss, ag::Scale(cl, gconfig_.beta2 * config_.ssl_weight));
  } else if (gconfig_.use_gib) {
    // "w/o CL" variant: GIB directly regularizes the BPR objective via an
    // extra prediction term on the denoised views.
    Var extra = ag::Scale(
        ag::Add(GibPredictionTerm(tape, z_prime, batch, ItemOffset()),
                GibPredictionTerm(tape, z_dprime, batch, ItemOffset())),
        0.5f * config_.ssl_weight);
    if (obs::Enabled()) {
      obs::HealthTracker::Get().RecordLossComponent("gib_pred_extra",
                                                    extra.value().scalar());
    }
    loss = ag::Add(loss, extra);
  }
  return loss;
}

void GraphAug::ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) {
  // Forecasting phase: predictions use GE(G) on the observed graph.
  Tape tape;
  Var base = ag::Leaf(&tape, embeddings_);
  Var h = EncodeBase(&tape, base);
  *user_emb = SliceRows(h.value(), 0, graph_.num_users());
  *item_emb = SliceRows(h.value(), graph_.num_users(), graph_.num_items());
}

std::vector<float> GraphAug::EdgeProbabilities() {
  Tape tape;
  Var base = ag::Leaf(&tape, embeddings_);
  Var h = EncodeBase(&tape, base);
  Var probs = augmenter_->EdgeScores(&tape, h);
  GA_CHECK(probs.valid()) << "augmentor '" << augmenter_->name()
                          << "' exposes no edge scores";
  const Matrix& pv = probs.value();
  return std::vector<float>(pv.data(), pv.data() + pv.size());
}

}  // namespace graphaug
