#ifndef GRAPHAUG_CORE_MIXHOP_ENCODER_H_
#define GRAPHAUG_CORE_MIXHOP_ENCODER_H_

#include <vector>

#include "autograd/ops.h"
#include "nn/layers.h"

namespace graphaug {

/// Parameterization of the per-hop mixing in the mixhop encoder.
enum class MixhopMode {
  /// Full per-hop d×d transforms W_m plus a concat+project combine — the
  /// literal Eq. 12 form. Expressive but parameter-heavy; prone to
  /// underperforming on sparse graphs.
  kMatrixTransform,
  /// Per-hop learnable d-dim gate vectors w_m summed across hops:
  ///   H^{(l+1)} = δ( Σ_{m∈M} (Ã^m H^{(l)}) ⊙ w_m^{(l)} )
  /// — the "learnable weight vector" combination the paper describes.
  /// Initialised at uniform 1/|M| it starts as LightGCN-like smoothing
  /// and learns where to relax it. Default.
  kVectorGate,
};

/// Graph Mixhop encoder (paper §III-C, Eqs. 11-13). Each layer mixes
/// multi-hop propagated embeddings Ã^m H for m in the hop set M (default
/// {0, 1, 2}); Ã^m is applied as repeated SpMM and never materialized
/// (the paper's memory argument). Mixing 0/1/2-hop signals relaxes
/// embedding smoothing and counters GNN over-smoothing; the final output
/// averages all layer embeddings.
class MixhopEncoder {
 public:
  /// `hops` must contain non-negative hop counts (0 = identity).
  MixhopEncoder(ParamStore* store, const std::string& name, int dim,
                int num_layers, std::vector<int> hops, float leaky_slope,
                Rng* rng, MixhopMode mode = MixhopMode::kVectorGate,
                bool activation = true);

  /// Encodes over a constant adjacency.
  Var Encode(Tape* tape, const CsrMatrix* adj, Var base) const;

  /// Encodes over a constant adjacency through an AdjacencyPowerCache, so
  /// the repeated Ã^m H products (and their transposed backward products)
  /// reuse the warm CSC mirror. Bitwise identical to the CsrMatrix*
  /// overload at any thread count.
  Var Encode(Tape* tape, const AdjacencyPowerCache* cache, Var base) const;

  /// Encodes over a differentiable edge-weighted adjacency (the sampled
  /// augmented graphs G', G'' of Eq. 5).
  Var EncodeWeighted(Tape* tape, const NormalizedAdjacency* adj, Var edge_w,
                     Var base) const;

  int num_layers() const { return num_layers_; }
  const std::vector<int>& hops() const { return hops_; }
  MixhopMode mode() const { return mode_; }

 private:
  /// `propagate(h)` applies one adjacency multiplication.
  Var EncodeImpl(Tape* tape, const std::function<Var(Var)>& propagate,
                 Var base) const;

  int dim_;
  int num_layers_;
  std::vector<int> hops_;
  float leaky_slope_;
  MixhopMode mode_;
  bool activation_;
  std::vector<std::vector<Linear>> hop_transforms_;  // [layer][hop] (matrix)
  std::vector<Linear> combine_;                      // [layer] (matrix)
  std::vector<std::vector<Parameter*>> hop_gates_;   // [layer][hop] (vector)
};

}  // namespace graphaug

#endif  // GRAPHAUG_CORE_MIXHOP_ENCODER_H_
