#include "core/mixhop_encoder.h"

#include <algorithm>

namespace graphaug {

MixhopEncoder::MixhopEncoder(ParamStore* store, const std::string& name,
                             int dim, int num_layers, std::vector<int> hops,
                             float leaky_slope, Rng* rng, MixhopMode mode,
                             bool activation)
    : dim_(dim),
      num_layers_(num_layers),
      hops_(std::move(hops)),
      leaky_slope_(leaky_slope),
      mode_(mode),
      activation_(activation) {
  GA_CHECK(!hops_.empty());
  GA_CHECK_GE(num_layers, 1);
  for (int h : hops_) GA_CHECK_GE(h, 0);
  const int64_t n_hops = static_cast<int64_t>(hops_.size());
  for (int l = 0; l < num_layers_; ++l) {
    if (mode_ == MixhopMode::kMatrixTransform) {
      std::vector<Linear> per_hop;
      for (size_t m = 0; m < hops_.size(); ++m) {
        per_hop.emplace_back(store,
                             name + ".l" + std::to_string(l) + ".w" +
                                 std::to_string(hops_[m]),
                             dim, dim, rng, /*bias=*/false);
      }
      hop_transforms_.push_back(std::move(per_hop));
      combine_.emplace_back(store,
                            name + ".l" + std::to_string(l) + ".combine",
                            n_hops * dim, dim, rng, /*bias=*/false);
    } else {
      std::vector<Parameter*> gates;
      for (size_t m = 0; m < hops_.size(); ++m) {
        Parameter* g = store->Create(
            name + ".l" + std::to_string(l) + ".gate" +
                std::to_string(hops_[m]),
            1, dim);
        // Uniform mixing at init: the encoder starts as LightGCN-like
        // multi-hop smoothing and learns where to depart from it.
        g->value.Fill(1.f / static_cast<float>(n_hops));
        gates.push_back(g);
      }
      hop_gates_.push_back(std::move(gates));
    }
  }
}

Var MixhopEncoder::EncodeImpl(Tape* tape,
                              const std::function<Var(Var)>& propagate,
                              Var base) const {
  const int max_hop = *std::max_element(hops_.begin(), hops_.end());
  Var h = base;
  Var sum = base;
  for (int l = 0; l < num_layers_; ++l) {
    // Compute Ã^m h incrementally: powers[m] = Ã powers[m-1].
    std::vector<Var> powers;
    powers.reserve(max_hop + 1);
    powers.push_back(h);
    for (int m = 1; m <= max_hop; ++m) {
      powers.push_back(propagate(powers.back()));
    }
    Var mixed;
    if (mode_ == MixhopMode::kMatrixTransform) {
      for (size_t mi = 0; mi < hops_.size(); ++mi) {
        Var hm = hop_transforms_[l][mi].Forward(
            tape, powers[static_cast<size_t>(hops_[mi])]);
        mixed = mi == 0 ? hm : ag::ConcatCols(mixed, hm);
      }
      mixed = combine_[l].Forward(tape, mixed);
    } else {
      for (size_t mi = 0; mi < hops_.size(); ++mi) {
        Var hm = ag::MulRowBroadcast(
            powers[static_cast<size_t>(hops_[mi])],
            ag::Leaf(tape, hop_gates_[l][mi]));
        mixed = mi == 0 ? hm : ag::Add(mixed, hm);
      }
    }
    h = activation_ ? ag::LeakyRelu(mixed, leaky_slope_) : mixed;
    sum = ag::Add(sum, h);
  }
  return ag::Scale(sum, 1.f / static_cast<float>(num_layers_ + 1));
}

Var MixhopEncoder::Encode(Tape* tape, const CsrMatrix* adj, Var base) const {
  return EncodeImpl(
      tape, [adj](Var h) { return ag::Spmm(adj, h); }, base);
}

Var MixhopEncoder::Encode(Tape* tape, const AdjacencyPowerCache* cache,
                          Var base) const {
  return EncodeImpl(
      tape, [cache](Var h) { return ag::SpmmPower(cache, 1, h); }, base);
}

Var MixhopEncoder::EncodeWeighted(Tape* tape, const NormalizedAdjacency* adj,
                                  Var edge_w, Var base) const {
  return EncodeImpl(
      tape,
      [adj, edge_w](Var h) { return ag::EdgeWeightedSpmm(adj, edge_w, h); },
      base);
}

}  // namespace graphaug
