#ifndef GRAPHAUG_CORE_GRAPHAUG_H_
#define GRAPHAUG_CORE_GRAPHAUG_H_

#include <memory>
#include <vector>

#include "core/edge_scorer.h"
#include "core/gib.h"
#include "core/mixhop_encoder.h"
#include "core/reparam_sampler.h"
#include "models/propagation.h"
#include "models/recommender.h"

namespace graphaug {

/// Full configuration of the GraphAug model (paper Eq. 16 / Alg. 1).
/// The ablation switches reproduce the Fig. 2 variants.
struct GraphAugConfig : ModelConfig {
  std::vector<int> hops = {0, 1, 2};  ///< mixhop set M
  /// Self-loop weight of Ã. The paper's Eq. 11 uses Ã = D^{-1/2}(A+I)D^{-1/2};
  /// with the hop-0 term already carrying the identity signal, a
  /// self-loop-free Ã (0.0) avoids double-counting self information and
  /// propagates further on sparse graphs.
  float self_loop_weight = 0.0f;
  float concrete_temperature = 0.2f;  ///< τ₁ in Eq. 5
  float edge_threshold = 0.2f;        ///< ξ (augmentation strength, Tab. IV)
  float gib_beta = 1.f;               ///< β inside L_GIB (Eq. 2)
  float beta1 = 1e-5f;                ///< weight of the GIB KL bound (Eq. 16)
  /// Weight of the GIB prediction bound −log q(Y|Z'). Kept at O(1) rather
  /// than folded under β₁: the prediction bound is what anchors the
  /// learnable augmentor to the recommendation labels — without it the
  /// contrastive term alone is minimized by degenerate all-dropped views.
  float gib_pred_weight = 0.5f;
  /// Prior retention probability π and weight of the structure-level
  /// Bernoulli-KL compression bound KL(Bern(p_e) ‖ Bern(π)) — the
  /// Lemma-1 bound applied to the sampled adjacency. Off by default:
  /// measured on the simulated benchmarks it rescales the probabilities
  /// toward π without improving noise discrimination or accuracy, but it
  /// is the right knob when retention saturation is observed.
  float structure_prior = 0.7f;
  float structure_kl_weight = 0.0f;
  /// Weight of L_CL in Eq. 16 (multiplies the shared ssl_weight). Tuned
  /// on the simulated benchmarks: denoised views are already well aligned,
  /// so a lighter contrastive pull than SGL-style baselines works best.
  float beta2 = 0.2f;
  float scorer_noise = 0.1f;          ///< ε std-dev in Eq. 4
  /// Per-hop mixing parameterization (see MixhopMode). kVectorGate (the
  /// paper's "learnable weight vector" combination) is the default; the
  /// matrix-transform form of Eq. 12 is available for the ablation bench.
  MixhopMode mixhop_mode = MixhopMode::kVectorGate;
  bool mixhop_activation = true;      ///< apply δ (LeakyReLU) per layer
  bool use_mixhop = true;   ///< false => standard-GCN encoder ("w/o Mixhop")
  /// Unbiased-SSL extension (paper §VI future work): when > 0, the BPR and
  /// GIB prediction terms are inverse-propensity weighted with popularity
  /// propensities ρ_v ∝ deg_v^γ so long-tail items receive fair gradient
  /// mass. 0 disables (paper-faithful default).
  float ips_gamma = 0.f;
  bool use_gib = true;      ///< false => drop L_GIB ("w/o GIB")
  bool use_cl = true;       ///< false => drop L_CL; GIB regularizes BPR ("w/o CL")
};

/// GraphAug: GIB-regularized denoised graph augmentation with mixhop
/// graph contrastive learning (ICDE 2024). One training step implements
/// Alg. 1:
///  1. encode the observed graph with the mixhop encoder → H̄;
///  2. score every interaction with the learnable augmentor (Eq. 4);
///  3. sample two differentiable augmented graphs G', G'' via the
///     concrete reparameterization with threshold ξ (Eq. 5);
///  4. encode both views → Z', Z'' (Eq. 11);
///  5. GIB loss: variational prediction + KL compression bounds (Eq. 9-10);
///  6. InfoNCE contrast between Z' and Z'' on users and items (Eq. 14);
///  7. BPR on H̄ (Eq. 15); joint objective Eq. 16.
class GraphAug : public Recommender {
 public:
  GraphAug(const Dataset* dataset, const GraphAugConfig& config);

  std::string name() const override { return "GraphAug"; }

  const GraphAugConfig& graphaug_config() const { return gconfig_; }

  /// Learned retention probability p((u,v)|H̄) for every training
  /// interaction, in graph-edge order (noise-free scorer pass). The case
  /// study (Fig. 6) checks that generator-injected noise edges receive
  /// lower probabilities.
  std::vector<float> EdgeProbabilities();

 protected:
  Var BuildLoss(Tape* tape, const TripletBatch& batch) override;
  void ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) override;

 private:
  /// Encodes with the configured encoder over a constant adjacency.
  Var EncodeBase(Tape* tape, Var base);
  /// Encodes over an edge-weighted (sampled) adjacency.
  Var EncodeView(Tape* tape, Var edge_weights, Var base);

  GraphAugConfig gconfig_;
  NormalizedAdjacency adj_;  ///< Ã with self-loops over I+J nodes
  /// Warm CSC-mirror state for repeated Ã^m H products in the base
  /// encoder path (constructed after adj_, which it points into).
  std::unique_ptr<AdjacencyPowerCache> power_cache_;
  Parameter* embeddings_;
  std::unique_ptr<MixhopEncoder> mixhop_;
  std::vector<Linear> gcn_layers_;  ///< "w/o Mixhop" standard-GCN ablation
  std::unique_ptr<EdgeScorer> scorer_;
  Matrix propensities_;  ///< lazily built when ips_gamma > 0
};

}  // namespace graphaug

#endif  // GRAPHAUG_CORE_GRAPHAUG_H_
