#ifndef GRAPHAUG_CORE_GRAPHAUG_H_
#define GRAPHAUG_CORE_GRAPHAUG_H_

#include <memory>
#include <vector>

#include "augment/augmenter.h"
#include "core/mixhop_encoder.h"
#include "models/propagation.h"
#include "models/recommender.h"

namespace graphaug {

/// Full configuration of the GraphAug model (paper Eq. 16 / Alg. 1).
/// The ablation switches reproduce the Fig. 2 variants. Strategy-specific
/// knobs (GIB weights, dropout rates, SVD rank, ...) live in the nested
/// `augmentor` config — see augment/augmenter.h for the per-strategy
/// structs; `augmentor.name` selects the strategy ("gib" reproduces the
/// paper).
struct GraphAugConfig : ModelConfig {
  std::vector<int> hops = {0, 1, 2};  ///< mixhop set M
  /// Self-loop weight of Ã. The paper's Eq. 11 uses Ã = D^{-1/2}(A+I)D^{-1/2};
  /// with the hop-0 term already carrying the identity signal, a
  /// self-loop-free Ã (0.0) avoids double-counting self information and
  /// propagates further on sparse graphs.
  float self_loop_weight = 0.0f;
  /// Pluggable augmentation strategy plus its per-strategy knobs.
  AugmentorConfig augmentor;
  /// Weight of L_CL in Eq. 16 (multiplies the shared ssl_weight). Tuned
  /// on the simulated benchmarks: denoised views are already well aligned,
  /// so a lighter contrastive pull than SGL-style baselines works best.
  float beta2 = 0.2f;
  /// Per-hop mixing parameterization (see MixhopMode). kVectorGate (the
  /// paper's "learnable weight vector" combination) is the default; the
  /// matrix-transform form of Eq. 12 is available for the ablation bench.
  MixhopMode mixhop_mode = MixhopMode::kVectorGate;
  bool mixhop_activation = true;      ///< apply δ (LeakyReLU) per layer
  bool use_mixhop = true;   ///< false => standard-GCN encoder ("w/o Mixhop")
  /// Unbiased-SSL extension (paper §VI future work): when > 0, the BPR and
  /// GIB prediction terms are inverse-propensity weighted with popularity
  /// propensities ρ_v ∝ deg_v^γ so long-tail items receive fair gradient
  /// mass. 0 disables (paper-faithful default).
  float ips_gamma = 0.f;
  bool use_gib = true;      ///< false => drop L_GIB ("w/o GIB")
  bool use_cl = true;       ///< false => drop L_CL; GIB regularizes BPR ("w/o CL")
};

/// GraphAug: GIB-regularized denoised graph augmentation with mixhop
/// graph contrastive learning (ICDE 2024). One training step implements
/// Alg. 1:
///  1. encode the observed graph with the mixhop encoder → H̄;
///  2. the configured GraphAugmenter produces two augmented views
///     (for "gib": Eq. 4 scoring + Eq. 5 concrete sampling);
///  3. encode both views → Z', Z'' (Eq. 11);
///  4. augmentor auxiliary loss (for "gib": the variational GIB
///     prediction + KL compression bounds, Eq. 9-10);
///  5. InfoNCE contrast between Z' and Z'' on users and items (Eq. 14);
///  6. BPR on H̄ (Eq. 15); joint objective Eq. 16.
class GraphAug : public Recommender {
 public:
  GraphAug(const Dataset* dataset, const GraphAugConfig& config);

  std::string name() const override { return "GraphAug"; }

  const GraphAugConfig& graphaug_config() const { return gconfig_; }

  /// The active augmentation strategy.
  const GraphAugmenter& augmenter() const { return *augmenter_; }

  /// Learned retention probability p((u,v)|H̄) for every training
  /// interaction, in graph-edge order (noise-free scorer pass). The case
  /// study (Fig. 6) checks that generator-injected noise edges receive
  /// lower probabilities. Aborts when the configured augmentor has no
  /// notion of edge scores (only "gib" does today).
  std::vector<float> EdgeProbabilities();

 protected:
  Var BuildLoss(Tape* tape, const TripletBatch& batch) override;
  void ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) override;
  void OnEpochBegin() override;

 private:
  /// Encodes with the configured encoder over a constant adjacency.
  Var EncodeBase(Tape* tape, Var base);
  /// Encodes over an edge-weighted (sampled) adjacency.
  Var EncodeView(Tape* tape, Var edge_weights, Var base);
  /// Encodes one augmented view, whatever its shape: already-encoded
  /// embeddings pass through, structural views run the base encoder over
  /// the replacement adjacency, edge-weight views run EncodeView.
  Var EncodeAugmented(Tape* tape, const AugmentedView& view, Var base);

  GraphAugConfig gconfig_;
  NormalizedAdjacency adj_;  ///< Ã with self-loops over I+J nodes
  /// Warm CSC-mirror state for repeated Ã^m H products in the base
  /// encoder path (constructed after adj_, which it points into).
  std::unique_ptr<AdjacencyPowerCache> power_cache_;
  Parameter* embeddings_;
  std::unique_ptr<MixhopEncoder> mixhop_;
  std::vector<Linear> gcn_layers_;  ///< "w/o Mixhop" standard-GCN ablation
  std::unique_ptr<GraphAugmenter> augmenter_;
  Matrix propensities_;  ///< lazily built when ips_gamma > 0
  int epoch_ = 0;
};

}  // namespace graphaug

#endif  // GRAPHAUG_CORE_GRAPHAUG_H_
