// Portable baseline kernel table. These loops define the reference
// semantics of every dispatched primitive: gemm_micro / spmm_segment use
// ascending-k multiply-then-add per output element (the order the AVX2
// table reproduces bitwise), and the reductions keep the pre-dispatch
// serial accumulation order so forced-scalar runs reproduce the historic
// kernels exactly. Compiled with the default (baseline-ISA) flags — the
// auto-vectorizer may use SSE here, which preserves IEEE semantics and
// therefore bitwise results.

#include <algorithm>
#include <cmath>

#include "tensor/kernel_dispatch.h"

namespace graphaug::simd {
namespace {

void GemmMicroScalar(int64_t kc, const float* ap, const float* bp, float* c,
                     int64_t ldc, int mr, int nr) {
  float acc[kGemmMR][kGemmNR];
  for (int ii = 0; ii < mr; ++ii) {
    for (int jj = 0; jj < nr; ++jj) acc[ii][jj] = c[ii * ldc + jj];
  }
  for (int64_t p = 0; p < kc; ++p) {
    const float* app = ap + p * mr;
    const float* bpp = bp + p * kGemmNR;
    for (int ii = 0; ii < mr; ++ii) {
      const float av = app[ii];
      for (int jj = 0; jj < nr; ++jj) acc[ii][jj] += av * bpp[jj];
    }
  }
  for (int ii = 0; ii < mr; ++ii) {
    for (int jj = 0; jj < nr; ++jj) c[ii * ldc + jj] = acc[ii][jj];
  }
}

void SpmmSegmentScalar(const float* vals, const int32_t* idx, int64_t count,
                       const float* dense, int64_t d, float* out_row) {
  for (int64_t e = 0; e < count; ++e) {
    const float v = vals[e];
    const float* drow = dense + static_cast<int64_t>(idx[e]) * d;
    for (int64_t c = 0; c < d; ++c) out_row[c] += v * drow[c];
  }
}

void AddScalar(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void SubScalar(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void MulScalar(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void ScaleScalar(const float* a, float s, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] * s;
}

void AxpyScalar(float s, const float* b, float* a, int64_t n) {
  for (int64_t i = 0; i < n; ++i) a[i] += s * b[i];
}

double SumScalar(const float* a, int64_t n) {
  double s = 0;
  for (int64_t i = 0; i < n; ++i) s += a[i];
  return s;
}

double SqnormScalar(const float* a, int64_t n) {
  double s = 0;
  for (int64_t i = 0; i < n; ++i) s += static_cast<double>(a[i]) * a[i];
  return s;
}

double DotScalar(const float* a, const float* b, int64_t n) {
  double s = 0;
  for (int64_t i = 0; i < n; ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

float MaxAbsScalar(const float* a, int64_t n) {
  float m = 0.f;
  for (int64_t i = 0; i < n; ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}

float RowMaxScalar(const float* a, int64_t n) {
  float mx = a[0];
  for (int64_t i = 1; i < n; ++i) mx = std::max(mx, a[i]);
  return mx;
}

double ExpSumScalar(const float* a, int64_t n, float mx) {
  double s = 0;
  for (int64_t i = 0; i < n; ++i) s += std::exp(a[i] - mx);
  return s;
}

void ExpScaleScalar(const float* a, float l, float u, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = u * std::exp(a[i] - l);
}

/// Panels are scored in pairs so at least 16 independent accumulator
/// chains are in flight (a lone chain is FP-add latency-bound); each lane
/// keeps its own ascending-j separate-multiply-then-add chain, so every
/// score is bitwise what the one-item-at-a-time loop produces.
void ScorePanelsScalar(const float* q, const float* panels, int64_t d,
                       int64_t n, float* out) {
  int64_t p = 0;
  for (; p + 2 <= n; p += 2) {
    const float* p0 = panels + p * 8 * d;
    const float* p1 = p0 + 8 * d;
    float a0[8] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
    float a1[8] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
    for (int64_t j = 0; j < d; ++j) {
      const float qj = q[j];
      for (int t = 0; t < 8; ++t) a0[t] += qj * p0[j * 8 + t];
      for (int t = 0; t < 8; ++t) a1[t] += qj * p1[j * 8 + t];
    }
    for (int t = 0; t < 8; ++t) out[p * 8 + t] = a0[t];
    for (int t = 0; t < 8; ++t) out[(p + 1) * 8 + t] = a1[t];
  }
  if (p < n) {
    const float* p0 = panels + p * 8 * d;
    float a0[8] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
    for (int64_t j = 0; j < d; ++j) {
      const float qj = q[j];
      for (int t = 0; t < 8; ++t) a0[t] += qj * p0[j * 8 + t];
    }
    for (int t = 0; t < 8; ++t) out[p * 8 + t] = a0[t];
  }
}

constexpr KernelTable kScalarTable = {
    "scalar",        GemmMicroScalar, SpmmSegmentScalar, AddScalar,
    SubScalar,       MulScalar,       ScaleScalar,       AxpyScalar,
    SumScalar,       SqnormScalar,    DotScalar,         MaxAbsScalar,
    RowMaxScalar,    ExpSumScalar,    ExpScaleScalar,    ScorePanelsScalar,
};

}  // namespace

const KernelTable& ScalarKernels() { return kScalarTable; }

}  // namespace graphaug::simd
