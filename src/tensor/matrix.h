#ifndef GRAPHAUG_TENSOR_MATRIX_H_
#define GRAPHAUG_TENSOR_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "obs/memory.h"

namespace graphaug {

/// Dense row-major float matrix. This is the single tensor type used by the
/// whole library: vectors are (n x 1) or (1 x n) matrices, scalars are
/// (1 x 1). Copyable and movable; copies are deep.
///
/// Storage is an obs::TrackedFloatVec, so every tensor buffer feeds the
/// byte-level memory accounting (obs/memory.h) — a few relaxed atomic ops
/// per allocation, zero in GRAPHAUG_NO_OBS builds where the allocator
/// degenerates to std::allocator.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), 0.f) {
    GA_CHECK_GE(rows, 0);
    GA_CHECK_GE(cols, 0);
  }

  /// rows x cols matrix filled with `fill`.
  Matrix(int64_t rows, int64_t cols, float fill)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), fill) {}

  /// Builds from explicit data (row-major); data.size() must equal
  /// rows * cols. The data is copied into tracked storage.
  Matrix(int64_t rows, int64_t cols, const std::vector<float>& data)
      : rows_(rows), cols_(cols), data_(data.begin(), data.end()) {
    GA_CHECK_EQ(static_cast<int64_t>(data_.size()), rows * cols);
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int64_t r, int64_t c) {
    GA_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float at(int64_t r, int64_t c) const {
    GA_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// Pointer to the beginning of row r.
  float* row(int64_t r) { return data_.data() + r * cols_; }
  const float* row(int64_t r) const { return data_.data() + r * cols_; }

  /// Sets every element to `v`.
  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Sets every element to zero.
  void Zero() { Fill(0.f); }

  /// True when shapes match.
  bool SameShape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  /// Scalar accessor; requires a 1x1 matrix.
  float scalar() const {
    GA_CHECK_EQ(size(), 1);
    return data_[0];
  }

  /// Human-readable shape, e.g. "[3x4]".
  std::string ShapeString() const;

  /// Debug dump (small matrices only).
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  obs::TrackedFloatVec data_;
};

}  // namespace graphaug

#endif  // GRAPHAUG_TENSOR_MATRIX_H_
