#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"
#include "obs/trace.h"
#include "tensor/kernel_dispatch.h"

namespace graphaug {
namespace {

// Static-chunk grains for the parallel runtime (common/parallel.h). Chunk
// boundaries depend only on these constants and the problem size, so every
// kernel is bitwise reproducible at any thread count.
constexpr int64_t kElemGrain = 1 << 15;    // elementwise ops, elems/chunk
constexpr int64_t kReduceGrain = 1 << 16;  // full reductions, elems/chunk

// Rows per row-kernel chunk, sized so each chunk carries ~64K inner
// multiply-adds regardless of row width.
int64_t RowGrain(int64_t work_per_row) {
  return std::max<int64_t>(1, (int64_t{64} << 10) /
                                  std::max<int64_t>(1, work_per_row));
}

// Packed-panel GEMM blocking (DESIGN.md §9). KC limits the packed-panel
// depth so one B block (KC x NC floats = 1MB) stays L2-resident across
// the whole row sweep, with the A panel (MR x KC = 6KB) in L1. All four
// transpose variants are folded into packing, so one microkernel pair
// (scalar / AVX2, simd::KernelTable) serves every case. Accumulation
// order per output element is p ascending across KC blocks with separate
// mul/add rounding — the property that keeps every (variant, thread
// count) combination bitwise identical.
constexpr int64_t kGemmKC = 256;
constexpr int64_t kGemmNC = 1024;

using simd::kGemmMR;
using simd::kGemmNR;

// Packs alpha * op(a)[i0 : i0+mr, pc : pc+kc] into a column-major panel:
// ap[p*mr + ii]. Folding alpha here reproduces the historic kernels'
// "av = alpha * a" single rounding before the multiply-add stream.
void PackA(const Matrix& a, bool trans_a, float alpha, int64_t i0, int mr,
           int64_t pc, int64_t kc, float* ap) {
  if (!trans_a) {
    for (int ii = 0; ii < mr; ++ii) {
      const float* arow = a.row(i0 + ii) + pc;
      for (int64_t p = 0; p < kc; ++p) ap[p * mr + ii] = alpha * arow[p];
    }
  } else {
    for (int64_t p = 0; p < kc; ++p) {
      const float* arow = a.row(pc + p) + i0;
      for (int ii = 0; ii < mr; ++ii) ap[p * mr + ii] = alpha * arow[ii];
    }
  }
}

// Packs op(b)[pc : pc+kc, jc : jc+nc] into kGemmNR-wide row panels laid
// out back to back (each panel kc * kGemmNR floats), zero-padding the
// ragged last panel so the microkernel can always run full-width B loads.
void PackB(const Matrix& b, bool trans_b, int64_t pc, int64_t kc, int64_t jc,
           int64_t nc, float* bp) {
  for (int64_t jr = 0; jr < nc; jr += kGemmNR) {
    float* dst = bp + (jr / kGemmNR) * kc * kGemmNR;
    const int nr = static_cast<int>(std::min<int64_t>(kGemmNR, nc - jr));
    if (!trans_b) {
      for (int64_t p = 0; p < kc; ++p) {
        const float* brow = b.row(pc + p) + jc + jr;
        float* drow = dst + p * kGemmNR;
        for (int jj = 0; jj < nr; ++jj) drow[jj] = brow[jj];
        for (int jj = nr; jj < kGemmNR; ++jj) drow[jj] = 0.f;
      }
    } else {
      // op(b)(p, j) = b(j, p): walk rows of b for stride-1 reads.
      for (int jj = 0; jj < nr; ++jj) {
        const float* brow = b.row(jc + jr + jj) + pc;
        for (int64_t p = 0; p < kc; ++p) dst[p * kGemmNR + jj] = brow[p];
      }
      for (int64_t p = 0; p < kc; ++p) {
        float* drow = dst + p * kGemmNR;
        for (int jj = nr; jj < kGemmNR; ++jj) drow[jj] = 0.f;
      }
    }
  }
}

}  // namespace

void Gemm(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b,
          float alpha, float beta, Matrix* out) {
  GA_TRACE_SPAN("gemm");
  const int64_t m = trans_a ? a.cols() : a.rows();
  const int64_t ka = trans_a ? a.rows() : a.cols();
  const int64_t kb = trans_b ? b.cols() : b.rows();
  const int64_t n = trans_b ? b.rows() : b.cols();
  GA_CHECK_EQ(ka, kb) << "gemm inner dims";
  if (out->rows() != m || out->cols() != n) {
    GA_CHECK(beta == 0.f) << "beta != 0 requires preallocated out";
    *out = Matrix(m, n);
  } else if (beta == 0.f) {
    out->Zero();
  } else if (beta != 1.f) {
    ParallelFor(0, out->size(), kElemGrain, [beta, out](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) (*out)[i] *= beta;
    });
  }
  if (m == 0 || n == 0 || ka == 0) return;
  // One table per op: the dispatch decision is taken here, never inside
  // chunks, so a single product can't mix microkernel variants.
  const simd::KernelTable& kt = simd::ActiveKernels();
  std::vector<float> bpack(
      static_cast<size_t>(((std::min(kGemmNC, n) + kGemmNR - 1) / kGemmNR) *
                          kGemmNR * std::min(kGemmKC, ka)));
  const int64_t row_blocks = (m + kGemmMR - 1) / kGemmMR;
  for (int64_t jc = 0; jc < n; jc += kGemmNC) {
    const int64_t nc = std::min(kGemmNC, n - jc);
    for (int64_t pc = 0; pc < ka; pc += kGemmKC) {
      const int64_t kc = std::min(kGemmKC, ka - pc);
      PackB(b, trans_b, pc, kc, jc, nc, bpack.data());
      // Chunks are MR-aligned row blocks; each output row belongs to
      // exactly one chunk, so any thread count writes the same bits.
      const int64_t grain = std::max<int64_t>(1, RowGrain(kc * nc) / kGemmMR);
      ParallelFor(0, row_blocks, grain, [&](int64_t b0, int64_t b1) {
        thread_local std::vector<float> apack;
        apack.resize(static_cast<size_t>(kGemmMR * kc));
        for (int64_t ib = b0; ib < b1; ++ib) {
          const int64_t i0 = ib * kGemmMR;
          const int mr = static_cast<int>(std::min<int64_t>(kGemmMR, m - i0));
          PackA(a, trans_a, alpha, i0, mr, pc, kc, apack.data());
          float* crow = out->row(i0) + jc;
          for (int64_t jr = 0; jr < nc; jr += kGemmNR) {
            const int nr =
                static_cast<int>(std::min<int64_t>(kGemmNR, nc - jr));
            kt.gemm_micro(kc, apack.data(),
                          bpack.data() + (jr / kGemmNR) * kc * kGemmNR,
                          crow + jr, out->cols(), mr, nr);
          }
        }
      });
    }
  }
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out;
  Gemm(a, false, b, false, 1.f, 0.f, &out);
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  GA_CHECK(a.SameShape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  Matrix out(a.rows(), a.cols());
  const simd::KernelTable& kt = simd::ActiveKernels();
  ParallelFor(0, a.size(), kElemGrain, [&](int64_t i0, int64_t i1) {
    kt.add(a.data() + i0, b.data() + i0, out.data() + i0, i1 - i0);
  });
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  GA_CHECK(a.SameShape(b));
  Matrix out(a.rows(), a.cols());
  const simd::KernelTable& kt = simd::ActiveKernels();
  ParallelFor(0, a.size(), kElemGrain, [&](int64_t i0, int64_t i1) {
    kt.sub(a.data() + i0, b.data() + i0, out.data() + i0, i1 - i0);
  });
  return out;
}

Matrix Mul(const Matrix& a, const Matrix& b) {
  GA_CHECK(a.SameShape(b));
  Matrix out(a.rows(), a.cols());
  const simd::KernelTable& kt = simd::ActiveKernels();
  ParallelFor(0, a.size(), kElemGrain, [&](int64_t i0, int64_t i1) {
    kt.mul(a.data() + i0, b.data() + i0, out.data() + i0, i1 - i0);
  });
  return out;
}

Matrix Scale(const Matrix& a, float s) {
  Matrix out(a.rows(), a.cols());
  const simd::KernelTable& kt = simd::ActiveKernels();
  ParallelFor(0, a.size(), kElemGrain, [&](int64_t i0, int64_t i1) {
    kt.scale(a.data() + i0, s, out.data() + i0, i1 - i0);
  });
  return out;
}

void AddInPlace(Matrix* a, const Matrix& b) {
  GA_CHECK(a->SameShape(b));
  const simd::KernelTable& kt = simd::ActiveKernels();
  ParallelFor(0, a->size(), kElemGrain, [&](int64_t i0, int64_t i1) {
    kt.add(a->data() + i0, b.data() + i0, a->data() + i0, i1 - i0);
  });
}

void Axpy(float s, const Matrix& b, Matrix* a) {
  GA_CHECK(a->SameShape(b));
  const simd::KernelTable& kt = simd::ActiveKernels();
  ParallelFor(0, a->size(), kElemGrain, [&](int64_t i0, int64_t i1) {
    kt.axpy(s, b.data() + i0, a->data() + i0, i1 - i0);
  });
}

Matrix Map(const Matrix& a, const std::function<float(float)>& fn) {
  Matrix out(a.rows(), a.cols());
  ParallelFor(0, a.size(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) out[i] = fn(a[i]);
  });
  return out;
}

double SumAll(const Matrix& a) {
  const simd::KernelTable& kt = simd::ActiveKernels();
  return ParallelReduce(0, a.size(), kReduceGrain,
                        [&](int64_t i0, int64_t i1) {
                          return kt.sum(a.data() + i0, i1 - i0);
                        });
}

double MeanAll(const Matrix& a) {
  return a.size() == 0 ? 0.0 : SumAll(a) / static_cast<double>(a.size());
}

float MaxAbs(const Matrix& a) {
  // max is order-independent, so a plain racy-free chunked max is exact.
  const simd::KernelTable& kt = simd::ActiveKernels();
  const int64_t n = a.size();
  const int64_t chunks = (n + kReduceGrain - 1) / kReduceGrain;
  if (chunks <= 1) return n == 0 ? 0.f : kt.maxabs(a.data(), n);
  std::vector<float> partial(static_cast<size_t>(chunks), 0.f);
  ParallelFor(0, n, kReduceGrain, [&](int64_t i0, int64_t i1) {
    partial[static_cast<size_t>(i0 / kReduceGrain)] =
        kt.maxabs(a.data() + i0, i1 - i0);
  });
  float m = 0.f;
  for (float p : partial) m = std::max(m, p);
  return m;
}

double SquaredNorm(const Matrix& a) {
  const simd::KernelTable& kt = simd::ActiveKernels();
  return ParallelReduce(0, a.size(), kReduceGrain,
                        [&](int64_t i0, int64_t i1) {
                          return kt.sqnorm(a.data() + i0, i1 - i0);
                        });
}

Matrix RowSum(const Matrix& a) {
  Matrix out(a.rows(), 1);
  const simd::KernelTable& kt = simd::ActiveKernels();
  ParallelFor(0, a.rows(), RowGrain(a.cols()), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      out[r] = static_cast<float>(kt.sum(a.row(r), a.cols()));
    }
  });
  return out;
}

Matrix RowMean(const Matrix& a) {
  Matrix out = RowSum(a);
  const float inv = a.cols() > 0 ? 1.f / static_cast<float>(a.cols()) : 0.f;
  for (int64_t r = 0; r < out.size(); ++r) out[r] *= inv;
  return out;
}

Matrix RowNorm(const Matrix& a, float eps) {
  Matrix out(a.rows(), 1);
  const simd::KernelTable& kt = simd::ActiveKernels();
  ParallelFor(0, a.rows(), RowGrain(a.cols()), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      out[r] = std::max(
          eps, static_cast<float>(std::sqrt(kt.sqnorm(a.row(r), a.cols()))));
    }
  });
  return out;
}

Matrix RowDot(const Matrix& a, const Matrix& b) {
  GA_CHECK(a.SameShape(b));
  Matrix out(a.rows(), 1);
  const simd::KernelTable& kt = simd::ActiveKernels();
  ParallelFor(0, a.rows(), RowGrain(a.cols()), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      out[r] = static_cast<float>(kt.dot(a.row(r), b.row(r), a.cols()));
    }
  });
  return out;
}

Matrix RowCosine(const Matrix& a, const Matrix& b, float eps) {
  Matrix dots = RowDot(a, b);
  Matrix na = RowNorm(a, eps);
  Matrix nb = RowNorm(b, eps);
  Matrix out(a.rows(), 1);
  for (int64_t r = 0; r < a.rows(); ++r) out[r] = dots[r] / (na[r] * nb[r]);
  return out;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  ParallelFor(0, a.rows(), RowGrain(a.cols()), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      for (int64_t c = 0; c < a.cols(); ++c) out.at(c, r) = a.at(r, c);
    }
  });
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  GA_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    std::copy(a.row(r), a.row(r) + a.cols(), out.row(r));
    std::copy(b.row(r), b.row(r) + b.cols(), out.row(r) + a.cols());
  }
  return out;
}

Matrix ConcatRows(const Matrix& a, const Matrix& b) {
  GA_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows() + b.rows(), a.cols());
  std::copy(a.data(), a.data() + a.size(), out.data());
  std::copy(b.data(), b.data() + b.size(), out.data() + a.size());
  return out;
}

Matrix SliceCols(const Matrix& a, int64_t start, int64_t len) {
  GA_CHECK_GE(start, 0);
  GA_CHECK_LE(start + len, a.cols());
  Matrix out(a.rows(), len);
  for (int64_t r = 0; r < a.rows(); ++r) {
    std::copy(a.row(r) + start, a.row(r) + start + len, out.row(r));
  }
  return out;
}

Matrix SliceRows(const Matrix& a, int64_t start, int64_t len) {
  GA_CHECK_GE(start, 0);
  GA_CHECK_LE(start + len, a.rows());
  Matrix out(len, a.cols());
  std::copy(a.row(start), a.row(start) + len * a.cols(), out.data());
  return out;
}

Matrix GatherRows(const Matrix& a, const std::vector<int32_t>& idx) {
  Matrix out(static_cast<int64_t>(idx.size()), a.cols());
  const int64_t n = static_cast<int64_t>(idx.size());
  ParallelFor(0, n, RowGrain(a.cols()), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      GA_DCHECK(idx[static_cast<size_t>(i)] >= 0 &&
                idx[static_cast<size_t>(i)] < a.rows());
      std::copy(a.row(idx[static_cast<size_t>(i)]),
                a.row(idx[static_cast<size_t>(i)]) + a.cols(), out.row(i));
    }
  });
  return out;
}

void ScatterAddRows(const Matrix& src, const std::vector<int32_t>& idx,
                    Matrix* out) {
  GA_CHECK_EQ(src.rows(), static_cast<int64_t>(idx.size()));
  GA_CHECK_EQ(src.cols(), out->cols());
  // Serial: idx may contain duplicates, so rows of `out` are not disjoint.
  for (size_t i = 0; i < idx.size(); ++i) {
    const float* srow = src.row(static_cast<int64_t>(i));
    float* orow = out->row(idx[i]);
    for (int64_t c = 0; c < src.cols(); ++c) orow[c] += srow[c];
  }
}

bool AllClose(const Matrix& a, const Matrix& b, float rtol, float atol) {
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > atol + rtol * std::fabs(b[i])) return false;
  }
  return true;
}

}  // namespace graphaug
