#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"
#include "obs/trace.h"

namespace graphaug {
namespace {

// Static-chunk grains for the parallel runtime (common/parallel.h). Chunk
// boundaries depend only on these constants and the problem size, so every
// kernel is bitwise reproducible at any thread count.
constexpr int64_t kElemGrain = 1 << 15;    // elementwise ops, elems/chunk
constexpr int64_t kReduceGrain = 1 << 16;  // full reductions, elems/chunk

// Rows per GEMM/row-kernel chunk, sized so each chunk carries ~64K inner
// multiply-adds regardless of row width.
int64_t RowGrain(int64_t work_per_row) {
  return std::max<int64_t>(1, (int64_t{64} << 10) /
                                  std::max<int64_t>(1, work_per_row));
}

// Kernels specialized on the four transpose combinations, each expressed
// over a panel [r0, r1) of *output* rows so panels can run on different
// threads without write conflicts. Per-element accumulation order (p
// ascending) is identical to the original serial loops, so parallel output
// is bitwise equal to serial output. The common case (NN) iterates k in
// the middle loop so the innermost loop streams both b and out rows, which
// vectorizes well.
void GemmNN(const Matrix& a, const Matrix& b, float alpha, Matrix* out,
            int64_t r0, int64_t r1) {
  const int64_t k = a.cols(), n = b.cols();
  for (int64_t i = r0; i < r1; ++i) {
    const float* arow = a.row(i);
    float* orow = out->row(i);
    for (int64_t p = 0; p < k; ++p) {
      const float av = alpha * arow[p];
      if (av == 0.f) continue;
      const float* brow = b.row(p);
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void GemmTN(const Matrix& a, const Matrix& b, float alpha, Matrix* out,
            int64_t r0, int64_t r1) {
  // out = a^T * b : a is (k x m), b is (k x n); out row i reads column i
  // of a. p stays the outer-of-inner loop so accumulation order per
  // element matches the untransposed kernels.
  const int64_t k = a.rows(), n = b.cols();
  for (int64_t i = r0; i < r1; ++i) {
    float* orow = out->row(i);
    for (int64_t p = 0; p < k; ++p) {
      const float av = alpha * a.at(p, i);
      if (av == 0.f) continue;
      const float* brow = b.row(p);
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void GemmNT(const Matrix& a, const Matrix& b, float alpha, Matrix* out,
            int64_t r0, int64_t r1) {
  // out = a * b^T : a is (m x k), b is (n x k).
  const int64_t k = a.cols(), n = b.rows();
  for (int64_t i = r0; i < r1; ++i) {
    const float* arow = a.row(i);
    float* orow = out->row(i);
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      float acc = 0.f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] += alpha * acc;
    }
  }
}

void GemmTT(const Matrix& a, const Matrix& b, float alpha, Matrix* out,
            int64_t r0, int64_t r1) {
  // out = a^T * b^T : a is (k x m), b is (n x k).
  const int64_t k = a.rows(), n = b.rows();
  for (int64_t i = r0; i < r1; ++i) {
    float* orow = out->row(i);
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.f;
      for (int64_t p = 0; p < k; ++p) acc += a.at(p, i) * b.at(j, p);
      orow[j] += alpha * acc;
    }
  }
}

}  // namespace

void Gemm(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b,
          float alpha, float beta, Matrix* out) {
  GA_TRACE_SPAN("gemm");
  const int64_t m = trans_a ? a.cols() : a.rows();
  const int64_t ka = trans_a ? a.rows() : a.cols();
  const int64_t kb = trans_b ? b.cols() : b.rows();
  const int64_t n = trans_b ? b.rows() : b.cols();
  GA_CHECK_EQ(ka, kb) << "gemm inner dims";
  if (out->rows() != m || out->cols() != n) {
    GA_CHECK(beta == 0.f) << "beta != 0 requires preallocated out";
    *out = Matrix(m, n);
  } else if (beta == 0.f) {
    out->Zero();
  } else if (beta != 1.f) {
    ParallelFor(0, out->size(), kElemGrain, [beta, out](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) (*out)[i] *= beta;
    });
  }
  const int64_t grain = RowGrain(ka * n);
  if (!trans_a && !trans_b) {
    ParallelFor(0, m, grain, [&](int64_t r0, int64_t r1) {
      GemmNN(a, b, alpha, out, r0, r1);
    });
  } else if (trans_a && !trans_b) {
    ParallelFor(0, m, grain, [&](int64_t r0, int64_t r1) {
      GemmTN(a, b, alpha, out, r0, r1);
    });
  } else if (!trans_a && trans_b) {
    ParallelFor(0, m, grain, [&](int64_t r0, int64_t r1) {
      GemmNT(a, b, alpha, out, r0, r1);
    });
  } else {
    ParallelFor(0, m, grain, [&](int64_t r0, int64_t r1) {
      GemmTT(a, b, alpha, out, r0, r1);
    });
  }
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out;
  Gemm(a, false, b, false, 1.f, 0.f, &out);
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  GA_CHECK(a.SameShape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  Matrix out(a.rows(), a.cols());
  ParallelFor(0, a.size(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) out[i] = a[i] + b[i];
  });
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  GA_CHECK(a.SameShape(b));
  Matrix out(a.rows(), a.cols());
  ParallelFor(0, a.size(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) out[i] = a[i] - b[i];
  });
  return out;
}

Matrix Mul(const Matrix& a, const Matrix& b) {
  GA_CHECK(a.SameShape(b));
  Matrix out(a.rows(), a.cols());
  ParallelFor(0, a.size(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) out[i] = a[i] * b[i];
  });
  return out;
}

Matrix Scale(const Matrix& a, float s) {
  Matrix out(a.rows(), a.cols());
  ParallelFor(0, a.size(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) out[i] = a[i] * s;
  });
  return out;
}

void AddInPlace(Matrix* a, const Matrix& b) {
  GA_CHECK(a->SameShape(b));
  ParallelFor(0, a->size(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) (*a)[i] += b[i];
  });
}

void Axpy(float s, const Matrix& b, Matrix* a) {
  GA_CHECK(a->SameShape(b));
  ParallelFor(0, a->size(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) (*a)[i] += s * b[i];
  });
}

Matrix Map(const Matrix& a, const std::function<float(float)>& fn) {
  Matrix out(a.rows(), a.cols());
  ParallelFor(0, a.size(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) out[i] = fn(a[i]);
  });
  return out;
}

double SumAll(const Matrix& a) {
  return ParallelReduce(0, a.size(), kReduceGrain,
                        [&](int64_t i0, int64_t i1) {
                          double s = 0;
                          for (int64_t i = i0; i < i1; ++i) s += a[i];
                          return s;
                        });
}

double MeanAll(const Matrix& a) {
  return a.size() == 0 ? 0.0 : SumAll(a) / static_cast<double>(a.size());
}

float MaxAbs(const Matrix& a) {
  // max is order-independent, so a plain racy-free chunked max is exact.
  const int64_t n = a.size();
  const int64_t chunks = (n + kReduceGrain - 1) / kReduceGrain;
  if (chunks <= 1) {
    float m = 0.f;
    for (int64_t i = 0; i < n; ++i) m = std::max(m, std::fabs(a[i]));
    return m;
  }
  std::vector<float> partial(static_cast<size_t>(chunks), 0.f);
  ParallelFor(0, n, kReduceGrain, [&](int64_t i0, int64_t i1) {
    float m = 0.f;
    for (int64_t i = i0; i < i1; ++i) m = std::max(m, std::fabs(a[i]));
    partial[static_cast<size_t>(i0 / kReduceGrain)] = m;
  });
  float m = 0.f;
  for (float p : partial) m = std::max(m, p);
  return m;
}

double SquaredNorm(const Matrix& a) {
  return ParallelReduce(0, a.size(), kReduceGrain,
                        [&](int64_t i0, int64_t i1) {
                          double s = 0;
                          for (int64_t i = i0; i < i1; ++i) {
                            s += static_cast<double>(a[i]) * a[i];
                          }
                          return s;
                        });
}

Matrix RowSum(const Matrix& a) {
  Matrix out(a.rows(), 1);
  ParallelFor(0, a.rows(), RowGrain(a.cols()), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      double s = 0;
      const float* row = a.row(r);
      for (int64_t c = 0; c < a.cols(); ++c) s += row[c];
      out[r] = static_cast<float>(s);
    }
  });
  return out;
}

Matrix RowMean(const Matrix& a) {
  Matrix out = RowSum(a);
  const float inv = a.cols() > 0 ? 1.f / static_cast<float>(a.cols()) : 0.f;
  for (int64_t r = 0; r < out.size(); ++r) out[r] *= inv;
  return out;
}

Matrix RowNorm(const Matrix& a, float eps) {
  Matrix out(a.rows(), 1);
  ParallelFor(0, a.rows(), RowGrain(a.cols()), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      double s = 0;
      const float* row = a.row(r);
      for (int64_t c = 0; c < a.cols(); ++c) {
        s += static_cast<double>(row[c]) * row[c];
      }
      out[r] = std::max(eps, static_cast<float>(std::sqrt(s)));
    }
  });
  return out;
}

Matrix RowDot(const Matrix& a, const Matrix& b) {
  GA_CHECK(a.SameShape(b));
  Matrix out(a.rows(), 1);
  ParallelFor(0, a.rows(), RowGrain(a.cols()), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* ar = a.row(r);
      const float* br = b.row(r);
      double s = 0;
      for (int64_t c = 0; c < a.cols(); ++c) {
        s += static_cast<double>(ar[c]) * br[c];
      }
      out[r] = static_cast<float>(s);
    }
  });
  return out;
}

Matrix RowCosine(const Matrix& a, const Matrix& b, float eps) {
  Matrix dots = RowDot(a, b);
  Matrix na = RowNorm(a, eps);
  Matrix nb = RowNorm(b, eps);
  Matrix out(a.rows(), 1);
  for (int64_t r = 0; r < a.rows(); ++r) out[r] = dots[r] / (na[r] * nb[r]);
  return out;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  ParallelFor(0, a.rows(), RowGrain(a.cols()), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      for (int64_t c = 0; c < a.cols(); ++c) out.at(c, r) = a.at(r, c);
    }
  });
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  GA_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    std::copy(a.row(r), a.row(r) + a.cols(), out.row(r));
    std::copy(b.row(r), b.row(r) + b.cols(), out.row(r) + a.cols());
  }
  return out;
}

Matrix ConcatRows(const Matrix& a, const Matrix& b) {
  GA_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows() + b.rows(), a.cols());
  std::copy(a.data(), a.data() + a.size(), out.data());
  std::copy(b.data(), b.data() + b.size(), out.data() + a.size());
  return out;
}

Matrix SliceCols(const Matrix& a, int64_t start, int64_t len) {
  GA_CHECK_GE(start, 0);
  GA_CHECK_LE(start + len, a.cols());
  Matrix out(a.rows(), len);
  for (int64_t r = 0; r < a.rows(); ++r) {
    std::copy(a.row(r) + start, a.row(r) + start + len, out.row(r));
  }
  return out;
}

Matrix SliceRows(const Matrix& a, int64_t start, int64_t len) {
  GA_CHECK_GE(start, 0);
  GA_CHECK_LE(start + len, a.rows());
  Matrix out(len, a.cols());
  std::copy(a.row(start), a.row(start) + len * a.cols(), out.data());
  return out;
}

Matrix GatherRows(const Matrix& a, const std::vector<int32_t>& idx) {
  Matrix out(static_cast<int64_t>(idx.size()), a.cols());
  const int64_t n = static_cast<int64_t>(idx.size());
  ParallelFor(0, n, RowGrain(a.cols()), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      GA_DCHECK(idx[static_cast<size_t>(i)] >= 0 &&
                idx[static_cast<size_t>(i)] < a.rows());
      std::copy(a.row(idx[static_cast<size_t>(i)]),
                a.row(idx[static_cast<size_t>(i)]) + a.cols(), out.row(i));
    }
  });
  return out;
}

void ScatterAddRows(const Matrix& src, const std::vector<int32_t>& idx,
                    Matrix* out) {
  GA_CHECK_EQ(src.rows(), static_cast<int64_t>(idx.size()));
  GA_CHECK_EQ(src.cols(), out->cols());
  // Serial: idx may contain duplicates, so rows of `out` are not disjoint.
  for (size_t i = 0; i < idx.size(); ++i) {
    const float* srow = src.row(static_cast<int64_t>(i));
    float* orow = out->row(idx[i]);
    for (int64_t c = 0; c < src.cols(); ++c) orow[c] += srow[c];
  }
}

bool AllClose(const Matrix& a, const Matrix& b, float rtol, float atol) {
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > atol + rtol * std::fabs(b[i])) return false;
  }
  return true;
}

}  // namespace graphaug
