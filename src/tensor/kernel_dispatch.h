#ifndef GRAPHAUG_TENSOR_KERNEL_DISPATCH_H_
#define GRAPHAUG_TENSOR_KERNEL_DISPATCH_H_

#include <cstdint>

#include "common/cpu_features.h"

namespace graphaug::simd {

/// Runtime-dispatched SIMD microkernel layer (DESIGN.md §9).
///
/// Every hot inner loop — the packed-panel GEMM microkernel, the SpMM /
/// SpmmT gather segment, elementwise maps, pinned-order reductions, and
/// the fused exp primitives behind LogSumExpRows / InfoNCE — is reached
/// through a KernelTable of function pointers. Two tables exist: the
/// portable scalar table (baseline ISA, always available) and the AVX2
/// table (compiled in its own translation unit with -mavx2 so no vector
/// instruction leaks into portable code; selected only when the cpuid
/// probe confirms support).
///
/// Determinism contract, per entry:
///  * gemm_micro and spmm_segment are BITWISE IDENTICAL across tables:
///    both accumulate each output element over the shared dimension in
///    ascending order with separate multiply-then-add rounding (the AVX2
///    kernels deliberately avoid FMA contraction), so forced-scalar and
///    auto-dispatch runs produce the same bits.
///  * add/sub/mul/scale/axpy are elementwise and bitwise identical.
///  * sum/sqnorm/dot/rowmax/maxabs/exp_sum/exp_scale pin a reduction (or
///    polynomial) order *per table*: each table is bitwise deterministic
///    at any thread count, but the AVX2 lane-split order and vector exp
///    differ from the scalar serial order by normal rounding.
/// Callers must read the table once per operation (not per chunk) so one
/// op never mixes tables mid-flight.

/// GEMM microkernel tile: MR rows of packed A against NR columns of
/// packed B. 6x16 fills 12 of the 16 ymm registers with accumulators.
inline constexpr int kGemmMR = 6;
inline constexpr int kGemmNR = 16;

struct KernelTable {
  const char* name;  ///< matches SimdLevelName of the owning level

  /// C tile (mr x nr, row stride ldc) += Ap * Bp over kc rank-1 updates.
  /// Ap is a column-major (kc x mr) panel with alpha pre-folded:
  /// ap[p*mr + ii]. Bp is a (kc x kGemmNR) row panel zero-padded past nr:
  /// bp[p*kGemmNR + jj]. 1 <= mr <= kGemmMR, 1 <= nr <= kGemmNR.
  void (*gemm_micro)(int64_t kc, const float* ap, const float* bp, float* c,
                     int64_t ldc, int mr, int nr);

  /// out_row[c] += sum over e in [0, count) of vals[e] * dense[idx[e]*d + c]
  /// for c in [0, d). The shared row kernel of Spmm, the CSC-mirror SpmmT
  /// variants, and the edge-weighted SpMM forward.
  void (*spmm_segment)(const float* vals, const int32_t* idx, int64_t count,
                       const float* dense, int64_t d, float* out_row);

  // ------------------------------------------------------- elementwise
  void (*add)(const float* a, const float* b, float* out, int64_t n);
  void (*sub)(const float* a, const float* b, float* out, int64_t n);
  void (*mul)(const float* a, const float* b, float* out, int64_t n);
  void (*scale)(const float* a, float s, float* out, int64_t n);
  void (*axpy)(float s, const float* b, float* a, int64_t n);  ///< a += s*b

  // ------------------------------- reductions (order pinned per table)
  double (*sum)(const float* a, int64_t n);
  double (*sqnorm)(const float* a, int64_t n);               ///< sum a[i]^2
  double (*dot)(const float* a, const float* b, int64_t n);  ///< in double
  float (*maxabs)(const float* a, int64_t n);  ///< max |a[i]|, 0 if n == 0
  float (*rowmax)(const float* a, int64_t n);  ///< max a[i], requires n >= 1

  // ------------------- fused contrastive-loss (log-sum-exp) primitives
  /// sum over i of exp(a[i] - mx), accumulated in double.
  double (*exp_sum)(const float* a, int64_t n, float mx);
  /// out[i] = u * exp(a[i] - l) — the LogSumExpRows backward row.
  void (*exp_scale)(const float* a, float l, float u, float* out, int64_t n);

  // ------------------------------------- retrieval panel scan (§10)
  /// Scores n consecutive lane-major panels (each 8 items x d dims,
  /// panel[j*8 + t] = item_t[j], panels contiguous at stride 8*d) against
  /// one query: out[p*8 + t] = sum over ascending j of q[j]*panel_p[j*8+t].
  /// BITWISE IDENTICAL across tables: each lane is its own ascending-j
  /// multiply-then-add chain (no FMA, no cross-lane reduction), which is
  /// exactly the scalar one-item loop and the GEMM's per-element order.
  void (*score_panels)(const float* q, const float* panels, int64_t d,
                       int64_t n, float* out);
};

/// Portable baseline table; always valid.
const KernelTable& ScalarKernels();

/// AVX2 table, or nullptr when this build has no AVX2 translation unit
/// (non-x86 targets). Never call its entries without a runtime probe.
const KernelTable* Avx2KernelsOrNull();

/// Table for ActiveSimdLevel(): the probe-selected table, downgraded to
/// scalar under GRAPHAUG_FORCE_SCALAR / ForceScalarKernels(true) or when
/// the build lacks the probed level.
const KernelTable& ActiveKernels();

}  // namespace graphaug::simd

#endif  // GRAPHAUG_TENSOR_KERNEL_DISPATCH_H_
