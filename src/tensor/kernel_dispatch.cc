#include "tensor/kernel_dispatch.h"

#include "common/cpu_features.h"

namespace graphaug::simd {

const KernelTable& ActiveKernels() {
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    const KernelTable* t = Avx2KernelsOrNull();
    if (t != nullptr) return *t;
  }
  return ScalarKernels();
}

}  // namespace graphaug::simd
