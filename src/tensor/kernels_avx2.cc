// AVX2 kernel table. This translation unit is the only one compiled with
// -mavx2 (see src/tensor/CMakeLists.txt), so vector instructions cannot
// leak into portable code; the dispatch layer calls in only after the
// cpuid probe confirms support. -ffp-contract=off is forced for this file
// and no FMA intrinsics are used: gemm_micro and spmm_segment must round
// every multiply and add separately, in ascending-k order per output
// element, to stay bitwise identical to the scalar table (DESIGN.md §9).
// Reductions and the vector exp pin their own lane-split orders instead —
// deterministic per table, not bitwise equal to scalar.

#include "tensor/kernel_dispatch.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>

namespace graphaug::simd {
namespace {

/// All-ones in lanes [0, len), zero above — the tail mask for maskload /
/// maskstore. len is clamped to [0, 8].
inline __m256i TailMask(int64_t len) {
  const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(len)), lane);
}

// ---------------------------------------------------------------- GEMM

/// Full-width microkernel: MR x 16 accumulator tile (2 ymm per row).
/// Per output element the update sequence is load-C, then for each p:
/// acc = acc + a*b (separate roundings) — exactly the scalar table's
/// order, so the result is bitwise identical.
template <int MR>
void MicroFull(int64_t kc, const float* ap, const float* bp, float* c,
               int64_t ldc) {
  __m256 acc0[MR], acc1[MR];
  for (int ii = 0; ii < MR; ++ii) {
    acc0[ii] = _mm256_loadu_ps(c + ii * ldc);
    acc1[ii] = _mm256_loadu_ps(c + ii * ldc + 8);
  }
  for (int64_t p = 0; p < kc; ++p, ap += MR, bp += kGemmNR) {
    const __m256 b0 = _mm256_loadu_ps(bp);
    const __m256 b1 = _mm256_loadu_ps(bp + 8);
    for (int ii = 0; ii < MR; ++ii) {
      const __m256 av = _mm256_broadcast_ss(ap + ii);
      acc0[ii] = _mm256_add_ps(acc0[ii], _mm256_mul_ps(av, b0));
      acc1[ii] = _mm256_add_ps(acc1[ii], _mm256_mul_ps(av, b1));
    }
  }
  for (int ii = 0; ii < MR; ++ii) {
    _mm256_storeu_ps(c + ii * ldc, acc0[ii]);
    _mm256_storeu_ps(c + ii * ldc + 8, acc1[ii]);
  }
}

/// Edge-column microkernel (nr < 16). Masked C loads return zero in dead
/// lanes and the B panel is zero-padded past nr, so dead lanes compute
/// 0 + a*0 and are discarded by the masked store.
template <int MR>
void MicroMasked(int64_t kc, const float* ap, const float* bp, float* c,
                 int64_t ldc, int nr) {
  const __m256i m0 = TailMask(nr);
  const __m256i m1 = TailMask(nr - 8);
  __m256 acc0[MR], acc1[MR];
  for (int ii = 0; ii < MR; ++ii) {
    acc0[ii] = _mm256_maskload_ps(c + ii * ldc, m0);
    acc1[ii] = _mm256_maskload_ps(c + ii * ldc + 8, m1);
  }
  for (int64_t p = 0; p < kc; ++p, ap += MR, bp += kGemmNR) {
    const __m256 b0 = _mm256_loadu_ps(bp);
    const __m256 b1 = _mm256_loadu_ps(bp + 8);
    for (int ii = 0; ii < MR; ++ii) {
      const __m256 av = _mm256_broadcast_ss(ap + ii);
      acc0[ii] = _mm256_add_ps(acc0[ii], _mm256_mul_ps(av, b0));
      acc1[ii] = _mm256_add_ps(acc1[ii], _mm256_mul_ps(av, b1));
    }
  }
  for (int ii = 0; ii < MR; ++ii) {
    _mm256_maskstore_ps(c + ii * ldc, m0, acc0[ii]);
    _mm256_maskstore_ps(c + ii * ldc + 8, m1, acc1[ii]);
  }
}

void GemmMicroAvx2(int64_t kc, const float* ap, const float* bp, float* c,
                   int64_t ldc, int mr, int nr) {
  if (nr == kGemmNR) {
    switch (mr) {
      case 6: MicroFull<6>(kc, ap, bp, c, ldc); return;
      case 5: MicroFull<5>(kc, ap, bp, c, ldc); return;
      case 4: MicroFull<4>(kc, ap, bp, c, ldc); return;
      case 3: MicroFull<3>(kc, ap, bp, c, ldc); return;
      case 2: MicroFull<2>(kc, ap, bp, c, ldc); return;
      default: MicroFull<1>(kc, ap, bp, c, ldc); return;
    }
  }
  switch (mr) {
    case 6: MicroMasked<6>(kc, ap, bp, c, ldc, nr); return;
    case 5: MicroMasked<5>(kc, ap, bp, c, ldc, nr); return;
    case 4: MicroMasked<4>(kc, ap, bp, c, ldc, nr); return;
    case 3: MicroMasked<3>(kc, ap, bp, c, ldc, nr); return;
    case 2: MicroMasked<2>(kc, ap, bp, c, ldc, nr); return;
    default: MicroMasked<1>(kc, ap, bp, c, ldc, nr); return;
  }
}

// ---------------------------------------------------------------- SpMM

/// Gathered axpy segment with the output row held in registers. The
/// column blocks only retile the j dimension; each out element still
/// accumulates e = 0..count-1 ascending with mul-then-add, bitwise equal
/// to the scalar segment.
void SpmmSegmentAvx2(const float* vals, const int32_t* idx, int64_t count,
                     const float* dense, int64_t d, float* out_row) {
  int64_t c0 = 0;
  for (; c0 + 32 <= d; c0 += 32) {  // 4-ymm register block
    __m256 a0 = _mm256_loadu_ps(out_row + c0);
    __m256 a1 = _mm256_loadu_ps(out_row + c0 + 8);
    __m256 a2 = _mm256_loadu_ps(out_row + c0 + 16);
    __m256 a3 = _mm256_loadu_ps(out_row + c0 + 24);
    for (int64_t e = 0; e < count; ++e) {
      const __m256 v = _mm256_broadcast_ss(vals + e);
      const float* drow = dense + static_cast<int64_t>(idx[e]) * d + c0;
      a0 = _mm256_add_ps(a0, _mm256_mul_ps(v, _mm256_loadu_ps(drow)));
      a1 = _mm256_add_ps(a1, _mm256_mul_ps(v, _mm256_loadu_ps(drow + 8)));
      a2 = _mm256_add_ps(a2, _mm256_mul_ps(v, _mm256_loadu_ps(drow + 16)));
      a3 = _mm256_add_ps(a3, _mm256_mul_ps(v, _mm256_loadu_ps(drow + 24)));
    }
    _mm256_storeu_ps(out_row + c0, a0);
    _mm256_storeu_ps(out_row + c0 + 8, a1);
    _mm256_storeu_ps(out_row + c0 + 16, a2);
    _mm256_storeu_ps(out_row + c0 + 24, a3);
  }
  for (; c0 + 8 <= d; c0 += 8) {
    __m256 a0 = _mm256_loadu_ps(out_row + c0);
    for (int64_t e = 0; e < count; ++e) {
      const __m256 v = _mm256_broadcast_ss(vals + e);
      const float* drow = dense + static_cast<int64_t>(idx[e]) * d + c0;
      a0 = _mm256_add_ps(a0, _mm256_mul_ps(v, _mm256_loadu_ps(drow)));
    }
    _mm256_storeu_ps(out_row + c0, a0);
  }
  if (c0 < d) {
    const __m256i m = TailMask(d - c0);
    __m256 a0 = _mm256_maskload_ps(out_row + c0, m);
    for (int64_t e = 0; e < count; ++e) {
      const __m256 v = _mm256_broadcast_ss(vals + e);
      const float* drow = dense + static_cast<int64_t>(idx[e]) * d + c0;
      a0 = _mm256_add_ps(a0, _mm256_mul_ps(v, _mm256_maskload_ps(drow, m)));
    }
    _mm256_maskstore_ps(out_row + c0, m, a0);
  }
}

// --------------------------------------------------------- elementwise

void AddAvx2(const float* a, const float* b, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void SubAvx2(const float* a, const float* b, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void MulAvx2(const float* a, const float* b, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void ScaleAvx2(const float* a, float s, float* out, int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), vs));
  }
  for (; i < n; ++i) out[i] = a[i] * s;
}

void AxpyAvx2(float s, const float* b, float* a, int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 av = _mm256_loadu_ps(a + i);
    _mm256_storeu_ps(
        a + i, _mm256_add_ps(av, _mm256_mul_ps(vs, _mm256_loadu_ps(b + i))));
  }
  for (; i < n; ++i) a[i] += s * b[i];
}

// ---------------------------------------------------------- reductions
// Pinned order for this table: 8 floats per step widened into two 4-lane
// double accumulators (low half into acc0, high half into acc1); the
// remainder is accumulated serially into `tail` and folded in last. The
// horizontal fold is acc0 + acc1, low128 + high128, then lane0 + lane1.

inline double HorizontalSum(__m256d acc0, __m256d acc1, double tail) {
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, swapped)) + tail;
}

double SumAvx2(const float* a, int64_t n) {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(a + i);
    acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  double tail = 0;
  for (; i < n; ++i) tail += a[i];
  return HorizontalSum(acc0, acc1, tail);
}

double SqnormAvx2(const float* a, int64_t n) {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(a + i);
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(lo, lo));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(hi, hi));
  }
  double tail = 0;
  for (; i < n; ++i) tail += static_cast<double>(a[i]) * a[i];
  return HorizontalSum(acc0, acc1, tail);
}

double DotAvx2(const float* a, const float* b, int64_t n) {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256d alo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
    const __m256d ahi = _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
    const __m256d blo = _mm256_cvtps_pd(_mm256_castps256_ps128(vb));
    const __m256d bhi = _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(alo, blo));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(ahi, bhi));
  }
  double tail = 0;
  for (; i < n; ++i) tail += static_cast<double>(a[i]) * b[i];
  return HorizontalSum(acc0, acc1, tail);
}

float MaxAbsAvx2(const float* a, int64_t n) {
  // |x| via sign-bit clear; max is order-independent so any fold works.
  const __m256 signmask = _mm256_set1_ps(-0.f);
  __m256 acc = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_max_ps(acc,
                        _mm256_andnot_ps(signmask, _mm256_loadu_ps(a + i)));
  }
  const __m128 lo = _mm256_castps256_ps128(acc);
  const __m128 hi = _mm256_extractf128_ps(acc, 1);
  __m128 m4 = _mm_max_ps(lo, hi);
  m4 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
  m4 = _mm_max_ss(m4, _mm_shuffle_ps(m4, m4, 1));
  float m = _mm_cvtss_f32(m4);
  for (; i < n; ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}

float RowMaxAvx2(const float* a, int64_t n) {
  if (n < 8) {
    float mx = a[0];
    for (int64_t i = 1; i < n; ++i) mx = std::max(mx, a[i]);
    return mx;
  }
  __m256 acc = _mm256_loadu_ps(a);
  int64_t i = 8;
  for (; i + 8 <= n; i += 8) acc = _mm256_max_ps(acc, _mm256_loadu_ps(a + i));
  // Overlapping (already-covered) final block keeps the tail branch-free.
  if (i < n) acc = _mm256_max_ps(acc, _mm256_loadu_ps(a + n - 8));
  const __m128 lo = _mm256_castps256_ps128(acc);
  const __m128 hi = _mm256_extractf128_ps(acc, 1);
  __m128 m4 = _mm_max_ps(lo, hi);
  m4 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
  m4 = _mm_max_ss(m4, _mm_shuffle_ps(m4, m4, 1));
  return _mm_cvtss_f32(m4);
}

// ----------------------------------------------------------- vector exp
// Cephes-style expf for 8 lanes: n = round(x/ln2), r = x - n*ln2 in two
// steps, degree-5 polynomial on r, scale by 2^n through the exponent
// bits. ~1 ulp relative accuracy (asserted in tests/simd_test.cc). Not
// bitwise equal to std::exp — the exp_* entries are per-table primitives.

inline __m256 Exp8(__m256 x) {
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 ln2_hi = _mm256_set1_ps(0.693359375f);
  const __m256 ln2_lo = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.f);
  // Keep 2^n finite/representable; exp saturates instead of overflowing.
  x = _mm256_min_ps(x, _mm256_set1_ps(88.3762626647950f));
  x = _mm256_max_ps(x, _mm256_set1_ps(-87.3365478515625f));

  __m256 fx = _mm256_add_ps(_mm256_mul_ps(x, log2e), half);
  fx = _mm256_floor_ps(fx);
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, ln2_hi));
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, ln2_lo));

  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), half);
  y = _mm256_add_ps(_mm256_mul_ps(_mm256_mul_ps(y, x), x),
                    _mm256_add_ps(x, one));

  const __m256i n = _mm256_cvttps_epi32(fx);
  const __m256i pow2n =
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(0x7f)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2n));
}

double ExpSumAvx2(const float* a, int64_t n, float mx) {
  const __m256 vmx = _mm256_set1_ps(mx);
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 e = Exp8(_mm256_sub_ps(_mm256_loadu_ps(a + i), vmx));
    acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(e)));
    acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(e, 1)));
  }
  double tail = 0;
  if (i < n) {
    const __m256i m = TailMask(n - i);
    // Masked lanes load as 0, exp to garbage for x-mx != 0; blend them to
    // zero before accumulating.
    const __m256 x = _mm256_sub_ps(_mm256_maskload_ps(a + i, m), vmx);
    const __m256 e = _mm256_and_ps(Exp8(x), _mm256_castsi256_ps(m));
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, e);
    for (int j = 0; j < static_cast<int>(n - i); ++j) tail += lanes[j];
  }
  return HorizontalSum(acc0, acc1, tail);
}

void ExpScaleAvx2(const float* a, float l, float u, float* out, int64_t n) {
  const __m256 vl = _mm256_set1_ps(l);
  const __m256 vu = _mm256_set1_ps(u);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 e = Exp8(_mm256_sub_ps(_mm256_loadu_ps(a + i), vl));
    _mm256_storeu_ps(out + i, _mm256_mul_ps(vu, e));
  }
  if (i < n) {
    const __m256i m = TailMask(n - i);
    const __m256 e = Exp8(_mm256_sub_ps(_mm256_maskload_ps(a + i, m), vl));
    _mm256_maskstore_ps(out + i, m, _mm256_mul_ps(vu, e));
  }
}

/// Each panel's 8 lanes live in one ymm accumulator updated with separate
/// mul/add per j — bitwise the scalar per-lane chain. Pairs of panels run
/// in two independent accumulators to hide the FP-add latency of a lone
/// ascending-j chain.
void ScorePanelsAvx2(const float* q, const float* panels, int64_t d,
                     int64_t n, float* out) {
  int64_t p = 0;
  for (; p + 2 <= n; p += 2) {
    const float* p0 = panels + p * 8 * d;
    const float* p1 = p0 + 8 * d;
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    for (int64_t j = 0; j < d; ++j) {
      const __m256 qj = _mm256_broadcast_ss(q + j);
      a0 = _mm256_add_ps(a0, _mm256_mul_ps(qj, _mm256_loadu_ps(p0 + j * 8)));
      a1 = _mm256_add_ps(a1, _mm256_mul_ps(qj, _mm256_loadu_ps(p1 + j * 8)));
    }
    _mm256_storeu_ps(out + p * 8, a0);
    _mm256_storeu_ps(out + (p + 1) * 8, a1);
  }
  if (p < n) {
    const float* p0 = panels + p * 8 * d;
    __m256 a0 = _mm256_setzero_ps();
    for (int64_t j = 0; j < d; ++j) {
      const __m256 qj = _mm256_broadcast_ss(q + j);
      a0 = _mm256_add_ps(a0, _mm256_mul_ps(qj, _mm256_loadu_ps(p0 + j * 8)));
    }
    _mm256_storeu_ps(out + p * 8, a0);
  }
}

constexpr KernelTable kAvx2Table = {
    "avx2",        GemmMicroAvx2, SpmmSegmentAvx2, AddAvx2,
    SubAvx2,       MulAvx2,       ScaleAvx2,       AxpyAvx2,
    SumAvx2,       SqnormAvx2,    DotAvx2,         MaxAbsAvx2,
    RowMaxAvx2,    ExpSumAvx2,    ExpScaleAvx2,    ScorePanelsAvx2,
};

}  // namespace

const KernelTable* Avx2KernelsOrNull() { return &kAvx2Table; }

}  // namespace graphaug::simd

#else  // !defined(__AVX2__): non-x86 build, dispatch always stays scalar.

namespace graphaug::simd {
const KernelTable* Avx2KernelsOrNull() { return nullptr; }
}  // namespace graphaug::simd

#endif
