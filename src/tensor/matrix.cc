#include "tensor/matrix.h"

#include <cstdio>
#include <sstream>

namespace graphaug {

std::string Matrix::ShapeString() const {
  std::ostringstream os;
  os << "[" << rows_ << "x" << cols_ << "]";
  return os.str();
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << ShapeString() << "\n";
  const int64_t r_end = std::min<int64_t>(rows_, max_rows);
  const int64_t c_end = std::min<int64_t>(cols_, max_cols);
  for (int64_t r = 0; r < r_end; ++r) {
    for (int64_t c = 0; c < c_end; ++c) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%9.4f ", at(r, c));
      os << buf;
    }
    if (c_end < cols_) os << "...";
    os << "\n";
  }
  if (r_end < rows_) os << "...\n";
  return os.str();
}

}  // namespace graphaug
