#ifndef GRAPHAUG_TENSOR_OPS_H_
#define GRAPHAUG_TENSOR_OPS_H_

#include <functional>

#include "tensor/matrix.h"

namespace graphaug {

/// Dense kernels used by the autograd engine and by models directly.
/// Everything works on row-major float matrices; outputs are written into
/// caller-provided matrices (resized on demand) or returned by value.

/// out = alpha * op(a) * op(b) + beta * out, where op is optional transpose.
/// Shapes are checked. The inner loop is blocked for cache friendliness.
void Gemm(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b,
          float alpha, float beta, Matrix* out);

/// Returns a * b (no transposes), convenience wrapper.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// out[i] = a[i] + b[i].
Matrix Add(const Matrix& a, const Matrix& b);
/// out[i] = a[i] - b[i].
Matrix Sub(const Matrix& a, const Matrix& b);
/// out[i] = a[i] * b[i] (Hadamard product).
Matrix Mul(const Matrix& a, const Matrix& b);
/// out[i] = a[i] * s.
Matrix Scale(const Matrix& a, float s);
/// a += b (in place).
void AddInPlace(Matrix* a, const Matrix& b);
/// a += s * b (axpy, in place).
void Axpy(float s, const Matrix& b, Matrix* a);

/// Applies `fn` elementwise, returning a new matrix.
Matrix Map(const Matrix& a, const std::function<float(float)>& fn);

/// Sum of all elements.
double SumAll(const Matrix& a);
/// Mean of all elements.
double MeanAll(const Matrix& a);
/// Maximum absolute element (0 for empty matrices).
float MaxAbs(const Matrix& a);
/// Squared Frobenius norm.
double SquaredNorm(const Matrix& a);

/// Row-wise sums: returns (rows x 1).
Matrix RowSum(const Matrix& a);
/// Row-wise means: returns (rows x 1).
Matrix RowMean(const Matrix& a);
/// Row-wise L2 norms: returns (rows x 1); entries are >= eps.
Matrix RowNorm(const Matrix& a, float eps = 1e-12f);

/// Dot product of matching rows: returns (rows x 1) with out[r] = a_r . b_r.
Matrix RowDot(const Matrix& a, const Matrix& b);

/// Cosine similarity of matching rows of a and b: (rows x 1).
Matrix RowCosine(const Matrix& a, const Matrix& b, float eps = 1e-12f);

/// Transposed copy.
Matrix Transpose(const Matrix& a);

/// Horizontal concatenation [a | b].
Matrix ConcatCols(const Matrix& a, const Matrix& b);
/// Vertical concatenation [a ; b].
Matrix ConcatRows(const Matrix& a, const Matrix& b);
/// Column slice a[:, start : start+len].
Matrix SliceCols(const Matrix& a, int64_t start, int64_t len);
/// Row slice a[start : start+len, :].
Matrix SliceRows(const Matrix& a, int64_t start, int64_t len);

/// Gathers rows by index: out[i] = a[idx[i]].
Matrix GatherRows(const Matrix& a, const std::vector<int32_t>& idx);
/// Scatter-add: for each i, out->row(idx[i]) += src.row(i). `out` must be
/// preallocated with the right number of columns.
void ScatterAddRows(const Matrix& src, const std::vector<int32_t>& idx,
                    Matrix* out);

/// True if all elements of a and b differ by at most atol + rtol*|b|.
bool AllClose(const Matrix& a, const Matrix& b, float rtol = 1e-4f,
              float atol = 1e-5f);

}  // namespace graphaug

#endif  // GRAPHAUG_TENSOR_OPS_H_
