#ifndef GRAPHAUG_TENSOR_INIT_H_
#define GRAPHAUG_TENSOR_INIT_H_

#include "common/rng.h"
#include "tensor/matrix.h"

namespace graphaug {

/// Fills `m` with N(mean, stddev) samples.
void InitNormal(Matrix* m, Rng* rng, float mean = 0.f, float stddev = 0.1f);

/// Fills `m` with U(lo, hi) samples.
void InitUniform(Matrix* m, Rng* rng, float lo = -0.1f, float hi = 0.1f);

/// Xavier/Glorot uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
void InitXavier(Matrix* m, Rng* rng);

/// He/Kaiming normal initialization: N(0, sqrt(2/fan_in)).
void InitHe(Matrix* m, Rng* rng);

}  // namespace graphaug

#endif  // GRAPHAUG_TENSOR_INIT_H_
