#include "tensor/init.h"

#include <cmath>

namespace graphaug {

void InitNormal(Matrix* m, Rng* rng, float mean, float stddev) {
  for (int64_t i = 0; i < m->size(); ++i) {
    (*m)[i] = static_cast<float>(rng->Gaussian(mean, stddev));
  }
}

void InitUniform(Matrix* m, Rng* rng, float lo, float hi) {
  for (int64_t i = 0; i < m->size(); ++i) {
    (*m)[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
}

void InitXavier(Matrix* m, Rng* rng) {
  const double a = std::sqrt(6.0 / static_cast<double>(m->rows() + m->cols()));
  InitUniform(m, rng, static_cast<float>(-a), static_cast<float>(a));
}

void InitHe(Matrix* m, Rng* rng) {
  const double s = std::sqrt(2.0 / static_cast<double>(m->rows()));
  InitNormal(m, rng, 0.f, static_cast<float>(s));
}

}  // namespace graphaug
