#ifndef GRAPHAUG_EVAL_EVALUATOR_H_
#define GRAPHAUG_EVAL_EVALUATOR_H_

#include <functional>
#include <vector>

#include "data/dataset.h"
#include "eval/metrics.h"
#include "tensor/matrix.h"

namespace graphaug {

namespace retrieval {
class Retriever;
}  // namespace retrieval

/// Full-ranking top-K evaluator. For each evaluated user the model scores
/// every item, training interactions are masked out, and the top-max(K)
/// ranking is compared against the held-out test items — the protocol of
/// the paper's Table II.
///
/// Ranking is partitioned across users in fixed chunks and run on the
/// shared parallel runtime (common/parallel.h); per-chunk metric partials
/// are merged in user order, so the reported metrics are identical at any
/// thread count.
class Evaluator {
 public:
  /// `scorer(users)` must return a (|users| x num_items) score matrix. It
  /// may be invoked concurrently from several threads, so it must not
  /// mutate shared state (the built-in recommenders score from finalized
  /// read-only embedding tables and satisfy this).
  using ScoreFn = std::function<Matrix(const std::vector<int32_t>&)>;

  /// The dataset must outlive the evaluator.
  Evaluator(const Dataset* dataset, std::vector<int> ks = {20, 40});

  /// Evaluates every user that has at least one test interaction.
  TopKMetrics Evaluate(const ScoreFn& scorer) const;

  /// Evaluates only the given users (skipping those without test items);
  /// used by the degree-group study (Table V).
  TopKMetrics EvaluateUsers(const ScoreFn& scorer,
                            const std::vector<int32_t>& users) const;

  /// Item-side group evaluation (the item half of Table V): relevance is
  /// restricted to test items inside `item_group` (sorted ids); users
  /// whose restricted test set is empty are skipped. The candidate
  /// ranking still spans all items, so the metric reflects how well the
  /// group's items surface against full competition.
  TopKMetrics EvaluateItemGroup(const ScoreFn& scorer,
                                const std::vector<int32_t>& item_group) const;

  /// Retrieval-backed evaluation (DESIGN.md §10): instead of scoring the
  /// full item matrix per user, asks `retriever` for each user's
  /// top-max(K) items with that user's training interactions excluded.
  /// `user_embeddings` is the (num_users x d) query table, matched by row
  /// to user id. With an exact retriever (TopKScorer; MipsIndex at
  /// bound_slack = 1) the metrics are bit-for-bit identical to
  /// Evaluate() on the corresponding factored scorer — the dense path
  /// stays available as the correctness oracle. With an approximate
  /// retriever the gap is the recall loss, which tests and the bench
  /// gate bound.
  TopKMetrics EvaluateRetrieval(const retrieval::Retriever& retriever,
                                const Matrix& user_embeddings) const;

  /// Retrieval-backed EvaluateUsers.
  TopKMetrics EvaluateRetrievalUsers(const retrieval::Retriever& retriever,
                                     const Matrix& user_embeddings,
                                     const std::vector<int32_t>& users) const;

  /// Users that have at least one test interaction.
  const std::vector<int32_t>& evaluable_users() const {
    return evaluable_users_;
  }

 private:
  const Dataset* dataset_;
  std::vector<int> ks_;
  int max_k_ = 0;
  std::vector<std::vector<int32_t>> test_items_;   // per user, sorted
  std::vector<std::vector<int32_t>> train_items_;  // per user, sorted
  std::vector<int32_t> evaluable_users_;
};

}  // namespace graphaug

#endif  // GRAPHAUG_EVAL_EVALUATOR_H_
