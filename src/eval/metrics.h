#ifndef GRAPHAUG_EVAL_METRICS_H_
#define GRAPHAUG_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace graphaug {

/// Top-K ranking metrics averaged over evaluated users. The `ks` vector
/// defines which cutoffs the parallel arrays refer to (the paper reports
/// K = 20 and K = 40).
struct TopKMetrics {
  std::vector<int> ks;
  std::vector<double> recall;
  std::vector<double> ndcg;
  std::vector<double> precision;
  std::vector<double> hit_rate;
  std::vector<double> map;  ///< mean average precision @K
  std::vector<double> mrr;  ///< mean reciprocal rank @K
  int num_users = 0;

  double RecallAt(int k) const;
  double NdcgAt(int k) const;
  double PrecisionAt(int k) const;
  double HitRateAt(int k) const;
  double MapAt(int k) const;
  double MrrAt(int k) const;
};

/// Per-user metric computation: `ranked` is the model's top-max(ks) item
/// ranking (best first), `relevant` the user's sorted test items. Results
/// are *accumulated* into the parallel arrays (caller divides by user
/// count). Standard definitions:
///   Recall@K = |topK ∩ rel| / |rel|
///   NDCG@K   = DCG@K / IDCG@K, DCG gain 1/log2(rank+2)
///   Prec@K   = |topK ∩ rel| / K
///   Hit@K    = 1 if any relevant item in topK
///   AP@K     = (1/min(K,|rel|)) Σ_hits Prec@rank(hit)
///   RR@K     = 1 / rank of the first relevant item (0 if none in topK)
/// `map` and `mrr` may be null when not needed.
void AccumulateUserMetrics(const std::vector<int32_t>& ranked,
                           const std::vector<int32_t>& relevant,
                           const std::vector<int>& ks,
                           std::vector<double>* recall,
                           std::vector<double>* ndcg,
                           std::vector<double>* precision,
                           std::vector<double>* hit_rate,
                           std::vector<double>* map = nullptr,
                           std::vector<double>* mrr = nullptr);

}  // namespace graphaug

#endif  // GRAPHAUG_EVAL_METRICS_H_
