#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace graphaug {
namespace {

double FindAt(const std::vector<int>& ks, const std::vector<double>& vals,
              int k) {
  for (size_t i = 0; i < ks.size(); ++i) {
    if (ks[i] == k) return vals[i];
  }
  GA_CHECK(false) << "metric cutoff K=" << k << " was not evaluated";
  return 0;
}

}  // namespace

double TopKMetrics::RecallAt(int k) const { return FindAt(ks, recall, k); }
double TopKMetrics::NdcgAt(int k) const { return FindAt(ks, ndcg, k); }
double TopKMetrics::PrecisionAt(int k) const {
  return FindAt(ks, precision, k);
}
double TopKMetrics::HitRateAt(int k) const { return FindAt(ks, hit_rate, k); }
double TopKMetrics::MapAt(int k) const { return FindAt(ks, map, k); }
double TopKMetrics::MrrAt(int k) const { return FindAt(ks, mrr, k); }

void AccumulateUserMetrics(const std::vector<int32_t>& ranked,
                           const std::vector<int32_t>& relevant,
                           const std::vector<int>& ks,
                           std::vector<double>* recall,
                           std::vector<double>* ndcg,
                           std::vector<double>* precision,
                           std::vector<double>* hit_rate,
                           std::vector<double>* map,
                           std::vector<double>* mrr) {
  GA_CHECK(!relevant.empty());
  for (size_t ki = 0; ki < ks.size(); ++ki) {
    const int k = ks[ki];
    const int depth = std::min<int>(k, static_cast<int>(ranked.size()));
    int hits = 0;
    double dcg = 0;
    double ap = 0;
    double rr = 0;
    for (int r = 0; r < depth; ++r) {
      if (std::binary_search(relevant.begin(), relevant.end(), ranked[r])) {
        ++hits;
        dcg += 1.0 / std::log2(r + 2.0);
        ap += static_cast<double>(hits) / (r + 1);
        if (rr == 0) rr = 1.0 / (r + 1);
      }
    }
    double idcg = 0;
    const int ideal = std::min<int>(k, static_cast<int>(relevant.size()));
    for (int r = 0; r < ideal; ++r) idcg += 1.0 / std::log2(r + 2.0);
    (*recall)[ki] += static_cast<double>(hits) / relevant.size();
    (*ndcg)[ki] += idcg > 0 ? dcg / idcg : 0.0;
    (*precision)[ki] += static_cast<double>(hits) / k;
    (*hit_rate)[ki] += hits > 0 ? 1.0 : 0.0;
    if (map != nullptr) (*map)[ki] += ideal > 0 ? ap / ideal : 0.0;
    if (mrr != nullptr) (*mrr)[ki] += rr;
  }
}

}  // namespace graphaug
