#include "eval/embedding_stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

double RowCos(const Matrix& m, int64_t i, int64_t j) {
  const float* a = m.row(i);
  const float* b = m.row(j);
  double dot = 0, na = 0, nb = 0;
  for (int64_t c = 0; c < m.cols(); ++c) {
    dot += static_cast<double>(a[c]) * b[c];
    na += static_cast<double>(a[c]) * a[c];
    nb += static_cast<double>(b[c]) * b[c];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 1e-12 ? dot / denom : 0.0;
}

}  // namespace

double ComputeMad(const Matrix& embeddings, int num_pairs, Rng* rng) {
  GA_CHECK_GE(embeddings.rows(), 2);
  double acc = 0;
  int counted = 0;
  for (int p = 0; p < num_pairs; ++p) {
    const int64_t i = static_cast<int64_t>(rng->UniformInt(embeddings.rows()));
    int64_t j = static_cast<int64_t>(rng->UniformInt(embeddings.rows()));
    if (i == j) continue;
    acc += 1.0 - RowCos(embeddings, i, j);
    ++counted;
  }
  return counted > 0 ? acc / counted : 0.0;
}

double ComputeUniformity(const Matrix& embeddings, int num_pairs, Rng* rng,
                         double t) {
  GA_CHECK_GE(embeddings.rows(), 2);
  // Normalize rows first.
  Matrix norms = RowNorm(embeddings);
  double acc = 0;
  int counted = 0;
  for (int p = 0; p < num_pairs; ++p) {
    const int64_t i = static_cast<int64_t>(rng->UniformInt(embeddings.rows()));
    int64_t j = static_cast<int64_t>(rng->UniformInt(embeddings.rows()));
    if (i == j) continue;
    double dist2 = 0;
    const float* a = embeddings.row(i);
    const float* b = embeddings.row(j);
    for (int64_t c = 0; c < embeddings.cols(); ++c) {
      const double da = a[c] / norms[i];
      const double db = b[c] / norms[j];
      dist2 += (da - db) * (da - db);
    }
    acc += std::exp(-t * dist2);
    ++counted;
  }
  return counted > 0 ? std::log(acc / counted) : 0.0;
}

double ComputeAlignment(const Matrix& a, const Matrix& b) {
  GA_CHECK(a.SameShape(b));
  Matrix cos = RowCosine(a, b);
  return MeanAll(cos);
}

Matrix PcaProject2d(const Matrix& embeddings, Rng* rng, int iterations) {
  const int64_t n = embeddings.rows();
  const int64_t d = embeddings.cols();
  GA_CHECK_GE(d, 2);
  // Center.
  Matrix centered = embeddings;
  for (int64_t c = 0; c < d; ++c) {
    double mean = 0;
    for (int64_t r = 0; r < n; ++r) mean += centered.at(r, c);
    mean /= std::max<int64_t>(1, n);
    for (int64_t r = 0; r < n; ++r) {
      centered.at(r, c) -= static_cast<float>(mean);
    }
  }
  // Power iteration for two leading eigenvectors of X^T X with deflation.
  auto power_component = [&](const Matrix* deflate) {
    Matrix v(d, 1);
    for (int64_t i = 0; i < d; ++i) {
      v[i] = static_cast<float>(rng->Gaussian());
    }
    Matrix xv, xtxv;
    for (int it = 0; it < iterations; ++it) {
      if (deflate != nullptr) {
        // v <- v - (v . u) u
        double dot = 0;
        for (int64_t i = 0; i < d; ++i) dot += static_cast<double>(v[i]) * (*deflate)[i];
        for (int64_t i = 0; i < d; ++i) {
          v[i] -= static_cast<float>(dot) * (*deflate)[i];
        }
      }
      Gemm(centered, false, v, false, 1.f, 0.f, &xv);      // (n x 1)
      Gemm(centered, true, xv, false, 1.f, 0.f, &xtxv);    // (d x 1)
      double norm = std::sqrt(SquaredNorm(xtxv));
      if (norm < 1e-12) break;
      for (int64_t i = 0; i < d; ++i) {
        v[i] = static_cast<float>(xtxv[i] / norm);
      }
    }
    return v;
  };
  Matrix u1 = power_component(nullptr);
  Matrix u2 = power_component(&u1);
  Matrix proj(n, 2);
  for (int64_t r = 0; r < n; ++r) {
    double p1 = 0, p2 = 0;
    const float* row = centered.row(r);
    for (int64_t c = 0; c < d; ++c) {
      p1 += static_cast<double>(row[c]) * u1[c];
      p2 += static_cast<double>(row[c]) * u2[c];
    }
    proj.at(r, 0) = static_cast<float>(p1);
    proj.at(r, 1) = static_cast<float>(p2);
  }
  return proj;
}

}  // namespace graphaug
