#include "eval/evaluator.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/trace.h"
#include "retrieval/topk.h"
#include "tensor/ops.h"

namespace graphaug {

Evaluator::Evaluator(const Dataset* dataset, std::vector<int> ks)
    : dataset_(dataset), ks_(std::move(ks)) {
  GA_CHECK(dataset != nullptr);
  GA_CHECK(!ks_.empty());
  max_k_ = *std::max_element(ks_.begin(), ks_.end());
  test_items_ = dataset->TestItemsByUser();
  train_items_.assign(dataset->num_users, {});
  for (const Edge& e : dataset->train_edges) {
    train_items_[e.user].push_back(e.item);
  }
  for (auto& v : train_items_) std::sort(v.begin(), v.end());
  for (int32_t u = 0; u < dataset->num_users; ++u) {
    if (!test_items_[u].empty()) evaluable_users_.push_back(u);
  }
}

TopKMetrics Evaluator::Evaluate(const ScoreFn& scorer) const {
  return EvaluateUsers(scorer, evaluable_users_);
}

namespace {

/// Per-chunk metric accumulator; one instance per user chunk so chunks
/// can be ranked on different threads and merged deterministically.
struct MetricPartial {
  std::vector<double> recall, ndcg, precision, hit_rate, map, mrr;

  explicit MetricPartial(size_t nks)
      : recall(nks, 0), ndcg(nks, 0), precision(nks, 0), hit_rate(nks, 0),
        map(nks, 0), mrr(nks, 0) {}
};

/// Shared ranking loop: scores users in fixed chunks of kBatch, masks
/// training items, extracts the top-K ranking with a per-chunk selection
/// buffer, and accumulates metrics against the relevance sets provided by
/// `relevant_of(user)` (sorted item ids; users with an empty set are
/// skipped). Chunks are ranked in parallel across the shared runtime —
/// each chunk owns its score matrix, selection buffers, and metric partial
/// — and partials are merged in chunk order, i.e. user order, so results
/// are identical at any thread count. The scorer must tolerate concurrent
/// invocations.
template <typename RelevantFn>
TopKMetrics RankAndScore(const Dataset& dataset,
                         const Evaluator::ScoreFn& scorer,
                         const std::vector<std::vector<int32_t>>& train_items,
                         const std::vector<int>& ks, int max_k,
                         const std::vector<int32_t>& users,
                         const RelevantFn& relevant_of) {
  TopKMetrics m;
  m.ks = ks;
  m.recall.assign(ks.size(), 0);
  m.ndcg.assign(ks.size(), 0);
  m.precision.assign(ks.size(), 0);
  m.hit_rate.assign(ks.size(), 0);
  m.map.assign(ks.size(), 0);
  m.mrr.assign(ks.size(), 0);

  std::vector<int32_t> batch_users;
  for (int32_t u : users) {
    if (u >= 0 && u < dataset.num_users && !relevant_of(u).empty()) {
      batch_users.push_back(u);
    }
  }
  if (batch_users.empty()) return m;

  constexpr int64_t kBatch = 128;
  const int64_t num_users = static_cast<int64_t>(batch_users.size());
  const int64_t num_chunks = (num_users + kBatch - 1) / kBatch;
  std::vector<MetricPartial> partials(static_cast<size_t>(num_chunks),
                                      MetricPartial(ks.size()));
  ParallelFor(0, num_users, kBatch, [&](int64_t begin, int64_t end) {
    MetricPartial& p = partials[static_cast<size_t>(begin / kBatch)];
    const std::vector<int32_t> chunk(batch_users.begin() + begin,
                                     batch_users.begin() + end);
    Matrix scores = scorer(chunk);
    GA_CHECK_EQ(scores.rows(), static_cast<int64_t>(chunk.size()));
    GA_CHECK_EQ(scores.cols(), dataset.num_items);
    std::vector<int32_t> ranked;
    std::vector<int32_t> order(dataset.num_items);
    for (size_t i = 0; i < chunk.size(); ++i) {
      const int32_t u = chunk[i];
      float* row = scores.row(static_cast<int64_t>(i));
      for (int32_t v : train_items[u]) {
        row[v] = -std::numeric_limits<float>::infinity();
      }
      std::iota(order.begin(), order.end(), 0);
      const int depth = std::min<int>(max_k, static_cast<int>(order.size()));
      std::partial_sort(order.begin(), order.begin() + depth, order.end(),
                        [row](int32_t a, int32_t b) {
                          return row[a] != row[b] ? row[a] > row[b] : a < b;
                        });
      ranked.assign(order.begin(), order.begin() + depth);
      AccumulateUserMetrics(ranked, relevant_of(u), ks, &p.recall, &p.ndcg,
                            &p.precision, &p.hit_rate, &p.map, &p.mrr);
    }
  });
  for (const MetricPartial& p : partials) {
    for (size_t ki = 0; ki < ks.size(); ++ki) {
      m.recall[ki] += p.recall[ki];
      m.ndcg[ki] += p.ndcg[ki];
      m.precision[ki] += p.precision[ki];
      m.hit_rate[ki] += p.hit_rate[ki];
      m.map[ki] += p.map[ki];
      m.mrr[ki] += p.mrr[ki];
    }
  }
  m.num_users = static_cast<int>(num_users);
  const double inv = 1.0 / m.num_users;
  for (size_t ki = 0; ki < ks.size(); ++ki) {
    m.recall[ki] *= inv;
    m.ndcg[ki] *= inv;
    m.precision[ki] *= inv;
    m.hit_rate[ki] *= inv;
    m.map[ki] *= inv;
    m.mrr[ki] *= inv;
  }
  return m;
}

}  // namespace

TopKMetrics Evaluator::EvaluateUsers(const ScoreFn& scorer,
                                     const std::vector<int32_t>& users) const {
  GA_TRACE_SPAN("eval");
  return RankAndScore(
      *dataset_, scorer, train_items_, ks_, max_k_, users,
      [this](int32_t u) -> const std::vector<int32_t>& {
        return test_items_[u];
      });
}

TopKMetrics Evaluator::EvaluateRetrieval(
    const retrieval::Retriever& retriever,
    const Matrix& user_embeddings) const {
  return EvaluateRetrievalUsers(retriever, user_embeddings, evaluable_users_);
}

TopKMetrics Evaluator::EvaluateRetrievalUsers(
    const retrieval::Retriever& retriever, const Matrix& user_embeddings,
    const std::vector<int32_t>& users) const {
  GA_TRACE_SPAN("eval_retrieval");
  GA_CHECK_EQ(user_embeddings.rows(),
              static_cast<int64_t>(dataset_->num_users));
  TopKMetrics m;
  m.ks = ks_;
  m.recall.assign(ks_.size(), 0);
  m.ndcg.assign(ks_.size(), 0);
  m.precision.assign(ks_.size(), 0);
  m.hit_rate.assign(ks_.size(), 0);
  m.map.assign(ks_.size(), 0);
  m.mrr.assign(ks_.size(), 0);

  std::vector<int32_t> batch_users;
  for (int32_t u : users) {
    if (u >= 0 && u < dataset_->num_users && !test_items_[u].empty()) {
      batch_users.push_back(u);
    }
  }
  if (batch_users.empty()) return m;

  // One batched retrieval over every evaluated user; the retriever owns
  // the parallelism (deterministic at any thread count). Training items
  // are excluded at the source instead of masked to -inf — both paths
  // produce the same finite-score ranking prefix, and masked items can
  // never be relevant (train and test are disjoint), so metrics match the
  // dense oracle exactly for exact retrievers.
  const Matrix queries = GatherRows(user_embeddings, batch_users);
  std::vector<retrieval::TopKList> lists;
  retriever.RetrieveBatch(
      queries, max_k_,
      [&](int64_t qi) -> const std::vector<int32_t>& {
        return train_items_[batch_users[static_cast<size_t>(qi)]];
      },
      &lists);

  // Metric accumulation replicates the dense path's exact summation
  // structure — per-kBatch-chunk partials merged in chunk order — so the
  // resulting doubles are bit-for-bit identical to Evaluate() when the
  // retriever is exact (same per-user values, same addition grouping).
  constexpr int64_t kBatch = 128;
  const int64_t num_users = static_cast<int64_t>(batch_users.size());
  const int64_t num_chunks = (num_users + kBatch - 1) / kBatch;
  std::vector<MetricPartial> partials(static_cast<size_t>(num_chunks),
                                      MetricPartial(ks_.size()));
  for (int64_t i = 0; i < num_users; ++i) {
    MetricPartial& p = partials[static_cast<size_t>(i / kBatch)];
    const int32_t u = batch_users[static_cast<size_t>(i)];
    AccumulateUserMetrics(lists[static_cast<size_t>(i)].items, test_items_[u],
                          ks_, &p.recall, &p.ndcg, &p.precision, &p.hit_rate,
                          &p.map, &p.mrr);
  }
  for (const MetricPartial& p : partials) {
    for (size_t ki = 0; ki < ks_.size(); ++ki) {
      m.recall[ki] += p.recall[ki];
      m.ndcg[ki] += p.ndcg[ki];
      m.precision[ki] += p.precision[ki];
      m.hit_rate[ki] += p.hit_rate[ki];
      m.map[ki] += p.map[ki];
      m.mrr[ki] += p.mrr[ki];
    }
  }
  m.num_users = static_cast<int>(num_users);
  const double inv = 1.0 / m.num_users;
  for (size_t ki = 0; ki < ks_.size(); ++ki) {
    m.recall[ki] *= inv;
    m.ndcg[ki] *= inv;
    m.precision[ki] *= inv;
    m.hit_rate[ki] *= inv;
    m.map[ki] *= inv;
    m.mrr[ki] *= inv;
  }
  return m;
}

TopKMetrics Evaluator::EvaluateItemGroup(
    const ScoreFn& scorer, const std::vector<int32_t>& item_group) const {
  GA_CHECK(std::is_sorted(item_group.begin(), item_group.end()));
  // Precompute each user's test items restricted to the group.
  std::vector<std::vector<int32_t>> restricted(dataset_->num_users);
  for (int32_t u : evaluable_users_) {
    std::set_intersection(test_items_[u].begin(), test_items_[u].end(),
                          item_group.begin(), item_group.end(),
                          std::back_inserter(restricted[u]));
  }
  return RankAndScore(*dataset_, scorer, train_items_, ks_, max_k_,
                      evaluable_users_,
                      [&restricted](int32_t u) -> const std::vector<int32_t>& {
                        return restricted[u];
                      });
}

}  // namespace graphaug
