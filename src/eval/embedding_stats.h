#ifndef GRAPHAUG_EVAL_EMBEDDING_STATS_H_
#define GRAPHAUG_EVAL_EMBEDDING_STATS_H_

#include "common/rng.h"
#include "tensor/matrix.h"

namespace graphaug {

/// MAD — Mean Average Distance over node-embedding pairs (Chen et al.,
/// "Measuring and Relieving the Over-smoothing Problem"), the
/// over-smoothing diagnostic of Tables III and VII. Defined as the mean of
/// the cosine distances 1 - cos(h_i, h_j) over node pairs; estimated here
/// from `num_pairs` uniformly sampled pairs for tractability. Higher MAD
/// means less over-smoothing (embeddings are more spread out).
double ComputeMad(const Matrix& embeddings, int num_pairs, Rng* rng);

/// Uniformity metric of Wang & Isola (2020):
///   log E[exp(-t * ||z_i - z_j||^2)]   over L2-normalized embeddings.
/// More negative = more uniform on the hypersphere. Quantifies the Fig. 7
/// distribution comparison without a UMAP dependency.
double ComputeUniformity(const Matrix& embeddings, int num_pairs, Rng* rng,
                         double t = 2.0);

/// Mean cosine similarity of matched rows between two embedding tables
/// (alignment diagnostic for contrastive views).
double ComputeAlignment(const Matrix& a, const Matrix& b);

/// Projects embeddings to 2-D via PCA (power iteration on the covariance,
/// two leading components). The Fig. 7 substitute for UMAP: returns an
/// (n x 2) matrix suitable for CSV export and scatter-plotting.
Matrix PcaProject2d(const Matrix& embeddings, Rng* rng, int iterations = 60);

}  // namespace graphaug

#endif  // GRAPHAUG_EVAL_EMBEDDING_STATS_H_
