#include "eval/significance.h"

#include <cmath>

#include "common/check.h"

namespace graphaug {
namespace {

double Mean(const std::vector<double>& x) {
  double s = 0;
  for (double v : x) s += v;
  return s / x.size();
}

double Variance(const std::vector<double>& x, double mean) {
  GA_CHECK_GE(x.size(), 2u);
  double s = 0;
  for (double v : x) s += (v - mean) * (v - mean);
  return s / (x.size() - 1);
}

/// Continued-fraction evaluation for the incomplete beta (Lentz's method,
/// Numerical Recipes style).
double BetaCf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3e-12;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double IncompleteBeta(double a, double b, double x) {
  if (x <= 0) return 0;
  if (x >= 1) return 1;
  const double ln_beta = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  const double front = std::exp(ln_beta + a * std::log(x) +
                                b * std::log(1.0 - x));
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaCf(a, b, x) / a;
  }
  return 1.0 - front * BetaCf(b, a, 1.0 - x) / b;
}

TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b) {
  GA_CHECK_GE(a.size(), 2u);
  GA_CHECK_GE(b.size(), 2u);
  const double ma = Mean(a), mb = Mean(b);
  const double va = Variance(a, ma), vb = Variance(b, mb);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double se2 = va / na + vb / nb;
  TTestResult res;
  if (se2 <= 0) {
    res.t_statistic = ma == mb ? 0.0 : (ma > mb ? 1e9 : -1e9);
    res.degrees_of_freedom = na + nb - 2;
    res.p_value = ma == mb ? 1.0 : 0.0;
    return res;
  }
  res.t_statistic = (ma - mb) / std::sqrt(se2);
  res.degrees_of_freedom =
      se2 * se2 / ((va / na) * (va / na) / (na - 1) +
                   (vb / nb) * (vb / nb) / (nb - 1));
  // Two-sided p-value via the Student-t CDF expressed with the incomplete
  // beta function: P(|T| > t) = I_{v/(v+t^2)}(v/2, 1/2).
  const double v = res.degrees_of_freedom;
  const double t2 = res.t_statistic * res.t_statistic;
  res.p_value = IncompleteBeta(v / 2.0, 0.5, v / (v + t2));
  return res;
}

}  // namespace graphaug
