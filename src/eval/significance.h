#ifndef GRAPHAUG_EVAL_SIGNIFICANCE_H_
#define GRAPHAUG_EVAL_SIGNIFICANCE_H_

#include <vector>

namespace graphaug {

/// Welch's two-sample t-test result for the significance row of Table II.
struct TTestResult {
  double t_statistic = 0;
  double degrees_of_freedom = 0;
  double p_value = 1.0;  ///< two-sided
};

/// Welch's unequal-variance t-test between two samples of metric values
/// (e.g. Recall@20 across seeds for GraphAug vs. the best baseline).
TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Regularized incomplete beta function (used for the Student-t CDF);
/// exposed for testing.
double IncompleteBeta(double a, double b, double x);

}  // namespace graphaug

#endif  // GRAPHAUG_EVAL_SIGNIFICANCE_H_
