#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace graphaug::obs {

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  GA_CHECK(!bounds_.empty()) << "histogram " << name_ << " needs buckets";
  GA_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram " << name_ << " bounds must be ascending";
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    GA_CHECK(bounds_[i] < bounds_[i + 1])
        << "histogram " << name_ << " has duplicate bound " << bounds_[i];
  }
  counts_.resize(bounds_.size() + 1);
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

void Histogram::Observe(double v) {
  // First bound >= v; v above every bound lands in the overflow bucket.
  const size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> requires C++20 libstdc++ support; a CAS
  // loop keeps the sum portable.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::BucketCount(size_t i) const {
  GA_CHECK(i < counts_.size());
  return counts_[i].load(std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  const int64_t total = TotalCount();
  if (total <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based, midpoint convention).
  const double rank = q * static_cast<double>(total);
  double cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double n = static_cast<double>(BucketCount(i));
    if (n <= 0) continue;
    if (cumulative + n >= rank || i + 1 == counts_.size()) {
      // Overflow bucket has no upper edge: clamp to the largest bound.
      if (i >= bounds_.size()) return bounds_.back();
      const double hi = bounds_[i];
      const double lo = i == 0 ? std::min(0.0, bounds_[0]) : bounds_[i - 1];
      const double frac =
          std::min(1.0, std::max(0.0, (rank - cumulative) / n));
      return lo + (hi - lo) * frac;
    }
    cumulative += n;
  }
  return bounds_.back();
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return it->second;
  counters_.emplace_back(name);
  counter_index_[name] = &counters_.back();
  return &counters_.back();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return it->second;
  gauges_.emplace_back(name);
  gauge_index_[name] = &gauges_.back();
  return &gauges_.back();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return it->second;
  histograms_.emplace_back(name, bounds);
  histogram_index_[name] = &histograms_.back();
  return &histograms_.back();
}

std::map<std::string, int64_t> MetricsRegistry::CounterSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, c] : counter_index_) out[name] = c->value();
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counter_index_) {
    os << (first ? "\n" : ",\n") << "    " << JsonString(name) << ": "
       << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauge_index_) {
    os << (first ? "\n" : ",\n") << "    " << JsonString(name) << ": "
       << JsonNumber(g->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histogram_index_) {
    os << (first ? "\n" : ",\n") << "    " << JsonString(name)
       << ": {\"bounds\": [";
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      os << (i ? ", " : "") << JsonNumber(h->bounds()[i]);
    }
    os << "], \"counts\": [";
    for (size_t i = 0; i <= h->bounds().size(); ++i) {
      os << (i ? ", " : "") << h->BucketCount(i);
    }
    os << "], \"count\": " << h->TotalCount()
       << ", \"sum\": " << JsonNumber(h->Sum())
       << ", \"p50\": " << JsonNumber(h->Quantile(0.50))
       << ", \"p95\": " << JsonNumber(h->Quantile(0.95))
       << ", \"p99\": " << JsonNumber(h->Quantile(0.99)) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}";
  return os.str();
}

Table MetricsRegistry::ToTable() const {
  std::lock_guard<std::mutex> lock(mu_);
  Table t({"Metric", "Type", "Value"});
  for (const auto& [name, c] : counter_index_) {
    t.AddRow({name, "counter", std::to_string(c->value())});
  }
  for (const auto& [name, g] : gauge_index_) {
    t.AddRow({name, "gauge", FormatDouble(g->value(), 6)});
  }
  for (const auto& [name, h] : histogram_index_) {
    const int64_t n = h->TotalCount();
    const double mean = n > 0 ? h->Sum() / static_cast<double>(n) : 0.0;
    t.AddRow({name, "histogram",
              "n=" + std::to_string(n) + " mean=" + FormatDouble(mean, 6) +
                  " p50=" + FormatDouble(h->Quantile(0.50), 6) +
                  " p95=" + FormatDouble(h->Quantile(0.95), 6) +
                  " p99=" + FormatDouble(h->Quantile(0.99), 6)});
  }
  return t;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : counters_) c.Reset();
  for (auto& g : gauges_) g.Reset();
  for (auto& h : histograms_) h.Reset();
}

namespace {

/// Recursive-descent JSON syntax checker (value grammar of RFC 8259; no
/// semantic limits beyond a depth cap).
class JsonChecker {
 public:
  JsonChecker(const std::string& text, std::string* error)
      : s_(text), error_(error) {}

  bool Run() {
    SkipWs();
    if (!Value(0)) return false;
    SkipWs();
    if (pos_ != s_.size()) return Fail("trailing content");
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return Fail("bad literal");
    pos_ += n;
    return true;
  }

  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return Fail("expected string");
    ++pos_;
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) break;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return Fail("bad \\u escape");
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return Fail("bad escape");
        }
        ++pos_;
      } else if (c < 0x20) {
        return Fail("raw control char in string");
      } else {
        ++pos_;
      }
    }
    return Fail("unterminated string");
  }

  bool Number() {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      return Fail("expected digit");
    }
    if (s_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        return Fail("expected fraction digit");
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        return Fail("expected exponent digit");
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool Value(int depth) {
    if (depth > 256) return Fail("nesting too deep");
    if (pos_ >= s_.size()) return Fail("unexpected end");
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      for (;;) {
        SkipWs();
        if (!String()) return false;
        SkipWs();
        if (pos_ >= s_.size() || s_[pos_] != ':') return Fail("expected ':'");
        ++pos_;
        SkipWs();
        if (!Value(depth + 1)) return false;
        SkipWs();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < s_.size() && s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      for (;;) {
        SkipWs();
        if (!Value(depth + 1)) return false;
        SkipWs();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < s_.size() && s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  const std::string& s_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonLint(const std::string& text, std::string* error) {
  return JsonChecker(text, error).Run();
}

}  // namespace graphaug::obs
