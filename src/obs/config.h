#ifndef GRAPHAUG_OBS_CONFIG_H_
#define GRAPHAUG_OBS_CONFIG_H_

/// Compile-time switch for the whole instrumentation layer. Builds with
/// -DGRAPHAUG_NO_OBS (CMake option GRAPHAUG_DISABLE_OBS) compile every
/// GA_TRACE_SPAN / GA_AG_OP macro to nothing and fold obs::Enabled() to a
/// constant false, so instrumented call sites are dead-code eliminated.
/// The obs library itself still builds (export functions return empty
/// documents) so callers never need their own #ifdefs.
#if !defined(GRAPHAUG_NO_OBS)
#define GRAPHAUG_OBS_ENABLED 1
#else
#define GRAPHAUG_OBS_ENABLED 0
#endif

namespace graphaug::obs {

#if GRAPHAUG_OBS_ENABLED
/// Runtime master switch for instrumentation (off by default). Callers
/// gate recording on this, so an untouched binary pays one relaxed load
/// per instrumented site.
bool Enabled();
void SetEnabled(bool enabled);
#else
inline constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#endif

}  // namespace graphaug::obs

#endif  // GRAPHAUG_OBS_CONFIG_H_
