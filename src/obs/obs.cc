#include "obs/obs.h"

#include <atomic>
#include <cstdio>
#include <sstream>

#include "common/parallel.h"

namespace graphaug::obs {

#if GRAPHAUG_OBS_ENABLED
namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
  // Busy/wall timing in the parallel runtime rides the master switch.
  SetParallelStatsEnabled(enabled);
}
#endif

namespace {

/// JSON object for the parallel runtime, plus a derived utilization
/// fraction (busy / (wall * threads)); only meaningful in timed mode.
std::string ParallelJson() {
  const ParallelStats s = GetParallelStats();
  const int threads = NumThreads();
  const double util =
      s.wall_ns > 0
          ? static_cast<double>(s.busy_ns) /
                (static_cast<double>(s.wall_ns) * static_cast<double>(threads))
          : 0.0;
  std::ostringstream os;
  os << "{\"threads\": " << threads
     << ", \"pool_regions\": " << s.pool_regions
     << ", \"serial_regions\": " << s.serial_regions
     << ", \"pool_chunks\": " << s.pool_chunks
     << ", \"busy_ms\": " << JsonNumber(static_cast<double>(s.busy_ns) / 1e6)
     << ", \"wall_ms\": " << JsonNumber(static_cast<double>(s.wall_ns) / 1e6)
     << ", \"utilization\": " << JsonNumber(util) << "}";
  return os.str();
}

void RefreshParallelGauges() {
  const ParallelStats s = GetParallelStats();
  const int threads = NumThreads();
  MetricsRegistry& reg = MetricsRegistry::Get();
  reg.GetGauge("parallel.threads")->Set(static_cast<double>(threads));
  reg.GetGauge("parallel.utilization")
      ->Set(s.wall_ns > 0 ? static_cast<double>(s.busy_ns) /
                                (static_cast<double>(s.wall_ns) *
                                 static_cast<double>(threads))
                          : 0.0);
}

}  // namespace

std::string MetricsJson() {
  RefreshParallelGauges();
  std::ostringstream os;
  os << "{\n\"metrics\": " << MetricsRegistry::Get().ToJson()
     << ",\n\"autograd_ops\": " << AutogradProfiler::Get().ToJson()
     << ",\n\"epochs\": " << HealthTracker::Get().ToJson()
     << ",\n\"parallel\": " << ParallelJson()
     << ",\n\"memory\": " << MemoryJson()
     << ",\n\"perf\": " << PerfJson() << "\n}";
  return os.str();
}

bool WriteMetricsJson(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = MetricsJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

std::string AsciiReport() {
  RefreshParallelGauges();
  std::ostringstream os;
  const Table ops = AutogradProfiler::Get().ToTable();
  if (ops.NumRows() > 0) {
    os << "Autograd ops (sorted by total time)\n" << ops.ToString() << "\n";
  }
  const Table health = HealthTracker::Get().ToTable();
  if (health.NumRows() > 0) {
    os << "Training health\n" << health.ToString() << "\n";
  }
  os << "Metrics\n" << MetricsRegistry::Get().ToTable().ToString();
  const ParallelStats s = GetParallelStats();
  os << "Parallel runtime: " << NumThreads() << " threads, "
     << s.pool_regions << " pool regions (" << s.pool_chunks << " chunks), "
     << s.serial_regions << " serial regions";
  if (s.wall_ns > 0) {
    os << ", utilization "
       << FormatDouble(static_cast<double>(s.busy_ns) /
                           (static_cast<double>(s.wall_ns) * NumThreads()),
                       2);
  }
  os << "\n";
  os << "Memory: live " << FormatDouble(LiveBytes() / (1024.0 * 1024.0), 2)
     << " MiB, peak " << FormatDouble(PeakBytes() / (1024.0 * 1024.0), 2)
     << " MiB tracked (" << AllocCount() << " allocs), rss "
     << FormatDouble(CurrentRssBytes() / (1024.0 * 1024.0), 2)
     << " MiB (peak " << FormatDouble(PeakRssBytes() / (1024.0 * 1024.0), 2)
     << " MiB)\n";
  if (PerfCountersProbeFailed()) {
    os << "Perf counters: unavailable (perf_event_open denied)\n";
  }
  if (ProfileSampleCount() > 0) {
    const ProfileSummary prof = SummarizeProfile();
    os << "Profiler: " << prof.samples << " samples @ " << ProfilerHz()
       << " Hz across " << prof.threads << " threads ("
       << prof.distinct_stacks << " stacks, " << prof.lost << " lost, "
       << FormatDouble(100.0 * prof.attributed_frac, 1) << "% attributed)\n";
  } else if (ProfilerProbeFailed()) {
    os << "Profiler: unavailable (per-thread timers/signals denied)\n";
  }
  const int64_t dropped = TraceDroppedTotal();
  if (dropped > 0) {
    os << "Trace: " << dropped << " events dropped (ring overflow)\n";
  }
  return os.str();
}

void ResetAll() {
  MetricsRegistry::Get().Reset();
  AutogradProfiler::Get().Reset();
  HealthTracker::Get().Reset();
  ResetTrace();
  ResetParallelStats();
  ResetMemoryStats();
  ResetPerfRegions();
  ResetProfile();
}

}  // namespace graphaug::obs
