#ifndef GRAPHAUG_OBS_TRACE_H_
#define GRAPHAUG_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/config.h"

namespace graphaug::obs {

/// One completed span. `name` must be a string literal (or otherwise
/// outlive the trace buffers) — spans are recorded by pointer, never by
/// copy, so the hot path stays allocation-free.
struct TraceEvent {
  const char* name = nullptr;
  int64_t ts_ns = 0;   ///< start, monotonic ns since process start
  int64_t dur_ns = 0;  ///< duration in ns
  int tid = 0;         ///< small dense thread id (registration order)
};

/// Monotonic nanoseconds since process start (shared clock for trace
/// events and the autograd profiler).
int64_t TraceClockNs();

#if GRAPHAUG_OBS_ENABLED
/// Runtime switch for span recording (off by default; spans cost one
/// relaxed load + branch when off).
bool TraceEnabled();
#else
inline constexpr bool TraceEnabled() { return false; }
#endif

/// Enables/disables span recording. No-op in GRAPHAUG_NO_OBS builds.
void SetTraceEnabled(bool enabled);

/// Appends a completed span to the calling thread's ring buffer. Used by
/// TraceSpan; callable directly for spans whose bounds are not lexical.
void RecordTraceEvent(const char* name, int64_t ts_ns, int64_t dur_ns);

#if GRAPHAUG_OBS_ENABLED
/// Name of the innermost live TraceSpan on this thread, or nullptr. Used
/// by the memory tracker to attribute allocations to the enclosing span.
/// Published whenever the master switch or tracing is on.
const char* CurrentTraceSpanName();
/// Installs `name` as the thread's current span, returning the previous
/// one (TraceSpan internals).
const char* ExchangeCurrentTraceSpanName(const char* name);
#else
inline constexpr const char* CurrentTraceSpanName() { return nullptr; }
inline const char* ExchangeCurrentTraceSpanName(const char*) {
  return nullptr;
}
#endif

/// RAII scoped span: records [construction, destruction) under `name`
/// when tracing is enabled, and publishes `name` for allocation
/// attribution whenever instrumentation is on. Prefer the GA_TRACE_SPAN
/// macro, which also compiles away under GRAPHAUG_NO_OBS.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TraceEnabled() || Enabled()) {
      name_ = name;
      prev_name_ = ExchangeCurrentTraceSpanName(name);
      record_ = TraceEnabled();
      if (record_) start_ns_ = TraceClockNs();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      ExchangeCurrentTraceSpanName(prev_name_);
      if (record_) {
        RecordTraceEvent(name_, start_ns_, TraceClockNs() - start_ns_);
      }
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* prev_name_ = nullptr;
  bool record_ = false;
  int64_t start_ns_ = 0;
};

/// Events currently held in every thread's ring buffer, in no particular
/// order (test/bench helper; export prefers WriteChromeTrace).
std::vector<TraceEvent> SnapshotTraceEvents();

/// Events recorded since the last ResetTrace (including any that were
/// overwritten after their ring filled).
int64_t TraceEventTotal();

/// Events lost to ring-buffer overwrite since the last ResetTrace.
int64_t TraceDroppedTotal();

/// Serializes every buffered span as Chrome trace-event JSON
/// ({"traceEvents": [...]}; load via chrome://tracing or Perfetto).
std::string ChromeTraceJson();

/// Writes ChromeTraceJson() to `path`; false on I/O failure.
bool WriteChromeTrace(const std::string& path);

/// Drops all buffered events and zeroes the totals (test helper).
void ResetTrace();

}  // namespace graphaug::obs

/// Scoped trace span macro: GA_TRACE_SPAN("spmm"); the span closes at end
/// of scope. Compiles to nothing under GRAPHAUG_NO_OBS.
#if GRAPHAUG_OBS_ENABLED
#define GA_TRACE_SPAN_CONCAT2(a, b) a##b
#define GA_TRACE_SPAN_CONCAT(a, b) GA_TRACE_SPAN_CONCAT2(a, b)
#define GA_TRACE_SPAN(name)                    \
  ::graphaug::obs::TraceSpan GA_TRACE_SPAN_CONCAT(ga_trace_span_, \
                                                  __LINE__)(name)
#else
#define GA_TRACE_SPAN(name) \
  do {                      \
  } while (0)
#endif

#endif  // GRAPHAUG_OBS_TRACE_H_
