#ifndef GRAPHAUG_OBS_METRICS_H_
#define GRAPHAUG_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/config.h"

namespace graphaug::obs {

/// Monotonically increasing integer metric. Updates are lock-free relaxed
/// atomics, safe from any thread (including pool workers).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Inc(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// Last-written double metric (thread-safe set/read).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations v with
/// bounds[i-1] < v <= bounds[i] (bucket 0: v <= bounds[0]); one extra
/// overflow bucket counts v > bounds.back(). Observe is lock-free.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds);

  void Observe(double v);

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  int64_t BucketCount(size_t i) const;
  int64_t TotalCount() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Estimated q-quantile (q in [0, 1]) by linear interpolation within
  /// the bucket holding the q*count-th observation. Bucket 0's lower
  /// edge is min(0, bounds[0]); the overflow bucket clamps to
  /// bounds.back() (the estimate cannot exceed the largest bound).
  /// Returns 0 when the histogram is empty.
  double Quantile(double q) const;
  void Reset();

 private:
  std::string name_;
  std::vector<double> bounds_;  // ascending upper bounds
  std::deque<std::atomic<int64_t>> counts_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Process-wide registry of named metrics. Registration takes a mutex;
/// returned pointers are stable for the process lifetime (deque storage),
/// so hot paths register once (static local) and update lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  /// Returns the counter/gauge registered under `name`, creating it on
  /// first use. Re-registration with the same name returns the same
  /// object.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Histogram bucket bounds must be ascending; they are fixed at first
  /// registration (later calls with different bounds get the original).
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  /// Name -> value snapshot of every registered counter (run-report
  /// footers embed this).
  std::map<std::string, int64_t> CounterSnapshot() const;

  /// JSON object with "counters" / "gauges" / "histograms" sections.
  std::string ToJson() const;

  /// ASCII table of every metric (counters and gauges; histograms are
  /// summarized as count/mean).
  Table ToTable() const;

  /// Zeroes every metric value (registrations survive). Test helper.
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, Counter*> counter_index_;
  std::map<std::string, Gauge*> gauge_index_;
  std::map<std::string, Histogram*> histogram_index_;
};

/// Formats a double as a JSON number; non-finite values (which bare JSON
/// cannot represent) become null.
std::string JsonNumber(double v);

/// Escapes a string for embedding in a JSON document (quotes included).
std::string JsonString(const std::string& s);

/// Minimal JSON syntax validator (objects, arrays, strings, numbers,
/// literals; UTF-8 passthrough). Returns true when `text` is one valid
/// JSON value; on failure sets `error` to a short position-stamped
/// message. Shared by tests and tools/json_check.
bool JsonLint(const std::string& text, std::string* error);

}  // namespace graphaug::obs

#endif  // GRAPHAUG_OBS_METRICS_H_
