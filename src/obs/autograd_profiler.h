#ifndef GRAPHAUG_OBS_AUTOGRAD_PROFILER_H_
#define GRAPHAUG_OBS_AUTOGRAD_PROFILER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/table.h"
#include "obs/config.h"

namespace graphaug::obs {

/// Accumulated cost of one autograd op type across the run.
struct OpStats {
  int64_t fwd_calls = 0;
  int64_t bwd_calls = 0;
  int64_t fwd_ns = 0;
  int64_t bwd_ns = 0;
  double flops = 0;  ///< analytic forward-FLOP estimate, summed
  double bytes = 0;  ///< analytic bytes-touched estimate, summed
};

/// Per-op-type forward/backward cost accumulator for the tape autograd.
/// Forward timing comes from ScopedOp instances placed in the primitive
/// ops (autograd/ops.cc); backward timing comes from Tape::Backward,
/// which times each node's backward closure under the op name captured at
/// Emit time. All recording is gated on obs::Enabled() by the callers.
class AutogradProfiler {
 public:
  static AutogradProfiler& Get();

  void RecordForward(const char* op, int64_t ns, double flops, double bytes);
  void RecordBackward(const char* op, int64_t ns);

  /// Copy of the per-op accumulators.
  std::map<std::string, OpStats> Snapshot() const;

  /// JSON object: {"MatMul": {"fwd_calls": ..., ...}, ...}.
  std::string ToJson() const;

  /// ASCII table sorted by total (fwd+bwd) time, descending.
  Table ToTable() const;

  void Reset();

 private:
  AutogradProfiler() = default;

  mutable std::mutex mu_;
  std::map<std::string, OpStats> stats_;
};

/// RAII forward-op scope used by the primitive ops. Publishes the op name
/// to a thread-local slot (read by Tape::Emit to label nodes for backward
/// attribution) and, when obs::Enabled(), times the enclosed forward
/// computation. Scopes nest; the previous name is restored on exit, and
/// only primitive ops (not composites such as BprLoss) install scopes, so
/// forward time is never double-counted.
class ScopedOp {
 public:
  explicit ScopedOp(const char* op, double flops = 0, double bytes = 0);
  ~ScopedOp();

  ScopedOp(const ScopedOp&) = delete;
  ScopedOp& operator=(const ScopedOp&) = delete;

  /// Name installed by the innermost live ScopedOp on this thread, or
  /// nullptr outside any op.
  static const char* Current();

 private:
  const char* op_ = nullptr;
  const char* prev_ = nullptr;
  int64_t start_ns_ = -1;
  double flops_ = 0;
  double bytes_ = 0;
};

}  // namespace graphaug::obs

/// Op-entry macro for autograd primitives:
///   GA_AG_OP("MatMul", flop_estimate, byte_estimate);
/// Compiles to nothing under GRAPHAUG_NO_OBS (arguments unevaluated).
#if GRAPHAUG_OBS_ENABLED
#define GA_AG_OP(name, flops, bytes) \
  ::graphaug::obs::ScopedOp ga_ag_op_scope_(name, flops, bytes)
#else
#define GA_AG_OP(name, flops, bytes) \
  do {                               \
  } while (0)
#endif

#endif  // GRAPHAUG_OBS_AUTOGRAD_PROFILER_H_
