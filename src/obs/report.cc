#include "obs/report.h"

#include <sstream>

#include "obs/metrics.h"

namespace graphaug::obs {
namespace {

void AppendStringMap(std::ostringstream& oss, const char* key,
                     const std::map<std::string, std::string>& m) {
  oss << "," << JsonString(key) << ":{";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) oss << ",";
    first = false;
    oss << JsonString(k) << ":" << JsonString(v);
  }
  oss << "}";
}

}  // namespace

std::string ReportEpochJson(const ReportEpoch& e) {
  std::ostringstream oss;
  oss << "{\"type\":\"epoch\",\"epoch\":" << e.epoch
      << ",\"loss\":" << JsonNumber(e.loss);
  if (!e.loss_components.empty()) {
    oss << ",\"loss_components\":{";
    bool first = true;
    for (const auto& [k, v] : e.loss_components) {
      if (!first) oss << ",";
      first = false;
      oss << JsonString(k) << ":" << JsonNumber(v);
    }
    oss << "}";
  }
  oss << ",\"grad_norm\":" << JsonNumber(e.grad_norm)
      << ",\"param_norm\":" << JsonNumber(e.param_norm)
      << ",\"nonfinite\":" << e.nonfinite
      << ",\"epoch_seconds\":" << JsonNumber(e.epoch_seconds)
      << ",\"elapsed_seconds\":" << JsonNumber(e.elapsed_seconds);
  if (e.evaluated) {
    oss << ",\"recall20\":" << JsonNumber(e.recall20)
        << ",\"ndcg20\":" << JsonNumber(e.ndcg20);
  }
  oss << ",\"live_bytes\":" << e.live_bytes
      << ",\"peak_bytes\":" << e.peak_bytes
      << ",\"rss_bytes\":" << e.rss_bytes << "}";
  return oss.str();
}

std::string ReportFooterJson(const ReportFooter& f) {
  std::ostringstream oss;
  oss << "{\"type\":\"footer\"";
  AppendStringMap(oss, "env", f.env);
  AppendStringMap(oss, "config", f.config);
  oss << ",\"metrics\":{";
  bool first = true;
  for (const auto& [k, v] : f.metrics) {
    if (!first) oss << ",";
    first = false;
    oss << JsonString(k) << ":" << JsonNumber(v);
  }
  oss << "},\"best_epoch\":" << f.best_epoch
      << ",\"train_seconds\":" << JsonNumber(f.train_seconds)
      << ",\"peak_bytes\":" << f.peak_bytes
      << ",\"rss_peak_bytes\":" << f.rss_peak_bytes << ",\"counters\":{";
  first = true;
  for (const auto& [k, v] : f.counters) {
    if (!first) oss << ",";
    first = false;
    oss << JsonString(k) << ":" << v;
  }
  oss << "}}";
  return oss.str();
}

RunReportWriter::~RunReportWriter() { Close(); }

bool RunReportWriter::Open(const std::string& path) {
  Close();
  f_ = std::fopen(path.c_str(), "w");
  ok_ = f_ != nullptr;
  path_ = path;
  return ok_;
}

bool RunReportWriter::WriteLine(const std::string& json) {
  if (f_ == nullptr) return false;
  if (std::fputs(json.c_str(), f_) == EOF || std::fputc('\n', f_) == EOF ||
      std::fflush(f_) != 0) {
    ok_ = false;
  }
  return ok_;
}

bool RunReportWriter::WriteEpoch(const ReportEpoch& e) {
  return WriteLine(ReportEpochJson(e));
}

bool RunReportWriter::WriteFooter(const ReportFooter& f) {
  return WriteLine(ReportFooterJson(f));
}

bool RunReportWriter::Close() {
  if (f_ != nullptr) {
    if (std::fclose(f_) != 0) ok_ = false;
    f_ = nullptr;
  }
  return ok_;
}

}  // namespace graphaug::obs
