#ifndef GRAPHAUG_OBS_PERF_COUNTERS_H_
#define GRAPHAUG_OBS_PERF_COUNTERS_H_

/// Hardware performance counters via perf_event_open. One counter group
/// (cycles leader + instructions, cache-references, cache-misses,
/// branch-misses) is opened per thread and multiplex-scaled on read, so
/// IPC and miss rates can sit next to GFLOP/s in bench output and be
/// accumulated per named region during training.
///
/// Graceful degradation is the contract: the first Begin() probes the
/// kernel once; in containers/CI where perf_event_open is denied
/// (EACCES/EPERM under seccomp, or perf_event_paranoid too high) the
/// subsystem silently marks itself unavailable, every subsequent
/// Begin() is a single relaxed load, and PerfCounts.valid stays false —
/// callers emit their perf columns only when valid. Non-Linux builds
/// compile the same API with the stub behavior.
///
/// Counts cover the calling thread only (group reads are incompatible
/// with inherited child counting), so attach regions to serial phases or
/// the threads=1 bench rows — exactly where microarchitectural analysis
/// is meaningful.

#include <cstdint>
#include <map>
#include <string>

#include "obs/config.h"

namespace graphaug::obs {

/// Multiplex-scaled counter totals for one measured region.
struct PerfCounts {
  bool valid = false;  ///< false: perf unavailable or the group failed
  int64_t cycles = 0;
  int64_t instructions = 0;
  int64_t cache_references = 0;
  int64_t cache_misses = 0;
  int64_t branch_misses = 0;
  /// time_running / time_enabled of the group: 1.0 means the counters
  /// were scheduled the whole time; < 1.0 means multiplexed estimates.
  double running_fraction = 0;

  double Ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
  double CacheMissRate() const {
    return cache_references > 0 ? static_cast<double>(cache_misses) /
                                      static_cast<double>(cache_references)
                                : 0.0;
  }

  /// Element-wise accumulation (valid if both sides were).
  PerfCounts& operator+=(const PerfCounts& o);
};

/// True once a probe has succeeded; false after a failed probe. The
/// first PerfCounterGroup::Begin() performs the probe.
bool PerfCountersAvailable();

/// True after a probe has failed (distinct from "never probed"), so
/// reports can say "unavailable" only when that was actually observed.
bool PerfCountersProbeFailed();

/// One per-thread counter group. Begin() resets and enables the
/// counters; End() disables and reads them. Reusable across
/// Begin/End cycles; the fds live until destruction.
class PerfCounterGroup {
 public:
  PerfCounterGroup() = default;
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// Opens (first call), resets, and enables the group. Returns false —
  /// cheaply, after the first failed probe — when perf is unavailable.
  bool Begin();

  /// Disables the group and returns the scaled counts since Begin().
  /// Returns an invalid PerfCounts when Begin() failed.
  PerfCounts End();

 private:
  bool opened_ = false;
  bool open_failed_ = false;
  int fds_[5] = {-1, -1, -1, -1, -1};
};

/// Accumulated perf totals per named region (ScopedPerfRegion below),
/// e.g. {"epoch": {...}, "eval": {...}}.
std::map<std::string, PerfCounts> PerfRegionSnapshot();

/// Clears the per-region accumulator (part of obs::ResetAll).
void ResetPerfRegions();

/// JSON object: {"available": bool, "regions": {name: {"cycles": ...,
/// "ipc": ..., "cache_miss_rate": ...}, ...}}.
std::string PerfJson();

/// RAII region: accumulates this thread's counter deltas under `name`
/// (a string literal) into the region table. Cheap no-op when perf is
/// unavailable or instrumentation is off. Regions must not nest on one
/// thread — the inner region would double-count; nesting is ignored
/// (the inner scope records nothing).
class ScopedPerfRegion {
 public:
  explicit ScopedPerfRegion(const char* name);
  ~ScopedPerfRegion();

  ScopedPerfRegion(const ScopedPerfRegion&) = delete;
  ScopedPerfRegion& operator=(const ScopedPerfRegion&) = delete;

 private:
  const char* name_ = nullptr;  ///< non-null only when counting
};

}  // namespace graphaug::obs

/// Scoped perf-counter region macro, compiled out under GRAPHAUG_NO_OBS:
///   GA_PERF_REGION("epoch");
#if GRAPHAUG_OBS_ENABLED
#define GA_PERF_REGION_CONCAT2(a, b) a##b
#define GA_PERF_REGION_CONCAT(a, b) GA_PERF_REGION_CONCAT2(a, b)
#define GA_PERF_REGION(name)                    \
  ::graphaug::obs::ScopedPerfRegion GA_PERF_REGION_CONCAT(ga_perf_region_, \
                                                          __LINE__)(name)
#else
#define GA_PERF_REGION(name) \
  do {                       \
  } while (0)
#endif

#endif  // GRAPHAUG_OBS_PERF_COUNTERS_H_
