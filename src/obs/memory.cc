#include "obs/memory.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>

#if defined(__linux__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__linux__)
#include <unistd.h>
#endif

#include "obs/autograd_profiler.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace graphaug::obs {
namespace {

std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};
std::atomic<int64_t> g_total_bytes{0};
std::atomic<int64_t> g_alloc_count{0};
std::atomic<int64_t> g_free_count{0};

struct TagTable {
  std::mutex mu;
  std::map<std::string, MemoryTagStats> tags;
};

TagTable& GetTagTable() {
  static TagTable* t = new TagTable();
  return *t;
}

#if GRAPHAUG_OBS_ENABLED
/// Innermost attribution label on this thread: autograd op first (finer
/// grained during training), then the enclosing trace span.
const char* CurrentTag() {
  if (const char* op = ScopedOp::Current()) return op;
  if (const char* span = CurrentTraceSpanName()) return span;
  return "(untagged)";
}
#endif

}  // namespace

#if GRAPHAUG_OBS_ENABLED
void RecordAlloc(size_t bytes) {
  const int64_t b = static_cast<int64_t>(bytes);
  const int64_t live = g_live_bytes.fetch_add(b, std::memory_order_relaxed) + b;
  g_total_bytes.fetch_add(b, std::memory_order_relaxed);
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
  if (Enabled()) {
    TagTable& table = GetTagTable();
    std::lock_guard<std::mutex> lock(table.mu);
    MemoryTagStats& s = table.tags[CurrentTag()];
    s.bytes += b;
    s.count += 1;
  }
}

void RecordFree(size_t bytes) {
  g_live_bytes.fetch_sub(static_cast<int64_t>(bytes),
                         std::memory_order_relaxed);
  g_free_count.fetch_add(1, std::memory_order_relaxed);
}
#endif

int64_t LiveBytes() { return g_live_bytes.load(std::memory_order_relaxed); }
int64_t PeakBytes() { return g_peak_bytes.load(std::memory_order_relaxed); }
int64_t TotalAllocBytes() {
  return g_total_bytes.load(std::memory_order_relaxed);
}
int64_t AllocCount() { return g_alloc_count.load(std::memory_order_relaxed); }
int64_t FreeCount() { return g_free_count.load(std::memory_order_relaxed); }

void ResetPeakBytes() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

std::map<std::string, MemoryTagStats> MemoryTagSnapshot() {
  TagTable& table = GetTagTable();
  std::lock_guard<std::mutex> lock(table.mu);
  return table.tags;
}

void ResetMemoryStats() {
  {
    TagTable& table = GetTagTable();
    std::lock_guard<std::mutex> lock(table.mu);
    table.tags.clear();
  }
  g_total_bytes.store(0, std::memory_order_relaxed);
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_free_count.store(0, std::memory_order_relaxed);
  ResetPeakBytes();
}

int64_t CurrentRssBytes() {
#if defined(__linux__)
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long total = 0, resident = 0;
  const int n = std::fscanf(f, "%lld %lld", &total, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<int64_t>(resident) * sysconf(_SC_PAGESIZE);
#else
  return 0;
#endif
}

int64_t PeakRssBytes() {
#if defined(__linux__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<int64_t>(ru.ru_maxrss) * 1024;  // ru_maxrss is in KiB
#elif defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<int64_t>(ru.ru_maxrss);  // already bytes on macOS
#else
  return 0;
#endif
}

// ------------------------------------------------------------ RssSampler

namespace {

struct SamplerState {
  std::mutex mu;
  std::condition_variable cv;
  std::thread thread;
  bool stop = false;
  bool running = false;
  std::atomic<int64_t> peak{0};
  std::atomic<int64_t> samples{0};
};

SamplerState& GetSamplerState() {
  static SamplerState* s = new SamplerState();
  return *s;
}

}  // namespace

RssSampler& RssSampler::Get() {
  static RssSampler* sampler = new RssSampler();
  return *sampler;
}

void RssSampler::Start(int period_ms) {
  SamplerState& s = GetSamplerState();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.running) return;
  s.stop = false;
  s.running = true;
  s.thread = std::thread([&s, period_ms] {
    std::unique_lock<std::mutex> lock(s.mu);
    while (!s.stop) {
      lock.unlock();
      const int64_t rss = CurrentRssBytes();
      int64_t peak = s.peak.load(std::memory_order_relaxed);
      while (rss > peak && !s.peak.compare_exchange_weak(
                               peak, rss, std::memory_order_relaxed)) {
      }
      s.samples.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
      s.cv.wait_for(lock, std::chrono::milliseconds(period_ms),
                    [&s] { return s.stop; });
    }
  });
}

void RssSampler::Stop() {
  SamplerState& s = GetSamplerState();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.running) return;
    s.stop = true;
  }
  s.cv.notify_all();
  s.thread.join();
  std::lock_guard<std::mutex> lock(s.mu);
  s.running = false;
}

bool RssSampler::running() const {
  SamplerState& s = GetSamplerState();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.running;
}

int64_t RssSampler::SampledPeakBytes() const {
  return GetSamplerState().peak.load(std::memory_order_relaxed);
}

int64_t RssSampler::SampleCount() const {
  return GetSamplerState().samples.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------- export

std::string MemoryJson() {
  std::ostringstream os;
  os << "{\"live_bytes\": " << LiveBytes()
     << ", \"peak_bytes\": " << PeakBytes()
     << ", \"total_alloc_bytes\": " << TotalAllocBytes()
     << ", \"alloc_count\": " << AllocCount()
     << ", \"free_count\": " << FreeCount()
     << ", \"rss_bytes\": " << CurrentRssBytes()
     << ", \"rss_peak_bytes\": " << PeakRssBytes()
     << ", \"rss_sampled_peak_bytes\": "
     << RssSampler::Get().SampledPeakBytes() << ", \"tags\": {";
  bool first = true;
  for (const auto& [tag, s] : MemoryTagSnapshot()) {
    os << (first ? "" : ", ") << JsonString(tag) << ": {\"bytes\": " << s.bytes
       << ", \"count\": " << s.count << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

}  // namespace graphaug::obs
