#include "obs/autograd_profiler.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace graphaug::obs {
namespace {

thread_local const char* t_current_op = nullptr;

}  // namespace

AutogradProfiler& AutogradProfiler::Get() {
  static AutogradProfiler* profiler = new AutogradProfiler();
  return *profiler;
}

void AutogradProfiler::RecordForward(const char* op, int64_t ns, double flops,
                                     double bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  OpStats& s = stats_[op];
  ++s.fwd_calls;
  s.fwd_ns += ns;
  s.flops += flops;
  s.bytes += bytes;
}

void AutogradProfiler::RecordBackward(const char* op, int64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  OpStats& s = stats_[op];
  ++s.bwd_calls;
  s.bwd_ns += ns;
}

std::map<std::string, OpStats> AutogradProfiler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string AutogradProfiler::ToJson() const {
  const std::map<std::string, OpStats> snap = Snapshot();
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [op, s] : snap) {
    os << (first ? "\n" : ",\n") << "    " << JsonString(op) << ": {"
       << "\"fwd_calls\": " << s.fwd_calls
       << ", \"bwd_calls\": " << s.bwd_calls << ", \"fwd_ms\": "
       << JsonNumber(static_cast<double>(s.fwd_ns) / 1e6) << ", \"bwd_ms\": "
       << JsonNumber(static_cast<double>(s.bwd_ns) / 1e6)
       << ", \"flops\": " << JsonNumber(s.flops)
       << ", \"bytes\": " << JsonNumber(s.bytes) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}";
  return os.str();
}

Table AutogradProfiler::ToTable() const {
  const std::map<std::string, OpStats> snap = Snapshot();
  std::vector<std::pair<std::string, OpStats>> rows(snap.begin(), snap.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.fwd_ns + a.second.bwd_ns >
           b.second.fwd_ns + b.second.bwd_ns;
  });
  Table t({"Op", "calls", "fwd ms", "bwd ms", "GFLOP", "MB touched"});
  for (const auto& [op, s] : rows) {
    t.AddRow({op, std::to_string(s.fwd_calls),
              FormatDouble(static_cast<double>(s.fwd_ns) / 1e6, 2),
              FormatDouble(static_cast<double>(s.bwd_ns) / 1e6, 2),
              FormatDouble(s.flops / 1e9, 3),
              FormatDouble(s.bytes / (1024.0 * 1024.0), 1)});
  }
  return t;
}

void AutogradProfiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
}

ScopedOp::ScopedOp(const char* op, double flops, double bytes)
    : op_(op), prev_(t_current_op), flops_(flops), bytes_(bytes) {
  t_current_op = op_;
  if (Enabled()) start_ns_ = TraceClockNs();
}

ScopedOp::~ScopedOp() {
  t_current_op = prev_;
  if (start_ns_ >= 0) {
    AutogradProfiler::Get().RecordForward(op_, TraceClockNs() - start_ns_,
                                          flops_, bytes_);
  }
}

const char* ScopedOp::Current() { return t_current_op; }

}  // namespace graphaug::obs
