#ifndef GRAPHAUG_OBS_MEMORY_H_
#define GRAPHAUG_OBS_MEMORY_H_

/// Byte-level memory accounting for the tensor allocation path, plus a
/// process-RSS view. Three layers:
///
///  * Global accounting (always on in instrumented builds): every Matrix
///    buffer allocation/release updates live bytes, the high-water mark,
///    and allocation counters via relaxed atomics — a handful of atomic
///    ops per *tensor* (never per element), so the cost is far below the
///    bench noise floor. This is the acceptance instrument for "flat
///    memory" claims: live bytes must return to baseline when a scope's
///    tensors die, and PeakBytes() bounds the working set.
///  * Tag attribution (gated on obs::Enabled()): allocations are charged
///    to the innermost autograd op (obs::ScopedOp) or trace span on the
///    calling thread, so the per-op table shows who allocates.
///  * Process RSS (os-level truth): CurrentRssBytes/PeakRssBytes read
///    /proc + getrusage, and RssSampler polls RSS on a background thread
///    so short-lived spikes between epoch boundaries are still seen.
///
/// Under GRAPHAUG_NO_OBS the RecordAlloc/RecordFree hooks are empty
/// inlines, so TrackedFloatVec compiles to the exact std::vector<float>
/// code and every query returns zero. Accounting only observes sizes —
/// it never touches tensor contents — so it is bitwise-transparent to
/// training by construction (asserted in tests/obs_test.cc).

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/config.h"

namespace graphaug::obs {

#if GRAPHAUG_OBS_ENABLED
/// Charges `bytes` to the global accounting (and, when obs::Enabled(),
/// to the calling thread's innermost op/span tag).
void RecordAlloc(size_t bytes);
/// Releases `bytes` from the live count.
void RecordFree(size_t bytes);
#else
inline void RecordAlloc(size_t) {}
inline void RecordFree(size_t) {}
#endif

/// Bytes currently held by tracked tensor buffers.
int64_t LiveBytes();
/// High-water mark of LiveBytes() since process start or ResetPeakBytes.
int64_t PeakBytes();
/// Total bytes ever allocated (monotonic).
int64_t TotalAllocBytes();
/// Number of tracked allocations / releases (monotonic).
int64_t AllocCount();
int64_t FreeCount();

/// Re-arms the high-water mark at the current live level, so a phase can
/// measure its own peak: ResetPeakBytes(); <work>; PeakBytes().
void ResetPeakBytes();

/// Accumulated allocation volume charged to one op/span tag.
struct MemoryTagStats {
  int64_t bytes = 0;
  int64_t count = 0;
};

/// Snapshot of the per-tag attribution table (tag -> bytes/count).
/// Allocations outside any op/span are charged to "(untagged)". Only
/// populated while obs::Enabled().
std::map<std::string, MemoryTagStats> MemoryTagSnapshot();

/// Clears the attribution table and the monotonic counters, and re-arms
/// the peak at the current live level. Live bytes are left untouched —
/// they describe real outstanding buffers. Test helper (part of
/// obs::ResetAll).
void ResetMemoryStats();

/// Current process resident set in bytes (/proc/self/statm), or 0 when
/// unavailable (non-Linux).
int64_t CurrentRssBytes();
/// Lifetime peak RSS in bytes (getrusage ru_maxrss), or 0.
int64_t PeakRssBytes();

/// Background RSS poller: samples CurrentRssBytes() every `period_ms`
/// and tracks the max, catching spikes between epoch boundaries. The
/// sampling thread only reads /proc — it cannot perturb training.
class RssSampler {
 public:
  static RssSampler& Get();

  /// Starts the sampling thread (no-op if already running).
  void Start(int period_ms = 50);
  /// Stops and joins the thread (no-op if not running).
  void Stop();
  bool running() const;

  /// Max sampled RSS since Start (0 before the first sample).
  int64_t SampledPeakBytes() const;
  int64_t SampleCount() const;

 private:
  RssSampler() = default;
};

/// JSON object with the global accounting, RSS view, and tag table:
///   {"live_bytes": ..., "peak_bytes": ..., ..., "tags": {...}}
std::string MemoryJson();

/// Minimal-overhead tracking allocator: std::allocator<T> plus the
/// RecordAlloc/RecordFree hooks. Stateless, so containers using it are
/// layout- and behavior-identical to std::allocator ones.
template <typename T>
struct TrackingAllocator {
  using value_type = T;

  TrackingAllocator() = default;
  template <typename U>
  TrackingAllocator(const TrackingAllocator<U>&) {}  // NOLINT

  T* allocate(size_t n) {
    RecordAlloc(n * sizeof(T));
    return std::allocator<T>().allocate(n);
  }
  void deallocate(T* p, size_t n) {
    RecordFree(n * sizeof(T));
    std::allocator<T>().deallocate(p, n);
  }
};

template <typename T, typename U>
bool operator==(const TrackingAllocator<T>&, const TrackingAllocator<U>&) {
  return true;
}
template <typename T, typename U>
bool operator!=(const TrackingAllocator<T>&, const TrackingAllocator<U>&) {
  return false;
}

/// The storage type used by Matrix: a float vector whose buffer is
/// visible to the memory accounting above.
using TrackedFloatVec = std::vector<float, TrackingAllocator<float>>;

}  // namespace graphaug::obs

#endif  // GRAPHAUG_OBS_MEMORY_H_
