#ifndef GRAPHAUG_OBS_HEALTH_H_
#define GRAPHAUG_OBS_HEALTH_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/config.h"

namespace graphaug::obs {

/// Numerical-health snapshot of one training epoch.
struct EpochHealth {
  int epoch = 0;
  double loss = 0;        ///< mean batch loss
  double grad_norm = 0;   ///< mean per-batch global gradient L2 norm
  double param_norm = 0;  ///< parameter L2 norm at epoch end
  int64_t nonfinite_grads = 0;   ///< NaN/Inf gradient entries this epoch
  int64_t nonfinite_losses = 0;  ///< batches with a NaN/Inf loss
  /// Mean per-batch value of each loss component (weighted contribution
  /// to the total objective), e.g. "bpr" / "gib_pred" / "gib_kl" /
  /// "contrastive".
  std::map<std::string, double> loss_components;
};

/// Accumulates per-batch health signals and folds them into per-epoch
/// records. Batch recording is called from the training loop (gated on
/// obs::Enabled() there); EndEpoch snapshots the running means and
/// appends to the history. Thread-safe; recording never mutates model
/// state, so enabling it cannot change training results.
class HealthTracker {
 public:
  static HealthTracker& Get();

  /// Adds one batch's (weighted) loss-component value.
  void RecordLossComponent(const char* name, double value);

  /// Adds one batch's global squared gradient norm over all trainable
  /// parameters, plus the count of non-finite gradient entries found.
  void RecordBatchGrad(double squared_norm, int64_t nonfinite_entries);

  /// Flags a batch whose scalar loss was NaN/Inf.
  void RecordNonFiniteLoss(double value);

  /// Closes the epoch: averages the per-batch accumulators, stores the
  /// record, and resets the batch state. Returns the stored record.
  EpochHealth EndEpoch(int epoch, double param_norm, double mean_loss);

  std::vector<EpochHealth> History() const;

  /// Total non-finite gradient entries / losses seen since Reset (also
  /// mirrored into the "health.nonfinite_*" counters).
  int64_t TotalNonFinite() const;

  /// JSON array of epoch records.
  std::string ToJson() const;

  /// ASCII table of the epoch history.
  Table ToTable() const;

  void Reset();

 private:
  HealthTracker() = default;

  mutable std::mutex mu_;
  std::vector<EpochHealth> history_;
  // Per-batch accumulators for the in-flight epoch.
  std::map<std::string, std::pair<double, int64_t>> component_sums_;
  double grad_norm_sum_ = 0;
  int64_t grad_batches_ = 0;
  int64_t nonfinite_grads_ = 0;
  int64_t nonfinite_losses_ = 0;
};

/// Number of NaN/Inf entries in [p, p + n). Plain scan; callers gate on
/// obs::Enabled().
int64_t NonFiniteCount(const float* p, int64_t n);

}  // namespace graphaug::obs

#endif  // GRAPHAUG_OBS_HEALTH_H_
