#include "obs/perf_counters.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <sstream>

#include "obs/metrics.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace graphaug::obs {

PerfCounts& PerfCounts::operator+=(const PerfCounts& o) {
  valid = valid && o.valid;
  cycles += o.cycles;
  instructions += o.instructions;
  cache_references += o.cache_references;
  cache_misses += o.cache_misses;
  branch_misses += o.branch_misses;
  // Duration-weighting needs per-region times we don't keep; the min is
  // a conservative summary of how multiplexed the estimates are.
  running_fraction = running_fraction > 0
                         ? std::min(running_fraction, o.running_fraction)
                         : o.running_fraction;
  return *this;
}

namespace {

/// Probe state: 0 = unknown, 1 = available, 2 = unavailable. Set once by
/// the first open attempt; later Begin() calls pay one relaxed load.
std::atomic<int> g_probe_state{0};

struct RegionTable {
  std::mutex mu;
  std::map<std::string, PerfCounts> regions;
};

RegionTable& GetRegionTable() {
  static RegionTable* t = new RegionTable();
  return *t;
}

#if defined(__linux__)

/// The five events, group order == read order. Leader is cycles.
constexpr uint64_t kEventConfigs[5] = {
    PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES};

int PerfOpen(uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}

#endif  // __linux__

}  // namespace

bool PerfCountersAvailable() {
  return g_probe_state.load(std::memory_order_relaxed) == 1;
}

bool PerfCountersProbeFailed() {
  return g_probe_state.load(std::memory_order_relaxed) == 2;
}

PerfCounterGroup::~PerfCounterGroup() {
#if defined(__linux__)
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
#endif
}

bool PerfCounterGroup::Begin() {
#if defined(__linux__)
  if (open_failed_ ||
      g_probe_state.load(std::memory_order_relaxed) == 2) {
    return false;
  }
  if (!opened_) {
    for (size_t i = 0; i < 5; ++i) {
      fds_[i] = PerfOpen(kEventConfigs[i], i == 0 ? -1 : fds_[0]);
      if (fds_[i] < 0) {
        // All-or-nothing: a partial group (e.g. cache events missing on
        // some VMs) would silently skew the derived rates.
        for (size_t j = 0; j < i; ++j) {
          close(fds_[j]);
          fds_[j] = -1;
        }
        open_failed_ = true;
        g_probe_state.store(2, std::memory_order_relaxed);
        return false;
      }
    }
    opened_ = true;
    g_probe_state.store(1, std::memory_order_relaxed);
  }
  ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  return true;
#else
  g_probe_state.store(2, std::memory_order_relaxed);
  return false;
#endif
}

PerfCounts PerfCounterGroup::End() {
  PerfCounts out;
#if defined(__linux__)
  if (!opened_) return out;
  ioctl(fds_[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  // PERF_FORMAT_GROUP read layout:
  //   u64 nr; u64 time_enabled; u64 time_running; u64 values[nr];
  uint64_t buf[3 + 5] = {0};
  const ssize_t n = read(fds_[0], buf, sizeof(buf));
  if (n < static_cast<ssize_t>(sizeof(buf)) || buf[0] != 5) return out;
  const uint64_t enabled = buf[1], running = buf[2];
  if (running == 0) return out;  // never scheduled: no estimate possible
  const double scale =
      static_cast<double>(enabled) / static_cast<double>(running);
  auto scaled = [scale](uint64_t v) {
    return static_cast<int64_t>(static_cast<double>(v) * scale);
  };
  out.cycles = scaled(buf[3]);
  out.instructions = scaled(buf[4]);
  out.cache_references = scaled(buf[5]);
  out.cache_misses = scaled(buf[6]);
  out.branch_misses = scaled(buf[7]);
  out.running_fraction =
      static_cast<double>(running) / static_cast<double>(enabled);
  out.valid = true;
#endif
  return out;
}

// ------------------------------------------------------- region tracking

namespace {

#if GRAPHAUG_OBS_ENABLED
/// Per-thread reusable group for ScopedPerfRegion, plus a depth guard so
/// nested regions don't double-count.
thread_local PerfCounterGroup t_region_group;
thread_local bool t_region_active = false;
#endif

}  // namespace

ScopedPerfRegion::ScopedPerfRegion(const char* name) {
#if GRAPHAUG_OBS_ENABLED
  if (!Enabled() || t_region_active) return;
  if (!t_region_group.Begin()) return;
  t_region_active = true;
  name_ = name;
#else
  (void)name;
#endif
}

ScopedPerfRegion::~ScopedPerfRegion() {
#if GRAPHAUG_OBS_ENABLED
  if (name_ == nullptr) return;
  const PerfCounts counts = t_region_group.End();
  t_region_active = false;
  if (!counts.valid) return;
  RegionTable& table = GetRegionTable();
  std::lock_guard<std::mutex> lock(table.mu);
  auto it = table.regions.find(name_);
  if (it == table.regions.end()) {
    table.regions.emplace(name_, counts);
  } else {
    it->second += counts;
  }
#endif
}

std::map<std::string, PerfCounts> PerfRegionSnapshot() {
  RegionTable& table = GetRegionTable();
  std::lock_guard<std::mutex> lock(table.mu);
  return table.regions;
}

void ResetPerfRegions() {
  RegionTable& table = GetRegionTable();
  std::lock_guard<std::mutex> lock(table.mu);
  table.regions.clear();
}

std::string PerfJson() {
  std::ostringstream os;
  os << "{\"available\": "
     << (PerfCountersAvailable() ? "true" : "false") << ", \"regions\": {";
  bool first = true;
  for (const auto& [name, c] : PerfRegionSnapshot()) {
    os << (first ? "" : ", ") << JsonString(name)
       << ": {\"cycles\": " << c.cycles
       << ", \"instructions\": " << c.instructions
       << ", \"cache_references\": " << c.cache_references
       << ", \"cache_misses\": " << c.cache_misses
       << ", \"branch_misses\": " << c.branch_misses
       << ", \"ipc\": " << JsonNumber(c.Ipc())
       << ", \"cache_miss_rate\": " << JsonNumber(c.CacheMissRate())
       << ", \"running_fraction\": " << JsonNumber(c.running_fraction)
       << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

}  // namespace graphaug::obs
