#ifndef GRAPHAUG_OBS_OBS_H_
#define GRAPHAUG_OBS_OBS_H_

/// Umbrella header for the instrumentation layer. Pulls in every obs
/// component and declares the combined exports the CLI flags map to:
///
///   --metrics-out  -> WriteMetricsJson   (registry + autograd ops +
///                                         epoch health + parallel stats)
///   --trace-out    -> WriteChromeTrace   (obs/trace.h)
///   --obs-report   -> AsciiReport        (printed to stdout)
///   --profile-out  -> WriteProfileFolded + WriteProfileJson
///                                        (obs/profiler.h, sampling
///                                         profiler at --profile-hz)
///
/// Gating matrix:
///   compile time  GRAPHAUG_NO_OBS        macros vanish, Enabled() is
///                                        constexpr false
///   runtime       obs::SetEnabled(true)  master switch (profiler +
///                                        health + parallel timing)
///   runtime       obs::SetTraceEnabled   span recording, independent so
///                                        metrics can run without the
///                                        trace buffers filling

#include <string>

#include "obs/autograd_profiler.h"
#include "obs/config.h"
#include "obs/health.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/profiler.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace graphaug::obs {

/// Combined JSON document:
///   {"metrics": {...}, "autograd_ops": {...}, "epochs": [...],
///    "parallel": {...}, "memory": {...}, "perf": {...}}
/// Refreshes the parallel-utilization gauges before serializing.
std::string MetricsJson();

/// Writes MetricsJson() to `path`; false on I/O failure.
bool WriteMetricsJson(const std::string& path);

/// Human-readable report (autograd op table, epoch health table, metric
/// table, parallel summary) for --obs-report.
std::string AsciiReport();

/// Resets every accumulator: metrics registry, autograd profiler, health
/// tracker, trace buffers, parallel stats, sampling profiler. Test
/// helper.
void ResetAll();

}  // namespace graphaug::obs

#endif  // GRAPHAUG_OBS_OBS_H_
