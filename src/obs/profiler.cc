#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/parallel.h"
#include "obs/autograd_profiler.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// The sampling implementation needs POSIX per-thread timers, SIGPROF
// delivery to a chosen tid, and glibc's backtrace(). Everywhere else
// (and under GRAPHAUG_NO_OBS) the public API compiles to inert stubs.
#if GRAPHAUG_OBS_ENABLED && defined(__linux__) && defined(__GLIBC__)
#define GRAPHAUG_PROFILER_IMPL 1
#else
#define GRAPHAUG_PROFILER_IMPL 0
#endif

#if GRAPHAUG_PROFILER_IMPL
#include <cxxabi.h>
#include <dlfcn.h>
#include <elf.h>
#include <execinfo.h>
#include <fstream>
#include <link.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

// Pre-2.35 glibc spells the sigevent target-thread field only through
// the internal union; newer glibc provides the POSIX-next macro.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#endif  // GRAPHAUG_PROFILER_IMPL

namespace graphaug::obs {

#if GRAPHAUG_PROFILER_IMPL

namespace {

/// Deepest stack the handler stores. Frames below the cutoff (closest to
/// main) are discarded; the leaf side is always kept.
constexpr int kMaxDepth = 40;
/// Frames the handler discards from the raw capture: the handler itself
/// and the kernel signal trampoline (__restore_rt).
constexpr int kSkipFrames = 2;
/// Per-thread open-addressed stack table (power of two). Distinct
/// (stack, tag) keys per thread rarely exceed a few hundred; overflow is
/// counted as lost, never blocks.
constexpr size_t kTableSlots = size_t{1} << 11;
constexpr int kMaxProbes = 32;

/// One aggregated (stack, tag) key. A slot is claimed by the owning
/// thread's signal handler: payload first, then a release-store of
/// `hash` publishes it to export-time readers. Only the owning thread
/// ever writes (SIGPROF is blocked while its handler runs, so handler
/// invocations never nest).
struct SampleSlot {
  std::atomic<uint64_t> hash{0};  // 0 = empty
  std::atomic<int64_t> count{0};
  const char* tag = nullptr;    // literal span/op name, may be null
  int depth = 0;                // stored frames, leaf first
  void* pcs[kMaxDepth];
};

/// Per-thread profiling state. Registered threads keep one for the
/// process lifetime (shared_ptr in the registry) so samples survive pool
/// teardown; the slot table is only allocated once a timer is armed, so
/// enrolled-but-never-profiled threads cost a few dozen bytes.
struct ThreadProfile {
  ~ThreadProfile() { delete[] slots.load(std::memory_order_relaxed); }

  pid_t tid = 0;
  pthread_t self{};
  timer_t timer{};
  bool timer_armed = false;  // guarded by the registry mutex
  bool dead = false;         // thread exited; never re-arm
  std::atomic<SampleSlot*> slots{nullptr};  // [kTableSlots] once armed
  std::atomic<int64_t> samples{0};
  std::atomic<int64_t> lost{0};
};

struct ProfilerRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadProfile>> threads;
  bool handler_installed = false;
};

ProfilerRegistry& GetRegistry() {
  static ProfilerRegistry* r = new ProfilerRegistry();
  return *r;
}

std::atomic<bool> g_running{false};
std::atomic<bool> g_available{false};
std::atomic<bool> g_probe_failed{false};
std::atomic<int> g_hz{0};

/// Handler-visible pointer to this thread's state. thread_local in the
/// main executable resolves via the static TLS block, which glibc
/// allocates at thread creation — reading it in a signal handler is
/// safe once EnrollCurrentThread has touched it.
thread_local ThreadProfile* t_profile = nullptr;

/// Span/op tag inherited from the thread that dispatched the current
/// parallel region (pool workers run kernel chunks outside the
/// dispatcher's TraceSpan scope, so the tag is forwarded explicitly).
thread_local const char* t_inherited_tag = nullptr;

void ProfilerSignalHandler(int /*signo*/, siginfo_t* /*info*/,
                           void* /*ucontext*/) {
  // Async-signal-safe: own-thread TLS reads, backtrace() (pre-warmed at
  // StartProfiler), fixed-size table writes. errno is preserved because
  // the interrupted code may be between a syscall and its errno check.
  const int saved_errno = errno;
  ThreadProfile* tp = t_profile;
  SampleSlot* slots =
      tp != nullptr ? tp->slots.load(std::memory_order_acquire) : nullptr;
  if (slots != nullptr && g_running.load(std::memory_order_relaxed)) {
    void* frames[kMaxDepth + kSkipFrames + 2];
    const int captured = backtrace(frames, kMaxDepth + kSkipFrames);
    const int depth =
        captured > kSkipFrames
            ? (captured - kSkipFrames < kMaxDepth ? captured - kSkipFrames
                                                  : kMaxDepth)
            : 0;
    const char* tag = ScopedOp::Current();
    if (tag == nullptr) tag = CurrentTraceSpanName();
    if (tag == nullptr) tag = t_inherited_tag;

    uint64_t h = 1469598103934665603ULL;  // FNV-1a over (pcs..., tag)
    for (int i = 0; i < depth; ++i) {
      h ^= reinterpret_cast<uint64_t>(frames[kSkipFrames + i]);
      h *= 1099511628211ULL;
    }
    h ^= reinterpret_cast<uint64_t>(tag);
    h *= 1099511628211ULL;
    if (h == 0) h = 1;

    bool stored = false;
    size_t idx = static_cast<size_t>(h) & (kTableSlots - 1);
    for (int probe = 0; probe < kMaxProbes; ++probe) {
      SampleSlot& slot = slots[idx];
      const uint64_t cur = slot.hash.load(std::memory_order_acquire);
      if (cur == h) {
        slot.count.fetch_add(1, std::memory_order_relaxed);
        stored = true;
        break;
      }
      if (cur == 0) {
        slot.tag = tag;
        slot.depth = depth;
        for (int i = 0; i < depth; ++i) slot.pcs[i] = frames[kSkipFrames + i];
        slot.hash.store(h, std::memory_order_release);
        slot.count.fetch_add(1, std::memory_order_relaxed);
        stored = true;
        break;
      }
      idx = (idx + 1) & (kTableSlots - 1);
    }
    if (stored) {
      tp->samples.fetch_add(1, std::memory_order_relaxed);
    } else {
      tp->lost.fetch_add(1, std::memory_order_relaxed);
    }
  }
  errno = saved_errno;
}

/// Arms a CPU-time sample timer targeting `tp`'s thread. Registry mutex
/// must be held. Allocates the slot table on first arm.
bool ArmTimerLocked(ThreadProfile* tp, int hz) {
  if (tp->dead || tp->timer_armed) return tp->timer_armed;
  clockid_t clock;
  if (pthread_getcpuclockid(tp->self, &clock) != 0) return false;
  struct sigevent sev {};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = tp->tid;
  timer_t timer;
  if (timer_create(clock, &sev, &timer) != 0) return false;
  if (tp->slots.load(std::memory_order_relaxed) == nullptr) {
    tp->slots.store(new SampleSlot[kTableSlots], std::memory_order_release);
  }
  const long interval_ns = 1000000000L / hz;
  struct itimerspec spec {};
  spec.it_interval.tv_sec = interval_ns / 1000000000L;
  spec.it_interval.tv_nsec = interval_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  if (timer_settime(timer, 0, &spec, nullptr) != 0) {
    timer_delete(timer);
    return false;
  }
  tp->timer = timer;
  tp->timer_armed = true;
  return true;
}

void DisarmTimerLocked(ThreadProfile* tp) {
  if (!tp->timer_armed) return;
  timer_delete(tp->timer);
  tp->timer_armed = false;
}

void UnenrollThread(ThreadProfile* tp) {
  ProfilerRegistry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (tp->dead) return;
  tp->dead = true;
  DisarmTimerLocked(tp);
}

/// Registers the calling thread with the profiler (idempotent). Called
/// by StartProfiler for its own thread and by every pool worker through
/// the common/parallel thread hooks. If a session is running, the new
/// thread is armed immediately.
void EnrollCurrentThread() {
  struct Holder {
    std::shared_ptr<ThreadProfile> tp;
    ~Holder() {
      if (tp) {
        t_profile = nullptr;
        UnenrollThread(tp.get());
      }
    }
  };
  thread_local Holder holder;
  if (holder.tp) return;
  auto tp = std::make_shared<ThreadProfile>();
  tp->tid = static_cast<pid_t>(syscall(SYS_gettid));
  tp->self = pthread_self();
  holder.tp = tp;
  t_profile = tp.get();
  ProfilerRegistry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.threads.push_back(tp);
  if (g_running.load(std::memory_order_relaxed)) {
    ArmTimerLocked(tp.get(), g_hz.load(std::memory_order_relaxed));
  }
}

void WorkerExitHook() {
  if (t_profile != nullptr) {
    ThreadProfile* tp = t_profile;
    t_profile = nullptr;
    UnenrollThread(tp);
  }
}

// ---- Span/op tag forwarding into pool workers -------------------------

const void* CaptureDispatchTag() {
  const char* tag = ScopedOp::Current();
  if (tag == nullptr) tag = CurrentTraceSpanName();
  if (tag == nullptr) tag = t_inherited_tag;
  return tag;
}

const void* EnterChunkTag(const void* token) {
  const char* prev = t_inherited_tag;
  t_inherited_tag = static_cast<const char*>(token);
  return prev;
}

void ExitChunkTag(const void* prev) {
  t_inherited_tag = static_cast<const char*>(prev);
}

/// Installs the worker lifecycle hooks at static-init time, before any
/// thread pool can be built. profiler.o is always part of the link
/// (obs.cc references ResetProfile), so this runs in every binary.
[[maybe_unused]] const bool g_hooks_installed = [] {
  SetWorkerThreadHooks(&EnrollCurrentThread, &WorkerExitHook);
  return true;
}();

// ---- Stop-time symbolization ------------------------------------------

std::string DemangleName(const char* mangled) {
  int status = 0;
  char* out = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
  if (status == 0 && out != nullptr) {
    std::string s(out);
    free(out);
    return s;
  }
  return mangled;
}

/// Folded-format frames are ';'-separated and newline-terminated, so
/// those characters may not appear inside a frame name.
std::string SanitizeFrameName(std::string s) {
  for (char& c : s) {
    if (c == ';') c = ',';
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  return s;
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Resolves pcs to function names from the loaded modules' own ELF
/// symbol tables (.symtab when present, else .dynsym), with dladdr as a
/// fallback. Parsing .symtab is what attributes file-local symbols —
/// the anonymous-namespace GEMM/SpMM kernels — without -rdynamic.
class Symbolizer {
 public:
  Symbolizer() {
    dl_iterate_phdr(
        [](struct dl_phdr_info* info, size_t, void* self) {
          static_cast<Symbolizer*>(self)->AddModule(info);
          return 0;
        },
        this);
    std::sort(modules_.begin(), modules_.end(),
              [](const Module& a, const Module& b) { return a.lo < b.lo; });
  }

  /// Name for a stored pc. Non-leaf frames hold return addresses, so
  /// they are looked up at pc-1 (the call site), leaves as-is.
  const std::string& Resolve(uintptr_t pc, bool leaf) {
    const uintptr_t lookup = leaf ? pc : pc - 1;
    auto it = cache_.find(lookup);
    if (it != cache_.end()) return it->second;
    return cache_.emplace(lookup, ResolveUncached(lookup)).first->second;
  }

  /// A frame counts as attributed when it resolved to a real symbol
  /// (unresolved frames render as "[unknown...]" / "[module+0x...]").
  static bool Attributed(const std::string& name) {
    return !name.empty() && name[0] != '[';
  }

 private:
  struct Sym {
    uintptr_t addr = 0;  // link-time vaddr; runtime = module base + addr
    uint64_t size = 0;
    uint32_t name_off = 0;
    const std::string* strtab = nullptr;
  };
  struct Module {
    uintptr_t base = 0;  // load bias (0 for non-PIE executables)
    uintptr_t lo = 0, hi = 0;
    std::string path;
    bool parsed = false;
    std::vector<Sym> syms;
    // deque, not vector: Sym::strtab points at elements, and a module
    // typically appends two tables (.symtab and .dynsym) — a vector
    // regrowth would dangle every pointer taken from the first.
    std::deque<std::string> strtabs;
  };

  void AddModule(struct dl_phdr_info* info) {
    Module m;
    m.base = info->dlpi_addr;
    m.path = info->dlpi_name != nullptr && info->dlpi_name[0] != '\0'
                 ? info->dlpi_name
                 : "/proc/self/exe";
    bool any = false;
    for (int i = 0; i < info->dlpi_phnum; ++i) {
      const auto& ph = info->dlpi_phdr[i];
      if (ph.p_type != PT_LOAD) continue;
      const uintptr_t lo = m.base + ph.p_vaddr;
      const uintptr_t hi = lo + ph.p_memsz;
      if (!any || lo < m.lo) m.lo = lo;
      if (!any || hi > m.hi) m.hi = hi;
      any = true;
    }
    if (any) modules_.push_back(std::move(m));
  }

  /// Loads STT_FUNC symbols from the module's file on disk. Every offset
  /// is bounds-checked against the byte buffer; a malformed file just
  /// yields an empty table (dladdr still gets a chance).
  static void ParseModule(Module& m) {
    m.parsed = true;
    std::ifstream f(m.path, std::ios::binary);
    if (!f) return;
    std::vector<char> buf((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
    const size_t n = buf.size();
    if (n < sizeof(Elf64_Ehdr)) return;
    Elf64_Ehdr eh;
    std::memcpy(&eh, buf.data(), sizeof(eh));
    if (std::memcmp(eh.e_ident, ELFMAG, SELFMAG) != 0 ||
        eh.e_ident[EI_CLASS] != ELFCLASS64) {
      return;
    }
    if (eh.e_shentsize != sizeof(Elf64_Shdr) || eh.e_shoff >= n ||
        eh.e_shnum > (n - eh.e_shoff) / sizeof(Elf64_Shdr)) {
      return;
    }
    std::vector<Elf64_Shdr> sections(eh.e_shnum);
    std::memcpy(sections.data(), buf.data() + eh.e_shoff,
                eh.e_shnum * sizeof(Elf64_Shdr));
    for (const Elf64_Shdr& sh : sections) {
      if (sh.sh_type != SHT_SYMTAB && sh.sh_type != SHT_DYNSYM) continue;
      if (sh.sh_link >= sections.size()) continue;
      const Elf64_Shdr& str = sections[sh.sh_link];
      if (str.sh_offset >= n || str.sh_size > n - str.sh_offset) continue;
      if (sh.sh_offset >= n || sh.sh_size > n - sh.sh_offset ||
          sh.sh_entsize != sizeof(Elf64_Sym)) {
        continue;
      }
      m.strtabs.emplace_back(buf.data() + str.sh_offset, str.sh_size);
      const std::string* strtab = &m.strtabs.back();
      const size_t count = sh.sh_size / sizeof(Elf64_Sym);
      for (size_t i = 0; i < count; ++i) {
        Elf64_Sym sym;
        std::memcpy(&sym, buf.data() + sh.sh_offset + i * sizeof(Elf64_Sym),
                    sizeof(sym));
        if (ELF64_ST_TYPE(sym.st_info) != STT_FUNC || sym.st_value == 0 ||
            sym.st_name >= strtab->size()) {
          continue;
        }
        m.syms.push_back(Sym{static_cast<uintptr_t>(sym.st_value),
                             sym.st_size, sym.st_name, strtab});
      }
    }
    std::sort(m.syms.begin(), m.syms.end(),
              [](const Sym& a, const Sym& b) { return a.addr < b.addr; });
  }

  std::string ResolveUncached(uintptr_t pc) {
    Module* mod = nullptr;
    for (Module& m : modules_) {
      if (pc >= m.lo && pc < m.hi) {
        mod = &m;
        break;
      }
    }
    if (mod != nullptr) {
      if (!mod->parsed) ParseModule(*mod);
      const uintptr_t rel = pc - mod->base;
      auto it = std::upper_bound(
          mod->syms.begin(), mod->syms.end(), rel,
          [](uintptr_t v, const Sym& s) { return v < s.addr; });
      if (it != mod->syms.begin()) {
        const Sym& s = *std::prev(it);
        // Accept pcs past st_size up to the next symbol: sizes routinely
        // exclude alignment padding and cold tails.
        const uintptr_t limit =
            it != mod->syms.end() ? it->addr : s.addr + (uintptr_t{1} << 20);
        if (rel < limit) {
          const char* raw = s.strtab->c_str() + s.name_off;
          if (raw[0] != '\0') return SanitizeFrameName(DemangleName(raw));
        }
      }
    }
    Dl_info info;
    if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
        info.dli_sname != nullptr) {
      return SanitizeFrameName(DemangleName(info.dli_sname));
    }
    if (mod != nullptr) {
      char off[64];
      std::snprintf(off, sizeof(off), "+0x%zx",
                    static_cast<size_t>(pc - mod->base));
      return "[" + Basename(mod->path) + off + "]";
    }
    return "[unknown]";
  }

  std::vector<Module> modules_;
  std::map<uintptr_t, std::string> cache_;
};

// ---- Export-time merge ------------------------------------------------

struct MergedStack {
  std::string tag;           // "(none)" when untagged
  std::vector<void*> pcs;    // leaf first
  int64_t count = 0;
};

struct MergedProfile {
  std::vector<MergedStack> stacks;
  int64_t samples = 0;
  int64_t lost = 0;
  int64_t threads = 0;
};

/// Snapshots every thread's table and merges identical (stack, tag)
/// keys. Safe while sampling is live: slots are published with a
/// release-store of `hash` and counts are monotone, so a concurrent
/// reader sees a consistent (if slightly stale) view.
MergedProfile MergeProfiles() {
  MergedProfile out;
  std::map<std::pair<std::string, std::vector<void*>>, int64_t> merged;
  ProfilerRegistry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& tp : reg.threads) {
    const SampleSlot* slots = tp->slots.load(std::memory_order_acquire);
    const int64_t thread_samples =
        tp->samples.load(std::memory_order_relaxed);
    out.lost += tp->lost.load(std::memory_order_relaxed);
    if (slots == nullptr || thread_samples == 0) continue;
    out.samples += thread_samples;
    ++out.threads;
    for (size_t i = 0; i < kTableSlots; ++i) {
      const SampleSlot& slot = slots[i];
      if (slot.hash.load(std::memory_order_acquire) == 0) continue;
      const int64_t count = slot.count.load(std::memory_order_relaxed);
      if (count <= 0) continue;
      std::vector<void*> pcs(slot.pcs, slot.pcs + slot.depth);
      std::string tag = slot.tag != nullptr ? slot.tag : "(none)";
      merged[{std::move(tag), std::move(pcs)}] += count;
    }
  }
  out.stacks.reserve(merged.size());
  for (auto& [key, count] : merged) {
    out.stacks.push_back(MergedStack{key.first, key.second, count});
  }
  return out;
}

}  // namespace

bool ProfilerAvailable() {
  return g_available.load(std::memory_order_relaxed);
}

bool ProfilerProbeFailed() {
  return g_probe_failed.load(std::memory_order_relaxed);
}

bool ProfilerRunning() { return g_running.load(std::memory_order_relaxed); }

int ProfilerHz() { return g_hz.load(std::memory_order_relaxed); }

bool StartProfiler(int hz) {
  hz = std::clamp(hz, 1, 10000);
  if (ProfilerProbeFailed()) return false;
  EnrollCurrentThread();
  // First backtrace() call dlopens libgcc; force it now, in a normal
  // context, so the signal handler never triggers a lazy load.
  void* warm[4];
  (void)backtrace(warm, 4);
  ProfilerRegistry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (g_running.load(std::memory_order_relaxed)) return false;
  if (!reg.handler_installed) {
    struct sigaction sa {};
    sa.sa_sigaction = &ProfilerSignalHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGPROF, &sa, nullptr) != 0) {
      g_probe_failed.store(true, std::memory_order_relaxed);
      return false;
    }
    // Left installed for the process lifetime: it is inert while
    // !g_running, and restoring the default action would race a
    // still-pending SIGPROF into process termination.
    reg.handler_installed = true;
  }
  g_hz.store(hz, std::memory_order_relaxed);
  g_running.store(true, std::memory_order_release);
  bool any = false;
  for (const auto& tp : reg.threads) {
    if (ArmTimerLocked(tp.get(), hz)) any = true;
  }
  if (!any) {
    g_running.store(false, std::memory_order_relaxed);
    g_probe_failed.store(true, std::memory_order_relaxed);
    return false;
  }
  g_available.store(true, std::memory_order_relaxed);
  SetParallelTagObserver(
      ParallelTagObserver{&CaptureDispatchTag, &EnterChunkTag, &ExitChunkTag});
  return true;
}

void StopProfiler() {
  ProfilerRegistry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (!g_running.load(std::memory_order_relaxed)) return;
  g_running.store(false, std::memory_order_relaxed);
  ClearParallelTagObserver();
  for (const auto& tp : reg.threads) DisarmTimerLocked(tp.get());
}

void ResetProfile() {
  StopProfiler();
  ProfilerRegistry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  // Prune exited threads; zero the survivors. No handler can be mid-
  // write here: timers are gone and g_running has been false since
  // StopProfiler released the registry mutex.
  reg.threads.erase(std::remove_if(reg.threads.begin(), reg.threads.end(),
                                   [](const std::shared_ptr<ThreadProfile>& t) {
                                     return t->dead;
                                   }),
                    reg.threads.end());
  for (const auto& tp : reg.threads) {
    SampleSlot* slots = tp->slots.load(std::memory_order_relaxed);
    if (slots != nullptr) {
      for (size_t i = 0; i < kTableSlots; ++i) {
        slots[i].count.store(0, std::memory_order_relaxed);
        slots[i].tag = nullptr;
        slots[i].depth = 0;
        slots[i].hash.store(0, std::memory_order_relaxed);
      }
    }
    tp->samples.store(0, std::memory_order_relaxed);
    tp->lost.store(0, std::memory_order_relaxed);
  }
}

int64_t ProfileSampleCount() {
  int64_t total = 0;
  ProfilerRegistry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& tp : reg.threads) {
    total += tp->samples.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t ProfileLostCount() {
  int64_t total = 0;
  ProfilerRegistry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& tp : reg.threads) {
    total += tp->lost.load(std::memory_order_relaxed);
  }
  return total;
}

ProfileSummary SummarizeProfile() {
  const MergedProfile merged = MergeProfiles();
  ProfileSummary s;
  s.samples = merged.samples;
  s.lost = merged.lost;
  s.distinct_stacks = static_cast<int64_t>(merged.stacks.size());
  s.threads = merged.threads;
  if (merged.samples > 0) {
    Symbolizer sym;
    int64_t attributed = 0;
    for (const MergedStack& st : merged.stacks) {
      if (!st.pcs.empty() &&
          Symbolizer::Attributed(sym.Resolve(
              reinterpret_cast<uintptr_t>(st.pcs[0]), /*leaf=*/true))) {
        attributed += st.count;
      }
    }
    s.attributed_frac =
        static_cast<double>(attributed) / static_cast<double>(merged.samples);
  }
  return s;
}

std::string ProfileFoldedText() {
  const MergedProfile merged = MergeProfiles();
  if (merged.stacks.empty()) return "";
  Symbolizer sym;
  std::vector<std::string> lines;
  lines.reserve(merged.stacks.size());
  for (const MergedStack& st : merged.stacks) {
    std::string line = "span:" + SanitizeFrameName(st.tag);
    for (size_t i = st.pcs.size(); i-- > 0;) {  // root first
      line += ';';
      line += sym.Resolve(reinterpret_cast<uintptr_t>(st.pcs[i]),
                          /*leaf=*/i == 0);
    }
    if (st.pcs.empty()) line += ";[unknown]";
    line += ' ';
    line += std::to_string(st.count);
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

std::string ProfileJson(int top_n) {
  const MergedProfile merged = MergeProfiles();
  Symbolizer sym;
  struct FrameStat {
    int64_t self = 0;
    int64_t total = 0;
  };
  std::map<std::string, FrameStat> frames;
  std::map<std::string, int64_t> spans;
  int64_t attributed = 0;
  std::vector<std::string> names;  // scratch, for per-stack dedup
  for (const MergedStack& st : merged.stacks) {
    spans[st.tag] += st.count;
    names.clear();
    for (size_t i = 0; i < st.pcs.size(); ++i) {
      names.push_back(sym.Resolve(reinterpret_cast<uintptr_t>(st.pcs[i]),
                                  /*leaf=*/i == 0));
    }
    if (!names.empty()) {
      frames[names[0]].self += st.count;
      if (Symbolizer::Attributed(names[0])) attributed += st.count;
      // "total" counts each frame once per stack, so recursion and
      // repeated helper frames are not double-counted.
      std::vector<std::string> uniq = names;
      std::sort(uniq.begin(), uniq.end());
      uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
      for (const std::string& name : uniq) frames[name].total += st.count;
    }
  }
  std::vector<std::pair<std::string, FrameStat>> top(frames.begin(),
                                                     frames.end());
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    return a.second.self != b.second.self ? a.second.self > b.second.self
                                          : a.first < b.first;
  });
  if (top_n >= 0 && top.size() > static_cast<size_t>(top_n)) {
    top.resize(static_cast<size_t>(top_n));
  }
  std::vector<std::pair<std::string, int64_t>> span_rows(spans.begin(),
                                                         spans.end());
  std::sort(span_rows.begin(), span_rows.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second > b.second
                                          : a.first < b.first;
            });
  const double denom =
      merged.samples > 0 ? static_cast<double>(merged.samples) : 1.0;
  std::ostringstream os;
  os << "{\"available\": " << (ProfilerAvailable() ? "true" : "false")
     << ", \"hz\": " << ProfilerHz() << ", \"samples\": " << merged.samples
     << ", \"lost\": " << merged.lost
     << ", \"distinct_stacks\": " << merged.stacks.size()
     << ", \"threads\": " << merged.threads << ", \"attributed_frac\": "
     << JsonNumber(merged.samples > 0
                       ? static_cast<double>(attributed) / denom
                       : 0.0)
     << ",\n \"top\": [";
  for (size_t i = 0; i < top.size(); ++i) {
    os << (i ? ",\n   " : "\n   ") << "{\"name\": " << JsonString(top[i].first)
       << ", \"self\": " << top[i].second.self << ", \"self_pct\": "
       << JsonNumber(100.0 * static_cast<double>(top[i].second.self) / denom)
       << ", \"total\": " << top[i].second.total << ", \"total_pct\": "
       << JsonNumber(100.0 * static_cast<double>(top[i].second.total) / denom)
       << "}";
  }
  os << (top.empty() ? "" : "\n ") << "],\n \"spans\": [";
  for (size_t i = 0; i < span_rows.size(); ++i) {
    os << (i ? ",\n   " : "\n   ")
       << "{\"span\": " << JsonString(span_rows[i].first)
       << ", \"samples\": " << span_rows[i].second << ", \"share\": "
       << JsonNumber(static_cast<double>(span_rows[i].second) / denom) << "}";
  }
  os << (span_rows.empty() ? "" : "\n ") << "]}";
  return os.str();
}

#else  // !GRAPHAUG_PROFILER_IMPL

bool ProfilerAvailable() { return false; }
bool ProfilerProbeFailed() { return false; }
bool ProfilerRunning() { return false; }
int ProfilerHz() { return 0; }
bool StartProfiler(int /*hz*/) { return false; }
void StopProfiler() {}
void ResetProfile() {}
int64_t ProfileSampleCount() { return 0; }
int64_t ProfileLostCount() { return 0; }
ProfileSummary SummarizeProfile() { return ProfileSummary{}; }
std::string ProfileFoldedText() { return ""; }

std::string ProfileJson(int /*top_n*/) {
  return "{\"available\": false, \"hz\": 0, \"samples\": 0, \"lost\": 0, "
         "\"distinct_stacks\": 0, \"threads\": 0, \"attributed_frac\": 0,\n"
         " \"top\": [],\n \"spans\": []}";
}

#endif  // GRAPHAUG_PROFILER_IMPL

bool WriteProfileFolded(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = ProfileFoldedText();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

bool WriteProfileJson(const std::string& path, int top_n) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ProfileJson(top_n);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace graphaug::obs
