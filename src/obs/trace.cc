#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/metrics.h"

namespace graphaug::obs {
namespace {

/// Capacity of each per-thread ring. At one span per hot-kernel call
/// (coarse spans only) 64K events cover hours of training; older events
/// are overwritten and counted as dropped.
constexpr size_t kRingCapacity = size_t{1} << 16;

/// Per-thread ring buffer. Owned jointly by the writing thread (via a
/// thread_local shared_ptr) and the global registry, so buffers survive
/// thread exit (pool teardown on SetNumThreads) until export.
struct Ring {
  explicit Ring(int tid_in) : tid(tid_in) { events.reserve(1024); }

  std::mutex mu;  // uncontended in steady state (one writer)
  std::vector<TraceEvent> events;  // circular once events.size() == cap
  size_t next = 0;      // overwrite cursor once full
  int64_t total = 0;    // events ever recorded
  const int tid;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
  int next_tid = 0;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();
  return *r;
}

Ring& ThreadRing() {
  thread_local std::shared_ptr<Ring> ring = [] {
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto r = std::make_shared<Ring>(reg.next_tid++);
    reg.rings.push_back(r);
    return r;
  }();
  return *ring;
}

std::atomic<bool> g_trace_enabled{false};

#if GRAPHAUG_OBS_ENABLED
thread_local const char* t_current_span = nullptr;
#endif

}  // namespace

#if GRAPHAUG_OBS_ENABLED
const char* CurrentTraceSpanName() { return t_current_span; }

const char* ExchangeCurrentTraceSpanName(const char* name) {
  const char* prev = t_current_span;
  t_current_span = name;
  return prev;
}
#endif

int64_t TraceClockNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

#if GRAPHAUG_OBS_ENABLED
bool TraceEnabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}
#endif

void SetTraceEnabled(bool enabled) {
#if GRAPHAUG_OBS_ENABLED
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
#else
  (void)enabled;
#endif
}

void RecordTraceEvent(const char* name, int64_t ts_ns, int64_t dur_ns) {
  Ring& ring = ThreadRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  const TraceEvent ev{name, ts_ns, dur_ns, ring.tid};
  if (ring.events.size() < kRingCapacity) {
    ring.events.push_back(ev);
  } else {
    // Overwriting silently truncates the exported trace; surface it as a
    // counter so --metrics-out / --obs-report (and the --trace-out
    // warning in the CLI) make the loss visible.
    static Counter* dropped =
        MetricsRegistry::Get().GetCounter("trace.dropped_events");
    dropped->Inc();
    ring.events[ring.next] = ev;
    ring.next = (ring.next + 1) % kRingCapacity;
  }
  ++ring.total;
}

std::vector<TraceEvent> SnapshotTraceEvents() {
  std::vector<TraceEvent> out;
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& ring : reg.rings) {
    std::lock_guard<std::mutex> rlock(ring->mu);
    out.insert(out.end(), ring->events.begin(), ring->events.end());
  }
  return out;
}

int64_t TraceEventTotal() {
  int64_t total = 0;
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& ring : reg.rings) {
    std::lock_guard<std::mutex> rlock(ring->mu);
    total += ring->total;
  }
  return total;
}

int64_t TraceDroppedTotal() {
  int64_t dropped = 0;
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& ring : reg.rings) {
    std::lock_guard<std::mutex> rlock(ring->mu);
    dropped += ring->total - static_cast<int64_t>(ring->events.size());
  }
  return dropped;
}

std::string ChromeTraceJson() {
  std::vector<TraceEvent> events = SnapshotTraceEvents();
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns : a.tid < b.tid;
            });
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    os << (i ? ",\n" : "\n") << "  {\"name\": " << JsonString(e.name)
       << ", \"ph\": \"X\", \"pid\": 0, \"tid\": " << e.tid
       << ", \"ts\": " << JsonNumber(static_cast<double>(e.ts_ns) / 1e3)
       << ", \"dur\": " << JsonNumber(static_cast<double>(e.dur_ns) / 1e3)
       << "}";
  }
  os << (events.empty() ? "" : "\n") << "], \"displayTimeUnit\": \"ms\", "
     << "\"otherData\": {\"dropped_events\": " << TraceDroppedTotal()
     << "}}";
  return os.str();
}

bool WriteChromeTrace(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ChromeTraceJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

void ResetTrace() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& ring : reg.rings) {
    std::lock_guard<std::mutex> rlock(ring->mu);
    ring->events.clear();
    ring->next = 0;
    ring->total = 0;
  }
}

}  // namespace graphaug::obs
