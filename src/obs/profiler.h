#ifndef GRAPHAUG_OBS_PROFILER_H_
#define GRAPHAUG_OBS_PROFILER_H_

/// Signal-driven sampling CPU profiler (--profile-out / --profile-hz).
///
/// Every registered thread — the caller of StartProfiler plus every pool
/// worker, which common/parallel enrolls through its thread lifecycle
/// hooks — gets a POSIX per-thread timer (timer_create on the thread's
/// CPU-time clock, SIGEV_THREAD_ID delivery) that raises SIGPROF at the
/// requested rate *of CPU time*, so idle threads contribute no samples.
/// The handler captures the stack with backtrace(), tags it with the
/// innermost active autograd op (ScopedOp) or GA_TRACE_SPAN — pool
/// workers inherit the dispatching thread's tag per parallel region —
/// and aggregates it into a fixed-size per-thread open-addressed table.
/// Everything heavier (symbolization via the modules' ELF symbol tables
/// and dladdr, demangling, merging) is deferred to export time.
///
/// Signal-safety: the handler touches only its own thread's
/// pre-allocated state, calls backtrace() (pre-warmed at StartProfiler
/// so libgcc is already loaded), and uses relaxed/release atomics — no
/// locks, no allocation, no errno leaks. See DESIGN.md §7.
///
/// Contract, matching the rest of src/obs/:
///  * probe-once graceful degradation — if timers or signal delivery are
///    unavailable the first StartProfiler fails, ProfilerProbeFailed()
///    latches, and later calls are a cheap no-op;
///  * compiled to stubs under GRAPHAUG_NO_OBS (exports return empty
///    documents, StartProfiler returns false);
///  * bitwise-transparent: sampling never perturbs training results at
///    any thread count (asserted in tests/obs_test.cc).

#include <cstdint>
#include <string>

#include "obs/config.h"

namespace graphaug::obs {

/// Default sampling rate (prime, so periodic work does not alias).
/// The effective rate is capped by the kernel tick for CPU-time timers
/// (often ~250 Hz); requesting more than the kernel delivers is safe.
inline constexpr int kDefaultProfileHz = 997;

/// Aggregate profile statistics (computed at export time).
struct ProfileSummary {
  int64_t samples = 0;          ///< samples aggregated across all threads
  int64_t lost = 0;             ///< samples dropped (per-thread table full)
  int64_t distinct_stacks = 0;  ///< unique (stack, tag) keys after merge
  int64_t threads = 0;          ///< threads that contributed >= 1 sample
  double attributed_frac = 0;   ///< fraction of samples whose leaf frame
                                ///< resolved to a real symbol
};

/// True once a profiling session has successfully started (probe
/// succeeded at least once in this process).
bool ProfilerAvailable();

/// True once a StartProfiler probe has failed; later Start calls return
/// false immediately (probe-once degradation, like perf_counters).
bool ProfilerProbeFailed();

/// True while sampling is active.
bool ProfilerRunning();

/// Requested sampling rate of the running (or last) session, 0 if none.
int ProfilerHz();

/// Arms per-thread sample timers on every registered thread and installs
/// the SIGPROF handler. Returns false (without latching the probe) when
/// already running or compiled out; returns false and latches
/// ProbeFailed when the OS refuses timers/signals. `hz` is clamped to
/// [1, 10000]. Accumulates into any profile already collected — call
/// ResetProfile() first for a fresh one.
bool StartProfiler(int hz = kDefaultProfileHz);

/// Disarms all timers and stops sampling. Collected samples stay
/// available for export. Idempotent.
void StopProfiler();

/// Drops every collected sample (stops the profiler first if running).
void ResetProfile();

/// Samples aggregated so far (cheap; readable while running).
int64_t ProfileSampleCount();

/// Samples dropped because a thread's stack table was full.
int64_t ProfileLostCount();

/// Symbolizes and summarizes the collected profile.
ProfileSummary SummarizeProfile();

/// Brendan-Gregg collapsed-stack format, one line per unique stack:
///   span:<tag>;outermost;...;leaf <count>
/// The synthetic first frame carries the span/op attribution
/// ("span:(none)" for untagged samples), so flamegraphs group by span.
/// Lines are sorted; feed to flamegraph.pl or tools/profile_report.
std::string ProfileFoldedText();

/// Aggregated JSON document:
///   {"available": ..., "hz": ..., "samples": ..., "lost": ...,
///    "distinct_stacks": ..., "threads": ..., "attributed_frac": ...,
///    "top": [{"name", "self", "self_pct", "total", "total_pct"}, ...],
///    "spans": [{"span", "samples", "share"}, ...]}
/// "top" holds the `top_n` frames by self time; "total" counts a frame
/// once per stack it appears in (recursion is not double-counted).
std::string ProfileJson(int top_n = 30);

/// Writes ProfileFoldedText() / ProfileJson() to `path`; false on I/O
/// failure. Both write valid (possibly empty) documents when the
/// profiler is compiled out or never ran.
bool WriteProfileFolded(const std::string& path);
bool WriteProfileJson(const std::string& path, int top_n = 30);

}  // namespace graphaug::obs

#endif  // GRAPHAUG_OBS_PROFILER_H_
