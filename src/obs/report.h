#ifndef GRAPHAUG_OBS_REPORT_H_
#define GRAPHAUG_OBS_REPORT_H_

/// Persistent run reports: one JSONL file per training/bench run, one
/// record per line. Epoch records carry the loss breakdown, grad/param
/// norms, timing, and memory state at the end of the epoch; a single
/// footer record carries environment provenance (git SHA, hardware),
/// the run configuration, final eval metrics, and counter totals. The
/// format is append-only and line-delimited so a crashed run still
/// leaves every completed epoch on disk, and so tools/report_compare
/// can diff two runs record-by-record.
///
/// The writer is plain buffered I/O on the epoch boundary — nothing
/// here touches the training hot path, and the class stays functional
/// in GRAPHAUG_NO_OBS builds (memory/health fields simply read zero).

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "obs/config.h"

namespace graphaug::obs {

/// One epoch record ({"type": "epoch", ...}).
struct ReportEpoch {
  int epoch = 0;
  double loss = 0;
  std::map<std::string, double> loss_components;
  double grad_norm = 0;
  double param_norm = 0;
  int64_t nonfinite = 0;       ///< NaN/Inf grad entries + losses this epoch
  double epoch_seconds = 0;    ///< training time of this epoch (excl. eval)
  double elapsed_seconds = 0;  ///< wall time since the run started
  bool evaluated = false;      ///< eval ran this epoch (fields below valid)
  double recall20 = 0;
  double ndcg20 = 0;
  int64_t live_bytes = 0;  ///< tracked tensor bytes at epoch end
  int64_t peak_bytes = 0;  ///< tracked high-water mark so far
  int64_t rss_bytes = 0;   ///< process RSS at epoch end
};

/// The footer record ({"type": "footer", ...}), written once at the end.
struct ReportFooter {
  /// Environment/provenance fields (git_sha, timestamp_utc, ...). Values
  /// are written as JSON strings.
  std::map<std::string, std::string> env;
  /// Run configuration (model, dataset, epochs, dim, ...). Values are
  /// written as JSON strings.
  std::map<std::string, std::string> config;
  /// Final evaluation metrics (recall@20, ndcg@40, ...).
  std::map<std::string, double> metrics;
  int best_epoch = 0;
  double train_seconds = 0;
  int64_t peak_bytes = 0;      ///< tracked high-water mark of the run
  int64_t rss_peak_bytes = 0;  ///< OS-level peak RSS (getrusage / sampler)
  /// Totals of every registered obs counter at run end.
  std::map<std::string, int64_t> counters;
};

/// Serialize one record as a single-line JSON object (exposed for tests;
/// the writer appends a trailing newline).
std::string ReportEpochJson(const ReportEpoch& e);
std::string ReportFooterJson(const ReportFooter& f);

/// Append-only JSONL writer. Open() truncates; each Write* flushes the
/// line so completed epochs survive a crash. All methods return false
/// (and ok() latches false) on I/O failure.
class RunReportWriter {
 public:
  RunReportWriter() = default;
  ~RunReportWriter();

  RunReportWriter(const RunReportWriter&) = delete;
  RunReportWriter& operator=(const RunReportWriter&) = delete;

  bool Open(const std::string& path);
  bool is_open() const { return f_ != nullptr; }
  /// True while no write has failed since Open.
  bool ok() const { return ok_; }
  const std::string& path() const { return path_; }

  bool WriteEpoch(const ReportEpoch& e);
  bool WriteFooter(const ReportFooter& f);

  /// Flushes and closes; returns the final ok() state.
  bool Close();

 private:
  bool WriteLine(const std::string& json);

  std::FILE* f_ = nullptr;
  bool ok_ = true;
  std::string path_;
};

}  // namespace graphaug::obs

#endif  // GRAPHAUG_OBS_REPORT_H_
