#include "obs/health.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "obs/metrics.h"

namespace graphaug::obs {

HealthTracker& HealthTracker::Get() {
  static HealthTracker* tracker = new HealthTracker();
  return *tracker;
}

void HealthTracker::RecordLossComponent(const char* name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& [sum, count] = component_sums_[name];
  sum += value;
  ++count;
}

void HealthTracker::RecordBatchGrad(double squared_norm,
                                    int64_t nonfinite_entries) {
  if (nonfinite_entries > 0) {
    // Warn loudly but keep training: the counter (not silent NaN
    // propagation) is the contract.
    GA_LOG(Warn) << "non-finite gradients: " << nonfinite_entries
                 << " entries this batch";
    MetricsRegistry::Get()
        .GetCounter("health.nonfinite_grad_entries")
        ->Inc(nonfinite_entries);
  }
  std::lock_guard<std::mutex> lock(mu_);
  grad_norm_sum_ += std::sqrt(squared_norm);
  ++grad_batches_;
  nonfinite_grads_ += nonfinite_entries;
}

void HealthTracker::RecordNonFiniteLoss(double value) {
  GA_LOG(Warn) << "non-finite training loss: " << value;
  MetricsRegistry::Get().GetCounter("health.nonfinite_losses")->Inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++nonfinite_losses_;
}

EpochHealth HealthTracker::EndEpoch(int epoch, double param_norm,
                                    double mean_loss) {
  std::lock_guard<std::mutex> lock(mu_);
  EpochHealth rec;
  rec.epoch = epoch;
  rec.loss = mean_loss;
  rec.param_norm = param_norm;
  rec.grad_norm =
      grad_batches_ > 0 ? grad_norm_sum_ / static_cast<double>(grad_batches_)
                        : 0.0;
  rec.nonfinite_grads = nonfinite_grads_;
  rec.nonfinite_losses = nonfinite_losses_;
  for (const auto& [name, sc] : component_sums_) {
    rec.loss_components[name] =
        sc.second > 0 ? sc.first / static_cast<double>(sc.second) : 0.0;
  }
  history_.push_back(rec);
  component_sums_.clear();
  grad_norm_sum_ = 0;
  grad_batches_ = 0;
  nonfinite_grads_ = 0;
  nonfinite_losses_ = 0;
  return rec;
}

std::vector<EpochHealth> HealthTracker::History() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

int64_t HealthTracker::TotalNonFinite() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = nonfinite_grads_ + nonfinite_losses_;
  for (const EpochHealth& e : history_) {
    total += e.nonfinite_grads + e.nonfinite_losses;
  }
  return total;
}

std::string HealthTracker::ToJson() const {
  const std::vector<EpochHealth> history = History();
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < history.size(); ++i) {
    const EpochHealth& e = history[i];
    os << (i ? ",\n" : "\n") << "    {\"epoch\": " << e.epoch
       << ", \"loss\": " << JsonNumber(e.loss)
       << ", \"grad_norm\": " << JsonNumber(e.grad_norm)
       << ", \"param_norm\": " << JsonNumber(e.param_norm)
       << ", \"nonfinite_grads\": " << e.nonfinite_grads
       << ", \"nonfinite_losses\": " << e.nonfinite_losses
       << ", \"loss_components\": {";
    bool first = true;
    for (const auto& [name, v] : e.loss_components) {
      os << (first ? "" : ", ") << JsonString(name) << ": " << JsonNumber(v);
      first = false;
    }
    os << "}}";
  }
  os << (history.empty() ? "" : "\n  ") << "]";
  return os.str();
}

Table HealthTracker::ToTable() const {
  Table t({"epoch", "loss", "grad norm", "param norm", "non-finite",
           "components"});
  for (const EpochHealth& e : History()) {
    std::string comps;
    for (const auto& [name, v] : e.loss_components) {
      if (!comps.empty()) comps += " ";
      comps += name + "=" + FormatDouble(v, 4);
    }
    t.AddRow({std::to_string(e.epoch), FormatDouble(e.loss, 4),
              FormatDouble(e.grad_norm, 4), FormatDouble(e.param_norm, 2),
              std::to_string(e.nonfinite_grads + e.nonfinite_losses), comps});
  }
  return t;
}

void HealthTracker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  history_.clear();
  component_sums_.clear();
  grad_norm_sum_ = 0;
  grad_batches_ = 0;
  nonfinite_grads_ = 0;
  nonfinite_losses_ = 0;
}

int64_t NonFiniteCount(const float* p, int64_t n) {
  int64_t bad = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) ++bad;
  }
  return bad;
}

}  // namespace graphaug::obs
