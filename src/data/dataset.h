#ifndef GRAPHAUG_DATA_DATASET_H_
#define GRAPHAUG_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/bipartite_graph.h"

namespace graphaug {

/// An implicit-feedback recommendation dataset with a train/test split.
/// Users and items are dense 0-based ids. `noise_flags` (optional, same
/// length as train_edges) marks interactions the synthetic generator knows
/// to be preference-inconsistent — ground truth for the denoising case
/// study (Fig. 6).
struct Dataset {
  std::string name;
  int32_t num_users = 0;
  int32_t num_items = 0;
  std::vector<Edge> train_edges;
  std::vector<Edge> test_edges;
  std::vector<bool> noise_flags;

  /// Builds the training interaction graph.
  BipartiteGraph TrainGraph() const {
    return BipartiteGraph(num_users, num_items, train_edges);
  }

  /// Per-user test item lists (sorted), indexed by user id.
  std::vector<std::vector<int32_t>> TestItemsByUser() const;

  /// Observed training density |E| / (I*J).
  double TrainDensity() const {
    return static_cast<double>(train_edges.size()) /
           (static_cast<double>(num_users) * num_items);
  }
};

/// Splits `edges` into train/test by holding out `test_fraction` of each
/// user's interactions (at least one is always kept for training).
void SplitLeaveOut(const std::vector<Edge>& edges, double test_fraction,
                   Rng* rng, std::vector<Edge>* train,
                   std::vector<Edge>* test);

}  // namespace graphaug

#endif  // GRAPHAUG_DATA_DATASET_H_
