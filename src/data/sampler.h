#ifndef GRAPHAUG_DATA_SAMPLER_H_
#define GRAPHAUG_DATA_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "graph/bipartite_graph.h"

namespace graphaug {

/// A batch of BPR training triplets (u, v⁺, v⁻) with y(u,v⁺)=1 and
/// y(u,v⁻)=0 (Eq. 15). Item ids are *item-local* (0..J-1).
struct TripletBatch {
  std::vector<int32_t> users;
  std::vector<int32_t> pos_items;
  std::vector<int32_t> neg_items;

  size_t size() const { return users.size(); }
};

/// Samples BPR triplets uniformly over observed interactions, with
/// rejection-sampled negatives not interacted by the user.
class TripletSampler {
 public:
  /// The graph must outlive the sampler.
  explicit TripletSampler(const BipartiteGraph* graph);

  /// Draws `batch_size` triplets.
  TripletBatch Sample(int batch_size, Rng* rng) const;

  /// Draws a batch of distinct users (for contrastive objectives); if the
  /// graph has fewer users than `batch_size`, all users are returned.
  std::vector<int32_t> SampleUsers(int batch_size, Rng* rng) const;

  /// Draws a batch of distinct items.
  std::vector<int32_t> SampleItems(int batch_size, Rng* rng) const;

 private:
  const BipartiteGraph* graph_;
};

}  // namespace graphaug

#endif  // GRAPHAUG_DATA_SAMPLER_H_
