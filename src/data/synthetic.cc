#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "tensor/init.h"

namespace graphaug {
namespace {

/// Draws a truncated-Pareto degree with the requested mean.
int64_t SampleDegree(double mean, double exponent, int64_t max_degree,
                     Rng* rng) {
  // Pareto with xm chosen so that E[X] = mean: E = xm * a / (a - 1).
  const double a = exponent;
  const double xm = mean * (a - 1.0) / a;
  const double u = std::max(1e-12, 1.0 - rng->Uniform());
  const double x = xm / std::pow(u, 1.0 / a);
  return std::max<int64_t>(1, std::min<int64_t>(max_degree,
                                                static_cast<int64_t>(x)));
}

/// Samples an index from unnormalized weights via inverse CDF on a
/// precomputed cumulative array.
int32_t SampleFromCdf(const std::vector<double>& cdf, Rng* rng) {
  const double u = rng->Uniform() * cdf.back();
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
  return static_cast<int32_t>(std::min<size_t>(
      cdf.size() - 1, static_cast<size_t>(it - cdf.begin())));
}

}  // namespace

SyntheticData GenerateSynthetic(const SyntheticConfig& cfg) {
  GA_CHECK_GT(cfg.num_users, 0);
  GA_CHECK_GT(cfg.num_items, 0);
  GA_CHECK_GT(cfg.num_communities, 0);
  Rng rng(cfg.seed);
  Rng factor_rng = rng.Fork();
  Rng degree_rng = rng.Fork();
  Rng choice_rng = rng.Fork();
  Rng split_rng = rng.Fork();

  SyntheticData out;
  out.dataset.name = cfg.name;
  out.dataset.num_users = cfg.num_users;
  out.dataset.num_items = cfg.num_items;

  // Community centers in latent space.
  Matrix centers(cfg.num_communities, cfg.latent_dim);
  InitNormal(&centers, &factor_rng, 0.f, 1.f);

  auto assign_factors = [&](int32_t n, Matrix* factors,
                            std::vector<int32_t>* community) {
    *factors = Matrix(n, cfg.latent_dim);
    community->resize(n);
    for (int32_t i = 0; i < n; ++i) {
      const int32_t c =
          static_cast<int32_t>(factor_rng.UniformInt(cfg.num_communities));
      (*community)[i] = c;
      for (int d = 0; d < cfg.latent_dim; ++d) {
        factors->at(i, d) = centers.at(c, d) +
                            static_cast<float>(factor_rng.Gaussian(
                                0.0, cfg.factor_noise));
      }
    }
  };
  assign_factors(cfg.num_users, &out.user_factors, &out.user_community);
  assign_factors(cfg.num_items, &out.item_factors, &out.item_community);

  // Zipf item popularity.
  std::vector<double> popularity(cfg.num_items);
  for (int32_t v = 0; v < cfg.num_items; ++v) {
    popularity[v] = 1.0 / std::pow(static_cast<double>(v + 1),
                                   cfg.popularity_exponent);
  }
  // Shuffle popularity so popular items are spread across communities.
  for (size_t i = popularity.size(); i > 1; --i) {
    std::swap(popularity[i - 1], popularity[choice_rng.UniformInt(i)]);
  }

  // Per-user interaction sampling: mixture of preference-aligned draws
  // (softmax over affinity * popularity) and uniform noise draws.
  std::vector<Edge> aligned_edges;
  std::vector<Edge> noise_edges;
  const int64_t max_deg = std::max<int64_t>(2, cfg.num_items / 2);
  for (int32_t u = 0; u < cfg.num_users; ++u) {
    const int64_t deg =
        SampleDegree(cfg.mean_user_degree, cfg.degree_exponent, max_deg,
                     &degree_rng);
    // Preference weights over items for this user.
    std::vector<double> cdf(cfg.num_items);
    double acc = 0;
    for (int32_t v = 0; v < cfg.num_items; ++v) {
      double affinity = 0;
      for (int d = 0; d < cfg.latent_dim; ++d) {
        affinity += static_cast<double>(out.user_factors.at(u, d)) *
                    out.item_factors.at(v, d);
      }
      // Normalize affinity scale by latent_dim before sharpening.
      affinity /= std::sqrt(static_cast<double>(cfg.latent_dim));
      acc += popularity[v] * std::exp(cfg.preference_sharpness *
                                      std::tanh(affinity));
      cdf[v] = acc;
    }
    std::unordered_set<int32_t> seen;
    int64_t guard = 0;
    while (static_cast<int64_t>(seen.size()) < deg && guard++ < deg * 60) {
      const bool is_noise = choice_rng.Bernoulli(cfg.noise_fraction);
      const int32_t v =
          is_noise
              ? static_cast<int32_t>(choice_rng.UniformInt(cfg.num_items))
              : SampleFromCdf(cdf, &choice_rng);
      if (!seen.insert(v).second) continue;
      if (is_noise) {
        noise_edges.push_back({u, v});
      } else {
        aligned_edges.push_back({u, v});
      }
    }
  }

  // Split only the aligned edges into train/test: the held-out signal
  // reflects true preference, while noise edges always stay in training
  // (they are the pollution models must be robust to).
  std::vector<Edge> train_aligned, test;
  SplitLeaveOut(aligned_edges, cfg.test_fraction, &split_rng, &train_aligned,
                &test);

  out.dataset.train_edges = train_aligned;
  out.dataset.noise_flags.assign(train_aligned.size(), false);
  for (const Edge& e : noise_edges) {
    out.dataset.train_edges.push_back(e);
    out.dataset.noise_flags.push_back(true);
  }
  out.dataset.test_edges = std::move(test);

  // Keep edge order and noise flags aligned after the dedup/sort inside
  // BipartiteGraph: sort (edge, flag) pairs the same way here.
  std::vector<size_t> order(out.dataset.train_edges.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return out.dataset.train_edges[a] < out.dataset.train_edges[b];
  });
  std::vector<Edge> sorted_edges;
  std::vector<bool> sorted_flags;
  sorted_edges.reserve(order.size());
  for (size_t idx : order) {
    const Edge& e = out.dataset.train_edges[idx];
    if (!sorted_edges.empty() && sorted_edges.back() == e) continue;
    sorted_edges.push_back(e);
    sorted_flags.push_back(out.dataset.noise_flags[idx]);
  }
  out.dataset.train_edges = std::move(sorted_edges);
  out.dataset.noise_flags = std::move(sorted_flags);
  return out;
}

SyntheticConfig PresetConfig(const std::string& preset_name) {
  SyntheticConfig cfg;
  cfg.name = preset_name;
  if (preset_name == "gowalla-sim") {
    // Densest of the three; check-in data has strong popularity skew.
    cfg.num_users = 900;
    cfg.num_items = 1000;
    cfg.mean_user_degree = 24.0;
    cfg.popularity_exponent = 0.95;
    cfg.noise_fraction = 0.08;
    cfg.seed = 41;
  } else if (preset_name == "retailrocket-sim") {
    // Sparsest: browsing data, few interactions per user.
    cfg.num_users = 1000;
    cfg.num_items = 550;
    cfg.mean_user_degree = 7.0;
    cfg.popularity_exponent = 1.05;
    cfg.noise_fraction = 0.12;
    cfg.seed = 42;
  } else if (preset_name == "amazon-sim") {
    // Sparse ratings data with moderate skew.
    cfg.num_users = 1100;
    cfg.num_items = 650;
    cfg.mean_user_degree = 9.0;
    cfg.popularity_exponent = 0.85;
    cfg.noise_fraction = 0.10;
    cfg.seed = 43;
  } else if (preset_name == "tiny") {
    // For unit tests.
    cfg.num_users = 60;
    cfg.num_items = 50;
    cfg.mean_user_degree = 6.0;
    cfg.num_communities = 3;
    cfg.seed = 7;
  } else {
    GA_CHECK(false) << "unknown dataset preset: " << preset_name;
  }
  return cfg;
}

SyntheticData GeneratePreset(const std::string& preset_name, uint64_t seed) {
  SyntheticConfig cfg = PresetConfig(preset_name);
  if (seed != 0) cfg.seed = seed;
  return GenerateSynthetic(cfg);
}

}  // namespace graphaug
