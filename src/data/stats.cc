#include "data/stats.h"

#include <algorithm>
#include <numeric>

namespace graphaug {

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats s;
  s.num_users = dataset.num_users;
  s.num_items = dataset.num_items;
  s.num_train = static_cast<int64_t>(dataset.train_edges.size());
  s.num_test = static_cast<int64_t>(dataset.test_edges.size());
  s.density = dataset.TrainDensity();

  std::vector<int64_t> udeg(dataset.num_users, 0);
  std::vector<int64_t> ideg(dataset.num_items, 0);
  for (const Edge& e : dataset.train_edges) {
    udeg[e.user]++;
    ideg[e.item]++;
  }
  int64_t maxd = 0, sumd = 0;
  for (int64_t d : udeg) {
    maxd = std::max(maxd, d);
    sumd += d;
  }
  s.mean_user_degree =
      dataset.num_users ? static_cast<double>(sumd) / dataset.num_users : 0;
  s.max_user_degree = static_cast<double>(maxd);

  // Gini coefficient over item popularity.
  std::sort(ideg.begin(), ideg.end());
  const double total = std::accumulate(ideg.begin(), ideg.end(), 0.0);
  if (total > 0) {
    double weighted = 0;
    for (size_t i = 0; i < ideg.size(); ++i) {
      weighted += (2.0 * (i + 1) - ideg.size() - 1) * ideg[i];
    }
    s.gini_item_popularity = weighted / (ideg.size() * total);
  }
  return s;
}

std::vector<std::vector<int32_t>> GroupUsersByDegree(
    const Dataset& dataset, const std::vector<int>& bounds) {
  GA_CHECK_GE(bounds.size(), 2u);
  std::vector<int64_t> udeg(dataset.num_users, 0);
  for (const Edge& e : dataset.train_edges) udeg[e.user]++;
  std::vector<std::vector<int32_t>> groups(bounds.size() - 1);
  for (int32_t u = 0; u < dataset.num_users; ++u) {
    for (size_t g = 0; g + 1 < bounds.size(); ++g) {
      if (udeg[u] >= bounds[g] && udeg[u] < bounds[g + 1]) {
        groups[g].push_back(u);
        break;
      }
    }
  }
  return groups;
}

std::vector<std::vector<int32_t>> GroupItemsByDegree(
    const Dataset& dataset, const std::vector<int>& bounds) {
  GA_CHECK_GE(bounds.size(), 2u);
  std::vector<int64_t> ideg(dataset.num_items, 0);
  for (const Edge& e : dataset.train_edges) ideg[e.item]++;
  std::vector<std::vector<int32_t>> groups(bounds.size() - 1);
  for (int32_t v = 0; v < dataset.num_items; ++v) {
    for (size_t g = 0; g + 1 < bounds.size(); ++g) {
      if (ideg[v] >= bounds[g] && ideg[v] < bounds[g + 1]) {
        groups[g].push_back(v);
        break;
      }
    }
  }
  return groups;
}

std::vector<std::string> GroupLabels(const std::vector<int>& bounds) {
  std::vector<std::string> labels;
  for (size_t g = 0; g + 1 < bounds.size(); ++g) {
    labels.push_back(std::to_string(bounds[g]) + "-" +
                     std::to_string(bounds[g + 1]));
  }
  return labels;
}

}  // namespace graphaug
