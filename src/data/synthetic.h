#ifndef GRAPHAUG_DATA_SYNTHETIC_H_
#define GRAPHAUG_DATA_SYNTHETIC_H_

#include <string>

#include "data/dataset.h"
#include "tensor/matrix.h"

namespace graphaug {

/// Configuration for the latent-factor synthetic dataset generator. The
/// generator substitutes for the paper's Gowalla / Retail Rocket / Amazon
/// dumps (see DESIGN.md §4): it produces implicit-feedback graphs with
/// (a) clustered latent preferences (users and items belong to soft
/// communities, giving ground-truth "categories" for the Fig. 6 case
/// study), (b) power-law item popularity and user activity (long-tail
/// skew, Table V), and (c) a controllable fraction of
/// preference-inconsistent "noise" interactions (misclicks, Fig. 3/6).
struct SyntheticConfig {
  std::string name = "synthetic";
  int32_t num_users = 1000;
  int32_t num_items = 1000;
  /// Mean interactions per user; individual degrees follow a truncated
  /// Pareto with this mean and exponent `degree_exponent`.
  double mean_user_degree = 20.0;
  /// Pareto tail exponent for user activity (smaller => heavier tail).
  double degree_exponent = 1.8;
  /// Zipf exponent for item popularity.
  double popularity_exponent = 0.9;
  /// Number of latent communities.
  int num_communities = 8;
  /// Latent dimensionality of the preference model.
  int latent_dim = 16;
  /// Within-community factor noise (larger => fuzzier communities).
  double factor_noise = 0.45;
  /// Fraction of interactions drawn ignoring preference (pure noise).
  double noise_fraction = 0.10;
  /// Preference sharpness when sampling items for a user (softmax temp⁻¹).
  double preference_sharpness = 3.0;
  /// Fraction of each user's aligned interactions held out for testing.
  double test_fraction = 0.2;
  uint64_t seed = 42;
};

/// Output of the generator: the dataset plus the generative ground truth
/// (latent factors and community labels), which the case-study experiment
/// uses to verify that GraphAug recovers implicit item dependencies.
struct SyntheticData {
  Dataset dataset;
  Matrix user_factors;              ///< I x latent_dim
  Matrix item_factors;              ///< J x latent_dim
  std::vector<int32_t> user_community;
  std::vector<int32_t> item_community;
};

/// Generates a dataset from the config. Deterministic given config.seed.
SyntheticData GenerateSynthetic(const SyntheticConfig& config);

/// Named presets mirroring the paper's three benchmarks at laptop scale
/// ("gowalla-sim", "retailrocket-sim", "amazon-sim"); density ordering and
/// skew match Table I qualitatively. Aborts on unknown names.
SyntheticConfig PresetConfig(const std::string& preset_name);

/// Convenience: generate a preset by name with an optional seed override.
SyntheticData GeneratePreset(const std::string& preset_name,
                             uint64_t seed = 0);

}  // namespace graphaug

#endif  // GRAPHAUG_DATA_SYNTHETIC_H_
