#include "data/sampler.h"

#include <algorithm>
#include <numeric>

namespace graphaug {

TripletSampler::TripletSampler(const BipartiteGraph* graph) : graph_(graph) {
  GA_CHECK(graph != nullptr);
  GA_CHECK_GT(graph->num_edges(), 0);
}

TripletBatch TripletSampler::Sample(int batch_size, Rng* rng) const {
  TripletBatch batch;
  batch.users.reserve(batch_size);
  batch.pos_items.reserve(batch_size);
  batch.neg_items.reserve(batch_size);
  const auto& edges = graph_->edges();
  for (int i = 0; i < batch_size; ++i) {
    const Edge& e = edges[static_cast<size_t>(rng->UniformInt(edges.size()))];
    int32_t neg = -1;
    for (int attempt = 0; attempt < 200; ++attempt) {
      const int32_t candidate =
          static_cast<int32_t>(rng->UniformInt(graph_->num_items()));
      if (!graph_->HasEdge(e.user, candidate)) {
        neg = candidate;
        break;
      }
    }
    if (neg < 0) continue;  // pathologically dense user; skip
    batch.users.push_back(e.user);
    batch.pos_items.push_back(e.item);
    batch.neg_items.push_back(neg);
  }
  return batch;
}

namespace {

std::vector<int32_t> SampleDistinct(int32_t universe, int batch_size,
                                    Rng* rng) {
  if (batch_size >= universe) {
    std::vector<int32_t> all(universe);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  // Partial Fisher-Yates over an index map would need O(universe); for the
  // sizes here a rejection set is fine.
  std::vector<int32_t> out;
  std::vector<bool> taken(universe, false);
  out.reserve(batch_size);
  while (static_cast<int>(out.size()) < batch_size) {
    const int32_t x = static_cast<int32_t>(rng->UniformInt(universe));
    if (!taken[x]) {
      taken[x] = true;
      out.push_back(x);
    }
  }
  return out;
}

}  // namespace

std::vector<int32_t> TripletSampler::SampleUsers(int batch_size,
                                                 Rng* rng) const {
  return SampleDistinct(graph_->num_users(), batch_size, rng);
}

std::vector<int32_t> TripletSampler::SampleItems(int batch_size,
                                                 Rng* rng) const {
  return SampleDistinct(graph_->num_items(), batch_size, rng);
}

}  // namespace graphaug
