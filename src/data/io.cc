#include "data/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace graphaug {

bool SaveDatasetTsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "#name\t" << dataset.name << "\n";
  out << "#users\t" << dataset.num_users << "\n";
  out << "#items\t" << dataset.num_items << "\n";
  const bool has_flags =
      dataset.noise_flags.size() == dataset.train_edges.size();
  for (size_t i = 0; i < dataset.train_edges.size(); ++i) {
    const Edge& e = dataset.train_edges[i];
    out << e.user << "\t" << e.item << "\ttrain";
    if (has_flags) out << "\t" << (dataset.noise_flags[i] ? 1 : 0);
    out << "\n";
  }
  for (const Edge& e : dataset.test_edges) {
    out << e.user << "\t" << e.item << "\ttest\n";
  }
  return out.good();
}

bool LoadDatasetTsv(const std::string& path, Dataset* dataset) {
  std::ifstream in(path);
  if (!in) return false;
  *dataset = Dataset();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      const auto parts = SplitString(line.substr(1), "\t");
      GA_CHECK_GE(parts.size(), 2u) << "bad header: " << line;
      if (parts[0] == "name") {
        dataset->name = parts[1];
      } else if (parts[0] == "users") {
        dataset->num_users = std::stoi(parts[1]);
      } else if (parts[0] == "items") {
        dataset->num_items = std::stoi(parts[1]);
      }
      continue;
    }
    const auto parts = SplitString(line, "\t");
    GA_CHECK_GE(parts.size(), 3u) << "bad row: " << line;
    Edge e{std::stoi(parts[0]), std::stoi(parts[1])};
    if (parts[2] == "train") {
      dataset->train_edges.push_back(e);
      if (parts.size() >= 4) {
        dataset->noise_flags.push_back(parts[3] == "1");
      }
    } else if (parts[2] == "test") {
      dataset->test_edges.push_back(e);
    } else {
      GA_CHECK(false) << "bad split tag: " << parts[2];
    }
  }
  if (dataset->noise_flags.size() != dataset->train_edges.size()) {
    dataset->noise_flags.clear();
  }
  return true;
}

}  // namespace graphaug
