#include "data/dataset.h"

#include <algorithm>

namespace graphaug {

std::vector<std::vector<int32_t>> Dataset::TestItemsByUser() const {
  std::vector<std::vector<int32_t>> out(num_users);
  for (const Edge& e : test_edges) out[e.user].push_back(e.item);
  for (auto& v : out) std::sort(v.begin(), v.end());
  return out;
}

void SplitLeaveOut(const std::vector<Edge>& edges, double test_fraction,
                   Rng* rng, std::vector<Edge>* train,
                   std::vector<Edge>* test) {
  GA_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
  train->clear();
  test->clear();
  // Bucket per user, shuffle, then hold out the tail.
  int32_t max_user = 0;
  for (const Edge& e : edges) max_user = std::max(max_user, e.user);
  std::vector<std::vector<Edge>> per_user(max_user + 1);
  for (const Edge& e : edges) per_user[e.user].push_back(e);
  for (auto& bucket : per_user) {
    if (bucket.empty()) continue;
    // Fisher-Yates shuffle with our deterministic RNG.
    for (size_t i = bucket.size(); i > 1; --i) {
      std::swap(bucket[i - 1], bucket[rng->UniformInt(i)]);
    }
    size_t n_test = static_cast<size_t>(test_fraction * bucket.size());
    n_test = std::min(n_test, bucket.size() - 1);  // keep >= 1 for training
    for (size_t i = 0; i < bucket.size(); ++i) {
      if (i < bucket.size() - n_test) {
        train->push_back(bucket[i]);
      } else {
        test->push_back(bucket[i]);
      }
    }
  }
}

}  // namespace graphaug
