#ifndef GRAPHAUG_DATA_IO_H_
#define GRAPHAUG_DATA_IO_H_

#include <string>

#include "data/dataset.h"

namespace graphaug {

/// Saves a dataset as TSV: header lines `#name`, `#users N`, `#items M`,
/// then one `user<TAB>item<TAB>split[<TAB>noise]` row per interaction,
/// where split is "train" or "test". Returns false on I/O failure.
bool SaveDatasetTsv(const Dataset& dataset, const std::string& path);

/// Loads a dataset saved by SaveDatasetTsv. Aborts on malformed content;
/// returns false if the file cannot be opened.
bool LoadDatasetTsv(const std::string& path, Dataset* dataset);

}  // namespace graphaug

#endif  // GRAPHAUG_DATA_IO_H_
