#ifndef GRAPHAUG_DATA_STATS_H_
#define GRAPHAUG_DATA_STATS_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace graphaug {

/// Summary statistics of a dataset, used by the Table I reproduction and
/// the degree-group split of Table V.
struct DatasetStats {
  int32_t num_users = 0;
  int32_t num_items = 0;
  int64_t num_train = 0;
  int64_t num_test = 0;
  double density = 0;
  double mean_user_degree = 0;
  double max_user_degree = 0;
  double gini_item_popularity = 0;  ///< 0 = uniform, 1 = fully skewed.
};

/// Computes the summary.
DatasetStats ComputeStats(const Dataset& dataset);

/// Buckets users by *training* degree into half-open ranges
/// [bounds[i], bounds[i+1]); e.g. bounds {0,10,20,30,40,50} gives the
/// paper's five groups. Returns per-group user lists.
std::vector<std::vector<int32_t>> GroupUsersByDegree(
    const Dataset& dataset, const std::vector<int>& bounds);

/// Same bucketing on the item side (items by training popularity); the
/// item half of the Table V skew study. Returns sorted per-group item
/// lists.
std::vector<std::vector<int32_t>> GroupItemsByDegree(
    const Dataset& dataset, const std::vector<int>& bounds);

/// Human-readable group labels ("0-10", "10-20", ...).
std::vector<std::string> GroupLabels(const std::vector<int>& bounds);

}  // namespace graphaug

#endif  // GRAPHAUG_DATA_STATS_H_
