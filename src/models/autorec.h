#ifndef GRAPHAUG_MODELS_AUTOREC_H_
#define GRAPHAUG_MODELS_AUTOREC_H_

#include "models/recommender.h"
#include "nn/layers.h"

namespace graphaug {

/// AutoRec (Sedhain et al., 2015), user-based variant: an autoencoder
/// reconstructs each user's binary interaction row; predictions are the
/// reconstructed scores. Trained with masked reconstruction loss over
/// observed entries plus sampled negatives.
///   r̂_u = W₂ · g(W₁ r_u + b₁) + b₂
class AutoRec : public Recommender {
 public:
  AutoRec(const Dataset* dataset, const ModelConfig& config);

  std::string name() const override { return "AutoR"; }
  Matrix ScoreUsers(const std::vector<int32_t>& users) const override;
  bool factored_scoring() const override { return false; }

 protected:
  Var BuildLoss(Tape* tape, const TripletBatch& batch) override;
  void ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) override;

 private:
  /// Builds the dense interaction rows for the given users.
  Matrix InteractionRows(const std::vector<int32_t>& users) const;
  /// Reconstructs interaction rows on a tape.
  Var Reconstruct(Tape* tape, const std::vector<int32_t>& users) const;

  Linear encoder_;
  Linear decoder_;
};

}  // namespace graphaug

#endif  // GRAPHAUG_MODELS_AUTOREC_H_
