#include "models/debias.h"

#include <algorithm>
#include <cmath>

namespace graphaug {

Matrix ItemPropensities(const BipartiteGraph& graph, double gamma,
                        double clip_min) {
  GA_CHECK_GE(gamma, 0.0);
  GA_CHECK(clip_min > 0.0 && clip_min <= 1.0);
  int64_t max_deg = 1;
  for (int32_t v = 0; v < graph.num_items(); ++v) {
    max_deg = std::max(max_deg, graph.ItemDegree(v));
  }
  Matrix rho(graph.num_items(), 1);
  for (int32_t v = 0; v < graph.num_items(); ++v) {
    const double rel =
        static_cast<double>(graph.ItemDegree(v)) / static_cast<double>(max_deg);
    rho[v] = static_cast<float>(std::max(clip_min, std::pow(rel, gamma)));
  }
  return rho;
}

Matrix BatchIpsWeights(const std::vector<int32_t>& pos_items,
                       const Matrix& propensities) {
  Matrix w(static_cast<int64_t>(pos_items.size()), 1);
  double sum = 0;
  for (size_t i = 0; i < pos_items.size(); ++i) {
    GA_DCHECK(pos_items[i] >= 0 && pos_items[i] < propensities.rows());
    w[static_cast<int64_t>(i)] = 1.f / propensities[pos_items[i]];
    sum += w[static_cast<int64_t>(i)];
  }
  // Self-normalize to mean 1 so the loss scale matches unweighted BPR.
  const float scale =
      sum > 0 ? static_cast<float>(pos_items.size() / sum) : 1.f;
  for (int64_t i = 0; i < w.size(); ++i) w[i] *= scale;
  return w;
}

Var IpsBprLoss(Tape* tape, Var pos_scores, Var neg_scores,
               const std::vector<int32_t>& pos_items,
               const Matrix& propensities) {
  Matrix w = BatchIpsWeights(pos_items, propensities);
  Var losses = ag::Softplus(ag::Sub(neg_scores, pos_scores));
  Var weighted = ag::Mul(losses, ag::Constant(tape, std::move(w)));
  return ag::MeanAll(weighted);
}

}  // namespace graphaug
