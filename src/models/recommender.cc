#include "models/recommender.h"

#include "tensor/ops.h"

namespace graphaug {

Recommender::Recommender(const Dataset* dataset, const ModelConfig& config)
    : dataset_(dataset),
      config_(config),
      graph_(dataset->TrainGraph()),
      sampler_(&graph_),
      rng_(config.seed) {
  optimizer_ = std::make_unique<Adam>(config.learning_rate, 0.9f, 0.999f,
                                      1e-8f, config.weight_decay);
}

double Recommender::TrainEpoch() {
  OnEpochBegin();
  int batches = config_.batches_per_epoch;
  if (batches <= 0) {
    batches = static_cast<int>(
        (graph_.num_edges() + config_.batch_size - 1) / config_.batch_size);
  }
  double total_loss = 0;
  for (int b = 0; b < batches; ++b) {
    TripletBatch batch = sampler_.Sample(config_.batch_size, &rng_);
    if (batch.size() == 0) continue;
    Tape tape;
    Var loss = BuildLoss(&tape, batch);
    total_loss += loss.value().scalar();
    tape.Backward(loss);
    optimizer_->Step(&store_);
  }
  return batches > 0 ? total_loss / batches : 0.0;
}

void Recommender::Finalize() {
  ComputeEmbeddings(&user_emb_, &item_emb_);
  GA_CHECK_EQ(user_emb_.rows(), dataset_->num_users);
  GA_CHECK_EQ(item_emb_.rows(), dataset_->num_items);
}

Matrix Recommender::ScoreUsers(const std::vector<int32_t>& users) const {
  GA_CHECK(!user_emb_.empty()) << "call Finalize() before scoring";
  Matrix batch = GatherRows(user_emb_, users);
  Matrix scores;
  Gemm(batch, false, item_emb_, true, 1.f, 0.f, &scores);
  return scores;
}

Matrix Recommender::AllEmbeddings() const {
  return ConcatRows(user_emb_, item_emb_);
}

void Recommender::DecayLearningRate() {
  optimizer_->set_learning_rate(optimizer_->learning_rate() *
                                config_.lr_decay);
}

std::vector<int32_t> Recommender::ToNodeIds(
    const std::vector<int32_t>& items) const {
  std::vector<int32_t> out(items.size());
  const int32_t offset = ItemOffset();
  for (size_t i = 0; i < items.size(); ++i) out[i] = items[i] + offset;
  return out;
}

}  // namespace graphaug
