#include "models/recommender.h"

#include <cmath>

#include "obs/obs.h"
#include "tensor/ops.h"

namespace graphaug {

Recommender::Recommender(const Dataset* dataset, const ModelConfig& config)
    : dataset_(dataset),
      config_(config),
      graph_(dataset->TrainGraph()),
      sampler_(&graph_),
      rng_(config.seed) {
  optimizer_ = std::make_unique<Adam>(config.learning_rate, 0.9f, 0.999f,
                                      1e-8f, config.weight_decay);
}

double Recommender::TrainEpoch() {
  OnEpochBegin();
  int batches = config_.batches_per_epoch;
  if (batches <= 0) {
    batches = static_cast<int>(
        (graph_.num_edges() + config_.batch_size - 1) / config_.batch_size);
  }
  double total_loss = 0;
  for (int b = 0; b < batches; ++b) {
    TripletBatch batch = sampler_.Sample(config_.batch_size, &rng_);
    if (batch.size() == 0) continue;
    Tape tape;
    Var loss = BuildLoss(&tape, batch);
    const double batch_loss = loss.value().scalar();
    total_loss += batch_loss;
    if (obs::Enabled() && !std::isfinite(batch_loss)) {
      obs::HealthTracker::Get().RecordNonFiniteLoss(batch_loss);
    }
    tape.Backward(loss);
    if (obs::Enabled()) RecordBatchHealth(batch_loss);
    optimizer_->Step(&store_);
  }
  return batches > 0 ? total_loss / batches : 0.0;
}

void Recommender::RecordBatchHealth(double batch_loss) {
  // Reads gradients only (after Backward, before the optimizer consumes
  // them), so recording cannot change training results.
  double squared_norm = 0;
  int64_t nonfinite = 0;
  for (const Parameter* p : store_.params()) {
    if (!p->trainable || !p->grad.SameShape(p->value)) continue;
    nonfinite += obs::NonFiniteCount(p->grad.data(), p->grad.size());
    for (int64_t i = 0; i < p->grad.size(); ++i) {
      squared_norm += static_cast<double>(p->grad[i]) * p->grad[i];
    }
  }
  obs::HealthTracker::Get().RecordBatchGrad(squared_norm, nonfinite);
  obs::MetricsRegistry::Get().GetCounter("train.batches")->Inc();
  obs::MetricsRegistry::Get()
      .GetHistogram("train.batch_loss",
                    {0.01, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 100.0})
      ->Observe(batch_loss);
}

void Recommender::Finalize() {
  ComputeEmbeddings(&user_emb_, &item_emb_);
  GA_CHECK_EQ(user_emb_.rows(), dataset_->num_users);
  GA_CHECK_EQ(item_emb_.rows(), dataset_->num_items);
}

Matrix Recommender::ScoreUsers(const std::vector<int32_t>& users) const {
  GA_CHECK(!user_emb_.empty()) << "call Finalize() before scoring";
  Matrix batch = GatherRows(user_emb_, users);
  Matrix scores;
  Gemm(batch, false, item_emb_, true, 1.f, 0.f, &scores);
  return scores;
}

Matrix Recommender::AllEmbeddings() const {
  return ConcatRows(user_emb_, item_emb_);
}

void Recommender::DecayLearningRate() {
  optimizer_->set_learning_rate(optimizer_->learning_rate() *
                                config_.lr_decay);
}

std::vector<int32_t> Recommender::ToNodeIds(
    const std::vector<int32_t>& items) const {
  std::vector<int32_t> out(items.size());
  const int32_t offset = ItemOffset();
  for (size_t i = 0; i < items.size(); ++i) out[i] = items[i] + offset;
  return out;
}

}  // namespace graphaug
