#ifndef GRAPHAUG_MODELS_DISENTANGLED_H_
#define GRAPHAUG_MODELS_DISENTANGLED_H_

#include "models/propagation.h"
#include "models/recommender.h"

namespace graphaug {

/// Disentangled graph CF family. The embedding space is split into K
/// factor chunks; per-edge routing weights (softmax over factors of the
/// chunk-wise cosine affinity) gate each factor's propagation, so
/// different factors specialize to different interaction intents.
/// Routing weights are computed from the current forward values
/// (stop-gradient), the standard simplification of neighborhood routing.
///
/// Three baselines share this machinery:
///  - DisenGCN (Ma et al.):  routing + nonlinearity, 1 routing iteration
///  - DGCF (Wang et al.):    linear propagation, 2 routing iterations,
///                           mean-of-layers output
///  - DGCL (Li et al.):      DGCF-style encoder + factor-wise contrastive
///                           objective between two edge-dropout views
struct DisentangledOptions {
  int num_factors = 4;
  int routing_iterations = 1;
  bool nonlinear = false;
  bool contrastive = false;   ///< DGCL: factor-wise InfoNCE
  float view_dropout = 0.2f;  ///< edge dropout for DGCL views
};

class DisentangledRecommender : public Recommender {
 public:
  DisentangledRecommender(const Dataset* dataset, const ModelConfig& config,
                          const DisentangledOptions& options,
                          std::string display_name);

  std::string name() const override { return display_name_; }

 protected:
  Var BuildLoss(Tape* tape, const TripletBatch& batch) override;
  void ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) override;
  void OnEpochBegin() override;

 private:
  /// One disentangled encoding pass over the given adjacency.
  Var Encode(Tape* tape, const BipartiteGraph& graph,
             const NormalizedAdjacency* adj);

  /// E x K routing weights from current embeddings (stop-grad).
  Matrix RoutingWeights(const Matrix& embeddings,
                        const std::vector<Edge>& edges) const;

  DisentangledOptions options_;
  std::string display_name_;
  NormalizedAdjacency adj_;
  Parameter* embeddings_;
  // DGCL's per-epoch contrastive views.
  BipartiteGraph view_graph_a_, view_graph_b_;
  NormalizedAdjacency view_adj_a_, view_adj_b_;
};

/// Factory helpers with the paper baselines' settings.
std::unique_ptr<DisentangledRecommender> MakeDisenGcn(
    const Dataset* dataset, const ModelConfig& config);
std::unique_ptr<DisentangledRecommender> MakeDgcf(const Dataset* dataset,
                                                  const ModelConfig& config);
std::unique_ptr<DisentangledRecommender> MakeDgcl(const Dataset* dataset,
                                                  const ModelConfig& config);

}  // namespace graphaug

#endif  // GRAPHAUG_MODELS_DISENTANGLED_H_
