#ifndef GRAPHAUG_MODELS_TRAINER_H_
#define GRAPHAUG_MODELS_TRAINER_H_

#include <vector>

#include "eval/evaluator.h"
#include "models/recommender.h"

namespace graphaug::obs {
class RunReportWriter;
}  // namespace graphaug::obs

namespace graphaug {

/// One entry of the convergence trace (Fig. 4).
struct EpochRecord {
  int epoch = 0;
  double loss = 0;
  double recall20 = 0;
  double ndcg20 = 0;
  double elapsed_seconds = 0;
};

/// Outcome of a full training run.
struct TrainResult {
  std::vector<EpochRecord> history;  ///< entries at evaluation epochs
  TopKMetrics final_metrics;         ///< metrics of the best checkpoint
  double train_seconds = 0;          ///< wall-clock training time
  int best_epoch = 0;
  double best_recall20 = 0;
};

/// Training-loop options.
struct TrainOptions {
  int epochs = 30;
  int eval_every = 5;   ///< evaluate every k epochs (always at the end)
  int patience = 0;     ///< stop after this many non-improving evals; 0=off
  bool verbose = false; ///< log per-eval progress
  /// When set (and open), one JSONL epoch record is appended per epoch:
  /// loss breakdown, grad/param norms, timing, live/peak tensor bytes,
  /// and RSS. The caller owns the writer and its footer. Purely
  /// observational — training results are identical with or without it.
  obs::RunReportWriter* report = nullptr;
  /// When > 0, the sampling CPU profiler (obs/profiler.h) runs at this
  /// rate for the duration of the training loop, unless a session is
  /// already active (the caller's scope then wins). Harvest with
  /// obs::ProfileFoldedText()/ProfileJson() after return — the CLI's
  /// --profile-out does. Sampling is observational only: results are
  /// bitwise identical with it on or off, at any thread count.
  int profile_hz = 0;
};

/// Drives epochs, periodic evaluation, learning-rate decay, early
/// stopping, and convergence-history recording; keeps the metrics of the
/// best epoch (by Recall@20) as the reported result, matching common
/// practice for the paper's protocol.
TrainResult TrainAndEvaluate(Recommender* model, const Evaluator& evaluator,
                             const TrainOptions& options);

}  // namespace graphaug

#endif  // GRAPHAUG_MODELS_TRAINER_H_
