#include "models/generative_ssl.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "tensor/ops.h"

namespace graphaug {
namespace {

/// Builds a row-normalized user-user co-interaction graph keeping the
/// `top_k` strongest neighbors per user.
CsrMatrix BuildUserHypergraph(const BipartiteGraph& g, int top_k) {
  std::vector<CooEntry> entries;
  std::unordered_map<int32_t, int> counts;
  for (int32_t u = 0; u < g.num_users(); ++u) {
    counts.clear();
    for (int32_t v : g.ItemsOf(u)) {
      for (int32_t u2 : g.UsersOf(v)) {
        if (u2 != u) counts[u2]++;
      }
    }
    // Keep strongest co-interactors.
    std::vector<std::pair<int, int32_t>> ranked;
    ranked.reserve(counts.size());
    for (const auto& [u2, c] : counts) ranked.push_back({c, u2});
    const int keep = std::min<int>(top_k, static_cast<int>(ranked.size()));
    std::partial_sort(ranked.begin(), ranked.begin() + keep, ranked.end(),
                      std::greater<>());
    double total = 0;
    for (int i = 0; i < keep; ++i) total += ranked[i].first;
    for (int i = 0; i < keep; ++i) {
      entries.push_back({u, ranked[i].second,
                         static_cast<float>(ranked[i].first / total)});
    }
  }
  return CsrMatrix::FromCoo(g.num_users(), g.num_users(), std::move(entries));
}

}  // namespace

Mhcn::Mhcn(const Dataset* dataset, const ModelConfig& config)
    : Recommender(dataset, config) {
  adj_ = graph_.BuildNormalizedAdjacency(0.f);
  user_hypergraph_ = BuildUserHypergraph(graph_, /*top_k=*/10);
  embeddings_ = store_.CreateNormal("embeddings", graph_.num_nodes(),
                                    config.dim, &rng_);
}

Var Mhcn::BuildLoss(Tape* tape, const TripletBatch& batch) {
  Var e = ag::Leaf(tape, embeddings_);
  Var h = LightGcnPropagate(tape, &adj_.matrix, e, config_.num_layers);

  // Hypergraph channel over users: g_u = H · h_users.
  std::vector<int32_t> all_users(graph_.num_users());
  std::iota(all_users.begin(), all_users.end(), 0);
  Var h_users = ag::GatherRows(h, all_users);
  Var g_users = ag::Spmm(&user_hypergraph_, h_users);

  // Recommendation scores mix both channels for users.
  Var u_mixed_all = ag::Scale(ag::Add(h_users, g_users), 0.5f);
  Var u = ag::GatherRows(u_mixed_all, batch.users);
  Var p = ag::GatherRows(h, ToNodeIds(batch.pos_items));
  Var n = ag::GatherRows(h, ToNodeIds(batch.neg_items));
  Var loss = ag::BprLoss(ag::RowDot(u, p), ag::RowDot(u, n));

  // DGI-style MI maximization: readout s = mean(g_users); positive pairs
  // (h_u, s), negatives are row-shuffled users.
  std::vector<int32_t> batch_users =
      sampler_.SampleUsers(config_.contrast_batch, &rng_);
  std::vector<int32_t> shuffled = batch_users;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng_.UniformInt(i)]);
  }
  Var hb = ag::GatherRows(g_users, batch_users);
  Var hneg = ag::GatherRows(g_users, shuffled);
  // Readout as constant direction (stop-grad keeps the objective stable).
  Matrix readout(1, config_.dim);
  const Matrix& gu = g_users.value();
  for (int64_t r = 0; r < gu.rows(); ++r) {
    for (int64_t c = 0; c < gu.cols(); ++c) readout[c] += gu.at(r, c);
  }
  for (int64_t c = 0; c < readout.size(); ++c) {
    readout[c] /= static_cast<float>(gu.rows());
  }
  Matrix readout_rows(hb.rows(), config_.dim);
  for (int64_t r = 0; r < readout_rows.rows(); ++r) {
    std::copy(readout.data(), readout.data() + config_.dim,
              readout_rows.row(r));
  }
  Var s = ag::Constant(tape, std::move(readout_rows));
  Var pos_mi = ag::MeanAll(ag::Softplus(ag::Neg(ag::RowDot(hb, s))));
  Var neg_mi = ag::MeanAll(ag::Softplus(ag::RowDot(hneg, s)));
  Var ssl = ag::Add(pos_mi, neg_mi);
  return ag::Add(loss, ag::Scale(ssl, config_.ssl_weight));
}

void Mhcn::ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) {
  Tape tape;
  Var e = ag::Leaf(&tape, embeddings_);
  Var h = LightGcnPropagate(&tape, &adj_.matrix, e, config_.num_layers);
  std::vector<int32_t> all_users(graph_.num_users());
  std::iota(all_users.begin(), all_users.end(), 0);
  Var h_users = ag::GatherRows(h, all_users);
  Var g_users = ag::Spmm(&user_hypergraph_, h_users);
  Var u_mixed = ag::Scale(ag::Add(h_users, g_users), 0.5f);
  *user_emb = u_mixed.value();
  *item_emb = SliceRows(h.value(), graph_.num_users(), graph_.num_items());
}

Stgcn::Stgcn(const Dataset* dataset, const ModelConfig& config)
    : Recommender(dataset, config),
      enc_(&store_, "stgcn_enc", config.dim, config.dim, &rng_),
      decoder_(&store_, "stgcn_dec",
               {config.dim, config.dim, config.dim}, &rng_,
               Activation::kLeakyRelu) {
  adj_ = graph_.BuildNormalizedAdjacency(1.f);
  embeddings_ = store_.CreateNormal("embeddings", graph_.num_nodes(),
                                    config.dim, &rng_);
}

Var Stgcn::Encode(Tape* tape, bool train_mode) {
  Var e = ag::Leaf(tape, embeddings_);
  Var h = e;
  for (int l = 0; l < config_.num_layers; ++l) {
    h = ag::LeakyRelu(enc_.Forward(tape, ag::Spmm(&adj_.matrix, h)),
                      config_.leaky_slope);
    if (train_mode && config_.dropout > 0) {
      h = ag::Dropout(h, config_.dropout, &rng_);
    }
  }
  return h;
}

Var Stgcn::BuildLoss(Tape* tape, const TripletBatch& batch) {
  Var h = Encode(tape, /*train_mode=*/true);
  Var u = ag::GatherRows(h, batch.users);
  Var p = ag::GatherRows(h, ToNodeIds(batch.pos_items));
  Var n = ag::GatherRows(h, ToNodeIds(batch.neg_items));
  Var loss = ag::BprLoss(ag::RowDot(u, p), ag::RowDot(u, n));

  // Reconstruction pretext: decode propagated embeddings back to the
  // (stop-grad) initial id embeddings on a sampled node batch.
  std::vector<int32_t> nodes = sampler_.SampleUsers(config_.contrast_batch,
                                                    &rng_);
  std::vector<int32_t> item_nodes =
      ToNodeIds(sampler_.SampleItems(config_.contrast_batch, &rng_));
  nodes.insert(nodes.end(), item_nodes.begin(), item_nodes.end());
  Var decoded = decoder_.Forward(tape, ag::GatherRows(h, nodes));
  Matrix target = GatherRows(embeddings_->value, nodes);
  Var recon = ag::MeanAll(
      ag::Square(ag::Sub(decoded, ag::Constant(tape, std::move(target)))));
  return ag::Add(loss, ag::Scale(recon, config_.ssl_weight));
}

void Stgcn::ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) {
  Tape tape;
  Var h = Encode(&tape, /*train_mode=*/false);
  const Matrix& m = h.value();
  *user_emb = SliceRows(m, 0, graph_.num_users());
  *item_emb = SliceRows(m, graph_.num_users(), graph_.num_items());
}

}  // namespace graphaug
