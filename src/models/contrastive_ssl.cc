#include "models/contrastive_ssl.h"

#include <numeric>

#include "augment/edgedrop_augmenter.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

/// Mixed user+item node batch for contrastive objectives.
std::vector<int32_t> ContrastNodes(const TripletSampler& sampler,
                                   const BipartiteGraph& graph, int per_side,
                                   Rng* rng) {
  std::vector<int32_t> nodes = sampler.SampleUsers(per_side, rng);
  std::vector<int32_t> items = sampler.SampleItems(per_side, rng);
  for (int32_t v : items) nodes.push_back(v + graph.num_users());
  return nodes;
}

}  // namespace

// --------------------------------------------------------------------- SGL

Sgl::Sgl(const Dataset* dataset, const ModelConfig& config)
    : Recommender(dataset, config) {
  adj_ = graph_.BuildNormalizedAdjacency(0.f);
  embeddings_ = store_.CreateNormal("embeddings", graph_.num_nodes(),
                                    config.dim, &rng_);
  EdgeDropAugmentorConfig drop;
  drop.drop_prob = config_.dropout > 0 ? 0.2f : 0.1f;
  drop.self_loop_weight = 0.f;
  augmenter_ = std::make_unique<EdgeDropAugmenter>(drop);
  AugmenterInit init;
  init.graph = &graph_;
  init.adj = &adj_;
  init.store = &store_;
  init.dim = config.dim;
  init.num_layers = config.num_layers;
  init.rng = &rng_;
  augmenter_->Init(init);
}

void Sgl::OnEpochBegin() { augmenter_->Adapt(epoch_++, &rng_); }

Var Sgl::BuildLoss(Tape* tape, const TripletBatch& batch) {
  Var e = ag::Leaf(tape, embeddings_);
  Var h = LightGcnPropagate(tape, &adj_.matrix, e, config_.num_layers);
  Var u = ag::GatherRows(h, batch.users);
  Var p = ag::GatherRows(h, ToNodeIds(batch.pos_items));
  Var n = ag::GatherRows(h, ToNodeIds(batch.neg_items));
  Var loss = ag::BprLoss(ag::RowDot(u, p), ag::RowDot(u, n));

  AugmenterState state;
  state.tape = tape;
  state.base = e;
  state.h_bar = h;
  state.batch = &batch;
  state.rng = &rng_;
  AugmentedViews views = augmenter_->Augment(state);
  GA_CHECK(views.first.adjacency != nullptr);
  GA_CHECK(views.second.adjacency != nullptr);
  Var ha = LightGcnPropagate(tape, &views.first.adjacency->matrix, e,
                             config_.num_layers);
  Var hb = LightGcnPropagate(tape, &views.second.adjacency->matrix, e,
                             config_.num_layers);
  std::vector<int32_t> nodes =
      ContrastNodes(sampler_, graph_, config_.contrast_batch, &rng_);
  Var ssl = ag::InfoNceLoss(ag::GatherRows(ha, nodes),
                            ag::GatherRows(hb, nodes), config_.temperature);
  return ag::Add(loss, ag::Scale(ssl, config_.ssl_weight));
}

void Sgl::ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) {
  Tape tape;
  Var e = ag::Leaf(&tape, embeddings_);
  Var h = LightGcnPropagate(&tape, &adj_.matrix, e, config_.num_layers);
  *user_emb = SliceRows(h.value(), 0, graph_.num_users());
  *item_emb = SliceRows(h.value(), graph_.num_users(), graph_.num_items());
}

// ------------------------------------------------------------------- SLRec

SlRec::SlRec(const Dataset* dataset, const ModelConfig& config)
    : Recommender(dataset, config) {
  adj_ = graph_.BuildNormalizedAdjacency(0.f);
  embeddings_ = store_.CreateNormal("embeddings", graph_.num_nodes(),
                                    config.dim, &rng_);
}

Var SlRec::BuildLoss(Tape* tape, const TripletBatch& batch) {
  Var e = ag::Leaf(tape, embeddings_);
  Var h = LightGcnPropagate(tape, &adj_.matrix, e, config_.num_layers);
  Var u = ag::GatherRows(h, batch.users);
  Var p = ag::GatherRows(h, ToNodeIds(batch.pos_items));
  Var n = ag::GatherRows(h, ToNodeIds(batch.neg_items));
  Var loss = ag::BprLoss(ag::RowDot(u, p), ag::RowDot(u, n));

  // Feature-level augmentation: two independent feature-dropout masks on
  // the *input* embeddings, propagated through the same graph.
  const float fmask = std::max(0.1f, config_.dropout);
  Var ea = ag::Dropout(e, fmask, &rng_);
  Var eb = ag::Dropout(e, fmask, &rng_);
  Var ha = LightGcnPropagate(tape, &adj_.matrix, ea, config_.num_layers);
  Var hb = LightGcnPropagate(tape, &adj_.matrix, eb, config_.num_layers);
  std::vector<int32_t> nodes =
      ContrastNodes(sampler_, graph_, config_.contrast_batch, &rng_);
  Var ssl = ag::InfoNceLoss(ag::GatherRows(ha, nodes),
                            ag::GatherRows(hb, nodes), config_.temperature);
  return ag::Add(loss, ag::Scale(ssl, config_.ssl_weight));
}

void SlRec::ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) {
  Tape tape;
  Var e = ag::Leaf(&tape, embeddings_);
  Var h = LightGcnPropagate(&tape, &adj_.matrix, e, config_.num_layers);
  *user_emb = SliceRows(h.value(), 0, graph_.num_users());
  *item_emb = SliceRows(h.value(), graph_.num_users(), graph_.num_items());
}

// --------------------------------------------------------------------- NCL

Ncl::Ncl(const Dataset* dataset, const ModelConfig& config)
    : Recommender(dataset, config) {
  adj_ = graph_.BuildNormalizedAdjacency(0.f);
  embeddings_ = store_.CreateNormal("embeddings", graph_.num_nodes(),
                                    config.dim, &rng_);
  // Prototype count scales with the user base but can never exceed the
  // number of points handed to k-means (users or items).
  num_clusters_ = std::max(4, std::min(32, dataset->num_users / 50));
  num_clusters_ = std::min(
      num_clusters_, std::min(dataset->num_users, dataset->num_items));
  num_clusters_ = std::max(1, num_clusters_);
}

void Ncl::OnEpochBegin() {
  // EM prototype refresh every 3 epochs on the *propagated* embeddings.
  if (epoch_++ % 3 == 0) {
    Tape tape;
    Var e = ag::Leaf(&tape, embeddings_);
    Var h = LightGcnPropagate(&tape, &adj_.matrix, e, config_.num_layers);
    Matrix users = SliceRows(h.value(), 0, graph_.num_users());
    Matrix items =
        SliceRows(h.value(), graph_.num_users(), graph_.num_items());
    user_clusters_ = RunKMeans(users, num_clusters_, 8, &rng_);
    item_clusters_ = RunKMeans(items, num_clusters_, 8, &rng_);
  }
}

Var Ncl::BuildLoss(Tape* tape, const TripletBatch& batch) {
  Var e = ag::Leaf(tape, embeddings_);
  std::vector<Var> layers =
      LightGcnLayers(tape, &adj_.matrix, e, std::max(2, config_.num_layers));
  Var h = layers[0];
  for (size_t l = 1; l < layers.size(); ++l) h = ag::Add(h, layers[l]);
  h = ag::Scale(h, 1.f / static_cast<float>(layers.size()));

  Var u = ag::GatherRows(h, batch.users);
  Var p = ag::GatherRows(h, ToNodeIds(batch.pos_items));
  Var n = ag::GatherRows(h, ToNodeIds(batch.neg_items));
  Var loss = ag::BprLoss(ag::RowDot(u, p), ag::RowDot(u, n));

  // (a) Prototype contrast: node embedding vs. its assigned centroid,
  // negatives are the *other centroids* (each centroid once — using other
  // users' centroids would duplicate the positive among the negatives and
  // destroy the objective).
  std::vector<int32_t> users = sampler_.SampleUsers(config_.contrast_batch,
                                                    &rng_);
  std::vector<int32_t> own_centroid(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    own_centroid[i] = user_clusters_.assignment[users[i]];
  }
  Var z = ag::RowL2Normalize(ag::GatherRows(h, users));
  Var centroids =
      ag::RowL2Normalize(ag::Constant(tape, user_clusters_.centroids));
  Var sims = ag::Scale(ag::MatMul(z, centroids, false, true),
                       1.f / config_.temperature);  // batch x k
  Var pos = ag::Scale(
      ag::RowDot(z, ag::GatherRows(centroids, own_centroid)),
      1.f / config_.temperature);
  Var proto_loss = ag::MeanAll(ag::Sub(ag::LogSumExpRows(sims), pos));

  // (b) Structural contrast: layer-0 vs layer-2 (even hop) embeddings.
  std::vector<int32_t> nodes =
      ContrastNodes(sampler_, graph_, config_.contrast_batch, &rng_);
  Var struct_loss =
      ag::InfoNceLoss(ag::GatherRows(layers[0], nodes),
                      ag::GatherRows(layers[2 <= config_.num_layers ? 2 : 1],
                                     nodes),
                      config_.temperature);

  Var ssl = ag::Add(proto_loss, struct_loss);
  // NCL's auxiliary objectives need far smaller weights than view-level
  // contrast (the original paper uses 1e-6-scale regs on summed losses):
  // layer-0-vs-layer-2 and node-vs-centroid gradients are large because
  // the paired views are far apart, so they are damped by 0.05 relative
  // to the shared ssl_weight.
  return ag::Add(loss, ag::Scale(ssl, 0.05f * config_.ssl_weight));
}

void Ncl::ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) {
  Tape tape;
  Var e = ag::Leaf(&tape, embeddings_);
  Var h = LightGcnPropagate(&tape, &adj_.matrix, e, config_.num_layers);
  *user_emb = SliceRows(h.value(), 0, graph_.num_users());
  *item_emb = SliceRows(h.value(), graph_.num_users(), graph_.num_items());
}

// -------------------------------------------------------------------- HCCF

Hccf::Hccf(const Dataset* dataset, const ModelConfig& config)
    : Recommender(dataset, config) {
  adj_ = graph_.BuildNormalizedAdjacency(0.f);
  embeddings_ = store_.CreateNormal("embeddings", graph_.num_nodes(),
                                    config.dim, &rng_);
  num_hyperedges_ = std::max(8, config.dim / 2);
  hyper_basis_ = store_.CreateNormal("hyper_basis", config.dim,
                                     num_hyperedges_, &rng_);
}

std::pair<Var, Var> Hccf::EncodeBoth(Tape* tape) {
  Var e = ag::Leaf(tape, embeddings_);
  Var local = LightGcnPropagate(tape, &adj_.matrix, e, config_.num_layers);
  // Global channel: node -> hyperedge -> node, through the learnable basis.
  Var basis = ag::Leaf(tape, hyper_basis_);
  Var hyper = ag::LeakyRelu(ag::MatMul(e, basis), config_.leaky_slope);
  Var global = ag::MatMul(hyper, basis, false, true);
  return {local, global};
}

Var Hccf::BuildLoss(Tape* tape, const TripletBatch& batch) {
  auto [local, global] = EncodeBoth(tape);
  Var fused = ag::Scale(ag::Add(local, global), 0.5f);
  Var u = ag::GatherRows(fused, batch.users);
  Var p = ag::GatherRows(fused, ToNodeIds(batch.pos_items));
  Var n = ag::GatherRows(fused, ToNodeIds(batch.neg_items));
  Var loss = ag::BprLoss(ag::RowDot(u, p), ag::RowDot(u, n));

  // Local-global embedding contrast per node.
  std::vector<int32_t> nodes =
      ContrastNodes(sampler_, graph_, config_.contrast_batch, &rng_);
  Var ssl = ag::InfoNceLoss(ag::GatherRows(local, nodes),
                            ag::GatherRows(global, nodes),
                            config_.temperature);
  return ag::Add(loss, ag::Scale(ssl, config_.ssl_weight));
}

void Hccf::ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) {
  Tape tape;
  auto [local, global] = EncodeBoth(&tape);
  Var fused = ag::Scale(ag::Add(local, global), 0.5f);
  *user_emb = SliceRows(fused.value(), 0, graph_.num_users());
  *item_emb =
      SliceRows(fused.value(), graph_.num_users(), graph_.num_items());
}

// --------------------------------------------------------------------- CGI

Cgi::Cgi(const Dataset* dataset, const ModelConfig& config)
    : Recommender(dataset, config) {
  adj_ = graph_.BuildNormalizedAdjacency(0.f);
  embeddings_ = store_.CreateNormal("embeddings", graph_.num_nodes(),
                                    config.dim, &rng_);
  edge_logits_ = store_.Create("edge_logits", graph_.num_edges(), 1);
  // Start slightly positive: most edges kept.
  edge_logits_->value.Fill(1.0f);
}

Var Cgi::BuildLoss(Tape* tape, const TripletBatch& batch) {
  Var e = ag::Leaf(tape, embeddings_);
  Var h = LightGcnPropagate(tape, &adj_.matrix, e, config_.num_layers);
  Var u = ag::GatherRows(h, batch.users);
  Var p = ag::GatherRows(h, ToNodeIds(batch.pos_items));
  Var n = ag::GatherRows(h, ToNodeIds(batch.neg_items));
  Var loss = ag::BprLoss(ag::RowDot(u, p), ag::RowDot(u, n));

  // Learnable cleaned view: sigmoid edge retention weights.
  Var keep = ag::Sigmoid(ag::Leaf(tape, edge_logits_));
  Var hv = WeightedLightGcnPropagate(tape, &adj_, keep, e,
                                     config_.num_layers);
  std::vector<int32_t> nodes =
      ContrastNodes(sampler_, graph_, config_.contrast_batch, &rng_);
  Var ssl = ag::InfoNceLoss(ag::GatherRows(h, nodes),
                            ag::GatherRows(hv, nodes), config_.temperature);
  // Information regularization: push average retention down so the view is
  // a compressed version of the graph.
  Var sparsity = ag::MeanAll(keep);
  loss = ag::Add(loss, ag::Scale(ssl, config_.ssl_weight));
  return ag::Add(loss, ag::Scale(sparsity, 0.05f));
}

void Cgi::ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) {
  Tape tape;
  Var e = ag::Leaf(&tape, embeddings_);
  Var h = LightGcnPropagate(&tape, &adj_.matrix, e, config_.num_layers);
  *user_emb = SliceRows(h.value(), 0, graph_.num_users());
  *item_emb = SliceRows(h.value(), graph_.num_users(), graph_.num_items());
}

}  // namespace graphaug
