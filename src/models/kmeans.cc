#include "models/kmeans.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace graphaug {
namespace {

double SquaredDistance(const Matrix& points, int64_t row,
                       const Matrix& centroids, int64_t c) {
  const float* p = points.row(row);
  const float* q = centroids.row(c);
  double s = 0;
  for (int64_t i = 0; i < points.cols(); ++i) {
    const double d = static_cast<double>(p[i]) - q[i];
    s += d * d;
  }
  return s;
}

}  // namespace

KMeansResult RunKMeans(const Matrix& points, int k, int iterations, Rng* rng) {
  GA_CHECK_GE(points.rows(), k);
  GA_CHECK_GT(k, 0);
  const int64_t n = points.rows();
  const int64_t d = points.cols();

  KMeansResult res;
  res.centroids = Matrix(k, d);
  res.assignment.assign(n, 0);

  // k-means++ seeding.
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  int64_t first = static_cast<int64_t>(rng->UniformInt(n));
  std::copy(points.row(first), points.row(first) + d, res.centroids.row(0));
  for (int c = 1; c < k; ++c) {
    double total = 0;
    for (int64_t i = 0; i < n; ++i) {
      min_dist[i] = std::min(min_dist[i],
                             SquaredDistance(points, i, res.centroids, c - 1));
      total += min_dist[i];
    }
    double target = rng->Uniform() * total;
    int64_t chosen = n - 1;
    for (int64_t i = 0; i < n; ++i) {
      target -= min_dist[i];
      if (target <= 0) {
        chosen = i;
        break;
      }
    }
    std::copy(points.row(chosen), points.row(chosen) + d,
              res.centroids.row(c));
  }

  // Lloyd iterations.
  std::vector<int64_t> counts(k);
  for (int it = 0; it < iterations; ++it) {
    bool changed = false;
    for (int64_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      int32_t best_c = 0;
      for (int c = 0; c < k; ++c) {
        const double dist = SquaredDistance(points, i, res.centroids, c);
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      if (res.assignment[i] != best_c) {
        res.assignment[i] = best_c;
        changed = true;
      }
    }
    res.centroids.Zero();
    std::fill(counts.begin(), counts.end(), 0);
    for (int64_t i = 0; i < n; ++i) {
      const int32_t c = res.assignment[i];
      counts[c]++;
      const float* p = points.row(i);
      float* q = res.centroids.row(c);
      for (int64_t j = 0; j < d; ++j) q[j] += p[j];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty cluster at a random point.
        const int64_t r = static_cast<int64_t>(rng->UniformInt(n));
        std::copy(points.row(r), points.row(r) + d, res.centroids.row(c));
        continue;
      }
      float* q = res.centroids.row(c);
      for (int64_t j = 0; j < d; ++j) q[j] /= static_cast<float>(counts[c]);
    }
    if (!changed) break;
  }
  return res;
}

}  // namespace graphaug
