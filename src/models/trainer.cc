#include "models/trainer.h"

#include <cmath>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/obs.h"

namespace graphaug {

TrainResult TrainAndEvaluate(Recommender* model, const Evaluator& evaluator,
                             const TrainOptions& options) {
  GA_CHECK(model != nullptr);
  TrainResult result;
  Stopwatch total;
  int evals_without_improvement = 0;

  auto scorer = [model](const std::vector<int32_t>& users) {
    return model->ScoreUsers(users);
  };

  for (int epoch = 1; epoch <= options.epochs; ++epoch) {
    const double loss = model->TrainEpoch();
    if (obs::Enabled()) {
      const obs::EpochHealth h = obs::HealthTracker::Get().EndEpoch(
          epoch, std::sqrt(model->params()->SquaredParamNorm()), loss);
      obs::MetricsRegistry::Get().GetGauge("train.grad_norm")->Set(h.grad_norm);
      obs::MetricsRegistry::Get()
          .GetGauge("train.param_norm")
          ->Set(h.param_norm);
    }
    model->DecayLearningRate();
    const bool eval_now = (options.eval_every > 0 &&
                           epoch % options.eval_every == 0) ||
                          epoch == options.epochs;
    if (!eval_now) continue;

    model->Finalize();
    TopKMetrics metrics = evaluator.Evaluate(scorer);
    EpochRecord rec;
    rec.epoch = epoch;
    rec.loss = loss;
    rec.recall20 = metrics.RecallAt(20);
    rec.ndcg20 = metrics.NdcgAt(20);
    rec.elapsed_seconds = total.ElapsedSeconds();
    result.history.push_back(rec);
    if (options.verbose) {
      GA_LOG(Info) << model->name() << " epoch " << epoch << " loss " << loss
                   << " recall@20 " << rec.recall20 << " ndcg@20 "
                   << rec.ndcg20;
    }
    if (rec.recall20 > result.best_recall20) {
      result.best_recall20 = rec.recall20;
      result.best_epoch = epoch;
      result.final_metrics = metrics;
      evals_without_improvement = 0;
    } else {
      ++evals_without_improvement;
      if (options.patience > 0 &&
          evals_without_improvement >= options.patience) {
        break;
      }
    }
  }
  result.train_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace graphaug
