#include "models/trainer.h"

#include <cmath>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/obs.h"

namespace graphaug {

TrainResult TrainAndEvaluate(Recommender* model, const Evaluator& evaluator,
                             const TrainOptions& options) {
  GA_CHECK(model != nullptr);
  TrainResult result;
  Stopwatch total;
  int evals_without_improvement = 0;

  auto scorer = [model](const std::vector<int32_t>& users) {
    return model->ScoreUsers(users);
  };

  // Profile exactly the training loop (epochs + evals), not setup or
  // teardown, so sample shares line up with the epoch/eval spans. An
  // already-running session (e.g. a caller profiling a wider scope) is
  // left untouched and keeps sampling through the loop.
  const bool profiling =
      options.profile_hz > 0 && !obs::ProfilerRunning() &&
      obs::StartProfiler(options.profile_hz);

  for (int epoch = 1; epoch <= options.epochs; ++epoch) {
    Stopwatch epoch_watch;
    double loss = 0;
    {
      GA_PERF_REGION("epoch");
      loss = model->TrainEpoch();
    }
    const double epoch_seconds = epoch_watch.ElapsedSeconds();
    obs::EpochHealth health;
    if (obs::Enabled()) {
      health = obs::HealthTracker::Get().EndEpoch(
          epoch, std::sqrt(model->params()->SquaredParamNorm()), loss);
      obs::MetricsRegistry::Get()
          .GetGauge("train.grad_norm")
          ->Set(health.grad_norm);
      obs::MetricsRegistry::Get()
          .GetGauge("train.param_norm")
          ->Set(health.param_norm);
    }
    model->DecayLearningRate();
    const bool eval_now = (options.eval_every > 0 &&
                           epoch % options.eval_every == 0) ||
                          epoch == options.epochs;
    bool stop_early = false;
    obs::ReportEpoch report_rec;
    report_rec.epoch = epoch;
    report_rec.loss = loss;
    report_rec.loss_components = health.loss_components;
    report_rec.grad_norm = health.grad_norm;
    report_rec.param_norm = health.param_norm;
    report_rec.nonfinite = health.nonfinite_grads + health.nonfinite_losses;
    report_rec.epoch_seconds = epoch_seconds;
    if (eval_now) {
      model->Finalize();
      TopKMetrics metrics;
      {
        GA_PERF_REGION("eval");
        metrics = evaluator.Evaluate(scorer);
      }
      EpochRecord rec;
      rec.epoch = epoch;
      rec.loss = loss;
      rec.recall20 = metrics.RecallAt(20);
      rec.ndcg20 = metrics.NdcgAt(20);
      rec.elapsed_seconds = total.ElapsedSeconds();
      result.history.push_back(rec);
      report_rec.evaluated = true;
      report_rec.recall20 = rec.recall20;
      report_rec.ndcg20 = rec.ndcg20;
      if (options.verbose) {
        GA_LOG(Info) << model->name() << " epoch " << epoch << " loss " << loss
                     << " recall@20 " << rec.recall20 << " ndcg@20 "
                     << rec.ndcg20;
      }
      if (rec.recall20 > result.best_recall20) {
        result.best_recall20 = rec.recall20;
        result.best_epoch = epoch;
        result.final_metrics = metrics;
        evals_without_improvement = 0;
      } else {
        ++evals_without_improvement;
        stop_early = options.patience > 0 &&
                     evals_without_improvement >= options.patience;
      }
    }
    if (options.report != nullptr && options.report->is_open()) {
      report_rec.elapsed_seconds = total.ElapsedSeconds();
      report_rec.live_bytes = obs::LiveBytes();
      report_rec.peak_bytes = obs::PeakBytes();
      report_rec.rss_bytes = obs::CurrentRssBytes();
      options.report->WriteEpoch(report_rec);
    }
    if (stop_early) break;
  }
  if (profiling) obs::StopProfiler();
  result.train_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace graphaug
