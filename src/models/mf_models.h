#ifndef GRAPHAUG_MODELS_MF_MODELS_H_
#define GRAPHAUG_MODELS_MF_MODELS_H_

#include "models/recommender.h"
#include "nn/layers.h"

namespace graphaug {

/// BiasMF (Koren et al., 2009): matrix factorization with user/item bias
/// terms, trained with the BPR pairwise objective.
///   ŷ(u,v) = p_u · q_v + b_u + b_v
class BiasMf : public Recommender {
 public:
  BiasMf(const Dataset* dataset, const ModelConfig& config);

  std::string name() const override { return "BiasMF"; }
  Matrix ScoreUsers(const std::vector<int32_t>& users) const override;
  /// Bias terms make the score more than a dot product.
  bool factored_scoring() const override { return false; }

 protected:
  Var BuildLoss(Tape* tape, const TripletBatch& batch) override;
  void ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) override;

 private:
  Parameter* user_factors_;
  Parameter* item_factors_;
  Parameter* user_bias_;
  Parameter* item_bias_;
};

/// NCF / NeuMF (He et al., 2017): fuses a generalized matrix factorization
/// branch with an MLP branch over concatenated embeddings; captures
/// non-linear user-item feature interactions.
///   ŷ(u,v) = w_g · (p_u ⊙ q_v) + MLP([p'_u ‖ q'_v])
class Ncf : public Recommender {
 public:
  Ncf(const Dataset* dataset, const ModelConfig& config);

  std::string name() const override { return "NCF"; }
  Matrix ScoreUsers(const std::vector<int32_t>& users) const override;
  bool factored_scoring() const override { return false; }

 protected:
  Var BuildLoss(Tape* tape, const TripletBatch& batch) override;
  void ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) override;

 private:
  /// Scores explicit (user, item) id pairs on a tape.
  Var ScorePairs(Tape* tape, const std::vector<int32_t>& users,
                 const std::vector<int32_t>& items);

  Parameter* gmf_user_;
  Parameter* gmf_item_;
  Parameter* mlp_user_;
  Parameter* mlp_item_;
  Parameter* gmf_out_;  // 1 x d weights for the GMF branch
  Mlp mlp_;
};

}  // namespace graphaug

#endif  // GRAPHAUG_MODELS_MF_MODELS_H_
