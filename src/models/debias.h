#ifndef GRAPHAUG_MODELS_DEBIAS_H_
#define GRAPHAUG_MODELS_DEBIAS_H_

#include "autograd/ops.h"
#include "data/sampler.h"
#include "graph/bipartite_graph.h"

namespace graphaug {

/// Popularity-debiasing extension (the paper's §VI future work on
/// *unbiased SSL*): inverse-propensity-scored training that reweights the
/// BPR objective so popular items do not dominate the gradient signal.
///
/// Propensity model: observing an interaction with item v is assumed
/// proportional to its popularity,
///   ρ_v = max(clip, (deg_v / max_deg)^γ),
/// the standard power-law propensity of Saito et al.'s unbiased
/// recommender learning. γ controls the debiasing strength (0 = off).

/// Per-item propensities as a (J x 1) matrix.
Matrix ItemPropensities(const BipartiteGraph& graph, double gamma,
                        double clip_min = 0.05);

/// IPS-weighted BPR: Σ_i w_i softplus(s⁻_i − s⁺_i) / Σ_i w_i with
/// w_i = 1/ρ(pos_item_i). `propensities` is the (J x 1) table from
/// ItemPropensities; weights are treated as constants (no gradient).
Var IpsBprLoss(Tape* tape, Var pos_scores, Var neg_scores,
               const std::vector<int32_t>& pos_items,
               const Matrix& propensities);

/// Self-normalized IPS weights for a batch ((n x 1), mean 1). Exposed for
/// models that want to reweight auxiliary losses the same way.
Matrix BatchIpsWeights(const std::vector<int32_t>& pos_items,
                       const Matrix& propensities);

}  // namespace graphaug

#endif  // GRAPHAUG_MODELS_DEBIAS_H_
