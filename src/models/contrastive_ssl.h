#ifndef GRAPHAUG_MODELS_CONTRASTIVE_SSL_H_
#define GRAPHAUG_MODELS_CONTRASTIVE_SSL_H_

#include <memory>

#include "augment/augmenter.h"
#include "models/kmeans.h"
#include "models/propagation.h"
#include "models/recommender.h"

namespace graphaug {

/// SGL (Wu et al., 2021): LightGCN backbone with two stochastic
/// structure-corrupted views (edge dropout, resampled each epoch) aligned
/// by InfoNCE on users and items, jointly trained with BPR. The view
/// corruption is delegated to an EdgeDropAugmenter behind the shared
/// GraphAugmenter interface; the epoch-wise resampling draw order matches
/// the pre-interface implementation bitwise.
class Sgl : public Recommender {
 public:
  Sgl(const Dataset* dataset, const ModelConfig& config);

  std::string name() const override { return "SGL"; }

 protected:
  Var BuildLoss(Tape* tape, const TripletBatch& batch) override;
  void ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) override;
  void OnEpochBegin() override;

 private:
  NormalizedAdjacency adj_;
  std::unique_ptr<GraphAugmenter> augmenter_;
  Parameter* embeddings_;
  int epoch_ = 0;
};

/// SLRec (Yao et al., 2021): contrastive SSL with *feature-level*
/// corruption — two views of the same nodes are produced by independent
/// embedding-feature dropout masks, aligned with InfoNCE.
class SlRec : public Recommender {
 public:
  SlRec(const Dataset* dataset, const ModelConfig& config);

  std::string name() const override { return "SLRec"; }

 protected:
  Var BuildLoss(Tape* tape, const TripletBatch& batch) override;
  void ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) override;

 private:
  NormalizedAdjacency adj_;
  Parameter* embeddings_;
};

/// NCL (Lin et al., 2022): LightGCN with neighborhood-enriched contrast —
/// (a) prototype contrast against k-means cluster centroids refreshed by
/// an EM step every few epochs, and (b) structural contrast between
/// layer-0 and even-hop propagated embeddings.
class Ncl : public Recommender {
 public:
  Ncl(const Dataset* dataset, const ModelConfig& config);

  std::string name() const override { return "NCL"; }

 protected:
  Var BuildLoss(Tape* tape, const TripletBatch& batch) override;
  void ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) override;
  void OnEpochBegin() override;

 private:
  NormalizedAdjacency adj_;
  Parameter* embeddings_;
  int num_clusters_;
  int epoch_ = 0;
  KMeansResult user_clusters_;
  KMeansResult item_clusters_;
};

/// HCCF (Xia et al., 2022): local GCN embeddings are contrasted with
/// global embeddings produced through a learnable hyperedge basis
/// (E → hyperedges → E), giving each node a global view.
class Hccf : public Recommender {
 public:
  Hccf(const Dataset* dataset, const ModelConfig& config);

  std::string name() const override { return "HCCF"; }

 protected:
  Var BuildLoss(Tape* tape, const TripletBatch& batch) override;
  void ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) override;

 private:
  /// Returns {local, global} encodings of all nodes.
  std::pair<Var, Var> EncodeBoth(Tape* tape);

  NormalizedAdjacency adj_;
  Parameter* embeddings_;
  Parameter* hyper_basis_;  ///< d x num_hyperedges
  int num_hyperedges_;
};

/// CGI (contrastive graph learning with learnable dropping): a learnable
/// per-edge retention probability generates a cleaned view contrasted with
/// the full graph; an information-regularization term pushes retention
/// toward sparsity so the view compresses the structure. (Simplified
/// information-bottleneck contrastive baseline.)
class Cgi : public Recommender {
 public:
  Cgi(const Dataset* dataset, const ModelConfig& config);

  std::string name() const override { return "CGI"; }

 protected:
  Var BuildLoss(Tape* tape, const TripletBatch& batch) override;
  void ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) override;

 private:
  NormalizedAdjacency adj_;
  Parameter* embeddings_;
  Parameter* edge_logits_;  ///< one logit per interaction
};

}  // namespace graphaug

#endif  // GRAPHAUG_MODELS_CONTRASTIVE_SSL_H_
