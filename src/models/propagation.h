#ifndef GRAPHAUG_MODELS_PROPAGATION_H_
#define GRAPHAUG_MODELS_PROPAGATION_H_

#include "autograd/ops.h"

namespace graphaug {

/// LightGCN-style propagation: iterates h^{l+1} = Ã h^l for `layers`
/// steps and returns the mean of all layer embeddings (including layer 0).
/// The workhorse encoder shared by LightGCN, SGL, NCL, and the contrastive
/// baselines.
Var LightGcnPropagate(Tape* tape, const CsrMatrix* adj, Var base, int layers);

/// Same propagation but also returns each intermediate layer (index 0 is
/// the base embedding); used by NCL's structural-neighbor contrast.
std::vector<Var> LightGcnLayers(Tape* tape, const CsrMatrix* adj, Var base,
                                int layers);

/// LightGCN propagation over a differentiable edge-weighted adjacency
/// (shared by CGI and GraphAug's ablation variants).
Var WeightedLightGcnPropagate(Tape* tape, const NormalizedAdjacency* adj,
                              Var edge_weights, Var base, int layers);

}  // namespace graphaug

#endif  // GRAPHAUG_MODELS_PROPAGATION_H_
