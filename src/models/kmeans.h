#ifndef GRAPHAUG_MODELS_KMEANS_H_
#define GRAPHAUG_MODELS_KMEANS_H_

#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace graphaug {

/// Result of Lloyd's k-means over embedding rows.
struct KMeansResult {
  Matrix centroids;                 ///< k x d
  std::vector<int32_t> assignment;  ///< per row, in [0, k)
};

/// Runs k-means (k-means++ seeding, Lloyd iterations) on the rows of
/// `points`. NCL's EM prototype step uses this every few epochs.
KMeansResult RunKMeans(const Matrix& points, int k, int iterations, Rng* rng);

}  // namespace graphaug

#endif  // GRAPHAUG_MODELS_KMEANS_H_
