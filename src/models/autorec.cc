#include "models/autorec.h"

#include <algorithm>

#include "tensor/ops.h"

namespace graphaug {

AutoRec::AutoRec(const Dataset* dataset, const ModelConfig& config)
    : Recommender(dataset, config),
      encoder_(&store_, "autorec_enc", dataset->num_items,
               std::max(8, config.dim), &rng_),
      decoder_(&store_, "autorec_dec", std::max(8, config.dim),
               dataset->num_items, &rng_) {}

Matrix AutoRec::InteractionRows(const std::vector<int32_t>& users) const {
  Matrix rows(static_cast<int64_t>(users.size()), dataset_->num_items);
  for (size_t i = 0; i < users.size(); ++i) {
    for (int32_t v : graph_.ItemsOf(users[i])) {
      rows.at(static_cast<int64_t>(i), v) = 1.f;
    }
  }
  return rows;
}

Var AutoRec::Reconstruct(Tape* tape, const std::vector<int32_t>& users) const {
  Var input = ag::Constant(tape, InteractionRows(users));
  Var hidden = ag::Sigmoid(encoder_.Forward(tape, input));
  return decoder_.Forward(tape, hidden);
}

Var AutoRec::BuildLoss(Tape* tape, const TripletBatch& batch) {
  // Distinct users from the batch.
  std::vector<int32_t> users = batch.users;
  std::sort(users.begin(), users.end());
  users.erase(std::unique(users.begin(), users.end()), users.end());
  // Cap per-batch users: AutoRec touches J columns per user.
  if (users.size() > 256) users.resize(256);

  Matrix target = InteractionRows(users);
  // Observed-entry mask plus a sampled subset of negatives (mask weight 1
  // on observed, 0.2 on a random 10% of the rest) so the decoder learns to
  // rank rather than reconstruct all-zeros.
  Matrix mask(target.rows(), target.cols());
  for (int64_t i = 0; i < target.size(); ++i) {
    if (target[i] > 0.5f) {
      mask[i] = 1.f;
    } else if (rng_.Bernoulli(0.1)) {
      mask[i] = 0.2f;
    }
  }
  Var recon = Reconstruct(tape, users);
  Var diff = ag::Sub(recon, ag::Constant(tape, std::move(target)));
  Var masked = ag::Mul(ag::Square(diff), ag::Constant(tape, std::move(mask)));
  return ag::MeanAll(masked);
}

void AutoRec::ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) {
  // Hidden codes act as user embeddings; decoder columns as item
  // embeddings (only used for MAD-style diagnostics — ranking goes through
  // the overridden ScoreUsers).
  std::vector<int32_t> all_users(dataset_->num_users);
  for (int32_t u = 0; u < dataset_->num_users; ++u) all_users[u] = u;
  Tape tape;
  Var input = ag::Constant(&tape, InteractionRows(all_users));
  Var hidden = ag::Sigmoid(encoder_.Forward(&tape, input));
  *user_emb = hidden.value();
  *item_emb = Transpose(decoder_.weight()->value);
}

Matrix AutoRec::ScoreUsers(const std::vector<int32_t>& users) const {
  Tape tape;
  Var recon = Reconstruct(&tape, users);
  return recon.value();
}

}  // namespace graphaug
