#include "models/propagation.h"

namespace graphaug {

Var LightGcnPropagate(Tape* tape, const CsrMatrix* adj, Var base, int layers) {
  Var sum = base;
  Var h = base;
  for (int l = 0; l < layers; ++l) {
    h = ag::Spmm(adj, h);
    sum = ag::Add(sum, h);
  }
  return ag::Scale(sum, 1.f / static_cast<float>(layers + 1));
}

std::vector<Var> LightGcnLayers(Tape* tape, const CsrMatrix* adj, Var base,
                                int layers) {
  std::vector<Var> out;
  out.reserve(layers + 1);
  out.push_back(base);
  Var h = base;
  for (int l = 0; l < layers; ++l) {
    h = ag::Spmm(adj, h);
    out.push_back(h);
  }
  return out;
}

Var WeightedLightGcnPropagate(Tape* tape, const NormalizedAdjacency* adj,
                              Var edge_weights, Var base, int layers) {
  Var sum = base;
  Var h = base;
  for (int l = 0; l < layers; ++l) {
    h = ag::EdgeWeightedSpmm(adj, edge_weights, h);
    sum = ag::Add(sum, h);
  }
  return ag::Scale(sum, 1.f / static_cast<float>(layers + 1));
}

}  // namespace graphaug
