#ifndef GRAPHAUG_MODELS_GNN_MODELS_H_
#define GRAPHAUG_MODELS_GNN_MODELS_H_

#include "models/propagation.h"
#include "models/recommender.h"
#include "nn/layers.h"

namespace graphaug {

/// Message-passing architectures of the GNN-CF baseline family. One
/// configurable class covers the five paper baselines that differ only in
/// their propagation rule:
///  - kGcmc     (Berg et al.):   1 transformed + activated GCN layer
///  - kPinSage  (Ying et al.):   sampled-neighborhood aggregation with
///                               transforms and ReLU (edge dropout
///                               resampled each epoch approximates the
///                               production neighbor sampler)
///  - kNgcf     (Wang et al.):   transformed propagation with the
///                               elementwise interaction term
///  - kLightGcn (He et al.):     transform-free propagation, mean of layers
///  - kGccf     (Chen et al.):   linear residual propagation (no
///                               nonlinearity)
enum class GnnStyle { kGcmc, kPinSage, kNgcf, kLightGcn, kGccf };

/// Name string used in result tables.
const char* GnnStyleName(GnnStyle style);

class GnnRecommender : public Recommender {
 public:
  GnnRecommender(const Dataset* dataset, const ModelConfig& config,
                 GnnStyle style);

  std::string name() const override { return GnnStyleName(style_); }

 protected:
  Var BuildLoss(Tape* tape, const TripletBatch& batch) override;
  void ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) override;
  void OnEpochBegin() override;

  /// Encodes all I+J nodes. `train_mode` enables PinSage's per-epoch
  /// sampled adjacency; inference always uses the full graph.
  Var Encode(Tape* tape, bool train_mode);

 private:
  GnnStyle style_;
  NormalizedAdjacency adj_;        ///< with self-loops (transform styles)
  NormalizedAdjacency adj_plain_;  ///< without self-loops (LightGCN)
  NormalizedAdjacency epoch_adj_;  ///< PinSage per-epoch sampled graph
  BipartiteGraph epoch_graph_;
  Parameter* embeddings_;
  std::vector<Linear> w1_;
  std::vector<Linear> w2_;  ///< NGCF interaction transforms
};

}  // namespace graphaug

#endif  // GRAPHAUG_MODELS_GNN_MODELS_H_
