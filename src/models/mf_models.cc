#include "models/mf_models.h"

#include "tensor/ops.h"

namespace graphaug {

BiasMf::BiasMf(const Dataset* dataset, const ModelConfig& config)
    : Recommender(dataset, config) {
  user_factors_ = store_.CreateNormal("user_factors", dataset->num_users,
                                      config.dim, &rng_);
  item_factors_ = store_.CreateNormal("item_factors", dataset->num_items,
                                      config.dim, &rng_);
  user_bias_ = store_.Create("user_bias", dataset->num_users, 1);
  item_bias_ = store_.Create("item_bias", dataset->num_items, 1);
}

Var BiasMf::BuildLoss(Tape* tape, const TripletBatch& batch) {
  Var p = ag::GatherRows(ag::Leaf(tape, user_factors_), batch.users);
  Var qp = ag::GatherRows(ag::Leaf(tape, item_factors_), batch.pos_items);
  Var qn = ag::GatherRows(ag::Leaf(tape, item_factors_), batch.neg_items);
  Var bu = ag::GatherRows(ag::Leaf(tape, user_bias_), batch.users);
  Var bp = ag::GatherRows(ag::Leaf(tape, item_bias_), batch.pos_items);
  Var bn = ag::GatherRows(ag::Leaf(tape, item_bias_), batch.neg_items);
  Var pos = ag::Add(ag::Add(ag::RowDot(p, qp), bu), bp);
  Var neg = ag::Add(ag::Add(ag::RowDot(p, qn), bu), bn);
  return ag::BprLoss(pos, neg);
}

void BiasMf::ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) {
  *user_emb = user_factors_->value;
  *item_emb = item_factors_->value;
}

Matrix BiasMf::ScoreUsers(const std::vector<int32_t>& users) const {
  Matrix batch = GatherRows(user_factors_->value, users);
  Matrix scores;
  Gemm(batch, false, item_factors_->value, true, 1.f, 0.f, &scores);
  for (size_t i = 0; i < users.size(); ++i) {
    const float bu = user_bias_->value[users[i]];
    float* row = scores.row(static_cast<int64_t>(i));
    for (int64_t v = 0; v < scores.cols(); ++v) {
      row[v] += bu + item_bias_->value[v];
    }
  }
  return scores;
}

namespace {

std::vector<int64_t> NcfMlpDims(int dim) {
  // [2d -> d -> d/2 -> 1]
  return {2 * static_cast<int64_t>(dim), dim, std::max(2, dim / 2), 1};
}

}  // namespace

Ncf::Ncf(const Dataset* dataset, const ModelConfig& config)
    : Recommender(dataset, config),
      gmf_user_(store_.CreateNormal("gmf_user", dataset->num_users,
                                    config.dim, &rng_)),
      gmf_item_(store_.CreateNormal("gmf_item", dataset->num_items,
                                    config.dim, &rng_)),
      mlp_user_(store_.CreateNormal("mlp_user", dataset->num_users,
                                    config.dim, &rng_)),
      mlp_item_(store_.CreateNormal("mlp_item", dataset->num_items,
                                    config.dim, &rng_)),
      gmf_out_(store_.CreateNormal("gmf_out", 1, config.dim, &rng_, 0.1f)),
      mlp_(&store_, "ncf_mlp", NcfMlpDims(config.dim), &rng_,
           Activation::kRelu) {}

Var Ncf::ScorePairs(Tape* tape, const std::vector<int32_t>& users,
                    const std::vector<int32_t>& items) {
  Var pu = ag::GatherRows(ag::Leaf(tape, gmf_user_), users);
  Var qv = ag::GatherRows(ag::Leaf(tape, gmf_item_), items);
  Var gmf = ag::Mul(pu, qv);
  // GMF scalar: (p ⊙ q) · w, via row-broadcast multiply + row sum.
  Var gmf_score = ag::RowSum(ag::MulRowBroadcast(gmf, ag::Leaf(tape, gmf_out_)));
  Var mu = ag::GatherRows(ag::Leaf(tape, mlp_user_), users);
  Var mv = ag::GatherRows(ag::Leaf(tape, mlp_item_), items);
  Var mlp_score = mlp_.Forward(tape, ag::ConcatCols(mu, mv));
  return ag::Add(gmf_score, mlp_score);
}

Var Ncf::BuildLoss(Tape* tape, const TripletBatch& batch) {
  Var pos = ScorePairs(tape, batch.users, batch.pos_items);
  Var neg = ScorePairs(tape, batch.users, batch.neg_items);
  return ag::BprLoss(pos, neg);
}

void Ncf::ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) {
  *user_emb = gmf_user_->value;
  *item_emb = gmf_item_->value;
}

Matrix Ncf::ScoreUsers(const std::vector<int32_t>& users) const {
  // Score every item for each user through the full two-branch network.
  const int32_t num_items = dataset_->num_items;
  Matrix out(static_cast<int64_t>(users.size()), num_items);
  std::vector<int32_t> item_ids(num_items);
  for (int32_t v = 0; v < num_items; ++v) item_ids[v] = v;
  for (size_t i = 0; i < users.size(); ++i) {
    std::vector<int32_t> user_rep(num_items, users[i]);
    Tape tape;
    Var scores = const_cast<Ncf*>(this)->ScorePairs(&tape, user_rep, item_ids);
    const Matrix& s = scores.value();
    for (int32_t v = 0; v < num_items; ++v) {
      out.at(static_cast<int64_t>(i), v) = s[v];
    }
  }
  return out;
}

}  // namespace graphaug
