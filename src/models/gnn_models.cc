#include "models/gnn_models.h"

#include <algorithm>

#include "graph/corruption.h"
#include "tensor/ops.h"

namespace graphaug {

const char* GnnStyleName(GnnStyle style) {
  switch (style) {
    case GnnStyle::kGcmc:
      return "GCMC";
    case GnnStyle::kPinSage:
      return "PinSage";
    case GnnStyle::kNgcf:
      return "NGCF";
    case GnnStyle::kLightGcn:
      return "LightGCN";
    case GnnStyle::kGccf:
      return "GCCF";
  }
  return "GNN";
}

GnnRecommender::GnnRecommender(const Dataset* dataset,
                               const ModelConfig& config, GnnStyle style)
    : Recommender(dataset, config), style_(style) {
  adj_ = graph_.BuildNormalizedAdjacency(1.f);
  adj_plain_ = graph_.BuildNormalizedAdjacency(0.f);
  embeddings_ = store_.CreateNormal("embeddings", graph_.num_nodes(),
                                    config.dim, &rng_);
  const int layers =
      style == GnnStyle::kGcmc ? 1 : std::max(1, config.num_layers);
  const bool needs_w = style == GnnStyle::kGcmc ||
                       style == GnnStyle::kPinSage ||
                       style == GnnStyle::kNgcf || style == GnnStyle::kGccf;
  if (needs_w) {
    for (int l = 0; l < layers; ++l) {
      w1_.emplace_back(&store_, "w1." + std::to_string(l), config.dim,
                       config.dim, &rng_, /*bias=*/false);
      if (style == GnnStyle::kNgcf) {
        w2_.emplace_back(&store_, "w2." + std::to_string(l), config.dim,
                         config.dim, &rng_, /*bias=*/false);
      }
    }
  }
}

void GnnRecommender::OnEpochBegin() {
  if (style_ == GnnStyle::kPinSage) {
    // Resample the neighborhood graph: dropping edges approximates
    // PinSage's random-walk neighbor sampling at this scale.
    epoch_graph_ = DropEdges(graph_, 0.5, rng_);
    epoch_adj_ = epoch_graph_.BuildNormalizedAdjacency(1.f);
  }
}

Var GnnRecommender::Encode(Tape* tape, bool train_mode) {
  Var e = ag::Leaf(tape, embeddings_);
  switch (style_) {
    case GnnStyle::kLightGcn:
      return LightGcnPropagate(tape, &adj_plain_.matrix, e,
                               config_.num_layers);
    case GnnStyle::kGcmc: {
      Var h = ag::Spmm(&adj_.matrix, e);
      h = w1_[0].Forward(tape, h);
      return ag::LeakyRelu(h, config_.leaky_slope);
    }
    case GnnStyle::kPinSage: {
      const CsrMatrix* a = train_mode && epoch_adj_.matrix.nnz() > 0
                               ? &epoch_adj_.matrix
                               : &adj_.matrix;
      Var h = e;
      for (size_t l = 0; l < w1_.size(); ++l) {
        h = ag::Relu(w1_[l].Forward(tape, ag::Spmm(a, h)));
      }
      return h;
    }
    case GnnStyle::kNgcf: {
      Var h = e;
      Var sum = e;
      for (size_t l = 0; l < w1_.size(); ++l) {
        Var agg = ag::Spmm(&adj_.matrix, h);
        Var affine = w1_[l].Forward(tape, agg);
        Var interact = w2_[l].Forward(tape, ag::Mul(agg, h));
        h = ag::LeakyRelu(ag::Add(affine, interact), config_.leaky_slope);
        if (config_.dropout > 0 && train_mode) {
          h = ag::Dropout(h, config_.dropout, &rng_);
        }
        sum = ag::Add(sum, h);
      }
      return ag::Scale(sum, 1.f / static_cast<float>(w1_.size() + 1));
    }
    case GnnStyle::kGccf: {
      Var h = e;
      Var sum = e;
      for (size_t l = 0; l < w1_.size(); ++l) {
        // Linear residual propagation: h <- Ã h W + h.
        h = ag::Add(w1_[l].Forward(tape, ag::Spmm(&adj_.matrix, h)), h);
        sum = ag::Add(sum, h);
      }
      return ag::Scale(sum, 1.f / static_cast<float>(w1_.size() + 1));
    }
  }
  return e;
}

Var GnnRecommender::BuildLoss(Tape* tape, const TripletBatch& batch) {
  Var all = Encode(tape, /*train_mode=*/true);
  Var u = ag::GatherRows(all, batch.users);
  Var p = ag::GatherRows(all, ToNodeIds(batch.pos_items));
  Var n = ag::GatherRows(all, ToNodeIds(batch.neg_items));
  return ag::BprLoss(ag::RowDot(u, p), ag::RowDot(u, n));
}

void GnnRecommender::ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) {
  Tape tape;
  Var all = Encode(&tape, /*train_mode=*/false);
  const Matrix& m = all.value();
  *user_emb = SliceRows(m, 0, graph_.num_users());
  *item_emb = SliceRows(m, graph_.num_users(), graph_.num_items());
}

}  // namespace graphaug
