#ifndef GRAPHAUG_MODELS_REGISTRY_H_
#define GRAPHAUG_MODELS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "models/recommender.h"

namespace graphaug {

/// Creates any model in the library by table name ("BiasMF", "NCF",
/// "AutoR", "GCMC", "PinSage", "NGCF", "LightGCN", "GCCF", "DisenGCN",
/// "DGCF", "MHCN", "STGCN", "SLRec", "SGL", "DGCL", "HCCF", "CGI", "NCL",
/// "GraphAug"). GraphAug uses default GraphAugConfig knobs derived from
/// `config`; construct core::GraphAug directly for fine control. Aborts on
/// unknown names.
std::unique_ptr<Recommender> CreateModel(const std::string& name,
                                         const Dataset* dataset,
                                         const ModelConfig& config);

/// All model names in the row order of the paper's Table II.
std::vector<std::string> AllModelNames();

}  // namespace graphaug

#endif  // GRAPHAUG_MODELS_REGISTRY_H_
