#ifndef GRAPHAUG_MODELS_REGISTRY_H_
#define GRAPHAUG_MODELS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "augment/registry.h"
#include "models/recommender.h"

namespace graphaug {

/// Creates any model in the library by table name ("BiasMF", "NCF",
/// "AutoR", "GCMC", "PinSage", "NGCF", "LightGCN", "GCCF", "DisenGCN",
/// "DGCF", "MHCN", "STGCN", "SLRec", "SGL", "DGCL", "HCCF", "CGI", "NCL",
/// "GraphAug"). GraphAug uses default GraphAugConfig knobs derived from
/// `config`; construct core::GraphAug directly for fine control. Aborts on
/// unknown names.
std::unique_ptr<Recommender> CreateModel(const std::string& name,
                                         const Dataset* dataset,
                                         const ModelConfig& config);

/// All model names in the row order of the paper's Table II.
std::vector<std::string> AllModelNames();

/// Creates an augmentation strategy by registry name ("gib", "edgedrop",
/// "advcl", "autocf", "lightgcl"), with `config` supplying the
/// per-strategy knobs (its `name` field is overridden by `name`). Thin
/// forwarder to the authoritative factory in augment/registry.h, kept
/// here so augmentors register through the same surface as models.
/// Aborts on unknown names.
std::unique_ptr<GraphAugmenter> CreateAugmenter(const std::string& name,
                                                AugmentorConfig config = {});

/// All augmentor names, in shoot-out table order.
std::vector<std::string> AllAugmenterNames();

}  // namespace graphaug

#endif  // GRAPHAUG_MODELS_REGISTRY_H_
