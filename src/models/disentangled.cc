#include "models/disentangled.h"

#include <algorithm>
#include <cmath>

#include "graph/corruption.h"
#include "tensor/ops.h"

namespace graphaug {

DisentangledRecommender::DisentangledRecommender(
    const Dataset* dataset, const ModelConfig& config,
    const DisentangledOptions& options, std::string display_name)
    : Recommender(dataset, config),
      options_(options),
      display_name_(std::move(display_name)) {
  GA_CHECK_EQ(config.dim % options.num_factors, 0)
      << "embedding dim must divide evenly into factors";
  adj_ = graph_.BuildNormalizedAdjacency(0.f);
  embeddings_ = store_.CreateNormal("embeddings", graph_.num_nodes(),
                                    config.dim, &rng_);
}

Matrix DisentangledRecommender::RoutingWeights(
    const Matrix& emb, const std::vector<Edge>& edges) const {
  const int k_factors = options_.num_factors;
  const int64_t chunk = emb.cols() / k_factors;
  const int32_t offset = graph_.num_users();
  Matrix weights(static_cast<int64_t>(edges.size()), k_factors);
  for (size_t e = 0; e < edges.size(); ++e) {
    const float* hu = emb.row(edges[e].user);
    const float* hv = emb.row(offset + edges[e].item);
    float max_logit = -1e30f;
    std::vector<float> logits(k_factors);
    for (int k = 0; k < k_factors; ++k) {
      double dot = 0, nu = 0, nv = 0;
      for (int64_t c = k * chunk; c < (k + 1) * chunk; ++c) {
        dot += static_cast<double>(hu[c]) * hv[c];
        nu += static_cast<double>(hu[c]) * hu[c];
        nv += static_cast<double>(hv[c]) * hv[c];
      }
      const double denom = std::sqrt(nu * nv) + 1e-12;
      logits[k] = static_cast<float>(dot / denom);
      max_logit = std::max(max_logit, logits[k]);
    }
    double z = 0;
    for (int k = 0; k < k_factors; ++k) z += std::exp(logits[k] - max_logit);
    for (int k = 0; k < k_factors; ++k) {
      // Scale by K so the average routed edge weight stays ~1 and the
      // propagation magnitude matches the plain normalized adjacency.
      weights.at(static_cast<int64_t>(e), k) = static_cast<float>(
          k_factors * std::exp(logits[k] - max_logit) / z);
    }
  }
  return weights;
}

Var DisentangledRecommender::Encode(Tape* tape, const BipartiteGraph& graph,
                                    const NormalizedAdjacency* adj) {
  const int k_factors = options_.num_factors;
  const int64_t chunk = config_.dim / k_factors;
  Var h = ag::Leaf(tape, embeddings_);
  Var sum = h;
  for (int l = 0; l < config_.num_layers; ++l) {
    for (int it = 0; it < options_.routing_iterations; ++it) {
      Matrix routing = RoutingWeights(h.value(), graph.edges());
      Var next;  // assembled by concatenating factor chunks
      for (int k = 0; k < k_factors; ++k) {
        Matrix wk(routing.rows(), 1);
        for (int64_t e = 0; e < routing.rows(); ++e) {
          wk[e] = routing.at(e, k);
        }
        Var edge_w = ag::Constant(tape, std::move(wk));
        Var hk = ag::SliceCols(h, k * chunk, chunk);
        Var propagated = ag::EdgeWeightedSpmm(adj, edge_w, hk);
        next = k == 0 ? propagated : ag::ConcatCols(next, propagated);
      }
      h = next;
    }
    if (options_.nonlinear) h = ag::LeakyRelu(h, config_.leaky_slope);
    sum = ag::Add(sum, h);
  }
  return ag::Scale(sum, 1.f / static_cast<float>(config_.num_layers + 1));
}

void DisentangledRecommender::OnEpochBegin() {
  if (options_.contrastive) {
    view_graph_a_ = DropEdges(graph_, options_.view_dropout, rng_);
    view_graph_b_ = DropEdges(graph_, options_.view_dropout, rng_);
    view_adj_a_ = view_graph_a_.BuildNormalizedAdjacency(0.f);
    view_adj_b_ = view_graph_b_.BuildNormalizedAdjacency(0.f);
  }
}

Var DisentangledRecommender::BuildLoss(Tape* tape,
                                       const TripletBatch& batch) {
  Var all = Encode(tape, graph_, &adj_);
  Var u = ag::GatherRows(all, batch.users);
  Var p = ag::GatherRows(all, ToNodeIds(batch.pos_items));
  Var n = ag::GatherRows(all, ToNodeIds(batch.neg_items));
  Var loss = ag::BprLoss(ag::RowDot(u, p), ag::RowDot(u, n));

  if (options_.contrastive) {
    // Factor-wise InfoNCE between the two corrupted-view encodings
    // (DGCL's discriminative factor objective).
    Var va = Encode(tape, view_graph_a_, &view_adj_a_);
    Var vb = Encode(tape, view_graph_b_, &view_adj_b_);
    std::vector<int32_t> nodes = sampler_.SampleUsers(
        config_.contrast_batch, &rng_);
    std::vector<int32_t> item_nodes =
        ToNodeIds(sampler_.SampleItems(config_.contrast_batch, &rng_));
    nodes.insert(nodes.end(), item_nodes.begin(), item_nodes.end());
    Var ba = ag::GatherRows(va, nodes);
    Var bb = ag::GatherRows(vb, nodes);
    const int64_t chunk = config_.dim / options_.num_factors;
    Var ssl;
    for (int k = 0; k < options_.num_factors; ++k) {
      Var ca = ag::SliceCols(ba, k * chunk, chunk);
      Var cb = ag::SliceCols(bb, k * chunk, chunk);
      Var term = ag::InfoNceLoss(ca, cb, config_.temperature);
      ssl = k == 0 ? term : ag::Add(ssl, term);
    }
    ssl = ag::Scale(ssl, 1.f / static_cast<float>(options_.num_factors));
    loss = ag::Add(loss, ag::Scale(ssl, config_.ssl_weight));
  }
  return loss;
}

void DisentangledRecommender::ComputeEmbeddings(Matrix* user_emb,
                                                Matrix* item_emb) {
  Tape tape;
  Var all = Encode(&tape, graph_, &adj_);
  const Matrix& m = all.value();
  *user_emb = SliceRows(m, 0, graph_.num_users());
  *item_emb = SliceRows(m, graph_.num_users(), graph_.num_items());
}

std::unique_ptr<DisentangledRecommender> MakeDisenGcn(
    const Dataset* dataset, const ModelConfig& config) {
  DisentangledOptions opt;
  opt.num_factors = 4;
  opt.routing_iterations = 1;
  opt.nonlinear = true;
  return std::make_unique<DisentangledRecommender>(dataset, config, opt,
                                                   "DisenGCN");
}

std::unique_ptr<DisentangledRecommender> MakeDgcf(const Dataset* dataset,
                                                  const ModelConfig& config) {
  DisentangledOptions opt;
  opt.num_factors = 4;
  opt.routing_iterations = 2;
  opt.nonlinear = false;
  return std::make_unique<DisentangledRecommender>(dataset, config, opt,
                                                   "DGCF");
}

std::unique_ptr<DisentangledRecommender> MakeDgcl(const Dataset* dataset,
                                                  const ModelConfig& config) {
  DisentangledOptions opt;
  opt.num_factors = 4;
  opt.routing_iterations = 1;
  opt.nonlinear = false;
  opt.contrastive = true;
  return std::make_unique<DisentangledRecommender>(dataset, config, opt,
                                                   "DGCL");
}

}  // namespace graphaug
