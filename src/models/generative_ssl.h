#ifndef GRAPHAUG_MODELS_GENERATIVE_SSL_H_
#define GRAPHAUG_MODELS_GENERATIVE_SSL_H_

#include "models/propagation.h"
#include "models/recommender.h"
#include "nn/layers.h"

namespace graphaug {

/// MHCN (Yu et al., 2021): hypergraph-convolutional CF with a DGI-style
/// generative self-supervision channel. The user-user hypergraph is
/// derived from co-interaction (row-normalized A·Aᵀ restricted to the
/// strongest neighbors); the auxiliary task maximizes mutual information
/// between user embeddings and the hypergraph readout against shuffled
/// negatives.
class Mhcn : public Recommender {
 public:
  Mhcn(const Dataset* dataset, const ModelConfig& config);

  std::string name() const override { return "MHCN"; }

 protected:
  Var BuildLoss(Tape* tape, const TripletBatch& batch) override;
  void ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) override;

 private:
  NormalizedAdjacency adj_;
  CsrMatrix user_hypergraph_;  ///< user-user co-interaction graph
  Parameter* embeddings_;
};

/// STGCN / STAR-GCN (Zhang et al., 2019): stacked GCN encoder with a
/// reconstruction pretext task — a decoder MLP must regenerate the initial
/// id embeddings from the propagated ones (masked-embedding
/// reconstruction), regularizing the encoder.
class Stgcn : public Recommender {
 public:
  Stgcn(const Dataset* dataset, const ModelConfig& config);

  std::string name() const override { return "STGCN"; }

 protected:
  Var BuildLoss(Tape* tape, const TripletBatch& batch) override;
  void ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) override;

 private:
  Var Encode(Tape* tape, bool train_mode);

  NormalizedAdjacency adj_;
  Parameter* embeddings_;
  Linear enc_;
  Mlp decoder_;
};

}  // namespace graphaug

#endif  // GRAPHAUG_MODELS_GENERATIVE_SSL_H_
