#ifndef GRAPHAUG_MODELS_RECOMMENDER_H_
#define GRAPHAUG_MODELS_RECOMMENDER_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/optim.h"
#include "autograd/param.h"
#include "autograd/tape.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "data/sampler.h"
#include "graph/bipartite_graph.h"

namespace graphaug {

/// Hyperparameters shared by every recommender. Model-specific knobs
/// (e.g. GraphAug's GIB weights) live in the model's own config and
/// default from these.
struct ModelConfig {
  int dim = 32;              ///< embedding dimensionality d
  int num_layers = 2;        ///< GNN propagation depth L
  float learning_rate = 5e-3f;
  float lr_decay = 0.96f;    ///< multiplicative per-epoch decay (paper)
  float weight_decay = 1e-6f;///< β₃-style L2 regularization
  int batch_size = 2048;
  int batches_per_epoch = 0; ///< 0 => ceil(|E| / batch_size)
  float temperature = 0.9f;  ///< InfoNCE τ (paper's best value)
  float ssl_weight = 0.1f;   ///< weight of auxiliary SSL losses (baselines)
  float dropout = 0.1f;
  float leaky_slope = 0.5f;  ///< paper fixes LeakyReLU slope at 0.5
  int contrast_batch = 256;  ///< nodes per InfoNCE batch
  uint64_t seed = 123;
};

/// Base class for every recommender in the library. Owns the parameter
/// store, optimizer, training graph, and BPR sampler; subclasses implement
/// BuildLoss (per-batch scalar loss on a fresh tape) and ComputeEmbeddings
/// (inference-time user/item tables). The default item scorer is the dot
/// product of the finalized embeddings; models with non-factored scoring
/// (NCF, AutoRec) override ScoreUsers.
class Recommender {
 public:
  Recommender(const Dataset* dataset, const ModelConfig& config);
  virtual ~Recommender() = default;

  Recommender(const Recommender&) = delete;
  Recommender& operator=(const Recommender&) = delete;

  /// Model identifier as it appears in result tables.
  virtual std::string name() const = 0;

  /// Runs one training epoch (batched BPR + model-specific objectives);
  /// returns the mean batch loss.
  virtual double TrainEpoch();

  /// Recomputes the cached inference embeddings; called before evaluation.
  void Finalize();

  /// Scores all items for the given users: (|users| x num_items).
  virtual Matrix ScoreUsers(const std::vector<int32_t>& users) const;

  /// True when ScoreUsers is exactly the dot product of the finalized
  /// embedding tables — the contract the retrieval engines
  /// (src/retrieval/) accelerate. Models with a non-factored scorer
  /// (NCF's MLP, AutoRec's reconstruction) return false and must be
  /// served by the dense path.
  virtual bool factored_scoring() const { return true; }

  /// Finalized user embedding table (I x d).
  const Matrix& user_embeddings() const { return user_emb_; }
  /// Finalized item embedding table (J x d).
  const Matrix& item_embeddings() const { return item_emb_; }
  /// Users stacked over items ((I+J) x d) — for MAD / uniformity studies.
  Matrix AllEmbeddings() const;

  ParamStore* params() { return &store_; }
  const ModelConfig& config() const { return config_; }
  const Dataset& dataset() const { return *dataset_; }
  const BipartiteGraph& graph() const { return graph_; }

  /// Applies the per-epoch learning-rate decay; the Trainer calls this.
  void DecayLearningRate();

 protected:
  /// Builds the scalar training loss for one triplet batch. Called under a
  /// fresh tape; gradient and optimizer step are handled by TrainEpoch.
  virtual Var BuildLoss(Tape* tape, const TripletBatch& batch) = 0;

  /// Computes inference-time embedding tables.
  virtual void ComputeEmbeddings(Matrix* user_emb, Matrix* item_emb) = 0;

  /// Hook invoked before each epoch (e.g. NCL's k-means E-step, PinSage's
  /// neighbor resampling).
  virtual void OnEpochBegin() {}

  /// Records one batch's gradient norm / NaN count / loss into the
  /// observability layer; called by TrainEpoch only when obs::Enabled().
  void RecordBatchHealth(double batch_loss);

  /// Item node id offset inside the (I+J)-node homogeneous graph.
  int32_t ItemOffset() const { return graph_.num_users(); }

  /// Shifts item-local ids to homogeneous node ids.
  std::vector<int32_t> ToNodeIds(const std::vector<int32_t>& items) const;

  const Dataset* dataset_;
  ModelConfig config_;
  BipartiteGraph graph_;
  TripletSampler sampler_;
  Rng rng_;
  ParamStore store_;
  std::unique_ptr<Adam> optimizer_;
  Matrix user_emb_;
  Matrix item_emb_;
};

}  // namespace graphaug

#endif  // GRAPHAUG_MODELS_RECOMMENDER_H_
