#include "models/registry.h"

#include "core/graphaug.h"
#include "models/autorec.h"
#include "models/contrastive_ssl.h"
#include "models/disentangled.h"
#include "models/generative_ssl.h"
#include "models/gnn_models.h"
#include "models/mf_models.h"

namespace graphaug {

std::unique_ptr<Recommender> CreateModel(const std::string& name,
                                         const Dataset* dataset,
                                         const ModelConfig& config) {
  if (name == "BiasMF") return std::make_unique<BiasMf>(dataset, config);
  if (name == "NCF") return std::make_unique<Ncf>(dataset, config);
  if (name == "AutoR") return std::make_unique<AutoRec>(dataset, config);
  if (name == "GCMC") {
    return std::make_unique<GnnRecommender>(dataset, config, GnnStyle::kGcmc);
  }
  if (name == "PinSage") {
    return std::make_unique<GnnRecommender>(dataset, config,
                                            GnnStyle::kPinSage);
  }
  if (name == "NGCF") {
    return std::make_unique<GnnRecommender>(dataset, config, GnnStyle::kNgcf);
  }
  if (name == "LightGCN") {
    return std::make_unique<GnnRecommender>(dataset, config,
                                            GnnStyle::kLightGcn);
  }
  if (name == "GCCF") {
    return std::make_unique<GnnRecommender>(dataset, config, GnnStyle::kGccf);
  }
  if (name == "DisenGCN") return MakeDisenGcn(dataset, config);
  if (name == "DGCF") return MakeDgcf(dataset, config);
  if (name == "DGCL") return MakeDgcl(dataset, config);
  if (name == "MHCN") return std::make_unique<Mhcn>(dataset, config);
  if (name == "STGCN") return std::make_unique<Stgcn>(dataset, config);
  if (name == "SLRec") return std::make_unique<SlRec>(dataset, config);
  if (name == "SGL") return std::make_unique<Sgl>(dataset, config);
  if (name == "HCCF") return std::make_unique<Hccf>(dataset, config);
  if (name == "CGI") return std::make_unique<Cgi>(dataset, config);
  if (name == "NCL") return std::make_unique<Ncl>(dataset, config);
  if (name == "GraphAug") {
    GraphAugConfig gconfig;
    static_cast<ModelConfig&>(gconfig) = config;
    return std::make_unique<GraphAug>(dataset, gconfig);
  }
  GA_CHECK(false) << "unknown model: " << name;
  return nullptr;
}

std::vector<std::string> AllModelNames() {
  return {"NCF",   "AutoR",   "GCMC",  "PinSage", "NGCF",  "LightGCN",
          "GCCF",  "DisenGCN","DGCF",  "MHCN",    "STGCN", "SLRec",
          "SGL",   "DGCL",    "HCCF",  "CGI",     "NCL",   "GraphAug"};
}

std::unique_ptr<GraphAugmenter> CreateAugmenter(const std::string& name,
                                                AugmentorConfig config) {
  config.name = name;
  return MakeAugmenter(config);
}

std::vector<std::string> AllAugmenterNames() { return AugmenterNames(); }

}  // namespace graphaug
