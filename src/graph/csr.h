#ifndef GRAPHAUG_GRAPH_CSR_H_
#define GRAPHAUG_GRAPH_CSR_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace graphaug {

/// One nonzero of a sparse matrix in coordinate form.
struct CooEntry {
  int32_t row = 0;
  int32_t col = 0;
  float value = 0.f;
};

/// Compressed-sparse-row float matrix. Immutable after construction; the
/// value array may be swapped out (see WithValues) which is how sampled
/// edge weights are injected without rebuilding the pattern.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from COO entries; duplicates are summed. O(nnz log nnz).
  static CsrMatrix FromCoo(int64_t rows, int64_t cols,
                           std::vector<CooEntry> entries);

  /// Identity matrix of size n.
  static CsrMatrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>* mutable_values() { return &values_; }

  /// Returns a copy of this matrix with the same pattern but new values
  /// (size must equal nnz()).
  CsrMatrix WithValues(std::vector<float> values) const;

  /// Sparse-dense product: out = this * dense. dense.rows() must equal
  /// cols(). If `accumulate` is false, out is resized/zeroed first.
  void Spmm(const Matrix& dense, Matrix* out, bool accumulate = false) const;

  /// Transposed sparse-dense product: out = this^T * dense.
  void SpmmT(const Matrix& dense, Matrix* out, bool accumulate = false) const;

  /// Transposed copy (pattern + values).
  CsrMatrix Transpose() const;

  /// Densifies (test/debug helper; use only for small matrices).
  Matrix ToDense() const;

  /// Per-row nonzero count.
  std::vector<int64_t> RowDegrees() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;   // size rows_+1
  std::vector<int32_t> col_idx_;   // size nnz
  std::vector<float> values_;      // size nnz
};

}  // namespace graphaug

#endif  // GRAPHAUG_GRAPH_CSR_H_
