#ifndef GRAPHAUG_GRAPH_CSR_H_
#define GRAPHAUG_GRAPH_CSR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace graphaug {

/// One nonzero of a sparse matrix in coordinate form.
struct CooEntry {
  int32_t row = 0;
  int32_t col = 0;
  float value = 0.f;
};

/// Materialized CSC mirror of a CSR matrix — the transpose viewed as its
/// own compressed structure. Row j of the mirror lists the original
/// nonzeros whose column is j, in ascending original-row order, with
/// `src[k]` pointing back at the original nonzero index. The pattern
/// (col_ptr / row_idx / src) is value-independent, so one build serves
/// every value array sharing the sparsity (WithValues copies); transposed
/// products additionally stream a *permuted contiguous* value array
/// (values in mirror order) so the inner loop pays one indirection — the
/// dense-row gather — instead of two. The ascending-original-row order
/// per mirror row reproduces the serial scatter's accumulation order
/// exactly, which is what keeps every variant bitwise identical.
struct CscMirror {
  std::vector<int64_t> col_ptr;  ///< size cols+1
  std::vector<int32_t> row_idx;  ///< original row of each nonzero
  std::vector<int64_t> src;      ///< original nonzero index (permutation)

  int64_t nnz() const { return static_cast<int64_t>(row_idx.size()); }

  /// Applies the src permutation to a value array given in original
  /// nonzero order: out[k] = values[src[k]]. O(nnz).
  std::vector<float> PermuteValues(const std::vector<float>& values) const;
};

/// Kernel selection for transposed sparse-dense products. Every variant
/// produces bitwise-identical output (same per-row accumulation order);
/// they differ only in memory-access strategy.
enum class SpmmTVariant {
  /// Heuristic: kTiled when the gathered dense operand is far larger than
  /// cache (the bandwidth-bound regime), kPermuted otherwise.
  kAuto,
  /// Streams the permuted contiguous mirror values; gathers dense rows
  /// directly. One level of indirection.
  kPermuted,
  /// kPermuted plus a source-row-tiled gather: dense rows are visited
  /// tile by tile so the gathered working set stays cache-resident;
  /// per-output-row cursors preserve the exact accumulation order.
  kTiled,
  /// Legacy double-indirect gather (values[src[k]], no materialized
  /// mirror values). Kept as the benchmark reference point.
  kGather,
};

/// Shared transposed-product kernel: out->row(j) += pv[k] * dense.row(
/// row_idx[k]) for k in [col_ptr[j], col_ptr[j+1]), where `pv` holds nnz
/// values already in mirror (permuted) order. `out` must be pre-sized to
/// (mirror rows x dense.cols()); existing contents are accumulated into.
/// Row-parallel over the shared runtime; bitwise deterministic at any
/// thread count and across the kPermuted/kTiled variants (kAuto resolves
/// to one of them). Also used by the edge-weighted SpMM backward, whose
/// gradient merge streams sampled edge values through the same mirror.
void CscMirrorSpmm(const CscMirror& mirror, const float* pv,
                   const Matrix& dense, Matrix* out,
                   SpmmTVariant variant = SpmmTVariant::kAuto);

/// Compressed-sparse-row float matrix. The pattern is immutable after
/// construction; the value array may be swapped out (see WithValues) or
/// mutated in place (see mutable_values), which is how sampled edge
/// weights are injected without rebuilding the pattern.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from COO entries; duplicates are summed. O(nnz log nnz).
  static CsrMatrix FromCoo(int64_t rows, int64_t cols,
                           std::vector<CooEntry> entries);

  /// Identity matrix of size n.
  static CsrMatrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// In-place access to the value array. Every call invalidates this
  /// instance's cached mirror values (the permuted copy is rebuilt on the
  /// next transposed product); callers must not stash the pointer across
  /// products. The shared pattern cache is value-independent and stays.
  std::vector<float>* mutable_values();

  /// Returns a copy of this matrix with the same pattern but new values
  /// (size must equal nnz()). The copy shares this matrix's cached CSC
  /// mirror *pattern* — value-independent, so swapping the value array
  /// never invalidates it — but drops the permuted mirror-values cache,
  /// which is rebuilt lazily for the new values.
  CsrMatrix WithValues(std::vector<float> values) const;

  /// Sparse-dense product: out = this * dense. dense.rows() must equal
  /// cols(). If `accumulate` is false, out is resized/zeroed first.
  /// Row-parallel over the shared runtime; bitwise deterministic at any
  /// thread count.
  void Spmm(const Matrix& dense, Matrix* out, bool accumulate = false) const;

  /// Transposed sparse-dense product: out = this^T * dense. Streams the
  /// materialized CSC mirror (built and cached on first use), bitwise
  /// identical to the serial scatter formulation at any thread count and
  /// for every variant.
  void SpmmT(const Matrix& dense, Matrix* out, bool accumulate = false,
             SpmmTVariant variant = SpmmTVariant::kAuto) const;

  /// Lazily built, thread-safe CSC mirror pattern; shared by all
  /// value-copies of this matrix (the pattern is immutable after
  /// construction).
  const CscMirror& Mirror() const;

  /// Lazily built permuted contiguous value array (values in mirror
  /// order), cached per value-array: invalidated by mutable_values() and
  /// dropped by WithValues copies. Thread-safe.
  const std::vector<float>& MirrorValues() const;

  /// Transposed copy (pattern + values).
  CsrMatrix Transpose() const;

  /// Densifies (test/debug helper; use only for small matrices).
  Matrix ToDense() const;

  /// Per-row nonzero count.
  std::vector<int64_t> RowDegrees() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;   // size rows_+1
  std::vector<int32_t> col_idx_;   // size nnz
  std::vector<float> values_;      // size nnz
  /// Lazy mirror-pattern cache (see Mirror()). Copied pointer-wise with
  /// the matrix: any copy shares the same immutable pattern, so the
  /// cached mirror stays valid for it.
  mutable std::shared_ptr<const CscMirror> mirror_cache_;
  /// Lazy permuted-values cache (see MirrorValues()). Valid only for the
  /// exact value array it was built from: copies made by the implicit
  /// copy constructor carry identical values so the shared pointer stays
  /// consistent, while WithValues and mutable_values() reset it.
  mutable std::shared_ptr<const std::vector<float>> mirror_values_cache_;
};

}  // namespace graphaug

#endif  // GRAPHAUG_GRAPH_CSR_H_
