#ifndef GRAPHAUG_GRAPH_CSR_H_
#define GRAPHAUG_GRAPH_CSR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace graphaug {

/// One nonzero of a sparse matrix in coordinate form.
struct CooEntry {
  int32_t row = 0;
  int32_t col = 0;
  float value = 0.f;
};

/// Value-independent transpose of a CSR *pattern*: row j of the transpose
/// lists the original nonzeros whose column is j, in ascending original-row
/// order, with `src[k]` pointing back at the original nonzero index. A
/// transposed product gathers values_[src[k]] at kernel time, so the same
/// cached pattern serves every value array sharing the pattern (WithValues
/// copies) and the scatter in SpmmT becomes a race-free row-parallel
/// gather with the same per-element accumulation order as the serial
/// scatter.
struct CsrTransposePattern {
  std::vector<int64_t> row_ptr;  ///< size cols+1
  std::vector<int32_t> col_idx;  ///< original row of each nonzero
  std::vector<int64_t> src;      ///< original nonzero index
};

/// Compressed-sparse-row float matrix. Immutable after construction; the
/// value array may be swapped out (see WithValues) which is how sampled
/// edge weights are injected without rebuilding the pattern.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from COO entries; duplicates are summed. O(nnz log nnz).
  static CsrMatrix FromCoo(int64_t rows, int64_t cols,
                           std::vector<CooEntry> entries);

  /// Identity matrix of size n.
  static CsrMatrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>* mutable_values() { return &values_; }

  /// Returns a copy of this matrix with the same pattern but new values
  /// (size must equal nnz()). The copy shares this matrix's cached
  /// transpose pattern — the cache is value-independent, so swapping the
  /// value array never invalidates it.
  CsrMatrix WithValues(std::vector<float> values) const;

  /// Sparse-dense product: out = this * dense. dense.rows() must equal
  /// cols(). If `accumulate` is false, out is resized/zeroed first.
  /// Row-parallel over the shared runtime; bitwise deterministic at any
  /// thread count.
  void Spmm(const Matrix& dense, Matrix* out, bool accumulate = false) const;

  /// Transposed sparse-dense product: out = this^T * dense. Implemented as
  /// a row-parallel gather over TransposedPattern() (built and cached on
  /// first use), bitwise identical to the serial scatter formulation.
  void SpmmT(const Matrix& dense, Matrix* out, bool accumulate = false) const;

  /// Lazily built, thread-safe transpose of the sparsity pattern; shared
  /// by all value-copies of this matrix (the pattern is immutable after
  /// construction).
  const CsrTransposePattern& TransposedPattern() const;

  /// Transposed copy (pattern + values).
  CsrMatrix Transpose() const;

  /// Densifies (test/debug helper; use only for small matrices).
  Matrix ToDense() const;

  /// Per-row nonzero count.
  std::vector<int64_t> RowDegrees() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;   // size rows_+1
  std::vector<int32_t> col_idx_;   // size nnz
  std::vector<float> values_;      // size nnz
  /// Lazy transpose-pattern cache (see TransposedPattern()). Copied
  /// pointer-wise with the matrix: any copy shares the same immutable
  /// pattern, so the cached transpose stays valid for it.
  mutable std::shared_ptr<const CsrTransposePattern> transpose_cache_;
};

}  // namespace graphaug

#endif  // GRAPHAUG_GRAPH_CSR_H_
