#include "graph/bipartite_graph.h"

#include <algorithm>
#include <cmath>

namespace graphaug {

std::vector<float> NormalizedAdjacency::WeightedValues(
    const std::vector<float>& w) const {
  std::vector<float> out(base_values.size());
  for (size_t k = 0; k < base_values.size(); ++k) {
    const int64_t e = nnz_to_edge[k];
    out[k] = base_values[k] * (e >= 0 ? w[static_cast<size_t>(e)] : 1.f);
  }
  return out;
}

AdjacencyPowerCache::AdjacencyPowerCache(const CsrMatrix* adj) : adj_(adj) {
  GA_CHECK(adj != nullptr);
  // Warm the mirror now: the first backward pass would otherwise pay the
  // pattern build + value permutation inside a timed training step.
  adj_->MirrorValues();
}

void AdjacencyPowerCache::Apply(int k, const Matrix& x, Matrix* out) const {
  GA_CHECK_GE(k, 0);
  GA_CHECK(out != &x);
  if (k == 0) {
    *out = x;
    return;
  }
  const Matrix* src = &x;
  for (int i = 0; i < k; ++i) {
    Matrix* dst = (i + 1 == k) ? out : &scratch_[i & 1];
    adj_->Spmm(*src, dst);
    src = dst;
  }
}

void AdjacencyPowerCache::ApplyTransposed(int k, const Matrix& x,
                                          Matrix* out) const {
  GA_CHECK_GE(k, 0);
  GA_CHECK(out != &x);
  if (k == 0) {
    *out = x;
    return;
  }
  const Matrix* src = &x;
  for (int i = 0; i < k; ++i) {
    Matrix* dst = (i + 1 == k) ? out : &scratch_[i & 1];
    adj_->SpmmT(*src, dst);
    src = dst;
  }
}

BipartiteGraph::BipartiteGraph(int32_t num_users, int32_t num_items,
                               std::vector<Edge> edges)
    : num_users_(num_users), num_items_(num_items), edges_(std::move(edges)) {
  GA_CHECK_GT(num_users, 0);
  GA_CHECK_GT(num_items, 0);
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  user_items_.assign(num_users_, {});
  item_users_.assign(num_items_, {});
  for (const Edge& e : edges_) {
    GA_CHECK(e.user >= 0 && e.user < num_users_) << "user id " << e.user;
    GA_CHECK(e.item >= 0 && e.item < num_items_) << "item id " << e.item;
    user_items_[e.user].push_back(e.item);
    item_users_[e.item].push_back(e.user);
  }
  for (auto& v : item_users_) std::sort(v.begin(), v.end());
  // user_items_ already sorted because edges_ are sorted by (user, item).
}

double BipartiteGraph::Density() const {
  return static_cast<double>(num_edges()) /
         (static_cast<double>(num_users_) * static_cast<double>(num_items_));
}

bool BipartiteGraph::HasEdge(int32_t u, int32_t v) const {
  const auto& items = user_items_[u];
  return std::binary_search(items.begin(), items.end(), v);
}

NormalizedAdjacency BipartiteGraph::BuildNormalizedAdjacency(
    float self_loop_weight) const {
  const int64_t n = num_nodes();
  // Degrees including the self-loop contribution.
  std::vector<double> deg(n, static_cast<double>(self_loop_weight));
  for (const Edge& e : edges_) {
    deg[e.user] += 1.0;
    deg[num_users_ + e.item] += 1.0;
  }
  std::vector<double> dinv(n);
  for (int64_t i = 0; i < n; ++i) {
    dinv[i] = deg[i] > 0 ? 1.0 / std::sqrt(deg[i]) : 0.0;
  }

  // Assemble entries carrying the originating interaction index so we can
  // recover the nnz -> edge mapping after CSR sorting.
  struct Tagged {
    int32_t row, col;
    float value;
    int64_t edge;  // -1 for self loops
  };
  std::vector<Tagged> tagged;
  tagged.reserve(edges_.size() * 2 + (self_loop_weight > 0 ? n : 0));
  for (size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    const int32_t u = e.user;
    const int32_t v = num_users_ + e.item;
    const float w = static_cast<float>(dinv[u] * dinv[v]);
    tagged.push_back({u, v, w, static_cast<int64_t>(i)});
    tagged.push_back({v, u, w, static_cast<int64_t>(i)});
  }
  if (self_loop_weight > 0.f) {
    for (int64_t i = 0; i < n; ++i) {
      const float w =
          static_cast<float>(self_loop_weight * dinv[i] * dinv[i]);
      tagged.push_back({static_cast<int32_t>(i), static_cast<int32_t>(i), w,
                        int64_t{-1}});
    }
  }
  std::sort(tagged.begin(), tagged.end(), [](const Tagged& a, const Tagged& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  std::vector<CooEntry> entries;
  entries.reserve(tagged.size());
  NormalizedAdjacency adj;
  adj.nnz_to_edge.reserve(tagged.size());
  adj.base_values.reserve(tagged.size());
  for (const Tagged& t : tagged) {
    entries.push_back({t.row, t.col, t.value});
    adj.nnz_to_edge.push_back(t.edge);
    adj.base_values.push_back(t.value);
  }
  adj.matrix = CsrMatrix::FromCoo(n, n, std::move(entries));
  GA_CHECK_EQ(adj.matrix.nnz(), static_cast<int64_t>(tagged.size()))
      << "unexpected duplicate adjacency entries";
  return adj;
}

CsrMatrix BipartiteGraph::InteractionMatrix() const {
  std::vector<CooEntry> entries;
  entries.reserve(edges_.size());
  for (const Edge& e : edges_) entries.push_back({e.user, e.item, 1.f});
  return CsrMatrix::FromCoo(num_users_, num_items_, std::move(entries));
}

BipartiteGraph BipartiteGraph::WithExtraEdges(
    const std::vector<Edge>& extra) const {
  std::vector<Edge> all = edges_;
  all.insert(all.end(), extra.begin(), extra.end());
  return BipartiteGraph(num_users_, num_items_, std::move(all));
}

BipartiteGraph BipartiteGraph::FilterEdges(
    const std::vector<bool>& keep) const {
  GA_CHECK_EQ(keep.size(), edges_.size());
  std::vector<Edge> kept;
  kept.reserve(edges_.size());
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (keep[i]) kept.push_back(edges_[i]);
  }
  return BipartiteGraph(num_users_, num_items_, std::move(kept));
}

}  // namespace graphaug
