#ifndef GRAPHAUG_GRAPH_CORRUPTION_H_
#define GRAPHAUG_GRAPH_CORRUPTION_H_

#include "common/rng.h"
#include "graph/bipartite_graph.h"

namespace graphaug {

/// Structural-noise and augmentation operators on interaction graphs.
/// `AddRandomEdges` implements the fake-edge corruption protocol of the
/// paper's robustness study (Fig. 3); `DropEdges` is the stochastic
/// edge-dropout augmentation used by SGL-style contrastive baselines.
/// All operators are pure functions of (graph, knobs, RNG state): the
/// caller injects the generator by reference and owns its stream — there
/// is no internal seeding or global state, so any component (including
/// the EdgeDropAugmenter) can reuse them without coupling draw orders.

/// Returns a graph with ratio*|E| uniformly random non-observed user-item
/// edges injected.
BipartiteGraph AddRandomEdges(const BipartiteGraph& g, double ratio, Rng& rng);

/// Returns a graph with each edge independently dropped with probability
/// `drop_prob`. Users/items left isolated keep their self-loop in the
/// normalized adjacency, so encoders still produce embeddings for them.
BipartiteGraph DropEdges(const BipartiteGraph& g, double drop_prob,
                         Rng& rng);

/// Random-walk based subgraph: keeps edges reachable within `hops` steps
/// from `num_seeds` random seed users (SGL's RW augmentation variant).
BipartiteGraph RandomWalkSubgraph(const BipartiteGraph& g, int num_seeds,
                                  int hops, Rng& rng);

}  // namespace graphaug

#endif  // GRAPHAUG_GRAPH_CORRUPTION_H_
