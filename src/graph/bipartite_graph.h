#ifndef GRAPHAUG_GRAPH_BIPARTITE_GRAPH_H_
#define GRAPHAUG_GRAPH_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace graphaug {

/// One observed user-item interaction.
struct Edge {
  int32_t user = 0;
  int32_t item = 0;
};

inline bool operator==(const Edge& a, const Edge& b) {
  return a.user == b.user && a.item == b.item;
}
inline bool operator<(const Edge& a, const Edge& b) {
  return a.user != b.user ? a.user < b.user : a.item < b.item;
}

/// The symmetric homogeneous adjacency of a bipartite interaction graph,
/// Laplacian-normalized as in LightGCN / the GraphAug paper:
///   Ã = D^{-1/2} (A + s·I) D^{-1/2}
/// laid out over I+J nodes (users first, then items). `nnz_to_edge` maps
/// each CSR nonzero back to the interaction index that produced it (or -1
/// for self-loop entries), which lets differentiable edge weights be pushed
/// into the CSR value array (GraphAug Eq. 5).
struct NormalizedAdjacency {
  CsrMatrix matrix;                 ///< (I+J) x (I+J) normalized adjacency.
  std::vector<int64_t> nnz_to_edge; ///< size nnz; -1 marks self-loops.
  std::vector<float> base_values;   ///< normalization coefficients per nnz.

  /// Rebuilds the CSR value array from per-interaction weights:
  /// value[k] = base_values[k] * (nnz_to_edge[k] >= 0 ? w[edge] : 1).
  /// w.size() must equal the number of interactions.
  std::vector<float> WeightedValues(const std::vector<float>& w) const;
};

/// Applies adjacency powers Ã^k X repeatedly over one fixed matrix — the
/// mixhop encoder's A^m H products, which each training step pays
/// L x max-hop times. Construction warms the adjacency's CSC mirror
/// (pattern + permuted values) once, so every forward product and every
/// transposed backward product streams cache-resident state instead of
/// re-deriving it lazily per power, and a pair of ping-pong scratch
/// buffers is reused across applications instead of allocating one
/// intermediate per hop.
///
/// Results are bitwise identical to k successive Spmm / SpmmT calls at
/// any thread count (the underlying kernels are deterministic and the
/// chaining order is the same). The adjacency must outlive the cache and
/// must not mutate its values while the cache is in use. One instance
/// must not be used from several threads at once (the scratch buffers are
/// shared); the kernels inside parallelize over the shared runtime.
class AdjacencyPowerCache {
 public:
  explicit AdjacencyPowerCache(const CsrMatrix* adj);

  const CsrMatrix& adjacency() const { return *adj_; }

  /// out = Ã^k x (k >= 0; k == 0 copies x). `out` must not alias `x`.
  void Apply(int k, const Matrix& x, Matrix* out) const;

  /// out = (Ã^T)^k x via the CSC mirror. `out` must not alias `x`.
  void ApplyTransposed(int k, const Matrix& x, Matrix* out) const;

 private:
  const CsrMatrix* adj_;
  mutable Matrix scratch_[2];  ///< ping-pong intermediates, reused per call
};

/// Immutable bipartite user-item interaction graph. Construction sorts and
/// dedups the edge list; per-user and per-item CSR views are materialized
/// once and shared by samplers, evaluators, and encoders.
class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  /// Builds from the interaction list; duplicates are removed.
  BipartiteGraph(int32_t num_users, int32_t num_items,
                 std::vector<Edge> edges);

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }
  int32_t num_nodes() const { return num_users_ + num_items_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

  /// Observed density |E| / (I*J).
  double Density() const;

  /// Sorted, deduplicated interaction list.
  const std::vector<Edge>& edges() const { return edges_; }

  /// Items of user u (sorted).
  const std::vector<int32_t>& ItemsOf(int32_t u) const {
    return user_items_[u];
  }
  /// Users of item v (sorted).
  const std::vector<int32_t>& UsersOf(int32_t v) const {
    return item_users_[v];
  }

  int64_t UserDegree(int32_t u) const {
    return static_cast<int64_t>(user_items_[u].size());
  }
  int64_t ItemDegree(int32_t v) const {
    return static_cast<int64_t>(item_users_[v].size());
  }

  /// True if (u, v) is an observed interaction. O(log deg(u)).
  bool HasEdge(int32_t u, int32_t v) const;

  /// Builds the symmetric normalized adjacency over I+J nodes.
  /// `self_loop_weight` of 0 omits self-loops (LightGCN style); 1 matches
  /// the Ã = D^{-1/2}(A+I)D^{-1/2} form used by the mixhop encoder.
  NormalizedAdjacency BuildNormalizedAdjacency(float self_loop_weight) const;

  /// The plain I x J interaction matrix (values 1).
  CsrMatrix InteractionMatrix() const;

  /// Returns a new graph with the given edges appended (dedup applied).
  BipartiteGraph WithExtraEdges(const std::vector<Edge>& extra) const;

  /// Returns a new graph keeping only edges where `keep[i]` is true.
  BipartiteGraph FilterEdges(const std::vector<bool>& keep) const;

 private:
  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<int32_t>> user_items_;
  std::vector<std::vector<int32_t>> item_users_;
};

}  // namespace graphaug

#endif  // GRAPHAUG_GRAPH_BIPARTITE_GRAPH_H_
