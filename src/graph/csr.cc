#include "graph/csr.h"

#include <algorithm>

namespace graphaug {

CsrMatrix CsrMatrix::FromCoo(int64_t rows, int64_t cols,
                             std::vector<CooEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  // Merge duplicates.
  std::vector<CooEntry> merged;
  merged.reserve(entries.size());
  for (const CooEntry& e : entries) {
    GA_CHECK(e.row >= 0 && e.row < rows && e.col >= 0 && e.col < cols)
        << "entry (" << e.row << "," << e.col << ") out of bounds";
    if (!merged.empty() && merged.back().row == e.row &&
        merged.back().col == e.col) {
      merged.back().value += e.value;
    } else {
      merged.push_back(e);
    }
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.resize(merged.size());
  m.values_.resize(merged.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    m.row_ptr_[merged[i].row + 1]++;
    m.col_idx_[i] = merged[i].col;
    m.values_[i] = merged[i].value;
  }
  for (int64_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

CsrMatrix CsrMatrix::Identity(int64_t n) {
  std::vector<CooEntry> entries;
  entries.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    entries.push_back({static_cast<int32_t>(i), static_cast<int32_t>(i), 1.f});
  }
  return FromCoo(n, n, std::move(entries));
}

CsrMatrix CsrMatrix::WithValues(std::vector<float> values) const {
  GA_CHECK_EQ(static_cast<int64_t>(values.size()), nnz());
  CsrMatrix m = *this;
  m.values_ = std::move(values);
  return m;
}

void CsrMatrix::Spmm(const Matrix& dense, Matrix* out, bool accumulate) const {
  GA_CHECK_EQ(dense.rows(), cols_);
  if (!accumulate || out->rows() != rows_ || out->cols() != dense.cols()) {
    *out = Matrix(rows_, dense.cols());
  }
  const int64_t d = dense.cols();
  for (int64_t r = 0; r < rows_; ++r) {
    float* orow = out->row(r);
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const float v = values_[k];
      const float* drow = dense.row(col_idx_[k]);
      for (int64_t c = 0; c < d; ++c) orow[c] += v * drow[c];
    }
  }
}

void CsrMatrix::SpmmT(const Matrix& dense, Matrix* out, bool accumulate) const {
  GA_CHECK_EQ(dense.rows(), rows_);
  if (!accumulate || out->rows() != cols_ || out->cols() != dense.cols()) {
    *out = Matrix(cols_, dense.cols());
  }
  const int64_t d = dense.cols();
  for (int64_t r = 0; r < rows_; ++r) {
    const float* drow = dense.row(r);
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const float v = values_[k];
      float* orow = out->row(col_idx_[k]);
      for (int64_t c = 0; c < d; ++c) orow[c] += v * drow[c];
    }
  }
}

CsrMatrix CsrMatrix::Transpose() const {
  std::vector<CooEntry> entries;
  entries.reserve(nnz());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      entries.push_back({col_idx_[k], static_cast<int32_t>(r), values_[k]});
    }
  }
  return FromCoo(cols_, rows_, std::move(entries));
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out.at(r, col_idx_[k]) += values_[k];
    }
  }
  return out;
}

std::vector<int64_t> CsrMatrix::RowDegrees() const {
  std::vector<int64_t> deg(rows_);
  for (int64_t r = 0; r < rows_; ++r) deg[r] = row_ptr_[r + 1] - row_ptr_[r];
  return deg;
}

}  // namespace graphaug
