#include "graph/csr.h"

#include <algorithm>
#include <mutex>

#include "common/parallel.h"
#include "obs/trace.h"
#include "tensor/kernel_dispatch.h"

namespace graphaug {
namespace {

/// Output rows per SpMM chunk, sized so each chunk carries roughly 32K
/// multiply-adds given the average row population.
int64_t SpmmGrain(int64_t rows, int64_t nnz, int64_t dense_cols) {
  const int64_t per_row =
      std::max<int64_t>(1, nnz / std::max<int64_t>(1, rows)) *
      std::max<int64_t>(1, dense_cols);
  return std::max<int64_t>(1, (int64_t{32} << 10) / per_row);
}

/// Mirror rows per SpmmT chunk: ~256K multiply-adds. The transposed
/// product is bandwidth-bound rather than compute-bound, so chunks are
/// coarser than Spmm's — fewer dispatches and a bigger contiguous output
/// slab per worker — while a Yelp-scale adjacency still decomposes into
/// dozens of chunks for load balance. (SpmmT accumulates strictly within
/// each output row, so unlike reductions its result is independent of the
/// grain; this is a pure throughput knob.)
int64_t SpmmTGrain(int64_t rows, int64_t nnz, int64_t dense_cols) {
  const int64_t per_row =
      std::max<int64_t>(1, nnz / std::max<int64_t>(1, rows)) *
      std::max<int64_t>(1, dense_cols);
  return std::max<int64_t>(1, (int64_t{256} << 10) / per_row);
}

/// Source-row tile for SpmmTVariant::kTiled, sized so one tile of gathered
/// dense rows (tile_rows x d floats) occupies ~128KB — small enough to
/// stay resident in L2 next to the output chunk being accumulated.
constexpr int64_t kTileBytes = int64_t{128} << 10;

/// kAuto switches to the tiled gather once the dense operand being
/// gathered exceeds ~4MB — past any private cache, the regime where the
/// untiled random row gather pays a memory round-trip per nonzero.
constexpr int64_t kTiledMinDenseBytes = int64_t{4} << 20;

SpmmTVariant ResolveVariant(SpmmTVariant variant, int64_t out_rows,
                            int64_t nnz, int64_t dense_rows,
                            int64_t dense_cols) {
  if (variant != SpmmTVariant::kAuto) return variant;
  const int64_t dense_bytes =
      dense_rows * dense_cols * static_cast<int64_t>(sizeof(float));
  if (dense_bytes <= kTiledMinDenseBytes) return SpmmTVariant::kPermuted;
  // Tiling adds a cursor sweep of every output row per tile. That
  // bookkeeping (out_rows x num_tiles probes) only amortizes when the
  // useful work per output row — avg nnz/row x d multiply-adds — clearly
  // exceeds the number of tiles; on very sparse patterns (a handful of
  // nonzeros per row against hundreds of tiles) the sweep dominates and
  // the plain permuted stream wins despite the cache misses.
  const int64_t num_tiles = (dense_bytes + kTileBytes - 1) / kTileBytes;
  const int64_t madds_per_row =
      (nnz / std::max<int64_t>(1, out_rows)) * std::max<int64_t>(1, dense_cols);
  return madds_per_row >= 4 * num_tiles ? SpmmTVariant::kTiled
                                        : SpmmTVariant::kPermuted;
}

}  // namespace

std::vector<float> CscMirror::PermuteValues(
    const std::vector<float>& values) const {
  std::vector<float> out(src.size());
  for (size_t k = 0; k < src.size(); ++k) {
    out[k] = values[static_cast<size_t>(src[k])];
  }
  return out;
}

void CscMirrorSpmm(const CscMirror& mirror, const float* pv,
                   const Matrix& dense, Matrix* out, SpmmTVariant variant) {
  const int64_t m_rows = static_cast<int64_t>(mirror.col_ptr.size()) - 1;
  const int64_t d = dense.cols();
  GA_CHECK_EQ(out->rows(), m_rows);
  GA_CHECK_EQ(out->cols(), d);
  variant = ResolveVariant(variant, m_rows, mirror.nnz(), dense.rows(), d);
  const int64_t grain = SpmmTGrain(m_rows, mirror.nnz(), d);
  const simd::KernelTable& kt = simd::ActiveKernels();
  if (variant != SpmmTVariant::kTiled) {
    // kPermuted (and kGather callers pre-permute pv): stream the
    // contiguous mirror values, gather dense rows directly. Each output
    // row is one spmm_segment call — the dispatch table's row kernel.
    ParallelFor(0, m_rows, grain, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const int64_t k0 = mirror.col_ptr[r];
        kt.spmm_segment(pv + k0, mirror.row_idx.data() + k0,
                        mirror.col_ptr[r + 1] - k0, dense.data(), d,
                        out->row(r));
      }
    });
    return;
  }
  // kTiled: sweep source (dense) rows tile by tile so the gathered rows
  // stay cache-resident; each output row advances a cursor through its
  // (ascending-source-row) nonzeros, so the per-row accumulation order —
  // and therefore the result — is bit-for-bit the same as the untiled
  // stream.
  const int64_t tile_rows =
      std::max<int64_t>(1, kTileBytes / (std::max<int64_t>(1, d) *
                                         static_cast<int64_t>(sizeof(float))));
  const int64_t src_rows = dense.rows();
  ParallelFor(0, m_rows, grain, [&](int64_t r0, int64_t r1) {
    std::vector<int64_t> cursor(static_cast<size_t>(r1 - r0));
    for (int64_t r = r0; r < r1; ++r) {
      cursor[static_cast<size_t>(r - r0)] = mirror.col_ptr[r];
    }
    for (int64_t t0 = 0; t0 < src_rows; t0 += tile_rows) {
      const int32_t t1 = static_cast<int32_t>(
          std::min<int64_t>(src_rows, t0 + tile_rows));
      for (int64_t r = r0; r < r1; ++r) {
        const int64_t k0 = cursor[static_cast<size_t>(r - r0)];
        const int64_t kend = mirror.col_ptr[r + 1];
        if (k0 >= kend || mirror.row_idx[k0] >= t1) continue;
        // Scan ahead to the end of this tile's nonzero run, then hand the
        // whole contiguous segment to the row kernel in one call. The
        // per-element order is unchanged, so tiling stays bitwise
        // identical to the untiled stream.
        int64_t k = k0;
        while (k < kend && mirror.row_idx[k] < t1) ++k;
        kt.spmm_segment(pv + k0, mirror.row_idx.data() + k0, k - k0,
                        dense.data(), d, out->row(r));
        cursor[static_cast<size_t>(r - r0)] = k;
      }
    }
  });
}

CsrMatrix CsrMatrix::FromCoo(int64_t rows, int64_t cols,
                             std::vector<CooEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  // Merge duplicates.
  std::vector<CooEntry> merged;
  merged.reserve(entries.size());
  for (const CooEntry& e : entries) {
    GA_CHECK(e.row >= 0 && e.row < rows && e.col >= 0 && e.col < cols)
        << "entry (" << e.row << "," << e.col << ") out of bounds";
    if (!merged.empty() && merged.back().row == e.row &&
        merged.back().col == e.col) {
      merged.back().value += e.value;
    } else {
      merged.push_back(e);
    }
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.resize(merged.size());
  m.values_.resize(merged.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    m.row_ptr_[merged[i].row + 1]++;
    m.col_idx_[i] = merged[i].col;
    m.values_[i] = merged[i].value;
  }
  for (int64_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

CsrMatrix CsrMatrix::Identity(int64_t n) {
  std::vector<CooEntry> entries;
  entries.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    entries.push_back({static_cast<int32_t>(i), static_cast<int32_t>(i), 1.f});
  }
  return FromCoo(n, n, std::move(entries));
}

namespace {
/// One global mutex for every instance's lazy caches: builds are rare
/// (once per pattern / value array) and the fast path takes the lock only
/// long enough to test a pointer.
std::mutex g_mirror_mu;
}  // namespace

std::vector<float>* CsrMatrix::mutable_values() {
  std::lock_guard<std::mutex> lock(g_mirror_mu);
  mirror_values_cache_.reset();
  return &values_;
}

CsrMatrix CsrMatrix::WithValues(std::vector<float> values) const {
  GA_CHECK_EQ(static_cast<int64_t>(values.size()), nnz());
  CsrMatrix m = *this;
  m.values_ = std::move(values);
  // The pattern cache transfers (value-independent); the permuted-values
  // cache belongs to the old value array and must not.
  m.mirror_values_cache_.reset();
  return m;
}

void CsrMatrix::Spmm(const Matrix& dense, Matrix* out, bool accumulate) const {
  GA_TRACE_SPAN("spmm");
  GA_CHECK_EQ(dense.rows(), cols_);
  if (!accumulate || out->rows() != rows_ || out->cols() != dense.cols()) {
    *out = Matrix(rows_, dense.cols());
  }
  const int64_t d = dense.cols();
  const simd::KernelTable& kt = simd::ActiveKernels();
  ParallelFor(0, rows_, SpmmGrain(rows_, nnz(), d),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  const int64_t k0 = row_ptr_[r];
                  kt.spmm_segment(values_.data() + k0, col_idx_.data() + k0,
                                  row_ptr_[r + 1] - k0, dense.data(), d,
                                  out->row(r));
                }
              });
}

const CscMirror& CsrMatrix::Mirror() const {
  std::lock_guard<std::mutex> lock(g_mirror_mu);
  if (mirror_cache_ == nullptr) {
    auto mir = std::make_shared<CscMirror>();
    const int64_t n = nnz();
    mir->col_ptr.assign(cols_ + 1, 0);
    for (int64_t k = 0; k < n; ++k) mir->col_ptr[col_idx_[k] + 1]++;
    for (int64_t c = 0; c < cols_; ++c) mir->col_ptr[c + 1] += mir->col_ptr[c];
    mir->row_idx.resize(n);
    mir->src.resize(n);
    std::vector<int64_t> fill(mir->col_ptr.begin(), mir->col_ptr.end() - 1);
    // Walking nonzeros in (row, col) order makes each mirror row sorted
    // by original row — the accumulation order of the serial scatter.
    for (int64_t r = 0; r < rows_; ++r) {
      for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        const int64_t pos = fill[col_idx_[k]]++;
        mir->row_idx[pos] = static_cast<int32_t>(r);
        mir->src[pos] = k;
      }
    }
    mirror_cache_ = std::move(mir);
  }
  return *mirror_cache_;
}

const std::vector<float>& CsrMatrix::MirrorValues() const {
  const CscMirror& mir = Mirror();  // ensure the pattern exists first
  std::lock_guard<std::mutex> lock(g_mirror_mu);
  if (mirror_values_cache_ == nullptr) {
    mirror_values_cache_ = std::make_shared<const std::vector<float>>(
        mir.PermuteValues(values_));
  }
  return *mirror_values_cache_;
}

void CsrMatrix::SpmmT(const Matrix& dense, Matrix* out, bool accumulate,
                      SpmmTVariant variant) const {
  GA_TRACE_SPAN("spmm_t");
  GA_CHECK_EQ(dense.rows(), rows_);
  if (!accumulate || out->rows() != cols_ || out->cols() != dense.cols()) {
    *out = Matrix(cols_, dense.cols());
  }
  const CscMirror& mir = Mirror();
  if (variant == SpmmTVariant::kGather) {
    // Legacy reference kernel: no materialized values, double-indirect
    // gather values_[src[k]]. Same per-row accumulation order, so still
    // bitwise identical to the streamed variants.
    const int64_t d = dense.cols();
    ParallelFor(0, cols_, SpmmTGrain(cols_, nnz(), d),
                [&](int64_t r0, int64_t r1) {
                  for (int64_t r = r0; r < r1; ++r) {
                    float* orow = out->row(r);
                    for (int64_t k = mir.col_ptr[r]; k < mir.col_ptr[r + 1];
                         ++k) {
                      const float v = values_[mir.src[k]];
                      const float* drow = dense.row(mir.row_idx[k]);
                      for (int64_t c = 0; c < d; ++c) orow[c] += v * drow[c];
                    }
                  }
                });
    return;
  }
  CscMirrorSpmm(mir, MirrorValues().data(), dense, out, variant);
}

CsrMatrix CsrMatrix::Transpose() const {
  std::vector<CooEntry> entries;
  entries.reserve(nnz());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      entries.push_back({col_idx_[k], static_cast<int32_t>(r), values_[k]});
    }
  }
  return FromCoo(cols_, rows_, std::move(entries));
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out.at(r, col_idx_[k]) += values_[k];
    }
  }
  return out;
}

std::vector<int64_t> CsrMatrix::RowDegrees() const {
  std::vector<int64_t> deg(rows_);
  for (int64_t r = 0; r < rows_; ++r) deg[r] = row_ptr_[r + 1] - row_ptr_[r];
  return deg;
}

}  // namespace graphaug
