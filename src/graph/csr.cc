#include "graph/csr.h"

#include <algorithm>
#include <mutex>

#include "common/parallel.h"
#include "obs/trace.h"

namespace graphaug {
namespace {

/// Output rows per SpMM chunk, sized so each chunk carries roughly 32K
/// multiply-adds given the average row population.
int64_t SpmmGrain(int64_t rows, int64_t nnz, int64_t dense_cols) {
  const int64_t per_row =
      std::max<int64_t>(1, nnz / std::max<int64_t>(1, rows)) *
      std::max<int64_t>(1, dense_cols);
  return std::max<int64_t>(1, (int64_t{32} << 10) / per_row);
}

}  // namespace

CsrMatrix CsrMatrix::FromCoo(int64_t rows, int64_t cols,
                             std::vector<CooEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  // Merge duplicates.
  std::vector<CooEntry> merged;
  merged.reserve(entries.size());
  for (const CooEntry& e : entries) {
    GA_CHECK(e.row >= 0 && e.row < rows && e.col >= 0 && e.col < cols)
        << "entry (" << e.row << "," << e.col << ") out of bounds";
    if (!merged.empty() && merged.back().row == e.row &&
        merged.back().col == e.col) {
      merged.back().value += e.value;
    } else {
      merged.push_back(e);
    }
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.resize(merged.size());
  m.values_.resize(merged.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    m.row_ptr_[merged[i].row + 1]++;
    m.col_idx_[i] = merged[i].col;
    m.values_[i] = merged[i].value;
  }
  for (int64_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

CsrMatrix CsrMatrix::Identity(int64_t n) {
  std::vector<CooEntry> entries;
  entries.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    entries.push_back({static_cast<int32_t>(i), static_cast<int32_t>(i), 1.f});
  }
  return FromCoo(n, n, std::move(entries));
}

CsrMatrix CsrMatrix::WithValues(std::vector<float> values) const {
  GA_CHECK_EQ(static_cast<int64_t>(values.size()), nnz());
  CsrMatrix m = *this;
  m.values_ = std::move(values);
  return m;
}

void CsrMatrix::Spmm(const Matrix& dense, Matrix* out, bool accumulate) const {
  GA_TRACE_SPAN("spmm");
  GA_CHECK_EQ(dense.rows(), cols_);
  if (!accumulate || out->rows() != rows_ || out->cols() != dense.cols()) {
    *out = Matrix(rows_, dense.cols());
  }
  const int64_t d = dense.cols();
  ParallelFor(0, rows_, SpmmGrain(rows_, nnz(), d),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  float* orow = out->row(r);
                  for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
                    const float v = values_[k];
                    const float* drow = dense.row(col_idx_[k]);
                    for (int64_t c = 0; c < d; ++c) orow[c] += v * drow[c];
                  }
                }
              });
}

const CsrTransposePattern& CsrMatrix::TransposedPattern() const {
  // One global mutex for every instance: builds are rare (once per pattern)
  // and the fast path takes the lock only long enough to test the pointer.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  if (transpose_cache_ == nullptr) {
    auto tp = std::make_shared<CsrTransposePattern>();
    const int64_t n = nnz();
    tp->row_ptr.assign(cols_ + 1, 0);
    for (int64_t k = 0; k < n; ++k) tp->row_ptr[col_idx_[k] + 1]++;
    for (int64_t c = 0; c < cols_; ++c) tp->row_ptr[c + 1] += tp->row_ptr[c];
    tp->col_idx.resize(n);
    tp->src.resize(n);
    std::vector<int64_t> fill(tp->row_ptr.begin(), tp->row_ptr.end() - 1);
    // Walking nonzeros in (row, col) order makes each transpose row sorted
    // by original row — the accumulation order of the serial scatter.
    for (int64_t r = 0; r < rows_; ++r) {
      for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        const int64_t pos = fill[col_idx_[k]]++;
        tp->col_idx[pos] = static_cast<int32_t>(r);
        tp->src[pos] = k;
      }
    }
    transpose_cache_ = std::move(tp);
  }
  return *transpose_cache_;
}

void CsrMatrix::SpmmT(const Matrix& dense, Matrix* out, bool accumulate) const {
  GA_TRACE_SPAN("spmm_t");
  GA_CHECK_EQ(dense.rows(), rows_);
  if (!accumulate || out->rows() != cols_ || out->cols() != dense.cols()) {
    *out = Matrix(cols_, dense.cols());
  }
  const CsrTransposePattern& tp = TransposedPattern();
  const int64_t d = dense.cols();
  ParallelFor(0, cols_, SpmmGrain(cols_, nnz(), d),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  float* orow = out->row(r);
                  for (int64_t k = tp.row_ptr[r]; k < tp.row_ptr[r + 1];
                       ++k) {
                    const float v = values_[tp.src[k]];
                    const float* drow = dense.row(tp.col_idx[k]);
                    for (int64_t c = 0; c < d; ++c) orow[c] += v * drow[c];
                  }
                }
              });
}

CsrMatrix CsrMatrix::Transpose() const {
  std::vector<CooEntry> entries;
  entries.reserve(nnz());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      entries.push_back({col_idx_[k], static_cast<int32_t>(r), values_[k]});
    }
  }
  return FromCoo(cols_, rows_, std::move(entries));
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out.at(r, col_idx_[k]) += values_[k];
    }
  }
  return out;
}

std::vector<int64_t> CsrMatrix::RowDegrees() const {
  std::vector<int64_t> deg(rows_);
  for (int64_t r = 0; r < rows_; ++r) deg[r] = row_ptr_[r + 1] - row_ptr_[r];
  return deg;
}

}  // namespace graphaug
