#include "graph/corruption.h"

#include <unordered_set>

namespace graphaug {

BipartiteGraph AddRandomEdges(const BipartiteGraph& g, double ratio,
                              Rng& rng) {
  GA_CHECK_GE(ratio, 0.0);
  const int64_t target = static_cast<int64_t>(ratio * g.num_edges());
  std::vector<Edge> fake;
  fake.reserve(target);
  int64_t attempts = 0;
  const int64_t max_attempts = target * 50 + 1000;
  while (static_cast<int64_t>(fake.size()) < target &&
         attempts++ < max_attempts) {
    Edge e;
    e.user = static_cast<int32_t>(rng.UniformInt(g.num_users()));
    e.item = static_cast<int32_t>(rng.UniformInt(g.num_items()));
    if (!g.HasEdge(e.user, e.item)) fake.push_back(e);
  }
  return g.WithExtraEdges(fake);
}

BipartiteGraph DropEdges(const BipartiteGraph& g, double drop_prob,
                         Rng& rng) {
  GA_CHECK(drop_prob >= 0.0 && drop_prob < 1.0);
  std::vector<bool> keep(g.num_edges());
  for (int64_t i = 0; i < g.num_edges(); ++i) {
    keep[static_cast<size_t>(i)] = !rng.Bernoulli(drop_prob);
  }
  return g.FilterEdges(keep);
}

BipartiteGraph RandomWalkSubgraph(const BipartiteGraph& g, int num_seeds,
                                  int hops, Rng& rng) {
  std::unordered_set<int64_t> kept_edges;
  auto edge_key = [&](int32_t u, int32_t v) {
    return static_cast<int64_t>(u) * g.num_items() + v;
  };
  for (int s = 0; s < num_seeds; ++s) {
    int32_t u = static_cast<int32_t>(rng.UniformInt(g.num_users()));
    for (int h = 0; h < hops; ++h) {
      const auto& items = g.ItemsOf(u);
      if (items.empty()) break;
      const int32_t v =
          items[static_cast<size_t>(rng.UniformInt(items.size()))];
      kept_edges.insert(edge_key(u, v));
      const auto& users = g.UsersOf(v);
      u = users[static_cast<size_t>(rng.UniformInt(users.size()))];
    }
  }
  std::vector<bool> keep(g.num_edges());
  const auto& edges = g.edges();
  for (size_t i = 0; i < edges.size(); ++i) {
    keep[i] = kept_edges.count(edge_key(edges[i].user, edges[i].item)) > 0;
  }
  return g.FilterEdges(keep);
}

}  // namespace graphaug
