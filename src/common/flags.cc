#include "common/flags.h"

#include <cstdlib>

#include "common/check.h"
#include "common/string_util.h"

namespace graphaug {

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      // Bare switch. The space-separated `--key value` form is not
      // supported: it is ambiguous with a boolean switch followed by a
      // positional argument.
      values_[arg] = "true";
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  read_[name] = true;
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  read_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  read_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  GA_CHECK(end != nullptr && *end == '\0')
      << "flag --" << name << " expects an integer, got '" << it->second
      << "'";
  return v;
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  read_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  GA_CHECK(end != nullptr && *end == '\0')
      << "flag --" << name << " expects a number, got '" << it->second
      << "'";
  return v;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  read_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string v = AsciiToLower(it->second);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  GA_CHECK(false) << "flag --" << name << " expects a boolean, got '"
                  << it->second << "'";
  return default_value;
}

std::vector<std::string> FlagParser::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (read_.find(name) == read_.end()) unused.push_back(name);
  }
  return unused;
}

}  // namespace graphaug
