#include "common/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace graphaug {
namespace {

/// -1 = not yet probed; otherwise a SimdLevel value.
std::atomic<int> g_detected{-1};
/// 0 = follow env/probe, 1 = forced scalar, 2 = force explicitly cleared
/// (API override beats the env var in both directions).
std::atomic<int> g_force{0};

bool EnvForcesScalar() {
  const char* v = std::getenv("GRAPHAUG_FORCE_SCALAR");
  if (v == nullptr) return false;
  // Accept any value except the explicit "off" spellings, so
  // GRAPHAUG_FORCE_SCALAR=1 in CI job definitions reads naturally.
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "") != 0;
}

SimdLevel Probe() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports reads the cpuid feature words cached by the
  // compiler runtime. AVX2 kernels also assume FMA-era 256-bit shuffles,
  // so require both bits even though the kernels never emit FMA.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdLevel::kAvx2;
  }
#endif
  return SimdLevel::kScalar;
}

}  // namespace

SimdLevel DetectSimdLevel() {
  int d = g_detected.load(std::memory_order_relaxed);
  if (d < 0) {
    d = static_cast<int>(Probe());
    g_detected.store(d, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(d);
}

SimdLevel ActiveSimdLevel() {
  static const bool env_forces_scalar = EnvForcesScalar();  // read once
  const int force = g_force.load(std::memory_order_relaxed);
  if (force == 1) return SimdLevel::kScalar;
  if (force == 0 && env_forces_scalar) return SimdLevel::kScalar;
  return DetectSimdLevel();
}

void ForceScalarKernels(bool force) {
  g_force.store(force ? 1 : 2, std::memory_order_relaxed);
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "unknown";
}

}  // namespace graphaug
