#ifndef GRAPHAUG_COMMON_CHECK_H_
#define GRAPHAUG_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace graphaug {
namespace internal_check {

/// Aborts the process after printing a fatal-check message. Used by the
/// CHECK family of macros below; never returns.
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr, const std::string& msg) {
  std::fprintf(stderr, "[FATAL] %s:%d: CHECK failed: %s %s\n", file, line,
               expr, msg.c_str());
  std::abort();
}

/// Stream sink that lets `CHECK(...) << "context"` collect a message and
/// abort when destroyed.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessage() { CheckFail(file_, line_, expr_, os_.str()); }

  template <typename T>
  CheckMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream os_;
};

}  // namespace internal_check
}  // namespace graphaug

/// Fatal invariant checks. These are always on (including release builds):
/// the library prefers a loud crash with context over silent corruption,
/// matching the error-handling conventions of Status-free research code.
#define GRAPHAUG_CHECK(cond)                                              \
  if (cond) {                                                             \
  } else                                                                  \
    ::graphaug::internal_check::CheckMessage(__FILE__, __LINE__, #cond)

#define CHECK_OP_IMPL(a, b, op) GRAPHAUG_CHECK((a)op(b))                  \
      << " (" << (a) << " vs " << (b) << ") "

#define GA_CHECK(cond) GRAPHAUG_CHECK(cond)
#define GA_CHECK_EQ(a, b) CHECK_OP_IMPL(a, b, ==)
#define GA_CHECK_NE(a, b) CHECK_OP_IMPL(a, b, !=)
#define GA_CHECK_LT(a, b) CHECK_OP_IMPL(a, b, <)
#define GA_CHECK_LE(a, b) CHECK_OP_IMPL(a, b, <=)
#define GA_CHECK_GT(a, b) CHECK_OP_IMPL(a, b, >)
#define GA_CHECK_GE(a, b) CHECK_OP_IMPL(a, b, >=)

/// Debug-only checks for hot paths; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define GA_DCHECK(cond) \
  if (true) {           \
  } else                \
    GRAPHAUG_CHECK(cond)
#else
#define GA_DCHECK(cond) GA_CHECK(cond)
#endif

#endif  // GRAPHAUG_COMMON_CHECK_H_
