#ifndef GRAPHAUG_COMMON_JSON_H_
#define GRAPHAUG_COMMON_JSON_H_

/// Minimal JSON reader for the offline tools (bench_compare,
/// report_compare): parses the subset our writers emit — objects,
/// arrays, strings with simple escapes, numbers, booleans, null — into
/// a tree of JsonValue. The training binaries never parse JSON; they
/// only emit it (obs/metrics.h owns the emit-side helpers and the
/// syntax linter).

#include <string>
#include <utility>
#include <vector>

namespace graphaug::json {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;                           ///< arrays
  std::vector<std::pair<std::string, JsonValue>> fields;  ///< objects

  /// First field named `key` in an object, or nullptr.
  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Number value of field `key`, or `fallback` when absent/non-numeric.
  double NumberOr(const std::string& key, double fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->type == Type::kNumber ? v->number : fallback;
  }

  /// String value of field `key`, or `fallback` when absent/non-string.
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->type == Type::kString ? v->str : fallback;
  }
};

/// Parses `text` as one JSON value. On failure returns false and sets
/// `error` (when non-null) to a short position-stamped message.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

}  // namespace graphaug::json

#endif  // GRAPHAUG_COMMON_JSON_H_
