#ifndef GRAPHAUG_COMMON_FLAGS_H_
#define GRAPHAUG_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace graphaug {

/// Minimal command-line flag parser for the CLI tool and experiment
/// binaries. Supports `--key=value` and bare `--switch` (true) forms;
/// positional arguments are collected in order. The space-separated
/// `--key value` form is intentionally rejected (ambiguous with a switch
/// followed by a positional).
///
///   FlagParser flags(argc, argv);
///   int dim = flags.GetInt("dim", 32);
///   std::string dataset = flags.GetString("dataset", "gowalla-sim");
///   const auto& positional = flags.positional();
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  /// True if --name was supplied.
  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were supplied but never read by a Get* call — typo guard.
  std::vector<std::string> UnusedFlags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
};

}  // namespace graphaug

#endif  // GRAPHAUG_COMMON_FLAGS_H_
