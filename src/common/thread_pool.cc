#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace graphaug {
namespace {

/// Set for the lifetime of every pool worker thread; queried by InWorker()
/// so nested parallel regions degrade to serial execution.
thread_local bool t_in_pool_worker = false;

/// Worker lifecycle hooks (SetWorkerThreadHooks). Atomic so installation
/// does not race worker startup; zero-initialized, hence safe to read
/// from any static-initialization order.
std::atomic<void (*)()> g_worker_start_hook{nullptr};
std::atomic<void (*)()> g_worker_exit_hook{nullptr};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] {
      t_in_pool_worker = true;
      if (void (*hook)() = g_worker_start_hook.load(std::memory_order_acquire))
        hook();
      WorkerLoop();
      if (void (*hook)() = g_worker_exit_hook.load(std::memory_order_acquire))
        hook();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : workers_) t.join();
}

bool ThreadPool::InWorker() { return t_in_pool_worker; }

void ThreadPool::SetWorkerThreadHooks(void (*on_start)(), void (*on_exit)()) {
  g_worker_start_hook.store(on_start, std::memory_order_release);
  g_worker_exit_hook.store(on_exit, std::memory_order_release);
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  const int64_t shards = std::min<int64_t>(n, int64_t{4} * num_threads());
  const int64_t grain = (n + shards - 1) / shards;
  ParallelForRange(0, n, grain, [&fn](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForRange(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t chunks = (n + grain - 1) / grain;
  if (chunks == 1 || num_threads() <= 1 || InWorker()) {
    // Serial fallback walks the identical chunk decomposition in order, so
    // chunk-granular algorithms (e.g. deterministic reductions) produce the
    // same result as the parallel path.
    for (int64_t c = 0; c < chunks; ++c) {
      const int64_t b = begin + c * grain;
      fn(b, std::min(end, b + grain));
    }
    return;
  }

  // Per-call completion latch: `next` hands out chunk indices, `done`
  // counts finished runner tasks. Runner count is capped by the chunk
  // count, the pool width, and the machine's core count: dispatching more
  // runner tasks than cores adds scheduler timeslicing (and the cache
  // refaults each switch causes) without adding throughput. The cap keeps
  // a floor of two runners so an oversubscribed pool on a narrow machine
  // still executes concurrently — the determinism sweep and the sanitizer
  // jobs rely on real concurrent runners to have teeth. Which runner
  // executes which chunk never affects results: chunks are handed out
  // atomically and each chunk's work is chunk-local.
  struct CallState {
    std::atomic<int64_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    int64_t done = 0;
  };
  auto state = std::make_shared<CallState>();
  static const int64_t max_concurrent_runners =
      std::max<int64_t>(2, std::thread::hardware_concurrency());
  const int64_t runners = std::min<int64_t>(
      {chunks, static_cast<int64_t>(num_threads()), max_concurrent_runners});
  const std::function<void(int64_t, int64_t)>* body = &fn;
  for (int64_t t = 0; t < runners; ++t) {
    Submit([state, body, begin, end, grain, chunks, runners] {
      for (int64_t c = state->next.fetch_add(1, std::memory_order_relaxed);
           c < chunks;
           c = state->next.fetch_add(1, std::memory_order_relaxed)) {
        const int64_t b = begin + c * grain;
        (*body)(b, std::min(end, b + grain));
      }
      std::unique_lock<std::mutex> lock(state->mu);
      if (++state->done == runners) state->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state, runners] { return state->done == runners; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace graphaug
