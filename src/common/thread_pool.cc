#include "common/thread_pool.h"

#include <algorithm>

namespace graphaug {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  const int64_t shards = std::min<int64_t>(n, num_threads() * 4);
  const int64_t chunk = (n + shards - 1) / shards;
  for (int64_t s = 0; s < shards; ++s) {
    const int64_t begin = s * chunk;
    const int64_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    Submit([begin, end, &fn] {
      for (int64_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace graphaug
