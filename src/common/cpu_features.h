#ifndef GRAPHAUG_COMMON_CPU_FEATURES_H_
#define GRAPHAUG_COMMON_CPU_FEATURES_H_

namespace graphaug {

/// Runtime CPU-feature probe backing the SIMD kernel dispatch layer
/// (src/tensor/kernel_dispatch.h). Binaries are compiled for the portable
/// baseline ISA; vector microkernels live in translation units built with
/// wider codegen and are only ever *called* when the probe confirms the
/// host supports them, so one binary runs everywhere.
///
/// Resolution order for the active level:
///   1. ForceScalarKernels(true)        — test/bench hook, highest priority
///   2. GRAPHAUG_FORCE_SCALAR env var   — read once at first query
///   3. cpuid probe                     — AVX2 requires both AVX2 and FMA
///      feature bits (they ship together on every AVX2 core; probing both
///      keeps the contract explicit even though the kernels avoid FMA
///      contraction — see DESIGN.md §9 on the bitwise-parity tradeoff)
/// Unsupported hardware always resolves to kScalar; the scalar path is the
/// default, not an error.

/// ISA tiers the dispatch layer distinguishes. Ordered: higher enum value
/// means a superset ISA.
enum class SimdLevel {
  kScalar = 0,  ///< portable baseline kernels (any hardware)
  kAvx2 = 1,    ///< AVX2 256-bit kernels (x86-64 with AVX2 + FMA)
};

/// Raw cpuid probe of the host, ignoring overrides. Cached after the
/// first call; thread-safe.
SimdLevel DetectSimdLevel();

/// The level the dispatch layer should use now: kScalar when forced (API
/// or env), otherwise DetectSimdLevel(). Thread-safe, cheap (one relaxed
/// atomic load after initialization).
SimdLevel ActiveSimdLevel();

/// Test/bench hook: pins ActiveSimdLevel() to kScalar (true) or restores
/// probe-based resolution (false). Overrides GRAPHAUG_FORCE_SCALAR. Call
/// only between kernel invocations.
void ForceScalarKernels(bool force);

/// Human-readable level name ("scalar", "avx2") for logs and bench JSON.
const char* SimdLevelName(SimdLevel level);

}  // namespace graphaug

#endif  // GRAPHAUG_COMMON_CPU_FEATURES_H_
