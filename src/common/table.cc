#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace graphaug {

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  GA_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  GA_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void Table::AddRow(const std::string& label, const std::vector<double>& values,
                   int precision) {
  GA_CHECK_EQ(values.size() + 1, header_.size());
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, precision));
  AddRow(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto line = [&](char fill, char join) {
    std::string s = "+";
    for (size_t w : widths) {
      s += std::string(w + 2, fill);
      s += join;
    }
    s.back() = '+';
    s += "\n";
    return s;
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      s += " " + row[c] + std::string(widths[c] - row[c].size() + 1, ' ') + "|";
    }
    s += "\n";
    return s;
  };
  std::string out = line('-', '+');
  out += render_row(header_);
  out += line('=', '+');
  for (const auto& row : rows_) out += render_row(row);
  out += line('-', '+');
  return out;
}

std::string Table::ToTsv() const {
  std::ostringstream os;
  for (size_t c = 0; c < header_.size(); ++c) {
    os << header_[c] << (c + 1 == header_.size() ? '\n' : '\t');
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 == row.size() ? '\n' : '\t');
    }
  }
  return os.str();
}

}  // namespace graphaug
