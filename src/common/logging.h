#ifndef GRAPHAUG_COMMON_LOGGING_H_
#define GRAPHAUG_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace graphaug {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum severity that is emitted. Defaults to kInfo,
/// or to GRAPHAUG_LOG_LEVEL from the environment ("debug" / "info" /
/// "warn" / "error", case-insensitive) when set; an explicit SetLogLevel
/// (e.g. from a --log-level flag) overrides the environment.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

/// Parses a level name ("debug", "info", "warn"/"warning", "error",
/// case-insensitive) into `out`. Returns false (out untouched) for
/// anything else.
bool ParseLogLevel(const std::string& name, LogLevel* out);

namespace internal_logging {

/// Accumulates one log line and emits it (with timestamp and severity tag)
/// on destruction. Instantiated by the LOG(...) macro below.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace internal_logging
}  // namespace graphaug

#define GA_LOG(level)                                        \
  if (::graphaug::LogLevel::k##level < ::graphaug::GetLogLevel()) { \
  } else                                                     \
    ::graphaug::internal_logging::LogMessage(                \
        ::graphaug::LogLevel::k##level, __FILE__, __LINE__)

#endif  // GRAPHAUG_COMMON_LOGGING_H_
