#ifndef GRAPHAUG_COMMON_PARALLEL_H_
#define GRAPHAUG_COMMON_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace graphaug {

/// Process-wide parallel runtime shared by every hot kernel (dense GEMM,
/// SpMM, large elementwise maps, full-ranking evaluation). It wraps a
/// lazily created global ThreadPool behind a deterministic ParallelFor /
/// ParallelReduce API:
///
///  * Static chunking. [begin, end) is split into fixed chunks of at most
///    `grain` indices; the decomposition depends only on the range and the
///    grain, never on the thread count. Kernels that write disjoint chunks
///    are bitwise reproducible at any thread count, and reductions merge
///    chunk partials in chunk order so they are too.
///  * Serial fallback. Single-chunk ranges, a 1-thread configuration, and
///    nested parallel regions (a ParallelFor issued from inside a pool
///    worker) run inline on the calling thread — same chunk walk, same
///    results, no dispatch overhead or deadlock.
///  * Thread-count resolution order: SetNumThreads() (wired to the
///    --threads flag in every binary) > GRAPHAUG_NUM_THREADS env var >
///    std::thread::hardware_concurrency().
///
/// Loop bodies must not throw; a GA_CHECK failure aborts the process as in
/// serial code.

/// Resolved thread count (>= 1). See resolution order above.
int NumThreads();

/// Overrides the thread count; n <= 0 restores automatic resolution. An
/// existing pool of a different width is torn down (joining its workers)
/// and lazily rebuilt — call only between parallel regions.
void SetNumThreads(int n);

/// Runs fn(chunk_begin, chunk_end) over the static decomposition of
/// [begin, end) into chunks of at most `grain` indices. Chunks execute in
/// parallel; fn must write only state owned by its chunk.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Deterministic sum-reduction: computes chunk_fn(chunk_begin, chunk_end)
/// for every chunk of the static decomposition (in parallel) and sums the
/// partials in chunk order, so the result is identical at any thread
/// count. Note the chunked summation order differs from a plain serial
/// accumulation loop; callers adopt the chunked order as the definition.
double ParallelReduce(int64_t begin, int64_t end, int64_t grain,
                      const std::function<double(int64_t, int64_t)>& chunk_fn);

/// True while the calling thread is executing inside a parallel region
/// (i.e. it is a pool worker); nested ParallelFor calls run serially.
bool InParallelRegion();

/// Registers process-wide worker lifecycle hooks: `on_start` runs on
/// each pool worker thread right after it starts, `on_exit` right
/// before it terminates (pool teardown on SetNumThreads). Used by the
/// sampling profiler (src/obs/profiler) to enroll every worker for
/// per-thread sample timers. Install before the first parallel region
/// (static-init is fine); workers created earlier miss the start hook.
/// Hooks must not issue parallel regions. nullptr clears.
void SetWorkerThreadHooks(void (*on_start)(), void (*on_exit)());

/// Observer that forwards an opaque per-region tag from the thread that
/// dispatches a parallel region to the workers executing its chunks.
/// `capture` runs once on the dispatching thread per pool region;
/// `enter` runs on the executing thread around every chunk with the
/// captured token and returns the value to restore; `exit` restores it.
/// The sampling profiler uses this to attribute worker-thread samples
/// to the dispatching thread's active trace span / autograd op. All
/// three callbacks must be cheap, non-blocking, and must not issue
/// parallel regions; observation never changes chunking or results.
struct ParallelTagObserver {
  const void* (*capture)() = nullptr;
  const void* (*enter)(const void* token) = nullptr;
  void (*exit)(const void* restore) = nullptr;
};

/// Installs/removes the (single) tag observer. Install/clear only
/// between parallel regions; in-flight regions may miss the change.
void SetParallelTagObserver(const ParallelTagObserver& observer);
void ClearParallelTagObserver();

/// Aggregate activity of the parallel runtime since the last
/// ResetParallelStats. Region/chunk counts are always maintained (one
/// relaxed atomic add per region); busy/wall timing is only collected
/// while SetParallelStatsEnabled(true), since it adds a clock read per
/// chunk. The observability layer (src/obs) pulls this at export time —
/// the runtime itself never depends on obs.
struct ParallelStats {
  int64_t pool_regions = 0;    ///< regions dispatched to the thread pool
  int64_t serial_regions = 0;  ///< regions that ran inline on the caller
  int64_t pool_chunks = 0;     ///< chunks executed via the pool
  int64_t busy_ns = 0;   ///< summed per-chunk execution time (timed mode)
  int64_t wall_ns = 0;   ///< summed region wall time (timed mode)
};

ParallelStats GetParallelStats();

/// Enables per-chunk busy/wall timing. Timing only observes the clock and
/// never changes chunking, so results are unaffected.
void SetParallelStatsEnabled(bool enabled);

void ResetParallelStats();

}  // namespace graphaug

#endif  // GRAPHAUG_COMMON_PARALLEL_H_
