#ifndef GRAPHAUG_COMMON_ENV_H_
#define GRAPHAUG_COMMON_ENV_H_

#include <string>

namespace graphaug {

/// Machine/build provenance stamped into persistent artifacts
/// (BENCH_*.json headers, run-report footers) so results from different
/// machines or commits are never silently compared.
struct RuntimeEnv {
  unsigned hardware_concurrency = 1;  ///< std::thread::hardware_concurrency()
  std::string git_sha;        ///< short HEAD sha, "unknown" off a checkout
  std::string timestamp_utc;  ///< ISO-8601 UTC, e.g. "2026-08-05T12:34:56Z"
};

/// Probes the environment (cheap: one fork for git) on every call.
RuntimeEnv ProbeRuntimeEnv();

}  // namespace graphaug

#endif  // GRAPHAUG_COMMON_ENV_H_
