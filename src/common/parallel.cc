#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace graphaug {
namespace {

std::mutex g_mu;
int g_requested = 0;            // 0 = resolve automatically
ThreadPool* g_pool = nullptr;   // lazily built; width == resolved count

// Tag-observer callbacks (see ParallelTagObserver). Stored as separate
// atomics so the dispatch path reads them lock-free; they are installed
// together and the pool path tolerates any interleaving (a null enter
// simply skips forwarding for that region).
std::atomic<const void* (*)()> g_tag_capture{nullptr};
std::atomic<const void* (*)(const void*)> g_tag_enter{nullptr};
std::atomic<void (*)(const void*)> g_tag_exit{nullptr};

std::atomic<int64_t> g_stat_pool_regions{0};
std::atomic<int64_t> g_stat_serial_regions{0};
std::atomic<int64_t> g_stat_pool_chunks{0};
std::atomic<int64_t> g_stat_busy_ns{0};
std::atomic<int64_t> g_stat_wall_ns{0};
std::atomic<bool> g_stat_timing{false};

int64_t StatClockNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int ResolveLocked() {
  if (g_requested > 0) return g_requested;
  if (const char* env = std::getenv("GRAPHAUG_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

/// Returns the pool, (re)building it to the resolved width; nullptr when
/// the resolved width is 1 (pure serial mode, no workers at all).
ThreadPool* PoolLocked() {
  const int want = ResolveLocked();
  if (want <= 1) return nullptr;
  if (g_pool != nullptr && g_pool->num_threads() != want) {
    delete g_pool;
    g_pool = nullptr;
  }
  if (g_pool == nullptr) g_pool = new ThreadPool(want);
  return g_pool;
}

}  // namespace

int NumThreads() {
  std::lock_guard<std::mutex> lock(g_mu);
  return ResolveLocked();
}

void SetNumThreads(int n) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_requested = std::max(0, n);
  const int want = ResolveLocked();
  if (g_pool != nullptr && (want <= 1 || g_pool->num_threads() != want)) {
    delete g_pool;
    g_pool = nullptr;
  }
}

bool InParallelRegion() { return ThreadPool::InWorker(); }

void SetWorkerThreadHooks(void (*on_start)(), void (*on_exit)()) {
  ThreadPool::SetWorkerThreadHooks(on_start, on_exit);
}

void SetParallelTagObserver(const ParallelTagObserver& observer) {
  g_tag_capture.store(observer.capture, std::memory_order_relaxed);
  g_tag_enter.store(observer.enter, std::memory_order_relaxed);
  g_tag_exit.store(observer.exit, std::memory_order_relaxed);
}

void ClearParallelTagObserver() {
  g_tag_capture.store(nullptr, std::memory_order_relaxed);
  g_tag_enter.store(nullptr, std::memory_order_relaxed);
  g_tag_exit.store(nullptr, std::memory_order_relaxed);
}

ParallelStats GetParallelStats() {
  ParallelStats s;
  s.pool_regions = g_stat_pool_regions.load(std::memory_order_relaxed);
  s.serial_regions = g_stat_serial_regions.load(std::memory_order_relaxed);
  s.pool_chunks = g_stat_pool_chunks.load(std::memory_order_relaxed);
  s.busy_ns = g_stat_busy_ns.load(std::memory_order_relaxed);
  s.wall_ns = g_stat_wall_ns.load(std::memory_order_relaxed);
  return s;
}

void SetParallelStatsEnabled(bool enabled) {
  g_stat_timing.store(enabled, std::memory_order_relaxed);
}

void ResetParallelStats() {
  g_stat_pool_regions.store(0, std::memory_order_relaxed);
  g_stat_serial_regions.store(0, std::memory_order_relaxed);
  g_stat_pool_chunks.store(0, std::memory_order_relaxed);
  g_stat_busy_ns.store(0, std::memory_order_relaxed);
  g_stat_wall_ns.store(0, std::memory_order_relaxed);
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  ThreadPool* pool = nullptr;
  if (n > grain && !ThreadPool::InWorker()) {
    std::lock_guard<std::mutex> lock(g_mu);
    pool = PoolLocked();
  }
  if (pool == nullptr) {
    g_stat_serial_regions.fetch_add(1, std::memory_order_relaxed);
    // Same static chunk walk as the pool path, executed inline.
    for (int64_t b = begin; b < end; b += grain) {
      fn(b, std::min(end, b + grain));
    }
    return;
  }
  g_stat_pool_regions.fetch_add(1, std::memory_order_relaxed);
  g_stat_pool_chunks.fetch_add((n + grain - 1) / grain,
                               std::memory_order_relaxed);
  // Optional per-chunk wrappers, both observation-only (they never
  // change the chunk walk or results): tag forwarding for the sampling
  // profiler and busy/wall timing for the obs layer. The serial path
  // above needs neither — the caller's own thread-local tag is already
  // in scope there.
  const void* (*tag_capture)() = g_tag_capture.load(std::memory_order_relaxed);
  const void* (*tag_enter)(const void*) =
      g_tag_enter.load(std::memory_order_relaxed);
  void (*tag_exit)(const void*) = g_tag_exit.load(std::memory_order_relaxed);
  const bool tagged = tag_capture != nullptr && tag_enter != nullptr &&
                      tag_exit != nullptr;
  const bool timed = g_stat_timing.load(std::memory_order_relaxed);
  if (!tagged && !timed) {
    pool->ParallelForRange(begin, end, grain, fn);
    return;
  }
  const void* token = tagged ? tag_capture() : nullptr;
  const int64_t wall_start = timed ? StatClockNs() : 0;
  pool->ParallelForRange(begin, end, grain, [&](int64_t b, int64_t e) {
    const void* restore = tagged ? tag_enter(token) : nullptr;
    if (timed) {
      const int64_t t0 = StatClockNs();
      fn(b, e);
      g_stat_busy_ns.fetch_add(StatClockNs() - t0, std::memory_order_relaxed);
    } else {
      fn(b, e);
    }
    if (tagged) tag_exit(restore);
  });
  if (timed) {
    g_stat_wall_ns.fetch_add(StatClockNs() - wall_start,
                             std::memory_order_relaxed);
  }
}

double ParallelReduce(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<double(int64_t, int64_t)>& chunk_fn) {
  const int64_t n = end - begin;
  if (n <= 0) return 0.0;
  grain = std::max<int64_t>(1, grain);
  const int64_t chunks = (n + grain - 1) / grain;
  if (chunks == 1) return chunk_fn(begin, end);
  std::vector<double> partial(static_cast<size_t>(chunks), 0.0);
  ParallelFor(begin, end, grain, [&](int64_t b, int64_t e) {
    partial[static_cast<size_t>((b - begin) / grain)] = chunk_fn(b, e);
  });
  double total = 0.0;
  for (double p : partial) total += p;  // chunk order: deterministic
  return total;
}

}  // namespace graphaug
