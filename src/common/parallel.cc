#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace graphaug {
namespace {

std::mutex g_mu;
int g_requested = 0;            // 0 = resolve automatically
ThreadPool* g_pool = nullptr;   // lazily built; width == resolved count

int ResolveLocked() {
  if (g_requested > 0) return g_requested;
  if (const char* env = std::getenv("GRAPHAUG_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

/// Returns the pool, (re)building it to the resolved width; nullptr when
/// the resolved width is 1 (pure serial mode, no workers at all).
ThreadPool* PoolLocked() {
  const int want = ResolveLocked();
  if (want <= 1) return nullptr;
  if (g_pool != nullptr && g_pool->num_threads() != want) {
    delete g_pool;
    g_pool = nullptr;
  }
  if (g_pool == nullptr) g_pool = new ThreadPool(want);
  return g_pool;
}

}  // namespace

int NumThreads() {
  std::lock_guard<std::mutex> lock(g_mu);
  return ResolveLocked();
}

void SetNumThreads(int n) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_requested = std::max(0, n);
  const int want = ResolveLocked();
  if (g_pool != nullptr && (want <= 1 || g_pool->num_threads() != want)) {
    delete g_pool;
    g_pool = nullptr;
  }
}

bool InParallelRegion() { return ThreadPool::InWorker(); }

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  ThreadPool* pool = nullptr;
  if (n > grain && !ThreadPool::InWorker()) {
    std::lock_guard<std::mutex> lock(g_mu);
    pool = PoolLocked();
  }
  if (pool == nullptr) {
    // Same static chunk walk as the pool path, executed inline.
    for (int64_t b = begin; b < end; b += grain) {
      fn(b, std::min(end, b + grain));
    }
    return;
  }
  pool->ParallelForRange(begin, end, grain, fn);
}

double ParallelReduce(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<double(int64_t, int64_t)>& chunk_fn) {
  const int64_t n = end - begin;
  if (n <= 0) return 0.0;
  grain = std::max<int64_t>(1, grain);
  const int64_t chunks = (n + grain - 1) / grain;
  if (chunks == 1) return chunk_fn(begin, end);
  std::vector<double> partial(static_cast<size_t>(chunks), 0.0);
  ParallelFor(begin, end, grain, [&](int64_t b, int64_t e) {
    partial[static_cast<size_t>((b - begin) / grain)] = chunk_fn(b, e);
  });
  double total = 0.0;
  for (double p : partial) total += p;  // chunk order: deterministic
  return total;
}

}  // namespace graphaug
