#ifndef GRAPHAUG_COMMON_THREAD_POOL_H_
#define GRAPHAUG_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace graphaug {

/// Minimal fixed-size thread pool used to parallelize full-ranking
/// evaluation across users. Tasks are void() closures; Wait() blocks until
/// the queue drains.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (defaults to hardware concurrency).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Number of worker threads.
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  int64_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace graphaug

#endif  // GRAPHAUG_COMMON_THREAD_POOL_H_
