#ifndef GRAPHAUG_COMMON_THREAD_POOL_H_
#define GRAPHAUG_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace graphaug {

/// Minimal fixed-size thread pool backing the shared parallel runtime in
/// common/parallel.h (dense GEMM row panels, SpMM rows, full-ranking
/// evaluation user chunks). Tasks are void() closures; Wait() blocks until
/// the queue drains.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (defaults to hardware concurrency).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Number of worker threads.
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// True when the calling thread is a worker of *any* ThreadPool. Used by
  /// the parallel runtime to run nested parallel regions serially instead
  /// of deadlocking on Wait() from inside a task.
  static bool InWorker();

  /// Process-wide worker lifecycle hooks, shared by every pool:
  /// `on_start` runs on each worker thread as it starts, `on_exit` as it
  /// terminates (destructor join). Exposed through
  /// common/parallel.h::SetWorkerThreadHooks; the sampling profiler uses
  /// them to enroll/retire worker threads. nullptr clears either hook;
  /// workers started before installation miss the start hook.
  static void SetWorkerThreadHooks(void (*on_start)(), void (*on_exit)());

  /// Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  /// Work is chunked into ~4 x num_threads() contiguous blocks (one
  /// closure per block, not per index) so the per-task dispatch cost is
  /// amortized over the block.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// Range form used by the parallel runtime: decomposes [begin, end) into
  /// fixed chunks of at most `grain` indices and runs fn(chunk_begin,
  /// chunk_end) across the pool, blocking until every chunk has finished.
  /// The decomposition depends only on (begin, end, grain) — never on the
  /// thread count — so chunk-local results are reproducible at any pool
  /// size. Completion is tracked per call, so concurrent ParallelForRange
  /// calls from different threads do not wait on each other's tasks.
  void ParallelForRange(int64_t begin, int64_t end, int64_t grain,
                        const std::function<void(int64_t, int64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  int64_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace graphaug

#endif  // GRAPHAUG_COMMON_THREAD_POOL_H_
