#include "common/string_util.h"

#include <cctype>

namespace graphaug {

std::vector<std::string> SplitString(std::string_view text,
                                     std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start < text.size()) {
    const size_t end = text.find_first_of(delims, start);
    if (end == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    if (end > start) out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string StripString(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return std::string(text.substr(b, e - b));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string AsciiToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace graphaug
