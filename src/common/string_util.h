#ifndef GRAPHAUG_COMMON_STRING_UTIL_H_
#define GRAPHAUG_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace graphaug {

/// Splits `text` on any of the bytes in `delims`, skipping empty pieces.
std::vector<std::string> SplitString(std::string_view text,
                                     std::string_view delims = " \t");

/// Removes leading/trailing whitespace.
std::string StripString(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Joins `pieces` with `sep` between elements.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// Lower-cases ASCII characters.
std::string AsciiToLower(std::string_view text);

}  // namespace graphaug

#endif  // GRAPHAUG_COMMON_STRING_UTIL_H_
