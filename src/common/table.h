#ifndef GRAPHAUG_COMMON_TABLE_H_
#define GRAPHAUG_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace graphaug {

/// ASCII table printer used by the experiment harnesses to emit
/// paper-style result tables.
///
/// Usage:
///   Table t({"Model", "Recall@20", "NDCG@20"});
///   t.AddRow({"LightGCN", "0.1799", "0.1053"});
///   std::cout << t.ToString();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; its size must match the header width.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 4);

  /// Renders the table with box-drawing separators.
  std::string ToString() const;

  /// Renders the table as tab-separated values (for machine consumption).
  std::string ToTsv() const;

  /// Number of data rows added so far.
  size_t NumRows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table rows).
std::string FormatDouble(double v, int precision = 4);

}  // namespace graphaug

#endif  // GRAPHAUG_COMMON_TABLE_H_
