#include "common/json.h"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace graphaug::json {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    const bool ok = ParseValue(out, 0) && (SkipWs(), pos_ == s_.size());
    if (!ok && error != nullptr) {
      std::ostringstream oss;
      oss << "JSON parse error near offset " << pos_;
      *error = oss.str();
    }
    return ok;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          default: return false;  // \uXXXX etc. never emitted by our writers
        }
      }
      out->push_back(c);
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > 128) return false;
    SkipWs();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (Literal("true")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (Literal("false")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (Literal("null")) {
      out->type = JsonValue::Type::kNull;
      return true;
    }
    // Number.
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      JsonValue v;
      if (!ParseValue(&v, depth + 1)) return false;
      out->fields.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue v;
      if (!ParseValue(&v, depth + 1)) return false;
      out->items.push_back(std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  return Parser(text).Parse(out, error);
}

}  // namespace graphaug::json
