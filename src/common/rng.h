#ifndef GRAPHAUG_COMMON_RNG_H_
#define GRAPHAUG_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace graphaug {

/// Deterministic, fast pseudo-random number generator (xoshiro256**,
/// seeded through SplitMix64). Every stochastic component in the library
/// takes an explicit Rng so experiments reproduce bit-for-bit.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator in place.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
    has_cached_gaussian_ = false;
  }

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return (NextU64() >> 11) * 0x1.0p-53; }

  /// Uniform float in [0, 1).
  float UniformFloat() { return static_cast<float>(Uniform()); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) { return NextU64() % n; }

  /// Uniform integer in [lo, hi).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo)));
  }

  /// Standard normal sample (Box–Muller with caching).
  double Gaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = Uniform();
    // Avoid log(0).
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

  /// Normal sample with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Logistic(0,1) sample: log(e / (1 - e)) for e ~ U(0,1). This is the
  /// noise used by the concrete/Gumbel-softmax reparameterization (Eq. 5).
  double Logistic() {
    double u = Uniform();
    if (u < 1e-12) u = 1e-12;
    if (u > 1.0 - 1e-12) u = 1.0 - 1e-12;
    return std::log(u / (1.0 - u));
  }

  /// Forks a statistically independent child generator. Useful for giving
  /// each component (sampler, init, corruption) its own stream.
  Rng Fork() { return Rng(NextU64() ^ 0xda3e39cb94b95bdbULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace graphaug

#endif  // GRAPHAUG_COMMON_RNG_H_
