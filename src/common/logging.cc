#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace graphaug {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::fprintf(stderr, "[%8.3f] [%s] %s\n", secs, LevelTag(level_),
               os_.str().c_str());
}

}  // namespace internal_logging
}  // namespace graphaug
