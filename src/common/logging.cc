#include "common/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace graphaug {
namespace {

/// Initial level: GRAPHAUG_LOG_LEVEL when set and parseable, else kInfo —
/// so the default behavior is unchanged for anyone not setting the env.
int InitialLevel() {
  if (const char* env = std::getenv("GRAPHAUG_LOG_LEVEL")) {
    LogLevel level;
    if (ParseLogLevel(env, &level)) return static_cast<int>(level);
  }
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int> g_min_level{InitialLevel()};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  std::string s = name;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "debug") {
    *out = LogLevel::kDebug;
  } else if (s == "info") {
    *out = LogLevel::kInfo;
  } else if (s == "warn" || s == "warning") {
    *out = LogLevel::kWarn;
  } else if (s == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::fprintf(stderr, "[%8.3f] [%s] %s\n", secs, LevelTag(level_),
               os_.str().c_str());
}

}  // namespace internal_logging
}  // namespace graphaug
