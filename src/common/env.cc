#include "common/env.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <thread>

namespace graphaug {

RuntimeEnv ProbeRuntimeEnv() {
  RuntimeEnv env;
  env.hardware_concurrency =
      std::max(1u, std::thread::hardware_concurrency());

  env.git_sha = "unknown";
  if (FILE* p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64] = {0};
    if (std::fgets(buf, sizeof(buf), p) != nullptr) {
      std::string sha(buf);
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
        sha.pop_back();
      }
      if (!sha.empty()) env.git_sha = sha;
    }
    pclose(p);
  }

  const std::time_t now = std::time(nullptr);
  std::tm utc = {};
  if (gmtime_r(&now, &utc) != nullptr) {
    char ts[32];
    std::strftime(ts, sizeof(ts), "%Y-%m-%dT%H:%M:%SZ", &utc);
    env.timestamp_utc = ts;
  }
  return env;
}

}  // namespace graphaug
