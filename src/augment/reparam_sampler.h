#ifndef GRAPHAUG_AUGMENT_REPARAM_SAMPLER_H_
#define GRAPHAUG_AUGMENT_REPARAM_SAMPLER_H_

#include "autograd/ops.h"
#include "common/rng.h"

namespace graphaug {

/// Graph sampling with reparameterization (paper Eq. 5): produces
/// differentiable soft edge weights
///   ā' = σ( (logit(p) + logit(ε')) / τ₁ ),  ε' ~ U(0,1)
///   a' = ā'  if ā' > ξ,  else 0
/// The logistic noise logit(ε') is the binary concrete / Gumbel-softmax
/// relaxation; the threshold ξ hard-drops low-confidence edges (the
/// augmentation-strength knob of Table IV). Gradients flow through the
/// retained soft weights back to the edge-scorer MLP; dropped edges are
/// cut from the gradient path, matching the piecewise definition.
///
/// `probs` is the (E x 1) output of EdgeScorer; returns an (E x 1) weight
/// vector consumable by ag::EdgeWeightedSpmm. Each call draws fresh noise,
/// so calling twice yields the two views G' and G''.
Var SampleEdgeWeights(Tape* tape, Var probs, float temperature,
                      float threshold, Rng* rng);

/// Deterministic variant without concrete noise (used at inference and in
/// tests): weights are p thresholded at ξ.
Var ThresholdEdgeWeights(Tape* tape, Var probs, float threshold);

}  // namespace graphaug

#endif  // GRAPHAUG_AUGMENT_REPARAM_SAMPLER_H_
