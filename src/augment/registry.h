#ifndef GRAPHAUG_AUGMENT_REGISTRY_H_
#define GRAPHAUG_AUGMENT_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "augment/augmenter.h"

namespace graphaug {

/// Creates the augmentor selected by `config.name` ("gib", "edgedrop",
/// "advcl", "autocf", "lightgcl"), configured from the matching
/// per-strategy struct. Aborts on unknown names. This is the authoritative
/// factory; models/registry re-exports it so callers that already link the
/// model registry need no extra include.
std::unique_ptr<GraphAugmenter> MakeAugmenter(const AugmentorConfig& config);

/// Every registered augmentor name, in shoot-out table order.
std::vector<std::string> AugmenterNames();

}  // namespace graphaug

#endif  // GRAPHAUG_AUGMENT_REGISTRY_H_
