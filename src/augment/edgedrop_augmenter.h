#ifndef GRAPHAUG_AUGMENT_EDGEDROP_AUGMENTER_H_
#define GRAPHAUG_AUGMENT_EDGEDROP_AUGMENTER_H_

#include "augment/augmenter.h"

namespace graphaug {

/// SGL-style stochastic edge dropout behind the GraphAugmenter interface:
/// Adapt resamples two independently corrupted graphs per epoch (the draw
/// order matches the pre-interface Sgl model exactly — view A fully drawn
/// before view B — which the golden parity test pins); Augment hands out
/// the prebuilt normalized adjacencies as structural views.
class EdgeDropAugmenter : public GraphAugmenter {
 public:
  explicit EdgeDropAugmenter(const EdgeDropAugmentorConfig& config)
      : config_(config) {}

  std::string name() const override { return "edgedrop"; }

  void Init(const AugmenterInit& init) override;
  void Adapt(int epoch, Rng* rng) override;
  AugmentedViews Augment(const AugmenterState& state) override;

 private:
  EdgeDropAugmentorConfig config_;
  const BipartiteGraph* graph_ = nullptr;
  BipartiteGraph view_a_, view_b_;
  NormalizedAdjacency adj_a_, adj_b_;
  bool adapted_ = false;
};

}  // namespace graphaug

#endif  // GRAPHAUG_AUGMENT_EDGEDROP_AUGMENTER_H_
