#include "augment/advcl_augmenter.h"

#include <algorithm>

#include "models/propagation.h"

namespace graphaug {

Var AdvClInnerLoss(Tape* tape, Parameter* delta,
                   const NormalizedAdjacency* adj, const Matrix& base,
                   const Matrix& reference,
                   const std::vector<int32_t>& nodes, int num_layers,
                   float temperature) {
  Var d = ag::Leaf(tape, delta);
  Var w = ag::AddScalar(d, 1.f);
  Var b = ag::Constant(tape, base);
  Var h_adv = WeightedLightGcnPropagate(tape, adj, w, b, num_layers);
  Var h_ref = ag::Constant(tape, reference);
  return ag::InfoNceLoss(ag::GatherRows(h_adv, nodes),
                         ag::GatherRows(h_ref, nodes), temperature);
}

void AdvClAugmenter::Init(const AugmenterInit& init) {
  adj_ = init.adj;
  graph_ = init.graph;
  num_layers_ = init.num_layers;
  delta_ = inner_store_.Create("advcl.delta", graph_->num_edges(), 1);
}

AugmentedViews AdvClAugmenter::Augment(const AugmenterState& state) {
  const int64_t num_edges = graph_->num_edges();
  const int32_t num_nodes = graph_->num_nodes();
  const int n =
      static_cast<int>(std::min<int64_t>(config_.contrast_nodes, num_nodes));
  std::vector<int32_t> nodes(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    nodes[static_cast<size_t>(i)] =
        static_cast<int32_t>(state.rng->UniformInt(
            static_cast<uint64_t>(num_nodes)));
  }

  // Inner ascent: one gradient of the contrastive loss w.r.t. the edge
  // perturbation, on a private tape so no host gradient accumulates.
  delta_->value.Zero();
  delta_->ZeroGrad();
  {
    Tape inner;
    Var loss = AdvClInnerLoss(&inner, delta_, adj_, state.base.value(),
                              state.h_bar.value(), nodes, num_layers_,
                              config_.temperature);
    inner.Backward(loss);
  }

  // Hard view: FGSM step in the loss-increasing direction.
  Matrix w_adv(num_edges, 1);
  for (int64_t e = 0; e < num_edges; ++e) {
    const float g = delta_->grad[e];
    const float sign = g > 0.f ? 1.f : (g < 0.f ? -1.f : 0.f);
    w_adv[e] = 1.f + config_.epsilon * sign;
  }
  // Benign view: small uniform weight jitter.
  Matrix w_rnd(num_edges, 1);
  for (int64_t e = 0; e < num_edges; ++e) {
    w_rnd[e] = 1.f + config_.noise_scale *
                         (2.f * state.rng->UniformFloat() - 1.f);
  }

  AugmentedViews views;
  views.first.edge_weights = ag::Constant(state.tape, std::move(w_adv));
  views.second.edge_weights = ag::Constant(state.tape, std::move(w_rnd));
  return views;
}

}  // namespace graphaug
