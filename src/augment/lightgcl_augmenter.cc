#include "augment/lightgcl_augmenter.h"

namespace graphaug {

void LightGclAugmenter::Init(const AugmenterInit& init) {
  num_layers_ = init.num_layers;
  if (init.power_cache != nullptr) {
    svd_ = RandomizedSvd(*init.power_cache, config_.rank,
                         config_.power_iterations, config_.oversample,
                         init.rng);
  } else {
    svd_ = RandomizedSvd(init.adj->matrix, config_.rank,
                         config_.power_iterations, config_.oversample,
                         init.rng);
  }
  const int64_t q = static_cast<int64_t>(svd_.s.size());
  s_col_ = Matrix(q, 1);
  for (int64_t j = 0; j < q; ++j) s_col_[j] = svd_.s[static_cast<size_t>(j)];
}

AugmentedViews LightGclAugmenter::Augment(const AugmenterState& state) {
  Tape* tape = state.tape;
  Var u = ag::Constant(tape, svd_.u);
  Var v = ag::Constant(tape, svd_.v);
  Var s = ag::Constant(tape, s_col_);

  // Low-rank LightGCN propagation: mean over layers 0..L of
  // h_{l+1} = U diag(s) Vᵀ h_l, mirroring LightGcnPropagate's layer mean.
  Var h = state.base;
  Var acc = state.base;
  for (int l = 0; l < num_layers_; ++l) {
    Var t = ag::MatMul(v, h, /*trans_a=*/true);  // q x d
    t = ag::MulColBroadcast(t, s);
    h = ag::MatMul(u, t);  // (I+J) x d
    acc = ag::Add(acc, h);
  }
  Var z = ag::Scale(acc, 1.f / static_cast<float>(num_layers_ + 1));

  AugmentedViews views;
  views.first.embeddings = z;
  // LightGCL contrasts the SVD channel against the main channel itself.
  views.second.embeddings = state.h_bar;
  return views;
}

}  // namespace graphaug
