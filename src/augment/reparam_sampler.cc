#include "augment/reparam_sampler.h"

namespace graphaug {

Var SampleEdgeWeights(Tape* tape, Var probs, float temperature,
                      float threshold, Rng* rng) {
  GA_CHECK_GT(temperature, 0.f);
  GA_CHECK_EQ(probs.cols(), 1);
  // logit(p) with clamped probabilities for stability.
  Var logit_p = ag::Sub(ag::Log(probs, 1e-6f),
                        ag::Log(ag::AddScalar(ag::Neg(probs), 1.f), 1e-6f));
  Matrix noise(probs.rows(), 1);
  for (int64_t i = 0; i < noise.size(); ++i) {
    noise[i] = static_cast<float>(rng->Logistic());
  }
  Var perturbed = ag::Add(logit_p, ag::Constant(tape, std::move(noise)));
  Var soft = ag::Sigmoid(ag::Scale(perturbed, 1.f / temperature));
  if (threshold <= 0.f) return soft;
  // Hard threshold as a constant gate derived from the forward value:
  // kept edges retain the soft weight (and its gradient), dropped edges
  // become exactly 0 with no gradient — Eq. 5's piecewise form.
  Matrix gate(probs.rows(), 1);
  const Matrix& s = soft.value();
  for (int64_t i = 0; i < gate.size(); ++i) {
    gate[i] = s[i] > threshold ? 1.f : 0.f;
  }
  return ag::Mul(soft, ag::Constant(tape, std::move(gate)));
}

Var ThresholdEdgeWeights(Tape* tape, Var probs, float threshold) {
  Matrix gate(probs.rows(), 1);
  const Matrix& p = probs.value();
  for (int64_t i = 0; i < gate.size(); ++i) {
    gate[i] = p[i] > threshold ? 1.f : 0.f;
  }
  return ag::Mul(probs, ag::Constant(tape, std::move(gate)));
}

}  // namespace graphaug
