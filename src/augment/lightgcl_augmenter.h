#ifndef GRAPHAUG_AUGMENT_LIGHTGCL_AUGMENTER_H_
#define GRAPHAUG_AUGMENT_LIGHTGCL_AUGMENTER_H_

#include "augment/augmenter.h"
#include "augment/svd.h"

namespace graphaug {

/// LightGCL-style SVD-guided augmentation: Init factorizes the normalized
/// adjacency once with the randomized truncated SVD (through the host's
/// warm AdjacencyPowerCache when available); Augment propagates the
/// embedding table through the low-rank reconstruction
///   h_{l+1} = U diag(s) Vᵀ h_l
/// and returns the layer-mean as a fully-encoded first view. The second
/// view is the host's own observed-graph encoding — LightGCL contrasts
/// the main channel against the SVD channel rather than two corrupted
/// graphs. U, s, V enter the tape as constants; gradients flow through
/// the dense embedding operand only.
class LightGclAugmenter : public GraphAugmenter {
 public:
  explicit LightGclAugmenter(const LightGclAugmentorConfig& config)
      : config_(config) {}

  std::string name() const override { return "lightgcl"; }

  void Init(const AugmenterInit& init) override;
  AugmentedViews Augment(const AugmenterState& state) override;

 private:
  LightGclAugmentorConfig config_;
  int num_layers_ = 0;
  SvdResult svd_;
  Matrix s_col_;  ///< singular values as a (q x 1) column for broadcasts
};

}  // namespace graphaug

#endif  // GRAPHAUG_AUGMENT_LIGHTGCL_AUGMENTER_H_
