#ifndef GRAPHAUG_AUGMENT_AUGMENTER_H_
#define GRAPHAUG_AUGMENT_AUGMENTER_H_

#include <string>

#include "autograd/ops.h"
#include "common/rng.h"
#include "data/sampler.h"
#include "graph/bipartite_graph.h"

namespace graphaug {

/// Per-strategy configuration structs. Each augmentor owns its knobs here
/// instead of spreading them across the host model's config; the host only
/// carries an AugmentorConfig and forwards the struct matching the selected
/// strategy.

/// GraphAug's learnable GIB augmentor (paper Eqs. 4-10): edge-scorer MLP,
/// concrete reparameterized sampling, and the variational GIB bounds.
struct GibAugmentorConfig {
  float concrete_temperature = 0.2f;  ///< τ₁ in Eq. 5
  float edge_threshold = 0.2f;        ///< ξ (augmentation strength, Tab. IV)
  float gib_beta = 1.f;               ///< β inside L_GIB (Eq. 2)
  float beta1 = 1e-5f;                ///< weight of the GIB KL bound (Eq. 16)
  /// Weight of the GIB prediction bound −log q(Y|Z'). Kept at O(1) rather
  /// than folded under β₁: the prediction bound is what anchors the
  /// learnable augmentor to the recommendation labels — without it the
  /// contrastive term alone is minimized by degenerate all-dropped views.
  float gib_pred_weight = 0.5f;
  /// Prior retention probability π and weight of the structure-level
  /// Bernoulli-KL compression bound KL(Bern(p_e) ‖ Bern(π)). Off by
  /// default (see GraphAugConfig history: it rescales probabilities toward
  /// π without improving noise discrimination on the simulated benchmarks).
  float structure_prior = 0.7f;
  float structure_kl_weight = 0.0f;
  float scorer_noise = 0.1f;  ///< ε std-dev in Eq. 4
  /// When false the augmentor still produces the two sampled views but
  /// returns no auxiliary loss ("w/o GIB" ablation).
  bool gib_loss = true;
};

/// SGL-style stochastic edge dropout: two independently corrupted graphs
/// resampled at every epoch boundary (Adapt), encoded as full structural
/// views.
struct EdgeDropAugmentorConfig {
  float drop_prob = 0.1f;       ///< per-edge drop probability, per view
  float self_loop_weight = 0.f; ///< Ã self-loop weight of the view graphs
};

/// AdvCL-style adversarial augmentation (arXiv 2302.02317): one FGSM-style
/// gradient-ascent step on per-edge weights against the contrastive loss
/// yields the hard view; the second view is a small random weight
/// perturbation.
struct AdvClAugmentorConfig {
  float epsilon = 0.05f;      ///< adversarial step size on edge weights
  float noise_scale = 0.05f;  ///< uniform weight noise of the benign view
  int contrast_nodes = 128;   ///< node batch of the inner contrastive loss
  float temperature = 0.2f;   ///< InfoNCE τ of the inner loss
};

/// AutoCF-style masked-autoencoder augmentation (arXiv 2303.07797): two
/// complementary random edge masks drawn per epoch; the auxiliary loss
/// asks each view's embeddings to reconstruct (rank) its own masked-out
/// edges against random negatives.
struct AutoCfAugmentorConfig {
  float mask_ratio = 0.1f;   ///< fraction of edges masked per view
  float recon_weight = 0.1f; ///< weight of the reconstruction loss
};

/// LightGCL-style SVD-guided augmentation (arXiv 2205.00976 lineage): a
/// randomized truncated SVD of the normalized adjacency computed once at
/// Init; the augmented view propagates embeddings through the low-rank
/// reconstruction U S Vᵀ instead of the observed graph.
struct LightGclAugmentorConfig {
  int rank = 8;             ///< retained singular triplets q
  int power_iterations = 3; ///< subspace power iterations
  int oversample = 4;       ///< extra random probes beyond rank
};

/// Strategy selector plus every per-strategy struct. Only the struct
/// matching `name` is read; keeping them all by value keeps the config
/// trivially copyable and slicing-safe.
struct AugmentorConfig {
  std::string name = "gib";  ///< gib | edgedrop | advcl | autocf | lightgcl
  GibAugmentorConfig gib;
  EdgeDropAugmentorConfig edgedrop;
  AdvClAugmentorConfig advcl;
  AutoCfAugmentorConfig autocf;
  LightGclAugmentorConfig lightgcl;
};

/// Everything an augmentor may bind to at setup time. All pointers are
/// non-owning and must outlive the augmentor; `rng` is the host model's
/// generator, valid only for the duration of Init (draws made here are
/// part of the model's deterministic construction stream).
struct AugmenterInit {
  const BipartiteGraph* graph = nullptr;
  const NormalizedAdjacency* adj = nullptr;
  const AdjacencyPowerCache* power_cache = nullptr;
  ParamStore* store = nullptr;  ///< host parameter store (trainable state)
  int dim = 0;
  int num_layers = 0;
  Rng* rng = nullptr;
};

/// One augmented view, in exactly one of three shapes (checked in this
/// order by hosts):
///  - `embeddings` valid: the view is already encoded ((I+J) x d on the
///    host tape) — e.g. LightGCL's low-rank propagation;
///  - `adjacency` set: a structural replacement graph the host encodes
///    with its own encoder — e.g. edge dropout;
///  - `edge_weights` valid: differentiable (E x 1) weights over the host
///    adjacency's interactions, consumable by ag::EdgeWeightedSpmm.
struct AugmentedView {
  Var edge_weights;
  const NormalizedAdjacency* adjacency = nullptr;
  Var embeddings;
};

/// The two contrastive views G' and G'' of one training step.
struct AugmentedViews {
  AugmentedView first;
  AugmentedView second;
};

/// Per-batch host state handed to Augment/AuxLoss. All members live on the
/// host side; `rng` is the model generator whose draw order defines the
/// bitwise-reproducibility contract.
struct AugmenterState {
  Tape* tape = nullptr;
  Var base;    ///< embedding-table leaf
  Var h_bar;   ///< encoder output on the observed graph
  const TripletBatch* batch = nullptr;
  Rng* rng = nullptr;
};

/// Interface of the pluggable augmentation family (shape follows the
/// Init/Augment/Adapt contract of graph-augmentation libraries). Lifecycle:
/// Init once after the host built its graph state, Adapt at each epoch
/// boundary, Augment once per training batch. Both views are produced by a
/// single Augment call because strategies may share per-batch state across
/// the views (GIB scores the edges once and samples twice); splitting the
/// call would change the RNG draw order and break the determinism
/// contract.
///
/// Determinism: given a fixed seed and thread count-independent kernels,
/// every implementation must consume `rng` in a platform-independent order
/// so training embeddings reproduce bitwise at any thread count.
class GraphAugmenter {
 public:
  virtual ~GraphAugmenter() = default;

  /// Registry name of the strategy ("gib", "edgedrop", ...).
  virtual std::string name() const = 0;

  /// Binds graph/encoder state and creates trainable parameters (if any)
  /// in the host store. Called exactly once, before any Augment.
  virtual void Init(const AugmenterInit& init) = 0;

  /// Per-epoch adaptation hook (resample corrupted graphs, redraw masks).
  /// Default: stateless no-op that draws nothing from `rng`.
  virtual void Adapt(int epoch, Rng* rng) {
    (void)epoch;
    (void)rng;
  }

  /// Produces the two augmented views for the current batch.
  virtual AugmentedViews Augment(const AugmenterState& state) = 0;

  /// Optional auxiliary objective (GIB bounds, masked-edge reconstruction)
  /// over the encoded views. Returns an invalid Var when the strategy has
  /// none; hosts add the returned scalar to their loss unchanged — any
  /// weighting is the augmentor's own business.
  virtual Var AuxLoss(const AugmenterState& state, Var z_prime,
                      Var z_dprime) {
    (void)state;
    (void)z_prime;
    (void)z_dprime;
    return Var();
  }

  /// Whether EdgeScores returns a valid Var. Lets hosts reject
  /// score-dependent workflows (denoising) up front instead of after a
  /// forward pass.
  virtual bool has_edge_scores() const { return false; }

  /// Per-interaction retention scores in graph-edge order (noise-free),
  /// for strategies that learn one ((E x 1) on `tape`). Invalid Var when
  /// the strategy has no notion of edge scores (`has_edge_scores()`).
  virtual Var EdgeScores(Tape* tape, Var h_bar) {
    (void)tape;
    (void)h_bar;
    return Var();
  }
};

}  // namespace graphaug

#endif  // GRAPHAUG_AUGMENT_AUGMENTER_H_
