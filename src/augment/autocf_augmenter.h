#ifndef GRAPHAUG_AUGMENT_AUTOCF_AUGMENTER_H_
#define GRAPHAUG_AUGMENT_AUTOCF_AUGMENTER_H_

#include <vector>

#include "augment/augmenter.h"

namespace graphaug {

/// AutoCF-style masked-autoencoder augmentation (arXiv 2303.07797,
/// simplified to the shared LightGCN-style backbone): Adapt draws two
/// independent random edge masks per epoch; Augment presents each masked
/// graph as a constant 0/1 edge-weight view; AuxLoss asks each view's
/// embeddings to rank their own held-out (masked) edges above random
/// negatives — the reconstruction signal that makes the masked view an
/// autoencoder rather than plain dropout.
class AutoCfAugmenter : public GraphAugmenter {
 public:
  explicit AutoCfAugmenter(const AutoCfAugmentorConfig& config)
      : config_(config) {}

  std::string name() const override { return "autocf"; }

  void Init(const AugmenterInit& init) override;
  void Adapt(int epoch, Rng* rng) override;
  AugmentedViews Augment(const AugmenterState& state) override;
  Var AuxLoss(const AugmenterState& state, Var z_prime,
              Var z_dprime) override;

 private:
  /// BPR ranking of the masked edges of one view against random negative
  /// items drawn from `rng`.
  Var ReconstructionTerm(Tape* tape, Var z,
                         const std::vector<int64_t>& masked, Rng* rng) const;

  AutoCfAugmentorConfig config_;
  const BipartiteGraph* graph_ = nullptr;
  std::vector<int64_t> masked_a_, masked_b_;  ///< masked edge indices
  bool adapted_ = false;
};

}  // namespace graphaug

#endif  // GRAPHAUG_AUGMENT_AUTOCF_AUGMENTER_H_
