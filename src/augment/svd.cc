#include "augment/svd.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "tensor/init.h"
#include "tensor/ops.h"

namespace graphaug {
namespace {

/// In-place modified Gram-Schmidt on the columns of `m`, with a second
/// projection pass per column (the classical "twice is enough"
/// re-orthogonalization): a single MGS pass leaves columns that are
/// nearly in the span of their predecessors dominated by cancellation
/// noise, which after normalization is far from orthogonal and inflates
/// downstream Gram eigenvalues. Columns that collapse relative to their
/// pre-projection norm carry no new range direction and are zeroed —
/// downstream products treat them as absent.
void OrthonormalizeColumns(Matrix* m) {
  const int64_t rows = m->rows();
  const int64_t cols = m->cols();
  for (int64_t j = 0; j < cols; ++j) {
    double pre_norm2 = 0;
    for (int64_t i = 0; i < rows; ++i) {
      pre_norm2 += static_cast<double>(m->at(i, j)) * m->at(i, j);
    }
    for (int pass = 0; pass < 2; ++pass) {
      for (int64_t k = 0; k < j; ++k) {
        double dot = 0;
        for (int64_t i = 0; i < rows; ++i) {
          dot += static_cast<double>(m->at(i, k)) * m->at(i, j);
        }
        const float d = static_cast<float>(dot);
        if (d == 0.f) continue;
        for (int64_t i = 0; i < rows; ++i) m->at(i, j) -= d * m->at(i, k);
      }
    }
    double norm2 = 0;
    for (int64_t i = 0; i < rows; ++i) {
      norm2 += static_cast<double>(m->at(i, j)) * m->at(i, j);
    }
    const double norm = std::sqrt(norm2);
    // Relative collapse test: what survived the projections is pure
    // rounding noise when it is ~1e-6 of the column's original length
    // (float eps is 1e-7; one spare decade of slack).
    if (norm <= 1e-6 * std::sqrt(pre_norm2) || norm < 1e-30) {
      for (int64_t i = 0; i < rows; ++i) m->at(i, j) = 0.f;
    } else {
      const float inv = static_cast<float>(1.0 / norm);
      for (int64_t i = 0; i < rows; ++i) m->at(i, j) *= inv;
    }
  }
}

using ApplyFn = std::function<void(const Matrix&, Matrix*)>;

/// Shared driver: `apply` computes A·x, `apply_t` computes Aᵀ·x.
SvdResult RandomizedSvdImpl(int64_t rows, int64_t cols, const ApplyFn& apply,
                            const ApplyFn& apply_t, int rank,
                            int power_iters, int oversample, Rng* rng) {
  GA_CHECK_GE(rank, 1);
  const int64_t q =
      std::min<int64_t>(rank + std::max(0, oversample), std::min(rows, cols));

  // Range probe Y = A G, G Gaussian.
  Matrix probe(cols, q);
  InitNormal(&probe, rng, 0.f, 1.f);
  Matrix range;  // rows x q
  apply(probe, &range);
  OrthonormalizeColumns(&range);

  // Subspace iteration sharpens the probe toward the dominant range.
  Matrix scratch;
  for (int it = 0; it < power_iters; ++it) {
    apply_t(range, &scratch);  // cols x q
    OrthonormalizeColumns(&scratch);
    apply(scratch, &range);  // rows x q
    OrthonormalizeColumns(&range);
  }

  // B = Qᵀ A is q x cols; its transpose Bt = Aᵀ Q is what the sparse
  // kernel produces directly. Gram C = B Bᵀ = Btᵀ Bt (q x q).
  Matrix bt;  // cols x q
  apply_t(range, &bt);
  Matrix gram;
  Gemm(bt, true, bt, false, 1.f, 0.f, &gram);  // q x q

  std::vector<float> eigenvalues;
  Matrix eigenvectors;
  JacobiEigh(gram, &eigenvalues, &eigenvectors);

  const int64_t keep = std::min<int64_t>(rank, q);
  SvdResult result;
  result.s.resize(static_cast<size_t>(keep));
  for (int64_t j = 0; j < keep; ++j) {
    result.s[static_cast<size_t>(j)] =
        std::sqrt(std::max(0.f, eigenvalues[static_cast<size_t>(j)]));
  }
  Matrix w = SliceCols(eigenvectors, 0, keep);  // q x keep
  Gemm(range, false, w, false, 1.f, 0.f, &result.u);  // rows x keep
  Gemm(bt, false, w, false, 1.f, 0.f, &result.v);     // cols x keep
  // V = Bt W diag(1/s); rank-deficient directions stay zero.
  for (int64_t j = 0; j < keep; ++j) {
    const float s = result.s[static_cast<size_t>(j)];
    const float inv = s > 1e-12f ? 1.f / s : 0.f;
    for (int64_t i = 0; i < cols; ++i) result.v.at(i, j) *= inv;
  }
  return result;
}

}  // namespace

void JacobiEigh(const Matrix& a, std::vector<float>* eigenvalues,
                Matrix* eigenvectors) {
  GA_CHECK_EQ(a.rows(), a.cols());
  const int64_t n = a.rows();
  Matrix d = a;  // working copy, driven to diagonal
  Matrix v(n, n);
  for (int64_t i = 0; i < n; ++i) v.at(i, i) = 1.f;

  constexpr int kMaxSweeps = 64;
  constexpr double kTol = 1e-12;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0;
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t r = p + 1; r < n; ++r) {
        off += static_cast<double>(d.at(p, r)) * d.at(p, r);
      }
    }
    if (off < kTol) break;
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t r = p + 1; r < n; ++r) {
        const double apq = d.at(p, r);
        if (std::abs(apq) < 1e-20) continue;
        const double app = d.at(p, p);
        const double aqq = d.at(r, r);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int64_t k = 0; k < n; ++k) {
          const double dkp = d.at(k, p);
          const double dkq = d.at(k, r);
          d.at(k, p) = static_cast<float>(c * dkp - s * dkq);
          d.at(k, r) = static_cast<float>(s * dkp + c * dkq);
        }
        for (int64_t k = 0; k < n; ++k) {
          const double dpk = d.at(p, k);
          const double dqk = d.at(r, k);
          d.at(p, k) = static_cast<float>(c * dpk - s * dqk);
          d.at(r, k) = static_cast<float>(s * dpk + c * dqk);
        }
        for (int64_t k = 0; k < n; ++k) {
          const double vkp = v.at(k, p);
          const double vkq = v.at(k, r);
          v.at(k, p) = static_cast<float>(c * vkp - s * vkq);
          v.at(k, r) = static_cast<float>(s * vkp + c * vkq);
        }
      }
    }
  }

  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return d.at(x, x) > d.at(y, y);
  });
  eigenvalues->resize(static_cast<size_t>(n));
  *eigenvectors = Matrix(n, n);
  for (int64_t j = 0; j < n; ++j) {
    const int64_t src = order[static_cast<size_t>(j)];
    (*eigenvalues)[static_cast<size_t>(j)] = d.at(src, src);
    for (int64_t i = 0; i < n; ++i) {
      eigenvectors->at(i, j) = v.at(i, src);
    }
  }
}

SvdResult RandomizedSvd(const CsrMatrix& a, int rank, int power_iters,
                        int oversample, Rng* rng) {
  return RandomizedSvdImpl(
      a.rows(), a.cols(),
      [&a](const Matrix& x, Matrix* out) { a.Spmm(x, out); },
      [&a](const Matrix& x, Matrix* out) { a.SpmmT(x, out); }, rank,
      power_iters, oversample, rng);
}

SvdResult RandomizedSvd(const AdjacencyPowerCache& cache, int rank,
                        int power_iters, int oversample, Rng* rng) {
  const CsrMatrix& a = cache.adjacency();
  return RandomizedSvdImpl(
      a.rows(), a.cols(),
      [&cache](const Matrix& x, Matrix* out) { cache.Apply(1, x, out); },
      [&cache](const Matrix& x, Matrix* out) {
        cache.ApplyTransposed(1, x, out);
      },
      rank, power_iters, oversample, rng);
}

}  // namespace graphaug
