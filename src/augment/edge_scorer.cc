#include "augment/edge_scorer.h"

#include "tensor/init.h"

namespace graphaug {

EdgeScorer::EdgeScorer(ParamStore* store, const std::string& name, int dim,
                       Rng* rng, float noise_stddev)
    : dim_(dim),
      noise_stddev_(noise_stddev),
      user_mask_(store->Create(name + ".user_mask", 1, dim)),
      item_mask_(store->Create(name + ".item_mask", 1, dim)),
      mlp_(store, name + ".mlp", {2 * static_cast<int64_t>(dim), dim, 1}, rng,
           Activation::kLeakyRelu) {
  // Mask logits start at +2 => masks near sigmoid(2) ≈ 0.88: begin close
  // to the identity and learn what to suppress.
  user_mask_->value.Fill(2.f);
  item_mask_->value.Fill(2.f);
  // Optimistic initialization of the retention probability: the final MLP
  // bias starts positive so p((u,v)) ≈ 0.82 and early training sees
  // near-complete graphs; the scorer then learns what to *remove*.
  mlp_.layers().back().bias()->value.Fill(1.5f);
}

Var EdgeScorer::Score(Tape* tape, Var node_embeddings,
                      const std::vector<Edge>& edges, int32_t item_offset,
                      Rng* rng) const {
  std::vector<int32_t> user_rows(edges.size());
  std::vector<int32_t> item_rows(edges.size());
  for (size_t e = 0; e < edges.size(); ++e) {
    user_rows[e] = edges[e].user;
    item_rows[e] = item_offset + edges[e].item;
  }
  Var hu = ag::GatherRows(node_embeddings, std::move(user_rows));
  Var hv = ag::GatherRows(node_embeddings, std::move(item_rows));

  // h̃ = (h - ε) ⊙ m + ε  ==  h ⊙ m + ε ⊙ (1 - m).
  auto disturb = [&](Var h, Parameter* mask_param) {
    Var m = ag::Sigmoid(ag::Leaf(tape, mask_param));
    Var hm = ag::MulRowBroadcast(h, m);
    if (rng == nullptr || noise_stddev_ <= 0.f) return hm;
    Matrix eps(h.rows(), h.cols());
    InitNormal(&eps, rng, 0.f, noise_stddev_);
    Var one_minus_m = ag::AddScalar(ag::Neg(m), 1.f);
    Var noise =
        ag::MulRowBroadcast(ag::Constant(tape, std::move(eps)), one_minus_m);
    return ag::Add(hm, noise);
  };
  Var tu = disturb(hu, user_mask_);
  Var tv = disturb(hv, item_mask_);
  Var logits = mlp_.Forward(tape, ag::ConcatCols(tu, tv));
  return ag::Sigmoid(logits);
}

}  // namespace graphaug
