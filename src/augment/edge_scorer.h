#ifndef GRAPHAUG_AUGMENT_EDGE_SCORER_H_
#define GRAPHAUG_AUGMENT_EDGE_SCORER_H_

#include <vector>

#include "autograd/ops.h"
#include "graph/bipartite_graph.h"
#include "nn/layers.h"

namespace graphaug {

/// Learnable graph augmentor Aug(G) of paper Eq. 4: estimates the
/// probability of each observed interaction surviving into the augmented
/// graph,
///   p((u,v) | H̄) = σ( MLP( h̃_u ‖ h̃_v ) ),
///   h̃ = (h̄ − ε) ⊙ m + ε,  ε ~ N(0, σ²I),
/// where m is a learnable (sigmoid-gated) feature mask for the user/item
/// sides and ε adaptively injects noise so the scorer distills robust
/// features rather than memorizing coordinates.
class EdgeScorer {
 public:
  EdgeScorer(ParamStore* store, const std::string& name, int dim, Rng* rng,
             float noise_stddev = 0.1f);

  /// Scores the given interactions from encoded node embeddings
  /// ((I+J) x d, users first). Returns an (E x 1) vector of probabilities
  /// in (0, 1). `rng` draws the per-call ε noise; pass nullptr for the
  /// deterministic (noise-free) inference mode used by the case study.
  Var Score(Tape* tape, Var node_embeddings, const std::vector<Edge>& edges,
            int32_t item_offset, Rng* rng) const;

 private:
  int dim_;
  float noise_stddev_;
  Parameter* user_mask_;  ///< 1 x d mask logits (m_u = sigmoid)
  Parameter* item_mask_;  ///< 1 x d mask logits (m_v = sigmoid)
  Mlp mlp_;               ///< [2d -> d -> 1]
};

}  // namespace graphaug

#endif  // GRAPHAUG_AUGMENT_EDGE_SCORER_H_
