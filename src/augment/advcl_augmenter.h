#ifndef GRAPHAUG_AUGMENT_ADVCL_AUGMENTER_H_
#define GRAPHAUG_AUGMENT_ADVCL_AUGMENTER_H_

#include <vector>

#include "augment/augmenter.h"

namespace graphaug {

/// Inner objective of the adversarial step, exposed as a free function so
/// the finite-difference gradient test can exercise the exact loss the
/// augmentor ascends. Builds, on `tape`, the InfoNCE loss between
/// (a) embeddings propagated through the adjacency with per-edge weights
/// 1 + delta (delta being the trainable perturbation leaf) and
/// (b) the fixed reference embeddings, gathered at `nodes`.
Var AdvClInnerLoss(Tape* tape, Parameter* delta,
                   const NormalizedAdjacency* adj, const Matrix& base,
                   const Matrix& reference,
                   const std::vector<int32_t>& nodes, int num_layers,
                   float temperature);

/// AdvCL-style adversarial augmentation (arXiv 2302.02317 adapted to
/// edge-weight space): each batch takes one FGSM-style gradient-ascent
/// step on per-edge weight perturbations against the contrastive loss —
/// the hard view uses weights 1 + ε·sign(∂L/∂δ), the benign view a small
/// uniform weight jitter. The inner ascent runs on a private tape and a
/// private parameter store, so host parameter gradients are untouched;
/// the resulting weights enter the host tape as constants (the outer
/// gradient flows through the dense operand of the weighted propagation,
/// as in standard adversarial training).
class AdvClAugmenter : public GraphAugmenter {
 public:
  explicit AdvClAugmenter(const AdvClAugmentorConfig& config)
      : config_(config) {}

  std::string name() const override { return "advcl"; }

  void Init(const AugmenterInit& init) override;
  AugmentedViews Augment(const AugmenterState& state) override;

 private:
  AdvClAugmentorConfig config_;
  const NormalizedAdjacency* adj_ = nullptr;
  const BipartiteGraph* graph_ = nullptr;
  int num_layers_ = 0;
  ParamStore inner_store_;     ///< private: holds only the perturbation
  Parameter* delta_ = nullptr; ///< (E x 1) edge-weight perturbation
};

}  // namespace graphaug

#endif  // GRAPHAUG_AUGMENT_ADVCL_AUGMENTER_H_
