#include "augment/autocf_augmenter.h"

namespace graphaug {
namespace {

/// Constant (E x 1) weight vector with zeros at the masked edges.
Matrix MaskWeights(int64_t num_edges, const std::vector<int64_t>& masked) {
  Matrix w(num_edges, 1, 1.f);
  for (int64_t e : masked) w[e] = 0.f;
  return w;
}

}  // namespace

void AutoCfAugmenter::Init(const AugmenterInit& init) {
  graph_ = init.graph;
}

void AutoCfAugmenter::Adapt(int epoch, Rng* rng) {
  (void)epoch;
  const int64_t num_edges = graph_->num_edges();
  masked_a_.clear();
  masked_b_.clear();
  for (int64_t e = 0; e < num_edges; ++e) {
    if (rng->Bernoulli(config_.mask_ratio)) masked_a_.push_back(e);
  }
  for (int64_t e = 0; e < num_edges; ++e) {
    if (rng->Bernoulli(config_.mask_ratio)) masked_b_.push_back(e);
  }
  adapted_ = true;
}

AugmentedViews AutoCfAugmenter::Augment(const AugmenterState& state) {
  GA_CHECK(adapted_) << "AutoCfAugmenter::Augment before first Adapt";
  const int64_t num_edges = graph_->num_edges();
  AugmentedViews views;
  views.first.edge_weights =
      ag::Constant(state.tape, MaskWeights(num_edges, masked_a_));
  views.second.edge_weights =
      ag::Constant(state.tape, MaskWeights(num_edges, masked_b_));
  return views;
}

Var AutoCfAugmenter::ReconstructionTerm(Tape* tape, Var z,
                                        const std::vector<int64_t>& masked,
                                        Rng* rng) const {
  const int32_t item_offset = graph_->num_users();
  const std::vector<Edge>& edges = graph_->edges();
  std::vector<int32_t> users, pos_nodes, neg_nodes;
  users.reserve(masked.size());
  pos_nodes.reserve(masked.size());
  neg_nodes.reserve(masked.size());
  for (int64_t e : masked) {
    users.push_back(edges[static_cast<size_t>(e)].user);
    pos_nodes.push_back(item_offset + edges[static_cast<size_t>(e)].item);
    neg_nodes.push_back(item_offset +
                        static_cast<int32_t>(rng->UniformInt(
                            static_cast<uint64_t>(graph_->num_items()))));
  }
  Var u = ag::GatherRows(z, users);
  Var p = ag::GatherRows(z, pos_nodes);
  Var n = ag::GatherRows(z, neg_nodes);
  return ag::BprLoss(ag::RowDot(u, p), ag::RowDot(u, n));
}

Var AutoCfAugmenter::AuxLoss(const AugmenterState& state, Var z_prime,
                             Var z_dprime) {
  // Tiny graphs (or small mask ratios) can leave a view without masked
  // edges; reconstruction then has nothing to rank.
  if (masked_a_.empty() || masked_b_.empty()) return Var();
  Var ra = ReconstructionTerm(state.tape, z_prime, masked_a_, state.rng);
  Var rb = ReconstructionTerm(state.tape, z_dprime, masked_b_, state.rng);
  return ag::Scale(ag::Add(ra, rb), 0.5f * config_.recon_weight);
}

}  // namespace graphaug
