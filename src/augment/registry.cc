#include "augment/registry.h"

#include "augment/advcl_augmenter.h"
#include "augment/autocf_augmenter.h"
#include "augment/edgedrop_augmenter.h"
#include "augment/gib_augmenter.h"
#include "augment/lightgcl_augmenter.h"

namespace graphaug {

std::unique_ptr<GraphAugmenter> MakeAugmenter(const AugmentorConfig& config) {
  const std::string& name = config.name;
  if (name == "gib") return std::make_unique<GibAugmenter>(config.gib);
  if (name == "edgedrop") {
    return std::make_unique<EdgeDropAugmenter>(config.edgedrop);
  }
  if (name == "advcl") return std::make_unique<AdvClAugmenter>(config.advcl);
  if (name == "autocf") {
    return std::make_unique<AutoCfAugmenter>(config.autocf);
  }
  if (name == "lightgcl") {
    return std::make_unique<LightGclAugmenter>(config.lightgcl);
  }
  GA_CHECK(false) << "unknown augmentor: " << name;
  return nullptr;
}

std::vector<std::string> AugmenterNames() {
  return {"gib", "edgedrop", "advcl", "autocf", "lightgcl"};
}

}  // namespace graphaug
