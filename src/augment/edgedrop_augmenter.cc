#include "augment/edgedrop_augmenter.h"

#include "graph/corruption.h"

namespace graphaug {

void EdgeDropAugmenter::Init(const AugmenterInit& init) {
  graph_ = init.graph;
}

void EdgeDropAugmenter::Adapt(int epoch, Rng* rng) {
  (void)epoch;
  // Both corrupted graphs are drawn before either adjacency is built, so
  // the RNG stream is exactly [drop A, drop B] per epoch.
  view_a_ = DropEdges(*graph_, config_.drop_prob, *rng);
  view_b_ = DropEdges(*graph_, config_.drop_prob, *rng);
  adj_a_ = view_a_.BuildNormalizedAdjacency(config_.self_loop_weight);
  adj_b_ = view_b_.BuildNormalizedAdjacency(config_.self_loop_weight);
  adapted_ = true;
}

AugmentedViews EdgeDropAugmenter::Augment(const AugmenterState& state) {
  (void)state;
  GA_CHECK(adapted_) << "EdgeDropAugmenter::Augment before first Adapt";
  AugmentedViews views;
  views.first.adjacency = &adj_a_;
  views.second.adjacency = &adj_b_;
  return views;
}

}  // namespace graphaug
