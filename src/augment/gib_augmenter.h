#ifndef GRAPHAUG_AUGMENT_GIB_AUGMENTER_H_
#define GRAPHAUG_AUGMENT_GIB_AUGMENTER_H_

#include <memory>

#include "augment/augmenter.h"
#include "augment/edge_scorer.h"

namespace graphaug {

/// The paper's learnable GIB augmentor behind the GraphAugmenter
/// interface: EdgeScorer probabilities (Eq. 4), two concrete
/// reparameterized weight samples (Eq. 5), and the variational GIB bounds
/// as the auxiliary loss (Eqs. 9-10). Ported verbatim from the pre-
/// interface GraphAug model: parameter names, op order, and RNG draw order
/// are unchanged, so training is bitwise identical (the golden parity
/// test pins this).
class GibAugmenter : public GraphAugmenter {
 public:
  explicit GibAugmenter(const GibAugmentorConfig& config) : config_(config) {}

  std::string name() const override { return "gib"; }

  void Init(const AugmenterInit& init) override;
  AugmentedViews Augment(const AugmenterState& state) override;
  Var AuxLoss(const AugmenterState& state, Var z_prime,
              Var z_dprime) override;
  bool has_edge_scores() const override { return true; }
  Var EdgeScores(Tape* tape, Var h_bar) override;

 private:
  GibAugmentorConfig config_;
  const BipartiteGraph* graph_ = nullptr;
  std::unique_ptr<EdgeScorer> scorer_;
  /// Retention probabilities of the current batch (set by Augment, read
  /// by AuxLoss for the structure-KL bound).
  Var probs_;
};

}  // namespace graphaug

#endif  // GRAPHAUG_AUGMENT_GIB_AUGMENTER_H_
