#ifndef GRAPHAUG_AUGMENT_GIB_H_
#define GRAPHAUG_AUGMENT_GIB_H_

#include "autograd/ops.h"
#include "data/sampler.h"

namespace graphaug {

/// Graph Information Bottleneck regularization (paper §III-B.3,
/// Eqs. 6-10). The intractable GIB objective
///   L_GIB = −I(Z'; Y) + β · I(Z'; A)
/// is optimized through its variational surrogate L_KL (Eq. 9):
///  - the prediction term −log q(Y|Z') is realized as the BPR likelihood
///    of the training labels under the view embeddings (lower bound of
///    I(Z'; Y), Lemma 2);
///  - the compression term is KL( N(μ(Aₙ), η(Aₙ)) ‖ N(0, I) ), an upper
///    bound of I(Z'; A) (Lemma 1), where (μ, η) come from mean-pooling
///    the embeddings of the original and both sampled views (Eq. 10) and
///    splitting the pooled d dims into d/2 means and d/2 scales.
struct GibConfig {
  float beta = 1.f;  ///< Lagrange multiplier β inside L_GIB (Eq. 2)
};

/// Computes L_KL ≈ L_GIB for the two sampled views. `z` is GE(G) on the
/// original graph, `z_prime`/`z_dprime` the encodings of G' and G''
/// ((I+J) x d each); `batch` supplies the labels Y (observed vs negative
/// interactions); `item_offset` maps item ids to node rows.
Var GibLoss(Tape* tape, Var z, Var z_prime, Var z_dprime,
            const TripletBatch& batch, int32_t item_offset,
            const GibConfig& config);

/// The prediction half only: −log q(Y|Z') as BPR negative log-likelihood
/// of the batch under the given embeddings. Exposed for the "w/o CL"
/// ablation where GIB directly regularizes BPR.
Var GibPredictionTerm(Tape* tape, Var view, const TripletBatch& batch,
                      int32_t item_offset);

/// The compression half only: KL( N(μ, η) ‖ N(0, I) ) from the pooled
/// views (Lemma 1 / Eq. 10). Exposed so the model can weight the
/// prediction and compression bounds independently — without a
/// sufficiently-weighted prediction term the augmentor degenerates to
/// dropping every edge (the contrastive loss alone is minimized by two
/// identical empty views).
Var GibCompressionTerm(Tape* tape, Var z, Var z_prime, Var z_dprime);

/// Structure-level compression bound: mean over interactions of
/// KL( Bernoulli(p_e) ‖ Bernoulli(prior) ) on the edge retention
/// probabilities of Eq. 4. This is the Lemma-1 bound applied to the
/// sampled adjacency A' itself (the VIB-for-graph-structure form): it
/// keeps the augmentor from saturating all probabilities at 1, so the
/// retention budget concentrates on edges that help the prediction bound
/// — the mechanism that makes the learned denoising discriminative.
Var BernoulliStructureKl(Tape* tape, Var probs, float prior);

}  // namespace graphaug

#endif  // GRAPHAUG_AUGMENT_GIB_H_
