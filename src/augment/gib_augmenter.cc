#include "augment/gib_augmenter.h"

#include "augment/gib.h"
#include "augment/reparam_sampler.h"
#include "obs/health.h"

namespace graphaug {

void GibAugmenter::Init(const AugmenterInit& init) {
  graph_ = init.graph;
  scorer_ = std::make_unique<EdgeScorer>(init.store, "augmentor", init.dim,
                                         init.rng, config_.scorer_noise);
}

AugmentedViews GibAugmenter::Augment(const AugmenterState& state) {
  // (Eq. 4) Learnable augmentor scores every observed interaction.
  probs_ = scorer_->Score(state.tape, state.h_bar, graph_->edges(),
                          graph_->num_users(), state.rng);

  // (Eq. 5 / Alg. 1 line 4) Two reparameterized graph samples.
  AugmentedViews views;
  views.first.edge_weights =
      SampleEdgeWeights(state.tape, probs_, config_.concrete_temperature,
                        config_.edge_threshold, state.rng);
  views.second.edge_weights =
      SampleEdgeWeights(state.tape, probs_, config_.concrete_temperature,
                        config_.edge_threshold, state.rng);
  return views;
}

Var GibAugmenter::AuxLoss(const AugmenterState& state, Var z_prime,
                          Var z_dprime) {
  if (!config_.gib_loss) return Var();
  const int32_t item_offset = graph_->num_users();

  // (Eq. 9-10 / Alg. 1 lines 6-7) The prediction bound anchors the
  // augmentor to the labels at O(1) weight; the KL compression bound
  // carries the swept Lagrange weight β₁ (Fig. 5).
  Var pred = ag::Scale(
      ag::Add(GibPredictionTerm(state.tape, z_prime, *state.batch,
                                item_offset),
              GibPredictionTerm(state.tape, z_dprime, *state.batch,
                                item_offset)),
      0.5f * config_.gib_pred_weight);
  Var kl = GibCompressionTerm(state.tape, state.h_bar, z_prime, z_dprime);
  if (obs::Enabled()) {
    obs::HealthTracker::Get().RecordLossComponent("gib_pred",
                                                  pred.value().scalar());
    obs::HealthTracker::Get().RecordLossComponent(
        "gib_kl", kl.value().scalar() * config_.beta1 * config_.gib_beta);
  }
  Var aux = ag::Add(pred, ag::Scale(kl, config_.beta1 * config_.gib_beta));
  if (config_.structure_kl_weight > 0.f) {
    Var skl =
        BernoulliStructureKl(state.tape, probs_, config_.structure_prior);
    if (obs::Enabled()) {
      obs::HealthTracker::Get().RecordLossComponent(
          "structure_kl",
          skl.value().scalar() * config_.structure_kl_weight);
    }
    aux = ag::Add(aux, ag::Scale(skl, config_.structure_kl_weight));
  }
  return aux;
}

Var GibAugmenter::EdgeScores(Tape* tape, Var h_bar) {
  return scorer_->Score(tape, h_bar, graph_->edges(), graph_->num_users(),
                        nullptr);
}

}  // namespace graphaug
