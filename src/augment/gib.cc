#include "augment/gib.h"

#include <cmath>

namespace graphaug {

Var GibPredictionTerm(Tape* tape, Var view, const TripletBatch& batch,
                      int32_t item_offset) {
  std::vector<int32_t> pos_nodes(batch.pos_items.size());
  std::vector<int32_t> neg_nodes(batch.neg_items.size());
  for (size_t i = 0; i < batch.pos_items.size(); ++i) {
    pos_nodes[i] = item_offset + batch.pos_items[i];
    neg_nodes[i] = item_offset + batch.neg_items[i];
  }
  Var u = ag::GatherRows(view, batch.users);
  Var p = ag::GatherRows(view, pos_nodes);
  Var n = ag::GatherRows(view, neg_nodes);
  return ag::BprLoss(ag::RowDot(u, p), ag::RowDot(u, n));
}

Var GibCompressionTerm(Tape* tape, Var z, Var z_prime, Var z_dprime) {
  // Mean-pool the three views (Eq. 10), split pooled dims into (μ, η),
  // and take the Gaussian KL to the standard normal prior r(Z').
  Var pooled = ag::Scale(ag::Add(ag::Add(z, z_prime), z_dprime), 1.f / 3.f);
  // Equal halves; for odd d the final column is simply not constrained.
  const int64_t half = pooled.cols() / 2;
  GA_CHECK_GT(half, 0);
  Var mu = ag::SliceCols(pooled, 0, half);
  Var raw_sigma = ag::SliceCols(pooled, half, half);
  return ag::GaussianKl(mu, raw_sigma);
}

Var BernoulliStructureKl(Tape* tape, Var probs, float prior) {
  GA_CHECK(prior > 0.f && prior < 1.f);
  // KL(Bern(p) || Bern(q)) = p log(p/q) + (1-p) log((1-p)/(1-q)).
  constexpr float kEps = 1e-6f;
  Var p = probs;
  Var one_minus_p = ag::AddScalar(ag::Neg(p), 1.f);
  Var term_pos = ag::Mul(
      p, ag::AddScalar(ag::Log(p, kEps), -std::log(prior)));
  Var term_neg = ag::Mul(
      one_minus_p,
      ag::AddScalar(ag::Log(one_minus_p, kEps), -std::log(1.f - prior)));
  return ag::MeanAll(ag::Add(term_pos, term_neg));
}

Var GibLoss(Tape* tape, Var z, Var z_prime, Var z_dprime,
            const TripletBatch& batch, int32_t item_offset,
            const GibConfig& config) {
  // Prediction term over both sampled views (Lemma 2 lower bound).
  Var pred = ag::Scale(
      ag::Add(GibPredictionTerm(tape, z_prime, batch, item_offset),
              GibPredictionTerm(tape, z_dprime, batch, item_offset)),
      0.5f);
  Var kl = GibCompressionTerm(tape, z, z_prime, z_dprime);
  return ag::Add(pred, ag::Scale(kl, config.beta));
}

}  // namespace graphaug
