#ifndef GRAPHAUG_AUGMENT_SVD_H_
#define GRAPHAUG_AUGMENT_SVD_H_

#include <vector>

#include "common/rng.h"
#include "graph/bipartite_graph.h"
#include "graph/csr.h"
#include "tensor/matrix.h"

namespace graphaug {

/// Rank-q truncated SVD A ≈ U diag(s) Vᵀ.
struct SvdResult {
  Matrix u;              ///< rows x q, orthonormal columns
  std::vector<float> s;  ///< q singular values, descending
  Matrix v;              ///< cols x q, orthonormal columns
};

/// Randomized truncated SVD via subspace (power) iteration
/// (Halko-Martinsson-Tropp): a Gaussian range probe Y = A·G is
/// orthonormalized and refined with `power_iters` rounds of
/// Z = orth(Aᵀ Q), Q = orth(A Z); the q x q Gram matrix QᵀA AᵀQ is then
/// eigendecomposed with a cyclic Jacobi sweep. All sparse products run
/// through CsrMatrix::Spmm / SpmmT (bitwise deterministic at any thread
/// count); the dense tail is serial, so the whole factorization is
/// deterministic given `rng`'s state. `oversample` extra probes beyond
/// `rank` sharpen the subspace; the result is truncated back to `rank`.
SvdResult RandomizedSvd(const CsrMatrix& a, int rank, int power_iters,
                        int oversample, Rng* rng);

/// Same factorization driven through an AdjacencyPowerCache (warm CSC
/// mirror + reused scratch), for square adjacency matrices that already
/// have one. Bitwise identical to the CsrMatrix overload on the cached
/// matrix.
SvdResult RandomizedSvd(const AdjacencyPowerCache& cache, int rank,
                        int power_iters, int oversample, Rng* rng);

/// Symmetric eigendecomposition of a small dense matrix by cyclic Jacobi
/// rotations: returns eigenvalues (descending) and the matching
/// eigenvector columns. Exposed for the SVD accuracy test's dense
/// reference path. `a` must be symmetric.
void JacobiEigh(const Matrix& a, std::vector<float>* eigenvalues,
                Matrix* eigenvectors);

}  // namespace graphaug

#endif  // GRAPHAUG_AUGMENT_SVD_H_
